//! Dynamic updates (Section 4.5): a PASS synopsis absorbing a live insert
//! stream via reservoir sampling while staying statistically consistent
//! for COUNT/SUM/AVG.
//!
//! ```sh
//! cargo run --release --example dynamic_stream
//! ```

use pass::common::{AggKind, PassSpec, Query, Synopsis};
use pass::core::Pass;
use pass::table::datasets::uniform;

fn main() {
    // Bootstrap the synopsis from historical data. Updates need the
    // concrete `Pass` type, so build it from a declarative spec directly
    // (a `Session` could adopt it later via `add_synopsis`).
    let history = uniform(200_000, 21);
    let mut pass = Pass::from_spec(
        &history,
        &PassSpec {
            partitions: 64,
            sample_rate: 0.01,
            seed: 4,
            ..PassSpec::default()
        },
    )
    .unwrap();

    // ...and keep a mirror table only to verify against (a real system
    // would not).
    let mut mirror = history.clone();

    println!("streaming 50k inserts through the synopsis...");
    for i in 0..50_000u64 {
        // New readings drift upward over time and cluster near key 0.9.
        let key = 0.9 + ((i % 997) as f64) * 1e-4;
        let value = 80.0 + (i % 41) as f64;
        pass.insert(&[key], value).unwrap();
        mirror.push_row(value, &[key]);
    }

    for agg in [AggKind::Count, AggKind::Sum, AggKind::Avg] {
        // Whole-space query: answered exactly from the (updated) root.
        let whole = Query::interval(agg, -1.0, 2.0);
        let est = pass.estimate(&whole).unwrap();
        let truth = mirror.ground_truth(&whole).unwrap();
        println!(
            "{agg:>5} over everything: est {:14.2}  truth {:14.2}  exact={}",
            est.value, truth, est.exact
        );
        assert!((est.value - truth).abs() < 1e-6 * truth.abs().max(1.0));

        // Hot-region query: estimated from updated reservoirs.
        let hot = Query::interval(agg, 0.9, 1.0);
        let est = pass.estimate(&hot).unwrap();
        let truth = mirror.ground_truth(&hot).unwrap();
        println!(
            "{agg:>5} over hot region:  est {:14.2}  truth {:14.2}  rel.err {:.4}",
            est.value,
            truth,
            est.relative_error(truth)
        );
    }

    // Deletions reverse cleanly for the moment aggregates.
    println!("\ndeleting a batch back out...");
    for i in 0..10_000u64 {
        let key = 0.9 + ((i % 997) as f64) * 1e-4;
        let value = 80.0 + (i % 41) as f64;
        pass.delete(&[key], value).unwrap();
    }
    let whole = Query::interval(AggKind::Count, -1.0, 2.0);
    let est = pass.estimate(&whole).unwrap();
    println!(
        "COUNT after deletions: {} (expected {})",
        est.value,
        200_000 + 50_000 - 10_000
    );
}
