//! IoT dashboard scenario (the paper's Intel Wireless motivation):
//! a visualization backend answering window aggregates over sensor data.
//!
//! Dashboards only need screen-resolution accuracy, so a PASS synopsis
//! answers sliding-window light-level queries hundreds of times faster
//! than a scan while a plain uniform sample of the same query-time cost
//! is visibly noisier. The whole dashboard workload is one
//! `estimate_many` batch through the `Session` facade.
//!
//! ```sh
//! cargo run --release --example sensor_dashboard
//! ```

use pass::common::{AggKind, PassSpec, Query};
use pass::table::datasets::intel;
use pass::{EngineSpec, Session};

fn main() {
    // A week of 30-second sensor readings.
    let table = intel(500_000, 11);
    let (key_lo, key_hi) = table.predicate_range(0).unwrap();
    let n_rows = table.n_rows();

    // PASS plus a uniform sample whose size matches PASS's *per-query*
    // cost (a query touches ≤ 2 of the 128 leaves ≈ 1/32 of the samples).
    let pass = pass::core::Pass::from_spec(
        &table,
        &PassSpec {
            partitions: 128,
            sample_rate: 0.02,
            seed: 3,
            ..PassSpec::default()
        },
    )
    .unwrap();
    let us_budget = pass.total_samples() / 32;
    let mut session = Session::new(table);
    println!(
        "synopsis over {n_rows} rows ({} bytes)",
        pass::Synopsis::storage_bytes(&pass)
    );
    session.add_synopsis("pass", Box::new(pass));
    session
        .add_engine("us", &EngineSpec::uniform(us_budget).with_seed(3))
        .unwrap();

    // Dashboard workload: 24 sliding windows across the time axis, AVG
    // light level per window (what a brightness chart renders) — issued
    // as one batch.
    let span = (key_hi - key_lo) / 24.0;
    let windows: Vec<Query> = (0..24)
        .map(|w| {
            let lo = key_lo + w as f64 * span;
            let hi = (lo + span * 1.5).min(key_hi); // overlapping windows
            Query::interval(AggKind::Avg, lo, hi)
        })
        .collect();
    let pass_results = session.estimate_many("pass", &windows).unwrap();
    let us_results = session.estimate_many("us", &windows).unwrap();

    println!("\nwindow | truth    | PASS              | US (same per-query cost)");
    let mut pass_err_sum = 0.0;
    let mut us_err_sum = 0.0;
    for (w, ((q, p), u)) in windows
        .iter()
        .zip(&pass_results)
        .zip(&us_results)
        .enumerate()
    {
        let truth = session.ground_truth(q).unwrap();
        let p = p.as_ref().expect("PASS answers every window");
        let u_txt = match u {
            Ok(e) => format!("{:8.2} ± {:6.2}", e.value, e.ci_half),
            Err(_) => "no matching sample".to_string(),
        };
        pass_err_sum += p.relative_error(truth);
        us_err_sum += u.as_ref().map_or(1.0, |e| e.relative_error(truth));
        println!(
            "{w:>6} | {truth:8.2} | {:8.2} ± {:6.2} | {u_txt}",
            p.value, p.ci_half
        );
    }
    println!(
        "\nmean relative error: PASS {:.4}  vs  US {:.4}",
        pass_err_sum / 24.0,
        us_err_sum / 24.0
    );

    // Night windows are constant zero: the 0-variance rule answers AVG
    // queries over them *exactly* even under partial overlap.
    let night = Query::interval(AggKind::Avg, key_lo + 10.0, key_lo + 9_000.0);
    let est = session.estimate("pass", &night).unwrap();
    println!(
        "night-window AVG: value={:.3} exact={} (0-variance rule)",
        est.value, est.exact
    );
}
