//! IoT dashboard scenario (the paper's Intel Wireless motivation):
//! a visualization backend answering window aggregates over sensor data.
//!
//! Dashboards only need screen-resolution accuracy, so a PASS synopsis
//! answers sliding-window light-level queries hundreds of times faster
//! than a scan while a plain uniform sample of the same query-time cost
//! is visibly noisier.
//!
//! ```sh
//! cargo run --release --example sensor_dashboard
//! ```

use std::time::Instant;

use pass::baselines::UniformSynopsis;
use pass::common::{AggKind, Query, Synopsis};
use pass::core::PassBuilder;
use pass::table::datasets::intel;

fn main() {
    // A week of 30-second sensor readings.
    let table = intel(500_000, 11);
    let (key_lo, key_hi) = table.predicate_range(0).unwrap();

    let build_start = Instant::now();
    let pass = PassBuilder::new()
        .partitions(128)
        .sample_rate(0.02)
        .seed(3)
        .build(&table)
        .unwrap();
    println!(
        "synopsis over {} rows built in {:.0} ms ({} bytes)",
        table.n_rows(),
        build_start.elapsed().as_secs_f64() * 1e3,
        pass.storage_bytes()
    );

    let us = UniformSynopsis::build(&table, pass.total_samples() / 32, 3).unwrap();

    // Dashboard workload: 24 sliding windows across the time axis, AVG
    // light level per window (what a brightness chart renders).
    println!("\nwindow | truth    | PASS              | US (same per-query cost)");
    let span = (key_hi - key_lo) / 24.0;
    let mut pass_err_sum = 0.0;
    let mut us_err_sum = 0.0;
    for w in 0..24 {
        let lo = key_lo + w as f64 * span;
        let hi = lo + span * 1.5; // overlapping windows
        let q = Query::interval(AggKind::Avg, lo, hi.min(key_hi));
        let truth = table.ground_truth(&q).unwrap();
        let p = pass.estimate(&q).unwrap();
        let u = us.estimate(&q);
        let u_txt = match &u {
            Ok(e) => format!("{:8.2} ± {:6.2}", e.value, e.ci_half),
            Err(_) => "no matching sample".to_string(),
        };
        pass_err_sum += p.relative_error(truth);
        if let Ok(e) = &u {
            us_err_sum += e.relative_error(truth);
        } else {
            us_err_sum += 1.0;
        }
        println!(
            "{w:>6} | {truth:8.2} | {:8.2} ± {:6.2} | {u_txt}",
            p.value, p.ci_half
        );
    }
    println!(
        "\nmean relative error: PASS {:.4}  vs  US {:.4}",
        pass_err_sum / 24.0,
        us_err_sum / 24.0
    );

    // Night windows are constant zero: the 0-variance rule answers AVG
    // queries over them *exactly* even under partial overlap.
    let night = Query::interval(AggKind::Avg, key_lo + 10.0, key_lo + 9_000.0);
    let est = pass.estimate(&night).unwrap();
    println!(
        "night-window AVG: value={:.3} exact={} (0-variance rule)",
        est.value, est.exact
    );
}
