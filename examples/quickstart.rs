//! Quickstart: build a PASS synopsis over a table and run approximate
//! aggregates with confidence intervals and deterministic hard bounds.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use pass::common::{AggKind, Query, Synopsis};
use pass::core::PassBuilder;
use pass::table::datasets::uniform;

fn main() {
    // 100k rows of (key, value) data. In a real deployment this is your
    // fact table: one aggregation column, d predicate columns.
    let table = uniform(100_000, 42);

    // Build the synopsis: 64 variance-optimized partitions, 1% stratified
    // sample. This is the expensive offline step.
    let pass = PassBuilder::new()
        .partitions(64)
        .sample_rate(0.01)
        .seed(7)
        .build(&table)
        .expect("build succeeds on non-empty tables");

    println!(
        "built PASS: {} tree nodes, {} leaves, {} stored samples, {} bytes",
        pass.tree().n_nodes(),
        pass.tree().n_leaves(),
        pass.total_samples(),
        pass.storage_bytes(),
    );

    // Ask approximate questions. Estimates come back with a 99% CI and
    // hard (100% confidence) bounds derived from the partition extrema.
    for agg in [
        AggKind::Count,
        AggKind::Sum,
        AggKind::Avg,
        AggKind::Min,
        AggKind::Max,
    ] {
        let query = Query::interval(agg, 0.2, 0.7);
        let est = pass.estimate(&query).expect("query within synopsis dims");
        let truth = table.ground_truth(&query).unwrap();
        let (lb, ub) = est.hard_bounds.unwrap();
        println!(
            "{agg:>5}(value) WHERE 0.2 <= key <= 0.7  ->  {:>12.2} ± {:>8.2}   truth {:>12.2}   hard bounds [{:.2}, {:.2}]{}",
            est.value,
            est.ci_half,
            truth,
            lb,
            ub,
            if est.exact { "  (exact)" } else { "" },
        );
        assert!(lb - 1e-9 <= truth && truth <= ub + 1e-9, "bounds are sound");
    }

    // Queries aligned with the partitioning are answered exactly — zero
    // error, zero samples touched.
    let leaves = pass.tree().leaves();
    let first_leaf = pass.tree().node(leaves[0]);
    let aligned = Query::interval(AggKind::Sum, first_leaf.rect.lo(0), first_leaf.rect.hi(0));
    let est = pass.estimate(&aligned).unwrap();
    println!(
        "\naligned query over leaf 0: exact={} skip_rate={:.3}",
        est.exact,
        est.skip_rate()
    );
}
