//! Quickstart: declare engines with `EngineSpec`, drive them through a
//! `Session`, and run approximate aggregates with confidence intervals and
//! deterministic hard bounds — single queries and batches.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use pass::common::{AggKind, PassSpec, Query};
use pass::table::datasets::uniform;
use pass::{EngineSpec, Session};

fn main() {
    // 100k rows of (key, value) data. In a real deployment this is your
    // fact table: one aggregation column, d predicate columns.
    let table = uniform(100_000, 42);

    // Declare the synopsis: 64 variance-optimized partitions, 1%
    // stratified sample. Building is the expensive offline step; the
    // session owns the result under the name "pass".
    let mut session = Session::new(table);
    session
        .add_engine(
            "pass",
            &EngineSpec::Pass(PassSpec {
                partitions: 64,
                sample_rate: 0.01,
                seed: 7,
                ..PassSpec::default()
            }),
        )
        .expect("build succeeds on non-empty tables");

    let engine = session.engine("pass").unwrap();
    println!(
        "built {} in {:.0} ms: {} bytes  (spec: {})",
        engine.name(),
        session.build_ms("pass").unwrap(),
        engine.storage_bytes(),
        engine.spec().to_json(),
    );

    // Ask approximate questions. Estimates come back with a 99% CI and
    // hard (100% confidence) bounds derived from the partition extrema.
    for agg in [
        AggKind::Count,
        AggKind::Sum,
        AggKind::Avg,
        AggKind::Min,
        AggKind::Max,
    ] {
        let query = Query::interval(agg, 0.2, 0.7);
        let est = session.estimate("pass", &query).expect("query within dims");
        let truth = session.ground_truth(&query).unwrap();
        let (lb, ub) = est.hard_bounds.unwrap();
        println!(
            "{agg:>5}(value) WHERE 0.2 <= key <= 0.7  ->  {:>12.2} ± {:>8.2}   truth {:>12.2}   hard bounds [{:.2}, {:.2}]{}",
            est.value,
            est.ci_half,
            truth,
            lb,
            ub,
            if est.exact { "  (exact)" } else { "" },
        );
        assert!(lb - 1e-9 <= truth && truth <= ub + 1e-9, "bounds are sound");
    }

    // Batched queries go through `estimate_many`: PASS classifies the
    // batch with shared traversal buffers.
    let windows: Vec<Query> = (0..8)
        .map(|w| {
            let lo = w as f64 / 10.0;
            Query::interval(AggKind::Sum, lo, lo + 0.15)
        })
        .collect();
    let results = session.estimate_many("pass", &windows).unwrap();
    println!("\nbatched SUM over 8 sliding windows:");
    for (q, res) in windows.iter().zip(results) {
        let est = res.unwrap();
        println!(
            "  [{:.2}, {:.2}] -> {:>12.2} ± {:>8.2}  (skip rate {:.3})",
            q.rect.lo(0),
            q.rect.hi(0),
            est.value,
            est.ci_half,
            est.skip_rate()
        );
    }
}
