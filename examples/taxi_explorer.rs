//! Multi-dimensional exploratory analysis on taxi trip records
//! (Section 5.4): KD-PASS answering rectangular predicates over several
//! columns, plus the workload-shift trick — one synopsis built for a 2-D
//! template keeps helping when analysts add more filter columns.
//!
//! ```sh
//! cargo run --release --example taxi_explorer
//! ```

use pass::baselines::AqpPlusPlus;
use pass::common::{AggKind, Query, Rect, Synopsis};
use pass::core::PassBuilder;
use pass::table::datasets::taxi;

fn main() {
    // trip_distance aggregated over (pickup_time, pickup_date, PULocationID).
    let full = taxi(300_000, 5);
    let table = full.project(&[1, 2, 3]).unwrap();
    let bounds = table.bounding_rect().unwrap();

    let kd_pass = PassBuilder::new()
        .partitions(256)
        .sample_rate(0.01)
        .seed(9)
        .build(&table)
        .unwrap();
    let kd_us = AqpPlusPlus::build(&table, 256, kd_pass.total_samples(), 9).unwrap();

    println!("engine comparison on 3-D predicates (AVG trip_distance):");
    let scenarios: [(&str, Rect); 3] = [
        (
            "morning rush, first week, all zones",
            Rect::new(&[
                (6.5 * 3600.0, 9.5 * 3600.0),
                (1.0, 7.0),
                (bounds.lo(2), bounds.hi(2)),
            ]),
        ),
        (
            "overnight, whole month, popular zones",
            Rect::new(&[(0.0, 4.0 * 3600.0), (1.0, 31.0), (1.0, 80.0)]),
        ),
        (
            "evening peak, weekend days, midtown zones",
            Rect::new(&[(17.0 * 3600.0, 20.0 * 3600.0), (5.0, 13.0), (40.0, 170.0)]),
        ),
    ];
    for (label, rect) in scenarios {
        let q = Query::new(AggKind::Avg, rect);
        let truth = table.ground_truth(&q).unwrap();
        let p = kd_pass.estimate(&q).unwrap();
        let u = kd_us.estimate(&q).unwrap();
        println!(
            "  {label:<42} truth {truth:6.3}  KD-PASS {:6.3} (skip {:.2})  KD-US {:6.3}",
            p.value,
            p.skip_rate(),
            u.value
        );
    }

    // Workload shift: a synopsis whose *tree* only indexes (pickup_time,
    // pickup_date) but whose samples keep all three predicate columns can
    // still answer 3-D queries — the shared attributes drive skipping.
    let shifted = PassBuilder::new()
        .partitions(256)
        .sample_rate(0.01)
        .tree_dims(&[0, 1])
        .seed(9)
        .build(&table)
        .unwrap();
    println!("\nworkload shift (tree indexes 2 of 3 predicate columns):");
    for (label, rect) in [
        (
            "2-D query (perfect template match)",
            Rect::new(&[
                (8.0 * 3600.0, 11.0 * 3600.0),
                (10.0, 20.0),
                (f64::NEG_INFINITY, f64::INFINITY),
            ]),
        ),
        (
            "3-D query (one unindexed filter)",
            Rect::new(&[(8.0 * 3600.0, 11.0 * 3600.0), (10.0, 20.0), (1.0, 120.0)]),
        ),
    ] {
        let q = Query::new(AggKind::Avg, rect);
        let truth = table.ground_truth(&q).unwrap();
        let est = shifted.estimate(&q).unwrap();
        println!(
            "  {label:<42} truth {truth:6.3}  est {:6.3} ± {:5.3}  skip {:.2}",
            est.value,
            est.ci_half,
            est.skip_rate()
        );
    }
}
