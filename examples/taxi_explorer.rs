//! Multi-dimensional exploratory analysis on taxi trip records
//! (Section 5.4): KD-PASS answering rectangular predicates over several
//! columns, plus the workload-shift trick — one synopsis built for a 2-D
//! template keeps helping when analysts add more filter columns.
//!
//! All three engines (KD-PASS, KD-US, and the shifted KD-PASS) are
//! declared as `EngineSpec`s inside one `Session`.
//!
//! ```sh
//! cargo run --release --example taxi_explorer
//! ```

use pass::common::{AggKind, PassSpec, Query, Rect};
use pass::table::datasets::taxi;
use pass::{EngineSpec, Session};

fn main() {
    // trip_distance aggregated over (pickup_time, pickup_date, PULocationID).
    let full = taxi(300_000, 5);
    let table = full.project(&[1, 2, 3]).unwrap();
    let bounds = table.bounding_rect().unwrap();

    let kd_pass_spec = PassSpec {
        partitions: 256,
        sample_rate: 0.01,
        seed: 9,
        ..PassSpec::default()
    };
    // Build KD-PASS concretely first so KD-US can match its stored sample
    // budget, then hand it to the session alongside the spec-built engines.
    let kd_pass = pass::core::Pass::from_spec(&table, &kd_pass_spec).unwrap();
    let budget = kd_pass.total_samples();
    let mut session = Session::new(table);
    session.add_synopsis("kd-pass", Box::new(kd_pass));
    session
        .add_engine("kd-us", &EngineSpec::aqppp(256, budget).with_seed(9))
        .unwrap();
    // Workload shift: a synopsis whose *tree* only indexes (pickup_time,
    // pickup_date) but whose samples keep all three predicate columns.
    session
        .add_engine(
            "shifted",
            &EngineSpec::Pass(PassSpec {
                tree_dims: Some(vec![0, 1]),
                ..kd_pass_spec
            }),
        )
        .unwrap();

    println!("engine comparison on 3-D predicates (AVG trip_distance):");
    let scenarios: [(&str, Rect); 3] = [
        (
            "morning rush, first week, all zones",
            Rect::new(&[
                (6.5 * 3600.0, 9.5 * 3600.0),
                (1.0, 7.0),
                (bounds.lo(2), bounds.hi(2)),
            ]),
        ),
        (
            "overnight, whole month, popular zones",
            Rect::new(&[(0.0, 4.0 * 3600.0), (1.0, 31.0), (1.0, 80.0)]),
        ),
        (
            "evening peak, weekend days, midtown zones",
            Rect::new(&[(17.0 * 3600.0, 20.0 * 3600.0), (5.0, 13.0), (40.0, 170.0)]),
        ),
    ];
    for (label, rect) in scenarios {
        let q = Query::new(AggKind::Avg, rect);
        let truth = session.ground_truth(&q).unwrap();
        let p = session.estimate("kd-pass", &q).unwrap();
        let u = session.estimate("kd-us", &q).unwrap();
        println!(
            "  {label:<42} truth {truth:6.3}  KD-PASS {:6.3} (skip {:.2})  KD-US {:6.3}",
            p.value,
            p.skip_rate(),
            u.value
        );
    }

    // The shifted synopsis still answers 3-D queries — the shared
    // attributes drive skipping.
    println!("\nworkload shift (tree indexes 2 of 3 predicate columns):");
    for (label, rect) in [
        (
            "2-D query (perfect template match)",
            Rect::new(&[
                (8.0 * 3600.0, 11.0 * 3600.0),
                (10.0, 20.0),
                (f64::NEG_INFINITY, f64::INFINITY),
            ]),
        ),
        (
            "3-D query (one unindexed filter)",
            Rect::new(&[(8.0 * 3600.0, 11.0 * 3600.0), (10.0, 20.0), (1.0, 120.0)]),
        ),
    ] {
        let q = Query::new(AggKind::Avg, rect);
        let truth = session.ground_truth(&q).unwrap();
        let est = session.estimate("shifted", &q).unwrap();
        println!(
            "  {label:<42} truth {truth:6.3}  est {:6.3} ± {:5.3}  skip {:.2}",
            est.value,
            est.ci_half,
            est.skip_rate()
        );
    }
}
