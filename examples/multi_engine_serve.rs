//! Routed serving end to end: one `pass::Serve` fronting **two**
//! engines through a shared queue and worker pool, mixed deadlines
//! scheduled earliest-first, duplicate dashboard queries deduplicated
//! into one execution, and the per-engine stats read back.
//!
//! This is the runnable version of the README's routed-serving rung;
//! CI compiles *and runs* it (like `serve_quickstart.rs`), so the
//! documented multi-engine API cannot drift from the real one.
//!
//! ```sh
//! cargo run --release --example multi_engine_serve
//! ```

use std::time::Duration;

use pass::common::{AggKind, Query};
use pass::table::datasets::uniform;
use pass::{EngineSpec, ServeConfig, ServeOutcome, Session, SubmitOptions, Ticket};

fn main() {
    // Offline: one table, two engines. PASS answers the interactive
    // dashboard; a cheap uniform sample absorbs the bulk sweeps.
    let mut session = Session::new(uniform(60_000, 42));
    session.add_engine("pass", &EngineSpec::pass()).unwrap();
    session
        .add_engine("us", &EngineSpec::uniform(2_000))
        .unwrap();

    // Online: one routed server over both engines. The first name is
    // the default route (`submit` keeps working unchanged); dedup folds
    // identical queued requests into one execution. Starting paused
    // lets the whole burst queue up before the workers drain it, so the
    // dedup and scheduling effects below are deterministic.
    let serve = session
        .serve_multi(
            &["pass", "us"],
            ServeConfig::new()
                .with_workers(2)
                .with_queue_depth(64)
                .with_dedup()
                .paused(),
        )
        .unwrap();
    println!(
        "serving engines: {:?} (default: {})",
        serve.engines(),
        serve.engine()
    );

    // A dashboard fires the same query from several widgets at once.
    // With dedup, the duplicates attach to one queued execution and the
    // single answer fans out to every ticket.
    let hot = Query::interval(AggKind::Sum, 0.2, 0.7);
    let widgets: Vec<Ticket> = (0..4).map(|_| serve.submit(&hot)).collect();

    // Bulk sweeps routed to the sampling engine, with deadlines: the
    // 50 ms sweep is *scheduled* before the 5 s one (earliest deadline
    // first within the class) and expires unexecuted if the server is
    // too backlogged to start it in time.
    let sweep: Vec<Query> = (0..128)
        .map(|i| Query::interval(AggKind::Count, (i % 32) as f64 / 40.0, 0.95))
        .collect();
    let urgent_sweep = serve
        .submit_with_to(
            "us",
            &sweep,
            &SubmitOptions::bulk().with_deadline(Duration::from_millis(50)),
        )
        .unwrap();
    let lazy_sweep = serve
        .submit_with_to(
            "us",
            &sweep,
            &SubmitOptions::bulk().with_deadline(Duration::from_secs(5)),
        )
        .unwrap();

    // The two sweeps are the *same* queries on the same engine, so they
    // dedup into one execution too — each keeps its own deadline, and
    // the earlier one pulls the shared execution forward in the
    // schedule. Release the workers and read everything back.
    serve.resume();

    // Served answers are bit-identical to direct session calls — per
    // engine, through one shared server.
    let direct = session.estimate("pass", &hot).unwrap();
    for (i, widget) in widgets.iter().enumerate() {
        let results = widget.wait().results().unwrap();
        let est = results[0].as_ref().unwrap();
        assert_eq!(est.value, direct.value);
        println!(
            "widget {i}: {:.1} ± {:.1}  (bit-identical to direct)",
            est.value, est.ci_half
        );
    }

    for (label, ticket) in [("urgent", &urgent_sweep), ("lazy", &lazy_sweep)] {
        match ticket.wait() {
            ServeOutcome::Done(results) => {
                println!("{label} sweep on `us`: {} results", results.len());
            }
            ServeOutcome::Expired => {
                println!("{label} sweep on `us`: expired before a worker got to it");
            }
            other => println!("{label} sweep on `us`: {other:?}"),
        }
    }

    // The per-engine breakdown a capacity planner reads: which route
    // carried the load, which shed it, and how much dedup saved.
    let stats = serve.shutdown();
    println!(
        "totals: accepted {} rejected {} expired {} deduped {} completed {} in {} batches",
        stats.accepted,
        stats.rejected,
        stats.expired,
        stats.deduped,
        stats.completed,
        stats.batches
    );
    println!(
        "queue high-water {}/{}; latency p50 {} us, p99 {} us",
        stats.queue_high_water, stats.queue_capacity, stats.p50_latency_us, stats.p99_latency_us
    );
    for row in &stats.per_engine {
        println!(
            "  engine {:>4}: completed {} rejected {} expired {} deduped {} batches {}",
            row.engine, row.completed, row.rejected, row.expired, row.deduped, row.batches
        );
    }
    // Three widgets attached to the first, and the lazy sweep attached
    // to the urgent one: six submissions, two executions.
    assert_eq!(stats.deduped, 4);
    assert_eq!(stats.batches, 2);
}
