//! The serving front-end end to end: spin up `pass::Serve` over one
//! engine, mix interactive and bulk traffic with deadlines, watch
//! admission control shed load on a deliberately tiny queue, and read
//! the serving stats back.
//!
//! This is the runnable version of the README's "served" rung; CI
//! compiles it (`cargo build --examples`), so the documented API cannot
//! drift from the real one.
//!
//! ```sh
//! cargo run --release --example serve_quickstart
//! ```

use std::time::Duration;

use pass::common::{AggKind, Query};
use pass::table::datasets::uniform;
use pass::{EngineSpec, ServeConfig, ServeOutcome, Session, SubmitOptions, Ticket};

fn main() {
    // Offline: one table, one PASS engine (see `examples/quickstart.rs`
    // for the spec walkthrough).
    let mut session = Session::new(uniform(100_000, 42));
    session.add_engine("pass", &EngineSpec::pass()).unwrap();

    // Online: the serving front-end. Two workers drain a bounded queue;
    // requests beyond `queue_depth` are rejected at the door instead of
    // growing the backlog, and queued requests coalesce into the
    // engine's batched fast path.
    let serve = session
        .serve(
            "pass",
            ServeConfig::new()
                .with_workers(2)
                .with_queue_depth(64)
                .with_coalesce_max(128),
        )
        .unwrap();

    // Submissions return tickets immediately; execution is asynchronous.
    let q = Query::interval(AggKind::Sum, 0.2, 0.7);
    let interactive = serve.submit(&q);

    // A bulk analytics sweep: lower priority (queued interactive work
    // overtakes it) and a deadline — if the server is too backlogged to
    // start it within 5 s, it expires without occupying a worker.
    let sweep: Vec<Query> = (0..256)
        .map(|i| Query::interval(AggKind::Count, (i % 64) as f64 / 80.0, 0.95))
        .collect();
    let bulk = serve.submit_with(
        &sweep,
        &SubmitOptions::bulk().with_deadline(Duration::from_secs(5)),
    );

    // Block for the interactive answer (poll() would do it without
    // blocking); served answers are bit-identical to direct session
    // calls.
    let answer = &interactive.wait().results().unwrap()[0];
    let direct = session.estimate("pass", &q).unwrap();
    let est = answer.as_ref().unwrap();
    assert_eq!(est.value, direct.value);
    println!(
        "interactive: {:.1} ± {:.1}  (bit-identical to direct call)",
        est.value, est.ci_half
    );

    match bulk.wait() {
        ServeOutcome::Done(results) => println!("bulk sweep: {} results", results.len()),
        ServeOutcome::Expired => println!("bulk sweep: expired before a worker got to it"),
        other => println!("bulk sweep: {other:?}"),
    }

    // Saturate the queue from several client threads: every submission
    // resolves — Done or Rejected — and nothing blocks the submitters.
    let mut done = 0u64;
    let mut shed = 0u64;
    let tickets: Vec<Ticket> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let serve = &serve;
                s.spawn(move || {
                    (0..100)
                        .map(|i| {
                            serve.submit(&Query::interval(
                                AggKind::Sum,
                                (i % 50) as f64 / 60.0,
                                0.9,
                            ))
                        })
                        .collect::<Vec<Ticket>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect()
    });
    for ticket in tickets {
        match ticket.wait() {
            ServeOutcome::Done(_) => done += 1,
            ServeOutcome::Rejected => shed += 1,
            other => println!("unexpected: {other:?}"),
        }
    }
    println!("burst of 400: {done} served, {shed} shed by admission control");

    // The stats a capacity planner reads: counters, queue high-water,
    // and p50/p99 submit-to-completion latency.
    let stats = serve.shutdown();
    println!(
        "stats: accepted {} rejected {} expired {} completed {} in {} batches",
        stats.accepted, stats.rejected, stats.expired, stats.completed, stats.batches
    );
    println!(
        "queue high-water {}/{}; latency p50 {} us, p99 {} us",
        stats.queue_high_water, stats.queue_capacity, stats.p50_latency_us, stats.p99_latency_us
    );
}
