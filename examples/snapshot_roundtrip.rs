//! Snapshot round-trip: save every standard-suite engine (plus a sharded
//! PASS) to the versioned binary snapshot format and load it back,
//! asserting the reloaded engine answers **bit-identically** — the
//! portability contract `tests/snapshot_contract.rs` pins.
//!
//! ```sh
//! cargo run --release --example snapshot_roundtrip
//! ```
//!
//! With a path argument, also writes the golden PASS fixture the contract
//! suite decodes on a clean checkout (regenerate only on a format bump):
//!
//! ```sh
//! cargo run --release --example snapshot_roundtrip -- tests/data/pass_v1.snap
//! ```

use pass::common::{AggKind, PassSpec, Query};
use pass::table::datasets::uniform;
use pass::{Engine, EngineSpec, Session, ShardPlan};

/// The golden fixture's engine: keep in sync with
/// `tests/snapshot_contract.rs::golden_fixture_decodes_bit_identically`.
fn golden_spec() -> EngineSpec {
    EngineSpec::Pass(PassSpec {
        partitions: 8,
        total_samples: Some(64),
        seed: 7,
        ..PassSpec::default()
    })
}

fn main() {
    let table = uniform(50_000, 42);
    let mut session = Session::new(table);

    // The Section 5 comparison suite plus a 4-shard PASS, all by name.
    let mut specs = Engine::standard_suite(32, 2_000, 9);
    specs.push(EngineSpec::sharded(
        specs[0].clone(),
        ShardPlan::row_range(4),
    ));
    let names: Vec<String> = (0..specs.len()).map(|i| format!("engine{i}")).collect();
    for (name, spec) in names.iter().zip(&specs) {
        session.add_engine(name, spec).expect("suite engines build");
    }

    let probes: Vec<Query> = AggKind::ALL
        .iter()
        .map(|&agg| Query::interval(agg, 0.2, 0.7))
        .collect();

    println!(
        "{:<16} {:>10} {:>12} {:>12}  round-trip",
        "engine", "bytes", "save µs", "load µs"
    );
    for name in &names {
        let mut bytes = Vec::new();
        let start = std::time::Instant::now();
        session
            .save_engine(name, &mut bytes)
            .expect("save succeeds");
        let save_us = start.elapsed().as_secs_f64() * 1e6;

        let start = std::time::Instant::now();
        let loaded = Engine::load(&bytes).expect("load succeeds");
        let load_us = start.elapsed().as_secs_f64() * 1e6;

        // The contract: answers are bit-identical, not merely close.
        let original = session.engine(name).unwrap();
        for q in &probes {
            assert_eq!(
                loaded.estimate(q),
                original.estimate(q),
                "{} diverged after reload on {}",
                original.name(),
                q.agg
            );
        }
        assert_eq!(loaded.spec(), original.spec());
        assert_eq!(loaded.storage_bytes(), original.storage_bytes());
        println!(
            "{:<16} {:>10} {:>12.0} {:>12.0}  bit-identical ({})",
            original.name(),
            bytes.len(),
            save_us,
            load_us,
            probes.len(),
        );
    }

    // A loaded engine is a first-class session citizen: register it and
    // serve from it like any freshly built engine.
    let mut bytes = Vec::new();
    session.save_engine("engine0", &mut bytes).unwrap();
    session.load_engine("warm", &bytes).unwrap();
    let q = Query::interval(AggKind::Sum, 0.1, 0.9);
    assert_eq!(
        session.estimate("warm", &q).unwrap(),
        session.estimate("engine0", &q).unwrap(),
    );
    println!("\nreloaded engine re-registered as `warm`: answers match engine0");

    // Optional: (re)write the golden fixture for the contract suite.
    if let Some(path) = std::env::args().nth(1) {
        let table = uniform(2_000, 42);
        let engine = Engine::build(&table, &golden_spec()).unwrap();
        let mut bytes = Vec::new();
        engine.save(&mut bytes).unwrap();
        std::fs::write(&path, &bytes).expect("fixture path is writable");
        println!("wrote golden fixture ({} bytes) to {path}", bytes.len());
    }
}
