//! Group-by support (Section 4.5 extensions).
//!
//! "PASS can handle group-bys over categorical columns, i.e. each group-by
//! condition can be rewritten as an equality predicate condition. Then we
//! can aggregate answers for all the selection queries to generate a final
//! answer." — a `GROUP BY c` becomes one equality rectangle `c = v` per
//! distinct value `v`, all answered by the same synopsis.

use pass_common::{AggKind, GroupByQuery, Rect, Result, Synopsis};

use crate::synopsis::Pass;

// The canonical row type lives in pass-common now that group-by is part
// of the engine-agnostic `Synopsis` surface; re-exported here so existing
// `pass_core::GroupResult` paths keep working.
pub use pass_common::GroupResult;

impl Pass {
    /// `SELECT agg(A) ... WHERE base GROUP BY dim` for the given category
    /// codes. `base` constrains the remaining dimensions (pass the
    /// bounding rectangle, or `Rect::whole(dims)`, for an unfiltered
    /// group-by); its bounds on `dim` are overwritten per group.
    ///
    /// Convenience wrapper over the engine-agnostic
    /// [`Synopsis::estimate_group_by`], which PASS overrides to route the
    /// per-category equality rectangles through its batched MCF path.
    pub fn group_by(
        &self,
        agg: AggKind,
        dim: usize,
        categories: &[f64],
        base: &Rect,
    ) -> Result<Vec<GroupResult>> {
        self.estimate_group_by(&GroupByQuery::new(agg, dim, categories, base.clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synopsis::PassBuilder;
    use pass_common::Query;
    use pass_table::datasets::instacart;
    use pass_table::Table;

    #[test]
    fn group_by_matches_per_group_truth() {
        // Small categorical table: 5 categories, distinct per-category sums.
        let n = 5_000;
        let cat: Vec<f64> = (0..n).map(|i| (i % 5) as f64).collect();
        let values: Vec<f64> = (0..n).map(|i| ((i % 5) + 1) as f64 * 10.0).collect();
        let table = Table::one_dim(cat, values).unwrap();
        let pass = PassBuilder::new()
            .partitions(8)
            .sample_rate(0.2)
            .seed(1)
            .build(&table)
            .unwrap();
        let base = table.bounding_rect().unwrap();
        let groups = pass
            .group_by(AggKind::Sum, 0, &[0.0, 1.0, 2.0, 3.0, 4.0], &base)
            .unwrap();
        assert_eq!(groups.len(), 5);
        for g in groups {
            let q = Query::interval(AggKind::Sum, g.key, g.key);
            let truth = table.ground_truth(&q).unwrap();
            let est = g.estimate.unwrap();
            let rel = (est.value - truth).abs() / truth;
            assert!(rel < 0.15, "group {}: rel {rel}", g.key);
        }
    }

    #[test]
    fn group_by_on_skewed_catalog() {
        // Instacart-style reorder rates per product bucket.
        let table = instacart(40_000, 2);
        let pass = PassBuilder::new()
            .partitions(32)
            .sample_rate(0.05)
            .seed(3)
            .build(&table)
            .unwrap();
        let base = table.bounding_rect().unwrap();
        // Group over a handful of popular product ids (guaranteed present).
        let mut cats: Vec<f64> = table.predicate_column(0)[..2_000].to_vec();
        cats.sort_by(|a, b| a.partial_cmp(b).unwrap());
        cats.dedup();
        cats.truncate(10);
        let groups = pass.group_by(AggKind::Count, 0, &cats, &base).unwrap();
        for g in &groups {
            let est = g.estimate.as_ref().unwrap();
            assert!(est.value >= 0.0);
            let truth = table
                .ground_truth(&Query::interval(AggKind::Count, g.key, g.key))
                .unwrap();
            // COUNT per equality group: hard bounds must bracket truth.
            let (lb, ub) = est.hard_bounds.unwrap();
            assert!(lb - 1e-9 <= truth && truth <= ub + 1e-9, "group {}", g.key);
        }
    }

    #[test]
    fn invalid_dims_rejected() {
        let table = Table::one_dim(vec![1.0, 2.0], vec![3.0, 4.0]).unwrap();
        let pass = PassBuilder::new()
            .partitions(2)
            .sample_rate(1.0)
            .build(&table)
            .unwrap();
        let base = table.bounding_rect().unwrap();
        assert!(pass.group_by(AggKind::Sum, 5, &[1.0], &base).is_err());
        let wrong_base = Rect::new(&[(0.0, 1.0), (0.0, 1.0)]);
        assert!(pass.group_by(AggKind::Sum, 0, &[1.0], &wrong_base).is_err());
    }
}
