//! The partition tree: nodes annotated with exact aggregates (Section 3.2).
//!
//! Invariants (Definition 3.1): every child's row set is contained in its
//! parent's, siblings are disjoint, and siblings union to their parent.
//! Each node stores the exact SUM/COUNT/MIN/MAX ([`Aggregates`]) of its
//! partition plus a rectangle ψ — here the *tight bounding box* of the
//! partition's predicate points, which keeps MCF classification sound and
//! as sharp as possible.
//!
//! Trees come from two constructors:
//! * [`PartitionTree::from_partitioning`] — 1-D: optimizer leaves paired
//!   bottom-up into a balanced binary tree (Section 5.3's construction);
//! * [`PartitionTree::from_kd`] — multi-d: a 1:1 copy of the k-d expansion
//!   (Section 4.4).

use pass_common::{Aggregates, PassError, Rect, Result};
use pass_partition::{KdBuild, Partitioning1D};
use pass_table::{SortedTable, Table};

/// Index of a node in the tree arena.
pub type NodeId = usize;

/// One node of the partition tree.
#[derive(Debug, Clone)]
pub struct TreeNode {
    /// Tight bounding rectangle of the partition's predicate points.
    pub rect: Rect,
    /// Exact aggregates of the partition.
    pub agg: Aggregates,
    /// Child node ids (empty for leaves).
    pub children: Vec<NodeId>,
    /// Parent id (`None` for the root) — needed by dynamic updates.
    pub parent: Option<NodeId>,
    /// For leaves: index into the synopsis' per-leaf sample array.
    pub leaf_index: Option<usize>,
}

impl TreeNode {
    pub fn is_leaf(&self) -> bool {
        self.children.is_empty()
    }
}

/// An arena-allocated partition tree.
#[derive(Debug, Clone)]
pub struct PartitionTree {
    nodes: Vec<TreeNode>,
    root: NodeId,
    n_leaves: usize,
    dims: usize,
}

impl PartitionTree {
    /// Build a balanced binary tree bottom-up over 1-D optimizer leaves.
    pub fn from_partitioning(sorted: &SortedTable, partitioning: &Partitioning1D) -> Result<Self> {
        if sorted.is_empty() {
            return Err(PassError::EmptyInput("partition tree over empty table"));
        }
        debug_assert_eq!(sorted.len(), partitioning.n_rows());
        let mut nodes: Vec<TreeNode> = Vec::new();
        // Current level: leaves in key order.
        let mut level: Vec<NodeId> = Vec::new();
        for (leaf_index, range) in partitioning.ranges().into_iter().enumerate() {
            let agg = range_aggregates(sorted, range.clone());
            let rect = Rect::interval(sorted.key(range.start), sorted.key(range.end - 1));
            nodes.push(TreeNode {
                rect,
                agg,
                children: Vec::new(),
                parent: None,
                leaf_index: Some(leaf_index),
            });
            level.push(nodes.len() - 1);
        }
        // Pair adjacent nodes until one root remains.
        while level.len() > 1 {
            let mut next = Vec::with_capacity(level.len().div_ceil(2));
            for pair in level.chunks(2) {
                if pair.len() == 1 {
                    next.push(pair[0]);
                    continue;
                }
                let (a, b) = (pair[0], pair[1]);
                let agg = nodes[a].agg.merge(&nodes[b].agg);
                let rect = nodes[a].rect.union(&nodes[b].rect);
                nodes.push(TreeNode {
                    rect,
                    agg,
                    children: vec![a, b],
                    parent: None,
                    leaf_index: None,
                });
                let id = nodes.len() - 1;
                nodes[a].parent = Some(id);
                nodes[b].parent = Some(id);
                next.push(id);
            }
            level = next;
        }
        let root = level[0];
        let n_leaves = partitioning.len();
        Ok(Self {
            nodes,
            root,
            n_leaves,
            dims: 1,
        })
    }

    /// Build from a k-d expansion: one tree node per k-d node, aggregates
    /// computed over the node's rows. Leaf indices are assigned in
    /// [`KdBuild::leaf_ids`] order.
    #[allow(clippy::needless_range_loop)] // parent wiring mutates while indexing
    pub fn from_kd(table: &Table, kd: &KdBuild) -> Result<Self> {
        if table.n_rows() == 0 {
            return Err(PassError::EmptyInput("partition tree over empty table"));
        }
        let mut nodes: Vec<TreeNode> = Vec::with_capacity(kd.nodes.len());
        for info in &kd.nodes {
            let values: Vec<f64> = kd.perm[info.start..info.end]
                .iter()
                .map(|&r| table.value(r as usize))
                .collect();
            nodes.push(TreeNode {
                rect: info.rect.clone(),
                agg: Aggregates::from_values(&values),
                children: info.children.clone(),
                parent: None,
                leaf_index: None,
            });
        }
        // Wire parents.
        for id in 0..nodes.len() {
            for c in nodes[id].children.clone() {
                nodes[c].parent = Some(id);
            }
        }
        // Assign leaf indices in kd leaf order.
        let mut n_leaves = 0;
        for id in 0..nodes.len() {
            if nodes[id].is_leaf() {
                nodes[id].leaf_index = Some(n_leaves);
                n_leaves += 1;
            }
        }
        Ok(Self {
            nodes,
            root: kd.root,
            n_leaves,
            dims: table.dims(),
        })
    }

    pub fn root(&self) -> NodeId {
        self.root
    }

    pub fn node(&self, id: NodeId) -> &TreeNode {
        &self.nodes[id]
    }

    pub(crate) fn node_mut(&mut self, id: NodeId) -> &mut TreeNode {
        &mut self.nodes[id]
    }

    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    pub fn n_leaves(&self) -> usize {
        self.n_leaves
    }

    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Total rows in the tree (root count).
    pub fn total_rows(&self) -> u64 {
        self.nodes[self.root].agg.count
    }

    /// Leaf ids in leaf-index order. Leaf indices may be sparse after
    /// split/merge maintenance, so this collects and orders rather than
    /// assuming density.
    pub fn leaves(&self) -> Vec<NodeId> {
        let mut out: Vec<(usize, NodeId)> = self
            .nodes
            .iter()
            .enumerate()
            .filter_map(|(id, n)| n.leaf_index.map(|li| (li, id)))
            .collect();
        out.sort_unstable();
        out.into_iter().map(|(_, id)| id).collect()
    }

    /// Recompute the leaf count after structural maintenance.
    pub(crate) fn recount_leaves(&mut self) {
        self.n_leaves = self.nodes.iter().filter(|n| n.leaf_index.is_some()).count();
    }

    /// Turn `parent` (a leaf) into an internal node with two fresh leaf
    /// children. Each child supplies its rectangle, exact aggregates, and
    /// the sample-array slot it owns. Returns the new node ids.
    pub(crate) fn add_children(
        &mut self,
        parent: NodeId,
        left: (Rect, Aggregates, Option<usize>),
        right: (Rect, Aggregates, Option<usize>),
    ) -> (NodeId, NodeId) {
        debug_assert!(self.nodes[parent].is_leaf(), "can only split leaves");
        let mut push = |(rect, agg, leaf_index): (Rect, Aggregates, Option<usize>)| {
            self.nodes.push(TreeNode {
                rect,
                agg,
                children: Vec::new(),
                parent: Some(parent),
                leaf_index,
            });
            self.nodes.len() - 1
        };
        let l = push(left);
        let r = push(right);
        let p = &mut self.nodes[parent];
        p.leaf_index = None;
        p.children = vec![l, r];
        self.recount_leaves();
        (l, r)
    }

    /// Logical storage of the aggregate hierarchy: 4 statistics + 2·d
    /// rectangle bounds per node, 8 bytes each (Table 2 accounting).
    pub fn storage_bytes(&self) -> usize {
        self.nodes.len() * (4 + 2 * self.dims) * std::mem::size_of::<f64>()
    }
}

fn range_aggregates(sorted: &SortedTable, range: std::ops::Range<usize>) -> Aggregates {
    let values = &sorted.values()[range];
    Aggregates::from_values(values)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pass_common::AggKind;
    use pass_partition::{build_kd, KdExpansion};
    use pass_table::datasets::{taxi, uniform};

    fn sorted(n: usize, seed: u64) -> SortedTable {
        SortedTable::from_table(&uniform(n, seed), 0)
    }

    #[test]
    fn one_dim_tree_structure() {
        let s = sorted(100, 1);
        let p = Partitioning1D::new(100, vec![25, 50, 75]).unwrap();
        let t = PartitionTree::from_partitioning(&s, &p).unwrap();
        assert_eq!(t.n_leaves(), 4);
        // 4 leaves + 2 internal + root = 7 nodes.
        assert_eq!(t.n_nodes(), 7);
        assert_eq!(t.total_rows(), 100);
        assert!(t.node(t.root()).parent.is_none());
    }

    #[test]
    fn parent_aggregates_are_merges_of_children() {
        let s = sorted(200, 2);
        let p = Partitioning1D::new(200, vec![30, 80, 120, 170]).unwrap();
        let t = PartitionTree::from_partitioning(&s, &p).unwrap();
        for id in 0..t.n_nodes() {
            let node = t.node(id);
            if node.is_leaf() {
                continue;
            }
            let merged = node
                .children
                .iter()
                .fold(Aggregates::empty(), |acc, &c| acc.merge(&t.node(c).agg));
            assert!((node.agg.sum - merged.sum).abs() < 1e-9);
            assert_eq!(node.agg.count, merged.count);
            assert_eq!(node.agg.min, merged.min);
            assert_eq!(node.agg.max, merged.max);
        }
    }

    #[test]
    fn parent_pointers_consistent() {
        let s = sorted(64, 3);
        let p = Partitioning1D::new(64, (1..8).map(|i| i * 8).collect()).unwrap();
        let t = PartitionTree::from_partitioning(&s, &p).unwrap();
        for id in 0..t.n_nodes() {
            for &c in &t.node(id).children {
                assert_eq!(t.node(c).parent, Some(id));
            }
        }
    }

    #[test]
    fn odd_leaf_count_builds_valid_tree() {
        let s = sorted(90, 4);
        let p = Partitioning1D::new(90, vec![30, 60]).unwrap(); // 3 leaves
        let t = PartitionTree::from_partitioning(&s, &p).unwrap();
        assert_eq!(t.n_leaves(), 3);
        assert_eq!(t.total_rows(), 90);
        // Root still aggregates everything.
        let whole = Aggregates::from_values(s.values());
        assert!((t.node(t.root()).agg.sum - whole.sum).abs() < 1e-9);
    }

    #[test]
    fn single_leaf_tree_is_just_root() {
        let s = sorted(10, 5);
        let p = Partitioning1D::single(10);
        let t = PartitionTree::from_partitioning(&s, &p).unwrap();
        assert_eq!(t.n_nodes(), 1);
        assert_eq!(t.leaves(), vec![t.root()]);
    }

    #[test]
    fn leaf_rects_bound_their_keys() {
        let s = sorted(150, 6);
        let p = Partitioning1D::new(150, vec![50, 100]).unwrap();
        let t = PartitionTree::from_partitioning(&s, &p).unwrap();
        let key_bounds = p.key_bounds(&s);
        for (li, id) in t.leaves().into_iter().enumerate() {
            let rect = &t.node(id).rect;
            assert_eq!(rect.lo(0), key_bounds[li].0);
            assert_eq!(rect.hi(0), key_bounds[li].1);
        }
    }

    #[test]
    fn kd_tree_mirrors_expansion() {
        let table = taxi(800, 7).project(&[1, 2]).unwrap();
        let kd = build_kd(
            &table,
            10,
            KdExpansion::MaxVariance {
                kind: AggKind::Sum,
                balance: 2,
            },
            0,
        )
        .unwrap();
        let t = PartitionTree::from_kd(&table, &kd).unwrap();
        assert_eq!(t.n_nodes(), kd.nodes.len());
        assert_eq!(t.n_leaves(), kd.n_leaves());
        assert_eq!(t.total_rows(), 800);
        assert_eq!(t.dims(), 2);
        // Parent merge invariant in the kd case too.
        for id in 0..t.n_nodes() {
            let node = t.node(id);
            if node.is_leaf() {
                continue;
            }
            let merged_count: u64 = node.children.iter().map(|&c| t.node(c).agg.count).sum();
            assert_eq!(node.agg.count, merged_count);
        }
    }

    #[test]
    fn leaves_enumerate_in_leaf_index_order() {
        let s = sorted(40, 8);
        let p = Partitioning1D::new(40, vec![10, 20, 30]).unwrap();
        let t = PartitionTree::from_partitioning(&s, &p).unwrap();
        for (expect, id) in t.leaves().into_iter().enumerate() {
            assert_eq!(t.node(id).leaf_index, Some(expect));
        }
    }

    #[test]
    fn storage_accounting_scales_with_nodes() {
        let s = sorted(64, 9);
        let p = Partitioning1D::new(64, vec![16, 32, 48]).unwrap();
        let t = PartitionTree::from_partitioning(&s, &p).unwrap();
        assert_eq!(t.storage_bytes(), t.n_nodes() * 6 * 8);
    }
}
