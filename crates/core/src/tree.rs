//! The partition tree: nodes annotated with exact aggregates (Section 3.2).
//!
//! Invariants (Definition 3.1): every child's row set is contained in its
//! parent's, siblings are disjoint, and siblings union to their parent.
//! Each node stores the exact SUM/COUNT/MIN/MAX ([`Aggregates`]) of its
//! partition plus a rectangle ψ — here the *tight bounding box* of the
//! partition's predicate points, which keeps MCF classification sound and
//! as sharp as possible.
//!
//! # Layout
//!
//! The tree is a struct-of-arrays arena, not a node-of-pointers graph: node
//! `id` owns `aggs[id]`, the packed rectangle bounds
//! `rect[id*dims + d] = (lo, hi)`, and the CSR-style child range
//! `child_flat[start..][..count]` described by the packed
//! `child_span[id] = (start, count)`. An MCF traversal therefore walks a
//! handful of contiguous slices instead of chasing a heap `Vec<NodeId>`
//! per node; packing a node's `(lo, hi)` into one tuple makes the 1-D
//! interval test a single aligned 16-byte load (two separate bounds
//! columns cost a miss each, two interleaved `f64`s two bounds checks),
//! and the packed span makes the leaf test plus child lookup a single
//! 8-byte load.
//! [`relation_to`](PartitionTree::relation_to) classifies a node against a
//! query in one fused pass over its coordinates. `child_flat` is
//! append-only: collapsing a node just zeroes its span count, leaving a
//! dead range behind — maintenance is rare and bounded, so the arena trades
//! that slack for never shifting live ranges.
//!
//! The tree also tracks whether *any* node's aggregate is empty
//! (`has_empty`): leaves are born non-empty and only deletions can zero a
//! count, so in the common case the MCF loop skips the per-node emptiness
//! load entirely — the aggregate array stays out of the traversal's cache
//! footprint. The flag is refreshed by the crate-internal
//! `PartitionTree::refresh_has_empty` from the synopsis' mutation choke
//! point.
//!
//! Trees come from two constructors:
//! * [`PartitionTree::from_partitioning`] — 1-D: optimizer leaves paired
//!   bottom-up into a balanced binary tree (Section 5.3's construction);
//! * [`PartitionTree::from_kd`] — multi-d: a 1:1 copy of the k-d expansion
//!   (Section 4.4).

use pass_common::{Aggregates, PassError, Rect, RectRelation, Result};
use pass_partition::{KdBuild, Partitioning1D};
use pass_table::{SortedTable, Table};

/// Index of a node in the tree arena.
pub type NodeId = usize;

/// An arena-allocated partition tree in struct-of-arrays layout.
///
/// Fields are `pub(crate)` so the snapshot codec (`crate::snapshot`) can
/// serialize the arena *exactly* — including dead `child_flat` ranges left
/// by collapses — keeping a loaded tree bit-identical in layout, not just
/// in logical shape.
#[derive(Debug, Clone)]
pub struct PartitionTree {
    pub(crate) dims: usize,
    pub(crate) root: NodeId,
    pub(crate) n_leaves: usize,
    /// Exact aggregates, one per node.
    pub(crate) aggs: Vec<Aggregates>,
    /// Packed rectangle bounds, node-major: `rect[id * dims + d]` is the
    /// `(lo, hi)` pair of dimension `d` — one indexed load per interval
    /// test.
    pub(crate) rect: Vec<(f64, f64)>,
    /// Packed `(start, count)` of each node's child range in `child_flat`
    /// (`count == 0` ⇒ leaf) — leaf test and child lookup in one load.
    pub(crate) child_span: Vec<(u32, u32)>,
    /// All child ids, grouped per node (append-only; collapsed nodes leave
    /// dead ranges).
    pub(crate) child_flat: Vec<NodeId>,
    /// Parent id (`None` for the root) — needed by dynamic updates.
    pub(crate) parent: Vec<Option<NodeId>>,
    /// For leaves: index into the synopsis' per-leaf sample array.
    pub(crate) leaf_index: Vec<Option<usize>>,
    /// Whether any node's aggregate is empty. `false` lets MCF skip the
    /// per-node emptiness load; refreshed after count-changing mutations.
    pub(crate) has_empty: bool,
}

impl PartitionTree {
    fn with_capacity(dims: usize, nodes: usize) -> Self {
        Self {
            dims,
            root: 0,
            n_leaves: 0,
            aggs: Vec::with_capacity(nodes),
            rect: Vec::with_capacity(nodes * dims),
            child_span: Vec::with_capacity(nodes),
            child_flat: Vec::with_capacity(nodes),
            parent: Vec::with_capacity(nodes),
            leaf_index: Vec::with_capacity(nodes),
            has_empty: false,
        }
    }

    /// Append a childless node and return its id.
    pub(crate) fn push_node(
        &mut self,
        rect: &Rect,
        agg: Aggregates,
        parent: Option<NodeId>,
        leaf_index: Option<usize>,
    ) -> NodeId {
        debug_assert_eq!(rect.dims(), self.dims);
        let id = self.aggs.len();
        self.has_empty |= agg.is_empty();
        self.aggs.push(agg);
        for d in 0..self.dims {
            self.rect.push((rect.lo(d), rect.hi(d)));
        }
        self.child_span.push((self.child_flat.len() as u32, 0));
        self.parent.push(parent);
        self.leaf_index.push(leaf_index);
        id
    }

    /// Register `children` (already pushed) under `id`, which must not have
    /// children yet.
    fn set_children(&mut self, id: NodeId, children: &[NodeId]) {
        debug_assert_eq!(self.child_span[id].1, 0, "node already has children");
        self.child_span[id] = (self.child_flat.len() as u32, children.len() as u32);
        self.child_flat.extend_from_slice(children);
    }

    /// Build a balanced binary tree bottom-up over 1-D optimizer leaves.
    pub fn from_partitioning(sorted: &SortedTable, partitioning: &Partitioning1D) -> Result<Self> {
        if sorted.is_empty() {
            return Err(PassError::EmptyInput("partition tree over empty table"));
        }
        debug_assert_eq!(sorted.len(), partitioning.n_rows());
        let n_leaves = partitioning.len();
        let mut tree = Self::with_capacity(1, 2 * n_leaves);
        // Current level: leaves in key order.
        let mut level: Vec<NodeId> = Vec::with_capacity(n_leaves);
        for (leaf_index, range) in partitioning.ranges().into_iter().enumerate() {
            let agg = range_aggregates(sorted, range.clone());
            let rect = Rect::interval(sorted.key(range.start), sorted.key(range.end - 1));
            level.push(tree.push_node(&rect, agg, None, Some(leaf_index)));
        }
        // Pair adjacent nodes until one root remains.
        while level.len() > 1 {
            let mut next = Vec::with_capacity(level.len().div_ceil(2));
            for pair in level.chunks(2) {
                if pair.len() == 1 {
                    next.push(pair[0]);
                    continue;
                }
                let (a, b) = (pair[0], pair[1]);
                let agg = tree.aggs[a].merge(&tree.aggs[b]);
                let rect = tree.rect(a).union(&tree.rect(b));
                let id = tree.push_node(&rect, agg, None, None);
                tree.set_children(id, &[a, b]);
                tree.parent[a] = Some(id);
                tree.parent[b] = Some(id);
                next.push(id);
            }
            level = next;
        }
        tree.root = level[0];
        tree.n_leaves = n_leaves;
        Ok(tree)
    }

    /// Build from a k-d expansion: one tree node per k-d node, aggregates
    /// computed over the node's rows. Leaf indices are assigned in
    /// [`KdBuild::leaf_ids`] order.
    pub fn from_kd(table: &Table, kd: &KdBuild) -> Result<Self> {
        if table.n_rows() == 0 {
            return Err(PassError::EmptyInput("partition tree over empty table"));
        }
        let mut tree = Self::with_capacity(table.dims(), kd.nodes.len());
        for info in &kd.nodes {
            let values: Vec<f64> = kd.perm[info.start..info.end]
                .iter()
                .map(|&r| table.value(r as usize))
                .collect();
            let id = tree.push_node(&info.rect, Aggregates::from_values(&values), None, None);
            debug_assert_eq!(id + 1, tree.n_nodes());
        }
        // Wire children and parents (every id already exists).
        for (id, info) in kd.nodes.iter().enumerate() {
            if !info.children.is_empty() {
                tree.set_children(id, &info.children);
                for &c in &info.children {
                    tree.parent[c] = Some(id);
                }
            }
        }
        // Assign leaf indices in kd leaf order.
        let mut n_leaves = 0;
        for id in 0..tree.n_nodes() {
            if tree.is_leaf(id) {
                tree.leaf_index[id] = Some(n_leaves);
                n_leaves += 1;
            }
        }
        tree.root = kd.root;
        tree.n_leaves = n_leaves;
        Ok(tree)
    }

    /// Root node id.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Number of nodes in the arena.
    pub fn n_nodes(&self) -> usize {
        self.aggs.len()
    }

    /// Number of leaves.
    pub fn n_leaves(&self) -> usize {
        self.n_leaves
    }

    /// Predicate dimensionality.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Total rows in the tree (root count).
    pub fn total_rows(&self) -> u64 {
        self.aggs[self.root].count
    }

    /// Exact aggregates of node `id`.
    #[inline]
    pub fn agg(&self, id: NodeId) -> &Aggregates {
        &self.aggs[id]
    }

    #[inline]
    pub(crate) fn agg_mut(&mut self, id: NodeId) -> &mut Aggregates {
        &mut self.aggs[id]
    }

    /// Child ids of node `id` (empty for leaves).
    #[inline]
    pub fn children(&self, id: NodeId) -> &[NodeId] {
        let (start, count) = self.child_span[id];
        &self.child_flat[start as usize..(start + count) as usize]
    }

    /// Whether node `id` has no children.
    #[inline]
    pub fn is_leaf(&self, id: NodeId) -> bool {
        self.child_span[id].1 == 0
    }

    /// Parent of node `id` (`None` for the root).
    #[inline]
    pub fn parent(&self, id: NodeId) -> Option<NodeId> {
        self.parent[id]
    }

    /// The sample-array slot leaf `id` owns (`None` for internal nodes).
    #[inline]
    pub fn leaf_index(&self, id: NodeId) -> Option<usize> {
        self.leaf_index[id]
    }

    /// Inclusive lower bound of node `id`'s rectangle in dimension `d`.
    #[inline]
    pub fn rect_lo(&self, id: NodeId, d: usize) -> f64 {
        self.rect[id * self.dims + d].0
    }

    /// Inclusive upper bound of node `id`'s rectangle in dimension `d`.
    #[inline]
    pub fn rect_hi(&self, id: NodeId, d: usize) -> f64 {
        self.rect[id * self.dims + d].1
    }

    /// The raw packed `(lo, hi)` bounds, node-major: node `id`, dimension
    /// `d` at index `id * dims + d`. For 1-D trees a node's pair sits at
    /// `[id]` — one bounds-checked 16-byte load — and the MCF interval
    /// loop reads it directly instead of paying the per-call stride
    /// multiply.
    #[inline]
    pub(crate) fn rect_pairs(&self) -> &[(f64, f64)] {
        &self.rect
    }

    /// Whether any node's aggregate is currently empty (see the module
    /// docs) — `false` lets traversals skip per-node emptiness loads.
    #[inline]
    pub(crate) fn has_empty_nodes(&self) -> bool {
        self.has_empty
    }

    /// Recompute [`has_empty_nodes`](Self::has_empty_nodes) by scanning
    /// the aggregate column. Called from the synopsis' mutation choke
    /// point (deletions can zero a count; nothing else can).
    pub(crate) fn refresh_has_empty(&mut self) {
        self.has_empty = self.aggs.iter().any(Aggregates::is_empty);
    }

    /// Materialize node `id`'s bounding rectangle. Cold-path convenience —
    /// hot loops should use [`relation_to`](Self::relation_to) /
    /// [`rect_lo`](Self::rect_lo) / [`rect_hi`](Self::rect_hi) instead.
    pub fn rect(&self, id: NodeId) -> Rect {
        let base = id * self.dims;
        Rect::new(&self.rect[base..base + self.dims])
    }

    /// Classify node `id`'s rectangle against `query` — the MCF trichotomy
    /// ([`Rect::relation_to`] with the node side read straight from the
    /// arena, both tests fused into one pass over the coordinates).
    #[inline]
    pub fn relation_to(&self, id: NodeId, query: &Rect) -> RectRelation {
        debug_assert_eq!(query.dims(), self.dims);
        let base = id * self.dims;
        let mut intersects = true;
        let mut covered = true;
        for d in 0..self.dims {
            let (nl, nh) = self.rect[base + d];
            let (ql, qh) = (query.lo(d), query.hi(d));
            intersects &= nl <= qh && ql <= nh;
            covered &= ql <= nl && nh <= qh;
        }
        if !intersects {
            RectRelation::Disjoint
        } else if covered {
            RectRelation::Covered
        } else {
            RectRelation::Partial
        }
    }

    /// Does node `id`'s rectangle contain the point?
    #[inline]
    pub fn contains_point(&self, id: NodeId, point: &[f64]) -> bool {
        debug_assert_eq!(point.len(), self.dims);
        let base = id * self.dims;
        (0..self.dims).all(|d| {
            let p = point[d];
            let (lo, hi) = self.rect[base + d];
            lo <= p && p <= hi
        })
    }

    /// Overwrite node `id`'s rectangle (dynamic bounding-box growth).
    pub(crate) fn set_rect(&mut self, id: NodeId, rect: &Rect) {
        debug_assert_eq!(rect.dims(), self.dims);
        let base = id * self.dims;
        for d in 0..self.dims {
            self.rect[base + d] = (rect.lo(d), rect.hi(d));
        }
    }

    pub(crate) fn set_leaf_index(&mut self, id: NodeId, leaf_index: Option<usize>) {
        self.leaf_index[id] = leaf_index;
    }

    pub(crate) fn set_parent(&mut self, id: NodeId, parent: Option<NodeId>) {
        self.parent[id] = parent;
    }

    /// Detach all children of `id`, turning it back into a childless node
    /// (collapse maintenance). The flat child range is abandoned in place.
    pub(crate) fn clear_children(&mut self, id: NodeId) {
        self.child_span[id].1 = 0;
    }

    /// Leaf ids in leaf-index order. Leaf indices may be sparse after
    /// split/merge maintenance, so this collects and orders rather than
    /// assuming density.
    pub fn leaves(&self) -> Vec<NodeId> {
        let mut out: Vec<(usize, NodeId)> = self
            .leaf_index
            .iter()
            .enumerate()
            .filter_map(|(id, li)| li.map(|li| (li, id)))
            .collect();
        out.sort_unstable();
        out.into_iter().map(|(_, id)| id).collect()
    }

    /// Recompute the leaf count after structural maintenance.
    pub(crate) fn recount_leaves(&mut self) {
        self.n_leaves = self.leaf_index.iter().filter(|li| li.is_some()).count();
    }

    /// Turn `parent` (a leaf) into an internal node with two fresh leaf
    /// children. Each child supplies its rectangle, exact aggregates, and
    /// the sample-array slot it owns. Returns the new node ids.
    pub(crate) fn add_children(
        &mut self,
        parent: NodeId,
        left: (Rect, Aggregates, Option<usize>),
        right: (Rect, Aggregates, Option<usize>),
    ) -> (NodeId, NodeId) {
        debug_assert!(self.is_leaf(parent), "can only split leaves");
        let l = self.push_node(&left.0, left.1, Some(parent), left.2);
        let r = self.push_node(&right.0, right.1, Some(parent), right.2);
        self.leaf_index[parent] = None;
        self.set_children(parent, &[l, r]);
        self.recount_leaves();
        (l, r)
    }

    /// Logical storage of the aggregate hierarchy: 4 statistics + 2·d
    /// rectangle bounds per node, 8 bytes each (Table 2 accounting).
    pub fn storage_bytes(&self) -> usize {
        self.n_nodes() * (4 + 2 * self.dims) * std::mem::size_of::<f64>()
    }
}

fn range_aggregates(sorted: &SortedTable, range: std::ops::Range<usize>) -> Aggregates {
    let values = &sorted.values()[range];
    Aggregates::from_values(values)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pass_common::AggKind;
    use pass_partition::{build_kd, KdExpansion};
    use pass_table::datasets::{taxi, uniform};

    fn sorted(n: usize, seed: u64) -> SortedTable {
        SortedTable::from_table(&uniform(n, seed), 0)
    }

    #[test]
    fn one_dim_tree_structure() {
        let s = sorted(100, 1);
        let p = Partitioning1D::new(100, vec![25, 50, 75]).unwrap();
        let t = PartitionTree::from_partitioning(&s, &p).unwrap();
        assert_eq!(t.n_leaves(), 4);
        // 4 leaves + 2 internal + root = 7 nodes.
        assert_eq!(t.n_nodes(), 7);
        assert_eq!(t.total_rows(), 100);
        assert!(t.parent(t.root()).is_none());
    }

    #[test]
    fn parent_aggregates_are_merges_of_children() {
        let s = sorted(200, 2);
        let p = Partitioning1D::new(200, vec![30, 80, 120, 170]).unwrap();
        let t = PartitionTree::from_partitioning(&s, &p).unwrap();
        for id in 0..t.n_nodes() {
            if t.is_leaf(id) {
                continue;
            }
            let merged = t
                .children(id)
                .iter()
                .fold(Aggregates::empty(), |acc, &c| acc.merge(t.agg(c)));
            assert!((t.agg(id).sum - merged.sum).abs() < 1e-9);
            assert_eq!(t.agg(id).count, merged.count);
            assert_eq!(t.agg(id).min, merged.min);
            assert_eq!(t.agg(id).max, merged.max);
        }
    }

    #[test]
    fn parent_pointers_consistent() {
        let s = sorted(64, 3);
        let p = Partitioning1D::new(64, (1..8).map(|i| i * 8).collect()).unwrap();
        let t = PartitionTree::from_partitioning(&s, &p).unwrap();
        for id in 0..t.n_nodes() {
            for &c in t.children(id) {
                assert_eq!(t.parent(c), Some(id));
            }
        }
    }

    #[test]
    fn odd_leaf_count_builds_valid_tree() {
        let s = sorted(90, 4);
        let p = Partitioning1D::new(90, vec![30, 60]).unwrap(); // 3 leaves
        let t = PartitionTree::from_partitioning(&s, &p).unwrap();
        assert_eq!(t.n_leaves(), 3);
        assert_eq!(t.total_rows(), 90);
        // Root still aggregates everything.
        let whole = Aggregates::from_values(s.values());
        assert!((t.agg(t.root()).sum - whole.sum).abs() < 1e-9);
    }

    #[test]
    fn single_leaf_tree_is_just_root() {
        let s = sorted(10, 5);
        let p = Partitioning1D::single(10);
        let t = PartitionTree::from_partitioning(&s, &p).unwrap();
        assert_eq!(t.n_nodes(), 1);
        assert_eq!(t.leaves(), vec![t.root()]);
    }

    #[test]
    fn leaf_rects_bound_their_keys() {
        let s = sorted(150, 6);
        let p = Partitioning1D::new(150, vec![50, 100]).unwrap();
        let t = PartitionTree::from_partitioning(&s, &p).unwrap();
        let key_bounds = p.key_bounds(&s);
        for (li, id) in t.leaves().into_iter().enumerate() {
            assert_eq!(t.rect_lo(id, 0), key_bounds[li].0);
            assert_eq!(t.rect_hi(id, 0), key_bounds[li].1);
        }
    }

    #[test]
    fn kd_tree_mirrors_expansion() {
        let table = taxi(800, 7).project(&[1, 2]).unwrap();
        let kd = build_kd(
            &table,
            10,
            KdExpansion::MaxVariance {
                kind: AggKind::Sum,
                balance: 2,
            },
            0,
        )
        .unwrap();
        let t = PartitionTree::from_kd(&table, &kd).unwrap();
        assert_eq!(t.n_nodes(), kd.nodes.len());
        assert_eq!(t.n_leaves(), kd.n_leaves());
        assert_eq!(t.total_rows(), 800);
        assert_eq!(t.dims(), 2);
        // Parent merge invariant in the kd case too.
        for id in 0..t.n_nodes() {
            if t.is_leaf(id) {
                continue;
            }
            let merged_count: u64 = t.children(id).iter().map(|&c| t.agg(c).count).sum();
            assert_eq!(t.agg(id).count, merged_count);
        }
    }

    #[test]
    fn leaves_enumerate_in_leaf_index_order() {
        let s = sorted(40, 8);
        let p = Partitioning1D::new(40, vec![10, 20, 30]).unwrap();
        let t = PartitionTree::from_partitioning(&s, &p).unwrap();
        for (expect, id) in t.leaves().into_iter().enumerate() {
            assert_eq!(t.leaf_index(id), Some(expect));
        }
    }

    #[test]
    fn relation_matches_rect_reference() {
        let s = sorted(120, 10);
        let p = Partitioning1D::new(120, vec![40, 80]).unwrap();
        let t = PartitionTree::from_partitioning(&s, &p).unwrap();
        for lo in [-1.0, 0.0, 0.3, 0.9] {
            let query = Rect::interval(lo, lo + 0.25);
            for id in 0..t.n_nodes() {
                assert_eq!(
                    t.relation_to(id, &query),
                    t.rect(id).relation_to(&query),
                    "node {id} query [{lo}, {}]",
                    lo + 0.25
                );
            }
        }
    }

    #[test]
    fn storage_accounting_scales_with_nodes() {
        let s = sorted(64, 9);
        let p = Partitioning1D::new(64, vec![16, 32, 48]).unwrap();
        let t = PartitionTree::from_partitioning(&s, &p).unwrap();
        assert_eq!(t.storage_bytes(), t.n_nodes() * 6 * 8);
    }
}
