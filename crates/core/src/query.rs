//! Query processing (Section 3.3): index lookup → partial aggregation →
//! sample estimation → combined result with CI and hard bounds.

use pass_common::{AggKind, Estimate, PassError, Query, Result};
use pass_sampling::{
    combine_strata, PointVariance, Sample, SampleArena, ScanScratch, StratumEstimate,
};

use crate::bounds::hard_bounds_exact;
use crate::mcf::{mcf_shifted, McfResult, McfScratch};
use crate::tree::PartitionTree;

/// Answer `query` over the annotated tree and its per-leaf stratified
/// samples. `lambda` scales the confidence interval; `zero_variance_rule`
/// enables the Section 3.4 AVG short-circuit.
///
/// One-shot convenience: flattens `leaf_samples` into a [`SampleArena`]
/// per call. The synopsis serving path keeps a prebuilt arena alive and
/// goes through the crate-internal `process_arena` instead.
pub fn process(
    tree: &PartitionTree,
    leaf_samples: &[Sample],
    query: &Query,
    lambda: f64,
    zero_variance_rule: bool,
) -> Result<Estimate> {
    process_with_tree_dims(tree, leaf_samples, query, lambda, zero_variance_rule, None)
}

/// Like [`process`], but for the workload-shift scenario (Section 5.4.1):
/// the tree indexes only `tree_dims` of the query's predicate space, while
/// the leaf samples carry all predicate columns. Classification happens in
/// the projected space; sample estimation uses the full predicate.
pub fn process_with_tree_dims(
    tree: &PartitionTree,
    leaf_samples: &[Sample],
    query: &Query,
    lambda: f64,
    zero_variance_rule: bool,
    tree_dims: Option<&[usize]>,
) -> Result<Estimate> {
    let arena = SampleArena::from_samples(leaf_samples);
    process_arena(tree, &arena, query, lambda, zero_variance_rule, tree_dims)
}

/// [`process_with_tree_dims`] off a prebuilt [`SampleArena`] — the serving
/// path: partial-leaf scans read the flat arena instead of chasing
/// per-`Sample` heap pointers, with bit-identical results.
pub(crate) fn process_arena(
    tree: &PartitionTree,
    arena: &SampleArena,
    query: &Query,
    lambda: f64,
    zero_variance_rule: bool,
    tree_dims: Option<&[usize]>,
) -> Result<Estimate> {
    match tree_dims {
        None => {
            if query.dims() != tree.dims() {
                return Err(PassError::DimensionMismatch {
                    expected: tree.dims(),
                    got: query.dims(),
                });
            }
        }
        Some(dims) => {
            if dims.iter().any(|&d| d >= query.dims()) {
                return Err(PassError::DimensionMismatch {
                    expected: tree.dims(),
                    got: query.dims(),
                });
            }
        }
    }
    McfScratch::with_local(|scratch| match tree_dims {
        None => {
            scratch.run(tree, query, zero_variance_rule);
            let (frontier, scan, strata) = scratch.parts();
            process_frontier(tree, arena, query, lambda, frontier, scan, strata)
        }
        Some(dims) => {
            let frontier = mcf_shifted(tree, query, dims, zero_variance_rule);
            let (_, scan, strata) = scratch.parts();
            process_frontier(tree, arena, query, lambda, &frontier, scan, strata)
        }
    })
}

/// Batched query processing: one [`McfScratch`] carries the traversal
/// state (DFS stack + frontier buffers) across the whole batch, so every
/// query after the first classifies allocation-free, and each query
/// finishes its estimation straight from the scratch frontier.
/// Element-wise identical to repeated [`process`].
///
/// Callers must have checked query arity (this is the identity-dimension
/// path; workload-shift trees take the per-query route).
pub fn process_batch(
    tree: &PartitionTree,
    leaf_samples: &[Sample],
    queries: &[Query],
    lambda: f64,
    zero_variance_rule: bool,
) -> Vec<Result<Estimate>> {
    process_batch_with(
        tree,
        leaf_samples,
        queries,
        lambda,
        zero_variance_rule,
        &mut McfScratch::default(),
    )
}

/// [`process_batch`] with a caller-supplied [`McfScratch`]: the parallel
/// batch path (`Pass::estimate_many_parallel`) creates one scratch per
/// worker thread and runs every chunk that worker steals through it, so
/// scratch reuse — the batching win — survives parallelism.
pub fn process_batch_with(
    tree: &PartitionTree,
    leaf_samples: &[Sample],
    queries: &[Query],
    lambda: f64,
    zero_variance_rule: bool,
    scratch: &mut McfScratch,
) -> Vec<Result<Estimate>> {
    let arena = SampleArena::from_samples(leaf_samples);
    process_batch_arena(tree, &arena, queries, lambda, zero_variance_rule, scratch)
}

/// [`process_batch_with`] off a prebuilt [`SampleArena`] — the serving
/// batch path used by `Pass::estimate_many{,_parallel}`.
pub(crate) fn process_batch_arena(
    tree: &PartitionTree,
    arena: &SampleArena,
    queries: &[Query],
    lambda: f64,
    zero_variance_rule: bool,
    scratch: &mut McfScratch,
) -> Vec<Result<Estimate>> {
    queries
        .iter()
        .map(|query| {
            scratch.run(tree, query, zero_variance_rule);
            let (frontier, scan, strata) = scratch.parts();
            process_frontier(tree, arena, query, lambda, frontier, scan, strata)
        })
        .collect()
}

/// Finish one query from its (pre-computed) coverage frontier: partial
/// aggregation, sample estimation, hard bounds, accounting. Sample scans
/// run on the `scan` kernel scratch and per-stratum estimates accumulate
/// into the reusable `strata` buffer, so a warmed-up scratch finishes the
/// whole query without touching the allocator. The covered SUM/COUNT fold
/// is shared with the bounds computation ([`hard_bounds_exact`]) and the
/// sample accounting rides the per-aggregate partial-leaf loop, so each
/// frontier list is walked once.
#[allow(clippy::too_many_arguments)]
fn process_frontier(
    tree: &PartitionTree,
    arena: &SampleArena,
    query: &Query,
    lambda: f64,
    frontier: &McfResult,
    scan: &mut ScanScratch,
    strata: &mut Vec<StratumEstimate>,
) -> Result<Estimate> {
    let (bounds, exact_part) = hard_bounds_exact(tree, frontier, query.agg);

    // Sample accounting, accumulated by the partial-leaf scan loops:
    // every partial leaf's whole sample is scanned.
    let mut processed = 0u64;

    let mut est = match query.agg {
        AggKind::Sum | AggKind::Count => process_sum_count(
            tree,
            arena,
            query,
            lambda,
            frontier,
            exact_part,
            scan,
            strata,
            &mut processed,
        ),
        AggKind::Avg => process_avg(
            tree,
            arena,
            query,
            lambda,
            frontier,
            &bounds,
            scan,
            strata,
            &mut processed,
        )?,
        AggKind::Min | AggKind::Max => {
            process_minmax(tree, arena, query, frontier, &bounds, scan, &mut processed)?
        }
    };
    let skipped = tree.total_rows().saturating_sub(processed);
    est = est.with_accounting(processed, skipped);
    if let Some((lb, ub)) = bounds {
        est = est.with_hard_bounds(lb, ub);
    }
    Ok(est)
}

#[inline]
fn stratum_of(tree: &PartitionTree, id: usize) -> usize {
    tree.leaf_index(id)
        .expect("partial frontier nodes are leaves")
}

#[allow(clippy::too_many_arguments)]
fn process_sum_count(
    tree: &PartitionTree,
    arena: &SampleArena,
    query: &Query,
    lambda: f64,
    frontier: &McfResult,
    // Partial Aggregation: exact contribution of covered partitions,
    // folded once inside `hard_bounds_exact` (same addends, same order).
    exact_part: f64,
    scan: &mut ScanScratch,
    strata: &mut Vec<StratumEstimate>,
    processed: &mut u64,
) -> Estimate {
    // Sample Estimation over partial leaves (w_i = 1 for SUM/COUNT).
    strata.clear();
    for &id in &frontier.partial {
        let view = arena.view(stratum_of(tree, id));
        *processed += view.k() as u64;
        if let Some(point) = scan.estimate_view(query.agg, &view, &query.rect) {
            strata.push(StratumEstimate {
                point,
                // Sample populations track leaf counts (an invariant the
                // update path maintains and tests), so the view already
                // carries `tree.agg(id).count`.
                population: view.population,
            });
        }
    }
    let combined = combine_strata(query.agg, strata, 0);

    let value = exact_part + combined.value;
    let ci_half = lambda * combined.variance.sqrt();
    if frontier.partial.is_empty() {
        Estimate::exact(value)
    } else {
        Estimate::approximate(value, ci_half)
    }
}

#[allow(clippy::too_many_arguments)]
fn process_avg(
    tree: &PartitionTree,
    arena: &SampleArena,
    query: &Query,
    lambda: f64,
    frontier: &McfResult,
    bounds: &Option<(f64, f64)>,
    scan: &mut ScanScratch,
    strata: &mut Vec<StratumEstimate>,
    processed: &mut u64,
) -> Result<Estimate> {
    // Relevant strata: covered partitions plus partial leaves with sample
    // evidence. N_q is their total size (Section 3.3's weighting).
    strata.clear();
    // Covered nodes contribute exactly; 0-variance nodes contribute their
    // constant value exactly too (Section 3.4's rule), weighted by their
    // full population per the paper's prescription.
    for &id in frontier.covered.iter().chain(&frontier.zero_var) {
        let agg = tree.agg(id);
        if let Some(avg) = agg.avg() {
            strata.push(StratumEstimate {
                point: PointVariance {
                    value: avg,
                    variance: 0.0,
                    k_pred: agg.count,
                },
                population: agg.count,
            });
        }
    }
    let mut n_q: u64 = strata.iter().map(|s| s.population).sum();
    for &id in &frontier.partial {
        let view = arena.view(stratum_of(tree, id));
        *processed += view.k() as u64;
        if let Some(point) = scan.estimate_view(AggKind::Avg, &view, &query.rect) {
            // Weight partial strata by their *estimated relevant*
            // population N_i · K_pred/K_i rather than the full N_i: only a
            // fraction of a partially-covered stratum contributes to the
            // average, and the sample selectivity is its unbiased
            // estimate. (With full-N_i weights a barely-touched stratum
            // would swamp fully-covered ones. The view's population is
            // N_i: sample populations track leaf counts.)
            let n_i = view.population as f64;
            let selectivity = point.k_pred as f64 / view.k().max(1) as f64;
            let population = ((n_i * selectivity).round() as u64).max(1);
            n_q += population;
            strata.push(StratumEstimate { point, population });
        }
    }

    if strata.is_empty() {
        // No covered partition and no sampled evidence. Fall back to the
        // deterministic bracket when one exists; otherwise the selection is
        // provably empty.
        return match bounds {
            Some((lb, ub)) => {
                Ok(Estimate::approximate((lb + ub) / 2.0, (ub - lb) / 2.0)
                    .with_hard_bounds(*lb, *ub))
            }
            None => Err(PassError::EmptyInput("AVG over empty selection")),
        };
    }

    let combined = combine_strata(AggKind::Avg, strata, n_q);
    let ci_half = lambda * combined.variance.sqrt();
    // 0-variance contributions are exact in value but approximate in
    // weight, so only a frontier with neither partial nor zero-var nodes
    // is fully exact.
    if frontier.partial.is_empty() && frontier.zero_var.is_empty() {
        Ok(Estimate::exact(combined.value))
    } else {
        Ok(Estimate::approximate(combined.value, ci_half))
    }
}

fn process_minmax(
    tree: &PartitionTree,
    arena: &SampleArena,
    query: &Query,
    frontier: &McfResult,
    bounds: &Option<(f64, f64)>,
    scan: &mut ScanScratch,
    processed: &mut u64,
) -> Result<Estimate> {
    let mut best: Option<f64> = None;
    let mut fold = |v: f64| {
        best = Some(match (best, query.agg) {
            (None, _) => v,
            (Some(b), AggKind::Min) => b.min(v),
            (Some(b), _) => b.max(v),
        });
    };
    for &id in &frontier.covered {
        let agg = tree.agg(id);
        if !agg.is_empty() {
            fold(match query.agg {
                AggKind::Min => agg.min,
                _ => agg.max,
            });
        }
    }
    for &id in &frontier.partial {
        let view = arena.view(stratum_of(tree, id));
        *processed += view.k() as u64;
        if let Some(point) = scan.estimate_view(query.agg, &view, &query.rect) {
            fold(point.value);
        }
    }
    match best {
        Some(value) => {
            if frontier.partial.is_empty() {
                Ok(Estimate::exact(value))
            } else {
                Ok(Estimate::approximate(value, 0.0))
            }
        }
        None => {
            match bounds {
                Some((lb, ub)) => Ok(Estimate::approximate((lb + ub) / 2.0, (ub - lb) / 2.0)
                    .with_hard_bounds(*lb, *ub)),
                None => Err(PassError::EmptyInput("MIN/MAX over empty selection")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pass_common::rng::rng_from_seed;
    use pass_common::{Query, LAMBDA_99};
    use pass_partition::Partitioning1D;
    use pass_table::{SortedTable, Table};

    /// Fixture: 400 rows, keys 0..400, values with per-leaf structure;
    /// 8 leaves of 50; full per-leaf samples (so estimates are exact up to
    /// FPC) or partial samples depending on `rate`.
    fn fixture(rate: f64, seed: u64) -> (Table, PartitionTree, Vec<Sample>) {
        let n = 400;
        let keys: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let values: Vec<f64> = (0..n).map(|i| ((i * 7) % 50) as f64 + 1.0).collect();
        let table = Table::one_dim(keys.clone(), values.clone()).unwrap();
        let s = SortedTable::from_sorted(keys, values);
        let cuts: Vec<usize> = (1..8).map(|i| i * 50).collect();
        let p = Partitioning1D::new(n, cuts).unwrap();
        let tree = PartitionTree::from_partitioning(&s, &p).unwrap();
        let mut rng = rng_from_seed(seed);
        let samples: Vec<Sample> = p
            .ranges()
            .into_iter()
            .map(|r| {
                let k = ((r.len() as f64) * rate).ceil() as usize;
                Sample::uniform_from_range(&table, r, k.max(1), &mut rng).unwrap()
            })
            .collect();
        (table, tree, samples)
    }

    #[test]
    fn aligned_queries_are_exact_for_all_aggregates() {
        let (table, tree, samples) = fixture(0.1, 1);
        for agg in AggKind::ALL {
            // Keys 50..=149 align with leaves 1 and 2 exactly.
            let q = Query::interval(agg, 50.0, 149.0);
            let est = process(&tree, &samples, &q, LAMBDA_99, true).unwrap();
            let truth = table.ground_truth(&q).unwrap();
            assert!(est.exact, "{agg} should be exact");
            assert!((est.value - truth).abs() < 1e-9, "{agg}");
            assert_eq!(est.ci_half, 0.0);
        }
    }

    #[test]
    fn partial_queries_estimate_within_ci_mostly() {
        // 99% CI over many seeds: coverage must be high.
        let mut covered = 0;
        let trials = 100;
        for seed in 0..trials {
            let (table, tree, samples) = fixture(0.2, 100 + seed);
            let q = Query::interval(AggKind::Sum, 30.0, 270.0);
            let est = process(&tree, &samples, &q, LAMBDA_99, true).unwrap();
            let truth = table.ground_truth(&q).unwrap();
            if (est.value - truth).abs() <= est.ci_half {
                covered += 1;
            }
        }
        assert!(covered >= 90, "coverage {covered}/{trials}");
    }

    #[test]
    fn hard_bounds_contain_truth_for_every_query_shape() {
        let (table, tree, samples) = fixture(0.1, 3);
        for agg in AggKind::ALL {
            for (lo, hi) in [(0.0, 399.0), (13.0, 77.0), (49.0, 51.0), (350.0, 360.0)] {
                let q = Query::new(agg, pass_common::Rect::interval(lo, hi));
                let est = process(&tree, &samples, &q, LAMBDA_99, true).unwrap();
                let truth = table.ground_truth(&q).unwrap();
                let (lb, ub) = est.hard_bounds.expect("bounds exist for nonempty query");
                assert!(
                    lb - 1e-9 <= truth && truth <= ub + 1e-9,
                    "{agg} [{lo},{hi}]: truth {truth} outside [{lb},{ub}]"
                );
            }
        }
    }

    #[test]
    fn accounting_reflects_skipping() {
        let (_, tree, samples) = fixture(0.1, 4);
        // Aligned query: no samples processed, everything skipped.
        let q = Query::interval(AggKind::Sum, 50.0, 149.0);
        let est = process(&tree, &samples, &q, LAMBDA_99, true).unwrap();
        assert_eq!(est.tuples_processed, 0);
        assert_eq!(est.tuples_skipped, 400);
        assert_eq!(est.skip_rate(), 1.0);
        // Straddling query: two partial leaves' samples processed.
        let q = Query::interval(AggKind::Sum, 30.0, 270.0);
        let est = process(&tree, &samples, &q, LAMBDA_99, true).unwrap();
        let expected: u64 = samples[0].k() as u64 + samples[5].k() as u64;
        assert_eq!(est.tuples_processed, expected);
        assert!(est.skip_rate() > 0.9);
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let (_, tree, samples) = fixture(0.1, 5);
        let q = Query::new(
            AggKind::Sum,
            pass_common::Rect::new(&[(0.0, 1.0), (0.0, 1.0)]),
        );
        assert!(matches!(
            process(&tree, &samples, &q, LAMBDA_99, true),
            Err(PassError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn empty_selection_semantics() {
        let (_, tree, samples) = fixture(0.1, 6);
        let q = Query::interval(AggKind::Sum, 1000.0, 2000.0);
        let est = process(&tree, &samples, &q, LAMBDA_99, true).unwrap();
        assert_eq!(est.value, 0.0);
        assert!(est.exact);
        let q = Query::interval(AggKind::Avg, 1000.0, 2000.0);
        assert!(process(&tree, &samples, &q, LAMBDA_99, true).is_err());
    }

    #[test]
    fn zero_variance_rule_makes_constant_region_avg_exact() {
        // Leaf 0 constant: an AVG query inside it is answered exactly even
        // though the overlap is partial.
        let n = 100;
        let keys: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let values: Vec<f64> = (0..n)
            .map(|i| if i < 25 { 4.0 } else { (i % 13) as f64 })
            .collect();
        let table = Table::one_dim(keys.clone(), values.clone()).unwrap();
        let s = SortedTable::from_sorted(keys, values);
        let p = Partitioning1D::new(n, vec![25, 50, 75]).unwrap();
        let tree = PartitionTree::from_partitioning(&s, &p).unwrap();
        let mut rng = rng_from_seed(7);
        let samples: Vec<Sample> = p
            .ranges()
            .into_iter()
            .map(|r| Sample::uniform_from_range(&table, r, 3, &mut rng).unwrap())
            .collect();
        let q = Query::interval(AggKind::Avg, 5.0, 20.0);
        let est = process(&tree, &samples, &q, LAMBDA_99, true).unwrap();
        // The value is exactly the constant, no samples were touched, and
        // the CI collapses — but the estimate is not flagged `exact`
        // because the matching count (hence AVG weighting against other
        // strata) is unknown under partial overlap.
        assert_eq!(est.value, 4.0);
        assert_eq!(est.ci_half, 0.0);
        assert_eq!(est.tuples_processed, 0);
        // Hard bounds degrade gracefully to the node's (constant) extrema.
        assert_eq!(est.hard_bounds, Some((4.0, 4.0)));
        // Without the rule the same query scans the leaf's sample.
        let est = process(&tree, &samples, &q, LAMBDA_99, false).unwrap();
        assert!(est.tuples_processed > 0);
    }

    #[test]
    fn estimates_are_reasonably_accurate() {
        let (table, tree, samples) = fixture(0.3, 8);
        for agg in [AggKind::Sum, AggKind::Count, AggKind::Avg] {
            let q = Query::interval(agg, 20.0, 333.0);
            let est = process(&tree, &samples, &q, LAMBDA_99, true).unwrap();
            let truth = table.ground_truth(&q).unwrap();
            let rel = (est.value - truth).abs() / truth;
            assert!(rel < 0.15, "{agg}: rel error {rel}");
        }
    }

    #[test]
    fn minmax_point_estimates_bounded_by_hard_bounds() {
        let (_, tree, samples) = fixture(0.2, 9);
        for agg in [AggKind::Min, AggKind::Max] {
            let q = Query::interval(agg, 33.0, 222.0);
            let est = process(&tree, &samples, &q, LAMBDA_99, true).unwrap();
            let (lb, ub) = est.hard_bounds.unwrap();
            assert!(lb <= est.value && est.value <= ub);
        }
    }
}
