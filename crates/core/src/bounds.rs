//! Deterministic hard bounds (Section 2.3).
//!
//! Because every partition's true SUM/COUNT/MIN/MAX are known exactly, any
//! query result can be bracketed deterministically: fully include the
//! partially-overlapping partitions for the upper bound and omit them for
//! the lower bound (SUM/COUNT); bracket AVG between the covered average and
//! the partial extrema. These are 100%-confidence intervals — "no other
//! commonly used sample-based data structure offers this benefit".
//!
//! The paper assumes non-negative values (footnote 2). We additionally
//! handle negative values soundly by widening the partial contribution to
//! `[N_i·min_i, 0]` / `[0, N_i·max_i]` as needed.

use pass_common::AggKind;

use crate::mcf::McfResult;
use crate::tree::PartitionTree;

/// Hard bounds `(lb, ub)` for a query given its coverage frontier.
/// `None` when the query provably matches nothing relevant (AVG/MIN/MAX of
/// an empty selection).
///
/// Aggregates are read straight off the frontier ids (no materialized
/// per-query node lists), in frontier order, so the summations are
/// unchanged from the materializing formulation.
pub fn hard_bounds(tree: &PartitionTree, frontier: &McfResult, agg: AggKind) -> Option<(f64, f64)> {
    hard_bounds_exact(tree, frontier, agg).0
}

/// [`hard_bounds`] plus the exact covered-partition contribution for
/// SUM/COUNT (`0.0` for other aggregates).
///
/// The bounds computation already folds the covered partitions' sums
/// (SUM's `base`) and counts (COUNT's `lb`) — the very folds the
/// partial-aggregation step needs — with `Iterator::sum` in frontier
/// order. Returning that fold lets the query path run it once; the bits
/// are those of a standalone partial-aggregation fold because it *is*
/// that fold.
pub(crate) fn hard_bounds_exact(
    tree: &PartitionTree,
    frontier: &McfResult,
    agg: AggKind,
) -> (Option<(f64, f64)>, f64) {
    let covered = || frontier.covered.iter().map(|&id| tree.agg(id));
    // 0-variance-rule nodes have an unknown matching count, so for hard
    // bounds they behave like partial nodes (only their extrema are safe).
    let partial = || {
        frontier
            .partial
            .iter()
            .chain(&frontier.zero_var)
            .map(|&id| tree.agg(id))
    };
    let no_partial = frontier.partial.is_empty() && frontier.zero_var.is_empty();
    if frontier.covered.is_empty() && no_partial {
        // The exact contribution is still the (empty) covered fold, so its
        // bits — including the `Iterator::sum` seed — match a standalone
        // partial-aggregation pass.
        return match agg {
            AggKind::Sum => (Some((0.0, 0.0)), covered().map(|a| a.sum).sum()),
            AggKind::Count => (Some((0.0, 0.0)), covered().map(|a| a.count as f64).sum()),
            _ => (None, 0.0),
        };
    }
    match agg {
        AggKind::Count => {
            let lb: f64 = covered().map(|a| a.count as f64).sum();
            let ub: f64 = lb + partial().map(|a| a.count as f64).sum::<f64>();
            (Some((lb, ub)), lb)
        }
        AggKind::Sum => {
            let base: f64 = covered().map(|a| a.sum).sum();
            let mut lb = base;
            let mut ub = base;
            for a in partial() {
                // Non-negative partitions contribute [0, SUM_i] exactly as
                // in the paper; mixed-sign partitions widen to the sound
                // envelope.
                if a.min >= 0.0 {
                    ub += a.sum;
                } else if a.max <= 0.0 {
                    lb += a.sum;
                } else {
                    lb += a.count as f64 * a.min.min(0.0);
                    ub += a.count as f64 * a.max.max(0.0);
                }
            }
            (Some((lb, ub)), base)
        }
        AggKind::Avg => {
            let cov_sum: f64 = covered().map(|a| a.sum).sum();
            let cov_count: f64 = covered().map(|a| a.count as f64).sum();
            let partial_max = partial().map(|a| a.max).fold(f64::NEG_INFINITY, f64::max);
            let partial_min = partial().map(|a| a.min).fold(f64::INFINITY, f64::min);
            let bounds = if cov_count > 0.0 {
                let cov_avg = cov_sum / cov_count;
                let ub = if no_partial {
                    cov_avg
                } else {
                    cov_avg.max(partial_max)
                };
                let lb = if no_partial {
                    cov_avg
                } else {
                    cov_avg.min(partial_min)
                };
                Some((lb, ub))
            } else if !no_partial {
                Some((partial_min, partial_max))
            } else {
                None
            };
            (bounds, 0.0)
        }
        AggKind::Min => {
            // True MIN is at most the covered minimum, and at least the
            // smallest minimum over every partition that may contribute.
            let cov_min = covered().map(|a| a.min).fold(f64::INFINITY, f64::min);
            let all_min = partial().map(|a| a.min).fold(cov_min, f64::min);
            let bounds = if frontier.covered.is_empty() {
                // The query may match nothing; the lower envelope is still
                // sound *if* it matches. Report the widest sound bracket.
                Some((
                    all_min,
                    partial().map(|a| a.max).fold(f64::NEG_INFINITY, f64::max),
                ))
            } else {
                Some((all_min, cov_min))
            };
            (bounds, 0.0)
        }
        AggKind::Max => {
            let cov_max = covered().map(|a| a.max).fold(f64::NEG_INFINITY, f64::max);
            let all_max = partial().map(|a| a.max).fold(cov_max, f64::max);
            let bounds = if frontier.covered.is_empty() {
                Some((
                    partial().map(|a| a.min).fold(f64::INFINITY, f64::min),
                    all_max,
                ))
            } else {
                Some((cov_max, all_max))
            };
            (bounds, 0.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mcf::mcf;
    use pass_common::{Query, Rect};
    use pass_partition::Partitioning1D;
    use pass_table::{SortedTable, Table};

    fn fixture() -> (Table, PartitionTree) {
        let keys: Vec<f64> = (0..80).map(|i| i as f64).collect();
        let values: Vec<f64> = (0..80).map(|i| ((i * 13) % 29) as f64 + 1.0).collect();
        let table = Table::one_dim(keys.clone(), values.clone()).unwrap();
        let s = SortedTable::from_sorted(keys, values);
        let p = Partitioning1D::new(80, vec![20, 40, 60]).unwrap();
        (table, PartitionTree::from_partitioning(&s, &p).unwrap())
    }

    #[test]
    fn bounds_always_contain_the_truth() {
        let (table, tree) = fixture();
        for agg in AggKind::ALL {
            for (lo, hi) in [
                (0.0, 79.0),
                (5.0, 33.0),
                (20.0, 59.0),
                (41.0, 44.0),
                (0.0, 19.0),
            ] {
                let q = Query::new(agg, Rect::interval(lo, hi));
                let frontier = mcf(&tree, &q, false);
                let Some((lb, ub)) = hard_bounds(&tree, &frontier, agg) else {
                    continue;
                };
                let truth = table.ground_truth(&q).unwrap();
                assert!(
                    lb - 1e-9 <= truth && truth <= ub + 1e-9,
                    "{agg} [{lo},{hi}]: truth {truth} outside [{lb},{ub}]"
                );
            }
        }
    }

    #[test]
    fn aligned_queries_have_tight_sum_count_bounds() {
        let (table, tree) = fixture();
        let q = Query::interval(AggKind::Sum, 20.0, 59.0);
        let frontier = mcf(&tree, &q, false);
        assert!(frontier.partial.is_empty());
        let (lb, ub) = hard_bounds(&tree, &frontier, AggKind::Sum).unwrap();
        let truth = table.ground_truth(&q).unwrap();
        assert_eq!(lb, ub);
        assert!((lb - truth).abs() < 1e-9);
    }

    #[test]
    fn empty_frontier_semantics() {
        let (_, tree) = fixture();
        let q = Query::interval(AggKind::Sum, 900.0, 950.0);
        let frontier = mcf(&tree, &q, false);
        assert_eq!(
            hard_bounds(&tree, &frontier, AggKind::Sum),
            Some((0.0, 0.0))
        );
        assert_eq!(
            hard_bounds(&tree, &frontier, AggKind::Count),
            Some((0.0, 0.0))
        );
        assert_eq!(hard_bounds(&tree, &frontier, AggKind::Avg), None);
        assert_eq!(hard_bounds(&tree, &frontier, AggKind::Min), None);
    }

    #[test]
    fn negative_values_still_bracket_sum() {
        let keys: Vec<f64> = (0..40).map(|i| i as f64).collect();
        let values: Vec<f64> = (0..40).map(|i| i as f64 - 20.0).collect(); // mixed sign
        let table = Table::one_dim(keys.clone(), values.clone()).unwrap();
        let s = SortedTable::from_sorted(keys, values);
        let p = Partitioning1D::new(40, vec![10, 20, 30]).unwrap();
        let tree = PartitionTree::from_partitioning(&s, &p).unwrap();
        for (lo, hi) in [(3.0, 27.0), (15.0, 24.0), (0.0, 39.0)] {
            let q = Query::interval(AggKind::Sum, lo, hi);
            let frontier = mcf(&tree, &q, false);
            let (lb, ub) = hard_bounds(&tree, &frontier, AggKind::Sum).unwrap();
            let truth = table.ground_truth(&q).unwrap();
            assert!(lb - 1e-9 <= truth && truth <= ub + 1e-9);
        }
    }

    #[test]
    fn avg_bounds_use_partial_extrema() {
        let (table, tree) = fixture();
        // Partially covers leaf 0 only: bounds are that leaf's min/max.
        let q = Query::interval(AggKind::Avg, 3.0, 9.0);
        let frontier = mcf(&tree, &q, false);
        let (lb, ub) = hard_bounds(&tree, &frontier, AggKind::Avg).unwrap();
        let truth = table.ground_truth(&q).unwrap();
        assert!(lb <= truth && truth <= ub);
        let leaf0 = tree.agg(tree.leaves()[0]);
        assert_eq!(lb, leaf0.min);
        assert_eq!(ub, leaf0.max);
    }

    #[test]
    fn minmax_bounds_shrink_with_coverage() {
        let (table, tree) = fixture();
        // Fully covered query: MAX bounds pin down between covered max and
        // overall candidate max.
        let q = Query::interval(AggKind::Max, 0.0, 79.0);
        let frontier = mcf(&tree, &q, false);
        let (lb, ub) = hard_bounds(&tree, &frontier, AggKind::Max).unwrap();
        let truth = table.ground_truth(&q).unwrap();
        assert_eq!(lb, truth);
        assert_eq!(ub, truth);
    }
}
