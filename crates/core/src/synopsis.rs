//! The [`Pass`] synopsis and its builder (the user-facing API of
//! Section 3.1).
//!
//! The user picks an aggregation column and predicate columns (by shaping
//! the input [`Table`]), a partition budget `k` (standing in for the
//! construction-time limit τ_c) and a sampling budget (standing in for the
//! query-time limit τ_q); the builder optimizes the partitioning, erects
//! the aggregate tree, and draws the per-leaf stratified samples.

use rand::seq::index::sample as index_sample;
use rand::Rng;

use pass_common::rng::{derive_seed, rng_from_seed};
use pass_common::{
    apply_group_availability, AggKind, EngineSpec, Estimate, GroupByQuery, GroupResult, PassError,
    PassSpec, Query, Result, Synopsis,
};
use pass_partition::{
    build_kd, Adp, EqualDepth, EqualWidth, HillClimb, KdExpansion, Partitioner1D,
};
use pass_sampling::delta::DeltaEncoded;
use pass_sampling::{Sample, SampleArena};
use pass_table::{SortedTable, Table};

use crate::tree::PartitionTree;

// The strategy enum is shared vocabulary (it appears inside `PassSpec`);
// re-exported here so existing `pass_core::PartitionStrategy` paths keep
// working.
pub use pass_common::PartitionStrategy;

/// Builder for [`Pass`] — a fluent wrapper around [`PassSpec`].
///
/// `PassBuilder::new().partitions(32).build(&t)` and
/// `Pass::from_spec(&t, &PassSpec { partitions: 32, ..Default::default() })`
/// are equivalent; the spec is the declarative form used by the engine
/// registry and `pass::Session`.
#[derive(Debug, Clone, Default)]
pub struct PassBuilder {
    spec: PassSpec,
}

impl PassBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    /// Builder preloaded with an existing spec.
    pub fn from_spec(spec: &PassSpec) -> Self {
        Self { spec: spec.clone() }
    }

    /// The declarative form of this builder's current configuration.
    pub fn spec(&self) -> &PassSpec {
        &self.spec
    }

    /// Number of leaf partitions `k` (the precomputation budget).
    pub fn partitions(mut self, k: usize) -> Self {
        self.spec.partitions = k;
        self
    }

    /// Per-stratum sampling rate (fraction of each leaf's rows).
    pub fn sample_rate(mut self, rate: f64) -> Self {
        self.spec.sample_rate = rate;
        self
    }

    /// Hard cap on total stored samples (the BSS storage-bounded mode);
    /// overrides [`sample_rate`](Self::sample_rate) allocation proportions
    /// but keeps them proportional to leaf sizes.
    pub fn total_samples(mut self, k: usize) -> Self {
        self.spec.total_samples = Some(k);
        self
    }

    pub fn strategy(mut self, s: PartitionStrategy) -> Self {
        self.spec.strategy = s;
        self
    }

    /// CI scale λ (default 2.576 → 99%).
    pub fn lambda(mut self, lambda: f64) -> Self {
        self.spec.lambda = lambda;
        self
    }

    /// Store sample values as f32 deltas from the partition mean
    /// (Section 3.4 compression).
    pub fn delta_encode(mut self, on: bool) -> Self {
        self.spec.delta_encode = on;
        self
    }

    /// Enable/disable the AVG 0-variance rule (default on).
    pub fn zero_variance_rule(mut self, on: bool) -> Self {
        self.spec.zero_variance_rule = on;
        self
    }

    /// ADP optimization sample size `m`.
    pub fn opt_samples(mut self, m: usize) -> Self {
        self.spec.opt_samples = m;
        self
    }

    /// ADP meaningful-overlap fraction δ.
    pub fn adp_delta(mut self, delta: f64) -> Self {
        self.spec.adp_delta = delta;
        self
    }

    /// KD-PASS leaf-depth balance limit (default 2, per Section 5.4).
    pub fn kd_balance(mut self, balance: usize) -> Self {
        self.spec.kd_balance = balance;
        self
    }

    pub fn seed(mut self, seed: u64) -> Self {
        self.spec.seed = seed;
        self
    }

    /// Workload-shift mode (Section 5.4.1): index only these predicate
    /// dimensions in the partition tree while samples keep every predicate
    /// column. Queries still arrive in the table's full arity; dimensions
    /// outside the tree are handled by sampling after tree-based skipping.
    pub fn tree_dims(mut self, dims: &[usize]) -> Self {
        self.spec.tree_dims = Some(dims.to_vec());
        self
    }

    /// Build over the table: 1-D tables take the sorted-DP path, higher
    /// dimensional tables the k-d expansion path.
    pub fn build(&self, table: &Table) -> Result<Pass> {
        if table.n_rows() == 0 {
            return Err(PassError::EmptyInput("PASS over empty table"));
        }
        if self.spec.partitions == 0 {
            return Err(PassError::InvalidParameter(
                "partitions",
                "must be at least 1".into(),
            ));
        }
        if let Some(dims) = self.spec.tree_dims.clone() {
            return self.build_shifted(table, &dims);
        }
        if table.dims() == 1 {
            self.build_1d(table)
        } else {
            self.build_kd(table)
        }
    }

    fn partitioner_1d(&self) -> Box<dyn Partitioner1D> {
        match self.spec.strategy {
            PartitionStrategy::Adp(kind) => Box::new(
                Adp::new(kind)
                    .with_samples(self.spec.opt_samples)
                    .with_delta(self.spec.adp_delta)
                    .with_seed(derive_seed(self.spec.seed, 1)),
            ),
            PartitionStrategy::EqualDepth => Box::new(EqualDepth),
            PartitionStrategy::HillClimb => Box::new(HillClimb::new(AggKind::Sum)),
            PartitionStrategy::EqualWidth => Box::new(EqualWidth),
        }
    }

    fn build_1d(&self, table: &Table) -> Result<Pass> {
        let sorted = SortedTable::from_table(table, 0);
        let partitioning = self
            .partitioner_1d()
            .partition(&sorted, self.spec.partitions)?;
        let tree = PartitionTree::from_partitioning(&sorted, &partitioning)?;
        // Re-materialize the sorted view as a table so per-range sampling
        // sees rows in partition order.
        let sorted_table = Table::one_dim(sorted.keys().to_vec(), sorted.values().to_vec())?;
        let mut rng = rng_from_seed(derive_seed(self.spec.seed, 2));
        let leaf_sizes: Vec<usize> = partitioning.ranges().iter().map(|r| r.len()).collect();
        let allocations = self.allocate_samples(&leaf_sizes);
        let mut samples = Vec::with_capacity(leaf_sizes.len());
        for (range, k) in partitioning.ranges().into_iter().zip(allocations) {
            samples.push(Sample::uniform_from_range(
                &sorted_table,
                range,
                k,
                &mut rng,
            )?);
        }
        self.finish(tree, samples)
    }

    fn build_kd(&self, table: &Table) -> Result<Pass> {
        let expansion = match self.spec.strategy {
            PartitionStrategy::Adp(kind) => KdExpansion::MaxVariance {
                kind,
                balance: self.spec.kd_balance,
            },
            _ => KdExpansion::BreadthFirst,
        };
        let kd = build_kd(
            table,
            self.spec.partitions,
            expansion,
            derive_seed(self.spec.seed, 3),
        )?;
        let tree = PartitionTree::from_kd(table, &kd)?;
        let leaves = kd.leaf_ids();
        let leaf_sizes: Vec<usize> = leaves.iter().map(|&l| kd.nodes[l].len()).collect();
        let allocations = self.allocate_samples(&leaf_sizes);
        let mut rng = rng_from_seed(derive_seed(self.spec.seed, 4));
        let mut samples = Vec::with_capacity(leaves.len());
        for (&leaf, k) in leaves.iter().zip(allocations) {
            let rows = kd.rows_of(leaf);
            let chosen: Vec<usize> = if k >= rows.len() {
                rows.iter().map(|&r| r as usize).collect()
            } else {
                index_sample(&mut rng, rows.len(), k)
                    .into_iter()
                    .map(|i| rows[i] as usize)
                    .collect()
            };
            samples.push(Sample::from_indices(table, &chosen, rows.len() as u64)?);
        }
        self.finish(tree, samples)
    }

    /// Workload-shift build: the tree indexes a projection of the
    /// predicate space, samples keep all predicate columns.
    fn build_shifted(&self, table: &Table, dims: &[usize]) -> Result<Pass> {
        let projected = table.project(dims)?;
        let expansion = match self.spec.strategy {
            PartitionStrategy::Adp(kind) => KdExpansion::MaxVariance {
                kind,
                balance: self.spec.kd_balance,
            },
            _ => KdExpansion::BreadthFirst,
        };
        let kd = build_kd(
            &projected,
            self.spec.partitions,
            expansion,
            derive_seed(self.spec.seed, 5),
        )?;
        let tree = PartitionTree::from_kd(&projected, &kd)?;
        let leaves = kd.leaf_ids();
        let leaf_sizes: Vec<usize> = leaves.iter().map(|&l| kd.nodes[l].len()).collect();
        let allocations = self.allocate_samples(&leaf_sizes);
        let mut rng = rng_from_seed(derive_seed(self.spec.seed, 6));
        let mut samples = Vec::with_capacity(leaves.len());
        for (&leaf, k) in leaves.iter().zip(allocations) {
            let rows = kd.rows_of(leaf);
            let chosen: Vec<usize> = if k >= rows.len() {
                rows.iter().map(|&r| r as usize).collect()
            } else {
                index_sample(&mut rng, rows.len(), k)
                    .into_iter()
                    .map(|i| rows[i] as usize)
                    .collect()
            };
            // Samples come from the FULL table: all predicate columns.
            samples.push(Sample::from_indices(table, &chosen, rows.len() as u64)?);
        }
        let mut pass = self.finish(tree, samples)?;
        pass.tree_dims = Some(dims.to_vec());
        pass.query_dims = table.dims();
        Ok(pass)
    }

    /// Per-leaf sample sizes: proportional to leaf populations, at least 1
    /// per non-empty leaf, matching either the rate or the BSS cap.
    fn allocate_samples(&self, leaf_sizes: &[usize]) -> Vec<usize> {
        match self.spec.total_samples {
            None => leaf_sizes
                .iter()
                .map(|&n| ((n as f64 * self.spec.sample_rate).round() as usize).clamp(1, n.max(1)))
                .collect(),
            Some(total) => {
                let n_total: usize = leaf_sizes.iter().sum();
                if n_total == 0 {
                    return vec![0; leaf_sizes.len()];
                }
                leaf_sizes
                    .iter()
                    .map(|&n| {
                        let share = (total as f64 * n as f64 / n_total as f64).round() as usize;
                        share.clamp(usize::from(n > 0), n.max(1))
                    })
                    .collect()
            }
        }
    }

    fn finish(&self, tree: PartitionTree, mut samples: Vec<Sample>) -> Result<Pass> {
        let leaves = tree.leaves();
        if self.spec.delta_encode {
            // Round-trip the sample values through the f32 delta codec so
            // estimates genuinely reflect the compressed representation.
            for (li, sample) in samples.iter_mut().enumerate() {
                let mean = tree.agg(leaves[li]).avg().unwrap_or(0.0);
                let values: Vec<f64> = (0..sample.k()).map(|i| sample.rows().value(i)).collect();
                let decoded = DeltaEncoded::encode(&values, mean).decode();
                for (i, v) in decoded.into_iter().enumerate() {
                    let preds: Vec<f64> = (0..sample.rows().dims())
                        .map(|d| sample.rows().predicate(d, i))
                        .collect();
                    sample.replace_row(i, v, &preds);
                }
            }
        }
        let query_dims = tree.dims();
        let arena = SampleArena::from_samples(&samples);
        Ok(Pass {
            tree,
            samples,
            arena,
            lambda: self.spec.lambda,
            zero_variance_rule: self.spec.zero_variance_rule,
            delta_encoded: self.spec.delta_encode,
            seed: self.spec.seed,
            name: self.spec.name.clone().unwrap_or_else(|| "PASS".to_owned()),
            tree_dims: None,
            query_dims,
            spec: self.spec.clone(),
            mutation_epoch: 0,
        })
    }
}

/// A built PASS synopsis: aggregate tree + per-leaf stratified samples.
#[derive(Debug, Clone)]
pub struct Pass {
    pub(crate) tree: PartitionTree,
    pub(crate) samples: Vec<Sample>,
    /// Flat, cache-resident mirror of `samples` — the structure the query
    /// hot path actually scans. Derived: rebuilt on every mutation epoch.
    pub(crate) arena: SampleArena,
    pub(crate) lambda: f64,
    pub(crate) zero_variance_rule: bool,
    pub(crate) delta_encoded: bool,
    pub(crate) seed: u64,
    pub(crate) name: String,
    /// Workload-shift mapping: tree dimension j indexes query dimension
    /// `tree_dims[j]` (`None` = identity).
    pub(crate) tree_dims: Option<Vec<usize>>,
    /// Arity queries must arrive in (the sample/table arity).
    pub(crate) query_dims: usize,
    /// The declarative configuration this synopsis was built from.
    pub(crate) spec: PassSpec,
    /// Mutations absorbed since the build (inserts, deletes, maintenance
    /// restructurings) — the [`Synopsis::update_epoch`] counter that lets
    /// `CachedSynopsis` drop stale answers automatically.
    pub(crate) mutation_epoch: u64,
}

impl Pass {
    /// Build directly from a declarative [`PassSpec`] — the registry /
    /// `Session` construction path. Equivalent to
    /// `PassBuilder::from_spec(spec).build(table)`.
    pub fn from_spec(table: &Table, spec: &PassSpec) -> Result<Pass> {
        PassBuilder::from_spec(spec).build(table)
    }

    /// The annotated partition tree.
    pub fn tree(&self) -> &PartitionTree {
        &self.tree
    }

    /// Per-leaf stratified samples (leaf-index order).
    pub fn leaf_samples(&self) -> &[Sample] {
        &self.samples
    }

    /// Total stored sample rows.
    pub fn total_samples(&self) -> usize {
        self.samples.iter().map(|s| s.k()).sum()
    }

    /// Override the printed engine name (benchmark variants like
    /// `PASS-BSS2x`). The stored spec keeps the override so it round-trips.
    pub fn with_name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self.spec.name = Some(self.name.clone());
        self
    }

    /// The CI scale λ in use.
    pub fn lambda(&self) -> f64 {
        self.lambda
    }

    /// Mutations absorbed since the build (see [`Synopsis::update_epoch`]).
    pub fn mutation_epoch(&self) -> u64 {
        self.mutation_epoch
    }

    /// Record one absorbed mutation. Every path that changes query-visible
    /// state (`insert`, `delete`, maintenance restructurings) must call
    /// this so epoch-aware caches never serve stale answers. Doubling as
    /// the derived-state choke point, it also rebuilds the flat
    /// [`SampleArena`] and the tree's empty-node flag, so the hot path can
    /// keep trusting both between mutations.
    pub(crate) fn bump_mutation_epoch(&mut self) {
        self.mutation_epoch += 1;
        self.arena = SampleArena::from_samples(&self.samples);
        self.tree.refresh_has_empty();
    }

    /// Draw a deterministic RNG for update operations.
    pub(crate) fn update_rng(&self, salt: u64) -> impl Rng {
        rng_from_seed(derive_seed(self.seed, 0xD11 ^ salt))
    }
}

impl Synopsis for Pass {
    fn name(&self) -> &str {
        &self.name
    }

    fn estimate(&self, query: &Query) -> Result<Estimate> {
        if query.dims() != self.query_dims {
            return Err(PassError::DimensionMismatch {
                expected: self.query_dims,
                got: query.dims(),
            });
        }
        crate::query::process_arena(
            &self.tree,
            &self.arena,
            query,
            self.lambda,
            self.zero_variance_rule,
            self.tree_dims.as_deref(),
        )
    }

    /// Batched estimation reusing MCF traversal state across the batch:
    /// one [`crate::mcf::McfScratch`] (DFS stack + frontier buffers)
    /// serves every query, so each query after the first classifies
    /// allocation-free — measurably faster than N repeated
    /// [`estimate`](Self::estimate) calls, with bit-identical results.
    /// (A fully shared single-walk classifier exists as
    /// [`crate::mcf::mcf_batch`] for analysis and benchmarking.)
    fn estimate_many(&self, queries: &[Query]) -> Vec<Result<Estimate>> {
        // The workload-shift path classifies in a projected space with
        // per-query decidability; batch only the common (identity) case.
        let batchable =
            self.tree_dims.is_none() && queries.iter().all(|q| q.dims() == self.query_dims);
        if !batchable {
            return queries.iter().map(|q| self.estimate(q)).collect();
        }
        crate::query::process_batch_arena(
            &self.tree,
            &self.arena,
            queries,
            self.lambda,
            self.zero_variance_rule,
            &mut crate::mcf::McfScratch::default(),
        )
    }

    /// Parallel batched estimation: the batch is sharded across the pool's
    /// workers, and — unlike the trait default, which would build a fresh
    /// [`crate::mcf::McfScratch`] per stolen chunk — each worker builds
    /// **one** scratch and reuses it across every chunk it steals, so the
    /// allocation-free traversal of [`estimate_many`](Self::estimate_many)
    /// is preserved per worker. Results are element-wise bit-identical to
    /// the sequential paths (the synopsis is immutable and estimation is
    /// deterministic per query).
    fn estimate_many_parallel(
        &self,
        queries: &[Query],
        pool: &pass_common::ThreadPool,
    ) -> Vec<Result<Estimate>> {
        if pool.threads() <= 1 || queries.len() < pass_common::PARALLEL_MIN_BATCH {
            return self.estimate_many(queries);
        }
        let batchable =
            self.tree_dims.is_none() && queries.iter().all(|q| q.dims() == self.query_dims);
        let chunk = pool.chunk_size_for(queries.len());
        if !batchable {
            // Workload-shift trees / mixed-arity batches: shard the
            // per-query fallback path instead.
            return pool.map_chunks(queries.len(), chunk, |range| {
                self.estimate_many(&queries[range])
            });
        }
        pool.map_chunks_with(
            queries.len(),
            chunk,
            crate::mcf::McfScratch::default,
            |scratch, range| {
                crate::query::process_batch_arena(
                    &self.tree,
                    &self.arena,
                    &queries[range],
                    self.lambda,
                    self.zero_variance_rule,
                    scratch,
                )
            },
        )
    }

    /// Group-by via the batched path: the per-category equality
    /// rectangles go through [`estimate_many`](Self::estimate_many), so
    /// one MCF traversal scratch serves every category instead of each
    /// group paying a fresh allocation. Results are bit-identical to the
    /// trait default (the batched path matches `estimate` per query, and
    /// for non-sharded engines the default's per-category partial is the
    /// engine's own estimate), with the same group availability rule
    /// applied per row.
    fn estimate_group_by(&self, query: &GroupByQuery) -> Result<Vec<GroupResult>> {
        query.validate(self.dims())?;
        let answers = self.estimate_many(&query.queries());
        Ok(query
            .categories
            .iter()
            .zip(answers)
            .map(|(&key, estimate)| GroupResult {
                key,
                estimate: apply_group_availability(estimate),
            })
            .collect())
    }

    fn spec(&self) -> EngineSpec {
        EngineSpec::Pass(self.spec.clone())
    }

    fn save_state(&self, out: &mut Vec<u8>) -> Result<()> {
        crate::snapshot::save_pass(self, out)
    }

    /// Streaming updates make `Pass` the one mutable engine in the
    /// workspace; exposing the mutation count lets `CachedSynopsis`
    /// invalidate stale entries automatically (no manual `clear_cache`).
    fn update_epoch(&self) -> u64 {
        self.mutation_epoch
    }

    fn storage_bytes(&self) -> usize {
        let sample_bytes: usize = self
            .samples
            .iter()
            .map(|s| {
                if self.delta_encoded {
                    // f32 per value + f64 per predicate coordinate + mean.
                    8 + s.k() * (4 + 8 * s.rows().dims())
                } else {
                    s.storage_bytes()
                }
            })
            .sum();
        self.tree.storage_bytes() + sample_bytes
    }

    fn dims(&self) -> usize {
        self.query_dims
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pass_table::datasets::{adversarial, taxi, uniform};

    #[test]
    fn builds_and_answers_on_uniform_data() {
        let t = uniform(20_000, 1);
        let pass = PassBuilder::new()
            .partitions(32)
            .sample_rate(0.02)
            .seed(2)
            .build(&t)
            .unwrap();
        assert_eq!(pass.tree().n_leaves(), 32);
        for agg in [AggKind::Sum, AggKind::Count, AggKind::Avg] {
            let q = Query::interval(agg, 0.1, 0.8);
            let est = pass.estimate(&q).unwrap();
            let truth = t.ground_truth(&q).unwrap();
            let rel = (est.value - truth).abs() / truth.abs();
            assert!(rel < 0.1, "{agg}: rel {rel}");
        }
    }

    #[test]
    fn sample_budget_respected_in_bss_mode() {
        let t = uniform(10_000, 3);
        let pass = PassBuilder::new()
            .partitions(16)
            .total_samples(200)
            .build(&t)
            .unwrap();
        let total = pass.total_samples();
        assert!(
            (184..=216).contains(&total),
            "rounding keeps totals near the cap: {total}"
        );
    }

    #[test]
    fn equal_depth_strategy_builds() {
        let t = uniform(5_000, 4);
        let pass = PassBuilder::new()
            .partitions(8)
            .strategy(PartitionStrategy::EqualDepth)
            .build(&t)
            .unwrap();
        let sizes: Vec<u64> = pass
            .tree()
            .leaves()
            .into_iter()
            .map(|id| pass.tree().agg(id).count)
            .collect();
        let max = *sizes.iter().max().unwrap();
        let min = *sizes.iter().min().unwrap();
        assert!(max - min <= 1, "{sizes:?}");
    }

    #[test]
    fn adp_beats_equal_depth_on_adversarial_data() {
        let t = adversarial(50_000, 5);
        let q = Query::interval(AggKind::Sum, 44_000.0, 48_123.0);
        let truth = t.ground_truth(&q).unwrap();
        let mut errors = [0.0f64; 2];
        for (slot, strategy) in [
            (0, PartitionStrategy::Adp(AggKind::Sum)),
            (1, PartitionStrategy::EqualDepth),
        ] {
            // Median error over several seeds for stability.
            let mut errs: Vec<f64> = (0..7)
                .map(|seed| {
                    let pass = PassBuilder::new()
                        .partitions(16)
                        .sample_rate(0.002)
                        .strategy(strategy)
                        .seed(100 + seed)
                        .build(&t)
                        .unwrap();
                    let est = pass.estimate(&q).unwrap();
                    (est.value - truth).abs() / truth
                })
                .collect();
            errs.sort_by(|a, b| a.partial_cmp(b).unwrap());
            errors[slot] = errs[errs.len() / 2];
        }
        assert!(
            errors[0] <= errors[1] * 1.5,
            "ADP {} should not lose badly to EQ {}",
            errors[0],
            errors[1]
        );
    }

    #[test]
    fn multi_dim_build_and_query() {
        let t = taxi(20_000, 6).project(&[1, 2]).unwrap();
        let pass = PassBuilder::new()
            .partitions(64)
            .sample_rate(0.02)
            .seed(7)
            .build(&t)
            .unwrap();
        assert_eq!(pass.dims(), 2);
        let rect = t.bounding_rect().unwrap();
        let mid0 = (rect.lo(0) + rect.hi(0)) / 2.0;
        let q = Query::new(AggKind::Sum, rect.narrowed(0, rect.lo(0), mid0));
        let est = pass.estimate(&q).unwrap();
        let truth = t.ground_truth(&q).unwrap();
        let rel = (est.value - truth).abs() / truth;
        assert!(rel < 0.2, "rel {rel}");
        // Hard bounds must hold in multi-d too.
        let (lb, ub) = est.hard_bounds.unwrap();
        assert!(lb - 1e-9 <= truth && truth <= ub + 1e-9);
    }

    #[test]
    fn delta_encoding_shrinks_storage_with_small_accuracy_cost() {
        let t = uniform(20_000, 8);
        let plain = PassBuilder::new()
            .partitions(32)
            .sample_rate(0.02)
            .seed(9)
            .build(&t)
            .unwrap();
        let compressed = PassBuilder::new()
            .partitions(32)
            .sample_rate(0.02)
            .seed(9)
            .delta_encode(true)
            .build(&t)
            .unwrap();
        assert!(compressed.storage_bytes() < plain.storage_bytes());
        let q = Query::interval(AggKind::Sum, 0.2, 0.9);
        let a = plain.estimate(&q).unwrap().value;
        let b = compressed.estimate(&q).unwrap().value;
        assert!((a - b).abs() / a.abs() < 1e-3, "{a} vs {b}");
    }

    #[test]
    fn invalid_builds_rejected() {
        let t = uniform(100, 10);
        assert!(PassBuilder::new().partitions(0).build(&t).is_err());
        let empty = Table::one_dim(vec![], vec![]).unwrap();
        assert!(PassBuilder::new().build(&empty).is_err());
    }

    #[test]
    fn deterministic_given_seed() {
        let t = uniform(5_000, 11);
        let a = PassBuilder::new().partitions(16).seed(5).build(&t).unwrap();
        let b = PassBuilder::new().partitions(16).seed(5).build(&t).unwrap();
        let q = Query::interval(AggKind::Sum, 0.3, 0.6);
        assert_eq!(a.estimate(&q).unwrap().value, b.estimate(&q).unwrap().value);
    }

    #[test]
    fn workload_shift_answers_wider_arity_queries() {
        use pass_common::Rect;
        // 3-predicate table; tree indexes only dims [0, 1].
        let t = taxi(10_000, 20).project(&[1, 2, 3]).unwrap();
        let pass = PassBuilder::new()
            .partitions(32)
            .sample_rate(0.05)
            .tree_dims(&[0, 1])
            .seed(21)
            .build(&t)
            .unwrap();
        assert_eq!(pass.dims(), 3);
        let full = t.bounding_rect().unwrap();
        // Q3-style query: constrains all three dims.
        let rect = Rect::new(&[
            (full.lo(0), (full.lo(0) + full.hi(0)) / 2.0),
            (full.lo(1), full.hi(1)),
            (full.lo(2), (full.lo(2) + full.hi(2)) / 2.0),
        ]);
        let q = Query::new(AggKind::Sum, rect);
        let est = pass.estimate(&q).unwrap();
        let truth = t.ground_truth(&q).unwrap();
        let rel = (est.value - truth).abs() / truth;
        assert!(rel < 0.3, "rel {rel}");
        // Hard bounds stay sound under shift.
        let (lb, ub) = est.hard_bounds.unwrap();
        assert!(lb - 1e-9 <= truth && truth <= ub + 1e-9);

        // Q1-style query: only dim 0 constrained, so coverage is decidable
        // and most tuples should be answered exactly from aggregates.
        let rect = Rect::new(&[
            (full.lo(0), (full.lo(0) + full.hi(0)) / 2.0),
            (f64::NEG_INFINITY, f64::INFINITY),
            (f64::NEG_INFINITY, f64::INFINITY),
        ]);
        let q1 = Query::new(AggKind::Sum, rect);
        let est1 = pass.estimate(&q1).unwrap();
        let truth1 = t.ground_truth(&q1).unwrap();
        assert!((est1.value - truth1).abs() / truth1 < 0.2);
        assert!(est1.skip_rate() > 0.5, "skipping still engages");
    }

    #[test]
    fn estimate_many_is_bit_identical_to_single_estimates() {
        let t = uniform(20_000, 30);
        let pass = PassBuilder::new()
            .partitions(32)
            .sample_rate(0.02)
            .seed(31)
            .build(&t)
            .unwrap();
        let queries: Vec<Query> = (0..64)
            .map(|i| {
                let lo = (i as f64) / 80.0;
                let agg = AggKind::ALL[i % AggKind::ALL.len()];
                Query::interval(agg, lo, lo + 0.2)
            })
            .collect();
        let batch = pass.estimate_many(&queries);
        assert_eq!(batch.len(), queries.len());
        for (q, b) in queries.iter().zip(batch) {
            match (pass.estimate(q), b) {
                (Ok(single), Ok(batched)) => {
                    assert_eq!(single.value, batched.value, "{q:?}");
                    assert_eq!(single.ci_half, batched.ci_half, "{q:?}");
                    assert_eq!(single.exact, batched.exact, "{q:?}");
                    assert_eq!(single.hard_bounds, batched.hard_bounds, "{q:?}");
                    assert_eq!(single.tuples_processed, batched.tuples_processed, "{q:?}");
                }
                (Err(a), Err(b)) => assert_eq!(a, b, "{q:?}"),
                (a, b) => panic!("{q:?}: single {a:?} vs batched {b:?}"),
            }
        }
    }

    #[test]
    fn estimate_many_handles_mismatched_dims_and_shifted_trees() {
        use pass_common::Rect;
        let t = uniform(5_000, 32);
        let pass = PassBuilder::new().partitions(8).seed(33).build(&t).unwrap();
        let queries = vec![
            Query::interval(AggKind::Sum, 0.1, 0.9),
            Query::new(AggKind::Sum, Rect::new(&[(0.0, 1.0), (0.0, 1.0)])),
        ];
        let results = pass.estimate_many(&queries);
        assert!(results[0].is_ok());
        assert!(matches!(
            results[1],
            Err(PassError::DimensionMismatch { .. })
        ));

        // Workload-shift synopses fall back to the per-query path but stay
        // element-wise consistent.
        let t3 = taxi(5_000, 34).project(&[1, 2, 3]).unwrap();
        let shifted = PassBuilder::new()
            .partitions(16)
            .sample_rate(0.05)
            .tree_dims(&[0, 1])
            .seed(35)
            .build(&t3)
            .unwrap();
        let full = t3.bounding_rect().unwrap();
        let q = Query::new(AggKind::Sum, full);
        let batch = shifted.estimate_many(std::slice::from_ref(&q));
        assert_eq!(
            batch[0].as_ref().unwrap().value,
            shifted.estimate(&q).unwrap().value
        );
    }

    #[test]
    fn estimate_many_parallel_is_bit_identical_to_sequential() {
        use pass_common::ThreadPool;
        let t = uniform(20_000, 50);
        let pass = PassBuilder::new()
            .partitions(32)
            .sample_rate(0.02)
            .seed(51)
            .build(&t)
            .unwrap();
        let queries: Vec<Query> = (0..256)
            .map(|i| {
                let lo = (i % 80) as f64 / 100.0;
                let agg = AggKind::ALL[i % AggKind::ALL.len()];
                Query::interval(agg, lo, lo + 0.15)
            })
            .collect();
        let sequential = pass.estimate_many(&queries);
        for threads in [1, 2, 4] {
            let pool = ThreadPool::new(threads);
            let parallel = pass.estimate_many_parallel(&queries, &pool);
            assert_eq!(parallel.len(), sequential.len());
            for (i, (s, p)) in sequential.iter().zip(&parallel).enumerate() {
                match (s, p) {
                    (Ok(s), Ok(p)) => {
                        assert_eq!(s.value, p.value, "threads {threads} query {i}");
                        assert_eq!(s.ci_half, p.ci_half, "threads {threads} query {i}");
                        assert_eq!(s.hard_bounds, p.hard_bounds, "threads {threads} query {i}");
                    }
                    (Err(s), Err(p)) => assert_eq!(s, p),
                    (s, p) => panic!("threads {threads} query {i}: {s:?} vs {p:?}"),
                }
            }
        }
    }

    #[test]
    fn parallel_path_handles_shifted_trees_and_mixed_arity() {
        use pass_common::{Rect, ThreadPool};
        let pool = ThreadPool::new(2);
        // Mixed-arity batch: falls back to per-query semantics, sharded.
        let t = uniform(5_000, 52);
        let pass = PassBuilder::new().partitions(8).seed(53).build(&t).unwrap();
        let mut queries: Vec<Query> = (0..64)
            .map(|i| Query::interval(AggKind::Sum, i as f64 / 100.0, 0.9))
            .collect();
        queries.push(Query::new(
            AggKind::Sum,
            Rect::new(&[(0.0, 1.0), (0.0, 1.0)]),
        ));
        let seq = pass.estimate_many(&queries);
        let par = pass.estimate_many_parallel(&queries, &pool);
        for (s, p) in seq.iter().zip(&par) {
            match (s, p) {
                (Ok(s), Ok(p)) => assert_eq!(s.value, p.value),
                (Err(s), Err(p)) => assert_eq!(s, p),
                other => panic!("{other:?}"),
            }
        }

        // Workload-shift synopsis: same fallback, still element-wise equal.
        let t3 = taxi(6_000, 54).project(&[1, 2, 3]).unwrap();
        let shifted = PassBuilder::new()
            .partitions(16)
            .sample_rate(0.05)
            .tree_dims(&[0, 1])
            .seed(55)
            .build(&t3)
            .unwrap();
        let full = t3.bounding_rect().unwrap();
        let queries: Vec<Query> = (0..48)
            .map(|i| {
                let hi = full.lo(0) + (full.hi(0) - full.lo(0)) * (i + 1) as f64 / 48.0;
                Query::new(AggKind::Sum, full.narrowed(0, full.lo(0), hi))
            })
            .collect();
        let seq = shifted.estimate_many(&queries);
        let par = shifted.estimate_many_parallel(&queries, &pool);
        for (s, p) in seq.iter().zip(&par) {
            assert_eq!(s.as_ref().unwrap().value, p.as_ref().unwrap().value);
        }
    }

    #[test]
    fn spec_round_trips_through_build() {
        let spec = PassSpec {
            partitions: 16,
            sample_rate: 0.03,
            seed: 40,
            strategy: PartitionStrategy::EqualDepth,
            ..PassSpec::default()
        };
        let t = uniform(2_000, 41);
        let pass = Pass::from_spec(&t, &spec).unwrap();
        assert_eq!(pass.spec(), EngineSpec::Pass(spec));
        // The name override keeps the spec in sync.
        let named = pass.with_name("PASS-X");
        match named.spec() {
            EngineSpec::Pass(s) => assert_eq!(s.name.as_deref(), Some("PASS-X")),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn name_override_for_benchmark_variants() {
        let t = uniform(1_000, 12);
        let pass = PassBuilder::new()
            .partitions(4)
            .build(&t)
            .unwrap()
            .with_name("PASS-BSS2x");
        assert_eq!(pass.name(), "PASS-BSS2x");
    }
}
