//! PASS — Precomputation-Assisted Stratified Sampling (the paper's core
//! contribution, Sections 3–4).
//!
//! A [`Pass`] synopsis is a partition tree annotated with exact
//! SUM/COUNT/MIN/MAX aggregates per node and stratified samples at the
//! leaves. Queries are processed by the Minimal Coverage Frontier search
//! ([`mcf::mcf`]): partitions fully covered by the predicate are answered
//! exactly from the aggregates, partially covered leaves are estimated from
//! their stratified samples, and the two parts combine into a point
//! estimate, a CLT confidence interval, and deterministic hard bounds.
//!
//! Build one with [`PassBuilder`]:
//!
//! ```
//! use pass_core::PassBuilder;
//! use pass_common::{AggKind, Query, Synopsis};
//! use pass_table::datasets::uniform;
//!
//! let table = uniform(10_000, 42);
//! let pass = PassBuilder::new()
//!     .partitions(32)
//!     .sample_rate(0.01)
//!     .build(&table)
//!     .unwrap();
//! let q = Query::interval(AggKind::Sum, 0.2, 0.7);
//! let est = pass.estimate(&q).unwrap();
//! let truth = table.ground_truth(&q).unwrap();
//! assert!((est.value - truth).abs() / truth < 0.2);
//! ```

pub mod bounds;
pub mod budget;
pub mod forest;
pub mod groupby;
pub mod maintain;
pub mod mcf;
pub mod query;
pub mod synopsis;
pub mod tree;
pub mod update;

pub use budget::{BudgetPlan, BudgetPlanner};
pub use forest::PassForest;
pub use groupby::GroupResult;
pub use maintain::MaintenanceReport;
pub use mcf::{constrains_outside, mcf, mcf_shifted, project_rect, McfResult, NodeClass};
pub use synopsis::{Pass, PassBuilder, PartitionStrategy};
pub use tree::{NodeId, PartitionTree, TreeNode};
