//! PASS — Precomputation-Assisted Stratified Sampling (the paper's core
//! contribution, Sections 3–4).
//!
//! A [`Pass`] synopsis is a partition tree annotated with exact
//! SUM/COUNT/MIN/MAX aggregates per node and stratified samples at the
//! leaves. Queries are processed by the Minimal Coverage Frontier search
//! ([`mcf::mcf`]): partitions fully covered by the predicate are answered
//! exactly from the aggregates, partially covered leaves are estimated from
//! their stratified samples, and the two parts combine into a point
//! estimate, a CLT confidence interval, and deterministic hard bounds.
//!
//! Build one declaratively with a [`pass_common::PassSpec`] (the form the
//! engine registry and `pass::Session` use); [`PassBuilder`] remains as
//! the fluent equivalent. Batches go through `estimate_many`, which
//! reuses the MCF traversal state (stack + frontier buffers,
//! [`McfScratch`]) across the whole batch; `estimate_many_parallel`
//! shards a batch across a `pass_common::ThreadPool` with one scratch per
//! worker, bit-identical to the sequential paths (the synopsis is
//! immutable at query time — `Synopsis` requires `Send + Sync` — so
//! traversals parallelize without locks):
//!
//! ```
//! use pass_core::Pass;
//! use pass_common::{AggKind, PassSpec, Query, Synopsis};
//! use pass_table::datasets::uniform;
//!
//! let table = uniform(10_000, 42);
//! let spec = PassSpec {
//!     partitions: 32,
//!     sample_rate: 0.01,
//!     ..PassSpec::default()
//! };
//! let pass = Pass::from_spec(&table, &spec).unwrap();
//! assert_eq!(pass.spec(), pass_common::EngineSpec::Pass(spec));
//!
//! let q = Query::interval(AggKind::Sum, 0.2, 0.7);
//! let est = pass.estimate(&q).unwrap();
//! let truth = table.ground_truth(&q).unwrap();
//! assert!((est.value - truth).abs() / truth < 0.2);
//!
//! // Batched: shared traversal buffers for all three, identical results.
//! let batch = vec![
//!     Query::interval(AggKind::Sum, 0.1, 0.4),
//!     Query::interval(AggKind::Count, 0.3, 0.9),
//!     Query::interval(AggKind::Avg, 0.5, 0.6),
//! ];
//! for (q, res) in batch.iter().zip(pass.estimate_many(&batch)) {
//!     assert_eq!(res.unwrap().value, pass.estimate(q).unwrap().value);
//! }
//! ```

pub mod bounds;
pub mod budget;
pub mod forest;
pub mod groupby;
pub mod maintain;
pub mod mcf;
pub mod query;
pub mod snapshot;
pub mod synopsis;
pub mod tree;
pub mod update;

pub use budget::{BudgetPlan, BudgetPlanner};
pub use forest::PassForest;
pub use groupby::GroupResult;
pub use maintain::MaintenanceReport;
pub use mcf::{
    constrains_outside, mcf, mcf_batch, mcf_shifted, project_rect, McfResult, McfScratch, NodeClass,
};
pub use synopsis::{PartitionStrategy, Pass, PassBuilder};
pub use tree::{NodeId, PartitionTree};
