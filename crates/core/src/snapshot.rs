//! Snapshot codec for the PASS synopsis (see `pass_common::snapshot`).
//!
//! The state sections carry only what the spec cannot rebuild:
//!
//! * the SoA [`PartitionTree`] arena, field-for-field — **including** dead
//!   `child_flat` ranges left by maintenance collapses and the cached
//!   `has_empty` flag — so a loaded tree is layout-identical, not just
//!   logically equivalent, and every traversal takes the exact same path;
//! * the per-leaf stratified [`Sample`]s (with their conservatively-cleared
//!   `sorted_1d` flags);
//! * the mutation epoch and the workload-shift dimension mapping.
//!
//! Everything else (λ, zero-variance rule, delta flag, seed, name) derives
//! from the embedded [`PassSpec`]; the flat [`SampleArena`] is rebuilt from
//! the decoded samples exactly as the build and mutation paths do.
//!
//! Decoding validates every structural index (children, parents, leaf
//! indices) before the tree is handed to traversal code, so a drifted but
//! checksum-valid payload fails with `SnapshotError::SpecMismatch` at load
//! time instead of panicking at query time.

use pass_common::snapshot::{
    put_bool, put_f64, put_u32, put_u64, put_u64_seq, put_usize, write_section, Cursor,
    SnapshotError, SnapshotReader,
};
use pass_common::{Aggregates, PassSpec, Result};
use pass_sampling::snapshot::{decode_sample, encode_sample};
use pass_sampling::{Sample, SampleArena};

use crate::synopsis::Pass;
use crate::tree::PartitionTree;

/// Append `tree` to a section payload, field for field.
pub fn encode_tree(out: &mut Vec<u8>, tree: &PartitionTree) {
    put_usize(out, tree.dims);
    put_usize(out, tree.root);
    put_usize(out, tree.n_leaves);
    put_bool(out, tree.has_empty);
    put_usize(out, tree.aggs.len());
    for agg in &tree.aggs {
        put_f64(out, agg.sum);
        put_f64(out, agg.sum_sq);
        put_u64(out, agg.count);
        put_f64(out, agg.min);
        put_f64(out, agg.max);
    }
    put_usize(out, tree.rect.len());
    for &(lo, hi) in &tree.rect {
        put_f64(out, lo);
        put_f64(out, hi);
    }
    put_usize(out, tree.child_span.len());
    for &(start, count) in &tree.child_span {
        put_u32(out, start);
        put_u32(out, count);
    }
    let child_flat: Vec<u64> = tree.child_flat.iter().map(|&id| id as u64).collect();
    put_u64_seq(out, &child_flat);
    put_usize(out, tree.parent.len());
    for &parent in &tree.parent {
        pass_common::snapshot::put_opt_u64(out, parent.map(|p| p as u64));
    }
    put_usize(out, tree.leaf_index.len());
    for &leaf in &tree.leaf_index {
        pass_common::snapshot::put_opt_u64(out, leaf.map(|l| l as u64));
    }
}

fn drift(why: String) -> pass_common::PassError {
    SnapshotError::SpecMismatch(why).into()
}

/// Decode one tree written by [`encode_tree`], re-validating every
/// structural index so traversals can trust the arena again.
pub fn decode_tree(c: &mut Cursor<'_>) -> Result<PartitionTree> {
    let dims = c.len(1, "tree dims")?;
    let root = c.u64("tree root")? as usize;
    let n_leaves = c.u64("tree leaf count")? as usize;
    let has_empty = c.bool("tree has-empty flag")?;
    let n_nodes = c.len(40, "tree aggregates")?;
    let mut aggs = Vec::with_capacity(n_nodes);
    for _ in 0..n_nodes {
        aggs.push(Aggregates {
            sum: c.f64("aggregate sum")?,
            sum_sq: c.f64("aggregate sum of squares")?,
            count: c.u64("aggregate count")?,
            min: c.f64("aggregate min")?,
            max: c.f64("aggregate max")?,
        });
    }
    let n_rect = c.len(16, "tree rectangles")?;
    let mut rect = Vec::with_capacity(n_rect);
    for _ in 0..n_rect {
        rect.push((c.f64("rect lo")?, c.f64("rect hi")?));
    }
    let n_span = c.len(8, "tree child spans")?;
    let mut child_span = Vec::with_capacity(n_span);
    for _ in 0..n_span {
        child_span.push((c.u32("span start")?, c.u32("span count")?));
    }
    let child_flat: Vec<usize> = c
        .u64_seq("tree child ids")?
        .into_iter()
        .map(|id| id as usize)
        .collect();
    let n_parent = c.len(1, "tree parents")?;
    let mut parent = Vec::with_capacity(n_parent);
    for _ in 0..n_parent {
        parent.push(c.opt_u64("parent id")?.map(|p| p as usize));
    }
    let n_leaf = c.len(1, "tree leaf indices")?;
    let mut leaf_index = Vec::with_capacity(n_leaf);
    for _ in 0..n_leaf {
        leaf_index.push(c.opt_u64("leaf index")?.map(|l| l as usize));
    }

    if dims == 0 || n_nodes == 0 {
        return Err(drift("tree has no nodes or no dimensions".into()));
    }
    if rect.len() != n_nodes * dims
        || child_span.len() != n_nodes
        || parent.len() != n_nodes
        || leaf_index.len() != n_nodes
    {
        return Err(drift("tree arrays disagree on the node count".into()));
    }
    if root >= n_nodes {
        return Err(drift(format!("tree root {root} out of {n_nodes} nodes")));
    }
    for (id, &(start, count)) in child_span.iter().enumerate() {
        let end = start as usize + count as usize;
        if end > child_flat.len() {
            return Err(drift(format!(
                "node {id} child span exceeds the child arena"
            )));
        }
        // bounds: the span was validated against child_flat.len() above.
        if child_flat[start as usize..end]
            .iter()
            .any(|&ch| ch >= n_nodes)
        {
            return Err(drift(format!("node {id} has an out-of-range child")));
        }
    }
    if parent.iter().any(|p| p.is_some_and(|p| p >= n_nodes)) {
        return Err(drift("a node's parent id is out of range".into()));
    }
    Ok(PartitionTree {
        dims,
        root,
        n_leaves,
        aggs,
        rect,
        child_span,
        child_flat,
        parent,
        leaf_index,
        has_empty,
    })
}

/// Append a PASS synopsis' state sections: the tree, then the per-leaf
/// samples plus the spec-underivable scalars.
pub fn save_pass(pass: &Pass, out: &mut Vec<u8>) -> Result<()> {
    let mut tree = Vec::new();
    encode_tree(&mut tree, &pass.tree);
    write_section(out, &tree);

    let mut state = Vec::new();
    put_u64(&mut state, pass.mutation_epoch);
    put_usize(&mut state, pass.query_dims);
    match &pass.tree_dims {
        None => put_bool(&mut state, false),
        Some(dims) => {
            put_bool(&mut state, true);
            let dims: Vec<u64> = dims.iter().map(|&d| d as u64).collect();
            put_u64_seq(&mut state, &dims);
        }
    }
    put_usize(&mut state, pass.samples.len());
    for sample in &pass.samples {
        encode_sample(&mut state, sample);
    }
    write_section(out, &state);
    Ok(())
}

/// Rebuild a PASS synopsis from its spec header plus the state sections
/// written by [`save_pass`]. Spec-derivable fields come from `spec`; the
/// [`SampleArena`] is rebuilt from the decoded samples.
pub fn load_pass(spec: &PassSpec, r: &mut SnapshotReader<'_>) -> Result<Pass> {
    let tree_payload = r.section()?;
    let mut c = Cursor::new(tree_payload);
    let tree = decode_tree(&mut c)?;
    c.done("tree")?;

    let state_payload = r.section()?;
    let mut c = Cursor::new(state_payload);
    let mutation_epoch = c.u64("mutation epoch")?;
    let query_dims = c.u64("query dims")? as usize;
    if query_dims == 0 {
        return Err(drift("PASS state has zero query dimensions".into()));
    }
    let tree_dims = if c.bool("tree-dims tag")? {
        let dims: Vec<usize> = c
            .u64_seq("tree dims mapping")?
            .into_iter()
            .map(|d| d as usize)
            .collect();
        if dims.len() != tree.dims || dims.iter().any(|&d| d >= query_dims) {
            return Err(drift(
                "workload-shift mapping disagrees with the tree".into(),
            ));
        }
        Some(dims)
    } else {
        None
    };
    let n_samples = c.len(1, "sample count")?;
    let mut samples: Vec<Sample> = Vec::with_capacity(n_samples);
    for _ in 0..n_samples {
        samples.push(decode_sample(&mut c)?);
    }
    c.done("PASS state")?;

    if tree_dims.is_none() && tree.dims != query_dims {
        return Err(drift(format!(
            "tree covers {} dims but queries expect {query_dims}",
            tree.dims
        )));
    }
    if tree
        .leaf_index
        .iter()
        .any(|li| li.is_some_and(|li| li >= samples.len()))
    {
        return Err(drift("a leaf's sample index exceeds the sample set".into()));
    }

    let arena = SampleArena::from_samples(&samples);
    Ok(Pass {
        tree,
        samples,
        arena,
        lambda: spec.lambda,
        zero_variance_rule: spec.zero_variance_rule,
        delta_encoded: spec.delta_encode,
        seed: spec.seed,
        name: spec.name.clone().unwrap_or_else(|| "PASS".to_owned()),
        tree_dims,
        query_dims,
        spec: spec.clone(),
        mutation_epoch,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pass_common::snapshot::write_header;
    use pass_common::{AggKind, EngineSpec, Query, Synopsis};
    use pass_table::datasets::uniform;

    fn roundtrip(pass: &Pass) -> Pass {
        let mut bytes = Vec::new();
        write_header(&mut bytes, &pass.spec());
        save_pass(pass, &mut bytes).unwrap();
        let (spec, mut r) = SnapshotReader::open(&bytes).unwrap();
        let spec = match spec {
            EngineSpec::Pass(p) => p,
            other => panic!("unexpected spec {other:?}"),
        };
        let back = load_pass(&spec, &mut r).unwrap();
        r.finish().unwrap();
        back
    }

    #[test]
    fn pass_round_trips_bit_identically() {
        let t = uniform(5_000, 11);
        let spec = PassSpec {
            partitions: 16,
            total_samples: Some(256),
            seed: 3,
            ..PassSpec::default()
        };
        let pass = Pass::from_spec(&t, &spec).unwrap();
        let back = roundtrip(&pass);
        assert_eq!(back.spec(), pass.spec());
        assert_eq!(back.name(), pass.name());
        assert_eq!(back.storage_bytes(), pass.storage_bytes());
        assert_eq!(back.update_epoch(), pass.update_epoch());
        for agg in AggKind::ALL {
            for (lo, hi) in [(0.0, 1.0), (0.2, 0.31), (0.9, 2.0)] {
                let q = Query::interval(agg, lo, hi);
                assert_eq!(back.estimate(&q), pass.estimate(&q), "{agg} [{lo},{hi}]");
            }
        }
    }

    #[test]
    fn corrupt_leaf_indices_fail_at_load_not_query() {
        let t = uniform(1_000, 13);
        let pass = Pass::from_spec(
            &t,
            &PassSpec {
                partitions: 8,
                sample_rate: 0.05,
                ..PassSpec::default()
            },
        )
        .unwrap();
        let mut drifted = pass.clone();
        drifted.tree.leaf_index[0] = Some(10_000);
        let mut bytes = Vec::new();
        write_header(&mut bytes, &drifted.spec());
        save_pass(&drifted, &mut bytes).unwrap();
        let (spec, mut r) = SnapshotReader::open(&bytes).unwrap();
        let spec = match spec {
            EngineSpec::Pass(p) => p,
            other => panic!("unexpected spec {other:?}"),
        };
        assert!(matches!(
            load_pass(&spec, &mut r).err(),
            Some(pass_common::PassError::Snapshot(
                SnapshotError::SpecMismatch(_)
            ))
        ));
    }
}
