//! Split/Merge re-optimization under updates — the paper's "interesting
//! future problem" (Section 4.5: "if there are enough updates to the
//! structure, re-optimization of the partitioning may be needed. In that
//! case Split and Merge technique might help").
//!
//! Two local restructuring operations keep the tree healthy without a
//! full rebuild, in the spirit of dynamic histogram maintenance
//! [Donjerkovic et al., Gibbons et al.]:
//!
//! * [`Pass::merge_cold_siblings`] — merging two sibling leaves is *exact*
//!   (aggregates are mergeable, samples concatenate into a valid uniform
//!   sample of the union when re-subsampled proportionally), so it is
//!   always safe; we merge sibling pairs whose combined population has
//!   shrunk well below the average leaf;
//! * [`Pass::split_hot_leaf`] — splitting needs the base data for the new
//!   halves' exact aggregates, so it takes the table; we split the leaf
//!   whose population has grown past a threshold, at its median key.
//!
//! [`Pass::maintain`] applies both given a drift factor, and reports what
//! it did.

use rand::seq::index::sample as index_sample;
use rand::Rng;

use pass_common::rng::rng_from_seed;
use pass_common::{Aggregates, PassError, Rect, Result};
use pass_sampling::Sample;
use pass_table::Table;

use crate::synopsis::Pass;
use crate::tree::NodeId;

/// What one maintenance pass changed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MaintenanceReport {
    pub merges: usize,
    pub splits: usize,
}

impl Pass {
    /// Average leaf population.
    fn avg_leaf_rows(&self) -> f64 {
        self.tree.total_rows() as f64 / self.tree.n_leaves().max(1) as f64
    }

    /// Merge sibling leaf pairs whose combined population is below
    /// `threshold` rows. Returns how many merges happened. Exact: parent
    /// aggregates already equal the merged children's.
    pub fn merge_cold_siblings(&mut self, threshold: u64) -> usize {
        let mut merges = 0;
        loop {
            // Find an internal node whose children are all leaves and
            // whose population is under threshold.
            let candidate = (0..self.tree.n_nodes()).find(|&id| {
                !self.tree.is_leaf(id)
                    && self.tree.agg(id).count <= threshold
                    && self.tree.children(id).iter().all(|&c| self.tree.is_leaf(c))
            });
            let Some(parent) = candidate else { break };
            self.collapse_into_leaf(parent);
            self.bump_mutation_epoch();
            merges += 1;
        }
        merges
    }

    /// Turn an internal node whose children are leaves into a leaf:
    /// concatenate the children's samples (then thin back to the combined
    /// capacity so the sampling rate stays uniform) and drop the children.
    fn collapse_into_leaf(&mut self, parent: NodeId) {
        let children = self.tree.children(parent).to_vec();
        // Gather child samples.
        let mut rows: Vec<(Vec<f64>, f64)> = Vec::new();
        let mut capacity = 0usize;
        let mut population = 0u64;
        for &c in &children {
            let li = self.tree.leaf_index(c).expect("children are leaves");
            let s = &self.samples[li];
            capacity += s.k();
            population += s.population();
            for i in 0..s.k() {
                let preds: Vec<f64> = (0..s.rows().dims())
                    .map(|d| s.rows().predicate(d, i))
                    .collect();
                rows.push((preds, s.rows().value(i)));
            }
        }
        // Children drew proportionally, so the concatenation is (to
        // rounding) a uniform sample of the union already; thin to the
        // combined capacity deterministically if rounding overshot.
        let mut rng = rng_from_seed(0x3E47 ^ parent as u64);
        while rows.len() > capacity.max(1) {
            let j = rng.gen_range(0..rows.len());
            rows.swap_remove(j);
        }
        // Rebuild the sample as a mini-table.
        let dims = self
            .samples
            .first()
            .map(|s| s.rows().dims())
            .unwrap_or(self.query_dims);
        let values: Vec<f64> = rows.iter().map(|(_, v)| *v).collect();
        let predicates: Vec<Vec<f64>> = (0..dims)
            .map(|d| rows.iter().map(|(p, _)| p[d]).collect())
            .collect();
        let names = self.samples[0].rows().names().to_vec();
        let table = Table::new(values, predicates, names).expect("consistent columns");
        let merged = Sample::from_rows(table, population).expect("k <= population");

        // Rewire: parent becomes a leaf reusing the first child's sample
        // slot; other children are detached (left in the arena as orphans,
        // excluded by leaf_index = None and empty parents' child lists).
        let first_li = self.tree.leaf_index(children[0]).unwrap();
        for &c in &children {
            self.tree.set_leaf_index(c, None);
            self.tree.set_parent(c, None);
        }
        self.samples[first_li] = merged;
        self.tree.clear_children(parent);
        self.tree.set_leaf_index(parent, Some(first_li));
        self.tree.recount_leaves();
    }

    /// Split the leaf containing more than `threshold` rows at its median
    /// first-dimension key, recomputing exact aggregates and fresh
    /// samples from `table` (which must be the synopsis' current logical
    /// contents). Returns `true` if a split happened.
    pub fn split_hot_leaf(&mut self, table: &Table, threshold: u64) -> Result<bool> {
        let Some(leaf) = self
            .tree
            .leaves()
            .into_iter()
            .find(|&id| self.tree.agg(id).count > threshold)
        else {
            return Ok(false);
        };
        let rect = self.tree.rect(leaf);
        // Rows of the table inside this leaf's rectangle.
        let rows: Vec<usize> = (0..table.n_rows())
            .filter(|&i| table.matches(&rect, i))
            .collect();
        if rows.len() < 2 {
            return Ok(false);
        }
        // Median split on dim 0, snapped to a key boundary.
        let mut keys: Vec<f64> = rows.iter().map(|&i| table.predicate(0, i)).collect();
        keys.sort_by(|a, b| a.partial_cmp(b).expect("NaN key"));
        let median = keys[keys.len() / 2];
        let (mut left, mut right): (Vec<usize>, Vec<usize>) = (Vec::new(), Vec::new());
        for &i in &rows {
            if table.predicate(0, i) < median {
                left.push(i);
            } else {
                right.push(i);
            }
        }
        if left.is_empty() || right.is_empty() {
            // Single-key leaf: unsplittable.
            return Ok(false);
        }

        let old_li = self.tree.leaf_index(leaf).expect("leaf has index");
        let rate = self.samples[old_li].k() as f64 / rows.len().max(1) as f64;
        let mut rng = rng_from_seed(0x5711 ^ leaf as u64);
        let make_child =
            |idx: &Vec<usize>, rng: &mut dyn rand::RngCore| -> Result<(Aggregates, Rect, Sample)> {
                let values: Vec<f64> = idx.iter().map(|&i| table.value(i)).collect();
                let agg = Aggregates::from_values(&values);
                let bounds: Vec<(f64, f64)> = (0..table.dims())
                    .map(|d| {
                        let lo = idx
                            .iter()
                            .map(|&i| table.predicate(d, i))
                            .fold(f64::INFINITY, f64::min);
                        let hi = idx
                            .iter()
                            .map(|&i| table.predicate(d, i))
                            .fold(f64::NEG_INFINITY, f64::max);
                        (lo, hi)
                    })
                    .collect();
                let k = ((idx.len() as f64) * rate).round().max(1.0) as usize;
                let chosen: Vec<usize> = if k >= idx.len() {
                    idx.clone()
                } else {
                    index_sample(rng, idx.len(), k)
                        .into_iter()
                        .map(|j| idx[j])
                        .collect()
                };
                let sample = Sample::from_indices(table, &chosen, idx.len() as u64)?;
                Ok((agg, Rect::new(&bounds), sample))
            };
        let (l_agg, l_rect, l_sample) = make_child(&left, &mut rng)?;
        let (r_agg, r_rect, r_sample) = make_child(&right, &mut rng)?;

        // The old leaf becomes internal; two new leaves are appended. The
        // left child reuses the old sample slot, the right gets a new one.
        let right_li = self.samples.len();
        self.samples[old_li] = l_sample;
        self.samples.push(r_sample);
        let (l_id, r_id) = self.tree.add_children(
            leaf,
            (l_rect, l_agg, Some(old_li)),
            (r_rect, r_agg, Some(right_li)),
        );
        debug_assert!(l_id != r_id);
        self.bump_mutation_epoch();
        Ok(true)
    }

    /// One maintenance pass: merge sibling groups that fell below
    /// `1/drift` of the average leaf, split leaves above `drift ×` the
    /// average. Needs the current logical table for splits.
    pub fn maintain(&mut self, table: &Table, drift: f64) -> Result<MaintenanceReport> {
        if drift <= 1.0 {
            return Err(PassError::InvalidParameter(
                "drift",
                "drift factor must exceed 1".into(),
            ));
        }
        let avg = self.avg_leaf_rows();
        let mut report = MaintenanceReport {
            merges: self.merge_cold_siblings((avg / drift) as u64),
            splits: 0,
        };
        while self.split_hot_leaf(table, (avg * drift) as u64)? {
            report.splits += 1;
            if report.splits > self.tree.n_leaves() {
                break; // safety valve
            }
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synopsis::PassBuilder;
    use pass_common::{AggKind, Query, Synopsis};
    use pass_table::datasets::uniform;

    fn build(n: usize) -> (Table, Pass) {
        let t = uniform(n, 5);
        let pass = PassBuilder::new()
            .partitions(16)
            .sample_rate(0.05)
            .seed(5)
            .build(&t)
            .unwrap();
        (t, pass)
    }

    #[test]
    fn split_grows_leaves_and_preserves_answers() {
        let (mut table, mut pass) = build(8_000);
        // Blow up one region with inserts.
        for i in 0..4_000 {
            let key = 0.5 + (i % 100) as f64 * 1e-4;
            let value = 42.0;
            pass.insert(&[key], value).unwrap();
            table.push_row(value, &[key]);
        }
        let before_leaves = pass.tree().n_leaves();
        let report = pass.maintain(&table, 2.0).unwrap();
        assert!(report.splits > 0, "hot leaf should split");
        assert!(pass.tree().n_leaves() > before_leaves);
        // Whole-space queries stay exact.
        let q = Query::interval(AggKind::Sum, -1.0, 2.0);
        let est = pass.estimate(&q).unwrap();
        let truth = table.ground_truth(&q).unwrap();
        assert!((est.value - truth).abs() < 1e-6 * truth);
        // Hot-region queries still work and bounds hold.
        let q = Query::interval(AggKind::Sum, 0.5, 0.51);
        let est = pass.estimate(&q).unwrap();
        let truth = table.ground_truth(&q).unwrap();
        let (lb, ub) = est.hard_bounds.unwrap();
        assert!(lb - 1e-6 <= truth && truth <= ub + 1e-6);
    }

    #[test]
    fn merge_shrinks_leaves_and_preserves_answers() {
        let (mut table, mut pass) = build(8_000);
        // Delete most rows from the low-key half.
        let mut deleted = Vec::new();
        for i in 0..table.n_rows() {
            if table.predicate(0, i) < 0.4 && deleted.len() < 2_500 {
                deleted.push((table.predicate(0, i), table.value(i)));
            }
        }
        for &(k, v) in &deleted {
            pass.delete(&[k], v).unwrap();
        }
        // Rebuild the mirror table without the deleted rows.
        let mut kept_keys = Vec::new();
        let mut kept_vals = Vec::new();
        let mut to_delete = deleted.clone();
        for i in 0..table.n_rows() {
            let kv = (table.predicate(0, i), table.value(i));
            if let Some(pos) = to_delete.iter().position(|&d| d == kv) {
                to_delete.swap_remove(pos);
            } else {
                kept_keys.push(kv.0);
                kept_vals.push(kv.1);
            }
        }
        table = Table::one_dim(kept_keys, kept_vals).unwrap();

        let before_leaves = pass.tree().n_leaves();
        let report = pass.maintain(&table, 2.0).unwrap();
        assert!(report.merges > 0, "cold siblings should merge");
        assert!(pass.tree().n_leaves() < before_leaves);
        // Whole-space COUNT stays exact after restructuring.
        let q = Query::interval(AggKind::Count, -1.0, 2.0);
        let est = pass.estimate(&q).unwrap();
        assert!((est.value - table.n_rows() as f64).abs() < 1e-9);
    }

    #[test]
    fn maintenance_is_idempotent_when_balanced() {
        let (table, mut pass) = build(8_000);
        let report = pass.maintain(&table, 3.0).unwrap();
        assert_eq!(report, MaintenanceReport::default());
    }

    #[test]
    fn invalid_drift_rejected() {
        let (table, mut pass) = build(1_000);
        assert!(pass.maintain(&table, 1.0).is_err());
    }
}
