//! The Minimal Coverage Frontier algorithm (Algorithm 1, Section 3.2).
//!
//! A depth-first search over the partition tree classifying nodes against
//! the query rectangle:
//!
//! * a node fully inside the query → **covered** (answered exactly from its
//!   aggregates; none of its descendants are visited);
//! * a node disjoint from the query → skipped entirely;
//! * a partially overlapping internal node → recurse into its children;
//! * a partially overlapping **leaf** → estimated from its stratified
//!   sample.
//!
//! The 0-variance rule (Section 3.4) adds one base case for AVG queries:
//! a partially overlapping node whose values are all identical
//! (min == max) contributes its exact value, so it is returned as covered
//! without touching any samples.

use pass_common::{AggKind, Query, Rect, RectRelation};

use crate::tree::{NodeId, PartitionTree};

/// Classification of one returned node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeClass {
    /// Fully covered: use the node's exact aggregates.
    Covered,
    /// Partially covered leaf: estimate from its stratified sample.
    Partial,
}

/// The coverage frontier of a query.
#[derive(Debug, Clone, Default)]
pub struct McfResult {
    /// Nodes fully covered by the predicate (`R_cover`).
    pub covered: Vec<NodeId>,
    /// Partially covered leaves (`R_partial`).
    pub partial: Vec<NodeId>,
    /// Partially covered nodes admitted by the 0-variance rule: their
    /// constant value makes the AVG *estimate* exact, but — unlike truly
    /// covered nodes — their matching count is unknown, so hard bounds
    /// must treat them like partial nodes (extrema only).
    pub zero_var: Vec<NodeId>,
    /// Nodes visited during the search (the O(γ log B) cost driver).
    pub visited: usize,
}

impl McfResult {
    /// Total population of all returned partitions (`N_q` for AVG weights —
    /// Section 3.3: "the total size in all relevant partitions").
    pub fn relevant_population(&self, tree: &PartitionTree) -> u64 {
        self.covered
            .iter()
            .chain(&self.partial)
            .chain(&self.zero_var)
            .map(|&id| tree.agg(id).count)
            .sum()
    }
}

/// MCF for the workload-shift scenario (Section 5.4.1): the tree was built
/// over predicate dimensions `tree_dims` of a wider predicate space, and
/// `query` constrains the full space.
///
/// The query rectangle is projected onto the tree's dimensions for
/// classification. Disjointness in the shared dimensions is still a sound
/// reason to skip a partition. Coverage, however, is only decidable when
/// the query leaves every *non-tree* dimension unconstrained; otherwise
/// all intersecting leaves are returned as partial and answered from their
/// (full-dimensional) samples — "the pre-computed aggregates that are not
/// perfectly aligned with the target query can still be used for
/// aggressive and reliable data skipping".
pub fn mcf_shifted(
    tree: &PartitionTree,
    query: &Query,
    tree_dims: &[usize],
    zero_variance_rule: bool,
) -> McfResult {
    debug_assert_eq!(tree.dims(), tree_dims.len());
    let projected = Query::new(query.agg, project_rect(&query.rect, tree_dims));
    if !constrains_outside(&query.rect, tree_dims) {
        return mcf(tree, &projected, zero_variance_rule);
    }
    // Outside constraints exist: coverage is undecidable from the tree, so
    // descend every partially/fully intersecting branch to its leaves.
    let mut result = McfResult::default();
    let apply_zero_var = zero_variance_rule && query.agg == AggKind::Avg;
    let check_empty = tree.has_empty_nodes();
    let mut stack = vec![tree.root()];
    while let Some(id) = stack.pop() {
        result.visited += 1;
        if check_empty && tree.agg(id).is_empty() {
            continue;
        }
        match tree.relation_to(id, &projected.rect) {
            RectRelation::Disjoint => {}
            _ if apply_zero_var && tree.agg(id).is_zero_variance() => {
                // Constant values: AVG is exact whichever rows match.
                result.zero_var.push(id);
            }
            _ if tree.is_leaf(id) => result.partial.push(id),
            _ => stack.extend_from_slice(tree.children(id)),
        }
    }
    result
}

/// Project a rectangle onto a subset of its dimensions.
pub fn project_rect(rect: &Rect, dims: &[usize]) -> Rect {
    let bounds: Vec<(f64, f64)> = dims.iter().map(|&d| (rect.lo(d), rect.hi(d))).collect();
    Rect::new(&bounds)
}

/// Does the rectangle constrain any dimension outside `dims`?
///
/// `dims` membership is answered through a 64-bit dimension mask instead
/// of a linear `contains` per dimension (queries are low-dimensional; the
/// > 64-dimension case falls back to the scan).
pub fn constrains_outside(rect: &Rect, dims: &[usize]) -> bool {
    let constrained = |d: usize| rect.lo(d) != f64::NEG_INFINITY || rect.hi(d) != f64::INFINITY;
    if rect.dims() <= 64 {
        let mut mask = 0u64;
        for &d in dims {
            if d < 64 {
                mask |= 1 << d;
            }
        }
        (0..rect.dims()).any(|d| mask & (1 << d) == 0 && constrained(d))
    } else {
        (0..rect.dims()).any(|d| !dims.contains(&d) && constrained(d))
    }
}

/// Run MCF for a whole query batch in **one** tree traversal.
///
/// Instead of one full DFS per query, every node carries the set of
/// queries still "active" on it (those whose classification requires
/// descending). The node is fetched and its emptiness checked once; each
/// active query classifies against its rectangle and either terminates
/// (disjoint / covered / partial-leaf / 0-variance) or stays active for
/// the children. Queries on disjoint subtrees drop out early, so shared
/// prefixes of the tree are walked once for the whole batch.
///
/// The traversal pops nodes in the same LIFO order as [`mcf`] and a query
/// only ever sees nodes its own DFS would have visited, so each returned
/// [`McfResult`] — including `covered`/`partial` ordering and the
/// `visited` count — is identical to running [`mcf`] per query. Estimates
/// computed from batch frontiers are therefore bit-identical to the
/// single-query path.
///
/// This is the analysis/benchmark variant; the production batch path
/// (`Pass::estimate_many` → `process_batch`) uses per-query traversals
/// over a reused [`McfScratch`], which measures faster because the
/// per-(node, query) classification work dominates and scratch reuse
/// avoids materializing every frontier at once.
pub fn mcf_batch(
    tree: &PartitionTree,
    queries: &[Query],
    zero_variance_rule: bool,
) -> Vec<McfResult> {
    let mut results: Vec<McfResult> = vec![McfResult::default(); queries.len()];
    if queries.is_empty() {
        return results;
    }
    let apply_zero_var: Vec<bool> = queries
        .iter()
        .map(|q| zero_variance_rule && q.agg == AggKind::Avg)
        .collect();
    // Active sets live in one append-only arena; a stack entry is
    // (node, start, len) into it. Sibling nodes share their parent's
    // recurse range, so the whole traversal performs no per-node
    // allocation (the arena and stack grow amortized).
    let mut arena: Vec<u32> = (0..queries.len() as u32).collect();
    let mut stack: Vec<(NodeId, u32, u32)> = vec![(tree.root(), 0, queries.len() as u32)];
    let check_empty = tree.has_empty_nodes();
    while let Some((id, start, len)) = stack.pop() {
        let (start, end) = (start as usize, (start + len) as usize);
        for i in start..end {
            results[arena[i] as usize].visited += 1;
        }
        if check_empty && tree.agg(id).is_empty() {
            continue;
        }
        let recurse_start = arena.len();
        let (is_leaf, zero_variance) = (tree.is_leaf(id), tree.agg(id).is_zero_variance());
        for i in start..end {
            let qi = arena[i];
            let q = qi as usize;
            match tree.relation_to(id, &queries[q].rect) {
                RectRelation::Disjoint => {}
                RectRelation::Covered => results[q].covered.push(id),
                RectRelation::Partial => {
                    if apply_zero_var[q] && zero_variance {
                        results[q].zero_var.push(id);
                    } else if is_leaf {
                        results[q].partial.push(id);
                    } else {
                        arena.push(qi);
                    }
                }
            }
        }
        let recurse_len = (arena.len() - recurse_start) as u32;
        if recurse_len > 0 {
            for &child in tree.children(id) {
                stack.push((child, recurse_start as u32, recurse_len));
            }
        }
    }
    results
}

/// Run MCF for `query` over `tree`. `zero_variance_rule` enables the AVG
/// base case (it is ignored for other aggregates).
pub fn mcf(tree: &PartitionTree, query: &Query, zero_variance_rule: bool) -> McfResult {
    let mut scratch = McfScratch::default();
    scratch.run(tree, query, zero_variance_rule);
    scratch.result
}

/// Reusable MCF working state: the DFS stack, the frontier buffers, the
/// scan-kernel scratch, and the stratum-combination buffer.
///
/// A single `estimate` would otherwise allocate (and free) several vectors
/// per query; the batched path keeps one scratch alive across the whole
/// batch so every query after the first runs allocation-free — frontier
/// classification, per-leaf sample scans, and stratum combination all
/// reuse these buffers. `run` produces exactly the frontier [`mcf`] would.
#[derive(Debug, Default)]
pub struct McfScratch {
    stack: Vec<NodeId>,
    /// The most recent query's frontier (cleared, not freed, per run).
    pub result: McfResult,
    /// Scan-kernel buffers for per-leaf sample estimates.
    pub scan: pass_sampling::ScanScratch,
    /// Reusable per-stratum estimate buffer (cleared per query).
    pub(crate) strata: Vec<pass_sampling::StratumEstimate>,
}

impl McfScratch {
    /// Run `f` against this thread's reusable scratch — the single-query
    /// (`&self`) entry points borrow it so they ride the same buffers the
    /// batched path owns explicitly.
    pub fn with_local<R>(f: impl FnOnce(&mut McfScratch) -> R) -> R {
        use std::cell::RefCell;
        thread_local! {
            static SCRATCH: RefCell<McfScratch> = RefCell::new(McfScratch::default());
        }
        SCRATCH.with(|s| f(&mut s.borrow_mut()))
    }

    /// Split into (frontier, scan scratch, strata buffer) — disjoint
    /// borrows for finishing an estimate off `result`.
    pub(crate) fn parts(
        &mut self,
    ) -> (
        &McfResult,
        &mut pass_sampling::ScanScratch,
        &mut Vec<pass_sampling::StratumEstimate>,
    ) {
        (&self.result, &mut self.scan, &mut self.strata)
    }

    /// Classify `query` over `tree` into `self.result`, reusing buffers.
    ///
    /// The disjoint test runs before the emptiness check: most visited
    /// nodes are disjoint siblings along the descent, and classifying them
    /// from the interleaved rect pairs alone keeps the (much larger)
    /// aggregate array out of the traversal's cache footprint. An empty
    /// node is skipped whichever test fires first, so the emitted frontier
    /// — including order — is identical to the original empty-check-first
    /// loop. When the tree reports no empty nodes at all (the common case:
    /// leaves are born populated and only deletions can zero a count), the
    /// emptiness check vanishes and the traversal never loads an aggregate.
    pub fn run(&mut self, tree: &PartitionTree, query: &Query, zero_variance_rule: bool) {
        let result = &mut self.result;
        result.covered.clear();
        result.partial.clear();
        result.zero_var.clear();
        result.visited = 0;
        let apply_zero_var = zero_variance_rule && query.agg == AggKind::Avg;
        self.stack.clear();
        if tree.dims() == 1 {
            // Interval fast loop: query bounds and the visit counter live
            // in registers, and node bounds come straight off the packed
            // `(lo, hi)` column (node id indexes it directly in 1-D), so a
            // disjoint node costs one 16-byte load and one fused compare —
            // paid when its parent expands, so disjoint children never
            // touch the stack at all. Every child of an expanded node is
            // still counted in `visited` exactly once (at expansion
            // instead of at pop), so the total matches the pop-time
            // formulation node for node, and disjoint nodes emit nothing,
            // so the frontier — including order — is unchanged.
            let (ql, qh) = (query.rect.lo(0), query.rect.hi(0));
            let pairs = tree.rect_pairs();
            let check_empty = tree.has_empty_nodes();
            let mut visited = 1usize; // the root is always examined
            let root = tree.root();
            let (rl, rh) = pairs[root];
            if rl <= qh && ql <= rh {
                self.stack.push(root);
            }
            while let Some(top) = self.stack.pop() {
                // Inner descent: a partial internal node hands its last
                // non-disjoint child straight to the next iteration
                // (exactly the node the LIFO pop would produce) and only
                // its earlier surviving siblings touch the stack.
                let mut id = top;
                let (mut nl, mut nh) = pairs[id];
                loop {
                    // `id` is non-disjoint — tested when pushed/descended.
                    if check_empty && tree.agg(id).is_empty() {
                        break;
                    }
                    if ql <= nl && nh <= qh {
                        result.covered.push(id);
                        break;
                    }
                    if apply_zero_var && tree.agg(id).is_zero_variance() {
                        // 0-variance rule: constant values make AVG exact
                        // even under partial overlap.
                        result.zero_var.push(id);
                        break;
                    }
                    let children = tree.children(id);
                    match children.split_last() {
                        None => {
                            result.partial.push(id);
                            break;
                        }
                        Some((&last, rest)) => {
                            for &sib in rest {
                                visited += 1;
                                let (sl, sh) = pairs[sib];
                                if sl <= qh && ql <= sh {
                                    self.stack.push(sib);
                                }
                            }
                            visited += 1;
                            let (ll, lh) = pairs[last];
                            if ll <= qh && ql <= lh {
                                (id, nl, nh) = (last, ll, lh);
                                continue;
                            }
                            break;
                        }
                    }
                }
            }
            result.visited = visited;
            return;
        }
        let check_empty = tree.has_empty_nodes();
        self.stack.push(tree.root());
        while let Some(id) = self.stack.pop() {
            result.visited += 1;
            match tree.relation_to(id, &query.rect) {
                RectRelation::Disjoint => {}
                relation => {
                    if check_empty && tree.agg(id).is_empty() {
                        continue;
                    }
                    if relation == RectRelation::Covered {
                        result.covered.push(id);
                    } else if apply_zero_var && tree.agg(id).is_zero_variance() {
                        // 0-variance rule: constant values make AVG exact
                        // even under partial overlap.
                        result.zero_var.push(id);
                    } else if tree.is_leaf(id) {
                        result.partial.push(id);
                    } else {
                        self.stack.extend_from_slice(tree.children(id));
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pass_common::{AggKind, Query};
    use pass_partition::Partitioning1D;
    use pass_table::SortedTable;

    /// 100 rows, keys 0..100, values = key; 4 leaves of 25.
    fn tree() -> PartitionTree {
        let keys: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let values = keys.clone();
        let s = SortedTable::from_sorted(keys, values);
        let p = Partitioning1D::new(100, vec![25, 50, 75]).unwrap();
        PartitionTree::from_partitioning(&s, &p).unwrap()
    }

    #[test]
    fn aligned_query_is_fully_covered() {
        let t = tree();
        // Exactly leaves 1 and 2: keys 25..=74.
        let q = Query::interval(AggKind::Sum, 25.0, 74.0);
        let r = mcf(&t, &q, false);
        assert!(r.partial.is_empty(), "aligned query needs no samples");
        let covered_rows: u64 = r.covered.iter().map(|&id| t.agg(id).count).sum();
        assert_eq!(covered_rows, 50);
    }

    #[test]
    fn whole_space_query_returns_root_only() {
        let t = tree();
        let q = Query::interval(AggKind::Sum, -10.0, 1000.0);
        let r = mcf(&t, &q, false);
        assert_eq!(r.covered, vec![t.root()]);
        assert!(r.partial.is_empty());
        assert_eq!(r.visited, 1, "root covered: nothing else visited");
    }

    #[test]
    fn disjoint_query_returns_nothing() {
        let t = tree();
        let q = Query::interval(AggKind::Sum, 500.0, 600.0);
        let r = mcf(&t, &q, false);
        assert!(r.covered.is_empty());
        assert!(r.partial.is_empty());
    }

    #[test]
    fn straddling_query_mixes_covered_and_partial() {
        let t = tree();
        // 10..=60: partially hits leaf 0 (0..=24), covers leaf 1 (25..=49),
        // partially hits leaf 2 (50..=74).
        let q = Query::interval(AggKind::Sum, 10.0, 60.0);
        let r = mcf(&t, &q, false);
        assert_eq!(r.partial.len(), 2);
        let covered_rows: u64 = r.covered.iter().map(|&id| t.agg(id).count).sum();
        assert_eq!(covered_rows, 25);
        assert_eq!(r.relevant_population(&t), 75);
    }

    #[test]
    fn partial_nodes_are_always_leaves() {
        let t = tree();
        for (lo, hi) in [(10.0, 60.0), (0.0, 37.0), (60.0, 99.0), (24.0, 26.0)] {
            let q = Query::interval(AggKind::Sum, lo, hi);
            let r = mcf(&t, &q, false);
            for &id in &r.partial {
                assert!(t.is_leaf(id), "partial node {id} is internal");
            }
        }
    }

    #[test]
    fn frontier_is_minimal_no_node_is_ancestor_of_another() {
        let t = tree();
        let q = Query::interval(AggKind::Sum, 5.0, 95.0);
        let r = mcf(&t, &q, false);
        let all: Vec<NodeId> = r.covered.iter().chain(&r.partial).copied().collect();
        for &a in &all {
            let mut p = t.parent(a);
            while let Some(id) = p {
                assert!(!all.contains(&id), "{id} is an ancestor of {a}");
                p = t.parent(id);
            }
        }
    }

    #[test]
    fn frontier_partitions_the_relevant_rows() {
        // Sum of covered counts + partial counts must equal the number of
        // rows in partitions the query touches (computed by brute force).
        let t = tree();
        let q = Query::interval(AggKind::Sum, 13.0, 88.0);
        let r = mcf(&t, &q, false);
        // Touched leaves: all four.
        assert_eq!(r.relevant_population(&t), 100);
    }

    #[test]
    fn zero_variance_rule_short_circuits_avg() {
        // Leaf 0 (keys 0..25) constant value; others varying.
        let keys: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let values: Vec<f64> = (0..100)
            .map(|i| if i < 25 { 7.0 } else { i as f64 })
            .collect();
        let s = SortedTable::from_sorted(keys, values);
        let p = Partitioning1D::new(100, vec![25, 50, 75]).unwrap();
        let t = PartitionTree::from_partitioning(&s, &p).unwrap();
        // Query partially overlaps leaf 0 only.
        let q = Query::interval(AggKind::Avg, 5.0, 30.0);
        let with_rule = mcf(&t, &q, true);
        let without_rule = mcf(&t, &q, false);
        assert!(without_rule.partial.len() > with_rule.partial.len());
        // The rule must not fire for SUM: counts still unknown.
        let q_sum = Query::interval(AggKind::Sum, 5.0, 30.0);
        let sum_with_rule = mcf(&t, &q_sum, true);
        assert_eq!(sum_with_rule.partial.len(), without_rule.partial.len());
    }

    #[test]
    fn selective_queries_visit_few_nodes() {
        // A query touching one leaf visits O(log B) nodes, far fewer than
        // the total node count.
        let keys: Vec<f64> = (0..1024).map(|i| i as f64).collect();
        let s = SortedTable::from_sorted(keys.clone(), keys);
        let cuts: Vec<usize> = (1..64).map(|i| i * 16).collect();
        let p = Partitioning1D::new(1024, cuts).unwrap();
        let t = PartitionTree::from_partitioning(&s, &p).unwrap();
        let q = Query::interval(AggKind::Sum, 100.0, 105.0);
        let r = mcf(&t, &q, false);
        assert!(
            r.visited < 20,
            "visited {} of {} nodes",
            r.visited,
            t.n_nodes()
        );
    }

    #[test]
    fn batch_frontiers_match_single_query_mcf() {
        let t = tree();
        let queries: Vec<Query> = [
            (10.0, 60.0),
            (25.0, 74.0),
            (-10.0, 1000.0),
            (500.0, 600.0),
            (0.0, 37.0),
            (24.0, 26.0),
            (60.0, 99.0),
        ]
        .into_iter()
        .flat_map(|(lo, hi)| {
            [
                Query::interval(AggKind::Sum, lo, hi),
                Query::interval(AggKind::Avg, lo, hi),
            ]
        })
        .collect();
        for zero_var in [false, true] {
            let batch = mcf_batch(&t, &queries, zero_var);
            assert_eq!(batch.len(), queries.len());
            for (q, b) in queries.iter().zip(&batch) {
                let single = mcf(&t, q, zero_var);
                assert_eq!(b.covered, single.covered, "{q:?}");
                assert_eq!(b.partial, single.partial, "{q:?}");
                assert_eq!(b.zero_var, single.zero_var, "{q:?}");
                assert_eq!(b.visited, single.visited, "{q:?}");
            }
        }
    }

    #[test]
    fn batch_zero_variance_rule_applies_per_query() {
        // Mixed-aggregate batch over a tree with one constant leaf: the
        // AVG query takes the 0-variance shortcut, the SUM query must not.
        let keys: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let values: Vec<f64> = (0..100)
            .map(|i| if i < 25 { 7.0 } else { i as f64 })
            .collect();
        let s = SortedTable::from_sorted(keys, values);
        let p = Partitioning1D::new(100, vec![25, 50, 75]).unwrap();
        let t = PartitionTree::from_partitioning(&s, &p).unwrap();
        let queries = vec![
            Query::interval(AggKind::Avg, 5.0, 30.0),
            Query::interval(AggKind::Sum, 5.0, 30.0),
        ];
        let batch = mcf_batch(&t, &queries, true);
        assert!(!batch[0].zero_var.is_empty());
        assert!(batch[1].zero_var.is_empty());
        assert!(batch[1].partial.len() > batch[0].partial.len());
    }

    #[test]
    fn empty_batch_is_fine() {
        let t = tree();
        assert!(mcf_batch(&t, &[], true).is_empty());
    }

    #[test]
    fn multi_dim_classification() {
        use pass_partition::{build_kd, KdExpansion};
        let table = pass_table::datasets::taxi(500, 11)
            .project(&[1, 2])
            .unwrap();
        let kd = build_kd(&table, 16, KdExpansion::BreadthFirst, 0).unwrap();
        let t = PartitionTree::from_kd(&table, &kd).unwrap();
        let rect = table.bounding_rect().unwrap();
        // Whole space: root covered.
        let q = Query::new(AggKind::Sum, rect.clone());
        let r = mcf(&t, &q, false);
        assert_eq!(r.covered, vec![t.root()]);
        // Left half in dim 0: a mix, but every returned covered node's rect
        // must be inside the query and every partial must intersect it.
        let mid = (rect.lo(0) + rect.hi(0)) / 2.0;
        let q = Query::new(AggKind::Sum, rect.narrowed(0, rect.lo(0), mid));
        let r = mcf(&t, &q, false);
        for &id in &r.covered {
            assert!(q.rect.contains_rect(&t.rect(id)));
        }
        for &id in &r.partial {
            assert!(q.rect.intersects(&t.rect(id)));
        }
    }
}
