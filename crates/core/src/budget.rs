//! Time-budget planning (Section 3.1).
//!
//! "The user specifies the following parameters: (τ_c) a time limit for
//! constructing the data structure, and (τ_q) a time limit for querying
//! the data structure. Then, using a cost-model, our framework minimizes
//! the maximum query error while satisfying those constraints."
//!
//! [`BudgetPlanner`] turns the two time limits into the internal knobs —
//! the partition count `k` (construction-bound) and the per-query sample
//! budget, hence the sampling rate (latency-bound) — by calibrating a
//! small linear cost model on the actual machine and data:
//!
//! * construction ≈ `sort + optimizer(k) + k·(aggregate + sample)` — we
//!   measure a probe build at small k and extrapolate the k-linear part;
//! * query ≈ `mcf(log k) + scanned_samples · per_row` — we measure the
//!   per-sampled-row scan cost and size the stratified samples so that
//!   the ≤ 2 partially-overlapping leaves of a 1-D query stay under τ_q.

use std::time::Instant;

use pass_common::{PassError, Rect, Result, Synopsis};
use pass_table::Table;

use crate::synopsis::{Pass, PassBuilder};

/// A calibrated plan: the chosen knobs plus the model's predictions.
#[derive(Debug, Clone, Copy)]
pub struct BudgetPlan {
    pub partitions: usize,
    pub sample_rate: f64,
    /// Model-predicted construction time (ms).
    pub predicted_build_ms: f64,
    /// Model-predicted per-query latency (µs).
    pub predicted_query_us: f64,
}

/// Plans PASS parameters under construction/query time limits.
#[derive(Debug, Clone, Copy)]
pub struct BudgetPlanner {
    /// Construction limit τ_c in milliseconds.
    pub construct_ms: f64,
    /// Per-query limit τ_q in microseconds.
    pub query_us: f64,
    /// Probe size used for calibration (rows); clamped to the table.
    pub probe_rows: usize,
}

impl BudgetPlanner {
    pub fn new(construct_ms: f64, query_us: f64) -> Self {
        Self {
            construct_ms,
            query_us,
            probe_rows: 20_000,
        }
    }

    /// Calibrate on (a prefix of) the table and derive the plan.
    pub fn plan(&self, table: &Table) -> Result<BudgetPlan> {
        if table.n_rows() == 0 {
            return Err(PassError::EmptyInput("budget planning over empty table"));
        }
        if self.construct_ms <= 0.0 || self.query_us <= 0.0 {
            return Err(PassError::InvalidParameter(
                "budget",
                "time limits must be positive".into(),
            ));
        }
        let n = table.n_rows();
        let probe_n = self.probe_rows.clamp(256, n);
        let probe = probe_table(table, probe_n)?;

        // --- calibrate construction: build at two k values, fit linear.
        let (k_lo, k_hi) = (8usize, 32usize);
        let t_lo = time_build(&probe, k_lo, 0.01)?;
        let t_hi = time_build(&probe, k_hi, 0.01)?;
        let per_k_ms = ((t_hi - t_lo) / (k_hi - k_lo) as f64).max(1e-6);
        let base_ms = (t_lo - per_k_ms * k_lo as f64).max(0.0);
        // Scale the row-dependent base cost up to the full table.
        let scale = n as f64 / probe_n as f64;
        let full_base_ms = base_ms * scale;

        // Construction-bound partitions (cap at n/4 so leaves keep rows,
        // floor at 4).
        let k_budget = ((self.construct_ms - full_base_ms) / (per_k_ms * scale)).floor();
        let partitions = (k_budget as isize).clamp(4, (n / 4).max(4) as isize) as usize;

        // --- calibrate query: measure per-sampled-row scan cost.
        let probe_pass = PassBuilder::new()
            .partitions(k_lo)
            .sample_rate(0.05)
            .seed(0xB00)
            .build(&probe)?;
        let per_row_us = time_per_sample_row(&probe, &probe_pass)?;
        // A 1-D query partially overlaps ≤ 2 leaves; each leaf holds
        // rate·N/k samples. Solve 2·rate·N/k·per_row ≤ τ_q.
        let mcf_overhead_us = 1.0; // measured lookups are sub-µs
        let budget_rows = ((self.query_us - mcf_overhead_us).max(0.1) / per_row_us).max(1.0);
        let sample_rate = (budget_rows * partitions as f64 / (2.0 * n as f64)).clamp(1e-5, 1.0);

        Ok(BudgetPlan {
            partitions,
            sample_rate,
            predicted_build_ms: full_base_ms + per_k_ms * scale * partitions as f64,
            predicted_query_us: mcf_overhead_us
                + 2.0 * sample_rate * n as f64 / partitions as f64 * per_row_us,
        })
    }

    /// Plan and build in one step.
    pub fn build(&self, table: &Table) -> Result<(Pass, BudgetPlan)> {
        let plan = self.plan(table)?;
        let pass = PassBuilder::new()
            .partitions(plan.partitions)
            .sample_rate(plan.sample_rate)
            .build(table)?;
        Ok((pass, plan))
    }
}

fn probe_table(table: &Table, rows: usize) -> Result<Table> {
    let idx: Vec<usize> = (0..rows).map(|i| i * table.n_rows() / rows).collect();
    let values: Vec<f64> = idx.iter().map(|&i| table.value(i)).collect();
    let predicates: Vec<Vec<f64>> = (0..table.dims())
        .map(|d| idx.iter().map(|&i| table.predicate(d, i)).collect())
        .collect();
    Table::new(values, predicates, table.names().to_vec())
}

fn time_build(probe: &Table, k: usize, rate: f64) -> Result<f64> {
    let start = Instant::now();
    let _ = PassBuilder::new()
        .partitions(k)
        .sample_rate(rate)
        .seed(0xB00)
        .build(probe)?;
    Ok(start.elapsed().as_secs_f64() * 1e3)
}

/// Microseconds of query time per sampled row scanned, measured with a
/// broad partially-overlapping query.
fn time_per_sample_row(probe: &Table, pass: &Pass) -> Result<f64> {
    let rect = probe.bounding_rect().expect("probe is non-empty");
    // Nudge the bounds inward so the query partially overlaps leaves.
    let lo = rect.lo(0);
    let hi = rect.hi(0);
    let q = pass_common::Query::new(
        pass_common::AggKind::Sum,
        Rect::interval(lo + (hi - lo) * 0.01, hi - (hi - lo) * 0.01),
    );
    let reps = 200;
    let start = Instant::now();
    let mut rows_scanned = 0u64;
    for _ in 0..reps {
        let est = pass.estimate(&q)?;
        rows_scanned += est.tuples_processed.max(1);
    }
    let total_us = start.elapsed().as_secs_f64() * 1e6;
    Ok((total_us / rows_scanned as f64).max(1e-4))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pass_table::datasets::uniform;

    #[test]
    fn tighter_construction_budget_means_fewer_partitions() {
        let t = uniform(60_000, 1);
        let tight = BudgetPlanner::new(1.0, 100.0).plan(&t).unwrap();
        let loose = BudgetPlanner::new(5_000.0, 100.0).plan(&t).unwrap();
        assert!(
            tight.partitions <= loose.partitions,
            "tight {} vs loose {}",
            tight.partitions,
            loose.partitions
        );
        assert!(tight.partitions >= 4);
    }

    #[test]
    fn tighter_query_budget_means_smaller_samples() {
        let t = uniform(60_000, 2);
        let fast = BudgetPlanner::new(500.0, 5.0).plan(&t).unwrap();
        let slow = BudgetPlanner::new(500.0, 5_000.0).plan(&t).unwrap();
        assert!(
            fast.sample_rate <= slow.sample_rate,
            "fast {} vs slow {}",
            fast.sample_rate,
            slow.sample_rate
        );
    }

    #[test]
    fn build_returns_consistent_synopsis() {
        let t = uniform(30_000, 3);
        let (pass, plan) = BudgetPlanner::new(1_000.0, 200.0).build(&t).unwrap();
        assert_eq!(pass.tree().n_leaves(), plan.partitions.min(30_000));
        assert!(plan.predicted_build_ms > 0.0);
        assert!(plan.predicted_query_us > 0.0);
        // The synopsis answers queries.
        let q = pass_common::Query::interval(pass_common::AggKind::Sum, 0.1, 0.9);
        assert!(pass.estimate(&q).is_ok());
    }

    #[test]
    fn invalid_budgets_rejected() {
        let t = uniform(1_000, 4);
        assert!(BudgetPlanner::new(0.0, 10.0).plan(&t).is_err());
        assert!(BudgetPlanner::new(10.0, -1.0).plan(&t).is_err());
        let empty = Table::one_dim(vec![], vec![]).unwrap();
        assert!(BudgetPlanner::new(10.0, 10.0).plan(&empty).is_err());
    }
}
