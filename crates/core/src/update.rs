//! Dynamic updates (Section 4.5).
//!
//! Inserts and deletes keep the tree statistically consistent for COUNT,
//! SUM, and AVG: per-leaf samples are maintained with reservoir sampling,
//! and every aggregate on the leaf-to-root path updates in O(1), giving
//! O(log k) per update for 1-D trees.
//!
//! MIN/MAX remain *conservative* after deletions (a deleted extremum cannot
//! be tightened without a partition rescan), which keeps hard bounds sound
//! but possibly loose — exactly the trade-off the paper accepts by scoping
//! statistical consistency to COUNT/SUM/AVG.

use rand::Rng;

use pass_common::{PassError, Result};

use crate::synopsis::Pass;
use crate::tree::NodeId;

impl Pass {
    /// Locate the leaf whose rectangle contains the point, or — for points
    /// in the gaps between tight bounding boxes — the leaf nearest in the
    /// first dimension.
    #[allow(clippy::needless_range_loop)] // dual-array access is clearer indexed
    fn locate_leaf(&self, point: &[f64]) -> Result<NodeId> {
        if point.len() != self.tree.dims() {
            return Err(PassError::DimensionMismatch {
                expected: self.tree.dims(),
                got: point.len(),
            });
        }
        let leaves = self.tree.leaves();
        let mut best: Option<(NodeId, f64)> = None;
        for id in leaves {
            if self.tree.contains_point(id, point) {
                return Ok(id);
            }
            // Distance in the first dimension (1-D gap case) plus other
            // dims, as a cheap nearest-leaf heuristic.
            let mut dist = 0.0;
            for d in 0..point.len() {
                let lo = self.tree.rect_lo(id, d);
                let hi = self.tree.rect_hi(id, d);
                let p = point[d];
                if p < lo {
                    dist += lo - p;
                } else if p > hi {
                    dist += p - hi;
                }
            }
            if best.is_none_or(|(_, b)| dist < b) {
                best = Some((id, dist));
            }
        }
        best.map(|(id, _)| id)
            .ok_or(PassError::EmptyInput("tree has no leaves"))
    }

    /// Insert a tuple. Updates the leaf-to-root aggregates exactly and
    /// offers the tuple to the leaf's reservoir.
    pub fn insert(&mut self, point: &[f64], value: f64) -> Result<()> {
        let leaf = self.locate_leaf(point)?;
        // Widen rectangles so future MCF classifications still see the
        // point, then update aggregates on the path to the root.
        let mut cursor = Some(leaf);
        while let Some(id) = cursor {
            if !self.tree.contains_point(id, point) {
                let mut bounds: Vec<(f64, f64)> = (0..point.len())
                    .map(|d| {
                        (
                            self.tree.rect_lo(id, d).min(point[d]),
                            self.tree.rect_hi(id, d).max(point[d]),
                        )
                    })
                    .collect();
                // Guard against inf-only rects on empty nodes.
                for b in bounds.iter_mut() {
                    if b.0 > b.1 {
                        *b = (point[0], point[0]);
                    }
                }
                self.tree.set_rect(id, &pass_common::Rect::new(&bounds));
            }
            self.tree.agg_mut(id).insert(value);
            cursor = self.tree.parent(id);
        }

        // Reservoir maintenance (Algorithm R) on the leaf's sample.
        let li = self.tree.leaf_index(leaf).expect("leaf has index");
        let salt = self.tree.agg(leaf).count;
        let mut rng = self.update_rng(salt);
        let sample = &mut self.samples[li];
        sample.grow_population();
        let capacity = sample.k().max(1);
        let population = sample.population();
        if sample.k() < capacity || population == 0 {
            sample.push_row(value, point);
        } else {
            let j = rng.gen_range(0..population);
            if (j as usize) < capacity {
                sample.replace_row(j as usize, value, point);
            }
        }
        self.bump_mutation_epoch();
        Ok(())
    }

    /// Delete a tuple previously inserted (caller guarantees existence).
    /// Returns `true` when the tuple was also evicted from the leaf's
    /// sample.
    pub fn delete(&mut self, point: &[f64], value: f64) -> Result<bool> {
        let leaf = self.locate_leaf(point)?;
        let mut cursor = Some(leaf);
        while let Some(id) = cursor {
            self.tree.agg_mut(id).remove(value);
            cursor = self.tree.parent(id);
        }
        let li = self.tree.leaf_index(leaf).expect("leaf has index");
        let sample = &mut self.samples[li];
        sample.shrink_population();
        let evicted = if let Some(pos) = sample.find_row(value, point) {
            sample.swap_remove_row(pos);
            true
        } else {
            false
        };
        self.bump_mutation_epoch();
        Ok(evicted)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synopsis::PassBuilder;
    use pass_common::{AggKind, Query, Synopsis};
    use pass_table::datasets::uniform;
    use pass_table::Table;

    fn build(n: usize, seed: u64) -> (Table, Pass) {
        let t = uniform(n, seed);
        let pass = PassBuilder::new()
            .partitions(8)
            .sample_rate(0.05)
            .seed(seed)
            .build(&t)
            .unwrap();
        (t, pass)
    }

    #[test]
    fn insert_updates_root_aggregates_exactly() {
        let (_, mut pass) = build(2_000, 1);
        let before = *pass.tree().agg(pass.tree().root());
        pass.insert(&[0.5], 42.0).unwrap();
        let after = *pass.tree().agg(pass.tree().root());
        assert_eq!(after.count, before.count + 1);
        assert!((after.sum - before.sum - 42.0).abs() < 1e-9);
    }

    #[test]
    fn insert_then_exact_query_sees_new_tuple() {
        let (t, mut pass) = build(2_000, 2);
        // Insert far outside the key range, then query the whole space:
        // the root is covered, so the answer is exact.
        pass.insert(&[5.0], 1_000.0).unwrap();
        let q = Query::interval(AggKind::Sum, -1.0, 10.0);
        let est = pass.estimate(&q).unwrap();
        let truth = t.ground_truth(&q).unwrap() + 1_000.0;
        assert!(est.exact);
        assert!((est.value - truth).abs() < 1e-6);
    }

    #[test]
    fn many_inserts_keep_counts_consistent() {
        let (_, mut pass) = build(1_000, 3);
        for i in 0..500 {
            pass.insert(&[(i % 100) as f64 / 100.0], i as f64).unwrap();
        }
        let root = *pass.tree().agg(pass.tree().root());
        assert_eq!(root.count, 1_500);
        // Leaf counts sum to the root count.
        let leaf_total: u64 = pass
            .tree()
            .leaves()
            .into_iter()
            .map(|id| pass.tree().agg(id).count)
            .sum();
        assert_eq!(leaf_total, 1_500);
        // Sample populations track leaf counts.
        for (li, id) in pass.tree().leaves().into_iter().enumerate() {
            assert_eq!(
                pass.leaf_samples()[li].population(),
                pass.tree().agg(id).count
            );
        }
    }

    #[test]
    fn delete_reverses_insert_for_sum_count() {
        let (_, mut pass) = build(2_000, 4);
        let before = *pass.tree().agg(pass.tree().root());
        pass.insert(&[0.25], 77.0).unwrap();
        pass.delete(&[0.25], 77.0).unwrap();
        let after = *pass.tree().agg(pass.tree().root());
        assert_eq!(after.count, before.count);
        assert!((after.sum - before.sum).abs() < 1e-9);
    }

    #[test]
    fn deleting_sampled_tuple_removes_it_from_sample() {
        let (_, mut pass) = build(500, 5);
        // Insert enough copies of a distinctive tuple that at least one
        // lands in a reservoir.
        let mut inserted = 0;
        for _ in 0..200 {
            pass.insert(&[0.111], 9_999.0).unwrap();
            inserted += 1;
        }
        let mut evicted = 0;
        for _ in 0..inserted {
            if pass.delete(&[0.111], 9_999.0).unwrap() {
                evicted += 1;
            }
        }
        assert!(evicted > 0, "some sampled copies should be evicted");
        // No sampled row with the sentinel value survives.
        for s in pass.leaf_samples() {
            for i in 0..s.k() {
                assert_ne!(s.rows().value(i), 9_999.0);
            }
        }
    }

    #[test]
    fn estimates_stay_reasonable_after_update_burst() {
        let (t, mut pass) = build(5_000, 6);
        for i in 0..1_000 {
            pass.insert(&[(i as f64) / 1_000.0], 50.0).unwrap();
        }
        let q = Query::interval(AggKind::Sum, 0.0, 1.0);
        let est = pass.estimate(&q).unwrap();
        let truth = t.ground_truth(&q).unwrap() + 1_000.0 * 50.0;
        let rel = (est.value - truth).abs() / truth;
        assert!(rel < 0.05, "rel {rel}");
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let (_, mut pass) = build(100, 7);
        assert!(pass.insert(&[0.5, 0.5], 1.0).is_err());
        // A rejected update must not bump the epoch: nothing changed.
        assert_eq!(pass.update_epoch(), 0);
    }

    #[test]
    fn updates_advance_the_epoch() {
        let (_, mut pass) = build(500, 8);
        assert_eq!(pass.update_epoch(), 0);
        pass.insert(&[0.5], 1.0).unwrap();
        assert_eq!(pass.update_epoch(), 1);
        pass.delete(&[0.5], 1.0).unwrap();
        assert_eq!(pass.update_epoch(), 2);
        assert_eq!(pass.mutation_epoch(), 2);
    }

    #[test]
    fn cached_answers_stay_coherent_across_streaming_updates() {
        use pass_common::CachedSynopsis;
        let (t, pass) = build(2_000, 9);
        let mut cached = CachedSynopsis::new(pass, 64);
        let q = Query::interval(AggKind::Sum, -1.0, 10.0);
        let before = cached.estimate(&q).unwrap();
        assert!((before.value - t.ground_truth(&q).unwrap()).abs() < 1e-6);
        cached.estimate(&q).unwrap();
        assert_eq!(cached.cache().stats().hits, 1, "repeat served from cache");
        // Stream an insert through the decorator: the next answer must
        // reflect it with NO manual clear_cache.
        cached.inner_mut().insert(&[0.5], 500.0).unwrap();
        let after = cached.estimate(&q).unwrap();
        assert!((after.value - before.value - 500.0).abs() < 1e-6);
        // ...and the fresh answer is cacheable under the new epoch.
        cached.estimate(&q).unwrap();
        assert_eq!(cached.cache().stats().hits, 2);
        assert_eq!(cached.cache().epoch(), 1);
    }
}
