//! Multi-template forests (Section 4.5 extensions).
//!
//! "To handle multiple predicate column sets, we construct different trees
//! based on statistics from the workload." A [`PassForest`] holds several
//! PASS synopses over the same table — typically one per anticipated query
//! template, each indexing a different predicate-dimension subset via
//! [`crate::PassBuilder::tree_dims`] — and routes each incoming query to the
//! member whose indexed dimensions best cover the query's constrained
//! dimensions (falling back on the workload-shift machinery for the rest).

use pass_common::{Estimate, PassError, Query, Result, Synopsis};

use crate::synopsis::Pass;

/// A collection of PASS synopses with per-query routing.
#[derive(Debug, Clone)]
pub struct PassForest {
    members: Vec<Pass>,
    query_dims: usize,
}

impl PassForest {
    /// Assemble a forest. All members must accept the same query arity.
    pub fn new(members: Vec<Pass>) -> Result<Self> {
        let mut dims = None;
        for m in &members {
            match dims {
                None => dims = Some(m.dims()),
                Some(d) if d == m.dims() => {}
                Some(d) => {
                    return Err(PassError::DimensionMismatch {
                        expected: d,
                        got: m.dims(),
                    })
                }
            }
        }
        let query_dims = dims.ok_or(PassError::EmptyInput("forest with no members"))?;
        Ok(Self {
            members,
            query_dims,
        })
    }

    /// The member synopses.
    pub fn members(&self) -> &[Pass] {
        &self.members
    }

    /// Dimensions a query actually constrains (finite bounds).
    fn constrained_dims(query: &Query) -> Vec<usize> {
        (0..query.dims())
            .filter(|&d| query.rect.lo(d) != f64::NEG_INFINITY || query.rect.hi(d) != f64::INFINITY)
            .collect()
    }

    /// Pick the member whose indexed dimensions cover the most constrained
    /// query dimensions; ties break toward the member indexing *fewer*
    /// irrelevant dimensions (finer partitions on the dimensions that
    /// matter).
    pub fn route(&self, query: &Query) -> &Pass {
        let constrained = Self::constrained_dims(query);
        self.members
            .iter()
            .max_by_key(|m| {
                let indexed = m.indexed_dims();
                let covered = constrained.iter().filter(|d| indexed.contains(d)).count();
                let wasted = indexed.len().saturating_sub(covered);
                // Lexicographic (covered, -wasted).
                (covered as isize, -(wasted as isize))
            })
            .expect("forest is non-empty")
    }
}

impl Synopsis for PassForest {
    fn name(&self) -> &str {
        "PASS-Forest"
    }

    fn estimate(&self, query: &Query) -> Result<Estimate> {
        if query.dims() != self.query_dims {
            return Err(PassError::DimensionMismatch {
                expected: self.query_dims,
                got: query.dims(),
            });
        }
        self.route(query).estimate(query)
    }

    fn storage_bytes(&self) -> usize {
        self.members.iter().map(|m| m.storage_bytes()).sum()
    }

    fn dims(&self) -> usize {
        self.query_dims
    }
}

impl Pass {
    /// The query dimensions this synopsis' tree indexes (identity unless
    /// built with [`crate::PassBuilder::tree_dims`]).
    pub fn indexed_dims(&self) -> Vec<usize> {
        match &self.tree_dims {
            Some(d) => d.clone(),
            None => (0..self.query_dims).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synopsis::PassBuilder;
    use pass_common::{AggKind, Rect};
    use pass_table::datasets::taxi;

    fn forest() -> (pass_table::Table, PassForest) {
        let table = taxi(20_000, 5).project(&[1, 2, 3]).unwrap();
        let build = |dims: &[usize]| {
            PassBuilder::new()
                .partitions(64)
                .sample_rate(0.02)
                .tree_dims(dims)
                .seed(6)
                .build(&table)
                .unwrap()
        };
        let forest = PassForest::new(vec![build(&[0]), build(&[0, 1]), build(&[2])]).unwrap();
        (table, forest)
    }

    fn query_on(table: &pass_table::Table, dims: &[usize]) -> Query {
        let full = table.bounding_rect().unwrap();
        let bounds: Vec<(f64, f64)> = (0..table.dims())
            .map(|d| {
                if dims.contains(&d) {
                    let mid = (full.lo(d) + full.hi(d)) / 2.0;
                    (full.lo(d), mid)
                } else {
                    (f64::NEG_INFINITY, f64::INFINITY)
                }
            })
            .collect();
        Query::new(AggKind::Sum, Rect::new(&bounds))
    }

    #[test]
    fn routes_to_best_matching_template() {
        let (table, forest) = forest();
        // Query constraining dims {0,1}: the [0,1] member wins.
        let q = query_on(&table, &[0, 1]);
        assert_eq!(forest.route(&q).indexed_dims(), vec![0, 1]);
        // Query constraining only dim 2: the [2] member wins.
        let q = query_on(&table, &[2]);
        assert_eq!(forest.route(&q).indexed_dims(), vec![2]);
        // Query constraining only dim 0: prefer the [0] member (no wasted
        // indexed dimension) over [0,1].
        let q = query_on(&table, &[0]);
        assert_eq!(forest.route(&q).indexed_dims(), vec![0]);
    }

    #[test]
    fn forest_estimates_are_accurate() {
        let (table, forest) = forest();
        for dims in [&[0usize][..], &[0, 1], &[2], &[0, 2]] {
            let q = query_on(&table, dims);
            let est = forest.estimate(&q).unwrap();
            let truth = table.ground_truth(&q).unwrap();
            let rel = (est.value - truth).abs() / truth;
            assert!(rel < 0.3, "{dims:?}: rel {rel}");
        }
    }

    #[test]
    fn empty_forest_rejected() {
        assert!(PassForest::new(vec![]).is_err());
    }

    #[test]
    fn synopsis_contract() {
        let (_, forest) = forest();
        assert_eq!(forest.name(), "PASS-Forest");
        assert_eq!(forest.dims(), 3);
        assert!(forest.storage_bytes() > 0);
        assert_eq!(forest.members().len(), 3);
    }
}
