//! The workspace lint pass, run as a normal test target (and CI job).
//!
//! Each test runs one rule over the real workspace sources and fails
//! with the full violation list. The rules land green — violations are
//! fixed at the source, never allow-listed here.

use pass_lint::{render, run_workspace, Violation};

fn of_rule(rule: &str) -> Vec<Violation> {
    run_workspace()
        .into_iter()
        .filter(|v| v.rule == rule)
        .collect()
}

fn assert_clean(rule: &str) {
    let violations = of_rule(rule);
    assert!(
        violations.is_empty(),
        "[{rule}] {} violation(s):\n{}",
        violations.len(),
        render(&violations)
    );
}

#[test]
fn no_panic_paths_in_serving_tier_library_code() {
    assert_clean("no-panic");
}

#[test]
fn shimmed_modules_never_bypass_the_chaos_shims() {
    assert_clean("use-shims");
}

#[test]
fn every_relaxed_ordering_is_justified() {
    assert_clean("relaxed-justified");
}

#[test]
fn lock_acquisition_follows_the_declared_order() {
    assert_clean("lock-order");
}

#[test]
fn clock_reads_stay_in_the_declared_timing_modules() {
    assert_clean("time-confined");
}

#[test]
fn snapshot_decoders_never_index_untrusted_input() {
    assert_clean("decoder-no-index");
}

#[test]
fn scan_kernels_stay_allocation_free() {
    assert_clean("kernel-no-alloc");
}

#[test]
fn the_walk_actually_covers_the_serving_tier() {
    // Guard against a silent no-op pass: the walker must have parsed
    // the files the rules are scoped to.
    let root = pass_lint::workspace_root();
    for rel in pass_lint::SHIMMED {
        assert!(
            root.join(rel).is_file(),
            "lint scope lists a missing file: {rel}"
        );
    }
    for rel in pass_lint::TIME_ALLOWED {
        assert!(
            root.join(rel).is_file(),
            "time allowlist lists a missing file: {rel}"
        );
    }
    for rel in pass_lint::SNAPSHOT_DECODERS {
        assert!(
            root.join(rel).is_file(),
            "decoder scope lists a missing file: {rel}"
        );
    }
}
