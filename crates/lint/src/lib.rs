//! Source-level static-analysis pass for the PASS workspace.
//!
//! This crate is a dependency-free lint harness that runs as a normal
//! `cargo test -p pass-lint` target (and as a CI job). It walks the
//! workspace's library sources and enforces the concurrency and
//! robustness rules that `rustc` and `clippy` cannot express for us:
//!
//! 1. **No panic paths in serving-tier library code** — no `.unwrap()`,
//!    `.expect("…")`, `panic!`, `unreachable!`, `todo!`, or
//!    `unimplemented!` outside `#[cfg(test)]` code in `crates/common`
//!    and the root crate. A serving worker that panics takes its
//!    in-flight tickets down with it; errors must flow through
//!    `PassError`. (`chaos.rs`/`chaos/imp.rs` are exempt by design: the
//!    model checker *reports failures by panicking* with a replayable
//!    seed — that is its contract, not an accident.)
//! 2. **Shimmed modules use the shims** — the four model-checked
//!    modules (`queue.rs`, `ticket.rs`, `cache.rs`, `pool.rs`) must not
//!    reach around `pass_common::chaos` to `std::sync::Mutex`,
//!    `std::sync::Condvar`, `std::sync::atomic`, or
//!    `std::thread::scope`; a direct std primitive would be invisible
//!    to the model checker. (`std::sync::Arc` stays allowed — the model
//!    does not need to interpose on reference counting.)
//! 3. **Every `Ordering::Relaxed` is justified** — a `// relaxed:`
//!    comment on the same line, on a comment line above, or covering a
//!    consecutive run of relaxed operations. Relaxed is the right
//!    choice for advisory counters and nothing else; the justification
//!    keeps each use auditable.
//! 4. **Lock-ordering discipline** — locks are ranked by the declared
//!    table in [`LOCK_ORDER`] (`queue` < `ticket` < `cache`) and may
//!    only be acquired in ascending rank while another is held. In
//!    particular the queue lock is never acquired while a cache lock is
//!    held: a worker holding the cache while parking on the queue's
//!    condvar would stall every cache reader behind a scheduler
//!    decision.
//! 5. **Clock reads are confined** — `Instant::now` / `SystemTime`
//!    appear only in the declared timing modules ([`TIME_ALLOWED`]):
//!    deadline stamping, build timing, latency measurement, and the
//!    bench harness. Everything else must take timestamps as inputs,
//!    which is what keeps the rest of the workspace deterministic and
//!    model-checkable.
//! 6. **Scan kernels stay allocation-free** — the declared hot-path
//!    modules ([`SCAN_KERNELS`]) must not heap-allocate per call:
//!    `Vec::new`, `vec![…]`, `.collect()`, `with_capacity`, `.to_vec()`,
//!    and `Box::new` are flagged outside `#[cfg(test)]` code unless a
//!    `// alloc:` comment justifies the site (the scratch buffers'
//!    one-time construction). `resize` on a reusable buffer is the
//!    sanctioned growth idiom and is not flagged.
//! 7. **Snapshot decoders never index untrusted input** — the declared
//!    decoder modules ([`SNAPSHOT_DECODERS`]) parse attacker-controlled
//!    bytes, so `[`-indexing and slicing are flagged outside
//!    `#[cfg(test)]` code: access must go through `get(..)`-or-error
//!    (the `Cursor` idiom), which turns a corrupt length into a
//!    `SnapshotError` instead of a panic. A site whose bound was just
//!    validated may carry a `// bounds:` comment stating the argument.
//!
//! The analysis is deliberately *lexical*: sources are stripped of
//! comments and string contents, `#[cfg(test)]` regions are tracked by
//! brace depth, and the rules match declared patterns. That makes the
//! pass trivially auditable and fast, at the cost of depending on the
//! workspace's idioms (named guard bindings, one statement per
//! acquisition). Rules are scoped by the tables below rather than
//! allow-listing individual violations — the workspace lints clean.

#![warn(missing_docs)]

use std::fmt;
use std::path::{Path, PathBuf};

/// The declared lock ranking: while holding a lock of some rank, only
/// strictly higher ranks may be acquired. Rank 0 first.
pub const LOCK_ORDER: &[&str] = &["queue", "ticket", "cache"];

/// Files (workspace-relative) allowed to read wall clocks.
pub const TIME_ALLOWED: &[&str] = &[
    // Deadline stamping + latency measurement at the serving edge.
    "src/serve.rs",
    // Engine build timing for session stats.
    "src/session.rs",
    // Ticket wait timeouts are measured against a deadline.
    "crates/common/src/ticket.rs",
    // Progressive-ticket wait timeouts, same as ticket.rs.
    "crates/common/src/progressive.rs",
    // The time-budget policy module is *about* clocks.
    "crates/core/src/budget.rs",
    // Measurement harnesses.
    "crates/workload/src/runner.rs",
    "crates/bench/src/lib.rs",
];

/// The four model-checked modules that must route all synchronization
/// through `pass_common::chaos`.
pub const SHIMMED: &[&str] = &[
    "crates/common/src/queue.rs",
    "crates/common/src/ticket.rs",
    "crates/common/src/cache.rs",
    "crates/common/src/pool.rs",
];

/// Files exempt from the no-panic rule: the model checker's failure
/// channel *is* a panic carrying the replayable seed.
pub const PANIC_EXEMPT: &[&str] = &[
    "crates/common/src/chaos.rs",
    "crates/common/src/chaos/imp.rs",
];

/// The declared allocation-free scan-kernel modules (rule 6): the
/// columnar estimation hot path must reuse scratch buffers, never
/// allocate per query.
pub const SCAN_KERNELS: &[&str] = &["crates/sampling/src/kernel.rs"];

/// The snapshot decoder modules (rule 7): they parse untrusted bytes and
/// must reach them via `get(..)`-or-error, never unchecked indexing.
pub const SNAPSHOT_DECODERS: &[&str] = &[
    "crates/common/src/snapshot.rs",
    "crates/table/src/snapshot.rs",
    "crates/sampling/src/snapshot.rs",
    "crates/core/src/snapshot.rs",
    "crates/baselines/src/snapshot.rs",
];

/// One rule violation at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Which rule fired (short slug).
    pub rule: &'static str,
    /// What went wrong and how to fix it.
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// One physical source line after stripping: `code` keeps everything
/// outside comments with string *contents* blanked (delimiters stay, so
/// `.expect("` remains matchable); `comment` holds the comment text;
/// `in_test` marks `#[cfg(test)]` / `#[test]` regions.
#[derive(Debug, Default, Clone)]
struct Line {
    code: String,
    comment: String,
    in_test: bool,
}

/// Strip comments and string contents from `source`, one entry per
/// physical line.
fn strip(source: &str) -> Vec<Line> {
    #[derive(PartialEq)]
    enum State {
        Code,
        LineComment,
        Block(u32),
        Str,
        RawStr(usize),
    }
    let mut state = State::Code;
    let mut lines = Vec::new();
    let mut cur = Line::default();
    let chars: Vec<char> = source.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            if state == State::LineComment {
                state = State::Code;
            }
            lines.push(std::mem::take(&mut cur));
            i += 1;
            continue;
        }
        match state {
            State::Code => {
                let next = chars.get(i + 1).copied();
                if c == '/' && next == Some('/') {
                    state = State::LineComment;
                    i += 2;
                    continue;
                }
                if c == '/' && next == Some('*') {
                    state = State::Block(1);
                    i += 2;
                    continue;
                }
                // Raw strings: r"…", r#"…"#, br#"…"# — consumed here so
                // the Str state never has to reason about escapes in them.
                if (c == 'r' || (c == 'b' && next == Some('r')))
                    && !cur
                        .code
                        .ends_with(|p: char| p.is_alphanumeric() || p == '_')
                {
                    let mut j = i + if c == 'b' { 2 } else { 1 };
                    let mut hashes = 0;
                    while chars.get(j) == Some(&'#') {
                        hashes += 1;
                        j += 1;
                    }
                    if chars.get(j) == Some(&'"') {
                        cur.code.push('"');
                        state = State::RawStr(hashes);
                        i = j + 1;
                        continue;
                    }
                }
                if c == '"' {
                    cur.code.push('"');
                    state = State::Str;
                    i += 1;
                    continue;
                }
                // Char/byte literals vs lifetimes: consume '…' only when
                // it closes within a couple of characters.
                if c == '\'' {
                    let close = if next == Some('\\') { 3 } else { 2 };
                    if chars.get(i + close).copied() == Some('\'') {
                        i += close + 1;
                        cur.code.push_str("' '");
                        continue;
                    }
                }
                cur.code.push(c);
                i += 1;
            }
            State::LineComment => {
                cur.comment.push(c);
                i += 1;
            }
            State::Block(depth) => {
                let next = chars.get(i + 1).copied();
                if c == '*' && next == Some('/') {
                    state = if depth == 1 {
                        State::Code
                    } else {
                        State::Block(depth - 1)
                    };
                    i += 2;
                } else if c == '/' && next == Some('*') {
                    state = State::Block(depth + 1);
                    i += 2;
                } else {
                    cur.comment.push(c);
                    i += 1;
                }
            }
            State::Str => {
                if c == '\\' {
                    i += 2;
                } else if c == '"' {
                    cur.code.push('"');
                    state = State::Code;
                    i += 1;
                } else {
                    i += 1;
                }
            }
            State::RawStr(hashes) => {
                if c == '"' && chars[i + 1..].iter().take(hashes).all(|&h| h == '#') {
                    cur.code.push('"');
                    state = State::Code;
                    i += hashes + 1;
                } else {
                    i += 1;
                }
            }
        }
    }
    if !cur.code.is_empty() || !cur.comment.is_empty() {
        lines.push(cur);
    }
    lines
}

/// Mark `#[cfg(test)]` / `#[test]` items: from the attribute to the
/// close of the next brace block opened at or below the attribute's
/// depth.
fn mark_test_regions(lines: &mut [Line]) {
    let mut depth: i64 = 0;
    let mut pending = false;
    // Depth at which the current test region's block opened.
    let mut region: Option<i64> = None;
    for line in lines.iter_mut() {
        let code = line.code.clone();
        if region.is_none()
            && (code.contains("#[cfg(test)]")
                || code.contains("#[cfg(all(test")
                || code.contains("#[test]"))
        {
            pending = true;
        }
        line.in_test = pending || region.is_some();
        for c in code.chars() {
            match c {
                '{' => {
                    if pending {
                        region = Some(depth);
                        pending = false;
                    }
                    depth += 1;
                }
                '}' => {
                    depth -= 1;
                    if region == Some(depth) {
                        region = None;
                    }
                }
                _ => {}
            }
        }
    }
}

/// A stripped source file ready for rule checks.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path with `/` separators.
    pub rel: String,
    lines: Vec<Line>,
}

impl SourceFile {
    /// Strip `source` (as the file at workspace-relative path `rel`).
    pub fn parse(rel: &str, source: &str) -> Self {
        let mut lines = strip(source);
        mark_test_regions(&mut lines);
        Self {
            rel: rel.to_string(),
            lines,
        }
    }

    fn push(&self, out: &mut Vec<Violation>, idx: usize, rule: &'static str, message: String) {
        out.push(Violation {
            file: self.rel.clone(),
            line: idx + 1,
            rule,
            message,
        });
    }
}

fn in_scope(rel: &str, prefixes: &[&str]) -> bool {
    prefixes.iter().any(|p| rel.starts_with(p))
}

/// Rule 1: no panic paths in non-test serving-tier library code.
pub fn check_no_panic(file: &SourceFile, out: &mut Vec<Violation>) {
    if !in_scope(&file.rel, &["crates/common/src/", "src/"])
        || PANIC_EXEMPT.contains(&file.rel.as_str())
    {
        return;
    }
    const PATTERNS: &[(&str, &str)] = &[
        (".unwrap()", "use `?`, `unwrap_or*`, or restructure"),
        (".expect(\"", "return a `PassError` instead of panicking"),
        ("panic!(", "serving workers must not panic; return an error"),
        (
            "unreachable!(",
            "make the state unrepresentable or return an error",
        ),
        ("todo!(", "no placeholders in library code"),
        ("unimplemented!(", "no placeholders in library code"),
    ];
    for (i, line) in file.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        for (pat, fix) in PATTERNS {
            if line.code.contains(pat) {
                file.push(
                    out,
                    i,
                    "no-panic",
                    format!("`{pat}` in library code: {fix}"),
                );
            }
        }
    }
}

/// Rule 2: the model-checked modules must use the `chaos` shims, not
/// raw std synchronization.
pub fn check_shim_imports(file: &SourceFile, out: &mut Vec<Violation>) {
    if !SHIMMED.contains(&file.rel.as_str()) {
        return;
    }
    for (i, line) in file.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        for hit in ["std::sync::", "std::thread::scope"] {
            let Some(pos) = line.code.find(hit) else {
                continue;
            };
            let rest = &line.code[pos + hit.len()..];
            // `std::sync::Arc` (and `Arc` inside a brace import without
            // forbidden siblings) stays allowed.
            if hit == "std::sync::" {
                let forbidden = ["Mutex", "Condvar", "atomic", "RwLock", "mpsc", "Barrier"];
                let named = if let Some(inner) = rest.strip_prefix('{') {
                    forbidden.iter().any(|f| inner.contains(f))
                } else {
                    forbidden.iter().any(|f| rest.starts_with(f))
                };
                if !named {
                    continue;
                }
            }
            file.push(
                out,
                i,
                "use-shims",
                format!(
                    "`{hit}…` bypasses `crate::chaos` — the model checker cannot \
                     see raw std primitives in a shimmed module"
                ),
            );
        }
    }
}

/// Rule 3: every `Ordering::Relaxed` carries a `// relaxed:`
/// justification — same line, a comment line above, or one comment
/// covering a consecutive run of relaxed operations (multi-line call
/// chains count as part of the run).
pub fn check_relaxed_justified(file: &SourceFile, out: &mut Vec<Violation>) {
    if !in_scope(&file.rel, &["crates/common/src/", "src/"]) {
        return;
    }
    for (i, line) in file.lines.iter().enumerate() {
        if line.in_test || !line.code.contains("Ordering::Relaxed") {
            continue;
        }
        if line.comment.contains("relaxed:") {
            continue;
        }
        let mut justified = false;
        for prev in file.lines[..i].iter().rev() {
            let code = prev.code.trim();
            if code.is_empty() {
                // Pure comment (or blank) line: the justification spot.
                if prev.comment.contains("relaxed:") {
                    justified = true;
                    break;
                }
                if prev.comment.trim().is_empty() {
                    break; // blank line ends the run
                }
                continue;
            }
            // Skip through the current run: earlier relaxed operations
            // and unterminated fragments of a multi-line call chain.
            if code.contains("Ordering::Relaxed") || !code.contains(';') {
                if prev.comment.contains("relaxed:") {
                    justified = true;
                    break;
                }
                continue;
            }
            break;
        }
        if !justified {
            file.push(
                out,
                i,
                "relaxed-justified",
                "`Ordering::Relaxed` without a `// relaxed:` justification comment".to_string(),
            );
        }
    }
}

/// How a lock of some rank can be recognized in source.
struct LockPattern {
    /// Restrict to one file (workspace-relative), or `None` for all.
    file: Option<&'static str>,
    /// Substring that marks an acquisition when found in a code line.
    pattern: &'static str,
    /// The receiver text must also contain this hint (cuts false
    /// positives on generic method names).
    receiver_hint: &'static str,
    /// Index into [`LOCK_ORDER`].
    rank: usize,
    /// Whether a `let` binding of this acquisition keeps the lock held
    /// (true only for direct `.lock()` calls — entry-point methods
    /// release internally and return plain data).
    binds_guard: bool,
}

const LOCK_PATTERNS: &[LockPattern] = &[
    // Direct acquisitions inside the owning modules.
    LockPattern {
        file: Some("crates/common/src/queue.rs"),
        pattern: "self.inner.lock()",
        receiver_hint: "",
        rank: 0,
        binds_guard: true,
    },
    LockPattern {
        file: Some("crates/common/src/ticket.rs"),
        pattern: ".state.lock()",
        receiver_hint: "",
        rank: 1,
        binds_guard: true,
    },
    LockPattern {
        file: Some("crates/common/src/cache.rs"),
        pattern: "self.inner.lock()",
        receiver_hint: "",
        rank: 2,
        binds_guard: true,
    },
    // Cross-module entry points that take the queue lock.
    LockPattern {
        file: None,
        pattern: ".pop_blocking(",
        receiver_hint: "queue",
        rank: 0,
        binds_guard: false,
    },
    LockPattern {
        file: None,
        pattern: ".try_push(",
        receiver_hint: "queue",
        rank: 0,
        binds_guard: false,
    },
    LockPattern {
        file: None,
        pattern: ".try_push_scheduled(",
        receiver_hint: "queue",
        rank: 0,
        binds_guard: false,
    },
    LockPattern {
        file: None,
        pattern: ".try_push_or_merge(",
        receiver_hint: "queue",
        rank: 0,
        binds_guard: false,
    },
    LockPattern {
        file: None,
        pattern: ".drain_class_where(",
        receiver_hint: "queue",
        rank: 0,
        binds_guard: false,
    },
    LockPattern {
        file: None,
        pattern: ".set_paused(",
        receiver_hint: "queue",
        rank: 0,
        binds_guard: false,
    },
    LockPattern {
        file: None,
        pattern: ".close(",
        receiver_hint: "queue",
        rank: 0,
        binds_guard: false,
    },
    LockPattern {
        file: None,
        pattern: ".high_water(",
        receiver_hint: "queue",
        rank: 0,
        binds_guard: false,
    },
    // Entry points that take a ticket's state lock.
    LockPattern {
        file: None,
        pattern: ".fulfill(",
        receiver_hint: "slot",
        rank: 1,
        binds_guard: false,
    },
    // Entry points that take the cache lock.
    LockPattern {
        file: None,
        pattern: ".get_keyed(",
        receiver_hint: "cache",
        rank: 2,
        binds_guard: false,
    },
    LockPattern {
        file: None,
        pattern: ".get_many_keyed(",
        receiver_hint: "cache",
        rank: 2,
        binds_guard: false,
    },
    LockPattern {
        file: None,
        pattern: ".insert_keyed(",
        receiver_hint: "cache",
        rank: 2,
        binds_guard: false,
    },
    LockPattern {
        file: None,
        pattern: ".insert_many_keyed(",
        receiver_hint: "cache",
        rank: 2,
        binds_guard: false,
    },
    LockPattern {
        file: None,
        pattern: ".sync_epoch(",
        receiver_hint: "cache",
        rank: 2,
        binds_guard: false,
    },
];

/// Files the lock-order rule watches (the serving tier).
const LOCK_ORDER_SCOPE: &[&str] = &[
    "crates/common/src/queue.rs",
    "crates/common/src/ticket.rs",
    "crates/common/src/cache.rs",
    "crates/common/src/pool.rs",
    "src/serve.rs",
    "src/session.rs",
];

fn lock_hits(file: &SourceFile, code: &str) -> Vec<(usize, &'static str, bool)> {
    let mut hits = Vec::new();
    for lp in LOCK_PATTERNS {
        if let Some(f) = lp.file {
            if f != file.rel {
                continue;
            }
        }
        let Some(pos) = code.find(lp.pattern) else {
            continue;
        };
        if !code[..pos].contains(lp.receiver_hint) {
            continue;
        }
        hits.push((lp.rank, lp.pattern, lp.binds_guard));
    }
    hits
}

/// Rule 4: within a function, while a guard bound from a lock of rank
/// `r` is live, only locks of strictly higher rank may be acquired.
/// Guard liveness is lexical: from its `let` binding to the close of
/// the enclosing block or an explicit `drop(guard)`.
pub fn check_lock_order(file: &SourceFile, out: &mut Vec<Violation>) {
    if !LOCK_ORDER_SCOPE.contains(&file.rel.as_str()) {
        return;
    }
    // Live guards: (binding name, rank, depth the binding lives at).
    let mut guards: Vec<(String, usize, i64)> = Vec::new();
    let mut depth: i64 = 0;
    for (i, line) in file.lines.iter().enumerate() {
        if line.in_test {
            for c in line.code.chars() {
                match c {
                    '{' => depth += 1,
                    '}' => depth -= 1,
                    _ => {}
                }
            }
            guards.retain(|&(_, _, d)| d <= depth);
            continue;
        }
        let code = line.code.trim().to_string();
        let hits = lock_hits(file, &code);
        if let Some(&(rank, pattern, binds_guard)) = hits.first() {
            if let Some(&(ref held, held_rank, _)) =
                guards.iter().find(|&&(_, held_rank, _)| rank <= held_rank)
            {
                file.push(
                    out,
                    i,
                    "lock-order",
                    format!(
                        "acquiring `{}` lock (via `{pattern}`) while holding `{held}` \
                         (`{}` lock) violates the declared order {:?}",
                        LOCK_ORDER[rank], LOCK_ORDER[held_rank], LOCK_ORDER
                    ),
                );
            }
            // A `let`-bound guard stays live; a temporary (or an
            // entry-point method that releases internally) needs no
            // tracking.
            if binds_guard {
                if let Some(rest) = code.strip_prefix("let ") {
                    let name: String = rest
                        .trim_start_matches("mut ")
                        .chars()
                        .take_while(|c| c.is_alphanumeric() || *c == '_')
                        .collect();
                    if !name.is_empty() {
                        guards.push((name, rank, depth));
                    }
                }
            }
        }
        // Explicit early release.
        guards.retain(|(name, _, _)| !code.contains(&format!("drop({name})")));
        for c in line.code.chars() {
            match c {
                '{' => depth += 1,
                '}' => depth -= 1,
                _ => {}
            }
        }
        guards.retain(|&(_, _, d)| d <= depth);
    }
}

/// Rule 5: wall-clock reads only in the declared timing modules.
pub fn check_time_confined(file: &SourceFile, out: &mut Vec<Violation>) {
    if TIME_ALLOWED.contains(&file.rel.as_str()) || file.rel.starts_with("crates/lint/") {
        return;
    }
    for (i, line) in file.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        for pat in ["Instant::now", "SystemTime"] {
            if line.code.contains(pat) {
                file.push(
                    out,
                    i,
                    "time-confined",
                    format!(
                        "`{pat}` outside the declared timing modules — take timestamps \
                         as inputs so the logic stays deterministic and model-checkable"
                    ),
                );
            }
        }
    }
}

/// Rule 6: no per-call heap allocation in the declared scan-kernel
/// modules. Flags `Vec::new`, `vec![…]`, `.collect()`, `with_capacity`,
/// `.to_vec()`, and `Box::new` outside test code unless an `// alloc:`
/// comment (same line, or a comment line directly above) justifies the
/// site. `resize` on a reusable buffer is the sanctioned growth idiom.
pub fn check_no_alloc_in_kernels(file: &SourceFile, out: &mut Vec<Violation>) {
    if !SCAN_KERNELS.contains(&file.rel.as_str()) {
        return;
    }
    const PATTERNS: &[&str] = &[
        "Vec::new",
        "vec!",
        ".collect()",
        "with_capacity",
        ".to_vec()",
        "Box::new",
    ];
    for (i, line) in file.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        for pat in PATTERNS {
            if !line.code.contains(pat) {
                continue;
            }
            let justified = line.comment.contains("alloc:")
                || file.lines[..i]
                    .iter()
                    .rev()
                    .take_while(|prev| prev.code.trim().is_empty())
                    .any(|prev| prev.comment.contains("alloc:"));
            if !justified {
                file.push(
                    out,
                    i,
                    "kernel-no-alloc",
                    format!(
                        "`{pat}` in a scan-kernel module: the hot path must reuse \
                         scratch buffers (`resize` on a long-lived Vec), or carry an \
                         `// alloc:` justification"
                    ),
                );
            }
        }
    }
}

/// Rule 7: no unchecked indexing or slicing in the snapshot decoder
/// modules. A `[` preceded by an identifier character, `)`, or `]` is an
/// index/slice expression on untrusted input; decoders must use
/// `get(..)`-or-error instead, so a lying length becomes a
/// `SnapshotError` rather than a panic. A `// bounds:` comment (same
/// line, or a comment line directly above) marks the rare site whose
/// bound a preceding check already established.
pub fn check_decoder_indexing(file: &SourceFile, out: &mut Vec<Violation>) {
    if !SNAPSHOT_DECODERS.contains(&file.rel.as_str()) {
        return;
    }
    for (i, line) in file.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        let code = &line.code;
        let indexes = code.char_indices().any(|(pos, c)| {
            c == '['
                && code[..pos].chars().next_back().is_some_and(|p| {
                    p.is_alphanumeric() || p == '_' || p == ')' || p == ']' || p == '?'
                })
        });
        if !indexes {
            continue;
        }
        let justified = line.comment.contains("bounds:")
            || file.lines[..i]
                .iter()
                .rev()
                .take_while(|prev| prev.code.trim().is_empty())
                .any(|prev| prev.comment.contains("bounds:"));
        if !justified {
            file.push(
                out,
                i,
                "decoder-no-index",
                "index/slice expression in a snapshot decoder: use `get(..)`-or-error \
                 so corrupt input fails as `SnapshotError`, or justify a checked bound \
                 with a `// bounds:` comment"
                    .to_string(),
            );
        }
    }
}

/// Run every rule over one parsed file.
pub fn check_file(file: &SourceFile) -> Vec<Violation> {
    let mut out = Vec::new();
    check_no_panic(file, &mut out);
    check_shim_imports(file, &mut out);
    check_relaxed_justified(file, &mut out);
    check_lock_order(file, &mut out);
    check_time_confined(file, &mut out);
    check_no_alloc_in_kernels(file, &mut out);
    check_decoder_indexing(file, &mut out);
    out
}

/// The workspace root, resolved from this crate's manifest directory.
pub fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .map(Path::to_path_buf)
        .unwrap_or_else(|| PathBuf::from("."))
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            collect_rs(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// Walk the workspace's library sources (`crates/*/src` and `src/`,
/// vendored stubs excluded) and run every rule. Returns all violations,
/// sorted by file and line.
pub fn run_workspace() -> Vec<Violation> {
    let root = workspace_root();
    let mut files = Vec::new();
    collect_rs(&root.join("src"), &mut files);
    if let Ok(crates) = std::fs::read_dir(root.join("crates")) {
        for entry in crates.flatten() {
            collect_rs(&entry.path().join("src"), &mut files);
        }
    }
    files.sort();
    let mut out = Vec::new();
    for path in files {
        let Ok(source) = std::fs::read_to_string(&path) else {
            continue;
        };
        let rel = path
            .strip_prefix(&root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        out.extend(check_file(&SourceFile::parse(&rel, &source)));
    }
    out
}

/// Render violations one per line for assertion messages.
pub fn render(violations: &[Violation]) -> String {
    violations
        .iter()
        .map(|v| format!("  {v}"))
        .collect::<Vec<_>>()
        .join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(rel: &str, src: &str) -> SourceFile {
        SourceFile::parse(rel, src)
    }

    #[test]
    fn stripper_removes_comments_and_string_contents() {
        let f = file(
            "src/x.rs",
            "let a = \"panic!(\"; // panic!(\nlet b = 1; /* .unwrap() */\n",
        );
        assert!(f.lines[0].code.contains("let a = \"\";"));
        assert!(f.lines[0].comment.contains("panic!("));
        assert!(!f.lines[1].code.contains(".unwrap()"));
    }

    #[test]
    fn stripper_keeps_expect_matchable_and_skips_lifetimes() {
        let f = file(
            "src/x.rs",
            "fn g<'a>(x: &'a str) { x.expect(\"boom\"); let c = 'x'; }\n",
        );
        assert!(f.lines[0].code.contains(".expect(\""));
        assert!(f.lines[0].code.contains("<'a>"));
    }

    #[test]
    fn test_regions_are_skipped() {
        let src = "fn lib() { x.unwrap(); }\n#[cfg(test)]\nmod tests {\n    fn t() { y.unwrap(); }\n}\nfn lib2() { z.unwrap(); }\n";
        let f = file("src/x.rs", src);
        let mut out = Vec::new();
        check_no_panic(&f, &mut out);
        let lines: Vec<usize> = out.iter().map(|v| v.line).collect();
        assert_eq!(lines, vec![1, 6], "only non-test unwraps flagged: {out:?}");
    }

    #[test]
    fn no_panic_rule_catches_each_pattern() {
        let src = "fn f() { a.unwrap(); b.expect(\"x\"); panic!(\"y\"); unreachable!(); }\n";
        let mut out = Vec::new();
        check_no_panic(&file("crates/common/src/queue.rs", src), &mut out);
        assert_eq!(out.len(), 4);
        // Out of scope: other crates have their own idioms.
        out.clear();
        check_no_panic(&file("crates/core/src/mcf.rs", src), &mut out);
        assert!(out.is_empty());
        // Exempt: the model checker fails by panicking, by design.
        out.clear();
        check_no_panic(&file("crates/common/src/chaos.rs", src), &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn expect_method_definitions_are_not_flagged() {
        let src = "fn f(&mut self) { self.expect(b'[')?; }\n";
        let mut out = Vec::new();
        check_no_panic(&file("crates/common/src/json.rs", src), &mut out);
        assert!(out.is_empty(), "byte-arg expect is not Option::expect");
    }

    #[test]
    fn shim_rule_flags_raw_std_sync_but_allows_arc() {
        let src = "use std::sync::{Arc, Mutex};\nuse std::sync::Arc;\nuse std::sync::atomic::AtomicU64;\nstd::thread::scope(|s| {});\n";
        let mut out = Vec::new();
        check_shim_imports(&file("crates/common/src/queue.rs", src), &mut out);
        let lines: Vec<usize> = out.iter().map(|v| v.line).collect();
        assert_eq!(lines, vec![1, 3, 4], "{out:?}");
        // Not a shimmed module: free to use std.
        out.clear();
        check_shim_imports(&file("crates/common/src/histogram.rs", src), &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn relaxed_rule_accepts_same_line_above_and_runs() {
        let src = "\
a.load(Ordering::Relaxed); // relaxed: fine
// relaxed: covers the run below
b.fetch_add(1, Ordering::Relaxed);
c.fetch_add(1, Ordering::Relaxed);
let other = 1;
d.load(Ordering::Relaxed);
";
        let mut out = Vec::new();
        check_relaxed_justified(&file("src/serve.rs", src), &mut out);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].line, 6, "a statement ends the covered run");
    }

    #[test]
    fn relaxed_rule_sees_through_multiline_chains() {
        let src = "\
// relaxed: counter
x.y
    .z
    .fetch_add(1, Ordering::Relaxed);
";
        let mut out = Vec::new();
        check_relaxed_justified(&file("src/serve.rs", src), &mut out);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn lock_order_flags_queue_acquisition_under_cache_lock() {
        let src = "\
fn bad(&self) {
    let inner = self.inner.lock();
    self.queue.try_push(1, p);
}
";
        let mut out = Vec::new();
        check_lock_order(&file("crates/common/src/cache.rs", src), &mut out);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("queue"));
        assert!(out[0].message.contains("cache"));
    }

    #[test]
    fn lock_order_allows_disjoint_and_released_guards() {
        let src = "\
fn ok(&self) {
    {
        let inner = self.inner.lock();
    }
    self.queue.try_push(1, p);
}
fn ok2(&self) {
    let inner = self.inner.lock();
    drop(inner);
    self.queue.pop_blocking();
}
";
        let mut out = Vec::new();
        check_lock_order(&file("crates/common/src/cache.rs", src), &mut out);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn lock_order_allows_ascending_acquisition() {
        let src = "\
fn ok(&self) {
    let g = self.inner.lock();
    self.cache.sync_epoch(7);
}
";
        let mut out = Vec::new();
        check_lock_order(&file("crates/common/src/queue.rs", src), &mut out);
        assert!(
            out.is_empty(),
            "queue -> cache is the declared order: {out:?}"
        );
    }

    #[test]
    fn time_rule_confines_clock_reads() {
        let src = "fn f() { let t = Instant::now(); }\n";
        let mut out = Vec::new();
        check_time_confined(&file("crates/common/src/queue.rs", src), &mut out);
        assert_eq!(out.len(), 1);
        out.clear();
        check_time_confined(&file("src/serve.rs", src), &mut out);
        assert!(out.is_empty(), "serve.rs is a declared timing module");
    }

    #[test]
    fn workspace_root_points_at_the_repo() {
        assert!(workspace_root().join("Cargo.toml").is_file());
    }

    #[test]
    fn kernel_alloc_rule_flags_each_pattern() {
        let src = "\
fn f() {
    let a = Vec::new();
    let b = vec![0u8; 4];
    let c = (0..4).collect();
    let d = Vec::with_capacity(4);
    let e = s.to_vec();
    let f = Box::new(1);
    buf.resize(4, 0);
}
";
        let mut out = Vec::new();
        check_no_alloc_in_kernels(&file("crates/sampling/src/kernel.rs", src), &mut out);
        assert_eq!(out.len(), 6, "{out:?}");
        assert!(out.iter().all(|v| v.rule == "kernel-no-alloc"));
        // `resize` is the sanctioned growth idiom — never flagged.
        assert!(!out.iter().any(|v| v.line == 8), "{out:?}");
        // Out of scope: normal modules may allocate freely.
        out.clear();
        check_no_alloc_in_kernels(&file("crates/sampling/src/sample.rs", src), &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn decoder_index_rule_flags_unchecked_indexing() {
        let src = "\
fn f(bytes: &[u8]) {
    let a = bytes[0];
    let b = &bytes[..8];
    let c = table(x)[i];
    let d = self.take(1, what)?[0];
    let e = bytes.get(0);
    let f: [u8; 8] = seed();
    #[derive(Debug)]
    struct S;
}
";
        let mut out = Vec::new();
        check_decoder_indexing(&file("crates/common/src/snapshot.rs", src), &mut out);
        let lines: Vec<usize> = out.iter().map(|v| v.line).collect();
        assert_eq!(lines, vec![2, 3, 4, 5], "{out:?}");
        assert!(out.iter().all(|v| v.rule == "decoder-no-index"));
        // Out of scope: ordinary modules may index freely.
        out.clear();
        check_decoder_indexing(&file("crates/common/src/histogram.rs", src), &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn decoder_index_rule_accepts_bounds_justifications_and_tests() {
        let src = "\
fn f(bytes: &[u8]) {
    let a = bytes[0]; // bounds: length checked above
    // bounds: span validated against the arena length
    let b = &bytes[..8];
}
#[cfg(test)]
mod tests {
    fn t(bytes: &[u8]) {
        let c = bytes[1];
    }
}
";
        let mut out = Vec::new();
        check_decoder_indexing(&file("crates/core/src/snapshot.rs", src), &mut out);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn kernel_alloc_rule_accepts_justifications_and_tests() {
        let src = "\
fn f() {
    let a = Vec::new(); // alloc: one-time scratch construction
    // alloc: thread-local built once
    let b = Vec::with_capacity(4);
}
#[cfg(test)]
mod tests {
    fn t() {
        let c = vec![1, 2, 3];
    }
}
";
        let mut out = Vec::new();
        check_no_alloc_in_kernels(&file("crates/sampling/src/kernel.rs", src), &mut out);
        assert!(out.is_empty(), "{out:?}");
    }
}
