//! Dictionary encoding for categorical predicate columns.
//!
//! Section 4.5: "by applying any dictionary encoding we can handle queries
//! over categorical variables". [`Dictionary`] assigns each distinct string a
//! dense integer code (stored as `f64` so categorical columns slot straight
//! into the rectangular predicate machinery); a group-by over a categorical
//! column becomes one equality rectangle per code.

use std::collections::HashMap;

/// A string-to-code dictionary with stable, dense codes in insertion order.
#[derive(Debug, Clone, Default)]
pub struct Dictionary {
    codes: HashMap<String, u32>,
    labels: Vec<String>,
}

impl Dictionary {
    pub fn new() -> Self {
        Self::default()
    }

    /// Code for `label`, inserting it if unseen.
    pub fn encode(&mut self, label: &str) -> u32 {
        if let Some(&c) = self.codes.get(label) {
            return c;
        }
        let c = self.labels.len() as u32;
        self.codes.insert(label.to_owned(), c);
        self.labels.push(label.to_owned());
        c
    }

    /// Code for `label` if already present.
    pub fn lookup(&self, label: &str) -> Option<u32> {
        self.codes.get(label).copied()
    }

    /// Label for a code.
    pub fn decode(&self, code: u32) -> Option<&str> {
        self.labels.get(code as usize).map(|s| s.as_str())
    }

    /// Number of distinct labels.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// True when no labels have been encoded.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Encode a whole column of labels into predicate-ready `f64` codes.
    pub fn encode_column<'a, I: IntoIterator<Item = &'a str>>(&mut self, labels: I) -> Vec<f64> {
        labels.into_iter().map(|l| self.encode(l) as f64).collect()
    }

    /// The equality "rectangle bounds" `(code, code)` for a label — the
    /// rewrite of a group-by condition into a rectangular predicate.
    pub fn equality_bounds(&self, label: &str) -> Option<(f64, f64)> {
        self.lookup(label).map(|c| (c as f64, c as f64))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_dense_and_stable() {
        let mut d = Dictionary::new();
        assert_eq!(d.encode("banana"), 0);
        assert_eq!(d.encode("apple"), 1);
        assert_eq!(d.encode("banana"), 0);
        assert_eq!(d.len(), 2);
        assert_eq!(d.decode(1), Some("apple"));
        assert_eq!(d.decode(5), None);
    }

    #[test]
    fn lookup_does_not_insert() {
        let d = Dictionary::new();
        assert_eq!(d.lookup("missing"), None);
        assert!(d.is_empty());
    }

    #[test]
    fn column_encoding_roundtrip() {
        let mut d = Dictionary::new();
        let col = d.encode_column(["a", "b", "a", "c"]);
        assert_eq!(col, vec![0.0, 1.0, 0.0, 2.0]);
        assert_eq!(d.equality_bounds("b"), Some((1.0, 1.0)));
        assert_eq!(d.equality_bounds("zzz"), None);
    }
}
