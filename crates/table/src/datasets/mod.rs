//! Synthetic dataset generators.
//!
//! The paper evaluates on the Intel Wireless sensor dataset, the Instacart
//! 2017 order table, and the NYC Taxi January-2019 trip records, plus one
//! synthetic adversarial dataset (Section 5.1.1 / 5.3). The real CSVs are
//! not redistributable, so each generator reproduces the *statistical
//! regime* that drives the paper's results (see DESIGN.md "Substitutions"):
//!
//! * [`intel`]: heteroscedastic diurnal signal — long zero-variance night
//!   stretches, bursty daytime light readings;
//! * [`instacart`]: Zipf-skewed categorical predicate with a Bernoulli
//!   aggregate;
//! * [`taxi`]: cyclic time-of-day modulation of a lognormal aggregate, with
//!   five extra predicate columns for the multi-dimensional templates;
//! * [`adversarial`]: 87.5% zeros then a normal tail, exactly as §5.3;
//! * [`uniform`]: featureless baseline for unit tests.
//!
//! All generators take `(n_rows, seed)` and are fully deterministic.

mod adversarial;
mod instacart;
mod intel;
mod taxi;
mod uniform;

pub use adversarial::{adversarial, tail_start, ZERO_FRACTION};
pub use instacart::instacart;
pub use intel::intel;
pub use taxi::{taxi, TAXI_PREDICATES};
pub use uniform::uniform;

use crate::table::Table;

/// Identifier for the three "real-life" datasets as used across the
/// benchmark tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DatasetId {
    Intel,
    Instacart,
    NycTaxi,
}

impl DatasetId {
    pub const ALL: [DatasetId; 3] = [DatasetId::Intel, DatasetId::Instacart, DatasetId::NycTaxi];

    /// Column shown in the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            DatasetId::Intel => "Intel",
            DatasetId::Instacart => "Insta",
            DatasetId::NycTaxi => "NYC",
        }
    }

    /// Paper-scale row count (Section 5.1.1).
    pub fn paper_rows(self) -> usize {
        match self {
            DatasetId::Intel => 3_000_000,
            DatasetId::Instacart => 1_400_000,
            DatasetId::NycTaxi => 7_700_000,
        }
    }

    /// Generate the dataset at a chosen scale. For the taxi dataset this is
    /// the 1-D (pickup_datetime) view used by the 1-D experiments.
    pub fn generate(self, n_rows: usize, seed: u64) -> Table {
        match self {
            DatasetId::Intel => intel(n_rows, seed),
            DatasetId::Instacart => instacart(n_rows, seed),
            DatasetId::NycTaxi => taxi(n_rows, seed)
                .project(&[0])
                .expect("taxi table always has dim 0"),
        }
    }
}

impl std::fmt::Display for DatasetId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dataset_ids_generate_one_dim_tables() {
        for id in DatasetId::ALL {
            let t = id.generate(2000, 7);
            assert_eq!(t.n_rows(), 2000, "{id}");
            assert_eq!(t.dims(), 1, "{id}");
        }
    }

    #[test]
    fn generation_is_deterministic() {
        for id in DatasetId::ALL {
            let a = id.generate(500, 99);
            let b = id.generate(500, 99);
            assert_eq!(a.values(), b.values(), "{id}");
            assert_eq!(a.predicate_column(0), b.predicate_column(0), "{id}");
        }
    }

    #[test]
    fn different_seeds_differ() {
        // Enough rows to reach the Intel daytime regime where randomness
        // actually enters the values (the night prefix is identically zero).
        let a = DatasetId::Intel.generate(5_000, 1);
        let b = DatasetId::Intel.generate(5_000, 2);
        assert_ne!(a.values(), b.values());
        let a = DatasetId::Instacart.generate(500, 1);
        let b = DatasetId::Instacart.generate(500, 2);
        assert_ne!(a.values(), b.values());
    }

    #[test]
    fn paper_rows_match_section_5() {
        assert_eq!(DatasetId::Intel.paper_rows(), 3_000_000);
        assert_eq!(DatasetId::Instacart.paper_rows(), 1_400_000);
        assert_eq!(DatasetId::NycTaxi.paper_rows(), 7_700_000);
    }
}
