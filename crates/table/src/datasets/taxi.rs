//! NYC-Taxi-style trip records.
//!
//! The real dataset is 7.7M January-2019 trips. The paper's 1-D experiments
//! predicate on `pickup_datetime` and aggregate `trip_distance`; the
//! multi-dimensional templates (§5.4) use the five predicate columns
//! `pickup_time, pickup_date, PULocationID, dropoff_date, dropoff_time`.
//!
//! The generator reproduces the regimes that drive the evaluation: demand
//! cycles by hour-of-day and weekday/weekend, lognormal trip distances whose
//! scale depends on hour (long airport runs at night, short hops at rush
//! hour), a skewed categorical location column, and dropoff columns
//! correlated with pickup via the trip duration.

use rand::Rng;

use pass_common::rng::{derive_seed, rng_from_seed};

use crate::dist::{Exponential, LogNormal, Zipf};
use crate::table::Table;

/// Predicate column names in template order (Q_i uses the first i).
pub const TAXI_PREDICATES: [&str; 6] = [
    "pickup_datetime",
    "pickup_time",
    "pickup_date",
    "PULocationID",
    "dropoff_date",
    "dropoff_time",
];

const SECONDS_PER_DAY: f64 = 86_400.0;
const DAYS: f64 = 31.0;
const N_LOCATIONS: u64 = 263; // TLC taxi zone count

/// Hourly demand weight (0..24), shaped like Manhattan taxi demand.
fn demand_weight(hour: f64) -> f64 {
    // Overnight trough, morning rush, evening peak.
    let morning = (-((hour - 8.5) * (hour - 8.5)) / 8.0).exp();
    let evening = (-((hour - 19.0) * (hour - 19.0)) / 12.0).exp();
    0.15 + 1.0 * morning + 1.4 * evening
}

/// Generate an NYC-Taxi-like table with all six predicate columns.
/// Dimension order matches [`TAXI_PREDICATES`]; the aggregate is
/// `trip_distance` in miles.
pub fn taxi(n_rows: usize, seed: u64) -> Table {
    let mut rng = rng_from_seed(derive_seed(seed, 10));
    let zone_zipf = Zipf::new(N_LOCATIONS, 1.0);
    let duration = Exponential::new(1.0 / 900.0); // mean 15-minute trips

    let mut pickup_dt = Vec::with_capacity(n_rows);
    let mut pickup_time = Vec::with_capacity(n_rows);
    let mut pickup_date = Vec::with_capacity(n_rows);
    let mut location = Vec::with_capacity(n_rows);
    let mut dropoff_date = Vec::with_capacity(n_rows);
    let mut dropoff_time = Vec::with_capacity(n_rows);
    let mut distance = Vec::with_capacity(n_rows);

    // Draw pickup instants by rejection against the demand curve so that the
    // timestamp density matches the diurnal cycle, then sort.
    let mut instants: Vec<f64> = Vec::with_capacity(n_rows);
    while instants.len() < n_rows {
        let t = rng.gen::<f64>() * DAYS * SECONDS_PER_DAY;
        let hour = (t % SECONDS_PER_DAY) / 3_600.0;
        let day = (t / SECONDS_PER_DAY).floor();
        let weekend = (day as u64 + 1) % 7 >= 5; // days 5,6,12,13,... weekend
        let mut w = demand_weight(hour);
        if weekend {
            // Weekends: flatter curve, busier nights.
            w = 0.6 * w + 0.5 * (-((hour - 0.5) * (hour - 0.5)) / 18.0).exp();
        }
        if rng.gen::<f64>() * 2.6 < w {
            instants.push(t);
        }
    }
    instants.sort_by(|a, b| a.partial_cmp(b).unwrap());

    for &t in &instants {
        let hour = (t % SECONDS_PER_DAY) / 3_600.0;
        let day = (t / SECONDS_PER_DAY).floor();

        // Distance: lognormal whose median rises overnight (airport runs).
        let overnight = (-((hour - 2.0) * (hour - 2.0)) / 10.0).exp();
        let mut dist = LogNormal::new(0.75 + 0.9 * overnight, 0.55);
        let d = dist.sample(&mut rng).min(60.0);

        let dur = duration.sample(&mut rng).min(3.0 * 3_600.0) + 60.0;
        let dropoff = t + dur;

        pickup_dt.push(t);
        pickup_time.push(t % SECONDS_PER_DAY);
        pickup_date.push(day + 1.0); // 1-based day of month
        location.push((zone_zipf.sample(&mut rng)) as f64);
        dropoff_date.push((dropoff / SECONDS_PER_DAY).floor() + 1.0);
        dropoff_time.push(dropoff % SECONDS_PER_DAY);
        distance.push(d);
    }

    let mut names: Vec<String> = vec!["trip_distance".into()];
    names.extend(TAXI_PREDICATES.iter().map(|s| s.to_string()));
    Table::new(
        distance,
        vec![
            pickup_dt,
            pickup_time,
            pickup_date,
            location,
            dropoff_date,
            dropoff_time,
        ],
        names,
    )
    .expect("generator produces consistent columns")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn six_predicate_dimensions() {
        let t = taxi(2_000, 1);
        assert_eq!(t.dims(), 6);
        assert_eq!(t.n_rows(), 2_000);
        assert_eq!(t.names()[1], "pickup_datetime");
        assert_eq!(t.names()[4], "PULocationID");
    }

    #[test]
    fn pickup_datetime_sorted_and_in_range() {
        let t = taxi(3_000, 2);
        let col = t.predicate_column(0);
        assert!(col.windows(2).all(|w| w[0] <= w[1]));
        assert!(col
            .iter()
            .all(|&v| (0.0..DAYS * SECONDS_PER_DAY).contains(&v)));
    }

    #[test]
    fn derived_columns_consistent() {
        let t = taxi(2_000, 3);
        for i in 0..t.n_rows() {
            let dt = t.predicate(0, i);
            assert_eq!(t.predicate(1, i), dt % SECONDS_PER_DAY, "pickup_time");
            assert_eq!(t.predicate(2, i), (dt / SECONDS_PER_DAY).floor() + 1.0);
            // Dropoff is after pickup and within ~3 hours.
            let d_date = t.predicate(4, i);
            assert!(d_date >= t.predicate(2, i));
        }
    }

    #[test]
    fn distances_positive_and_heavy_tailed() {
        let t = taxi(20_000, 4);
        assert!(t.values().iter().all(|&v| v > 0.0 && v <= 60.0));
        let mean = t.values().iter().sum::<f64>() / t.n_rows() as f64;
        let mut sorted = t.values().to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = sorted[sorted.len() / 2];
        assert!(mean > median, "lognormal is right-skewed");
    }

    #[test]
    fn locations_are_valid_zone_ids() {
        let t = taxi(5_000, 5);
        assert!(t
            .predicate_column(3)
            .iter()
            .all(|&z| (1.0..=N_LOCATIONS as f64).contains(&z)));
    }

    #[test]
    fn demand_peaks_at_rush_hours() {
        assert!(demand_weight(19.0) > demand_weight(4.0));
        assert!(demand_weight(8.5) > demand_weight(13.0));
    }

    #[test]
    fn deterministic() {
        let a = taxi(1_000, 42);
        let b = taxi(1_000, 42);
        assert_eq!(a.values(), b.values());
        for d in 0..6 {
            assert_eq!(a.predicate_column(d), b.predicate_column(d));
        }
    }
}
