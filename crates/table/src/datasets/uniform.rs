//! Featureless uniform dataset for unit tests: uniform predicate keys in
//! `[0, 1)`, uniform aggregate values in `[0, 100)`. No structure for PASS
//! to exploit — useful as a null case (PASS should roughly tie stratified
//! sampling here) and for property tests that need unremarkable data.

use rand::Rng;

use pass_common::rng::rng_from_seed;

use crate::table::Table;

/// Generate `n_rows` of uniform data, sorted by predicate key.
pub fn uniform(n_rows: usize, seed: u64) -> Table {
    let mut rng = rng_from_seed(seed);
    let mut predicate: Vec<f64> = (0..n_rows).map(|_| rng.gen::<f64>()).collect();
    predicate.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let values: Vec<f64> = (0..n_rows).map(|_| rng.gen::<f64>() * 100.0).collect();
    Table::new(values, vec![predicate], vec!["value".into(), "key".into()])
        .expect("generator produces consistent columns")
}

#[cfg(test)]
mod tests {
    use super::*;
    use pass_common::stats::mean;

    #[test]
    fn shape_and_ranges() {
        let t = uniform(5_000, 1);
        assert_eq!(t.n_rows(), 5_000);
        assert!(t
            .predicate_column(0)
            .iter()
            .all(|&p| (0.0..1.0).contains(&p)));
        assert!(t.values().iter().all(|&v| (0.0..100.0).contains(&v)));
        assert!((mean(t.values()) - 50.0).abs() < 2.0);
    }

    #[test]
    fn keys_sorted() {
        let t = uniform(1_000, 2);
        assert!(t.predicate_column(0).windows(2).all(|w| w[0] <= w[1]));
    }
}
