//! Intel-Wireless-style sensor stream.
//!
//! The real dataset is 3M rows of lab sensor readings; the paper predicates
//! on `time` and aggregates `light`. What matters for PASS is the *shape* of
//! light-vs-time: long nights where every reading is exactly 0 lux (zero
//! variance — this is where the 0-variance rule and hard bounds shine),
//! daytime plateaus with bursty, heavy-tailed spikes, and occasional sensor
//! dropout stretches. This generator reproduces those regimes with a
//! deterministic diurnal cycle.

use rand::Rng;

use pass_common::rng::rng_from_seed;

use crate::dist::{LogNormal, Normal};
use crate::table::Table;

/// Fraction of each day that is "night" (exact zeros).
const NIGHT_FRACTION: f64 = 0.45;
/// Rows per simulated day; chosen so even small tables get several cycles.
const ROWS_PER_DAY: usize = 2_880; // one reading every 30 "seconds"

/// Generate an Intel-Wireless-like table: predicate = timestamp (seconds),
/// aggregate = light (lux, non-negative).
pub fn intel(n_rows: usize, seed: u64) -> Table {
    let mut rng = rng_from_seed(seed);
    let mut day_noise = Normal::new(0.0, 30.0);
    let mut spike = LogNormal::new(5.5, 0.6);

    let mut predicate = Vec::with_capacity(n_rows);
    let mut values = Vec::with_capacity(n_rows);

    // Dropout stretches: roughly one per two days, ~2% of rows total.
    let mut dropout_left = 0usize;

    for i in 0..n_rows {
        let t = i as f64 * 30.0; // 30-second cadence timestamps
        predicate.push(t);

        if dropout_left > 0 {
            dropout_left -= 1;
            values.push(0.0);
            continue;
        }
        if rng.gen::<f64>() < 1.0 / (2.0 * ROWS_PER_DAY as f64) {
            dropout_left = rng.gen_range(20..120);
            values.push(0.0);
            continue;
        }

        let phase = (i % ROWS_PER_DAY) as f64 / ROWS_PER_DAY as f64;
        if phase < NIGHT_FRACTION {
            // Night: the sensor reads exactly zero lux.
            values.push(0.0);
        } else {
            // Day: sinusoidal plateau + noise + occasional direct-sun spike.
            let day_phase = (phase - NIGHT_FRACTION) / (1.0 - NIGHT_FRACTION);
            let base = 400.0 * (std::f64::consts::PI * day_phase).sin().max(0.0);
            let mut v = base + day_noise.sample(&mut rng);
            if rng.gen::<f64>() < 0.01 {
                v += spike.sample(&mut rng);
            }
            values.push(v.max(0.0));
        }
    }

    Table::new(values, vec![predicate], vec!["light".into(), "time".into()])
        .expect("generator produces consistent columns")
}

#[cfg(test)]
mod tests {
    use super::*;
    use pass_common::stats::population_variance;

    #[test]
    fn shape_and_determinism() {
        let t = intel(ROWS_PER_DAY * 2, 3);
        assert_eq!(t.n_rows(), ROWS_PER_DAY * 2);
        assert_eq!(t.dims(), 1);
        let t2 = intel(ROWS_PER_DAY * 2, 3);
        assert_eq!(t.values(), t2.values());
    }

    #[test]
    fn timestamps_strictly_increasing() {
        let t = intel(5000, 4);
        let p = t.predicate_column(0);
        assert!(p.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn values_non_negative() {
        let t = intel(20_000, 5);
        assert!(t.values().iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn night_is_zero_variance_day_is_not() {
        let t = intel(ROWS_PER_DAY, 6);
        let vals = t.values();
        // First 40% of the day (inside the 45% night window): all zeros.
        let night = &vals[..(ROWS_PER_DAY as f64 * 0.40) as usize];
        assert!(
            night.iter().filter(|&&v| v == 0.0).count() as f64 / night.len() as f64 > 0.95,
            "night should be almost entirely zero"
        );
        // Middle of the day window: substantial variance.
        let day_start = (ROWS_PER_DAY as f64 * 0.60) as usize;
        let day = &vals[day_start..day_start + 400];
        assert!(population_variance(day) > 100.0);
    }

    #[test]
    fn heavy_tail_spikes_exist() {
        let t = intel(ROWS_PER_DAY * 4, 7);
        let max = t.values().iter().cloned().fold(0.0, f64::max);
        let mean: f64 = t.values().iter().sum::<f64>() / t.n_rows() as f64;
        assert!(max > 4.0 * mean, "max {max} vs mean {mean}");
    }
}
