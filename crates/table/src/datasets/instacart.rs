//! Instacart-style order table.
//!
//! The real `order_products` table has 1.4M rows; the paper predicates on
//! `product_id` and aggregates the binary `reordered` flag. The regime PASS
//! cares about: a heavily skewed categorical predicate (popular products
//! dominate) whose per-product reorder probability varies widely, so the
//! aggregate's local mean drifts along the (dictionary-ordered) predicate
//! axis and per-stratum Bernoulli variance p(1-p) differs across strata.

use rand::Rng;

use pass_common::rng::{derive_seed, rng_from_seed};

use crate::dist::Zipf;
use crate::table::Table;

/// Products per million rows (the real catalog has ~50k products over
/// 1.4M order rows; we keep the same order of magnitude, scaled).
const PRODUCTS_PER_MILLION: usize = 35_000;

/// Generate an Instacart-like table: predicate = product_id (dense code),
/// aggregate = reordered ∈ {0, 1}.
pub fn instacart(n_rows: usize, seed: u64) -> Table {
    let n_products = ((n_rows as f64 / 1.0e6) * PRODUCTS_PER_MILLION as f64)
        .round()
        .max(16.0) as usize;

    // Per-product reorder probability: smooth drift along the id axis plus
    // deterministic per-product jitter — adjacent ids are correlated (real
    // catalogs group similar items) but not identical.
    let mut prob_rng = rng_from_seed(derive_seed(seed, 1));
    let reorder_prob: Vec<f64> = (0..n_products)
        .map(|p| {
            let drift = 0.35 + 0.3 * (p as f64 / n_products as f64 * 7.0).sin();
            (drift + prob_rng.gen_range(-0.15..0.15)).clamp(0.02, 0.95)
        })
        .collect();

    let zipf = Zipf::new(n_products as u64, 1.05);
    let mut rng = rng_from_seed(derive_seed(seed, 2));

    let mut predicate = Vec::with_capacity(n_rows);
    let mut values = Vec::with_capacity(n_rows);
    for _ in 0..n_rows {
        // Zipf rank 1..=P, mapped to a product id so that popularity is
        // scattered across the id space (rank != id, like real catalogs).
        let rank = zipf.sample(&mut rng) - 1;
        let product = (rank.wrapping_mul(2_654_435_761) % n_products as u64) as usize;
        predicate.push(product as f64);
        let reordered = rng.gen::<f64>() < reorder_prob[product];
        values.push(if reordered { 1.0 } else { 0.0 });
    }

    Table::new(
        values,
        vec![predicate],
        vec!["reordered".into(), "product_id".into()],
    )
    .expect("generator produces consistent columns")
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn values_are_binary() {
        let t = instacart(10_000, 1);
        assert!(t.values().iter().all(|&v| v == 0.0 || v == 1.0));
    }

    #[test]
    fn popularity_is_skewed() {
        let t = instacart(50_000, 2);
        let mut counts: HashMap<u64, u64> = HashMap::new();
        for i in 0..t.n_rows() {
            *counts.entry(t.predicate(0, i) as u64).or_default() += 1;
        }
        let mut freqs: Vec<u64> = counts.values().copied().collect();
        freqs.sort_unstable_by(|a, b| b.cmp(a));
        // Top product should dwarf the median product.
        let median = freqs[freqs.len() / 2];
        assert!(
            freqs[0] > 10 * median.max(1),
            "top {} vs median {median}",
            freqs[0]
        );
    }

    #[test]
    fn overall_reorder_rate_plausible() {
        let t = instacart(50_000, 3);
        let rate = t.values().iter().sum::<f64>() / t.n_rows() as f64;
        assert!((0.15..0.75).contains(&rate), "rate {rate}");
    }

    #[test]
    fn per_product_rates_vary() {
        let t = instacart(200_000, 4);
        let mut sums: HashMap<u64, (f64, u64)> = HashMap::new();
        for i in 0..t.n_rows() {
            let e = sums.entry(t.predicate(0, i) as u64).or_default();
            e.0 += t.value(i);
            e.1 += 1;
        }
        let rates: Vec<f64> = sums
            .values()
            .filter(|(_, n)| *n >= 100)
            .map(|(s, n)| s / *n as f64)
            .collect();
        assert!(rates.len() > 10, "need enough popular products");
        let lo = rates.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = rates.iter().cloned().fold(0.0, f64::max);
        assert!(hi - lo > 0.2, "rates should spread: [{lo}, {hi}]");
    }

    #[test]
    fn deterministic() {
        let a = instacart(5_000, 9);
        let b = instacart(5_000, 9);
        assert_eq!(a.values(), b.values());
        assert_eq!(a.predicate_column(0), b.predicate_column(0));
    }
}
