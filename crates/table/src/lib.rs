//! In-memory columnar table substrate for the PASS workspace.
//!
//! The paper's problem setup (Section 2) is a collection of tuples
//! `(c_i, a_i)` with predicate attributes `c` and a numeric aggregation
//! value `a`. [`Table`] stores exactly that in columnar form: one
//! aggregation column and `d` predicate columns.
//!
//! Everything the optimizers need sits on top:
//!
//! * [`SortedTable`] — a 1-D view sorted by one predicate column, giving
//!   O(log n) interval-to-index-range resolution and O(1) range aggregates
//!   via prefix sums (the backbone of every 1-D partitioning algorithm);
//! * [`datasets`] — synthetic generators standing in for the paper's three
//!   real datasets plus the Section 5.3 adversarial dataset (substitutions
//!   documented in `DESIGN.md`);
//! * [`csv`] — a dependency-free CSV loader so the real CSVs can be dropped
//!   in when available;
//! * [`dist`] — the Normal / LogNormal / Zipf / Exponential samplers the
//!   generators draw from (implemented here to keep the dependency set to
//!   the plain `rand` crate).

pub mod column;
pub mod csv;
pub mod datasets;
pub mod dist;
pub mod shard;
pub mod snapshot;
pub mod sorted;
pub mod table;

pub use column::Dictionary;
pub use sorted::SortedTable;
pub use table::Table;
