//! Random-variate samplers used by the dataset generators.
//!
//! Implemented on top of plain `rand` (no `rand_distr`) to keep the
//! dependency footprint at the workspace's allowed set:
//!
//! * [`Normal`] — Box–Muller transform (both variates used);
//! * [`LogNormal`] — exp of a Normal;
//! * [`Zipf`] — bounded Zipf(s) via the rejection method of Devroye
//!   (non-uniform random variate generation, ch. X.6), O(1) expected time;
//! * [`Exponential`] — inverse-CDF.

use rand::Rng;

/// Normal(μ, σ) sampler via Box–Muller, caching the second variate.
#[derive(Debug, Clone)]
pub struct Normal {
    mean: f64,
    std_dev: f64,
    cached: Option<f64>,
}

impl Normal {
    /// # Panics
    /// Panics on a negative or non-finite standard deviation.
    pub fn new(mean: f64, std_dev: f64) -> Self {
        assert!(
            std_dev >= 0.0 && std_dev.is_finite() && mean.is_finite(),
            "invalid Normal({mean}, {std_dev})"
        );
        Self {
            mean,
            std_dev,
            cached: None,
        }
    }

    /// Draw one variate.
    pub fn sample<R: Rng + ?Sized>(&mut self, rng: &mut R) -> f64 {
        if let Some(z) = self.cached.take() {
            return self.mean + self.std_dev * z;
        }
        // Box–Muller: u1 in (0,1] to avoid ln(0).
        let u1: f64 = 1.0 - rng.gen::<f64>();
        let u2: f64 = rng.gen::<f64>();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.cached = Some(r * theta.sin());
        self.mean + self.std_dev * r * theta.cos()
    }
}

/// LogNormal(μ, σ) of the underlying Normal.
#[derive(Debug, Clone)]
pub struct LogNormal {
    normal: Normal,
}

impl LogNormal {
    pub fn new(mu: f64, sigma: f64) -> Self {
        Self {
            normal: Normal::new(mu, sigma),
        }
    }

    pub fn sample<R: Rng + ?Sized>(&mut self, rng: &mut R) -> f64 {
        self.normal.sample(rng).exp()
    }
}

/// Bounded Zipf distribution over `{1, ..., n}` with exponent `s > 0`:
/// P(k) ∝ k^-s. Rejection sampler with O(1) expected draws.
#[derive(Debug, Clone)]
pub struct Zipf {
    n: u64,
    s: f64,
    /// Precomputed `H(x) = (x^(1-s) - 1) / (1-s)` integral pieces.
    h_x1: f64,
    h_n: f64,
    one_minus_s: f64,
}

impl Zipf {
    /// # Panics
    /// Panics when `n == 0` or `s <= 0` or `s == 1` is not handled —
    /// `s = 1` is supported via the continuous-limit branch.
    pub fn new(n: u64, s: f64) -> Self {
        assert!(n >= 1, "Zipf needs n >= 1");
        assert!(s > 0.0 && s.is_finite(), "Zipf exponent must be positive");
        let one_minus_s = 1.0 - s;
        let h = |x: f64| -> f64 {
            if one_minus_s.abs() < 1e-12 {
                x.ln()
            } else {
                (x.powf(one_minus_s) - 1.0) / one_minus_s
            }
        };
        Self {
            n,
            s,
            h_x1: h(1.5) - 1.0,
            h_n: h(n as f64 + 0.5),
            one_minus_s,
        }
    }

    fn h(&self, x: f64) -> f64 {
        if self.one_minus_s.abs() < 1e-12 {
            x.ln()
        } else {
            (x.powf(self.one_minus_s) - 1.0) / self.one_minus_s
        }
    }

    fn h_inv(&self, x: f64) -> f64 {
        if self.one_minus_s.abs() < 1e-12 {
            x.exp()
        } else {
            (1.0 + self.one_minus_s * x).powf(1.0 / self.one_minus_s)
        }
    }

    /// Draw one rank in `1..=n`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        if self.n == 1 {
            return 1;
        }
        loop {
            let u: f64 = rng.gen();
            let x = self.h_inv(self.h_x1 + u * (self.h_n - self.h_x1));
            let k = x.round().clamp(1.0, self.n as f64);
            // Accept with probability proportional to the true mass.
            let ratio = (self.h(k + 0.5) - self.h(x)).exp();
            if ratio >= rng.gen::<f64>() * k.powf(-self.s) / x.powf(-self.s) {
                return k as u64;
            }
        }
    }
}

/// Exponential(rate) via inverse CDF.
#[derive(Debug, Clone, Copy)]
pub struct Exponential {
    rate: f64,
}

impl Exponential {
    /// # Panics
    /// Panics on a non-positive rate.
    pub fn new(rate: f64) -> Self {
        assert!(rate > 0.0 && rate.is_finite(), "invalid Exponential rate");
        Self { rate }
    }

    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = 1.0 - rng.gen::<f64>();
        -u.ln() / self.rate
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pass_common::rng::rng_from_seed;
    use pass_common::stats::{mean, sample_variance};

    #[test]
    fn normal_moments() {
        let mut rng = rng_from_seed(11);
        let mut d = Normal::new(5.0, 2.0);
        let xs: Vec<f64> = (0..60_000).map(|_| d.sample(&mut rng)).collect();
        assert!((mean(&xs) - 5.0).abs() < 0.05, "mean {}", mean(&xs));
        let var = sample_variance(&xs);
        assert!((var - 4.0).abs() < 0.15, "var {var}");
    }

    #[test]
    fn normal_zero_stddev_is_constant() {
        let mut rng = rng_from_seed(1);
        let mut d = Normal::new(3.0, 0.0);
        for _ in 0..100 {
            assert_eq!(d.sample(&mut rng), 3.0);
        }
    }

    #[test]
    fn lognormal_is_positive_and_skewed() {
        let mut rng = rng_from_seed(12);
        let mut d = LogNormal::new(0.0, 1.0);
        let xs: Vec<f64> = (0..50_000).map(|_| d.sample(&mut rng)).collect();
        assert!(xs.iter().all(|&x| x > 0.0));
        // E[lognormal(0,1)] = exp(0.5) ≈ 1.6487.
        assert!((mean(&xs) - 1.6487).abs() < 0.07, "mean {}", mean(&xs));
        // Median should be ~1 (well below mean: right-skew).
        let mut s = xs.clone();
        s.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = s[s.len() / 2];
        assert!((median - 1.0).abs() < 0.05, "median {median}");
    }

    #[test]
    fn zipf_rank_frequencies_decay() {
        let mut rng = rng_from_seed(13);
        let d = Zipf::new(100, 1.1);
        let mut counts = vec![0u64; 101];
        for _ in 0..200_000 {
            let k = d.sample(&mut rng);
            assert!((1..=100).contains(&k));
            counts[k as usize] += 1;
        }
        // Rank 1 clearly beats rank 2 beats rank 10 beats rank 100.
        assert!(counts[1] > counts[2]);
        assert!(counts[2] > counts[10]);
        assert!(counts[10] > counts[100]);
        // Ratio of rank1/rank2 ≈ 2^1.1 ≈ 2.14; allow generous tolerance.
        let ratio = counts[1] as f64 / counts[2] as f64;
        assert!((1.7..2.7).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn zipf_degenerate_n1() {
        let mut rng = rng_from_seed(14);
        let d = Zipf::new(1, 2.0);
        for _ in 0..10 {
            assert_eq!(d.sample(&mut rng), 1);
        }
    }

    #[test]
    fn zipf_s_equal_one_supported() {
        let mut rng = rng_from_seed(15);
        let d = Zipf::new(50, 1.0);
        let mut counts = vec![0u64; 51];
        for _ in 0..50_000 {
            counts[d.sample(&mut rng) as usize] += 1;
        }
        assert!(counts[1] > counts[5]);
    }

    #[test]
    fn exponential_mean() {
        let mut rng = rng_from_seed(16);
        let d = Exponential::new(0.5);
        let xs: Vec<f64> = (0..60_000).map(|_| d.sample(&mut rng)).collect();
        assert!(xs.iter().all(|&x| x >= 0.0));
        assert!((mean(&xs) - 2.0).abs() < 0.05, "mean {}", mean(&xs));
    }
}
