//! The core columnar table type.

use pass_common::{AggKind, Aggregates, PassError, Query, Rect, Result};

/// A columnar dataset: one numeric aggregation column `A` and `d` predicate
/// columns `C_1..C_d` (Section 3.1's usage model).
#[derive(Debug, Clone)]
pub struct Table {
    /// Aggregation column values, one per row.
    values: Vec<f64>,
    /// Predicate columns, column-major: `predicates[dim][row]`.
    predicates: Vec<Vec<f64>>,
    /// Column names: `names[0]` is the aggregation column, `names[1..]` the
    /// predicate columns in dimension order.
    names: Vec<String>,
}

impl Table {
    /// Build a table from the aggregation column and predicate columns.
    ///
    /// All columns must have identical length and there must be at least one
    /// predicate column.
    pub fn new(values: Vec<f64>, predicates: Vec<Vec<f64>>, names: Vec<String>) -> Result<Self> {
        if predicates.is_empty() {
            return Err(PassError::InvalidParameter(
                "predicates",
                "need at least one predicate column".into(),
            ));
        }
        if names.len() != predicates.len() + 1 {
            return Err(PassError::InvalidParameter(
                "names",
                format!(
                    "expected {} names (agg + predicates), got {}",
                    predicates.len() + 1,
                    names.len()
                ),
            ));
        }
        for (i, col) in predicates.iter().enumerate() {
            if col.len() != values.len() {
                return Err(PassError::InvalidParameter(
                    "predicates",
                    format!(
                        "column {i} has {} rows but value column has {}",
                        col.len(),
                        values.len()
                    ),
                ));
            }
        }
        Ok(Self {
            values,
            predicates,
            names,
        })
    }

    /// 1-D convenience constructor with default column names.
    pub fn one_dim(predicate: Vec<f64>, values: Vec<f64>) -> Result<Self> {
        Self::new(
            values,
            vec![predicate],
            vec!["value".into(), "predicate".into()],
        )
    }

    /// Number of rows.
    #[inline]
    pub fn n_rows(&self) -> usize {
        self.values.len()
    }

    /// Number of predicate dimensions.
    #[inline]
    pub fn dims(&self) -> usize {
        self.predicates.len()
    }

    /// Aggregation value of row `i`.
    #[inline]
    pub fn value(&self, i: usize) -> f64 {
        self.values[i]
    }

    /// All aggregation values.
    #[inline]
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Predicate column `dim`.
    #[inline]
    pub fn predicate_column(&self, dim: usize) -> &[f64] {
        &self.predicates[dim]
    }

    /// Predicate coordinate of row `i` in dimension `dim`.
    #[inline]
    pub fn predicate(&self, dim: usize, i: usize) -> f64 {
        self.predicates[dim][i]
    }

    /// Column names (aggregation column first).
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Does row `i` satisfy the rectangular predicate?
    #[inline]
    pub fn matches(&self, rect: &Rect, i: usize) -> bool {
        debug_assert_eq!(rect.dims(), self.dims());
        (0..self.dims()).all(|d| {
            let p = self.predicates[d][i];
            rect.lo(d) <= p && p <= rect.hi(d)
        })
    }

    /// Exact aggregates of the rows matching `rect` (full scan — the ground
    /// truth oracle for tests and metrics).
    pub fn scan_aggregates(&self, rect: &Rect) -> Aggregates {
        let mut agg = Aggregates::empty();
        for i in 0..self.n_rows() {
            if self.matches(rect, i) {
                agg.insert(self.values[i]);
            }
        }
        agg
    }

    /// Exact answer to a query by full scan. AVG/MIN/MAX over an empty
    /// selection return `None`.
    pub fn ground_truth(&self, query: &Query) -> Option<f64> {
        if query.dims() != self.dims() {
            return None;
        }
        self.scan_aggregates(&query.rect).answer(query.agg)
    }

    /// `(min, max)` of one predicate column; `None` on an empty table.
    pub fn predicate_range(&self, dim: usize) -> Option<(f64, f64)> {
        let col = &self.predicates[dim];
        if col.is_empty() {
            return None;
        }
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for &v in col {
            if v < lo {
                lo = v;
            }
            if v > hi {
                hi = v;
            }
        }
        Some((lo, hi))
    }

    /// The bounding rectangle of all predicate columns (the root ψ in data
    /// coordinates). `None` on an empty table.
    pub fn bounding_rect(&self) -> Option<Rect> {
        let bounds: Option<Vec<(f64, f64)>> =
            (0..self.dims()).map(|d| self.predicate_range(d)).collect();
        bounds.map(|b| Rect::new(&b))
    }

    /// A new table keeping only the selected predicate dimensions (used by
    /// the multi-dimensional query templates Q1..Q5, Section 5.4).
    pub fn project(&self, dims: &[usize]) -> Result<Self> {
        if dims.is_empty() {
            return Err(PassError::InvalidParameter(
                "dims",
                "projection needs at least one dimension".into(),
            ));
        }
        let mut predicates = Vec::with_capacity(dims.len());
        let mut names = vec![self.names[0].clone()];
        for &d in dims {
            if d >= self.dims() {
                return Err(PassError::DimensionMismatch {
                    expected: self.dims(),
                    got: d + 1,
                });
            }
            predicates.push(self.predicates[d].clone());
            names.push(self.names[d + 1].clone());
        }
        Self::new(self.values.clone(), predicates, names)
    }

    /// Predicate coordinates of row `i` as a point (allocates; use
    /// [`Table::predicate`] in hot loops).
    pub fn point(&self, i: usize) -> Vec<f64> {
        (0..self.dims()).map(|d| self.predicates[d][i]).collect()
    }

    /// Materialize the selected rows as a new table, visiting `indices`
    /// once and pushing into every column buffer as it goes (instead of
    /// one indexed map per column). The result reuses this table's
    /// schema, so no shape re-validation is needed.
    pub fn gather(&self, indices: &[usize]) -> Self {
        let mut values = Vec::with_capacity(indices.len());
        let mut predicates: Vec<Vec<f64>> = (0..self.dims())
            .map(|_| Vec::with_capacity(indices.len()))
            .collect();
        for &i in indices {
            values.push(self.values[i]);
            for (col, src) in predicates.iter_mut().zip(&self.predicates) {
                col.push(src[i]);
            }
        }
        Self {
            values,
            predicates,
            names: self.names.clone(),
        }
    }

    /// Append one row (dynamic-update path). `preds` must supply one
    /// coordinate per predicate dimension.
    pub fn push_row(&mut self, value: f64, preds: &[f64]) {
        assert_eq!(preds.len(), self.dims(), "predicate arity mismatch");
        self.values.push(value);
        for (col, &p) in self.predicates.iter_mut().zip(preds) {
            col.push(p);
        }
    }

    /// Remove row `i` by swapping in the last row (O(1), order not
    /// preserved). Returns the removed `(value, preds)`.
    pub fn swap_remove_row(&mut self, i: usize) -> (f64, Vec<f64>) {
        let value = self.values.swap_remove(i);
        let preds = self
            .predicates
            .iter_mut()
            .map(|col| col.swap_remove(i))
            .collect();
        (value, preds)
    }

    /// Overwrite row `i` in place (reservoir replacement path).
    pub fn replace_row(&mut self, i: usize, value: f64, preds: &[f64]) {
        assert_eq!(preds.len(), self.dims(), "predicate arity mismatch");
        self.values[i] = value;
        for (col, &p) in self.predicates.iter_mut().zip(preds) {
            col[i] = p;
        }
    }

    /// Unique hash index over predicate column `dim`: canonicalized key
    /// bit pattern → row index (the FK-join build block — the dimension
    /// side of a `pass_common::JoinSpec` indexes its key column once and
    /// every sampled fact row probes it in O(1)).
    ///
    /// Keys hash by bit pattern with `-0.0` canonicalized to `0.0`, so
    /// the two equal-comparing zeros land on one entry (the same
    /// canonicalization `pass_common::ShardPlan::key_shard` applies).
    /// NaN keys (which equal nothing, themselves included) and duplicate
    /// keys are rejected with typed errors — a multi-valued index would
    /// silently pick an arbitrary match.
    pub fn key_index(&self, dim: usize) -> Result<std::collections::HashMap<u64, usize>> {
        if dim >= self.dims() {
            return Err(PassError::DimensionMismatch {
                expected: self.dims(),
                got: dim + 1,
            });
        }
        let col = &self.predicates[dim];
        let mut index = std::collections::HashMap::with_capacity(col.len());
        for (row, &key) in col.iter().enumerate() {
            if key.is_nan() {
                return Err(PassError::InvalidParameter(
                    "key",
                    format!("row {row} has a NaN key; NaN joins nothing"),
                ));
            }
            let canonical = if key == 0.0 { 0.0f64 } else { key };
            if index.insert(canonical.to_bits(), row).is_some() {
                return Err(PassError::InvalidParameter(
                    "key",
                    format!("duplicate key {key} at row {row}"),
                ));
            }
        }
        Ok(index)
    }

    /// Exact aggregate answer for the common case `agg(A) WHERE rect`,
    /// returning 0 for SUM/COUNT over empty selections (matching SQL
    /// semantics for COUNT and the estimators' convention for SUM).
    pub fn answer_or_zero(&self, query: &Query) -> f64 {
        match self.ground_truth(query) {
            Some(v) => v,
            None => match query.agg {
                AggKind::Sum | AggKind::Count => 0.0,
                _ => f64::NAN,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pass_common::AggKind;

    fn small() -> Table {
        // predicate: 0..10, value = predicate * 2
        let pred: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let vals: Vec<f64> = pred.iter().map(|p| p * 2.0).collect();
        Table::one_dim(pred, vals).unwrap()
    }

    #[test]
    fn construction_validates_shapes() {
        assert!(Table::new(vec![1.0], vec![], vec!["v".into()]).is_err());
        assert!(Table::new(
            vec![1.0, 2.0],
            vec![vec![1.0]],
            vec!["v".into(), "p".into()]
        )
        .is_err());
        assert!(Table::new(vec![1.0], vec![vec![1.0]], vec!["v".into()]).is_err());
    }

    #[test]
    fn scan_matches_manual_computation() {
        let t = small();
        let agg = t.scan_aggregates(&Rect::interval(2.0, 5.0));
        // rows 2,3,4,5 -> values 4,6,8,10
        assert_eq!(agg.count, 4);
        assert_eq!(agg.sum, 28.0);
        assert_eq!(agg.min, 4.0);
        assert_eq!(agg.max, 10.0);
    }

    #[test]
    fn ground_truth_all_aggregates() {
        let t = small();
        let r = |agg| Query::new(agg, Rect::interval(0.0, 9.0));
        assert_eq!(t.ground_truth(&r(AggKind::Sum)), Some(90.0));
        assert_eq!(t.ground_truth(&r(AggKind::Count)), Some(10.0));
        assert_eq!(t.ground_truth(&r(AggKind::Avg)), Some(9.0));
        assert_eq!(t.ground_truth(&r(AggKind::Min)), Some(0.0));
        assert_eq!(t.ground_truth(&r(AggKind::Max)), Some(18.0));
    }

    #[test]
    fn empty_selection_semantics() {
        let t = small();
        let q = Query::interval(AggKind::Sum, 100.0, 200.0);
        assert_eq!(t.ground_truth(&q), Some(0.0));
        assert_eq!(t.answer_or_zero(&q), 0.0);
        let q = Query::interval(AggKind::Avg, 100.0, 200.0);
        assert_eq!(t.ground_truth(&q), None);
        assert!(t.answer_or_zero(&q).is_nan());
    }

    #[test]
    fn dimension_mismatch_is_none() {
        let t = small();
        let q = Query::new(AggKind::Sum, Rect::new(&[(0.0, 1.0), (0.0, 1.0)]));
        assert_eq!(t.ground_truth(&q), None);
    }

    #[test]
    fn predicate_range_and_bounding_rect() {
        let t = small();
        assert_eq!(t.predicate_range(0), Some((0.0, 9.0)));
        let r = t.bounding_rect().unwrap();
        assert_eq!(r.lo(0), 0.0);
        assert_eq!(r.hi(0), 9.0);
    }

    #[test]
    fn multi_dim_matching() {
        let t = Table::new(
            vec![1.0, 2.0, 3.0],
            vec![vec![0.0, 1.0, 2.0], vec![10.0, 20.0, 30.0]],
            vec!["v".into(), "x".into(), "y".into()],
        )
        .unwrap();
        let rect = Rect::new(&[(0.5, 2.5), (15.0, 35.0)]);
        assert!(!t.matches(&rect, 0));
        assert!(t.matches(&rect, 1));
        assert!(t.matches(&rect, 2));
        assert_eq!(t.scan_aggregates(&rect).sum, 5.0);
    }

    #[test]
    fn projection_selects_dimensions() {
        let t = Table::new(
            vec![1.0, 2.0],
            vec![vec![0.0, 1.0], vec![10.0, 20.0], vec![5.0, 6.0]],
            vec!["v".into(), "a".into(), "b".into(), "c".into()],
        )
        .unwrap();
        let p = t.project(&[2, 0]).unwrap();
        assert_eq!(p.dims(), 2);
        assert_eq!(p.predicate(0, 1), 6.0);
        assert_eq!(p.predicate(1, 1), 1.0);
        assert_eq!(p.names()[1], "c");
        assert!(t.project(&[]).is_err());
        assert!(t.project(&[7]).is_err());
    }

    #[test]
    fn key_index_maps_canonical_bits_to_rows() {
        let t = Table::one_dim(vec![3.0, -0.0, 7.5], vec![1.0, 2.0, 3.0]).unwrap();
        let idx = t.key_index(0).unwrap();
        assert_eq!(idx.len(), 3);
        assert_eq!(idx[&3.0f64.to_bits()], 0);
        assert_eq!(idx[&7.5f64.to_bits()], 2);
        // -0.0 is stored (and must be probed) under +0.0's bits.
        assert_eq!(idx[&0.0f64.to_bits()], 1);
        assert!(!idx.contains_key(&(-0.0f64).to_bits()));
        // Out-of-range dim, NaN keys, and duplicates are typed errors.
        assert!(matches!(
            t.key_index(1),
            Err(PassError::DimensionMismatch { .. })
        ));
        let nan = Table::one_dim(vec![1.0, f64::NAN], vec![0.0, 0.0]).unwrap();
        assert!(matches!(
            nan.key_index(0),
            Err(PassError::InvalidParameter("key", _))
        ));
        let dup = Table::one_dim(vec![2.0, 2.0], vec![0.0, 0.0]).unwrap();
        assert!(matches!(
            dup.key_index(0),
            Err(PassError::InvalidParameter("key", _))
        ));
        let zeros = Table::one_dim(vec![0.0, -0.0], vec![0.0, 0.0]).unwrap();
        assert!(zeros.key_index(0).is_err());
    }

    #[test]
    fn point_extraction() {
        let t = Table::new(
            vec![1.0],
            vec![vec![2.0], vec![3.0]],
            vec!["v".into(), "x".into(), "y".into()],
        )
        .unwrap();
        assert_eq!(t.point(0), vec![2.0, 3.0]);
    }
}
