//! Snapshot codec for [`Table`] (see `pass_common::snapshot`).
//!
//! A table is encoded column-for-column with f64 bit patterns, so a decoded
//! table is bit-identical to the saved one. Decoding re-enters
//! [`Table::new`], so every schema invariant (column arity, equal lengths)
//! is re-validated on the way in; a CRC-valid but drifted payload surfaces
//! as `SnapshotError::SpecMismatch`, never as a malformed table.

use pass_common::snapshot::{put_f64_seq, put_str, put_usize, Cursor, SnapshotError};
use pass_common::Result;

use crate::table::Table;

/// Append `table` to a section payload.
pub fn encode_table(out: &mut Vec<u8>, table: &Table) {
    put_usize(out, table.dims());
    put_usize(out, table.names().len());
    for name in table.names() {
        put_str(out, name);
    }
    put_f64_seq(out, table.values());
    for d in 0..table.dims() {
        put_f64_seq(out, table.predicate_column(d));
    }
}

/// Decode one table written by [`encode_table`].
pub fn decode_table(c: &mut Cursor<'_>) -> Result<Table> {
    let dims = c.len(8, "table dims")?;
    let n_names = c.len(1, "table names")?;
    let mut names = Vec::with_capacity(n_names);
    for _ in 0..n_names {
        names.push(c.str("table column name")?);
    }
    let values = c.f64_seq("table values")?;
    let mut predicates = Vec::with_capacity(dims);
    for _ in 0..dims {
        predicates.push(c.f64_seq("table predicate column")?);
    }
    Table::new(values, predicates, names)
        .map_err(|e| SnapshotError::SpecMismatch(format!("table state: {e}")).into())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_round_trip_bit_exactly() {
        let t = crate::datasets::taxi(500, 3);
        let mut payload = Vec::new();
        encode_table(&mut payload, &t);
        let mut c = Cursor::new(&payload);
        let back = decode_table(&mut c).unwrap();
        c.done("table").unwrap();
        assert_eq!(back.dims(), t.dims());
        assert_eq!(back.names(), t.names());
        let bits = |xs: &[f64]| xs.iter().map(|v| v.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(back.values()), bits(t.values()));
        for d in 0..t.dims() {
            assert_eq!(bits(back.predicate_column(d)), bits(t.predicate_column(d)));
        }
    }

    #[test]
    fn special_floats_survive() {
        let t = Table::one_dim(
            vec![0.0, -0.0, f64::INFINITY],
            vec![f64::NAN, 1.0, f64::from_bits(0x7FF8_0000_0000_1234)],
        )
        .unwrap();
        let mut payload = Vec::new();
        encode_table(&mut payload, &t);
        let back = decode_table(&mut Cursor::new(&payload)).unwrap();
        assert_eq!(back.values()[2].to_bits(), 0x7FF8_0000_0000_1234);
        assert_eq!(back.predicate_column(0)[1].to_bits(), (-0.0f64).to_bits());
        assert!(back.values()[0].is_nan());
    }

    #[test]
    fn drifted_payload_is_a_spec_mismatch() {
        // A payload claiming two names but carrying one predicate column of
        // the wrong length fails Table::new's validation.
        let mut payload = Vec::new();
        put_usize(&mut payload, 1);
        put_usize(&mut payload, 2);
        put_str(&mut payload, "value");
        put_str(&mut payload, "predicate");
        put_f64_seq(&mut payload, &[1.0, 2.0]);
        put_f64_seq(&mut payload, &[1.0]); // length mismatch
        assert!(matches!(
            decode_table(&mut Cursor::new(&payload)).err(),
            Some(pass_common::PassError::Snapshot(
                SnapshotError::SpecMismatch(_)
            ))
        ));
    }
}
