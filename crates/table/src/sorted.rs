//! One-dimensional sorted view of a table.
//!
//! Every 1-D algorithm in the paper (§4.3's dynamic programs, equal-depth
//! partitioning, prefix-sum variance oracles, fast ground truth) operates on
//! tuples sorted by the predicate value. [`SortedTable`] materializes that
//! order once: ascending predicate keys, aligned aggregation values, and
//! prefix sums over the values in key order.

use pass_common::{AggKind, Aggregates, PrefixSums, Query};

use crate::table::Table;

/// A table sorted by one predicate column, with prefix sums for O(1) range
/// aggregates and O(log n) interval resolution.
#[derive(Debug, Clone)]
pub struct SortedTable {
    /// Ascending predicate keys.
    keys: Vec<f64>,
    /// Aggregation values aligned with `keys`.
    values: Vec<f64>,
    /// Row index in the original table for each sorted position.
    original_index: Vec<u32>,
    /// Prefix Σt / Σt² over `values`.
    prefix: PrefixSums,
}

impl SortedTable {
    /// Sort `table` by predicate dimension `dim` (stable order on ties).
    pub fn from_table(table: &Table, dim: usize) -> Self {
        let n = table.n_rows();
        let mut order: Vec<u32> = (0..n as u32).collect();
        let col = table.predicate_column(dim);
        order.sort_by(|&a, &b| {
            col[a as usize]
                .partial_cmp(&col[b as usize])
                .expect("NaN predicate key")
        });
        let keys: Vec<f64> = order.iter().map(|&i| col[i as usize]).collect();
        let values: Vec<f64> = order.iter().map(|&i| table.value(i as usize)).collect();
        let prefix = PrefixSums::build(&values);
        Self {
            keys,
            values,
            original_index: order,
            prefix,
        }
    }

    /// Construct directly from already-sorted key/value pairs (generators
    /// that emit sorted data skip the sort).
    pub fn from_sorted(keys: Vec<f64>, values: Vec<f64>) -> Self {
        debug_assert_eq!(keys.len(), values.len());
        debug_assert!(keys.windows(2).all(|w| w[0] <= w[1]), "keys not sorted");
        let prefix = PrefixSums::build(&values);
        let original_index = (0..keys.len() as u32).collect();
        Self {
            keys,
            values,
            original_index,
            prefix,
        }
    }

    /// Number of rows.
    #[inline]
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// True when empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Sorted predicate keys.
    #[inline]
    pub fn keys(&self) -> &[f64] {
        &self.keys
    }

    /// Values in key order.
    #[inline]
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Original row index of sorted position `i`.
    #[inline]
    pub fn original_index(&self, i: usize) -> usize {
        self.original_index[i] as usize
    }

    /// Prefix sums over the values.
    #[inline]
    pub fn prefix(&self) -> &PrefixSums {
        &self.prefix
    }

    /// Map the inclusive key interval `[lo, hi]` to the half-open sorted
    /// index range `[start, end)` of rows whose key falls inside.
    pub fn index_range(&self, lo: f64, hi: f64) -> (usize, usize) {
        let start = self.keys.partition_point(|&k| k < lo);
        let end = self.keys.partition_point(|&k| k <= hi);
        (start, end.max(start))
    }

    /// Exact aggregates of the rows in key interval `[lo, hi]` — O(log n)
    /// for SUM/COUNT/AVG thanks to the prefix sums; MIN/MAX scan the range.
    pub fn range_aggregates(&self, lo: f64, hi: f64) -> Aggregates {
        let (s, e) = self.index_range(lo, hi);
        if s == e {
            return Aggregates::empty();
        }
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for &v in &self.values[s..e] {
            if v < min {
                min = v;
            }
            if v > max {
                max = v;
            }
        }
        Aggregates {
            sum: self.prefix.range_sum(s, e),
            sum_sq: self.prefix.range_sum_sq(s, e),
            count: (e - s) as u64,
            min,
            max,
        }
    }

    /// Fast exact answer to a 1-D query.
    pub fn ground_truth(&self, query: &Query) -> Option<f64> {
        debug_assert_eq!(query.dims(), 1);
        let (s, e) = self.index_range(query.rect.lo(0), query.rect.hi(0));
        match query.agg {
            AggKind::Sum => Some(self.prefix.range_sum(s, e)),
            AggKind::Count => Some((e - s) as f64),
            AggKind::Avg => (s < e).then(|| self.prefix.range_mean(s, e)),
            AggKind::Min | AggKind::Max => {
                if s == e {
                    return None;
                }
                let slice = &self.values[s..e];
                Some(if query.agg == AggKind::Min {
                    slice.iter().copied().fold(f64::INFINITY, f64::min)
                } else {
                    slice.iter().copied().fold(f64::NEG_INFINITY, f64::max)
                })
            }
        }
    }

    /// Key at sorted position `i`.
    #[inline]
    pub fn key(&self, i: usize) -> f64 {
        self.keys[i]
    }

    /// Value at sorted position `i`.
    #[inline]
    pub fn value(&self, i: usize) -> f64 {
        self.values[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pass_common::Rect;

    fn table() -> Table {
        // Unsorted predicate on purpose.
        let pred = vec![5.0, 1.0, 3.0, 2.0, 4.0];
        let vals = vec![50.0, 10.0, 30.0, 20.0, 40.0];
        Table::one_dim(pred, vals).unwrap()
    }

    #[test]
    fn sorting_aligns_keys_and_values() {
        let s = SortedTable::from_table(&table(), 0);
        assert_eq!(s.keys(), &[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(s.values(), &[10.0, 20.0, 30.0, 40.0, 50.0]);
        // Original index of smallest key (1.0) was row 1.
        assert_eq!(s.original_index(0), 1);
    }

    #[test]
    fn index_range_inclusive_semantics() {
        let s = SortedTable::from_table(&table(), 0);
        assert_eq!(s.index_range(2.0, 4.0), (1, 4));
        assert_eq!(s.index_range(2.5, 3.5), (2, 3));
        assert_eq!(s.index_range(0.0, 0.5), (0, 0));
        assert_eq!(s.index_range(6.0, 9.0), (5, 5));
        assert_eq!(s.index_range(1.0, 5.0), (0, 5));
    }

    #[test]
    fn index_range_with_duplicate_keys() {
        let s =
            SortedTable::from_sorted(vec![1.0, 2.0, 2.0, 2.0, 3.0], vec![1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(s.index_range(2.0, 2.0), (1, 4));
        assert_eq!(s.index_range(1.5, 2.5), (1, 4));
    }

    #[test]
    fn range_aggregates_match_scan() {
        let t = table();
        let s = SortedTable::from_table(&t, 0);
        let from_sorted = s.range_aggregates(2.0, 4.0);
        let from_scan = t.scan_aggregates(&Rect::interval(2.0, 4.0));
        assert_eq!(from_sorted.sum, from_scan.sum);
        assert_eq!(from_sorted.count, from_scan.count);
        assert_eq!(from_sorted.min, from_scan.min);
        assert_eq!(from_sorted.max, from_scan.max);
    }

    #[test]
    fn ground_truth_agrees_with_table_scan() {
        let t = table();
        let s = SortedTable::from_table(&t, 0);
        for agg in AggKind::ALL {
            for (lo, hi) in [(1.0, 5.0), (2.0, 3.0), (4.5, 4.9), (0.0, 1.0)] {
                let q = Query::interval(agg, lo, hi);
                assert_eq!(
                    s.ground_truth(&q),
                    t.ground_truth(&q),
                    "agg {agg} range [{lo},{hi}]"
                );
            }
        }
    }

    #[test]
    fn empty_table() {
        let s = SortedTable::from_sorted(vec![], vec![]);
        assert!(s.is_empty());
        assert_eq!(s.index_range(0.0, 1.0), (0, 0));
        assert!(s.range_aggregates(0.0, 1.0).is_empty());
    }
}
