//! Sharding one logical table into disjoint sub-tables.
//!
//! [`Table::split`] interprets a declarative
//! [`ShardPlan`] against a concrete table and
//! materializes one column-major [`Table`] per shard. Both partitioners
//! are **disjoint and exhaustive** — every row lands in exactly one
//! shard — which is what lets per-shard COUNT/SUM estimates add up
//! exactly (`pass_common::PartialEstimate`). Shards a plan would leave
//! empty (more shards than rows, or an unlucky hash) are dropped: an
//! empty table cannot back a synopsis, and an empty shard contributes
//! nothing to any merge.

use pass_common::{PassError, Result, ShardPlan};

use crate::table::Table;

impl Table {
    /// Split into disjoint shard tables according to `plan`.
    ///
    /// * [`ShardPlan::RowRange`] — K contiguous row ranges of near-equal
    ///   size, in row order (shard i holds rows `[i·n/K, (i+1)·n/K)`).
    /// * [`ShardPlan::HashDim`] — rows are routed by
    ///   [`ShardPlan::key_shard`] over predicate column `dim`, so equal
    ///   predicate keys co-locate.
    ///
    /// Returns the non-empty shards (≤ K of them), each with the same
    /// column names and arity as `self`. Errors on an empty table, a
    /// zero-shard plan, or a hash dimension the table does not have.
    pub fn split(&self, plan: &ShardPlan) -> Result<Vec<Table>> {
        plan.validate()?;
        if self.n_rows() == 0 {
            return Err(PassError::EmptyInput("cannot shard an empty table"));
        }
        let n = self.n_rows();
        let k = plan.shards();
        let row_shard: Box<dyn Fn(usize) -> usize> = match *plan {
            // i·k/n rounds so the ranges differ by at most one row.
            ShardPlan::RowRange { .. } => Box::new(move |row| row * k / n),
            ShardPlan::HashDim { dim, .. } => {
                if dim >= self.dims() {
                    return Err(PassError::DimensionMismatch {
                        expected: self.dims(),
                        got: dim + 1,
                    });
                }
                let keys = self.predicate_column(dim);
                Box::new(move |row| ShardPlan::key_shard(keys[row], k))
            }
        };

        let mut rows_of: Vec<Vec<usize>> = vec![Vec::new(); k];
        for row in 0..n {
            rows_of[row_shard(row)].push(row);
        }
        rows_of
            .into_iter()
            .filter(|rows| !rows.is_empty())
            .map(|rows| self.take_rows(&rows))
            .collect()
    }

    /// A new table holding the listed rows, in the given order.
    fn take_rows(&self, rows: &[usize]) -> Result<Table> {
        let values = rows.iter().map(|&r| self.value(r)).collect();
        let predicates = (0..self.dims())
            .map(|d| {
                let col = self.predicate_column(d);
                rows.iter().map(|&r| col[r]).collect()
            })
            .collect();
        Table::new(values, predicates, self.names().to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pass_common::{AggKind, Query};

    fn fixture() -> Table {
        let pred: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let vals: Vec<f64> = pred.iter().map(|p| p * 3.0).collect();
        Table::one_dim(pred, vals).unwrap()
    }

    #[test]
    fn row_range_shards_are_contiguous_balanced_and_exhaustive() {
        let t = fixture();
        let shards = t.split(&ShardPlan::row_range(4)).unwrap();
        assert_eq!(shards.len(), 4);
        let sizes: Vec<usize> = shards.iter().map(Table::n_rows).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 100);
        assert!(sizes.iter().all(|&s| s == 25));
        // Contiguity in row order: shard boundaries follow the original.
        assert_eq!(shards[0].predicate(0, 0), 0.0);
        assert_eq!(shards[1].predicate(0, 0), 25.0);
        assert_eq!(shards[3].predicate(0, 24), 99.0);
    }

    #[test]
    fn uneven_row_ranges_differ_by_at_most_one_row() {
        let t = fixture();
        let shards = t.split(&ShardPlan::row_range(7)).unwrap();
        let sizes: Vec<usize> = shards.iter().map(Table::n_rows).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 100);
        let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
        assert!(max - min <= 1, "{sizes:?}");
    }

    #[test]
    fn hash_shards_partition_rows_and_colocate_equal_keys() {
        let mut t = fixture();
        // Duplicate keys across the table.
        for i in 0..50 {
            t.push_row(1.0, &[(i % 10) as f64]);
        }
        let shards = t.split(&ShardPlan::hash_dim(0, 4)).unwrap();
        let total: usize = shards.iter().map(Table::n_rows).sum();
        assert_eq!(total, 150);
        // Every distinct key appears in exactly one shard.
        for key in 0..10 {
            let holders = shards
                .iter()
                .filter(|s| s.predicate_column(0).contains(&(key as f64)))
                .count();
            assert_eq!(holders, 1, "key {key} split across shards");
        }
    }

    #[test]
    fn shard_aggregates_sum_to_the_whole_table() {
        let t = fixture();
        let q = Query::interval(AggKind::Sum, 10.0, 60.0);
        let whole = t.ground_truth(&q).unwrap();
        for plan in [ShardPlan::row_range(4), ShardPlan::hash_dim(0, 4)] {
            let parts: f64 = t
                .split(&plan)
                .unwrap()
                .iter()
                .map(|s| s.ground_truth(&q).unwrap())
                .sum();
            assert!((parts - whole).abs() < 1e-9, "{plan:?}");
        }
    }

    #[test]
    fn empty_shards_are_dropped_not_materialized() {
        let t = Table::one_dim(vec![1.0, 2.0], vec![10.0, 20.0]).unwrap();
        let shards = t.split(&ShardPlan::row_range(8)).unwrap();
        assert_eq!(shards.len(), 2);
        assert!(shards.iter().all(|s| s.n_rows() == 1));
    }

    #[test]
    fn invalid_plans_are_rejected() {
        let t = fixture();
        assert!(t.split(&ShardPlan::row_range(0)).is_err());
        assert!(t.split(&ShardPlan::hash_dim(5, 2)).is_err());
        let empty = Table::one_dim(vec![], vec![]).unwrap();
        assert!(empty.split(&ShardPlan::row_range(2)).is_err());
    }

    #[test]
    fn shards_keep_names_and_arity() {
        let t = Table::new(
            vec![1.0, 2.0, 3.0, 4.0],
            vec![vec![0.0, 1.0, 2.0, 3.0], vec![5.0, 6.0, 7.0, 8.0]],
            vec!["v".into(), "x".into(), "y".into()],
        )
        .unwrap();
        for shard in t.split(&ShardPlan::hash_dim(1, 2)).unwrap() {
            assert_eq!(shard.dims(), 2);
            assert_eq!(shard.names(), t.names());
        }
    }
}
