//! Minimal CSV ingestion.
//!
//! The paper evaluates on three public CSV datasets. We normally synthesize
//! equivalents (see [`crate::datasets`]), but when the real files are
//! available this loader turns them into a [`Table`]: pick one numeric
//! aggregation column and a list of predicate columns; non-numeric predicate
//! columns are dictionary-encoded on the fly.
//!
//! Supports the common subset of RFC 4180: header row, comma separation,
//! double-quoted fields with embedded commas and doubled quotes. That covers
//! all three paper datasets; it is deliberately not a general CSV library.

use std::io::BufRead;

use pass_common::{PassError, Result};

use crate::column::Dictionary;
use crate::table::Table;

/// Split one CSV record into fields, honouring double quotes.
fn split_record(line: &str) -> Vec<String> {
    let mut fields = Vec::new();
    let mut cur = String::new();
    let mut in_quotes = false;
    let mut chars = line.chars().peekable();
    while let Some(c) = chars.next() {
        match c {
            '"' if in_quotes => {
                if chars.peek() == Some(&'"') {
                    chars.next();
                    cur.push('"');
                } else {
                    in_quotes = false;
                }
            }
            '"' => in_quotes = true,
            ',' if !in_quotes => fields.push(std::mem::take(&mut cur)),
            _ => cur.push(c),
        }
    }
    fields.push(cur);
    fields
}

/// Load a table from CSV text.
///
/// * `agg_column` — name of the numeric aggregation column;
/// * `predicate_columns` — names of the predicate columns, in dimension
///   order; non-numeric values are dictionary-encoded.
///
/// Rows whose aggregation value does not parse as a number are skipped
/// (matching how the paper's datasets drop malformed sensor readings).
pub fn load_csv<R: BufRead>(
    reader: R,
    agg_column: &str,
    predicate_columns: &[&str],
) -> Result<Table> {
    let mut lines = reader.lines();
    let header = lines
        .next()
        .ok_or(PassError::EmptyInput("csv: no header row"))?
        .map_err(|e| PassError::Load(e.to_string()))?;
    let header_fields = split_record(&header);

    let find = |name: &str| -> Result<usize> {
        header_fields
            .iter()
            .position(|h| h.trim() == name)
            .ok_or_else(|| PassError::Load(format!("column `{name}` not found in header")))
    };

    let agg_idx = find(agg_column)?;
    let pred_idx: Vec<usize> = predicate_columns
        .iter()
        .map(|n| find(n))
        .collect::<Result<_>>()?;

    let mut values = Vec::new();
    let mut predicates: Vec<Vec<f64>> = vec![Vec::new(); pred_idx.len()];
    let mut dicts: Vec<Option<Dictionary>> = vec![None; pred_idx.len()];

    for line in lines {
        let line = line.map_err(|e| PassError::Load(e.to_string()))?;
        if line.trim().is_empty() {
            continue;
        }
        let fields = split_record(&line);
        if fields.len() <= agg_idx || pred_idx.iter().any(|&i| fields.len() <= i) {
            continue; // ragged row: skip
        }
        let Ok(value) = fields[agg_idx].trim().parse::<f64>() else {
            continue; // malformed measurement: skip the row
        };
        // Parse predicates first so a bad predicate doesn't leave columns
        // ragged.
        let mut row_preds = Vec::with_capacity(pred_idx.len());
        for (d, &ci) in pred_idx.iter().enumerate() {
            let raw = fields[ci].trim();
            let parsed = match raw.parse::<f64>() {
                Ok(v) => v,
                Err(_) => {
                    let dict = dicts[d].get_or_insert_with(Dictionary::new);
                    dict.encode(raw) as f64
                }
            };
            row_preds.push(parsed);
        }
        values.push(value);
        for (d, p) in row_preds.into_iter().enumerate() {
            predicates[d].push(p);
        }
    }

    if values.is_empty() {
        return Err(PassError::EmptyInput("csv: no parseable rows"));
    }

    let mut names = vec![agg_column.to_owned()];
    names.extend(predicate_columns.iter().map(|s| s.to_string()));
    Table::new(values, predicates, names)
}

/// Load from a filesystem path.
pub fn load_csv_path(
    path: &std::path::Path,
    agg_column: &str,
    predicate_columns: &[&str],
) -> Result<Table> {
    let file = std::fs::File::open(path).map_err(|e| PassError::Load(e.to_string()))?;
    load_csv(std::io::BufReader::new(file), agg_column, predicate_columns)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn load(text: &str, agg: &str, preds: &[&str]) -> Result<Table> {
        load_csv(std::io::Cursor::new(text.as_bytes()), agg, preds)
    }

    #[test]
    fn basic_numeric_csv() {
        let t = load(
            "time,light,voltage\n1,100.5,2.1\n2,90.0,2.2\n3,80.5,2.0\n",
            "light",
            &["time"],
        )
        .unwrap();
        assert_eq!(t.n_rows(), 3);
        assert_eq!(t.value(1), 90.0);
        assert_eq!(t.predicate(0, 2), 3.0);
        assert_eq!(t.names(), &["light".to_string(), "time".to_string()]);
    }

    #[test]
    fn quoted_fields_and_embedded_commas() {
        let t = load("name,v\n\"a,b\",1\n\"say \"\"hi\"\"\",2\n", "v", &["name"]).unwrap();
        assert_eq!(t.n_rows(), 2);
        // Dictionary-encoded strings become codes 0.0 and 1.0.
        assert_eq!(t.predicate(0, 0), 0.0);
        assert_eq!(t.predicate(0, 1), 1.0);
    }

    #[test]
    fn malformed_value_rows_are_skipped() {
        let t = load("p,v\n1,10\n2,oops\n3,30\n\n", "v", &["p"]).unwrap();
        assert_eq!(t.n_rows(), 2);
        assert_eq!(t.value(1), 30.0);
    }

    #[test]
    fn categorical_predicates_get_dictionary_codes() {
        let t = load(
            "store,sales\neast,10\nwest,20\neast,30\n",
            "sales",
            &["store"],
        )
        .unwrap();
        assert_eq!(t.predicate_column(0), &[0.0, 1.0, 0.0]);
    }

    #[test]
    fn multi_predicate_columns() {
        let t = load("a,b,v\n1,10,100\n2,20,200\n", "v", &["b", "a"]).unwrap();
        assert_eq!(t.dims(), 2);
        assert_eq!(t.predicate(0, 0), 10.0);
        assert_eq!(t.predicate(1, 0), 1.0);
    }

    #[test]
    fn missing_column_errors() {
        let err = load("a,v\n1,2\n", "v", &["zzz"]).unwrap_err();
        assert!(err.to_string().contains("zzz"));
    }

    #[test]
    fn empty_input_errors() {
        assert!(load("", "v", &["p"]).is_err());
        assert!(load("p,v\n", "v", &["p"]).is_err());
        assert!(load("p,v\nx,notnum\n", "v", &["p"]).is_err());
    }
}
