//! Figure 5: median confidence-interval ratio of random SUM queries vs
//! sample rate {10%..100%}, fixed 64 partitions, on the three datasets.
//!
//! One [`Session`] per dataset; engines are re-declared per rate
//! (replace-by-name) and evaluated with a shared truth oracle.

use pass::{EngineSpec, Session};
use pass_bench::{emit_json, pct, print_table, Scale};
use pass_common::{AggKind, PassSpec};
use pass_table::datasets::DatasetId;
use pass_table::SortedTable;
use pass_workload::{random_queries, WorkloadSummary};

const PARTITIONS: usize = 64;
const RATES: [f64; 10] = [0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0];

fn main() {
    let scale = Scale::from_env();
    println!(
        "Figure 5 reproduction (scale={}, {} SUM queries, k={PARTITIONS}, λ=2.576)",
        scale.label, scale.queries
    );
    let mut all = Vec::<WorkloadSummary>::new();

    for id in DatasetId::ALL {
        let table = scale.dataset(id);
        let sorted = SortedTable::from_table(&table, 0);
        let n = table.n_rows();
        let queries = random_queries(
            &sorted,
            scale.queries,
            AggKind::Sum,
            (n / 100).max(10),
            scale.seed,
        );
        let mut session = Session::new(table);

        let mut rows = Vec::new();
        for rate in RATES {
            let k = ((n as f64) * rate).ceil() as usize;
            session
                .add_engine(
                    "PASS",
                    &EngineSpec::Pass(PassSpec {
                        partitions: PARTITIONS,
                        sample_rate: rate,
                        seed: scale.seed,
                        ..PassSpec::default()
                    }),
                )
                .unwrap();
            session
                .add_engine("US", &EngineSpec::uniform(k).with_seed(scale.seed))
                .unwrap();
            session
                .add_engine(
                    "ST",
                    &EngineSpec::stratified(PARTITIONS, k).with_seed(scale.seed),
                )
                .unwrap();
            session
                .add_engine(
                    "AQP++",
                    &EngineSpec::aqppp(PARTITIONS, k).with_seed(scale.seed),
                )
                .unwrap();
            let mut row = vec![format!("{:.0}%", rate * 100.0)];
            for mut s in session.run_workload_all(&queries) {
                row.push(pct(s.median_ci_ratio));
                s.engine = format!("{}/{}/rate={rate}", s.engine, id);
                all.push(s);
            }
            rows.push(row);
        }
        print_table(
            &format!("Figure 5 — {id}: median CI ratio vs sample rate"),
            &["rate", "PASS", "US", "ST", "AQP++"],
            &rows,
        );
    }
    emit_json("fig5", &scale, &all);
}
