//! Figure 8: multi-dimensional query templates Q1–Q5 on the NYC Taxi
//! dataset — median CI ratio of KD-PASS vs KD-US (left panel) and the
//! average skip rate of KD-PASS (right panel).
//!
//! Template Q_i predicates on the first i of {pickup_time, pickup_date,
//! PULocationID, dropoff_date, dropoff_time}; the aggregate is
//! trip_distance (Section 5.4). 1024 leaves at paper scale. One
//! [`Session`] per template holds both engines.

use pass::{EngineSpec, Session};
use pass_bench::{emit_json, pct, print_table, Scale};
use pass_common::{AggKind, PassSpec};
use pass_workload::{template_queries, WorkloadSummary};

const SAMPLE_RATE: f64 = 0.005;

fn main() {
    let scale = Scale::from_env();
    let leaves = if scale.label == "paper" { 1024 } else { 256 };
    let taxi = scale.taxi_full();
    println!(
        "Figure 8 reproduction (scale={}, n={}, {} queries/template, {leaves} leaves)",
        scale.label,
        taxi.n_rows(),
        scale.md_queries()
    );
    let mut all = Vec::<WorkloadSummary>::new();
    let mut ci_rows = Vec::new();
    let mut skip_rows = Vec::new();

    for dims in 1..=5usize {
        // Template Q_i: predicate columns 1..=i of the full taxi table.
        let template_dims: Vec<usize> = (1..=dims).collect();
        let table = taxi.project(&template_dims).unwrap();
        let queries = template_queries(&table, scale.md_queries(), AggKind::Avg, scale.seed);
        let base_k = ((table.n_rows() as f64) * SAMPLE_RATE).ceil() as usize;

        let session = Session::with_engines(
            table,
            &[
                (
                    "KD-PASS",
                    EngineSpec::Pass(PassSpec {
                        partitions: leaves,
                        sample_rate: SAMPLE_RATE,
                        kd_balance: 2,
                        seed: scale.seed,
                        name: Some("KD-PASS".to_owned()),
                        ..PassSpec::default()
                    }),
                ),
                (
                    "KD-US",
                    EngineSpec::aqppp(leaves, base_k).with_seed(scale.seed),
                ),
            ],
        )
        .expect("both engines build");

        let mut summaries = session.run_workload_all(&queries).into_iter();
        let mut s_pass = summaries.next().unwrap();
        let mut s_us = summaries.next().unwrap();
        ci_rows.push(vec![
            format!("{dims}D"),
            pct(s_pass.median_ci_ratio),
            pct(s_us.median_ci_ratio),
        ]);
        skip_rows.push(vec![
            format!("{dims}D"),
            format!("{:.4}", s_pass.mean_skip_rate),
        ]);
        s_pass.engine = format!("KD-PASS/{dims}D");
        s_us.engine = format!("KD-US/{dims}D");
        all.push(s_pass);
        all.push(s_us);
    }

    print_table(
        "Figure 8 (left): median CI ratio per query template",
        &["template", "KD-PASS", "KD-US"],
        &ci_rows,
    );
    print_table(
        "Figure 8 (right): KD-PASS average skip rate",
        &["template", "skip rate"],
        &skip_rows,
    );
    emit_json("fig8", &scale, &all);
}
