//! The canonical perf-trajectory bench: one fixed set of serving-path
//! measurements written to `BENCH_<pr>.json` at the workspace root, so
//! "faster" / "no slower" claims are verifiable across PRs (the tracked
//! trajectory ROADMAP item 3 asks for).
//!
//! Run with `cargo bench -p pass-bench --bench trajectory` (release
//! profile). `PASS_TRAJECTORY_PR=<n>` stamps the output file name;
//! the default is the PR that introduced the file. Setting
//! `PASS_TRAJECTORY_SMOKE=1` shrinks every workload to a few seconds,
//! skips the `BENCH_<pr>.json` write, and keeps only the self-check:
//! the payload must parse back through `pass_common::json` and carry
//! every tracked key — the CI release-mode smoke step.
//!
//! The canonical set: synopsis build time, single-query p50, 4k-batch
//! throughput (sequential and 4-worker), scan-kernel microbenches
//! (mask path, fused 256-query batch, sorted 1-D fast path), a
//! 512-request serve round-trip with its `ServeStats` p50/p99, and a
//! group-by sweep
//! (4/16/64 categories through PASS's batched expansion, the path
//! `Serve::submit_progressive` executes), and the snapshot save/load
//! path (ms per engine and MB/s both ways). Alongside those, a
//! head-to-head of the `pass_common::chaos` shim primitives against the
//! raw `std::sync` types they wrap — in a normal build (this one: the
//! `chaos` feature is off) the shims must be zero-cost, and the two
//! ns/op columns should agree within noise.

use std::sync::OnceLock;
use std::time::Instant;

use criterion::black_box;
use pass::sampling::{Sample, ScanScratch};
use pass::{EngineSpec, GroupByQuery, ServeConfig, Session, ThreadPool, Ticket};
use pass_common::{chaos, AggKind, Json, PassSpec, Query, Rect, Synopsis};
use pass_core::Pass;
use pass_table::datasets::DatasetId;
use pass_table::{SortedTable, Table};
use pass_workload::random_queries;

const BATCH: usize = 4_096;
const SERVE_REQUESTS: usize = 512;
const SINGLES: usize = 1_000;
const LOCK_OPS: u64 = 1_000_000;
const TRIALS: usize = 5;

/// Smoke mode (`PASS_TRAJECTORY_SMOKE`) runs one trial of shrunk
/// workloads — enough to validate the payload, not to measure.
static SMOKE: OnceLock<bool> = OnceLock::new();

fn smoke() -> bool {
    *SMOKE.get_or_init(|| std::env::var("PASS_TRAJECTORY_SMOKE").is_ok())
}

fn trials() -> usize {
    if smoke() {
        1
    } else {
        TRIALS
    }
}

fn pass_spec(partitions: usize) -> PassSpec {
    PassSpec {
        partitions,
        sample_rate: 0.005,
        seed: 7,
        ..PassSpec::default()
    }
}

/// Median wall-clock milliseconds over [`trials`] runs of `f`.
fn median_ms(mut f: impl FnMut()) -> f64 {
    let mut samples: Vec<f64> = (0..trials())
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

/// ns per op over `LOCK_OPS` iterations of `f`, median of `TRIALS`.
fn ns_per_op(mut f: impl FnMut()) -> f64 {
    median_ms(&mut f) * 1e6 / LOCK_OPS as f64
}

/// A categorical table for the group-by sweep: `cats` category codes on
/// the predicate dimension, per-category value offsets so every group's
/// answer is distinct.
fn categorical_table(rows: usize, cats: usize) -> Table {
    let cat: Vec<f64> = (0..rows).map(|i| (i % cats) as f64).collect();
    let values: Vec<f64> = (0..rows)
        .map(|i| ((i % cats) + 1) as f64 * 5.0 + ((i / cats) % 16) as f64 * 0.25)
        .collect();
    Table::one_dim(cat, values).expect("categorical bench table")
}

fn main() {
    let pr = std::env::var("PASS_TRAJECTORY_PR").unwrap_or_else(|_| "9".to_string());
    let (rows, batch, singles, serve_requests) = if smoke() {
        (20_000, 512, 100, 64)
    } else {
        (200_000, BATCH, SINGLES, SERVE_REQUESTS)
    };

    let table = DatasetId::NycTaxi.generate(rows, 7);
    let sorted = SortedTable::from_table(&table, 0);
    let queries = random_queries(&sorted, batch, AggKind::Sum, 2_000, 11);

    // --- Synopsis build ---------------------------------------------------
    let build_ms = median_ms(|| {
        black_box(Pass::from_spec(&table, &pass_spec(256)).unwrap());
    });
    let pass = Pass::from_spec(&table, &pass_spec(256)).unwrap();

    // --- Single-query p50 -------------------------------------------------
    let mut single_us: Vec<f64> = queries
        .iter()
        .cycle()
        .take(singles)
        .map(|q| {
            let start = Instant::now();
            black_box(pass.estimate(q)).ok();
            start.elapsed().as_secs_f64() * 1e6
        })
        .collect();
    single_us.sort_by(f64::total_cmp);
    let single_query_p50_us = single_us[single_us.len() / 2];

    // --- 4k-batch throughput ----------------------------------------------
    let seq_ms = median_ms(|| {
        black_box(pass.estimate_many(&queries));
    });
    let pool = ThreadPool::new(4);
    let par_ms = median_ms(|| {
        black_box(pass.estimate_many_parallel(&queries, &pool));
    });
    let batch_seq_qps = batch as f64 / (seq_ms / 1e3);
    let batch_par4_qps = batch as f64 / (par_ms / 1e3);

    // --- Scan-kernel microbenches -----------------------------------------
    // The columnar kernels in isolation, without MCF classification on
    // top: one mask-path estimate over a multi-dim sample, the fused
    // 256-query batch, and the sorted 1-D binary-search fast path.
    let k_rows = if smoke() { 2_048 } else { 16_384 }.min(table.n_rows());
    let indices: Vec<usize> = (0..k_rows).collect();
    let ksample =
        Sample::from_indices(&table, &indices, table.n_rows() as u64).expect("kernel sample");
    let dims = table.dims();
    let bounds: Vec<(f64, f64)> = (0..dims)
        .map(|d| {
            let col = ksample.rows().predicate_column(d);
            let lo = col.iter().copied().fold(f64::INFINITY, f64::min);
            let hi = col.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            (lo, hi)
        })
        .collect();
    let mid_rect = |frac_lo: f64, frac_hi: f64| {
        let mut b = bounds.clone();
        let (lo, hi) = b[0];
        b[0] = (lo + (hi - lo) * frac_lo, lo + (hi - lo) * frac_hi);
        Rect::new(&b)
    };
    let rect = mid_rect(0.25, 0.75);
    let mut scratch = ScanScratch::new();
    let reps = if smoke() { 20 } else { 200 };
    let kernel_mask_single_us = median_ms(|| {
        for _ in 0..reps {
            black_box(scratch.estimate(AggKind::Sum, &ksample, &rect));
        }
    }) * 1e3
        / reps as f64;

    let kqueries: Vec<Query> = (0..256)
        .map(|i| {
            let f = i as f64 / 256.0;
            Query::new(AggKind::Sum, mid_rect(f * 0.5, f * 0.5 + 0.3))
        })
        .collect();
    let mut kout = Vec::new();
    let kernel_batch256_per_query_us = median_ms(|| {
        scratch.estimate_batch(&ksample, &kqueries, &mut kout);
        black_box(&kout);
    }) * 1e3
        / kqueries.len() as f64;

    let sorted_table = Table::one_dim(sorted.keys().to_vec(), sorted.values().to_vec())
        .expect("sorted 1-D bench table");
    let ssample = Sample::from_indices(&sorted_table, &indices, sorted_table.n_rows() as u64)
        .expect("sorted kernel sample");
    assert!(ssample.sorted_1d(), "sorted sample must ride the fast path");
    let (klo, khi) = (bounds[0].0, bounds[0].1);
    let srect = Rect::interval(klo + (khi - klo) * 0.25, klo + (khi - klo) * 0.75);
    let kernel_sorted1d_single_us = median_ms(|| {
        for _ in 0..reps {
            black_box(scratch.estimate(AggKind::Sum, &ssample, &srect));
        }
    }) * 1e3
        / reps as f64;

    // --- Serve round-trip -------------------------------------------------
    let mut session = Session::new(table).with_cache_capacity(1);
    session
        .add_engine("pass", &EngineSpec::Pass(pass_spec(128)))
        .unwrap();
    let serve_queries = &queries[..serve_requests];
    let mut serve_p50_us = 0u64;
    let mut serve_p99_us = 0u64;
    let serve_ms = median_ms(|| {
        let serve = session
            .serve(
                "pass",
                ServeConfig::new()
                    .with_workers(2)
                    .with_queue_depth(serve_requests),
            )
            .unwrap();
        let tickets: Vec<Ticket> = serve_queries.iter().map(|q| serve.submit(q)).collect();
        for t in &tickets {
            black_box(t.wait());
        }
        let stats = serve.shutdown();
        serve_p50_us = stats.p50_latency_us;
        serve_p99_us = stats.p99_latency_us;
    });

    // --- Group-by sweep ---------------------------------------------------
    // PASS answers a GroupByQuery through one batched MCF traversal over
    // the per-category equality expansion; the sweep tracks how that
    // scales with category count (the serving tier's progressive path
    // executes exactly this per shard).
    let gb_table = categorical_table(if smoke() { 10_000 } else { 100_000 }, 64);
    let gb_pass = Pass::from_spec(&gb_table, &pass_spec(128)).unwrap();
    let mut groupby_ms = [0.0f64; 3];
    for (slot, cats) in [4usize, 16, 64].into_iter().enumerate() {
        let keys: Vec<f64> = (0..cats).map(|k| k as f64).collect();
        let query = GroupByQuery::over(AggKind::Sum, 0, &keys, 1);
        groupby_ms[slot] = median_ms(|| {
            black_box(gb_pass.estimate_group_by(&query)).ok();
        });
    }

    // --- Snapshot save/load -----------------------------------------------
    // The engine-portability path: serialize the 256-partition PASS to
    // the versioned snapshot format and reconstruct it. Throughput is
    // bytes over median wall-clock; load includes every checksum and
    // structural validation the decoder performs.
    let mut snap_bytes = Vec::new();
    pass.save(&mut snap_bytes).expect("snapshot save");
    let snapshot_mb = snap_bytes.len() as f64 / (1024.0 * 1024.0);
    let snapshot_save_ms = median_ms(|| {
        let mut out = Vec::new();
        pass.save(&mut out).expect("snapshot save");
        black_box(&out);
    });
    let snapshot_load_ms = median_ms(|| {
        black_box(pass::Engine::load(&snap_bytes).expect("snapshot load"));
    });
    let snapshot_save_mb_s = snapshot_mb / (snapshot_save_ms / 1e3);
    let snapshot_load_mb_s = snapshot_mb / (snapshot_load_ms / 1e3);

    // --- Shim vs. std head-to-head ----------------------------------------
    // The chaos feature is off in bench builds, so these must be the same
    // machine code modulo noise; the JSON records both columns as proof.
    let shim_mutex = chaos::Mutex::new(0u64);
    let shim_mutex_ns = ns_per_op(|| {
        for _ in 0..LOCK_OPS {
            *black_box(&shim_mutex).lock() += 1;
        }
    });
    let std_mutex = std::sync::Mutex::new(0u64);
    let std_mutex_ns = ns_per_op(|| {
        for _ in 0..LOCK_OPS {
            *black_box(&std_mutex).lock().unwrap() += 1;
        }
    });
    let shim_atomic = chaos::AtomicU64::new(0);
    let shim_atomic_ns = ns_per_op(|| {
        for _ in 0..LOCK_OPS {
            black_box(&shim_atomic).fetch_add(1, chaos::Ordering::Relaxed);
        }
    });
    let std_atomic = std::sync::atomic::AtomicU64::new(0);
    let std_atomic_ns = ns_per_op(|| {
        for _ in 0..LOCK_OPS {
            black_box(&std_atomic).fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        }
    });

    // --- Report -----------------------------------------------------------
    let payload = Json::obj([
        ("bench", Json::from("trajectory")),
        ("pr", Json::from(pr.as_str())),
        ("build_ms", Json::from(build_ms)),
        ("single_query_p50_us", Json::from(single_query_p50_us)),
        ("batch4k_seq_qps", Json::from(batch_seq_qps)),
        ("batch4k_par4_qps", Json::from(batch_par4_qps)),
        ("kernel_mask_single_us", Json::from(kernel_mask_single_us)),
        (
            "kernel_batch256_per_query_us",
            Json::from(kernel_batch256_per_query_us),
        ),
        (
            "kernel_sorted1d_single_us",
            Json::from(kernel_sorted1d_single_us),
        ),
        ("serve_512_roundtrip_ms", Json::from(serve_ms)),
        ("serve_p50_latency_us", Json::from(serve_p50_us)),
        ("serve_p99_latency_us", Json::from(serve_p99_us)),
        ("groupby_4_ms", Json::from(groupby_ms[0])),
        ("groupby_16_ms", Json::from(groupby_ms[1])),
        ("groupby_64_ms", Json::from(groupby_ms[2])),
        ("snapshot_bytes", Json::from(snap_bytes.len() as f64)),
        ("snapshot_save_ms", Json::from(snapshot_save_ms)),
        ("snapshot_load_ms", Json::from(snapshot_load_ms)),
        ("snapshot_save_mb_s", Json::from(snapshot_save_mb_s)),
        ("snapshot_load_mb_s", Json::from(snapshot_load_mb_s)),
        ("shim_mutex_ns_per_lock", Json::from(shim_mutex_ns)),
        ("std_mutex_ns_per_lock", Json::from(std_mutex_ns)),
        ("shim_atomic_ns_per_op", Json::from(shim_atomic_ns)),
        ("std_atomic_ns_per_op", Json::from(std_atomic_ns)),
    ]);

    // Self-validation: the payload must round-trip through the
    // workspace's own JSON parser and carry every tracked key — the
    // contract the CI smoke step asserts.
    let text = payload.pretty();
    let parsed = Json::parse(&text).expect("trajectory payload must parse");
    for key in [
        "build_ms",
        "single_query_p50_us",
        "batch4k_seq_qps",
        "batch4k_par4_qps",
        "kernel_mask_single_us",
        "kernel_batch256_per_query_us",
        "kernel_sorted1d_single_us",
        "serve_512_roundtrip_ms",
        "groupby_64_ms",
        "snapshot_save_ms",
        "snapshot_load_ms",
        "snapshot_save_mb_s",
        "snapshot_load_mb_s",
    ] {
        assert!(
            parsed.get(key).and_then(Json::as_f64).is_some(),
            "trajectory payload missing numeric key {key}"
        );
    }

    println!("{text}");
    if smoke() {
        println!("[smoke] trajectory payload validated; no BENCH file written");
    } else {
        let workspace_root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .ancestors()
            .nth(2)
            .expect("crates/bench has a workspace root");
        let path = workspace_root.join(format!("BENCH_{pr}.json"));
        std::fs::write(&path, format!("{text}\n")).expect("write trajectory file");
        println!("[trajectory written to {}]", path.display());
    }
    println!(
        "shim overhead: mutex {:+.1}% atomic {:+.1}% (within noise expected)",
        (shim_mutex_ns / std_mutex_ns - 1.0) * 100.0,
        (shim_atomic_ns / std_atomic_ns - 1.0) * 100.0,
    );
}
