//! Criterion micro-benchmarks for the sharding layer: build time and
//! 4k-query batch throughput of a K-shard `ShardedSynopsis` at
//! K ∈ {1, 2, 4, 8} against the unsharded baseline.
//!
//! Two effects compete. Builds are embarrassingly parallel over shards,
//! so on a ≥K-core machine sharded builds approach the single-shard
//! wall clock; each shard still runs the full ADP optimization
//! (`opt_samples` is per build), so on a single-core container the
//! sweep instead documents the serialized ~K× build cost. Queries pay a
//! merge overhead per shard (every shard answers every query), so batch
//! throughput degrades gently with K when shards answer serially and
//! recovers with `estimate_many_parallel`, which fans the shards out
//! across workers.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use pass::common::{AggKind, EngineSpec, PassSpec, Query, ShardPlan, Synopsis};
use pass::ThreadPool;
use pass_baselines::ShardedSynopsis;
use pass_table::datasets::DatasetId;
use pass_table::{SortedTable, Table};
use pass_workload::random_queries;

const BATCH: usize = 4_096;
const SWEEP: [usize; 4] = [1, 2, 4, 8];

fn inner_spec() -> EngineSpec {
    EngineSpec::Pass(PassSpec {
        partitions: 128,
        sample_rate: 0.005,
        seed: 7,
        ..PassSpec::default()
    })
}

fn fixture() -> (Table, Vec<Query>) {
    let table = DatasetId::NycTaxi.generate(200_000, 7);
    let sorted = SortedTable::from_table(&table, 0);
    let queries = random_queries(&sorted, BATCH, AggKind::Sum, 2_000, 11);
    (table, queries)
}

/// Build-time sweep: the unsharded engine vs. K-shard builds (shards
/// built concurrently on a machine-sized pool, as `Engine::build` does).
fn bench_shard_build(c: &mut Criterion) {
    let (table, _) = fixture();
    let spec = inner_spec();
    let mut group = c.benchmark_group("shard_build_200k");
    group.sample_size(10);

    group.bench_function("unsharded", |b| {
        b.iter(|| black_box(pass::Engine::build(&table, &spec).unwrap()));
    });
    for k in SWEEP {
        let plan = ShardPlan::row_range(k);
        group.bench_with_input(BenchmarkId::new("sharded_build", k), &plan, |b, plan| {
            b.iter(|| black_box(ShardedSynopsis::build(&table, &spec, plan).unwrap()));
        });
    }
    group.finish();
}

/// Query-throughput sweep: one 4k-query batch through the unsharded
/// engine, then through K-shard engines — serially (`estimate_many`) and
/// with shards fanned across 4 workers (`estimate_many_parallel`).
fn bench_shard_query(c: &mut Criterion) {
    let (table, queries) = fixture();
    let spec = inner_spec();
    let unsharded = pass::Engine::build(&table, &spec).unwrap();
    let pool = ThreadPool::new(4);
    let mut group = c.benchmark_group(format!("shard_query_{BATCH}q"));
    group.sample_size(10);

    group.bench_function("unsharded", |b| {
        b.iter(|| black_box(unsharded.estimate_many(&queries)));
    });
    for k in SWEEP {
        let sharded = ShardedSynopsis::build(&table, &spec, &ShardPlan::row_range(k)).unwrap();
        group.bench_with_input(
            BenchmarkId::new("sharded_serial", k),
            &sharded,
            |b, sharded| {
                b.iter(|| black_box(sharded.estimate_many(&queries)));
            },
        );
        group.bench_with_input(
            BenchmarkId::new("sharded_parallel4", k),
            &sharded,
            |b, sharded| {
                b.iter(|| black_box(sharded.estimate_many_parallel(&queries, &pool)));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_shard_build, bench_shard_query);
criterion_main!(benches);
