//! Perf trajectory for the JOIN engine family: build time, batched
//! query throughput, and relative CI width of `JoinSynopsis` across a
//! fact-sample size × key multiplicity sweep, written to
//! `BENCH_<pr>.json` at the workspace root.
//!
//! Run with `cargo bench -p pass-bench --bench micro_join` (release
//! profile). `PASS_TRAJECTORY_PR=<n>` stamps the output file name; the
//! default is the PR that introduced the file. Setting
//! `PASS_TRAJECTORY_SMOKE=1` shrinks the sweep to a few seconds, skips
//! the file write, and keeps only the self-check that the payload
//! parses through `pass_common::json` with every tracked key — the CI
//! smoke step.
//!
//! The sweep crosses the fact-side sample budget `k` (CI width should
//! shrink like 1/√k; scan cost and therefore qps should fall linearly
//! in k) with the dimension-side cardinality (at fixed fact size this
//! sets the FK multiplicity n/dims; build cost grows with the index,
//! query cost should not — queries scan the materialized joined
//! sample and never touch the index).

use std::sync::OnceLock;
use std::time::Instant;

use criterion::black_box;
use pass::Engine;
use pass_common::{AggKind, EngineSpec, JoinSpec, Json, Query, Rect, Synopsis};
use pass_table::Table;

const FACT_ROWS: usize = 200_000;
const BATCH: usize = 1_024;
const TRIALS: usize = 5;
const K_SWEEP: [usize; 3] = [512, 2_048, 8_192];
const DIM_SWEEP: [usize; 2] = [16, 1_024];

static SMOKE: OnceLock<bool> = OnceLock::new();

fn smoke() -> bool {
    *SMOKE.get_or_init(|| std::env::var("PASS_TRAJECTORY_SMOKE").is_ok())
}

fn trials() -> usize {
    if smoke() {
        1
    } else {
        TRIALS
    }
}

/// Median wall-clock milliseconds over [`trials`] runs of `f`.
fn median_ms(mut f: impl FnMut()) -> f64 {
    let mut samples: Vec<f64> = (0..trials())
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

/// The fact side: value `(i % 13) + 1`, `x` uniform in [0, 1), FK
/// cycling over `dim_n` keys with every 7th row dangling — the joined
/// sample drops ~14% of its rows, so the estimator pays the inner-join
/// semantics, not just a pass-through.
fn fact_table(rows: usize, dim_n: usize) -> Table {
    let values: Vec<f64> = (0..rows).map(|i| (i % 13) as f64 + 1.0).collect();
    let x: Vec<f64> = (0..rows).map(|i| i as f64 / rows as f64).collect();
    let fk: Vec<f64> = (0..rows)
        .map(|i| if i % 7 == 0 { -1.0 } else { (i % dim_n) as f64 })
        .collect();
    Table::new(
        values,
        vec![x, fk],
        vec!["v".into(), "x".into(), "fk".into()],
    )
    .expect("bench fact table")
}

/// The dimension side carried by the spec: keys 0..dim_n, one attribute
/// column at 10× the key.
fn join_spec(dim_n: usize, k: usize) -> JoinSpec {
    let dim_keys: Vec<f64> = (0..dim_n).map(|key| key as f64).collect();
    let dim_attr: Vec<f64> = dim_keys.iter().map(|key| key * 10.0).collect();
    let mut spec = JoinSpec::new(1, dim_keys, vec![dim_attr], k);
    spec.seed = 17;
    spec
}

/// SUM queries over sliding `x` windows, FK unconstrained, attributes
/// clipped to the lower three quarters — three-dimensional rectangles
/// only the join can answer.
fn query_batch(batch: usize, dim_n: usize) -> Vec<Query> {
    (0..batch)
        .map(|i| {
            let lo = (i % 64) as f64 / 100.0;
            Query::new(
                AggKind::Sum,
                Rect::new(&[
                    (lo, lo + 0.3),
                    (-2.0, dim_n as f64),
                    (0.0, dim_n as f64 * 7.5),
                ]),
            )
        })
        .collect()
}

fn main() {
    let pr = std::env::var("PASS_TRAJECTORY_PR").unwrap_or_else(|_| "10".to_string());
    let (rows, batch) = if smoke() {
        (20_000, 128)
    } else {
        (FACT_ROWS, BATCH)
    };

    let mut entries: Vec<(String, Json)> = vec![
        ("bench".to_string(), Json::from("micro_join")),
        ("pr".to_string(), Json::from(pr.as_str())),
        ("fact_rows".to_string(), Json::from(rows as f64)),
        ("batch".to_string(), Json::from(batch as f64)),
    ];
    let mut tracked_keys = Vec::new();

    for dim_n in DIM_SWEEP {
        let fact = fact_table(rows, dim_n);
        let queries = query_batch(batch, dim_n);
        for k in K_SWEEP {
            let k = k.min(rows);
            let spec = EngineSpec::Join(join_spec(dim_n, k));
            let build_ms = median_ms(|| {
                black_box(Engine::build(&fact, &spec).expect("bench build"));
            });
            let engine = Engine::build(&fact, &spec).expect("bench build");

            let batch_ms = median_ms(|| {
                black_box(engine.estimate_many(&queries));
            });
            let qps = batch as f64 / (batch_ms / 1e3);

            // Mean relative CI half-width over the batch — the
            // statistical cost axis of the sweep (should fall ~1/√k and
            // stay flat across dimension cardinalities).
            let results = engine.estimate_many(&queries);
            let (mut rel_sum, mut n_ok) = (0.0f64, 0usize);
            for est in results.into_iter().flatten() {
                if est.value != 0.0 {
                    rel_sum += est.ci_half / est.value.abs();
                    n_ok += 1;
                }
            }
            let rel_ci = if n_ok == 0 {
                f64::NAN
            } else {
                rel_sum / n_ok as f64
            };

            let tag = format!("dim{dim_n}_k{k}");
            for (metric, value) in [
                ("build_ms", build_ms),
                ("batch_qps", qps),
                ("rel_ci", rel_ci),
            ] {
                let key = format!("{tag}_{metric}");
                tracked_keys.push(key.clone());
                entries.push((key, Json::from(value)));
            }
            println!(
                "dim {dim_n:>5} k {k:>5}: build {build_ms:>8.2} ms, {qps:>10.0} q/s, rel CI {rel_ci:.4}"
            );
        }
    }

    // Dynamic keys, so build the object variant directly instead of
    // going through `Json::obj`'s `&'static str` convenience.
    let payload = Json::Obj(entries.into_iter().collect());

    // Self-validation: the payload must round-trip through the
    // workspace's own JSON parser and carry every sweep key — the
    // contract the CI smoke step asserts.
    let text = payload.pretty();
    let parsed = Json::parse(&text).expect("micro_join payload must parse");
    for key in &tracked_keys {
        assert!(
            parsed.get(key).and_then(Json::as_f64).is_some(),
            "micro_join payload missing numeric key {key}"
        );
    }

    println!("{text}");
    if smoke() {
        println!("[smoke] micro_join payload validated; no BENCH file written");
    } else {
        let workspace_root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .ancestors()
            .nth(2)
            .expect("crates/bench has a workspace root");
        let path = workspace_root.join(format!("BENCH_{pr}.json"));
        std::fs::write(&path, format!("{text}\n")).expect("write micro_join trajectory file");
        println!("[trajectory written to {}]", path.display());
    }
}
