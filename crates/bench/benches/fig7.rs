//! Figure 7: ADP vs equal-depth partitioning on challenging queries (drawn
//! around the maximum-variance window located by the fast discretization
//! method) for the three real-life datasets, across partition counts.
//!
//! Both strategies are PASS engines differing only in their
//! [`PassSpec::strategy`], declared through one [`Session`] per dataset.

use pass::{EngineSpec, Session};
use pass_bench::{emit_json, pct, print_table, Scale};
use pass_common::{AggKind, PartitionStrategy, PassSpec};
use pass_table::datasets::DatasetId;
use pass_table::SortedTable;
use pass_workload::{challenging_queries, WorkloadSummary};

const PARTITION_SWEEP: [usize; 6] = [4, 8, 16, 32, 64, 128];
const SAMPLE_RATE: f64 = 0.005;

fn main() {
    let scale = Scale::from_env();
    println!(
        "Figure 7 reproduction (scale={}, {} challenging queries/dataset)",
        scale.label, scale.queries
    );
    let mut all = Vec::<WorkloadSummary>::new();

    for id in DatasetId::ALL {
        let table = scale.dataset(id);
        let sorted = SortedTable::from_table(&table, 0);
        // AVG queries: the challenging workload targets the max-variance
        // window the AVG discretization identifies, and ADP optimizes the
        // same objective (Appendix A.4).
        let queries = challenging_queries(
            &sorted,
            scale.queries,
            AggKind::Avg,
            4_096,
            0.01,
            scale.seed,
        );
        let mut session = Session::new(table);

        let strategy_spec = |name: &str, strategy: PartitionStrategy, parts: usize| {
            EngineSpec::Pass(PassSpec {
                partitions: parts,
                sample_rate: SAMPLE_RATE,
                strategy,
                seed: scale.seed,
                name: Some(name.to_owned()),
                ..PassSpec::default()
            })
        };

        let mut rows = Vec::new();
        for parts in PARTITION_SWEEP {
            session
                .add_engine(
                    "ADP",
                    &strategy_spec("ADP", PartitionStrategy::Adp(AggKind::Avg), parts),
                )
                .unwrap();
            session
                .add_engine(
                    "EQ",
                    &strategy_spec("EQ", PartitionStrategy::EqualDepth, parts),
                )
                .unwrap();
            let mut row = vec![parts.to_string()];
            for mut s in session.run_workload_all(&queries) {
                row.push(pct(s.median_ci_ratio));
                s.engine = format!("{}/{}/k={}", s.engine, id, parts);
                all.push(s);
            }
            rows.push(row);
        }
        print_table(
            &format!("Figure 7 — {id}: median CI ratio on challenging queries"),
            &["#partitions", "ADP", "EQ"],
            &rows,
        );
    }
    emit_json("fig7", &scale, &all);
}
