//! Figure 7: ADP vs equal-depth partitioning on challenging queries (drawn
//! around the maximum-variance window located by the fast discretization
//! method) for the three real-life datasets, across partition counts.

use pass_bench::{emit_json, pct, print_table, Scale};
use pass_common::{AggKind, Synopsis};
use pass_core::{PassBuilder, PartitionStrategy};
use pass_table::datasets::DatasetId;
use pass_table::SortedTable;
use pass_workload::{challenging_queries, run_workload, Truth, WorkloadSummary};

const PARTITION_SWEEP: [usize; 6] = [4, 8, 16, 32, 64, 128];
const SAMPLE_RATE: f64 = 0.005;

fn main() {
    let scale = Scale::from_env();
    println!(
        "Figure 7 reproduction (scale={}, {} challenging queries/dataset)",
        scale.label, scale.queries
    );
    let mut all = Vec::<WorkloadSummary>::new();

    for id in DatasetId::ALL {
        let table = scale.dataset(id);
        let sorted = SortedTable::from_table(&table, 0);
        let truth = Truth::new(&table);
        // AVG queries: the challenging workload targets the max-variance
        // window the AVG discretization identifies, and ADP optimizes the
        // same objective (Appendix A.4).
        let queries = challenging_queries(
            &sorted,
            scale.queries,
            AggKind::Avg,
            4_096,
            0.01,
            scale.seed,
        );
        let truths: Vec<Option<f64>> = queries.iter().map(|q| truth.eval(q)).collect();

        let mut rows = Vec::new();
        for parts in PARTITION_SWEEP {
            let adp = PassBuilder::new()
                .partitions(parts)
                .sample_rate(SAMPLE_RATE)
                .strategy(PartitionStrategy::Adp(AggKind::Avg))
                .seed(scale.seed)
                .build(&table)
                .unwrap()
                .with_name("ADP");
            let eq = PassBuilder::new()
                .partitions(parts)
                .sample_rate(SAMPLE_RATE)
                .strategy(PartitionStrategy::EqualDepth)
                .seed(scale.seed)
                .build(&table)
                .unwrap()
                .with_name("EQ");
            let mut row = vec![parts.to_string()];
            for engine in [&adp as &dyn Synopsis, &eq] {
                let (mut s, _) = run_workload(engine, &queries, &truth, Some(&truths));
                row.push(pct(s.median_ci_ratio));
                s.engine = format!("{}/{}/k={}", s.engine, id, parts);
                all.push(s);
            }
            rows.push(row);
        }
        print_table(
            &format!("Figure 7 — {id}: median CI ratio on challenging queries"),
            &["#partitions", "ADP", "EQ"],
            &rows,
        );
    }
    emit_json("fig7", &scale, &all);
}
