//! Criterion micro-benchmarks for the routed serving front-end
//! (`Session::serve_multi`): submit→wait round-trips alternating
//! between two engines through one shared queue at 1/2/4 workers, the
//! cross-request dedup win (duplicate-heavy traffic executed once per
//! distinct request instead of once per submission), and the raw
//! scheduling overhead of the earliest-deadline-first queue order
//! against plain FIFO pushes.
//!
//! Unlike `micro_serve` (one engine, admission control under
//! saturation), this bench measures what PR 5 added: routing, dedup,
//! and deadline scheduling. The dedup group runs with the session query
//! cache **disabled** so the numbers isolate the queue-layer dedup —
//! with the cache on, duplicates would be cache hits either way and the
//! dedup win would shrink to saved queue slots and lock traffic.

use std::time::{Duration, Instant};

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use pass::{EngineSpec, ServeConfig, Session, Ticket};
use pass_common::{AggKind, PassSpec, Priority, Query, RequestQueue};
use pass_table::datasets::DatasetId;
use pass_table::SortedTable;
use pass_workload::random_queries;

const REQUESTS: usize = 512;

fn fixture(cache_capacity: usize) -> (Session, Vec<Query>) {
    let table = DatasetId::NycTaxi.generate(100_000, 7);
    let sorted = SortedTable::from_table(&table, 0);
    let queries = random_queries(&sorted, REQUESTS, AggKind::Sum, 2_000, 11);
    let mut session = Session::new(table).with_cache_capacity(cache_capacity);
    session
        .add_engine(
            "pass",
            &EngineSpec::Pass(PassSpec {
                partitions: 128,
                sample_rate: 0.005,
                seed: 7,
                ..PassSpec::default()
            }),
        )
        .unwrap();
    session
        .add_engine("us", &EngineSpec::uniform(2_000))
        .unwrap();
    (session, queries)
}

/// Routed round-trips: 512 single-query requests alternating between
/// two engines through one `serve_multi` server at 1/2/4 workers (each
/// iteration spins up a fresh server so queue state never leaks).
fn bench_routed_roundtrip(c: &mut Criterion) {
    let (session, queries) = fixture(1);
    let mut group = c.benchmark_group(format!("route_roundtrip_{REQUESTS}q"));
    group.sample_size(10);
    for workers in [1usize, 2, 4] {
        group.bench_with_input(
            BenchmarkId::new("two_engines", workers),
            &workers,
            |b, &workers| {
                b.iter(|| {
                    let serve = session
                        .serve_multi(
                            &["pass", "us"],
                            ServeConfig::new()
                                .with_workers(workers)
                                .with_queue_depth(REQUESTS),
                        )
                        .unwrap();
                    let tickets: Vec<Ticket> = queries
                        .iter()
                        .enumerate()
                        .map(|(i, q)| {
                            let engine = if i % 2 == 0 { "pass" } else { "us" };
                            serve.submit_to(engine, q).unwrap()
                        })
                        .collect();
                    for t in &tickets {
                        black_box(t.wait());
                    }
                    serve.shutdown()
                });
            },
        );
    }
    group.finish();
}

/// The dedup win on duplicate-heavy traffic: 64 distinct queries each
/// submitted 8 times behind a paused worker, released as one drain.
/// With dedup off every submission executes (the cache is disabled);
/// with dedup on each distinct request executes once and fans out.
fn bench_dedup(c: &mut Criterion) {
    let (session, queries) = fixture(0);
    let distinct = &queries[..64];
    let mut group = c.benchmark_group("route_dedup_64q_x8");
    group.sample_size(10);
    for (label, dedup) in [("dedup_off", false), ("dedup_on", true)] {
        group.bench_function(label, |b| {
            b.iter(|| {
                let mut config = ServeConfig::new()
                    .with_workers(1)
                    .with_queue_depth(8 * distinct.len())
                    .paused();
                config.dedup = dedup;
                let serve = session.serve("pass", config).unwrap();
                let tickets: Vec<Ticket> = (0..8)
                    .flat_map(|_| distinct.iter().map(|q| serve.submit(q)))
                    .collect();
                serve.resume();
                for t in &tickets {
                    black_box(t.wait());
                }
                serve.shutdown()
            });
        });
    }
    group.finish();

    // One representative run, stats printed for the record.
    let mut config = ServeConfig::new()
        .with_workers(1)
        .with_queue_depth(8 * distinct.len())
        .paused();
    config.dedup = true;
    let serve = session.serve("pass", config).unwrap();
    let tickets: Vec<Ticket> = (0..8)
        .flat_map(|_| distinct.iter().map(|q| serve.submit(q)))
        .collect();
    serve.resume();
    for t in &tickets {
        let _ = t.wait();
    }
    let stats = serve.shutdown();
    println!(
        "route_dedup: accepted {} deduped {} completed {} batches {}",
        stats.accepted, stats.deduped, stats.completed, stats.batches
    );
}

/// Raw queue scheduling overhead: push/pop 4096 entries through the
/// `RequestQueue` with plain FIFO pushes vs deadline-keyed (EDF)
/// pushes — the price of the sorted insertion the scheduler pays on
/// every dated submission.
fn bench_edf_queue_overhead(c: &mut Criterion) {
    const ITEMS: usize = 4096;
    let mut group = c.benchmark_group(format!("route_queue_{ITEMS}"));
    group.sample_size(10);
    group.bench_function("fifo_push_pop", |b| {
        b.iter(|| {
            let queue = RequestQueue::new(ITEMS);
            for i in 0..ITEMS {
                queue.try_push(i, Priority::Bulk).unwrap();
            }
            for _ in 0..ITEMS {
                black_box(queue.pop_blocking());
            }
        });
    });
    group.bench_function("edf_push_pop", |b| {
        b.iter(|| {
            let queue = RequestQueue::new(ITEMS);
            let base = Instant::now() + Duration::from_secs(60);
            for i in 0..ITEMS {
                // Deadlines land out of order (reversed within blocks of
                // 64) so insertion actually exercises the binary search.
                let jitter = 64 - (i % 64);
                let deadline = base + Duration::from_millis((i / 64 * 64 + jitter) as u64);
                queue
                    .try_push_scheduled(i, Priority::Bulk, Some(deadline))
                    .unwrap();
            }
            for _ in 0..ITEMS {
                black_box(queue.pop_blocking());
            }
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_routed_roundtrip,
    bench_dedup,
    bench_edf_queue_overhead
);
criterion_main!(benches);
