//! Table 1: median relative error of US / ST / AQP++ / PASS-ESS /
//! PASS-BSS2x / PASS-BSS10x for COUNT / SUM / AVG on the three datasets,
//! plus mean construction cost.
//!
//! Setup per Section 5.1.3: 0.5% sampling rate, 64 partitions, λ = 2.576,
//! random queries per aggregate. All engines are declared as
//! [`EngineSpec`]s and run through one [`Session`].

use pass::{EngineSpec, Session};
use pass_bench::{emit_json, pct, print_table, Scale};
use pass_common::{AggKind, PassSpec};
use pass_table::datasets::DatasetId;
use pass_table::SortedTable;
use pass_workload::{random_queries, WorkloadSummary};

const PARTITIONS: usize = 64;
const SAMPLE_RATE: f64 = 0.005;

#[allow(clippy::needless_range_loop)] // 3×3 result grid is clearest indexed
fn main() {
    let scale = Scale::from_env();
    println!(
        "Table 1 reproduction (scale={}, {} queries/agg, rate=0.5%, k={PARTITIONS})",
        scale.label, scale.queries
    );

    let engines = ["US", "ST", "AQP++", "PASS-ESS", "PASS-BSS2x", "PASS-BSS10x"];
    // errors[engine][agg][dataset]
    let mut errors = vec![vec![vec![0.0f64; 3]; 3]; engines.len()];
    let mut build_ms = vec![0.0f64; engines.len()];
    let mut all_summaries: Vec<WorkloadSummary> = Vec::new();

    for (d_idx, id) in DatasetId::ALL.into_iter().enumerate() {
        let table = scale.dataset(id);
        let sorted = SortedTable::from_table(&table, 0);
        let n = table.n_rows();
        let base_k = ((n as f64) * SAMPLE_RATE).ceil() as usize;
        let min_rows = (n / 100).max(10);

        // ESS mode: control tuples *processed per query* rather than
        // stored. A 1-D query partially overlaps ≤ 2 of the k leaves, so
        // PASS can store ~k/2 times more samples than US while touching
        // the same number per query (Section 5.1.4's point that "data
        // skipping could allow one to include more samples into the
        // synopsis").
        let ess_rate = (SAMPLE_RATE * PARTITIONS as f64 / 2.0).min(0.5);
        let pass_spec = |name: &str, rate: f64, total: Option<usize>| {
            EngineSpec::Pass(PassSpec {
                partitions: PARTITIONS,
                sample_rate: rate,
                total_samples: total,
                seed: scale.seed,
                name: Some(name.to_owned()),
                ..PassSpec::default()
            })
        };
        let session = Session::with_engines(
            table,
            &[
                ("US", EngineSpec::uniform(base_k).with_seed(scale.seed)),
                (
                    "ST",
                    EngineSpec::stratified(PARTITIONS, base_k).with_seed(scale.seed),
                ),
                (
                    "AQP++",
                    EngineSpec::aqppp(PARTITIONS, base_k).with_seed(scale.seed),
                ),
                ("PASS-ESS", pass_spec("PASS-ESS", ess_rate, None)),
                (
                    "PASS-BSS2x",
                    pass_spec("PASS-BSS2x", SAMPLE_RATE, Some(2 * base_k)),
                ),
                (
                    "PASS-BSS10x",
                    pass_spec("PASS-BSS10x", SAMPLE_RATE, Some(10 * base_k)),
                ),
            ],
        )
        .expect("all engines build");
        for (e_idx, name) in engines.iter().enumerate() {
            build_ms[e_idx] += session.build_ms(name).unwrap() / 3.0;
        }

        for (a_idx, agg) in [AggKind::Count, AggKind::Sum, AggKind::Avg]
            .into_iter()
            .enumerate()
        {
            let queries = random_queries(
                &sorted,
                scale.queries,
                agg,
                min_rows,
                scale.seed + a_idx as u64,
            );
            // One call evaluates every engine with a shared truth pass.
            for (e_idx, mut summary) in session.run_workload_all(&queries).into_iter().enumerate() {
                summary.engine = format!("{}/{}/{}", engines[e_idx], agg, id);
                errors[e_idx][a_idx][d_idx] = summary.median_relative_error;
                all_summaries.push(summary);
            }
        }
    }

    let mut rows = Vec::new();
    for (e_idx, name) in engines.iter().enumerate() {
        let mut row = vec![name.to_string(), format!("{:.2}s", build_ms[e_idx] / 1e3)];
        for a in 0..3 {
            for d in 0..3 {
                row.push(pct(errors[e_idx][a][d]));
            }
        }
        rows.push(row);
    }
    print_table(
        "Table 1: median relative error (COUNT | SUM | AVG × Intel, Insta, NYC)",
        &[
            "Approach",
            "MeanCost",
            "COUNT/Intel",
            "COUNT/Insta",
            "COUNT/NYC",
            "SUM/Intel",
            "SUM/Insta",
            "SUM/NYC",
            "AVG/Intel",
            "AVG/Insta",
            "AVG/NYC",
        ],
        &rows,
    );
    emit_json("table1", &scale, &all_summaries);
}
