//! Criterion micro-benchmarks: per-query latency of each engine, the MCF
//! index lookup alone, and the batched `estimate_many` path against N
//! repeated single estimates — the constant factors behind Table 3's
//! latency columns and the batching win behind the `Session` facade.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use pass::EngineSpec;
use pass_baselines::Engine;
use pass_common::{AggKind, PassSpec, Query, Synopsis};
use pass_core::{mcf, mcf_batch, Pass};
use pass_table::datasets::DatasetId;
use pass_table::SortedTable;
use pass_workload::random_queries;

fn pass_spec(partitions: usize, seed: u64) -> PassSpec {
    PassSpec {
        partitions,
        sample_rate: 0.005,
        seed,
        ..PassSpec::default()
    }
}

fn bench_estimate(c: &mut Criterion) {
    let table = DatasetId::NycTaxi.generate(200_000, 7);
    let sorted = SortedTable::from_table(&table, 0);
    let queries = random_queries(&sorted, 64, AggKind::Sum, 2_000, 11);
    let k = 1_000;

    let engines: Vec<(&str, std::sync::Arc<dyn Synopsis>)> = [
        ("PASS", EngineSpec::Pass(pass_spec(64, 7))),
        ("US", EngineSpec::uniform(k).with_seed(7)),
        ("ST", EngineSpec::stratified(64, k).with_seed(7)),
        ("AQP++", EngineSpec::aqppp(64, k).with_seed(7)),
    ]
    .into_iter()
    .map(|(name, spec)| (name, Engine::build(&table, &spec).unwrap()))
    .collect();

    let mut group = c.benchmark_group("estimate_sum_200k");
    for (name, engine) in &engines {
        group.bench_with_input(BenchmarkId::from_parameter(name), &queries, |b, qs| {
            let mut i = 0;
            b.iter(|| {
                let q = &qs[i % qs.len()];
                i += 1;
                black_box(engine.estimate(q).unwrap());
            });
        });
    }
    group.finish();
}

/// The acceptance micro-bench: PASS answering a 64-query batch through
/// `estimate_many` (shared MCF traversal state) must beat 64 repeated
/// `estimate` calls.
fn bench_estimate_many(c: &mut Criterion) {
    let table = DatasetId::NycTaxi.generate(200_000, 7);
    let sorted = SortedTable::from_table(&table, 0);
    let pass = Pass::from_spec(&table, &pass_spec(256, 7)).unwrap();

    for batch in [16usize, 64, 256] {
        let queries: Vec<Query> = random_queries(&sorted, batch, AggKind::Sum, 2_000, 11);
        let mut group = c.benchmark_group(format!("pass_batch_{batch}q"));
        group.bench_with_input(
            BenchmarkId::from_parameter("estimate_many"),
            &queries,
            |b, qs| {
                b.iter(|| black_box(pass.estimate_many(qs)));
            },
        );
        group.bench_with_input(
            BenchmarkId::from_parameter("repeated_estimate"),
            &queries,
            |b, qs| {
                b.iter(|| {
                    for q in qs {
                        black_box(pass.estimate(q).ok());
                    }
                });
            },
        );
        group.finish();
    }
}

fn bench_mcf(c: &mut Criterion) {
    let table = DatasetId::Intel.generate(120_000, 3);
    let sorted = SortedTable::from_table(&table, 0);
    let queries = random_queries(&sorted, 64, AggKind::Sum, 1_000, 5);
    let mut group = c.benchmark_group("mcf_lookup");
    for parts in [16usize, 64, 256] {
        let pass = Pass::from_spec(&table, &pass_spec(parts, 3)).unwrap();
        group.bench_with_input(BenchmarkId::new("single", parts), &queries, |b, qs| {
            let mut i = 0;
            b.iter(|| {
                let q = &qs[i % qs.len()];
                i += 1;
                black_box(mcf(pass.tree(), q, true));
            });
        });
        group.bench_with_input(BenchmarkId::new("batch64", parts), &queries, |b, qs| {
            b.iter(|| black_box(mcf_batch(pass.tree(), qs, true)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_estimate, bench_estimate_many, bench_mcf);
criterion_main!(benches);
