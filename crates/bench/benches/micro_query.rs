//! Criterion micro-benchmarks: per-query latency of each engine and the
//! MCF index lookup alone — the constant factors behind Table 3's latency
//! columns.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use pass_baselines::{AqpPlusPlus, StratifiedSynopsis, UniformSynopsis};
use pass_common::{AggKind, Synopsis};
use pass_core::{mcf, PassBuilder};
use pass_table::datasets::DatasetId;
use pass_table::SortedTable;
use pass_workload::random_queries;

fn bench_estimate(c: &mut Criterion) {
    let table = DatasetId::NycTaxi.generate(200_000, 7);
    let sorted = SortedTable::from_table(&table, 0);
    let queries = random_queries(&sorted, 64, AggKind::Sum, 2_000, 11);
    let k = 1_000;

    let pass = PassBuilder::new()
        .partitions(64)
        .sample_rate(0.005)
        .seed(7)
        .build(&table)
        .unwrap();
    let us = UniformSynopsis::build(&table, k, 7).unwrap();
    let st = StratifiedSynopsis::build(&table, 64, k, 7).unwrap();
    let aqp = AqpPlusPlus::build(&table, 64, k, 7).unwrap();

    let mut group = c.benchmark_group("estimate_sum_200k");
    let engines: [(&str, &dyn Synopsis); 4] =
        [("PASS", &pass), ("US", &us), ("ST", &st), ("AQP++", &aqp)];
    for (name, engine) in engines {
        group.bench_with_input(BenchmarkId::from_parameter(name), &queries, |b, qs| {
            let mut i = 0;
            b.iter(|| {
                let q = &qs[i % qs.len()];
                i += 1;
                std::hint::black_box(engine.estimate(q).unwrap());
            });
        });
    }
    group.finish();
}

fn bench_mcf(c: &mut Criterion) {
    let table = DatasetId::Intel.generate(120_000, 3);
    let mut group = c.benchmark_group("mcf_lookup");
    for parts in [16usize, 64, 256] {
        let pass = PassBuilder::new()
            .partitions(parts)
            .sample_rate(0.005)
            .seed(3)
            .build(&table)
            .unwrap();
        let sorted = SortedTable::from_table(&table, 0);
        let queries = random_queries(&sorted, 64, AggKind::Sum, 1_000, 5);
        group.bench_with_input(BenchmarkId::from_parameter(parts), &queries, |b, qs| {
            let mut i = 0;
            b.iter(|| {
                let q = &qs[i % qs.len()];
                i += 1;
                std::hint::black_box(mcf(pass.tree(), q, true));
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_estimate, bench_mcf);
criterion_main!(benches);
