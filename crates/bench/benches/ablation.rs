//! Ablation study of PASS's design choices (the Section 3.4 optimizations
//! and the partitioning objective), beyond the paper's own figures:
//!
//! * 0-variance rule on/off — AVG accuracy and skip rate on data with
//!   constant regions (Intel nights);
//! * delta-encoded samples on/off — storage vs. accuracy;
//! * partitioning strategy — ADP vs hill-climbing vs equal-depth vs
//!   equal-width under one fixed budget.
//!
//! Every variant is one [`PassSpec`] knob flipped; each panel is a
//! [`Session`] of named variants evaluated by one `run_workload_all`.

use pass::{EngineSpec, Session};
use pass_bench::{emit_json, mb, pct, print_table, Scale};
use pass_common::{AggKind, PartitionStrategy, PassSpec};
use pass_table::datasets::DatasetId;
use pass_table::SortedTable;
use pass_workload::{random_queries, WorkloadSummary};

const PARTITIONS: usize = 64;
const SAMPLE_RATE: f64 = 0.005;

fn main() {
    let scale = Scale::from_env();
    println!(
        "Ablation study (scale={}, {} queries/workload, k={PARTITIONS}, rate=0.5%)",
        scale.label, scale.queries
    );
    let mut all = Vec::<WorkloadSummary>::new();

    // --- 0-variance rule: AVG queries on the adversarial dataset, whose
    // 87.5% constant-zero prefix guarantees zero-variance leaves (constant
    // runs must exceed leaf spans for the rule to bind at all).
    let adv = scale.adversarial();
    let sorted = SortedTable::from_table(&adv, 0);
    let queries = random_queries(
        &sorted,
        scale.queries,
        AggKind::Avg,
        (adv.n_rows() / 200).max(10),
        scale.seed,
    );
    // Equal-depth partitioning: its leaves sit fully inside the constant
    // region, so the rule has constant partitions to fire on. (ADP's
    // sampled boundary drags a few tail rows into the zero leaf, which
    // already suppresses the rule — an interaction worth knowing.)
    let zero_var_spec = |rule: bool| {
        EngineSpec::Pass(PassSpec {
            partitions: PARTITIONS,
            sample_rate: SAMPLE_RATE,
            strategy: PartitionStrategy::EqualDepth,
            zero_variance_rule: rule,
            seed: scale.seed,
            ..PassSpec::default()
        })
    };
    let labels = ["0-variance rule ON", "0-variance rule OFF"];
    let session = Session::with_engines(
        adv,
        &[
            (labels[0], zero_var_spec(true)),
            (labels[1], zero_var_spec(false)),
        ],
    )
    .expect("variants build");
    let mut rows = Vec::new();
    for (label, mut s) in labels.iter().zip(session.run_workload_all(&queries)) {
        rows.push(vec![
            label.to_string(),
            pct(s.median_relative_error),
            pct(s.median_ci_ratio),
            format!("{:.1}", s.mean_tuples_processed),
            format!("{:.4}", s.mean_skip_rate),
        ]);
        s.engine = label.to_string();
        all.push(s);
    }
    print_table(
        "Ablation A — 0-variance rule (AVG on adversarial data)",
        &[
            "variant",
            "median RE",
            "median CI",
            "mean tuples/query",
            "skip rate",
        ],
        &rows,
    );

    // --- Delta encoding: storage vs accuracy on NYC.
    let nyc = scale.dataset(DatasetId::NycTaxi);
    let sorted = SortedTable::from_table(&nyc, 0);
    let queries = random_queries(
        &sorted,
        scale.queries,
        AggKind::Sum,
        (nyc.n_rows() / 100).max(10),
        scale.seed,
    );
    let delta_spec = |delta: bool| {
        EngineSpec::Pass(PassSpec {
            partitions: PARTITIONS,
            sample_rate: 0.02,
            delta_encode: delta,
            seed: scale.seed,
            ..PassSpec::default()
        })
    };
    let labels = ["plain f64 samples", "delta-encoded (f32)"];
    let session = Session::with_engines(
        nyc,
        &[
            (labels[0], delta_spec(false)),
            (labels[1], delta_spec(true)),
        ],
    )
    .expect("variants build");
    let mut rows = Vec::new();
    for (label, mut s) in labels.iter().zip(session.run_workload_all(&queries)) {
        rows.push(vec![
            label.to_string(),
            mb(s.storage_bytes),
            pct(s.median_relative_error),
        ]);
        s.engine = label.to_string();
        all.push(s);
    }
    print_table(
        "Ablation B — delta-encoded samples (SUM on NYC, 2% rate)",
        &["variant", "storage", "median RE"],
        &rows,
    );

    // --- Partitioning strategies under one budget (SUM on Instacart).
    let insta = scale.dataset(DatasetId::Instacart);
    let sorted = SortedTable::from_table(&insta, 0);
    let queries = random_queries(
        &sorted,
        scale.queries,
        AggKind::Sum,
        (insta.n_rows() / 100).max(10),
        scale.seed,
    );
    let variants = [
        ("ADP (paper)", PartitionStrategy::Adp(AggKind::Sum)),
        ("hill climbing", PartitionStrategy::HillClimb),
        ("equal depth", PartitionStrategy::EqualDepth),
        ("equal width", PartitionStrategy::EqualWidth),
    ];
    let engines: Vec<(&str, EngineSpec)> = variants
        .iter()
        .map(|&(label, strategy)| {
            (
                label,
                EngineSpec::Pass(PassSpec {
                    partitions: PARTITIONS,
                    sample_rate: SAMPLE_RATE,
                    strategy,
                    seed: scale.seed,
                    ..PassSpec::default()
                }),
            )
        })
        .collect();
    let session = Session::with_engines(insta, &engines).expect("variants build");
    let mut rows = Vec::new();
    for ((label, _), mut s) in variants.iter().zip(session.run_workload_all(&queries)) {
        rows.push(vec![
            label.to_string(),
            pct(s.median_relative_error),
            pct(s.median_ci_ratio),
        ]);
        s.engine = label.to_string();
        all.push(s);
    }
    print_table(
        "Ablation C — partitioning strategy (SUM on Instacart)",
        &["strategy", "median RE", "median CI"],
        &rows,
    );

    emit_json("ablation", &scale, &all);
}
