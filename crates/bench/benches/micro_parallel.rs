//! Criterion micro-benchmarks for the parallel serving layer: a 4k-query
//! batch answered through `estimate_many_parallel` at 1/2/4/8 worker
//! threads against the sequential `estimate_many` baseline, plus
//! concurrent `SessionHandle` clones hammering one shared synopsis.
//!
//! The acceptance target (≥2× throughput at 4 threads over sequential on
//! a 4k batch) is hardware-dependent: the parallel path shards perfectly
//! over an immutable synopsis, so on a ≥4-core machine the sweep shows
//! near-linear scaling; on a single-core container the 1-thread row
//! (which takes the sequential path) is the floor and the sweep documents
//! the scheduling overhead instead.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use pass::{EngineSpec, Session, ThreadPool};
use pass_common::{AggKind, PassSpec, Query, Synopsis};
use pass_core::Pass;
use pass_table::datasets::DatasetId;
use pass_table::SortedTable;
use pass_workload::random_queries;

const BATCH: usize = 4_096;

fn pass_spec(partitions: usize, seed: u64) -> PassSpec {
    PassSpec {
        partitions,
        sample_rate: 0.005,
        seed,
        ..PassSpec::default()
    }
}

fn fixture() -> (Pass, Vec<Query>) {
    let table = DatasetId::NycTaxi.generate(200_000, 7);
    let sorted = SortedTable::from_table(&table, 0);
    let pass = Pass::from_spec(&table, &pass_spec(256, 7)).unwrap();
    let queries = random_queries(&sorted, BATCH, AggKind::Sum, 2_000, 11);
    (pass, queries)
}

/// The headline sweep: one 4k-query batch, sequential vs. 1/2/4/8 workers.
fn bench_parallel_sweep(c: &mut Criterion) {
    let (pass, queries) = fixture();
    let mut group = c.benchmark_group(format!("pass_parallel_{BATCH}q"));
    group.sample_size(10);

    group.bench_function("estimate_many_sequential", |b| {
        b.iter(|| black_box(pass.estimate_many(&queries)));
    });
    for threads in [1usize, 2, 4, 8] {
        let pool = ThreadPool::new(threads);
        group.bench_with_input(
            BenchmarkId::new("estimate_many_parallel", threads),
            &pool,
            |b, pool| {
                b.iter(|| black_box(pass.estimate_many_parallel(&queries, pool)));
            },
        );
    }
    group.finish();
}

/// Concurrent sessions: N `SessionHandle` clones answering disjoint
/// shards of the batch from their own threads, all against one shared
/// immutable synopsis (the cache is sized below the batch so the bench
/// measures engine work, not cache hits).
fn bench_concurrent_handles(c: &mut Criterion) {
    let table = DatasetId::NycTaxi.generate(200_000, 7);
    let sorted = SortedTable::from_table(&table, 0);
    let queries = random_queries(&sorted, BATCH, AggKind::Sum, 2_000, 11);
    let mut session = Session::new(table).with_cache_capacity(1);
    session
        .add_engine("pass", &EngineSpec::Pass(pass_spec(256, 7)))
        .unwrap();
    let handle = session.handle("pass").unwrap();

    let mut group = c.benchmark_group(format!("session_handles_{BATCH}q"));
    group.sample_size(10);
    for sessions in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("concurrent_handles", sessions),
            &sessions,
            |b, &sessions| {
                let shard = queries.len() / sessions;
                b.iter(|| {
                    std::thread::scope(|scope| {
                        for chunk in queries.chunks(shard) {
                            let worker = handle.clone();
                            scope.spawn(move || black_box(worker.estimate_many(chunk)));
                        }
                    });
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_parallel_sweep, bench_concurrent_handles);
criterion_main!(benches);
