//! Table 3: preprocessing cost, mean/max query latency, and median
//! relative error as a function of the partition count k on the NYC Taxi
//! dataset (Section 5.4.2).
//!
//! One [`Session`] holds the whole k-sweep: each k is a named engine
//! (`k=4` ... `k=128`) declared as an [`EngineSpec`], and one
//! `run_workload_all` call evaluates the sweep with a shared truth pass.

use pass::{EngineSpec, Session};
use pass_bench::{emit_json, pct, print_table, Scale};
use pass_common::{AggKind, PassSpec};
use pass_table::datasets::DatasetId;
use pass_table::SortedTable;
use pass_workload::{random_queries, WorkloadSummary};

const K_SWEEP: [usize; 6] = [4, 8, 16, 32, 64, 128];
const SAMPLE_RATE: f64 = 0.005;

fn main() {
    let scale = Scale::from_env();
    let table = scale.dataset(DatasetId::NycTaxi);
    let n = table.n_rows();
    println!(
        "Table 3 reproduction (scale={}, NYC n={n}, {} SUM queries)",
        scale.label, scale.queries
    );
    let sorted = SortedTable::from_table(&table, 0);
    let queries = random_queries(
        &sorted,
        scale.queries,
        AggKind::Sum,
        (n / 100).max(10),
        scale.seed,
    );

    // The paper uses an optimization sample rate of 0.0025% on 7.7M rows
    // (~192 samples); keep the absolute sample size comparable at ci scale.
    let opt_samples = ((n as f64) * 0.000025).round().max(192.0) as usize;

    let engines: Vec<(String, EngineSpec)> = K_SWEEP
        .into_iter()
        .map(|k| {
            (
                format!("k={k}"),
                EngineSpec::Pass(PassSpec {
                    partitions: k,
                    sample_rate: SAMPLE_RATE,
                    opt_samples,
                    seed: scale.seed,
                    ..PassSpec::default()
                }),
            )
        })
        .collect();
    let engine_refs: Vec<(&str, EngineSpec)> = engines
        .iter()
        .map(|(name, spec)| (name.as_str(), spec.clone()))
        .collect();
    let session = Session::with_engines(table, &engine_refs).expect("sweep builds");

    let mut all = Vec::<WorkloadSummary>::new();
    let mut rows = Vec::new();
    for (k, mut s) in K_SWEEP.into_iter().zip(session.run_workload_all(&queries)) {
        rows.push(vec![
            k.to_string(),
            format!("{:.2}s", s.build_ms / 1e3),
            format!("{:.3}ms", s.mean_latency_us / 1e3),
            format!("{:.3}ms", s.max_latency_us / 1e3),
            pct(s.median_relative_error),
        ]);
        s.engine = format!("PASS/k={k}");
        all.push(s);
    }
    print_table(
        "Table 3: preprocessing cost / latency / accuracy vs k (NYC Taxi)",
        &["k", "Cost", "Latency", "MaxLatency", "MedianRE"],
        &rows,
    );
    emit_json("table3", &scale, &all);
}
