//! Table 3: preprocessing cost, mean/max query latency, and median
//! relative error as a function of the partition count k on the NYC Taxi
//! dataset (Section 5.4.2).

use pass_bench::{emit_json, pct, print_table, timed, Scale};
use pass_common::AggKind;
use pass_core::PassBuilder;
use pass_table::datasets::DatasetId;
use pass_table::SortedTable;
use pass_workload::{random_queries, run_workload, Truth, WorkloadSummary};

const K_SWEEP: [usize; 6] = [4, 8, 16, 32, 64, 128];
const SAMPLE_RATE: f64 = 0.005;

fn main() {
    let scale = Scale::from_env();
    let table = scale.dataset(DatasetId::NycTaxi);
    let n = table.n_rows();
    println!(
        "Table 3 reproduction (scale={}, NYC n={n}, {} SUM queries)",
        scale.label, scale.queries
    );
    let sorted = SortedTable::from_table(&table, 0);
    let truth = Truth::new(&table);
    let queries = random_queries(
        &sorted,
        scale.queries,
        AggKind::Sum,
        (n / 100).max(10),
        scale.seed,
    );
    let truths: Vec<Option<f64>> = queries.iter().map(|q| truth.eval(q)).collect();

    // The paper uses an optimization sample rate of 0.0025% on 7.7M rows
    // (~192 samples); keep the absolute sample size comparable at ci scale.
    let opt_samples = ((n as f64) * 0.000025).round().max(192.0) as usize;

    let mut all = Vec::<WorkloadSummary>::new();
    let mut rows = Vec::new();
    for k in K_SWEEP {
        let (pass, build_ms) = timed(|| {
            PassBuilder::new()
                .partitions(k)
                .sample_rate(SAMPLE_RATE)
                .opt_samples(opt_samples)
                .seed(scale.seed)
                .build(&table)
                .unwrap()
        });
        let (mut s, _) = run_workload(&pass, &queries, &truth, Some(&truths));
        s.build_ms = build_ms;
        rows.push(vec![
            k.to_string(),
            format!("{:.2}s", build_ms / 1e3),
            format!("{:.3}ms", s.mean_latency_us / 1e3),
            format!("{:.3}ms", s.max_latency_us / 1e3),
            pct(s.median_relative_error),
        ]);
        s.engine = format!("PASS/k={k}");
        all.push(s);
    }
    print_table(
        "Table 3: preprocessing cost / latency / accuracy vs k (NYC Taxi)",
        &["k", "Cost", "Latency", "MaxLatency", "MedianRE"],
        &rows,
    );
    emit_json("table3", &scale, &all);
}
