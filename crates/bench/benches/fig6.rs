//! Figure 6: ADP vs equal-depth partitioning (EQ) on the synthetic
//! adversarial dataset — median CI ratio for random queries over the whole
//! dataset and for challenging queries over the volatile tail, across
//! partition counts {4..128}.
//!
//! Both strategies are PASS engines differing only in their
//! [`PassSpec::strategy`], declared through one [`Session`].

use pass::{EngineSpec, Session};
use pass_bench::{emit_json, pct, print_table, Scale};
use pass_common::{AggKind, PartitionStrategy, PassSpec};
use pass_table::datasets::tail_start;
use pass_table::SortedTable;
use pass_workload::{random_queries, random_queries_in, WorkloadSummary};

const PARTITION_SWEEP: [usize; 6] = [4, 8, 16, 32, 64, 128];
const SAMPLE_RATE: f64 = 0.005;

fn main() {
    let scale = Scale::from_env();
    let table = scale.adversarial();
    let n = table.n_rows();
    println!(
        "Figure 6 reproduction (scale={}, adversarial n={n}, {} queries/workload)",
        scale.label, scale.queries
    );
    let sorted = SortedTable::from_table(&table, 0);
    let mut all = Vec::<WorkloadSummary>::new();

    let random = random_queries(
        &sorted,
        scale.queries,
        AggKind::Sum,
        (n / 100).max(10),
        scale.seed,
    );
    // Challenging workload: queries confined to the normal-distributed tail.
    let tail = tail_start(n);
    let challenging = random_queries_in(
        &sorted,
        tail..n,
        scale.queries,
        AggKind::Sum,
        ((n - tail) / 50).max(5),
        scale.seed + 1,
    );
    let mut session = Session::new(table);

    let strategy_spec = |name: &str, strategy: PartitionStrategy, parts: usize| {
        EngineSpec::Pass(PassSpec {
            partitions: parts,
            sample_rate: SAMPLE_RATE,
            strategy,
            seed: scale.seed,
            name: Some(name.to_owned()),
            ..PassSpec::default()
        })
    };

    for (wl_name, queries) in [
        ("Random Queries", &random),
        ("Challenging Queries", &challenging),
    ] {
        let mut rows = Vec::new();
        for parts in PARTITION_SWEEP {
            session
                .add_engine(
                    "ADP",
                    &strategy_spec("ADP", PartitionStrategy::Adp(AggKind::Sum), parts),
                )
                .unwrap();
            session
                .add_engine(
                    "EQ",
                    &strategy_spec("EQ", PartitionStrategy::EqualDepth, parts),
                )
                .unwrap();
            let mut row = vec![parts.to_string()];
            for mut s in session.run_workload_all(queries) {
                row.push(pct(s.median_ci_ratio));
                s.engine = format!("{}/{}/k={}", s.engine, wl_name, parts);
                all.push(s);
            }
            rows.push(row);
        }
        print_table(
            &format!("Figure 6 — {wl_name}: median CI ratio vs #partitions"),
            &["#partitions", "ADP", "EQ"],
            &rows,
        );
    }
    emit_json("fig6", &scale, &all);
}
