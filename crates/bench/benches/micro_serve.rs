//! Criterion micro-benchmarks for the async serving front-end
//! (`pass::Serve`): sustained submit→wait round-trips at 1/2/4 workers,
//! the coalescing win (many small queued requests executed as few
//! engine batches), and a saturation sweep that drives a small queue
//! past capacity to measure admission-control overhead and report the
//! shed rate plus p50/p99 latency.
//!
//! Unlike `micro_parallel` (which measures raw batch execution), this
//! bench measures the serving tier itself: queueing, ticket round-trips,
//! and load shedding. On a single-core container the absolute numbers
//! compress, but the *shape* — coalesced ≫ one-request-per-batch, and
//! rejection costing far less than execution — holds everywhere.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use pass::{EngineSpec, ServeConfig, Session, SubmitOptions, Ticket};
use pass_common::{AggKind, PassSpec, Query, ServeOutcome};
use pass_table::datasets::DatasetId;
use pass_table::SortedTable;
use pass_workload::random_queries;

const REQUESTS: usize = 512;

fn fixture() -> (Session, Vec<Query>) {
    let table = DatasetId::NycTaxi.generate(100_000, 7);
    let sorted = SortedTable::from_table(&table, 0);
    let queries = random_queries(&sorted, REQUESTS, AggKind::Sum, 2_000, 11);
    // Cache capacity 1 so the bench measures serving + engine work, not
    // repeated-query cache hits.
    let mut session = Session::new(table).with_cache_capacity(1);
    session
        .add_engine(
            "pass",
            &EngineSpec::Pass(PassSpec {
                partitions: 128,
                sample_rate: 0.005,
                seed: 7,
                ..PassSpec::default()
            }),
        )
        .unwrap();
    (session, queries)
}

/// Submit-and-wait round trips: 512 single-query requests through the
/// serving front-end at 1/2/4 workers (each iteration spins up a fresh
/// server so queue state never leaks between samples).
fn bench_serve_roundtrip(c: &mut Criterion) {
    let (session, queries) = fixture();
    let mut group = c.benchmark_group(format!("serve_roundtrip_{REQUESTS}q"));
    group.sample_size(10);
    for workers in [1usize, 2, 4] {
        group.bench_with_input(
            BenchmarkId::new("submit_wait", workers),
            &workers,
            |b, &workers| {
                b.iter(|| {
                    let serve = session
                        .serve(
                            "pass",
                            ServeConfig::new()
                                .with_workers(workers)
                                .with_queue_depth(REQUESTS),
                        )
                        .unwrap();
                    let tickets: Vec<Ticket> = queries.iter().map(|q| serve.submit(q)).collect();
                    for t in &tickets {
                        black_box(t.wait());
                    }
                    serve.shutdown()
                });
            },
        );
    }
    group.finish();
}

/// The coalescing win: queue 512 single-query requests behind a paused
/// worker, then release it — the worker glues them into
/// `coalesce_max`-sized `estimate_many` batches. Sweeping the cap shows
/// the batched fast path engaging (cap 1 ≈ per-query serving; cap 256
/// ≈ two engine batches for the whole queue).
fn bench_serve_coalescing(c: &mut Criterion) {
    let (session, queries) = fixture();
    let mut group = c.benchmark_group(format!("serve_coalesce_{REQUESTS}q"));
    group.sample_size(10);
    for cap in [1usize, 16, 64, 256] {
        group.bench_with_input(BenchmarkId::new("coalesce_max", cap), &cap, |b, &cap| {
            b.iter(|| {
                let serve = session
                    .serve(
                        "pass",
                        ServeConfig::new()
                            .with_workers(1)
                            .with_queue_depth(REQUESTS)
                            .with_coalesce_max(cap)
                            .paused(),
                    )
                    .unwrap();
                let tickets: Vec<Ticket> = queries.iter().map(|q| serve.submit(q)).collect();
                serve.resume();
                for t in &tickets {
                    black_box(t.wait());
                }
                serve.shutdown()
            });
        });
    }
    group.finish();
}

/// Saturation: 8 client threads hammer a queue of depth 32 with mixed
/// interactive/bulk traffic. Reports (via the final stats printed once)
/// the shed rate and p50/p99 — the admission-control numbers a capacity
/// planner actually reads.
fn bench_serve_saturation(c: &mut Criterion) {
    let (session, queries) = fixture();
    let mut group = c.benchmark_group("serve_saturation");
    group.sample_size(10);
    group.bench_function("8_clients_depth_32", |b| {
        b.iter(|| {
            let serve = session
                .serve(
                    "pass",
                    ServeConfig::new().with_workers(2).with_queue_depth(32),
                )
                .unwrap();
            std::thread::scope(|s| {
                for t in 0..8 {
                    let serve = &serve;
                    let queries = &queries;
                    s.spawn(move || {
                        for (i, q) in queries.iter().enumerate().take(64) {
                            let opts = if (t + i) % 4 == 0 {
                                SubmitOptions::interactive()
                            } else {
                                SubmitOptions::bulk()
                            };
                            let ticket = serve.submit_with(std::slice::from_ref(q), &opts);
                            match ticket.wait() {
                                ServeOutcome::Done(r) => {
                                    black_box(r);
                                }
                                ServeOutcome::Rejected => {}
                                other => panic!("unexpected {other:?}"),
                            }
                        }
                    });
                }
            });
            serve.shutdown()
        });
    });
    group.finish();

    // One representative saturated run, stats printed for the record.
    let serve = session
        .serve(
            "pass",
            ServeConfig::new().with_workers(2).with_queue_depth(32),
        )
        .unwrap();
    std::thread::scope(|s| {
        for _ in 0..8 {
            let serve = &serve;
            let queries = &queries;
            s.spawn(move || {
                for q in queries.iter().take(64) {
                    let _ = serve.submit(q).wait();
                }
            });
        }
    });
    let stats = serve.shutdown();
    println!(
        "serve_saturation: accepted {} rejected {} completed {} batches {} \
         high-water {}/{} p50 {}us p99 {}us",
        stats.accepted,
        stats.rejected,
        stats.completed,
        stats.batches,
        stats.queue_high_water,
        stats.queue_capacity,
        stats.p50_latency_us,
        stats.p99_latency_us
    );
}

criterion_group!(
    benches,
    bench_serve_roundtrip,
    bench_serve_coalescing,
    bench_serve_saturation
);
criterion_main!(benches);
