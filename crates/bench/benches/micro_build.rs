//! Criterion micro-benchmarks for offline construction: the ADP optimizer
//! against equal-depth partitioning, and the full PASS build.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use pass_common::{AggKind, PartitionStrategy, PassSpec};
use pass_core::Pass;
use pass_partition::{Adp, EqualDepth, Partitioner1D};
use pass_table::datasets::DatasetId;
use pass_table::SortedTable;

fn bench_partitioners(c: &mut Criterion) {
    let table = DatasetId::NycTaxi.generate(200_000, 13);
    let sorted = SortedTable::from_table(&table, 0);
    let mut group = c.benchmark_group("partition_200k_k64");
    group.sample_size(20);

    for m in [1_024usize, 4_096, 16_384] {
        let adp = Adp::new(AggKind::Sum).with_samples(m);
        group.bench_with_input(BenchmarkId::new("ADP(sum)", m), &sorted, |b, s| {
            b.iter(|| std::hint::black_box(adp.partition(s, 64).unwrap()));
        });
        let adp_avg = Adp::new(AggKind::Avg).with_samples(m);
        group.bench_with_input(BenchmarkId::new("ADP(avg)", m), &sorted, |b, s| {
            b.iter(|| std::hint::black_box(adp_avg.partition(s, 64).unwrap()));
        });
    }
    group.bench_with_input(BenchmarkId::new("EQ", 0), &sorted, |b, s| {
        b.iter(|| std::hint::black_box(EqualDepth.partition(s, 64).unwrap()));
    });
    group.finish();
}

fn bench_full_build(c: &mut Criterion) {
    let table = DatasetId::Intel.generate(120_000, 17);
    let mut group = c.benchmark_group("pass_build_120k");
    group.sample_size(10);
    for (name, strategy) in [
        ("ADP", PartitionStrategy::Adp(AggKind::Sum)),
        ("EQ", PartitionStrategy::EqualDepth),
    ] {
        let spec = PassSpec {
            partitions: 64,
            sample_rate: 0.005,
            strategy,
            seed: 17,
            ..PassSpec::default()
        };
        group.bench_with_input(BenchmarkId::from_parameter(name), &table, |b, t| {
            b.iter(|| std::hint::black_box(Pass::from_spec(t, &spec).unwrap()));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_partitioners, bench_full_build);
criterion_main!(benches);
