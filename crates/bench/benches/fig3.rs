//! Figure 3: median relative error of random SUM queries vs the number of
//! partitions {4..128}, fixed 0.5% sample rate, on the three datasets.

use pass_baselines::{AqpPlusPlus, StratifiedSynopsis, UniformSynopsis};
use pass_bench::{emit_json, pct, print_table, Scale};
use pass_common::{AggKind, Synopsis};
use pass_core::PassBuilder;
use pass_table::datasets::DatasetId;
use pass_table::SortedTable;
use pass_workload::{random_queries, run_workload, Truth, WorkloadSummary};

const PARTITION_SWEEP: [usize; 6] = [4, 8, 16, 32, 64, 128];
const SAMPLE_RATE: f64 = 0.005;

fn main() {
    let scale = Scale::from_env();
    println!(
        "Figure 3 reproduction (scale={}, {} SUM queries, rate=0.5%)",
        scale.label, scale.queries
    );
    let mut all = Vec::<WorkloadSummary>::new();

    for id in DatasetId::ALL {
        let table = scale.dataset(id);
        let sorted = SortedTable::from_table(&table, 0);
        let truth = Truth::new(&table);
        let n = table.n_rows();
        let base_k = ((n as f64) * SAMPLE_RATE).ceil() as usize;
        let queries = random_queries(
            &sorted,
            scale.queries,
            AggKind::Sum,
            (n / 100).max(10),
            scale.seed,
        );
        let truths: Vec<Option<f64>> = queries.iter().map(|q| truth.eval(q)).collect();

        // US has no partitioning knob: one flat series value.
        let us = UniformSynopsis::build(&table, base_k, scale.seed).unwrap();
        let (us_summary, _) = run_workload(&us, &queries, &truth, Some(&truths));

        let mut rows = Vec::new();
        for parts in PARTITION_SWEEP {
            let pass = PassBuilder::new()
                .partitions(parts)
                .sample_rate(SAMPLE_RATE)
                .seed(scale.seed)
                .build(&table)
                .unwrap();
            let st = StratifiedSynopsis::build(&table, parts, base_k, scale.seed).unwrap();
            let aqp = AqpPlusPlus::build(&table, parts, base_k, scale.seed).unwrap();
            let mut row = vec![parts.to_string()];
            for engine in [&pass as &dyn Synopsis, &us, &st, &aqp] {
                let (mut s, _) = run_workload(engine, &queries, &truth, Some(&truths));
                row.push(pct(s.median_relative_error));
                s.engine = format!("{}/{}/k={}", s.engine, id, parts);
                all.push(s);
            }
            rows.push(row);
        }
        print_table(
            &format!(
                "Figure 3 — {id}: median relative error vs #partitions (US flat at {})",
                pct(us_summary.median_relative_error)
            ),
            &["#partitions", "PASS", "US", "ST", "AQP++"],
            &rows,
        );
    }
    emit_json("fig3", &scale, &all);
}
