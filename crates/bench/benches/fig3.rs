//! Figure 3: median relative error of random SUM queries vs the number of
//! partitions {4..128}, fixed 0.5% sample rate, on the three datasets.
//!
//! One [`Session`] per dataset; the sweep re-declares the partitioned
//! engines per point (replace-by-name, which also replaces their caches)
//! while US stays fixed. US's query cache is cleared each point instead:
//! the workload repeats identically across the sweep, and without the
//! reset the per-point US latency/throughput columns would measure cache
//! lookups rather than the engine.

use pass::{EngineSpec, Session};
use pass_bench::{emit_json, pct, print_table, Scale};
use pass_common::{AggKind, PassSpec};
use pass_table::datasets::DatasetId;
use pass_table::SortedTable;
use pass_workload::{random_queries, WorkloadSummary};

const PARTITION_SWEEP: [usize; 6] = [4, 8, 16, 32, 64, 128];
const SAMPLE_RATE: f64 = 0.005;

fn main() {
    let scale = Scale::from_env();
    println!(
        "Figure 3 reproduction (scale={}, {} SUM queries, rate=0.5%)",
        scale.label, scale.queries
    );
    let mut all = Vec::<WorkloadSummary>::new();

    for id in DatasetId::ALL {
        let table = scale.dataset(id);
        let sorted = SortedTable::from_table(&table, 0);
        let n = table.n_rows();
        let base_k = ((n as f64) * SAMPLE_RATE).ceil() as usize;
        let queries = random_queries(
            &sorted,
            scale.queries,
            AggKind::Sum,
            (n / 100).max(10),
            scale.seed,
        );

        // US has no partitioning knob: one flat series value.
        let mut session = Session::new(table);
        session
            .add_engine("US", &EngineSpec::uniform(base_k).with_seed(scale.seed))
            .unwrap();
        let (us_summary, _) = session.run_workload("US", &queries).unwrap();
        {
            let mut s = us_summary.clone();
            s.engine = format!("US/{id}");
            all.push(s);
        }

        let mut rows = Vec::new();
        for parts in PARTITION_SWEEP {
            session.clear_cache("US").unwrap();
            session
                .add_engine(
                    "PASS",
                    &EngineSpec::Pass(PassSpec {
                        partitions: parts,
                        sample_rate: SAMPLE_RATE,
                        seed: scale.seed,
                        ..PassSpec::default()
                    }),
                )
                .unwrap();
            session
                .add_engine(
                    "ST",
                    &EngineSpec::stratified(parts, base_k).with_seed(scale.seed),
                )
                .unwrap();
            session
                .add_engine(
                    "AQP++",
                    &EngineSpec::aqppp(parts, base_k).with_seed(scale.seed),
                )
                .unwrap();
            let mut row = vec![parts.to_string()];
            for name in ["PASS", "US", "ST", "AQP++"] {
                let (mut s, _) = session.run_workload(name, &queries).unwrap();
                row.push(pct(s.median_relative_error));
                s.engine = format!("{}/{}/k={}", s.engine, id, parts);
                all.push(s);
            }
            rows.push(row);
        }
        print_table(
            &format!(
                "Figure 3 — {id}: median relative error vs #partitions (US flat at {})",
                pct(us_summary.median_relative_error)
            ),
            &["#partitions", "PASS", "US", "ST", "AQP++"],
            &rows,
        );
    }
    emit_json("fig3", &scale, &all);
}
