//! Table 2: end-to-end comparison of PASS-BSS{1x,2x,10x} with
//! VerdictDB-style (10% / 100% scrambles) and DeepDB-style (10% / 100%
//! training) engines: mean latency, storage, construction time, and median
//! relative error across the 1-D workloads and the NYC 2D–5D templates.
//!
//! All seven engines are declared as [`EngineSpec`]s and run through one
//! [`Session`] per workload.

use pass::{EngineSpec, Session};
use pass_bench::{emit_json, mb, pct, print_table, Scale};
use pass_common::{AggKind, PassSpec};
use pass_table::datasets::DatasetId;
use pass_table::{SortedTable, Table};
use pass_workload::{random_queries, template_queries, WorkloadSummary};

const SAMPLE_RATE: f64 = 0.005;
const PARTITIONS: usize = 64;

struct EngineStats {
    latency_us: Vec<f64>,
    storage: Vec<usize>,
    build_ms: Vec<f64>,
    errors: Vec<f64>, // per workload, in workload order
}

impl EngineStats {
    fn new() -> Self {
        Self {
            latency_us: Vec::new(),
            storage: Vec::new(),
            build_ms: Vec::new(),
            errors: Vec::new(),
        }
    }
}

fn main() {
    let scale = Scale::from_env();
    println!(
        "Table 2 reproduction (scale={}, {} queries/workload)",
        scale.label,
        scale.md_queries()
    );
    let engine_names = [
        "PASS-BSS1x",
        "PASS-BSS2x",
        "PASS-BSS10x",
        "VerdictDB-10%",
        "VerdictDB-100%",
        "DeepDB-10%",
        "DeepDB-100%",
    ];
    let mut stats: Vec<EngineStats> = (0..engine_names.len())
        .map(|_| EngineStats::new())
        .collect();
    let mut all = Vec::<WorkloadSummary>::new();

    // Workloads: three 1-D datasets + NYC 2D..5D templates.
    let taxi = scale.taxi_full();
    let mut workloads: Vec<(String, Table)> = DatasetId::ALL
        .into_iter()
        .map(|id| (id.name().to_string(), scale.dataset(id)))
        .collect();
    for d in 2..=5usize {
        let dims: Vec<usize> = (1..=d).collect();
        workloads.push((format!("NYC-{d}D"), taxi.project(&dims).unwrap()));
    }

    for (wl_name, table) in &workloads {
        let n = table.n_rows();
        let queries = if table.dims() == 1 {
            let sorted = SortedTable::from_table(table, 0);
            random_queries(
                &sorted,
                scale.md_queries(),
                AggKind::Sum,
                (n / 100).max(10),
                scale.seed,
            )
        } else {
            template_queries(table, scale.md_queries(), AggKind::Sum, scale.seed)
        };
        let base_k = ((n as f64) * SAMPLE_RATE).ceil() as usize;

        let pass_bss = |name: &str, mult: usize| {
            EngineSpec::Pass(PassSpec {
                partitions: PARTITIONS,
                total_samples: Some(mult * base_k),
                seed: scale.seed,
                name: Some(name.to_owned()),
                ..PassSpec::default()
            })
        };
        let session = Session::with_engines(
            table.clone(),
            &[
                ("PASS-BSS1x", pass_bss("PASS-BSS1x", 1)),
                ("PASS-BSS2x", pass_bss("PASS-BSS2x", 2)),
                ("PASS-BSS10x", pass_bss("PASS-BSS10x", 10)),
                (
                    "VerdictDB-10%",
                    EngineSpec::verdict(0.1).with_seed(scale.seed),
                ),
                (
                    "VerdictDB-100%",
                    EngineSpec::verdict(1.0).with_seed(scale.seed),
                ),
                ("DeepDB-10%", EngineSpec::spn(0.1).with_seed(scale.seed)),
                ("DeepDB-100%", EngineSpec::spn(1.0).with_seed(scale.seed)),
            ],
        )
        .expect("all engines build");

        for (idx, mut summary) in session.run_workload_all(&queries).into_iter().enumerate() {
            stats[idx].latency_us.push(summary.mean_latency_us);
            stats[idx].storage.push(summary.storage_bytes);
            stats[idx].build_ms.push(summary.build_ms);
            stats[idx].errors.push(summary.median_relative_error);
            summary.engine = format!("{}/{}", engine_names[idx], wl_name);
            all.push(summary);
        }
    }

    let mut rows = Vec::new();
    for (idx, name) in engine_names.iter().enumerate() {
        let st = &stats[idx];
        let nwl = st.errors.len() as f64;
        let mut row = vec![
            name.to_string(),
            format!("{:.2}ms", st.latency_us.iter().sum::<f64>() / nwl / 1e3),
            mb((st.storage.iter().sum::<usize>() as f64 / nwl) as usize),
            format!("{:.2}s", st.build_ms.iter().sum::<f64>() / nwl / 1e3),
        ];
        row.extend(st.errors.iter().map(|&e| pct(e)));
        rows.push(row);
    }
    let mut headers: Vec<String> = vec![
        "Approach".into(),
        "Latency".into(),
        "Storage".into(),
        "Time".into(),
    ];
    headers.extend(workloads.iter().map(|(n, _)| n.clone()));
    let header_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    print_table(
        "Table 2: mean cost and median relative error per workload",
        &header_refs,
        &rows,
    );
    emit_json("table2", &scale, &all);
}
