//! Figure 9: workload shift — the aggregates built for the 2-D template
//! (Q2) answer query templates Q1–Q5. KD-PASS can still skip aggressively
//! via the shared attributes; KD-US's precomputed aggregates degrade.
//!
//! Left panel: median CI ratio of KD-PASS vs KD-US; right panel: KD-PASS
//! skip rate (Section 5.4.1). Both shifted builds are declared via
//! `tree_dims` in their [`EngineSpec`]s and run through one [`Session`].

use pass::{EngineSpec, Session};
use pass_bench::{emit_json, pct, print_table, Scale};
use pass_common::{AggKind, PassSpec};
use pass_workload::{template_queries_partial, WorkloadSummary};

const SAMPLE_RATE: f64 = 0.005;

fn main() {
    let scale = Scale::from_env();
    let leaves = if scale.label == "paper" { 1024 } else { 256 };
    // The full 5-predicate template table (taxi dims 1..=5).
    let table = scale.taxi_full().project(&[1, 2, 3, 4, 5]).unwrap();
    println!(
        "Figure 9 reproduction (scale={}, n={}, {} queries/template, {leaves} leaves, 2D tree)",
        scale.label,
        table.n_rows(),
        scale.md_queries()
    );
    let base_k = ((table.n_rows() as f64) * SAMPLE_RATE).ceil() as usize;

    // Both synopses index only the Q2 attributes (dims 0 and 1 of this
    // table) but sample in full 5-predicate arity.
    let session = Session::with_engines(
        table,
        &[
            (
                "KD-PASS",
                EngineSpec::Pass(PassSpec {
                    partitions: leaves,
                    sample_rate: SAMPLE_RATE,
                    tree_dims: Some(vec![0, 1]),
                    seed: scale.seed,
                    name: Some("KD-PASS".to_owned()),
                    ..PassSpec::default()
                }),
            ),
            (
                "KD-US",
                EngineSpec::AqpPlusPlus {
                    partitions: leaves,
                    k: base_k,
                    seed: scale.seed,
                    tree_dims: Some(vec![0, 1]),
                },
            ),
        ],
    )
    .expect("shifted engines build");

    let mut all = Vec::<WorkloadSummary>::new();
    let mut ci_rows = Vec::new();
    let mut skip_rows = Vec::new();
    for dims in 1..=5usize {
        let queries = template_queries_partial(
            session.table(),
            dims,
            scale.md_queries(),
            AggKind::Avg,
            scale.seed,
        );
        let mut summaries = session.run_workload_all(&queries).into_iter();
        let mut s_pass = summaries.next().unwrap();
        let mut s_us = summaries.next().unwrap();
        ci_rows.push(vec![
            format!("{dims}D"),
            pct(s_pass.median_ci_ratio),
            pct(s_us.median_ci_ratio),
        ]);
        skip_rows.push(vec![
            format!("{dims}D"),
            format!("{:.4}", s_pass.mean_skip_rate),
        ]);
        s_pass.engine = format!("KD-PASS(2D)/{dims}D");
        s_us.engine = format!("KD-US(2D)/{dims}D");
        all.push(s_pass);
        all.push(s_us);
    }

    print_table(
        "Figure 9 (left): median CI ratio, 2D aggregates answering Q1–Q5",
        &["template", "KD-PASS", "KD-US"],
        &ci_rows,
    );
    print_table(
        "Figure 9 (right): KD-PASS skip rate under workload shift",
        &["template", "skip rate"],
        &skip_rows,
    );
    emit_json("fig9", &scale, &all);
}
