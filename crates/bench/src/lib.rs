//! Shared harness for the paper-reproduction benchmarks.
//!
//! Every table and figure of the paper's Section 5 has its own bench
//! target (`cargo bench -p pass-bench --bench table1`, `--bench fig3`,
//! ...). Each prints the same rows/series the paper reports and drops a
//! JSON record under `target/bench-results/` for EXPERIMENTS.md.
//!
//! Two scales are supported via the `PASS_SCALE` environment variable:
//!
//! * `ci` (default) — reduced dataset sizes and query counts so the whole
//!   suite finishes in minutes on a laptop;
//! * `paper` — the paper's row counts (3M / 1.4M / 7.7M) and 2000-query
//!   workloads.
//!
//! The table *formats* are identical at both scales.

use std::io::Write as _;
use std::time::Instant;

use pass_common::Json;
use pass_table::datasets::DatasetId;
use pass_table::Table;
use pass_workload::WorkloadSummary;

/// Benchmark scale parameters.
#[derive(Debug, Clone, Copy)]
pub struct Scale {
    /// Label printed in headers ("ci" / "paper").
    pub label: &'static str,
    /// Fraction of the paper's dataset sizes to generate.
    pub rows_factor: f64,
    /// Queries per workload (paper: 2000; multi-d: 1000).
    pub queries: usize,
    /// Seed shared by every bench (tables regenerate identically).
    pub seed: u64,
}

impl Scale {
    /// Read the scale from `PASS_SCALE` (default `ci`).
    pub fn from_env() -> Self {
        match std::env::var("PASS_SCALE").as_deref() {
            Ok("paper") => Scale {
                label: "paper",
                rows_factor: 1.0,
                queries: 2_000,
                seed: 0xB135,
            },
            _ => Scale {
                label: "ci",
                rows_factor: 0.04,
                queries: 300,
                seed: 0xB135,
            },
        }
    }

    /// Row count for one of the three paper datasets at this scale.
    pub fn rows_for(&self, id: DatasetId) -> usize {
        ((id.paper_rows() as f64) * self.rows_factor)
            .round()
            .max(10_000.0) as usize
    }

    /// Generate a 1-D paper dataset at this scale.
    pub fn dataset(&self, id: DatasetId) -> Table {
        id.generate(self.rows_for(id), self.seed)
    }

    /// Generate the full multi-column taxi table at this scale.
    pub fn taxi_full(&self) -> Table {
        pass_table::datasets::taxi(self.rows_for(DatasetId::NycTaxi), self.seed)
    }

    /// The adversarial dataset (paper: 1M rows) at this scale. The ci
    /// floor is higher than for the real datasets: with 128 partitions and
    /// a 0.5% sampling rate, strata need enough rows that per-leaf samples
    /// keep a measurable variance (the quantity Figure 6 plots).
    pub fn adversarial(&self) -> Table {
        let rows = ((1_000_000.0 * self.rows_factor) as usize).max(250_000);
        pass_table::datasets::adversarial(rows, self.seed)
    }

    /// Multi-dimensional query count (paper: 1000).
    pub fn md_queries(&self) -> usize {
        (self.queries / 2).max(50)
    }
}

/// Run a closure, returning its output and the elapsed milliseconds.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64() * 1e3)
}

/// Print a fixed-width table with a title.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n=== {title} ===");
    let widths: Vec<usize> = headers
        .iter()
        .enumerate()
        .map(|(i, h)| {
            rows.iter()
                .map(|r| r.get(i).map_or(0, |c| c.len()))
                .chain(std::iter::once(h.len()))
                .max()
                .unwrap_or(0)
        })
        .collect();
    let line = |cells: Vec<String>| {
        let mut s = String::new();
        for (i, c) in cells.iter().enumerate() {
            s.push_str(&format!("{:<width$}  ", c, width = widths[i]));
        }
        println!("{}", s.trim_end());
    };
    line(headers.iter().map(|h| h.to_string()).collect());
    line(widths.iter().map(|w| "-".repeat(*w)).collect());
    for r in rows {
        line(r.clone());
    }
}

/// Format a relative error / ratio as a percentage with sensible digits.
pub fn pct(x: f64) -> String {
    if !x.is_finite() {
        return "n/a".into();
    }
    if x.abs() < 0.0001 {
        format!("{:.4}%", x * 100.0)
    } else if x.abs() < 0.01 {
        format!("{:.3}%", x * 100.0)
    } else {
        format!("{:.2}%", x * 100.0)
    }
}

/// Format bytes as MB.
pub fn mb(bytes: usize) -> String {
    format!("{:.2}MB", bytes as f64 / 1_048_576.0)
}

/// Write bench results as JSON for EXPERIMENTS.md assembly.
pub fn emit_json(bench: &str, scale: &Scale, summaries: &[WorkloadSummary]) {
    // Anchor at the workspace target dir regardless of the CWD cargo gives
    // bench binaries (package dir under `--workspace`, workspace root when
    // invoked with `-p`).
    let workspace_root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/bench has a workspace root");
    let dir = workspace_root.join("target/bench-results");
    let dir = dir.as_path();
    if std::fs::create_dir_all(dir).is_err() {
        return;
    }
    let path = dir.join(format!("{bench}.{}.json", scale.label));
    let Ok(mut file) = std::fs::File::create(&path) else {
        return;
    };
    let payload = Json::obj([
        ("bench", Json::from(bench)),
        ("scale", Json::from(scale.label)),
        (
            "results",
            Json::Arr(summaries.iter().map(WorkloadSummary::to_json).collect()),
        ),
    ]);
    let _ = writeln!(file, "{}", payload.pretty());
    println!("[results written to {}]", path.display());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ci_scale_defaults() {
        let s = Scale::from_env();
        assert_eq!(s.label, "ci");
        assert!(s.rows_for(DatasetId::Intel) >= 10_000);
        assert!(s.queries >= 50);
    }

    #[test]
    fn timed_measures() {
        let (v, ms) = timed(|| 2 + 2);
        assert_eq!(v, 4);
        assert!(ms >= 0.0);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(pct(0.05), "5.00%");
        assert_eq!(pct(0.0005), "0.050%");
        assert_eq!(mb(1_048_576), "1.00MB");
    }
}
