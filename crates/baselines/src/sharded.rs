//! A synopsis over one logical table partitioned across per-shard engines.
//!
//! [`ShardedSynopsis`] interprets an [`EngineSpec::Sharded`] spec: the
//! table is cut into disjoint shards by a
//! [`ShardPlan`] (`Table::split`), one inner
//! engine is built per shard — **concurrently**, on a
//! [`pass_common::ThreadPool`] — and at query time every shard answers a
//! mergeable [`PartialEstimate`] which
//! [`PartialEstimate::merge`] reduces to a single [`Estimate`].
//!
//! The statistical contract (pinned by `tests/sharded_contract.rs`):
//!
//! * **1-shard identity** — a single-shard plan is bit-identical to the
//!   unsharded engine for every aggregate (the merge of one partial is
//!   the shard's own estimate, verbatim).
//! * **COUNT/SUM additivity** — the merged point estimate is exactly the
//!   sum of the per-shard estimates (disjoint strata compose linearly),
//!   and the merged CI is the root-sum-square of the shard CIs
//!   (variances of independently built shards add), so it is at least as
//!   wide as every component.
//! * **Availability** — a shard that cannot match any tuple
//!   (`PassError::EmptyInput`) contributes zero to COUNT/SUM and is
//!   skipped for AVG/MIN/MAX, like an empty stratum in a stratified
//!   estimator; only if *no* shard can answer does the query fail. A
//!   merge that skipped a silent shard drops its hard bounds and
//!   exactness claim — the silent shard may hold unsampled matching
//!   rows the surviving shards' bounds know nothing about.
//!
//! Batch scheduling is **shard-outer / query-inner**: each shard answers
//! the whole (expanded) batch through its own `estimate_many`, keeping
//! the inner engine's batched-traversal wins (PASS reuses one MCF
//! scratch across the batch per shard). `estimate_many_parallel` fans
//! the *shards* out across the pool's workers when there are enough
//! shards to keep the pool busy, and otherwise runs each shard's own
//! parallel batch path over the whole pool. Both are element-wise
//! bit-identical to the sequential single-query path.

use std::sync::Arc;

use pass_common::rng::derive_seed;
use pass_common::{
    apply_group_availability, AggKind, EngineSpec, Estimate, GroupByQuery, GroupBySnapshot,
    GroupResult, PartialEstimate, PassError, Query, Result, ShardPlan, Synopsis, ThreadPool,
    LAMBDA_99, PARALLEL_MIN_BATCH,
};
use pass_table::Table;

use crate::Engine;

/// K per-shard engines over disjoint partitions of one logical table,
/// merged behind the ordinary [`Synopsis`] contract.
pub struct ShardedSynopsis {
    pub(crate) shards: Vec<Arc<dyn Synopsis>>,
    pub(crate) plan: ShardPlan,
    pub(crate) inner_spec: EngineSpec,
    pub(crate) name: String,
    pub(crate) dims: usize,
}

impl ShardedSynopsis {
    /// Split `table` by `plan` and build one `inner` engine per shard,
    /// concurrently on a machine-sized [`ThreadPool`].
    pub fn build(table: &Table, inner: &EngineSpec, plan: &ShardPlan) -> Result<Self> {
        Self::build_with_pool(table, inner, plan, &ThreadPool::with_default_parallelism())
    }

    /// [`build`](Self::build) with an explicit pool. Shard builds are
    /// independent and deterministic per shard, so the pool width never
    /// changes what gets built — only how fast.
    pub fn build_with_pool(
        table: &Table,
        inner: &EngineSpec,
        plan: &ShardPlan,
        pool: &ThreadPool,
    ) -> Result<Self> {
        let shard_tables = table.split(plan)?;
        let built: Vec<Result<Arc<dyn Synopsis>>> =
            pool.map_chunks(shard_tables.len(), 1, |range| {
                range
                    .map(|i| Engine::build(&shard_tables[i], &Self::shard_spec(inner, i)))
                    .collect()
            });
        let shards = built.into_iter().collect::<Result<Vec<_>>>()?;
        let name = format!("Sharded[{}]-{}", shards.len(), shards[0].name());
        // The merged synopsis answers whatever arity its shards answer —
        // which is the table's arity for single-table engines, but wider
        // for join engines (fact dims + dimension-attribute dims), so
        // ask the shard rather than the table.
        let dims = shards[0].dims();
        Ok(Self {
            shards,
            plan: plan.clone(),
            inner_spec: inner.clone(),
            name,
            dims,
        })
    }

    /// The spec shard `index`'s engine is built from. Shard 0 keeps
    /// `inner` verbatim — which is what makes a 1-shard plan bit-identical
    /// to the unsharded engine — and every later shard gets an
    /// independently derived seed, so per-shard sampling errors are
    /// uncorrelated and the root-sum-square CI merge's independence
    /// assumption actually holds (identical seeds on similarly laid-out
    /// shards would correlate the errors and under-cover).
    pub fn shard_spec(inner: &EngineSpec, index: usize) -> EngineSpec {
        // Stream label separating shard reseeding from other derivations.
        const SHARD_STREAM: u64 = 0x5AAD_5EED;
        match (index, inner.seed()) {
            (0, _) | (_, None) => inner.clone(),
            (i, Some(seed)) => inner
                .clone()
                .with_seed(derive_seed(seed, SHARD_STREAM ^ i as u64)),
        }
    }

    /// Number of (non-empty) shards actually built.
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// The per-shard engines, in shard order.
    pub fn shard_engines(&self) -> &[Arc<dyn Synopsis>] {
        &self.shards
    }

    /// The plan the table was split by.
    pub fn plan(&self) -> &ShardPlan {
        &self.plan
    }

    /// Collect one partial per shard for `query` via `partial_of`, then
    /// reduce through [`PartialEstimate::merge_available`] — the shared
    /// availability-rule merge the group-by and progressive paths also
    /// use, which is what keeps them bit-identical to this one.
    ///
    /// A shard that cannot match any tuple (`PassError::EmptyInput`)
    /// contributes a zero partial for additive aggregates — but only
    /// when **some other shard answered**. If no shard can answer, the
    /// first shard's error propagates, which keeps a 1-shard plan
    /// identical to the unsharded engine on the error side too (and
    /// avoids fabricating a confident `0 ± 0` out of pure refusals).
    /// Zero partials carry no hard bounds and are not exact, so their
    /// unsampled matching rows still poison the merged bounds/exactness.
    fn merge_shards(
        &self,
        query: &Query,
        mut partial_of: impl FnMut(usize) -> Result<PartialEstimate>,
    ) -> Result<Estimate> {
        let mut parts = Vec::with_capacity(self.shards.len());
        for i in 0..self.shards.len() {
            let part = partial_of(i);
            if let Err(err) = &part {
                if !matches!(err, PassError::EmptyInput(_)) {
                    // Hard (non-availability) errors abort immediately,
                    // without touching the remaining shards.
                    return Err(err.clone());
                }
            }
            parts.push(part);
        }
        PartialEstimate::merge_available(query.agg, &parts)
    }

    /// Merge per-shard answers to the expanded batch back into one result
    /// per original query (`shard_answers[i]` is shard i's answers to
    /// [`expand`](Self::expand)'s concatenated sub-queries).
    fn merge_expanded(
        &self,
        queries: &[Query],
        shard_answers: &[Vec<Result<Estimate>>],
    ) -> Vec<Result<Estimate>> {
        let mut offsets = Vec::with_capacity(queries.len());
        let mut cursor = 0usize;
        for q in queries {
            let width = self.partial_width(q.agg);
            offsets.push((cursor, width));
            cursor += width;
        }
        debug_assert!(shard_answers.iter().all(|a| a.len() == cursor));
        queries
            .iter()
            .zip(&offsets)
            .map(|(q, &(off, width))| {
                self.merge_shards(q, |shard| {
                    let mut answers = shard_answers[shard][off..off + width].iter().cloned();
                    if self.multi_shard() {
                        PartialEstimate::assemble_merge(q, answers)
                    } else {
                        answers
                            .next()
                            .expect("single-shard expansion has width 1")
                            .map(|est| PartialEstimate::from_local(q.agg, est))
                    }
                })
            })
            .collect()
    }

    /// Whether this synopsis merges across more than one shard — which
    /// selects the decomposition: multi-shard merges use
    /// [`PartialEstimate::merge_queries`] (AVG as COUNT + SUM; the
    /// per-shard AVG answer would be discarded by a K-way merge, so it
    /// is never issued), while a single-shard plan passes each query
    /// through untouched (the merge of one partial returns the shard's
    /// own estimate verbatim, so sub-queries would be pure waste).
    /// Single-query and batched paths share this rule, keeping them
    /// bit-identical.
    fn multi_shard(&self) -> bool {
        self.shards.len() > 1
    }

    /// Width of one query's expansion under the active decomposition.
    fn partial_width(&self, agg: pass_common::AggKind) -> usize {
        if self.multi_shard() {
            PartialEstimate::merge_width(agg)
        } else {
            1
        }
    }

    /// The batch each shard answers: every query expanded into its
    /// partial sub-queries, concatenated in query order.
    fn expand(&self, queries: &[Query]) -> Vec<Query> {
        if self.multi_shard() {
            queries
                .iter()
                .flat_map(PartialEstimate::merge_queries)
                .collect()
        } else {
            queries.to_vec()
        }
    }

    /// One shard's partials for every category of `query`: the shard
    /// answers the whole expanded batch through its own `estimate_many`
    /// (keeping the inner engine's batched-traversal win across the
    /// groups), then the answers assemble per category. Both the plain
    /// and the progressive group-by paths build their per-shard column
    /// through this one helper, which is what makes the progressive
    /// final snapshot bit-identical to
    /// [`estimate_group_by`](Synopsis::estimate_group_by).
    fn group_partials_for_shard(
        &self,
        shard: usize,
        query: &GroupByQuery,
        expanded: &[Query],
    ) -> Vec<Result<PartialEstimate>> {
        let width = PartialEstimate::merge_width(query.agg);
        let answers = self.shards[shard].estimate_many(expanded);
        query
            .categories
            .iter()
            .enumerate()
            .map(|(c, &key)| {
                PartialEstimate::assemble_merge(
                    &query.query_for(key),
                    answers[c * width..(c + 1) * width].iter().cloned(),
                )
            })
            .collect()
    }

    /// The merged row for one category given its per-shard partials
    /// (columns of [`group_partials_for_shard`](Self::group_partials_for_shard)):
    /// the shared availability merge plus the group availability rule.
    fn merge_group_row(agg: AggKind, key: f64, parts: &[Result<PartialEstimate>]) -> GroupResult {
        GroupResult {
            key,
            estimate: apply_group_availability(PartialEstimate::merge_available(agg, parts)),
        }
    }
}

/// The extrapolated intermediate estimate for one group after merging
/// `merged` of `total` shards — the online-aggregation view published in
/// non-final [`GroupBySnapshot`]s.
///
/// The point estimate assumes the remaining shards look like the merged
/// prefix (row-range shards of one logical table): additive aggregates
/// scale by `total / merged`, AVG keeps the prefix ratio. The CI is the
/// scaled prefix CI **plus an inter-shard dispersion margin**
///
/// ```text
/// λ₉₉ · (total − merged) · spread · √(1/merged + 1/(total − merged)) · √(merged/(merged − 1))
/// ```
///
/// where `spread` is the largest deviation of a per-shard value from
/// the prefix mean (floored at a tenth of the mean's magnitude, and at
/// the lone shard's own magnitude when `merged == 1`, where the
/// small-sample factor is dropped). The two √ factors are the
/// homogeneous-shard error model taken seriously: the extrapolation
/// error is `remaining · (mean_unseen − mean_prefix)`, whose deviation
/// scales with `√(1/merged + 1/remaining)`, and a max-deviation spread
/// over `merged` values needs the `√(merged/(merged−1))` small-sample
/// inflation to be a conservative scale proxy. The margin shrinks as
/// shards merge and vanishes at the final snapshot, which is what makes
/// widths non-increasing in practice; it is a *statistical* interval
/// under the homogeneous-shard assumption, so intermediates never claim
/// hard bounds or exactness — the final snapshot's estimate is
/// authoritative.
///
/// A prefix with no answering shard yet propagates its availability
/// error (the group's width is infinite until some shard answers).
fn extrapolate_group(
    agg: AggKind,
    parts: &[Result<PartialEstimate>],
    merged: usize,
    total: usize,
) -> Result<Estimate> {
    debug_assert!(0 < merged && merged < total);
    let prefix = apply_group_availability(PartialEstimate::merge_available(agg, parts))?;
    let k = merged as f64;
    let remaining = (total - merged) as f64;
    let spread_of = |values: &[f64]| -> f64 {
        let mean = values.iter().sum::<f64>() / values.len() as f64;
        let dev = if values.len() == 1 {
            values[0].abs()
        } else {
            values.iter().map(|v| (v - mean).abs()).fold(0.0, f64::max)
        };
        dev.max(0.1 * mean.abs())
    };
    // The doc-comment margin: a lone merged shard already uses its own
    // magnitude as the spread, so it skips the (undefined) small-sample
    // inflation.
    let small_sample = if merged > 1 {
        (k / (k - 1.0)).sqrt()
    } else {
        1.0
    };
    let margin = |spread: f64| {
        LAMBDA_99 * remaining * spread * (1.0 / k + 1.0 / remaining).sqrt() * small_sample
    };
    let (value, ci_half) = match agg {
        AggKind::Sum | AggKind::Count => {
            // Silent shards contributed an estimated zero to the prefix,
            // so they count as zero in the dispersion too.
            let values: Vec<f64> = parts
                .iter()
                .map(|p| p.as_ref().map_or(0.0, |p| p.local.value))
                .collect();
            let scale = total as f64 / k;
            (
                prefix.value * scale,
                scale * prefix.ci_half + margin(spread_of(&values)),
            )
        }
        AggKind::Avg => {
            // The prefix ratio already estimates the global AVG; silent
            // shards are excluded exactly as the merge excluded them.
            let values: Vec<f64> = parts
                .iter()
                .filter_map(|p| p.as_ref().ok().map(|p| p.local.value))
                .collect();
            (prefix.value, prefix.ci_half + margin(spread_of(&values)))
        }
        // MIN/MAX never publish intermediates (a prefix extremum has no
        // sound extrapolation); unreachable by construction, but answer
        // the prefix conservatively rather than panic.
        AggKind::Min | AggKind::Max => (prefix.value, prefix.ci_half),
    };
    Ok(Estimate::approximate(value, ci_half)
        .with_accounting(prefix.tuples_processed, prefix.tuples_skipped))
}

/// A group row's CI half-width for the progressive skip filter: errored
/// rows are infinitely wide (so an error can refine into an answer but a
/// published answer can never regress into an error).
fn row_width(row: &GroupResult) -> f64 {
    match &row.estimate {
        Ok(est) => est.ci_half,
        Err(_) => f64::INFINITY,
    }
}

impl Synopsis for ShardedSynopsis {
    fn name(&self) -> &str {
        &self.name
    }

    fn estimate(&self, query: &Query) -> Result<Estimate> {
        if query.dims() != self.dims {
            return Err(PassError::DimensionMismatch {
                expected: self.dims,
                got: query.dims(),
            });
        }
        self.merge_shards(query, |i| {
            if self.multi_shard() {
                PartialEstimate::assemble_merge(
                    query,
                    PartialEstimate::merge_queries(query)
                        .iter()
                        .map(|q| self.shards[i].estimate(q)),
                )
            } else {
                // Merging one partial returns its local estimate
                // verbatim, so the lone shard answers the query itself —
                // no decomposition, and exact unsharded identity.
                self.shards[i]
                    .estimate(query)
                    .map(|est| PartialEstimate::from_local(query.agg, est))
            }
        })
    }

    /// Shard-outer / query-inner: each shard answers the whole expanded
    /// batch through its own batched path, then partials merge per query.
    fn estimate_many(&self, queries: &[Query]) -> Vec<Result<Estimate>> {
        if queries.iter().any(|q| q.dims() != self.dims) {
            // Mixed-arity batches keep per-query error semantics.
            return queries.iter().map(|q| self.estimate(q)).collect();
        }
        let expanded = self.expand(queries);
        let shard_answers: Vec<Vec<Result<Estimate>>> = self
            .shards
            .iter()
            .map(|s| s.estimate_many(&expanded))
            .collect();
        self.merge_expanded(queries, &shard_answers)
    }

    /// With enough shards to saturate the pool, the shards themselves
    /// fan out across the workers (query-inner loops stay on each
    /// shard's sequential batched path — one spawn round total).
    /// With fewer shards than workers, each shard instead runs its own
    /// parallel batch path over the whole pool, so a 2-shard engine on
    /// an 8-thread pool still uses all 8 workers. Either way the result
    /// is bit-identical to [`estimate_many`](Self::estimate_many) (the
    /// `Synopsis` contract guarantees each shard's parallel path matches
    /// its sequential one element-wise).
    fn estimate_many_parallel(
        &self,
        queries: &[Query],
        pool: &ThreadPool,
    ) -> Vec<Result<Estimate>> {
        if pool.threads() <= 1
            || queries.len() < PARALLEL_MIN_BATCH
            || queries.iter().any(|q| q.dims() != self.dims)
        {
            return self.estimate_many(queries);
        }
        let expanded = self.expand(queries);
        let shard_answers: Vec<Vec<Result<Estimate>>> = if self.shards.len() >= pool.threads() {
            pool.map_chunks(self.shards.len(), 1, |range| {
                range
                    .map(|i| self.shards[i].estimate_many(&expanded))
                    .collect()
            })
        } else {
            self.shards
                .iter()
                .map(|s| s.estimate_many_parallel(&expanded, pool))
                .collect()
        };
        self.merge_expanded(queries, &shard_answers)
    }

    /// Group-by with per-group partial merging: every shard answers the
    /// expanded per-category batch through its own `estimate_many`, the
    /// answers assemble into per-shard partials per category, and each
    /// category reduces through the shared availability merge
    /// ([`PartialEstimate::merge_available`]) with the group availability
    /// rule applied on top. A single-shard plan forwards to the lone
    /// shard verbatim — bit-identical to the unsharded engine, rule
    /// errors included.
    fn estimate_group_by(&self, query: &GroupByQuery) -> Result<Vec<GroupResult>> {
        query.validate(self.dims)?;
        if !self.multi_shard() {
            return self.shards[0].estimate_group_by(query);
        }
        let expanded: Vec<Query> = query
            .categories
            .iter()
            .flat_map(|&key| PartialEstimate::merge_queries(&query.query_for(key)))
            .collect();
        let columns: Vec<Vec<Result<PartialEstimate>>> = (0..self.shards.len())
            .map(|s| self.group_partials_for_shard(s, query, &expanded))
            .collect();
        Ok(query
            .categories
            .iter()
            .enumerate()
            .map(|(c, &key)| {
                let parts: Vec<Result<PartialEstimate>> =
                    columns.iter().map(|col| col[c].clone()).collect();
                Self::merge_group_row(query.agg, key, &parts)
            })
            .collect())
    }

    /// True online aggregation: shards merge one at a time, and after
    /// each prefix a refining snapshot is offered to `publish` — the
    /// extrapolated view of `extrapolate_group` for intermediate
    /// prefixes, the exact merged answer (bit-identical to
    /// [`estimate_group_by`](Self::estimate_group_by)) for the final one.
    ///
    /// A **skip filter** keeps the published stream monotone: an
    /// intermediate snapshot is published only if no group's CI widened
    /// against the last published snapshot (errored groups count as
    /// infinitely wide). MIN/MAX publish no intermediates at all — a
    /// prefix extremum has no sound extrapolation. The final snapshot is
    /// always published. `publish` returning `false` stops the refinement
    /// early and returns the groups of the snapshot just offered.
    fn estimate_group_by_progressive(
        &self,
        query: &GroupByQuery,
        publish: &mut dyn FnMut(GroupBySnapshot) -> bool,
    ) -> Result<Vec<GroupResult>> {
        query.validate(self.dims)?;
        if !self.multi_shard() {
            return self.shards[0].estimate_group_by_progressive(query, publish);
        }
        let total = self.shards.len();
        let expanded: Vec<Query> = query
            .categories
            .iter()
            .flat_map(|&key| PartialEstimate::merge_queries(&query.query_for(key)))
            .collect();
        let mut columns: Vec<Vec<Result<PartialEstimate>>> = vec![Vec::new(); query.len()];
        let mut last_widths: Option<Vec<f64>> = None;
        for s in 0..total {
            for (c, part) in self
                .group_partials_for_shard(s, query, &expanded)
                .into_iter()
                .enumerate()
            {
                columns[c].push(part);
            }
            let merged = s + 1;
            let is_last = merged == total;
            if !is_last && matches!(query.agg, AggKind::Min | AggKind::Max) {
                continue;
            }
            let groups: Vec<GroupResult> = query
                .categories
                .iter()
                .enumerate()
                .map(|(c, &key)| {
                    if is_last {
                        Self::merge_group_row(query.agg, key, &columns[c])
                    } else {
                        GroupResult {
                            key,
                            estimate: extrapolate_group(query.agg, &columns[c], merged, total),
                        }
                    }
                })
                .collect();
            let widths: Vec<f64> = groups.iter().map(row_width).collect();
            if !is_last {
                if let Some(last) = &last_widths {
                    let widens = widths.iter().zip(last).any(|(w, l)| w > l);
                    if widens {
                        continue;
                    }
                }
            }
            let keep_going = publish(GroupBySnapshot {
                shards_merged: merged,
                shards_total: total,
                groups: groups.clone(),
                last: is_last,
            });
            last_widths = Some(widths);
            if is_last || !keep_going {
                return Ok(groups);
            }
        }
        // The loop always returns at the final shard; an empty shard set
        // cannot be built (`ShardPlan` guarantees at least one shard).
        Err(PassError::EmptyInput("no shard could answer the query"))
    }

    fn spec(&self) -> EngineSpec {
        EngineSpec::Sharded {
            inner: Box::new(self.inner_spec.clone()),
            plan: self.plan.clone(),
        }
    }

    /// One header section (shard count + arity) followed by every shard's
    /// own state sections, recursively.
    fn save_state(&self, out: &mut Vec<u8>) -> Result<()> {
        crate::snapshot::save_sharded(self, out)
    }

    /// Sum over the shards (the sharding layer itself stores nothing).
    fn storage_bytes(&self) -> usize {
        self.shards.iter().map(|s| s.storage_bytes()).sum()
    }

    fn dims(&self) -> usize {
        self.dims
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pass_common::AggKind;
    use pass_table::datasets::uniform;

    #[test]
    fn builds_one_engine_per_shard_and_sums_storage() {
        let t = uniform(8_000, 1);
        let sharded =
            ShardedSynopsis::build(&t, &EngineSpec::uniform(200), &ShardPlan::row_range(4))
                .unwrap();
        assert_eq!(sharded.n_shards(), 4);
        assert_eq!(sharded.name(), "Sharded[4]-US");
        assert_eq!(sharded.dims(), 1);
        let per_shard: usize = sharded
            .shard_engines()
            .iter()
            .map(|s| s.storage_bytes())
            .sum();
        assert_eq!(sharded.storage_bytes(), per_shard);
        assert!(sharded.storage_bytes() > 0);
    }

    #[test]
    fn build_width_does_not_change_what_is_built() {
        let t = uniform(4_000, 2);
        let spec = EngineSpec::uniform(100).with_seed(3);
        let plan = ShardPlan::row_range(3);
        let serial =
            ShardedSynopsis::build_with_pool(&t, &spec, &plan, &ThreadPool::new(1)).unwrap();
        let parallel =
            ShardedSynopsis::build_with_pool(&t, &spec, &plan, &ThreadPool::new(4)).unwrap();
        let q = Query::interval(AggKind::Sum, 0.1, 0.9);
        assert_eq!(
            serial.estimate(&q).unwrap().value,
            parallel.estimate(&q).unwrap().value
        );
    }

    #[test]
    fn dimension_mismatch_is_uniformly_rejected() {
        let t = uniform(1_000, 3);
        let sharded =
            ShardedSynopsis::build(&t, &EngineSpec::uniform(100), &ShardPlan::row_range(2))
                .unwrap();
        let q = Query::new(
            AggKind::Sum,
            pass_common::Rect::new(&[(0.0, 1.0), (0.0, 1.0)]),
        );
        assert!(matches!(
            sharded.estimate(&q),
            Err(PassError::DimensionMismatch { .. })
        ));
        let batch = sharded.estimate_many(std::slice::from_ref(&q));
        assert!(matches!(batch[0], Err(PassError::DimensionMismatch { .. })));
    }

    /// A mock shard: answers every query with a fixed estimate, or
    /// refuses with `EmptyInput` — the deterministic way to pin the
    /// availability rule (real sampling engines answer SUM/COUNT with
    /// 0 ± 0 rather than erroring, so only model-based engines exercise
    /// the additive `EmptyInput` path, and only data-dependently).
    struct MockShard(Option<Estimate>);

    impl Synopsis for MockShard {
        fn name(&self) -> &str {
            "MOCK"
        }
        fn estimate(&self, _q: &Query) -> Result<Estimate> {
            self.0
                .clone()
                .ok_or(PassError::EmptyInput("no sampled tuple matches"))
        }
        fn storage_bytes(&self) -> usize {
            0
        }
        fn dims(&self) -> usize {
            1
        }
    }

    fn mock_sharded(shards: Vec<Arc<dyn Synopsis>>) -> ShardedSynopsis {
        ShardedSynopsis {
            plan: ShardPlan::row_range(shards.len()),
            inner_spec: EngineSpec::uniform(1),
            name: format!("Sharded[{}]-MOCK", shards.len()),
            dims: 1,
            shards,
        }
    }

    #[test]
    fn empty_input_shards_follow_stratified_availability() {
        let answering = || -> Arc<dyn Synopsis> {
            Arc::new(MockShard(Some(
                Estimate::approximate(10.0, 3.0).with_hard_bounds(4.0, 16.0),
            )))
        };
        let silent = || -> Arc<dyn Synopsis> { Arc::new(MockShard(None)) };

        // Mixed additive: the silent shard contributes zero — but with
        // no hard bounds and no exactness claim, since it may hold
        // unsampled matching rows; the CI is the answering shard's.
        let mixed = mock_sharded(vec![answering(), silent()]);
        for agg in [AggKind::Sum, AggKind::Count] {
            let est = mixed.estimate(&Query::interval(agg, 0.0, 1.0)).unwrap();
            assert_eq!(est.value, 10.0, "{agg}");
            assert_eq!(est.ci_half, 3.0, "{agg}");
            assert_eq!(est.hard_bounds, None, "{agg}");
            assert!(!est.exact, "{agg}");
        }
        // Mixed non-additive: the silent shard is skipped, and because
        // it may hold unsampled matching rows, the merged answer keeps
        // no hard bounds and no exactness claim. (AVG is recomputed as
        // SUM/COUNT of the answering shards: the mock answers 10 for
        // both sub-queries, so the ratio is 1.)
        for (agg, want) in [
            (AggKind::Avg, 1.0),
            (AggKind::Min, 10.0),
            (AggKind::Max, 10.0),
        ] {
            let est = mixed.estimate(&Query::interval(agg, 0.0, 1.0)).unwrap();
            assert_eq!(est.value, want, "{agg}");
            assert_eq!(est.hard_bounds, None, "{agg}");
            assert!(!est.exact, "{agg}");
        }

        // All-silent: the query fails with the shard's own error — no
        // fabricated 0 ± 0 — matching the unsharded engine at K = 1.
        let all_silent = mock_sharded(vec![silent(), silent()]);
        let single_silent = mock_sharded(vec![silent()]);
        for agg in AggKind::ALL {
            let q = Query::interval(agg, 0.0, 1.0);
            for sharded in [&all_silent, &single_silent] {
                assert!(
                    matches!(sharded.estimate(&q), Err(PassError::EmptyInput(_))),
                    "{agg}"
                );
            }
        }

        // Real engines, end to end: MIN over a region nothing sampled —
        // every shard refuses, so the query fails.
        let t = uniform(10_000, 4);
        let sharded =
            ShardedSynopsis::build(&t, &EngineSpec::uniform(4), &ShardPlan::row_range(8)).unwrap();
        let disjoint = Query::interval(AggKind::Min, 5.0, 6.0);
        assert!(sharded.estimate(&disjoint).is_err());
    }

    #[test]
    fn group_by_merges_per_group_with_the_availability_rule() {
        let answering = || -> Arc<dyn Synopsis> {
            Arc::new(MockShard(Some(
                Estimate::approximate(10.0, 3.0).with_hard_bounds(4.0, 16.0),
            )))
        };
        let silent = || -> Arc<dyn Synopsis> { Arc::new(MockShard(None)) };
        let gq = GroupByQuery::over(AggKind::Sum, 0, &[1.0, 2.0], 1);

        // Mixed: the silent shard contributes a boundless zero per group.
        let mixed = mock_sharded(vec![answering(), silent()]);
        let rows = mixed.estimate_group_by(&gq).unwrap();
        assert_eq!(rows.len(), 2);
        for r in &rows {
            let est = r.estimate.as_ref().unwrap();
            assert_eq!(est.value, 10.0);
            assert_eq!(est.hard_bounds, None);
            assert!(!est.exact);
        }
        // All-silent: per-row errors, never a fabricated zero row.
        let all_silent = mock_sharded(vec![silent(), silent()]);
        let rows = all_silent.estimate_group_by(&gq).unwrap();
        assert!(rows.iter().all(|r| r.estimate.is_err()));
        // A 1-shard plan forwards to the lone shard verbatim.
        let single = mock_sharded(vec![answering()]);
        let direct = single.shard_engines()[0].estimate_group_by(&gq).unwrap();
        assert_eq!(single.estimate_group_by(&gq).unwrap(), direct);
        // Malformed queries are rejected as a whole.
        let bad = GroupByQuery::over(AggKind::Sum, 3, &[1.0], 1);
        assert!(mixed.estimate_group_by(&bad).is_err());
    }

    #[test]
    fn progressive_snapshots_tighten_into_the_exact_answer() {
        let answering = || -> Arc<dyn Synopsis> {
            Arc::new(MockShard(Some(
                Estimate::approximate(10.0, 3.0).with_hard_bounds(4.0, 16.0),
            )))
        };
        let sharded = mock_sharded(vec![answering(), answering(), answering()]);
        let gq = GroupByQuery::over(AggKind::Sum, 0, &[1.0], 1);
        let mut snaps = Vec::new();
        let groups = sharded
            .estimate_group_by_progressive(&gq, &mut |s| {
                snaps.push(s);
                true
            })
            .unwrap();
        let final_snap = snaps.last().unwrap();
        assert!(final_snap.last);
        assert_eq!(final_snap.shards_merged, 3);
        assert_eq!(final_snap.groups, groups);
        // The final snapshot is the non-progressive answer, bit for bit.
        assert_eq!(groups, sharded.estimate_group_by(&gq).unwrap());
        // CI widths only tighten, and intermediates claim no hard bounds.
        let widths: Vec<f64> = snaps.iter().map(|s| row_width(&s.groups[0])).collect();
        for pair in widths.windows(2) {
            assert!(pair[1] <= pair[0], "widths must not widen: {widths:?}");
        }
        for s in &snaps[..snaps.len() - 1] {
            assert!(!s.last);
            let est = s.groups[0].estimate.as_ref().unwrap();
            assert_eq!(est.hard_bounds, None);
            assert!(!est.exact);
        }
        // Early stop returns the snapshot just offered.
        let mut offered = 0;
        let stopped = sharded
            .estimate_group_by_progressive(&gq, &mut |_| {
                offered += 1;
                false
            })
            .unwrap();
        assert_eq!(offered, 1);
        assert_eq!(stopped.len(), 1);
        // A 1-shard plan streams exactly one final snapshot.
        let single = mock_sharded(vec![answering()]);
        let mut snaps = Vec::new();
        let groups = single
            .estimate_group_by_progressive(&gq, &mut |s| {
                snaps.push(s);
                true
            })
            .unwrap();
        assert_eq!(snaps.len(), 1);
        assert!(snaps[0].last);
        assert_eq!(snaps[0].groups, groups);
    }

    #[test]
    fn nested_sharding_composes() {
        let t = uniform(4_000, 5);
        let spec = EngineSpec::sharded(
            EngineSpec::sharded(EngineSpec::uniform(100), ShardPlan::row_range(2)),
            ShardPlan::row_range(2),
        );
        let engine = Engine::build(&t, &spec).unwrap();
        assert_eq!(engine.spec(), spec);
        let q = Query::interval(AggKind::Count, 0.0, 1.0);
        let truth = t.ground_truth(&q).unwrap();
        // COUNT of everything is exact for US shards (all sampled rows
        // match), so the nested merge reproduces it exactly.
        assert!((engine.estimate(&q).unwrap().value - truth).abs() < 1e-9);
    }
}
