//! SPN structure learning (a compact LearnSPN).
//!
//! Recursively: try to split *columns* into independent groups (Product
//! node); when the columns are dependent, split *rows* by 2-means
//! clustering (Sum node); bottom out in single-column histogram leaves.
//! Independence testing uses |Pearson correlation| on a row subsample in
//! place of DeepDB's RDC — cheaper, same role.

use rand::Rng;

use pass_common::rng::{derive_seed, rng_from_seed};
use pass_common::Result;
use pass_table::Table;

use super::histogram::Histogram;

/// Structure-learning knobs.
#[derive(Debug, Clone, Copy)]
pub struct LearnParams {
    /// Stop row-splitting below this many rows.
    pub min_rows: usize,
    /// Histogram bins per leaf.
    pub bins: usize,
    /// |Pearson| at or above this links two columns as dependent.
    pub corr_threshold: f64,
    /// Maximum recursion depth (Sum+Product levels).
    pub max_depth: usize,
    /// Rows used for the correlation test.
    pub corr_sample: usize,
}

impl Default for LearnParams {
    fn default() -> Self {
        Self {
            min_rows: 512,
            bins: 64,
            corr_threshold: 0.3,
            max_depth: 12,
            corr_sample: 2_000,
        }
    }
}

/// SPN node (arena-indexed).
#[derive(Debug, Clone)]
pub enum Node {
    /// Weighted mixture over row clusters: `(weight, child)`.
    Sum(Vec<(f64, usize)>),
    /// Independent column groups: `(columns, child)`.
    Product(Vec<(Vec<usize>, usize)>),
    /// Single-column histogram.
    Leaf { col: usize, hist: Histogram },
}

/// Column accessor treating the aggregate column as index `dims`.
fn column_value(table: &Table, col: usize, row: usize) -> f64 {
    if col == table.dims() {
        table.value(row)
    } else {
        table.predicate(col, row)
    }
}

/// Train over a `ratio` row-sample of `table`. Returns the node arena and
/// root id.
pub fn learn(
    table: &Table,
    ratio: f64,
    seed: u64,
    params: LearnParams,
) -> Result<(Vec<Node>, usize)> {
    let n = table.n_rows();
    let k = ((n as f64) * ratio).round().max(1.0) as usize;
    let mut rng = rng_from_seed(derive_seed(seed, 71));
    let rows: Vec<u32> = if k >= n {
        (0..n as u32).collect()
    } else {
        let mut idx: Vec<u32> = rand::seq::index::sample(&mut rng, n, k)
            .into_iter()
            .map(|i| i as u32)
            .collect();
        idx.sort_unstable();
        idx
    };
    let cols: Vec<usize> = (0..=table.dims()).collect();
    let mut arena = Vec::new();
    let root = build(table, &rows, &cols, 0, &params, &mut rng, &mut arena);
    Ok((arena, root))
}

fn build<R: Rng>(
    table: &Table,
    rows: &[u32],
    cols: &[usize],
    depth: usize,
    params: &LearnParams,
    rng: &mut R,
    arena: &mut Vec<Node>,
) -> usize {
    if cols.len() == 1 {
        return push_leaf(table, rows, cols[0], params, arena);
    }
    if rows.len() < params.min_rows || depth >= params.max_depth {
        return push_naive_product(table, rows, cols, params, arena);
    }
    // Try an independence-based column split first.
    let groups = independent_groups(table, rows, cols, params, rng);
    if groups.len() > 1 {
        let children: Vec<(Vec<usize>, usize)> = groups
            .into_iter()
            .map(|g| {
                let child = build(table, rows, &g, depth + 1, params, rng, arena);
                (g, child)
            })
            .collect();
        arena.push(Node::Product(children));
        return arena.len() - 1;
    }
    // Dependent columns: split rows by 2-means.
    match two_means(table, rows, cols, rng) {
        Some((left, right)) => {
            let wl = left.len() as f64 / rows.len() as f64;
            let wr = 1.0 - wl;
            let cl = build(table, &left, cols, depth + 1, params, rng, arena);
            let cr = build(table, &right, cols, depth + 1, params, rng, arena);
            arena.push(Node::Sum(vec![(wl, cl), (wr, cr)]));
            arena.len() - 1
        }
        None => push_naive_product(table, rows, cols, params, arena),
    }
}

fn push_leaf(
    table: &Table,
    rows: &[u32],
    col: usize,
    params: &LearnParams,
    arena: &mut Vec<Node>,
) -> usize {
    let values: Vec<f64> = rows
        .iter()
        .map(|&r| column_value(table, col, r as usize))
        .collect();
    arena.push(Node::Leaf {
        col,
        hist: Histogram::build(&values, params.bins),
    });
    arena.len() - 1
}

/// Product of single-column leaves (naive factorization fallback).
fn push_naive_product(
    table: &Table,
    rows: &[u32],
    cols: &[usize],
    params: &LearnParams,
    arena: &mut Vec<Node>,
) -> usize {
    let children: Vec<(Vec<usize>, usize)> = cols
        .iter()
        .map(|&c| (vec![c], push_leaf(table, rows, c, params, arena)))
        .collect();
    arena.push(Node::Product(children));
    arena.len() - 1
}

/// Union-find column grouping by |Pearson| on a row subsample.
#[allow(clippy::needless_range_loop)] // pairwise (i, j) correlation loop
fn independent_groups<R: Rng>(
    table: &Table,
    rows: &[u32],
    cols: &[usize],
    params: &LearnParams,
    rng: &mut R,
) -> Vec<Vec<usize>> {
    let sample: Vec<u32> = if rows.len() <= params.corr_sample {
        rows.to_vec()
    } else {
        (0..params.corr_sample)
            .map(|_| rows[rng.gen_range(0..rows.len())])
            .collect()
    };
    let data: Vec<Vec<f64>> = cols
        .iter()
        .map(|&c| {
            sample
                .iter()
                .map(|&r| column_value(table, c, r as usize))
                .collect()
        })
        .collect();
    let mut parent: Vec<usize> = (0..cols.len()).collect();
    fn find(parent: &mut Vec<usize>, i: usize) -> usize {
        if parent[i] != i {
            let root = find(parent, parent[i]);
            parent[i] = root;
        }
        parent[i]
    }
    for i in 0..cols.len() {
        for j in (i + 1)..cols.len() {
            if pearson(&data[i], &data[j]).abs() >= params.corr_threshold {
                let (a, b) = (find(&mut parent, i), find(&mut parent, j));
                if a != b {
                    parent[a] = b;
                }
            }
        }
    }
    let mut groups: std::collections::HashMap<usize, Vec<usize>> = Default::default();
    for i in 0..cols.len() {
        let root = find(&mut parent, i);
        groups.entry(root).or_default().push(cols[i]);
    }
    let mut out: Vec<Vec<usize>> = groups.into_values().collect();
    out.sort_by_key(|g| g[0]);
    out
}

fn pearson(x: &[f64], y: &[f64]) -> f64 {
    let n = x.len() as f64;
    if n < 2.0 {
        return 0.0;
    }
    let mx = x.iter().sum::<f64>() / n;
    let my = y.iter().sum::<f64>() / n;
    let (mut sxy, mut sxx, mut syy) = (0.0, 0.0, 0.0);
    for (a, b) in x.iter().zip(y) {
        let dx = a - mx;
        let dy = b - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if sxx == 0.0 || syy == 0.0 {
        0.0
    } else {
        sxy / (sxx * syy).sqrt()
    }
}

/// 2-means over rows (columns z-normalized), ~8 Lloyd iterations.
/// Returns `None` when the rows do not separate (degenerate cluster).
fn two_means<R: Rng>(
    table: &Table,
    rows: &[u32],
    cols: &[usize],
    rng: &mut R,
) -> Option<(Vec<u32>, Vec<u32>)> {
    let d = cols.len();
    // Normalization statistics.
    let mut mean = vec![0.0; d];
    let mut var = vec![0.0; d];
    for &r in rows {
        for (j, &c) in cols.iter().enumerate() {
            mean[j] += column_value(table, c, r as usize);
        }
    }
    for m in mean.iter_mut() {
        *m /= rows.len() as f64;
    }
    for &r in rows {
        for (j, &c) in cols.iter().enumerate() {
            let dlt = column_value(table, c, r as usize) - mean[j];
            var[j] += dlt * dlt;
        }
    }
    let scale: Vec<f64> = var
        .iter()
        .map(|&v| {
            let sd = (v / rows.len() as f64).sqrt();
            if sd > 0.0 {
                1.0 / sd
            } else {
                0.0
            }
        })
        .collect();

    let point = |r: u32| -> Vec<f64> {
        cols.iter()
            .enumerate()
            .map(|(j, &c)| (column_value(table, c, r as usize) - mean[j]) * scale[j])
            .collect()
    };
    let mut c0 = point(rows[rng.gen_range(0..rows.len())]);
    let mut c1 = point(rows[rng.gen_range(0..rows.len())]);
    if c0 == c1 {
        // Nudge: pick the farthest row from c0.
        let far = rows
            .iter()
            .max_by(|&&a, &&b| {
                dist2(&point(a), &c0)
                    .partial_cmp(&dist2(&point(b), &c0))
                    .unwrap()
            })
            .copied()?;
        c1 = point(far);
    }
    let mut assign = vec![false; rows.len()];
    for _ in 0..8 {
        let mut changed = false;
        for (i, &r) in rows.iter().enumerate() {
            let p = point(r);
            let side = dist2(&p, &c1) < dist2(&p, &c0);
            if side != assign[i] {
                assign[i] = side;
                changed = true;
            }
        }
        // Recompute centroids.
        let mut acc0 = vec![0.0; d];
        let mut acc1 = vec![0.0; d];
        let (mut n0, mut n1) = (0usize, 0usize);
        for (i, &r) in rows.iter().enumerate() {
            let p = point(r);
            if assign[i] {
                for (a, v) in acc1.iter_mut().zip(&p) {
                    *a += v;
                }
                n1 += 1;
            } else {
                for (a, v) in acc0.iter_mut().zip(&p) {
                    *a += v;
                }
                n0 += 1;
            }
        }
        if n0 == 0 || n1 == 0 {
            return None;
        }
        for a in acc0.iter_mut() {
            *a /= n0 as f64;
        }
        for a in acc1.iter_mut() {
            *a /= n1 as f64;
        }
        c0 = acc0;
        c1 = acc1;
        if !changed {
            break;
        }
    }
    let left: Vec<u32> = rows
        .iter()
        .zip(&assign)
        .filter(|(_, &a)| !a)
        .map(|(&r, _)| r)
        .collect();
    let right: Vec<u32> = rows
        .iter()
        .zip(&assign)
        .filter(|(_, &a)| a)
        .map(|(&r, _)| r)
        .collect();
    if left.is_empty() || right.is_empty() {
        None
    } else {
        Some((left, right))
    }
}

fn dist2(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pass_table::datasets::uniform;

    #[test]
    fn learns_some_structure() {
        let t = uniform(10_000, 1);
        let (arena, root) = learn(&t, 1.0, 2, LearnParams::default()).unwrap();
        assert!(root < arena.len());
        assert!(arena.len() >= 2, "at least a product of two leaves");
    }

    #[test]
    fn pearson_basics() {
        let x: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let y: Vec<f64> = x.iter().map(|v| 2.0 * v + 1.0).collect();
        assert!((pearson(&x, &y) - 1.0).abs() < 1e-9);
        let z: Vec<f64> = x.iter().map(|v| -v).collect();
        assert!((pearson(&x, &z) + 1.0).abs() < 1e-9);
        let c = vec![5.0; 100];
        assert_eq!(pearson(&x, &c), 0.0);
    }

    #[test]
    fn correlated_columns_grouped_together() {
        // value = predicate → the two columns must land in one group.
        let keys: Vec<f64> = (0..5_000).map(|i| i as f64).collect();
        let vals = keys.clone();
        let t = Table::one_dim(keys, vals).unwrap();
        let mut rng = rng_from_seed(3);
        let groups = independent_groups(
            &t,
            &(0..5_000u32).collect::<Vec<_>>(),
            &[0, 1],
            &LearnParams::default(),
            &mut rng,
        );
        assert_eq!(groups.len(), 1);
    }

    #[test]
    fn independent_columns_split_apart() {
        let t = uniform(5_000, 4); // independent key and value
        let mut rng = rng_from_seed(5);
        let groups = independent_groups(
            &t,
            &(0..5_000u32).collect::<Vec<_>>(),
            &[0, 1],
            &LearnParams::default(),
            &mut rng,
        );
        assert_eq!(groups.len(), 2);
    }

    #[test]
    fn two_means_separates_bimodal_rows() {
        // Two blobs along the key axis.
        let keys: Vec<f64> = (0..1_000)
            .map(|i| {
                if i < 500 {
                    i as f64
                } else {
                    10_000.0 + i as f64
                }
            })
            .collect();
        let vals = vec![1.0; 1_000];
        let t = Table::one_dim(keys, vals).unwrap();
        let mut rng = rng_from_seed(6);
        let rows: Vec<u32> = (0..1_000).collect();
        let (left, right) = two_means(&t, &rows, &[0], &mut rng).unwrap();
        assert_eq!(left.len() + right.len(), 1_000);
        // Clusters should basically match the blobs.
        let small_cluster = left.len().min(right.len());
        assert!((400..=600).contains(&small_cluster));
    }

    #[test]
    fn constant_rows_do_not_cluster() {
        let t = Table::one_dim(vec![1.0; 100], vec![2.0; 100]).unwrap();
        let mut rng = rng_from_seed(7);
        let rows: Vec<u32> = (0..100).collect();
        assert!(two_means(&t, &rows, &[0, 1], &mut rng).is_none());
    }

    use pass_table::Table;
}
