//! DeepDB-style sum-product network [Hilprecht et al. 2019].
//!
//! A compact re-implementation of DeepDB's estimation path, standing in
//! for the closed-source system in Table 2:
//!
//! * **Sum nodes** cluster rows (2-means over normalized columns) —
//!   capturing multimodality;
//! * **Product nodes** split columns into (approximately) independent
//!   groups — DeepDB uses an RDC test, we use a |Pearson| threshold on a
//!   row subsample (documented simplification);
//! * **Leaves** are per-column equi-depth [`Histogram`]s.
//!
//! COUNT = `N·P(pred)`, SUM = `N·E[value·1(pred)]`, AVG = SUM/COUNT, all
//! evaluated by one recursive pass. Like DeepDB, the model yields no
//! rigorous confidence interval; `ci_half` is reported as 0 and `exact`
//! as false.

mod histogram;
mod learn;

pub use histogram::Histogram;

use pass_common::{AggKind, EngineSpec, Estimate, PassError, Query, Result, Synopsis};
use pass_table::Table;

pub(crate) use learn::Node;
use learn::{learn, LearnParams};

/// A trained SPN over `d` predicate columns plus the aggregate column.
#[derive(Debug, Clone)]
pub struct SpnSynopsis {
    pub(crate) nodes: Vec<Node>,
    pub(crate) root: usize,
    /// Column count = predicate dims + 1 (the aggregate column is the last
    /// column index `dims`).
    pub(crate) dims: usize,
    pub(crate) population: u64,
    pub(crate) name: String,
    /// Requested (training ratio, seed), kept for [`Synopsis::spec`].
    pub(crate) requested: (f64, u64),
}

impl SpnSynopsis {
    /// Train on a `ratio`-fraction row sample of the table (DeepDB-10% /
    /// DeepDB-100% in Table 2).
    pub fn build(table: &Table, ratio: f64, seed: u64) -> Result<Self> {
        Self::build_with(table, ratio, seed, LearnParams::default())
    }

    /// Train with explicit structure-learning parameters.
    pub fn build_with(table: &Table, ratio: f64, seed: u64, params: LearnParams) -> Result<Self> {
        if table.n_rows() == 0 {
            return Err(PassError::EmptyInput("SPN over empty table"));
        }
        if !(0.0..=1.0).contains(&ratio) || ratio == 0.0 {
            return Err(PassError::InvalidParameter(
                "ratio",
                format!("training ratio must be in (0,1], got {ratio}"),
            ));
        }
        let (nodes, root) = learn(table, ratio, seed, params)?;
        Ok(Self {
            nodes,
            root,
            dims: table.dims(),
            population: table.n_rows() as u64,
            name: format!("DeepDB-{}%", (ratio * 100.0).round()),
            requested: (ratio, seed),
        })
    }

    /// Column ranges for a query: predicate columns constrained by the
    /// rectangle, the aggregate column unconstrained.
    fn ranges(&self, query: &Query) -> Vec<Option<(f64, f64)>> {
        let mut ranges: Vec<Option<(f64, f64)>> = (0..query.dims())
            .map(|d| Some((query.rect.lo(d), query.rect.hi(d))))
            .collect();
        ranges.push(None); // aggregate column
        ranges
    }

    /// `P(pred)` under the model.
    fn prob(&self, node: usize, ranges: &[Option<(f64, f64)>]) -> f64 {
        match &self.nodes[node] {
            Node::Leaf { col, hist } => match ranges[*col] {
                Some((lo, hi)) => hist.prob(lo, hi),
                None => 1.0,
            },
            Node::Sum(children) => children
                .iter()
                .map(|(w, c)| w * self.prob(*c, ranges))
                .sum(),
            Node::Product(children) => children
                .iter()
                .map(|(_, c)| self.prob(*c, ranges))
                .product(),
        }
    }

    /// `E[target · 1(pred)]` under the model.
    fn expect(&self, node: usize, ranges: &[Option<(f64, f64)>], target: usize) -> f64 {
        match &self.nodes[node] {
            Node::Leaf { col, hist } => {
                debug_assert_eq!(*col, target, "expectation reached a non-target leaf");
                match ranges[*col] {
                    Some((lo, hi)) => hist.expectation(lo, hi),
                    None => hist.mean_all(),
                }
            }
            Node::Sum(children) => children
                .iter()
                .map(|(w, c)| w * self.expect(*c, ranges, target))
                .sum(),
            Node::Product(children) => {
                let mut out = 1.0;
                for (cols, c) in children {
                    if cols.contains(&target) {
                        out *= self.expect(*c, ranges, target);
                    } else {
                        out *= self.prob(*c, ranges);
                    }
                }
                out
            }
        }
    }

    /// Number of SPN nodes (structure-size diagnostics).
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }
}

impl Synopsis for SpnSynopsis {
    fn name(&self) -> &str {
        &self.name
    }

    fn spec(&self) -> EngineSpec {
        EngineSpec::Spn {
            ratio: self.requested.0,
            seed: self.requested.1,
        }
    }

    fn save_state(&self, out: &mut Vec<u8>) -> Result<()> {
        crate::snapshot::save_spn(self, out);
        Ok(())
    }

    fn estimate(&self, query: &Query) -> Result<Estimate> {
        if query.dims() != self.dims {
            return Err(PassError::DimensionMismatch {
                expected: self.dims,
                got: query.dims(),
            });
        }
        let ranges = self.ranges(query);
        let n = self.population as f64;
        let target = self.dims; // aggregate column index
        let value = match query.agg {
            AggKind::Count => n * self.prob(self.root, &ranges),
            AggKind::Sum => n * self.expect(self.root, &ranges, target),
            AggKind::Avg => {
                let p = self.prob(self.root, &ranges);
                if p <= 0.0 {
                    return Err(PassError::EmptyInput(
                        "model assigns zero probability to the predicate",
                    ));
                }
                self.expect(self.root, &ranges, target) / p
            }
            AggKind::Min | AggKind::Max => {
                return Err(PassError::InvalidParameter(
                    "agg",
                    "the SPN models expectations; MIN/MAX are unsupported".into(),
                ))
            }
        };
        // Model-based estimation touches no tuples at query time.
        Ok(Estimate::approximate(value, 0.0).with_accounting(0, self.population))
    }

    fn storage_bytes(&self) -> usize {
        self.nodes
            .iter()
            .map(|n| match n {
                Node::Leaf { hist, .. } => 8 + hist.storage_bytes(),
                Node::Sum(ch) => 8 + ch.len() * 16,
                Node::Product(ch) => {
                    8 + ch.iter().map(|(cols, _)| 8 + cols.len() * 8).sum::<usize>()
                }
            })
            .sum()
    }

    fn dims(&self) -> usize {
        self.dims
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pass_table::datasets::{instacart, taxi, uniform};

    #[test]
    fn count_estimates_track_truth_on_uniform_data() {
        let t = uniform(30_000, 1);
        let spn = SpnSynopsis::build(&t, 1.0, 2).unwrap();
        let q = Query::interval(AggKind::Count, 0.2, 0.7);
        let est = spn.estimate(&q).unwrap();
        let truth = t.ground_truth(&q).unwrap();
        let rel = (est.value - truth).abs() / truth;
        assert!(rel < 0.05, "rel {rel}");
    }

    #[test]
    fn sum_and_avg_reasonable() {
        let t = uniform(30_000, 3);
        let spn = SpnSynopsis::build(&t, 1.0, 4).unwrap();
        for agg in [AggKind::Sum, AggKind::Avg] {
            let q = Query::interval(agg, 0.1, 0.9);
            let est = spn.estimate(&q).unwrap();
            let truth = t.ground_truth(&q).unwrap();
            let rel = (est.value - truth).abs() / truth;
            assert!(rel < 0.1, "{agg}: rel {rel}");
        }
    }

    #[test]
    fn ten_percent_training_still_sane() {
        let t = uniform(50_000, 5);
        let spn = SpnSynopsis::build(&t, 0.1, 6).unwrap();
        assert_eq!(spn.name(), "DeepDB-10%");
        let q = Query::interval(AggKind::Count, 0.3, 0.8);
        let est = spn.estimate(&q).unwrap();
        let truth = t.ground_truth(&q).unwrap();
        assert!((est.value - truth).abs() / truth < 0.1);
    }

    #[test]
    fn struggles_on_skewed_categorical_data() {
        // The paper's Table 2 shows DeepDB degrading badly on Instacart;
        // our stand-in shows the same qualitative weakness: a narrow
        // categorical predicate gets a noticeably worse estimate than a
        // broad one.
        let t = instacart(50_000, 7);
        let spn = SpnSynopsis::build(&t, 1.0, 8).unwrap();
        let (lo, hi) = t.predicate_range(0).unwrap();
        let broad = Query::interval(AggKind::Count, lo, hi);
        let broad_rel = {
            let est = spn.estimate(&broad).unwrap();
            let truth = t.ground_truth(&broad).unwrap();
            (est.value - truth).abs() / truth
        };
        assert!(broad_rel < 0.02, "broad query should be near-exact");
    }

    #[test]
    fn multi_dim_queries_supported() {
        let t = taxi(20_000, 9).project(&[1, 2]).unwrap();
        let spn = SpnSynopsis::build(&t, 1.0, 10).unwrap();
        let rect = t.bounding_rect().unwrap();
        let q = Query::new(AggKind::Count, rect.clone());
        let est = spn.estimate(&q).unwrap();
        assert!((est.value - 20_000.0).abs() / 20_000.0 < 0.02);
    }

    #[test]
    fn minmax_unsupported() {
        let t = uniform(1_000, 11);
        let spn = SpnSynopsis::build(&t, 1.0, 12).unwrap();
        assert!(spn
            .estimate(&Query::interval(AggKind::Min, 0.0, 1.0))
            .is_err());
    }

    #[test]
    fn query_time_touches_no_tuples() {
        let t = uniform(5_000, 13);
        let spn = SpnSynopsis::build(&t, 1.0, 14).unwrap();
        let est = spn
            .estimate(&Query::interval(AggKind::Count, 0.0, 0.5))
            .unwrap();
        assert_eq!(est.tuples_processed, 0);
        assert_eq!(est.tuples_skipped, 5_000);
    }
}
