//! Equi-depth histogram leaves for the SPN.
//!
//! Each leaf models one column's marginal distribution within its row
//! cluster: equi-depth bin edges, per-bin probability mass, and per-bin
//! mean (for SUM/AVG expectations). Range probabilities assume a uniform
//! spread inside each bin, the standard histogram approximation.

/// Equi-depth histogram over one column.
#[derive(Debug, Clone)]
pub struct Histogram {
    /// Bin edges, ascending, length `bins + 1`.
    pub(crate) edges: Vec<f64>,
    /// Probability mass per bin (sums to 1).
    pub(crate) mass: Vec<f64>,
    /// Mean value per bin.
    pub(crate) mean: Vec<f64>,
}

impl Histogram {
    /// Build over the (unsorted) values with at most `bins` bins.
    pub fn build(values: &[f64], bins: usize) -> Self {
        assert!(!values.is_empty(), "histogram over empty column");
        let mut sorted = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN column value"));
        let n = sorted.len();
        let bins = bins.clamp(1, n);
        let mut edges = Vec::with_capacity(bins + 1);
        let mut mass = Vec::with_capacity(bins);
        let mut mean = Vec::with_capacity(bins);
        edges.push(sorted[0]);
        let mut start = 0usize;
        for b in 0..bins {
            let mut end = ((b + 1) * n) / bins;
            if end <= start {
                continue;
            }
            // Never split ties across bins: extend to cover duplicates.
            while end < n && sorted[end] == sorted[end - 1] {
                end += 1;
            }
            let slice = &sorted[start..end];
            edges.push(slice[slice.len() - 1]);
            mass.push(slice.len() as f64 / n as f64);
            mean.push(slice.iter().sum::<f64>() / slice.len() as f64);
            start = end;
            if start >= n {
                break;
            }
        }
        Self { edges, mass, mean }
    }

    /// Number of bins.
    pub fn bins(&self) -> usize {
        self.mass.len()
    }

    /// Fraction of bin `b` lying inside `[lo, hi]` (uniform-within-bin).
    fn coverage(&self, b: usize, lo: f64, hi: f64) -> f64 {
        let (e_lo, e_hi) = (self.edges[b], self.edges[b + 1]);
        if hi < e_lo || lo > e_hi {
            return 0.0;
        }
        if e_lo == e_hi {
            // Point-mass bin: in or out.
            return if lo <= e_lo && e_lo <= hi { 1.0 } else { 0.0 };
        }
        let inter_lo = lo.max(e_lo);
        let inter_hi = hi.min(e_hi);
        ((inter_hi - inter_lo) / (e_hi - e_lo)).clamp(0.0, 1.0)
    }

    /// `P(col ∈ [lo, hi])`.
    pub fn prob(&self, lo: f64, hi: f64) -> f64 {
        (0..self.bins())
            .map(|b| self.mass[b] * self.coverage(b, lo, hi))
            .sum()
    }

    /// `E[col · 1(col ∈ [lo, hi])]` (uses the bin mean for the covered
    /// fraction — exact for full bins, approximate for fringes).
    pub fn expectation(&self, lo: f64, hi: f64) -> f64 {
        (0..self.bins())
            .map(|b| self.mass[b] * self.coverage(b, lo, hi) * self.mean[b])
            .sum()
    }

    /// Unconditional mean.
    pub fn mean_all(&self) -> f64 {
        (0..self.bins()).map(|b| self.mass[b] * self.mean[b]).sum()
    }

    /// Support `(min edge, max edge)`.
    pub fn support(&self) -> (f64, f64) {
        (self.edges[0], self.edges[self.edges.len() - 1])
    }

    /// Logical storage: edges + mass + mean as f64.
    pub fn storage_bytes(&self) -> usize {
        (self.edges.len() + self.mass.len() + self.mean.len()) * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pass_common::rng::rng_from_seed;
    use rand::Rng;

    #[test]
    fn mass_sums_to_one() {
        let mut rng = rng_from_seed(1);
        let values: Vec<f64> = (0..10_000).map(|_| rng.gen::<f64>() * 7.0).collect();
        let h = Histogram::build(&values, 32);
        let total: f64 = (0..h.bins()).map(|b| h.mass[b]).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn full_range_prob_is_one() {
        let values: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let h = Histogram::build(&values, 8);
        let (lo, hi) = h.support();
        assert!((h.prob(lo, hi) - 1.0).abs() < 1e-9);
        assert_eq!(h.prob(hi + 1.0, hi + 2.0), 0.0);
    }

    #[test]
    fn range_prob_tracks_truth_on_uniform_data() {
        let mut rng = rng_from_seed(2);
        let values: Vec<f64> = (0..50_000).map(|_| rng.gen::<f64>()).collect();
        let h = Histogram::build(&values, 64);
        let truth = values
            .iter()
            .filter(|&&v| (0.25..=0.6).contains(&v))
            .count() as f64
            / values.len() as f64;
        assert!((h.prob(0.25, 0.6) - truth).abs() < 0.01);
    }

    #[test]
    fn expectation_tracks_truth() {
        let mut rng = rng_from_seed(3);
        let values: Vec<f64> = (0..50_000).map(|_| rng.gen::<f64>() * 10.0).collect();
        let h = Histogram::build(&values, 64);
        let truth: f64 = values
            .iter()
            .filter(|&&v| (2.0..=8.0).contains(&v))
            .sum::<f64>()
            / values.len() as f64;
        assert!((h.expectation(2.0, 8.0) - truth).abs() < 0.05);
        assert!((h.mean_all() - 5.0).abs() < 0.05);
    }

    #[test]
    fn point_mass_columns_work() {
        // A constant column (e.g. a popular categorical code).
        let values = vec![3.0; 1000];
        let h = Histogram::build(&values, 16);
        assert!((h.prob(3.0, 3.0) - 1.0).abs() < 1e-9);
        assert_eq!(h.prob(2.0, 2.9), 0.0);
        assert!((h.expectation(0.0, 10.0) - 3.0).abs() < 1e-9);
    }

    #[test]
    fn heavy_duplicates_do_not_split_bins() {
        // 90% zeros, 10% spread: the zero mass must stay intact.
        let mut values = vec![0.0; 900];
        values.extend((1..=100).map(|i| i as f64));
        let h = Histogram::build(&values, 10);
        assert!((h.prob(0.0, 0.0) - 0.9).abs() < 1e-9);
    }
}
