//! JOIN — fact ⋈ dimension foreign-key join estimation from a fact-side
//! sample (*Joins on Samples*, Huang et al.; the composable-estimator
//! framing of Nirkhiwale et al.'s sampling algebra).
//!
//! The engine samples the **fact** side uniformly and hash-indexes the
//! **dimension** side (carried inside the [`JoinSpec`]) by its unique
//! key column. Because the key is unique, every fact row joins at most
//! one dimension row, so the sampled join is materialized once at build
//! time as a *joined sample*: each sampled fact row keeps its value and
//! fact predicates and appends its partner's attribute columns; a
//! dangling FK (no partner) turns the row's **entire predicate row**
//! into NaN, which fails every `lo <= x && x <= hi` comparison in the
//! scan kernel and in `Table::matches` alike — the inner join drops the
//! row for every rectangle, even when the join adds no attribute
//! columns.
//!
//! Estimation then *is* single-table φ-transform estimation over the
//! joined sample: the Horvitz–Thompson estimator scales the sample mean
//! of φ by the fact population `N`, and the CLT variance
//! `pop_var(φ)/K · fpc` is exactly Huang et al.'s sample-one-side join
//! variance for the unique-key case (each sampled tuple contributes an
//! independent φ draw), feeding the ordinary [`Estimate`] CI machinery.
//! Unbiasedness for SUM/COUNT and CI coverage are pinned statistically
//! by `tests/join_contract.rs`.
//!
//! MIN/MAX are rejected with a typed error: an extremum of the join can
//! hide entirely in unsampled fact rows, so no unbiased sample-side
//! estimator exists.

use std::collections::HashMap;

use pass_common::rng::rng_from_seed;
use pass_common::{
    AggKind, EngineSpec, Estimate, JoinSpec, PassError, Query, Result, Synopsis, LAMBDA_99,
};
use pass_sampling::{with_scratch, PointVariance, Sample};
use pass_table::Table;

/// A fact-side uniform sample joined against a hash-indexed dimension
/// side, answering SUM/COUNT/AVG over predicate rectangles that span
/// both sides (fact dimensions first, then the dimension attributes in
/// `dim_attrs` order).
#[derive(Debug, Clone)]
pub struct JoinSynopsis {
    /// The materialized joined sample (fact dims + attribute dims).
    pub(crate) sample: Sample,
    /// Key bit-pattern → dimension row; spec-derived, so snapshots omit
    /// it and `Engine::load` rebuilds it from the header spec.
    pub(crate) index: HashMap<u64, usize>,
    pub(crate) lambda: f64,
    /// Query arity: fact predicate dims + dimension attribute dims.
    pub(crate) dims: usize,
    /// Fact-side population `N` the HT estimator scales by.
    pub(crate) total_rows: u64,
    pub(crate) spec: JoinSpec,
}

/// The dimension side of a spec as a concrete table: a placeholder
/// aggregation column, the key column as predicate dimension 0, and the
/// attribute columns after it — the shape [`Table::key_index`] and the
/// join loop probe.
fn dim_table(spec: &JoinSpec) -> Result<Table> {
    let n = spec.dim_keys.len();
    let mut predicates = Vec::with_capacity(1 + spec.dim_attrs.len());
    predicates.push(spec.dim_keys.clone());
    predicates.extend(spec.dim_attrs.iter().cloned());
    let mut names = vec!["dim_value".to_string(), "dim_key".to_string()];
    names.extend((0..spec.dim_attrs.len()).map(|j| format!("dim_attr{j}")));
    Table::new(vec![0.0; n], predicates, names)
}

/// Materialize the join of the sampled fact rows against the indexed
/// dimension side. Matched rows carry their fact predicates verbatim
/// plus the partner's attributes; dangling rows go all-NaN on every
/// predicate column (see the module docs for why that is the exact
/// inner-join semantics under rectangle predicates).
fn join_rows(
    fact: &Table,
    dim_side: &Table,
    index: &HashMap<u64, usize>,
    fk_dim: usize,
) -> Result<Table> {
    let fact_dims = fact.dims();
    let attr_dims = dim_side.dims() - 1;
    let dims = fact_dims + attr_dims;
    let mut values = Vec::with_capacity(fact.n_rows());
    let mut predicates: Vec<Vec<f64>> = (0..dims)
        .map(|_| Vec::with_capacity(fact.n_rows()))
        .collect();
    for i in 0..fact.n_rows() {
        values.push(fact.value(i));
        let key = fact.predicate(fk_dim, i);
        // The same canonicalization the index build applies: -0.0 probes
        // under +0.0's bits; a NaN FK stays NaN and (the index holds no
        // NaN keys) dangles, matching NaN's join-nothing semantics.
        let canonical = if key == 0.0 { 0.0f64 } else { key };
        match index.get(&canonical.to_bits()) {
            Some(&row) => {
                for (d, col) in predicates.iter_mut().take(fact_dims).enumerate() {
                    col.push(fact.predicate(d, i));
                }
                for j in 0..attr_dims {
                    predicates[fact_dims + j].push(dim_side.predicate(1 + j, row));
                }
            }
            None => {
                for col in &mut predicates {
                    col.push(f64::NAN);
                }
            }
        }
    }
    let mut names = Vec::with_capacity(1 + dims);
    names.extend(fact.names().iter().cloned());
    names.extend((0..attr_dims).map(|j| format!("dim_attr{j}")));
    Table::new(values, predicates, names)
}

/// The typed rejection for aggregates no fact-side sample can estimate
/// without bias (an unsampled fact row can hold the true extremum).
fn reject_extremum(agg: AggKind) -> Result<()> {
    if matches!(agg, AggKind::Min | AggKind::Max) {
        return Err(PassError::InvalidParameter(
            "agg",
            format!("{agg} has no unbiased estimator over a fact-side join sample"),
        ));
    }
    Ok(())
}

impl JoinSynopsis {
    /// Validate the spec, index the dimension side, sample the fact side
    /// (`table`), and materialize the joined sample (λ defaults to the
    /// paper's 2.576).
    pub fn build(table: &Table, spec: &JoinSpec) -> Result<Self> {
        spec.validate()?;
        if table.n_rows() == 0 {
            return Err(PassError::EmptyInput("join over an empty fact table"));
        }
        if spec.fk_dim >= table.dims() {
            return Err(PassError::InvalidParameter(
                "fk_dim",
                format!(
                    "fact table has {} predicate dimensions but the FK is dimension {}",
                    table.dims(),
                    spec.fk_dim
                ),
            ));
        }
        let dim_side = dim_table(spec)?;
        let index = dim_side.key_index(0)?;
        let mut rng = rng_from_seed(spec.seed);
        let fact_sample = Sample::uniform(table, spec.k, &mut rng)?;
        let joined = join_rows(fact_sample.rows(), &dim_side, &index, spec.fk_dim)?;
        let sample = Sample::from_rows(joined, table.n_rows() as u64)?;
        Ok(Self {
            sample,
            index,
            lambda: LAMBDA_99,
            dims: table.dims() + spec.attr_dims(),
            total_rows: table.n_rows() as u64,
            spec: spec.clone(),
        })
    }

    /// Reassemble from snapshot state. The hash index is **not**
    /// serialized — it is spec-derived, so the loader rebuilds it from
    /// the header spec exactly as [`build`](Self::build) would; only the
    /// randomized joined sample (and the λ override) travel in the
    /// snapshot. The caller (`crate::snapshot::load_join`) has already
    /// validated the spec and the sample/dims/population invariants.
    pub(crate) fn from_snapshot_parts(
        spec: JoinSpec,
        sample: Sample,
        lambda: f64,
        total_rows: u64,
    ) -> Result<Self> {
        let dims = sample.rows().dims();
        let index = dim_table(&spec)?.key_index(0)?;
        Ok(Self {
            sample,
            index,
            lambda,
            dims,
            total_rows,
            spec,
        })
    }

    /// Replace the confidence multiplier λ used for CI half-widths.
    pub fn with_lambda(mut self, lambda: f64) -> Self {
        self.lambda = lambda;
        self
    }

    /// The materialized joined sample.
    pub fn sample(&self) -> &Sample {
        &self.sample
    }

    /// Number of dimension-side rows in the hash index.
    pub fn indexed_keys(&self) -> usize {
        self.index.len()
    }

    /// One kernel point estimate into the engine's [`Estimate`] (shared
    /// by the single and batched paths, which keeps them bit-identical).
    fn finish(&self, point: Option<PointVariance>) -> Result<Estimate> {
        let est = match point {
            Some(pv) => {
                let ci_half = self.lambda * pv.variance.sqrt();
                Estimate::approximate(pv.value, ci_half)
            }
            None => {
                return Err(PassError::EmptyInput(
                    "no sampled joined tuple matches the predicate",
                ))
            }
        };
        // Like US, the whole joined sample is scanned per query; only
        // the unsampled fact rows are skipped.
        Ok(est.with_accounting(
            self.sample.k() as u64,
            self.total_rows - self.sample.k() as u64,
        ))
    }
}

impl Synopsis for JoinSynopsis {
    fn name(&self) -> &str {
        "JOIN"
    }

    fn spec(&self) -> EngineSpec {
        EngineSpec::Join(self.spec.clone())
    }

    fn save_state(&self, out: &mut Vec<u8>) -> Result<()> {
        crate::snapshot::save_join(self, out);
        Ok(())
    }

    fn estimate(&self, query: &Query) -> Result<Estimate> {
        if query.dims() != self.dims {
            return Err(PassError::DimensionMismatch {
                expected: self.dims,
                got: query.dims(),
            });
        }
        reject_extremum(query.agg)?;
        let point = with_scratch(|scratch| scratch.estimate(query.agg, &self.sample, &query.rect));
        self.finish(point)
    }

    /// Fused batch path over the joined sample, element-wise
    /// bit-identical to [`estimate`](Synopsis::estimate); batches with a
    /// mis-sized or MIN/MAX query fall back to the per-query path so
    /// error semantics stay per-element.
    fn estimate_many(&self, queries: &[Query]) -> Vec<Result<Estimate>> {
        if queries
            .iter()
            .any(|q| q.dims() != self.dims || matches!(q.agg, AggKind::Min | AggKind::Max))
        {
            return queries.iter().map(|q| self.estimate(q)).collect();
        }
        with_scratch(|scratch| {
            let mut points = Vec::with_capacity(queries.len());
            scratch.estimate_batch(&self.sample, queries, &mut points);
            points.into_iter().map(|p| self.finish(p)).collect()
        })
    }

    /// Joined-sample payload plus the hash index (one key/row entry per
    /// dimension row).
    fn storage_bytes(&self) -> usize {
        self.sample.storage_bytes() + self.index.len() * (std::mem::size_of::<u64>() * 2)
    }

    fn dims(&self) -> usize {
        self.dims
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pass_common::Rect;
    use pass_table::datasets::uniform;

    /// A fact table whose FK column (dim 1) cycles 0..dim_n, with some
    /// rows pointed at a dangling key, plus a dimension side whose
    /// attribute is 10× the key.
    fn fixture(fact_n: usize, dim_n: usize, dangle_every: usize) -> (Table, JoinSpec) {
        let values: Vec<f64> = (0..fact_n).map(|i| (i % 13) as f64 + 1.0).collect();
        let x: Vec<f64> = (0..fact_n).map(|i| i as f64 / fact_n as f64).collect();
        let fk: Vec<f64> = (0..fact_n)
            .map(|i| {
                if dangle_every > 0 && i % dangle_every == 0 {
                    -1.0 // no such dimension key
                } else {
                    (i % dim_n) as f64
                }
            })
            .collect();
        let fact = Table::new(
            values,
            vec![x, fk],
            vec!["v".into(), "x".into(), "fk".into()],
        )
        .unwrap();
        let dim_keys: Vec<f64> = (0..dim_n).map(|k| k as f64).collect();
        let dim_attr: Vec<f64> = dim_keys.iter().map(|k| k * 10.0).collect();
        let spec = JoinSpec::new(1, dim_keys, vec![dim_attr], 600);
        (fact, spec)
    }

    /// Exact join truth by nested-loop reference.
    fn nested_loop_truth(fact: &Table, spec: &JoinSpec, agg: AggKind, rect: &Rect) -> Option<f64> {
        let mut agg_state = pass_common::Aggregates::empty();
        for i in 0..fact.n_rows() {
            let key = fact.predicate(spec.fk_dim, i);
            // IEEE == already treats -0.0 and 0.0 as equal, matching the
            // index's canonicalization.
            let partner = spec.dim_keys.iter().position(|&k| k == key);
            let Some(row) = partner else { continue };
            let mut point: Vec<f64> = (0..fact.dims()).map(|d| fact.predicate(d, i)).collect();
            point.extend(spec.dim_attrs.iter().map(|col| col[row]));
            let inside = (0..rect.dims()).all(|d| rect.lo(d) <= point[d] && point[d] <= rect.hi(d));
            if inside {
                agg_state.insert(fact.value(i));
            }
        }
        agg_state.answer(agg)
    }

    #[test]
    fn estimates_track_join_truth() {
        let (fact, spec) = fixture(20_000, 16, 0);
        let spec = JoinSpec { k: 4_000, ..spec };
        let join = JoinSynopsis::build(&fact, &spec).unwrap();
        assert_eq!(join.dims(), 3);
        // Constrain both sides: x in [0.1, 0.9], attr in [20, 110].
        let rect = Rect::new(&[(0.1, 0.9), (0.0, 16.0), (20.0, 110.0)]);
        for agg in [AggKind::Sum, AggKind::Count, AggKind::Avg] {
            let truth = nested_loop_truth(&fact, &spec, agg, &rect).unwrap();
            let est = join.estimate(&Query::new(agg, rect.clone())).unwrap();
            let rel = (est.value - truth).abs() / truth;
            assert!(
                rel < 0.1,
                "{agg}: rel {rel} (est {} truth {truth})",
                est.value
            );
        }
    }

    #[test]
    fn dangling_fks_are_dropped_like_an_inner_join() {
        let (fact, spec) = fixture(10_000, 8, 3);
        let join = JoinSynopsis::build(&fact, &spec).unwrap();
        let everything = Rect::new(&[
            (f64::NEG_INFINITY, f64::INFINITY),
            (f64::NEG_INFINITY, f64::INFINITY),
            (f64::NEG_INFINITY, f64::INFINITY),
        ]);
        let truth = nested_loop_truth(&fact, &spec, AggKind::Count, &everything).unwrap();
        assert!(truth < fact.n_rows() as f64, "some rows must dangle");
        let est = join
            .estimate(&Query::new(AggKind::Count, everything))
            .unwrap();
        let rel = (est.value - truth).abs() / truth;
        assert!(rel < 0.1, "rel {rel} (est {} truth {truth})", est.value);
    }

    #[test]
    fn empty_join_answers_zero_or_typed_empty() {
        // A dimension side sharing no key with the fact side: every row
        // dangles, the join is empty.
        let fact = uniform(2_000, 3);
        let spec = JoinSpec::new(0, vec![100.0, 200.0], vec![vec![1.0, 2.0]], 256);
        let join = JoinSynopsis::build(&fact, &spec).unwrap();
        let rect = Rect::new(&[(f64::NEG_INFINITY, f64::INFINITY); 2]);
        for agg in [AggKind::Sum, AggKind::Count] {
            let est = join.estimate(&Query::new(agg, rect.clone())).unwrap();
            assert_eq!(est.value, 0.0, "{agg}");
            assert_eq!(est.ci_half, 0.0, "{agg}");
        }
        assert!(matches!(
            join.estimate(&Query::new(AggKind::Avg, rect)),
            Err(PassError::EmptyInput(_))
        ));
    }

    #[test]
    fn min_max_are_typed_rejections_on_every_path() {
        let (fact, spec) = fixture(1_000, 4, 0);
        let join = JoinSynopsis::build(&fact, &spec).unwrap();
        let rect = Rect::new(&[(0.0, 1.0), (0.0, 4.0), (0.0, 40.0)]);
        for agg in [AggKind::Min, AggKind::Max] {
            let q = Query::new(agg, rect.clone());
            assert!(matches!(
                join.estimate(&q),
                Err(PassError::InvalidParameter("agg", _))
            ));
            let batch = join.estimate_many(std::slice::from_ref(&q));
            assert!(matches!(
                batch[0],
                Err(PassError::InvalidParameter("agg", _))
            ));
        }
    }

    #[test]
    fn batch_path_is_bit_identical() {
        let (fact, spec) = fixture(5_000, 8, 4);
        let join = JoinSynopsis::build(&fact, &spec).unwrap();
        let queries: Vec<Query> = (0..32)
            .map(|i| {
                let f = i as f64 / 32.0;
                let agg = [AggKind::Sum, AggKind::Count, AggKind::Avg][i % 3];
                Query::new(
                    agg,
                    Rect::new(&[(f * 0.5, 0.5 + f * 0.5), (0.0, 8.0), (0.0, 80.0)]),
                )
            })
            .collect();
        let batched = join.estimate_many(&queries);
        for (q, b) in queries.iter().zip(&batched) {
            assert_eq!(join.estimate(q), *b);
        }
    }

    #[test]
    fn build_rejects_bad_inputs_with_typed_errors() {
        let fact = uniform(100, 1);
        // FK dimension out of range.
        let spec = JoinSpec::new(5, vec![1.0], vec![], 16);
        assert!(matches!(
            JoinSynopsis::build(&fact, &spec),
            Err(PassError::InvalidParameter("fk_dim", _))
        ));
        // Invalid spec (duplicate keys) is caught before any work.
        let spec = JoinSpec::new(0, vec![1.0, 1.0], vec![], 16);
        assert!(matches!(
            JoinSynopsis::build(&fact, &spec),
            Err(PassError::InvalidParameter("dim_keys", _))
        ));
        // Empty fact side.
        let empty = Table::one_dim(vec![], vec![]).unwrap();
        let spec = JoinSpec::new(0, vec![1.0], vec![], 16);
        assert!(matches!(
            JoinSynopsis::build(&empty, &spec),
            Err(PassError::EmptyInput(_))
        ));
    }

    #[test]
    fn dimension_mismatch_is_rejected() {
        let (fact, spec) = fixture(500, 4, 0);
        let join = JoinSynopsis::build(&fact, &spec).unwrap();
        // The fact table alone is 2-D; join queries need 3 dims.
        let q = Query::new(AggKind::Sum, Rect::new(&[(0.0, 1.0), (0.0, 4.0)]));
        assert!(matches!(
            join.estimate(&q),
            Err(PassError::DimensionMismatch {
                expected: 3,
                got: 2
            })
        ));
    }

    #[test]
    fn spec_round_trips_and_storage_counts_index() {
        let (fact, spec) = fixture(2_000, 8, 0);
        let join = JoinSynopsis::build(&fact, &spec).unwrap();
        assert_eq!(join.spec(), EngineSpec::Join(spec.clone()));
        assert_eq!(join.name(), "JOIN");
        assert_eq!(join.indexed_keys(), 8);
        assert_eq!(join.storage_bytes(), join.sample().storage_bytes() + 8 * 16);
    }

    #[test]
    fn negative_zero_fk_joins_the_zero_key() {
        // A -0.0 FK must find the 0.0 dimension key (canonicalized probe).
        let fact = Table::one_dim(vec![-0.0, 1.0, 2.0], vec![5.0, 6.0, 7.0]).unwrap();
        let spec = JoinSpec::new(0, vec![0.0, 1.0], vec![vec![9.0, 11.0]], 3);
        let join = JoinSynopsis::build(&fact, &spec).unwrap();
        // k = population, so the sample is the whole table: COUNT over
        // everything is the exact matched-row count (2; the key-2 row
        // dangles).
        let rect = Rect::new(&[
            (f64::NEG_INFINITY, f64::INFINITY),
            (f64::NEG_INFINITY, f64::INFINITY),
        ]);
        let est = join.estimate(&Query::new(AggKind::Count, rect)).unwrap();
        assert_eq!(est.value, 2.0);
    }
}
