//! Snapshot codecs for the baseline engines and the spec-driven load
//! dispatch (see `pass_common::snapshot` for the container format).
//!
//! Each engine serializes only what its [`EngineSpec`] cannot rebuild —
//! the drawn samples, learned structures, and λ overrides — and derives
//! the rest (names, requested parameters, seeds) from the spec embedded
//! in the snapshot header, exactly as the build path would.
//! [`ShardedSynopsis`] recurses: its state is one section naming the
//! shard count and arity, followed by every shard's own state sections
//! in shard order, each decoded against the spec
//! [`ShardedSynopsis::shard_spec`] derives for that index.
//!
//! Decoders re-validate every invariant the estimators rely on (sample
//! arities, group assignments, SPN child ordering) so a checksum-valid
//! but drifted payload fails at load time with
//! [`SnapshotError::SpecMismatch`] instead of panicking at query time.

use std::sync::Arc;

use pass_common::snapshot::{
    put_f64, put_f64_seq, put_u32_seq, put_u64, put_u64_seq, put_u8, put_usize, write_section,
    Cursor, SnapshotError, SnapshotReader,
};
use pass_common::{EngineSpec, JoinSpec, PassError, Result, Synopsis};
use pass_core::snapshot::{decode_tree, encode_tree, load_pass};
use pass_sampling::snapshot::{decode_sample, encode_sample};
use pass_table::snapshot::{decode_table, encode_table};

use crate::spn::{Node, SpnSynopsis};
use crate::st::Stratum;
use crate::{
    AqpPlusPlus, JoinSynopsis, ShardedSynopsis, StratifiedSynopsis, UniformSynopsis,
    VerdictSynopsis,
};

fn drift(why: String) -> PassError {
    SnapshotError::SpecMismatch(why).into()
}

/// Decode the engine `spec` describes from `r`'s state sections — the
/// load-side mirror of `Engine::build`'s dispatch. The caller owns the
/// reader and calls `finish()` after, so recursive (sharded) decodes
/// compose.
pub(crate) fn load_state(
    spec: &EngineSpec,
    r: &mut SnapshotReader<'_>,
) -> Result<Arc<dyn Synopsis>> {
    Ok(match spec {
        EngineSpec::Pass(pass_spec) => Arc::new(load_pass(pass_spec, r)?),
        EngineSpec::Uniform { k, seed } => Arc::new(load_us(*k, *seed, r)?),
        EngineSpec::Stratified { strata, k, seed } => Arc::new(load_st(*strata, *k, *seed, r)?),
        EngineSpec::AqpPlusPlus {
            partitions,
            k,
            seed,
            tree_dims,
        } => Arc::new(load_aqppp(*partitions, *k, *seed, tree_dims.as_deref(), r)?),
        EngineSpec::Verdict { ratio, seed } => Arc::new(load_verdict(*ratio, *seed, r)?),
        EngineSpec::Spn { ratio, seed } => Arc::new(load_spn(*ratio, *seed, r)?),
        EngineSpec::Join(join_spec) => Arc::new(load_join(join_spec, r)?),
        EngineSpec::Sharded { inner, plan } => Arc::new(load_sharded(inner, plan, r)?),
        EngineSpec::Opaque { name } => {
            return Err(PassError::InvalidParameter(
                "spec",
                format!("opaque spec `{name}` does not describe a loadable engine"),
            ))
        }
    })
}

// --- US ---

pub(crate) fn save_us(us: &UniformSynopsis, out: &mut Vec<u8>) {
    let mut state = Vec::new();
    put_f64(&mut state, us.lambda);
    put_usize(&mut state, us.dims);
    put_u64(&mut state, us.total_rows);
    encode_sample(&mut state, &us.sample);
    write_section(out, &state);
}

fn load_us(requested_k: usize, seed: u64, r: &mut SnapshotReader<'_>) -> Result<UniformSynopsis> {
    let mut c = Cursor::new(r.section()?);
    let lambda = c.f64("US lambda")?;
    let dims = c.u64("US dims")? as usize;
    let total_rows = c.u64("US total rows")?;
    let sample = decode_sample(&mut c)?;
    c.done("US state")?;
    if dims == 0 || sample.rows().dims() != dims {
        return Err(drift("US sample arity disagrees with its dims".into()));
    }
    if total_rows < sample.k() as u64 {
        return Err(drift("US total rows below its sample size".into()));
    }
    Ok(UniformSynopsis {
        sample,
        lambda,
        dims,
        total_rows,
        requested_k,
        seed,
    })
}

// --- ST ---

pub(crate) fn save_st(st: &StratifiedSynopsis, out: &mut Vec<u8>) {
    let mut state = Vec::new();
    put_f64(&mut state, st.lambda);
    put_u64(&mut state, st.total_rows);
    put_usize(&mut state, st.strata.len());
    for s in &st.strata {
        put_f64(&mut state, s.key_lo);
        put_f64(&mut state, s.key_hi);
        encode_sample(&mut state, &s.sample);
    }
    write_section(out, &state);
}

fn load_st(
    strata: usize,
    k: usize,
    seed: u64,
    r: &mut SnapshotReader<'_>,
) -> Result<StratifiedSynopsis> {
    let mut c = Cursor::new(r.section()?);
    let lambda = c.f64("ST lambda")?;
    let total_rows = c.u64("ST total rows")?;
    let n = c.len(17, "ST strata")?;
    let mut decoded = Vec::with_capacity(n);
    for _ in 0..n {
        let key_lo = c.f64("stratum key lo")?;
        let key_hi = c.f64("stratum key hi")?;
        let sample = decode_sample(&mut c)?;
        if sample.rows().dims() != 1 {
            return Err(drift("ST stratum sample is not 1-D".into()));
        }
        decoded.push(Stratum {
            key_lo,
            key_hi,
            sample,
        });
    }
    c.done("ST state")?;
    if decoded.is_empty() {
        return Err(drift("ST snapshot has no strata".into()));
    }
    let sampled: u64 = decoded.iter().map(|s| s.sample.k() as u64).sum();
    if total_rows < sampled {
        return Err(drift("ST total rows below its sampled rows".into()));
    }
    Ok(StratifiedSynopsis {
        strata: decoded,
        lambda,
        total_rows,
        requested: (strata, k, seed),
    })
}

// --- AQP++ / KD-US ---

pub(crate) fn save_aqppp(aqp: &AqpPlusPlus, out: &mut Vec<u8>) {
    let mut tree = Vec::new();
    encode_tree(&mut tree, &aqp.tree);
    write_section(out, &tree);

    let mut state = Vec::new();
    put_f64(&mut state, aqp.lambda);
    put_u8(&mut state, u8::from(aqp.name == "KD-US"));
    put_usize(&mut state, aqp.query_dims);
    encode_sample(&mut state, &aqp.sample);
    write_section(out, &state);
}

fn load_aqppp(
    partitions: usize,
    k: usize,
    seed: u64,
    tree_dims: Option<&[usize]>,
    r: &mut SnapshotReader<'_>,
) -> Result<AqpPlusPlus> {
    let mut c = Cursor::new(r.section()?);
    let tree = decode_tree(&mut c)?;
    c.done("AQP++ tree")?;

    let mut c = Cursor::new(r.section()?);
    let lambda = c.f64("AQP++ lambda")?;
    let name = match c.u8("AQP++ variant")? {
        0 => "AQP++",
        1 => "KD-US",
        other => return Err(drift(format!("unknown AQP++ variant tag {other}"))),
    };
    let query_dims = c.u64("AQP++ query dims")? as usize;
    let sample = decode_sample(&mut c)?;
    c.done("AQP++ state")?;

    if query_dims == 0 || sample.rows().dims() != query_dims {
        return Err(drift("AQP++ sample arity disagrees with its dims".into()));
    }
    match tree_dims {
        Some(dims) => {
            if dims.len() != tree.dims() || dims.iter().any(|&d| d >= query_dims) {
                return Err(drift(
                    "AQP++ workload-shift mapping disagrees with the tree".into(),
                ));
            }
        }
        None => {
            if tree.dims() != query_dims {
                return Err(drift(format!(
                    "AQP++ tree covers {} dims but queries expect {query_dims}",
                    tree.dims()
                )));
            }
        }
    }
    Ok(AqpPlusPlus {
        tree,
        sample,
        lambda,
        name,
        tree_dims: tree_dims.map(<[usize]>::to_vec),
        query_dims,
        requested: (partitions, k, seed),
    })
}

// --- JOIN ---

pub(crate) fn save_join(j: &JoinSynopsis, out: &mut Vec<u8>) {
    // Spec-derivation rule: the dimension hash index is rebuilt from the
    // header spec at load time, so only the randomized joined sample
    // (plus λ and the population accounting) is state.
    let mut state = Vec::new();
    put_f64(&mut state, j.lambda);
    put_usize(&mut state, j.dims);
    put_u64(&mut state, j.total_rows);
    encode_sample(&mut state, &j.sample);
    write_section(out, &state);
}

fn load_join(spec: &JoinSpec, r: &mut SnapshotReader<'_>) -> Result<JoinSynopsis> {
    // A header spec the build path would reject cannot describe a real
    // engine — and the index rebuild below relies on its invariants.
    if let Err(err) = spec.validate() {
        return Err(drift(format!("JOIN header spec is invalid: {err}")));
    }
    let mut c = Cursor::new(r.section()?);
    let lambda = c.f64("JOIN lambda")?;
    let dims = c.u64("JOIN dims")? as usize;
    let total_rows = c.u64("JOIN total rows")?;
    let sample = decode_sample(&mut c)?;
    c.done("JOIN state")?;
    if dims == 0 || sample.rows().dims() != dims {
        return Err(drift("JOIN sample arity disagrees with its dims".into()));
    }
    if dims <= spec.attr_dims() {
        return Err(drift(
            "JOIN dims leave no fact-side predicate dimensions".into(),
        ));
    }
    if spec.fk_dim >= dims - spec.attr_dims() {
        return Err(drift("JOIN FK dimension is outside the fact side".into()));
    }
    if total_rows < sample.k() as u64 {
        return Err(drift("JOIN total rows below its sample size".into()));
    }
    JoinSynopsis::from_snapshot_parts(spec.clone(), sample, lambda, total_rows)
}

// --- VerdictDB-style scramble ---

pub(crate) fn save_verdict(v: &VerdictSynopsis, out: &mut Vec<u8>) {
    let mut state = Vec::new();
    put_f64(&mut state, v.lambda);
    put_u64(&mut state, v.population);
    put_usize(&mut state, v.n_groups);
    put_u32_seq(&mut state, &v.group);
    encode_table(&mut state, &v.rows);
    write_section(out, &state);
}

fn load_verdict(ratio: f64, seed: u64, r: &mut SnapshotReader<'_>) -> Result<VerdictSynopsis> {
    let mut c = Cursor::new(r.section()?);
    let lambda = c.f64("scramble lambda")?;
    let population = c.u64("scramble population")?;
    let n_groups = c.u64("scramble group count")? as usize;
    let group = c.u32_seq("scramble group assignments")?;
    let rows = decode_table(&mut c)?;
    c.done("scramble state")?;
    if n_groups == 0 {
        return Err(drift("scramble has zero subsample groups".into()));
    }
    if group.len() != rows.n_rows() {
        return Err(drift(
            "scramble group assignments disagree with its rows".into(),
        ));
    }
    if group.iter().any(|&g| g as usize >= n_groups) {
        return Err(drift("scramble group assignment out of range".into()));
    }
    if population < rows.n_rows() as u64 {
        return Err(drift("scramble population below its row count".into()));
    }
    Ok(VerdictSynopsis {
        rows,
        group,
        n_groups,
        population,
        lambda,
        name: format!("VerdictDB-{}%", (ratio * 100.0).round()),
        requested: (ratio, seed),
    })
}

// --- DeepDB-style SPN ---

const SPN_SUM: u8 = 0;
const SPN_PRODUCT: u8 = 1;
const SPN_LEAF: u8 = 2;

pub(crate) fn save_spn(spn: &SpnSynopsis, out: &mut Vec<u8>) {
    let mut state = Vec::new();
    put_usize(&mut state, spn.dims);
    put_u64(&mut state, spn.population);
    put_usize(&mut state, spn.root);
    put_usize(&mut state, spn.nodes.len());
    for node in &spn.nodes {
        match node {
            Node::Sum(children) => {
                put_u8(&mut state, SPN_SUM);
                put_usize(&mut state, children.len());
                for &(w, child) in children {
                    put_f64(&mut state, w);
                    put_usize(&mut state, child);
                }
            }
            Node::Product(children) => {
                put_u8(&mut state, SPN_PRODUCT);
                put_usize(&mut state, children.len());
                for (cols, child) in children {
                    let cols: Vec<u64> = cols.iter().map(|&col| col as u64).collect();
                    put_u64_seq(&mut state, &cols);
                    put_usize(&mut state, *child);
                }
            }
            Node::Leaf { col, hist } => {
                put_u8(&mut state, SPN_LEAF);
                put_usize(&mut state, *col);
                put_f64_seq(&mut state, &hist.edges);
                put_f64_seq(&mut state, &hist.mass);
                put_f64_seq(&mut state, &hist.mean);
            }
        }
    }
    write_section(out, &state);
}

fn load_spn(ratio: f64, seed: u64, r: &mut SnapshotReader<'_>) -> Result<SpnSynopsis> {
    let mut c = Cursor::new(r.section()?);
    let dims = c.u64("SPN dims")? as usize;
    let population = c.u64("SPN population")?;
    let root = c.u64("SPN root")? as usize;
    let n_nodes = c.len(1, "SPN nodes")?;
    let mut nodes = Vec::with_capacity(n_nodes);
    for id in 0..n_nodes {
        // `learn` pushes children before their parent, so every edge in a
        // well-formed arena points backwards; enforcing that on decode
        // makes the recursive evaluators' termination a load-time fact.
        let backward = |child: usize| -> Result<usize> {
            if child >= id {
                return Err(drift(format!(
                    "SPN node {id} has a non-backward child {child}"
                )));
            }
            Ok(child)
        };
        let node = match c.u8("SPN node tag")? {
            SPN_SUM => {
                let n = c.len(16, "sum children")?;
                let mut children = Vec::with_capacity(n);
                for _ in 0..n {
                    let w = c.f64("sum weight")?;
                    let child = backward(c.u64("sum child")? as usize)?;
                    children.push((w, child));
                }
                Node::Sum(children)
            }
            SPN_PRODUCT => {
                let n = c.len(16, "product children")?;
                let mut children = Vec::with_capacity(n);
                for _ in 0..n {
                    let cols: Vec<usize> = c
                        .u64_seq("product scope")?
                        .into_iter()
                        .map(|col| col as usize)
                        .collect();
                    if cols.iter().any(|&col| col > dims) {
                        return Err(drift(format!(
                            "SPN node {id} scopes a column beyond {dims}"
                        )));
                    }
                    let child = backward(c.u64("product child")? as usize)?;
                    children.push((cols, child));
                }
                Node::Product(children)
            }
            SPN_LEAF => {
                let col = c.u64("leaf column")? as usize;
                let edges = c.f64_seq("leaf edges")?;
                let mass = c.f64_seq("leaf mass")?;
                let mean = c.f64_seq("leaf means")?;
                if col > dims {
                    return Err(drift(format!("SPN leaf column {col} beyond {dims}")));
                }
                if mass.is_empty() || edges.len() != mass.len() + 1 || mean.len() != mass.len() {
                    return Err(drift("SPN leaf histogram arrays disagree".into()));
                }
                Node::Leaf {
                    col,
                    hist: crate::spn::Histogram { edges, mass, mean },
                }
            }
            other => return Err(drift(format!("unknown SPN node tag {other}"))),
        };
        nodes.push(node);
    }
    c.done("SPN state")?;
    if dims == 0 || population == 0 {
        return Err(drift("SPN has no dimensions or no population".into()));
    }
    if nodes.is_empty() || root >= nodes.len() {
        return Err(drift("SPN root is out of range".into()));
    }
    Ok(SpnSynopsis {
        nodes,
        root,
        dims,
        population,
        name: format!("DeepDB-{}%", (ratio * 100.0).round()),
        requested: (ratio, seed),
    })
}

// --- Sharded (recursive) ---

pub(crate) fn save_sharded(sharded: &ShardedSynopsis, out: &mut Vec<u8>) -> Result<()> {
    let mut state = Vec::new();
    put_usize(&mut state, sharded.shards.len());
    put_usize(&mut state, sharded.dims);
    write_section(out, &state);
    for shard in &sharded.shards {
        shard.save_state(out)?;
    }
    Ok(())
}

fn load_sharded(
    inner: &EngineSpec,
    plan: &pass_common::ShardPlan,
    r: &mut SnapshotReader<'_>,
) -> Result<ShardedSynopsis> {
    let mut c = Cursor::new(r.section()?);
    let n_shards = c.u64("shard count")? as usize;
    let dims = c.u64("sharded dims")? as usize;
    c.done("sharded state")?;
    if n_shards == 0 {
        return Err(drift("sharded snapshot has no shards".into()));
    }
    let mut shards: Vec<Arc<dyn Synopsis>> = Vec::with_capacity(n_shards);
    for i in 0..n_shards {
        let shard = load_state(&ShardedSynopsis::shard_spec(inner, i), r)?;
        if shard.dims() != dims {
            return Err(drift(format!(
                "shard {i} answers {} dims but the plan expects {dims}",
                shard.dims()
            )));
        }
        shards.push(shard);
    }
    // bounds: n_shards >= 1 was validated above, so shard 0 exists.
    let name = format!("Sharded[{}]-{}", shards.len(), shards[0].name());
    Ok(ShardedSynopsis {
        shards,
        plan: plan.clone(),
        inner_spec: inner.clone(),
        name,
        dims,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Engine;
    use pass_common::{AggKind, Query, ShardPlan};
    use pass_table::datasets::uniform;

    #[test]
    fn every_standard_engine_round_trips_bit_identically() {
        let t = uniform(4_000, 9);
        for spec in Engine::standard_suite(8, 300, 5) {
            let engine = Engine::build(&t, &spec).unwrap();
            let mut bytes = Vec::new();
            engine.save(&mut bytes).unwrap();
            let back = Engine::load(&bytes).unwrap();
            assert_eq!(back.spec(), engine.spec());
            assert_eq!(back.name(), engine.name());
            assert_eq!(back.storage_bytes(), engine.storage_bytes());
            for agg in AggKind::ALL {
                let q = Query::interval(agg, 0.15, 0.8);
                assert_eq!(back.estimate(&q), engine.estimate(&q), "{}", engine.name());
            }
        }
    }

    #[test]
    fn sharded_snapshots_recurse_per_shard() {
        let t = uniform(6_000, 10);
        let spec = EngineSpec::sharded(
            EngineSpec::uniform(200).with_seed(4),
            ShardPlan::row_range(3),
        );
        let engine = Engine::build(&t, &spec).unwrap();
        let mut bytes = Vec::new();
        engine.save(&mut bytes).unwrap();
        let back = Engine::load(&bytes).unwrap();
        assert_eq!(back.spec(), spec);
        assert_eq!(back.name(), "Sharded[3]-US");
        let q = Query::interval(AggKind::Sum, 0.2, 0.9);
        assert_eq!(back.estimate(&q), engine.estimate(&q));
    }

    #[test]
    fn shard_count_lies_are_spec_mismatches() {
        let t = uniform(1_000, 11);
        let spec = EngineSpec::sharded(EngineSpec::uniform(50), ShardPlan::row_range(2));
        let engine = Engine::build(&t, &spec).unwrap();
        let mut bytes = Vec::new();
        engine.save(&mut bytes).unwrap();
        // Truncating the trailing shard's sections starves the recursion.
        let cut = bytes.len() - 20;
        assert!(matches!(
            Engine::load(&bytes[..cut]).err(),
            Some(PassError::Snapshot(
                SnapshotError::Truncated { .. } | SnapshotError::ChecksumMismatch { .. }
            ))
        ));
    }
}
