//! ST — stratified sampling over equal-depth strata (Section 2.2).
//!
//! `B` strata over the first predicate dimension, `K/B` uniform samples in
//! each, weighted recombination at query time. Unlike PASS there are no
//! precomputed aggregates: every stratum intersecting the query is
//! estimated from its sample, even when fully covered.

use pass_common::rng::rng_from_seed;
use pass_common::{AggKind, EngineSpec, Estimate, PassError, Query, Result, Synopsis, LAMBDA_99};
use pass_partition::{EqualDepth, Partitioner1D};
use pass_sampling::{combine_strata, with_scratch, Sample, StratumEstimate};
use pass_table::{SortedTable, Table};

/// One stratum: its key interval, population, and sample.
#[derive(Debug, Clone)]
pub(crate) struct Stratum {
    pub(crate) key_lo: f64,
    pub(crate) key_hi: f64,
    pub(crate) sample: Sample,
}

/// Classic stratified sampling synopsis (1-D strata).
#[derive(Debug, Clone)]
pub struct StratifiedSynopsis {
    pub(crate) strata: Vec<Stratum>,
    pub(crate) lambda: f64,
    pub(crate) total_rows: u64,
    /// Requested (strata, budget, seed), kept for [`Synopsis::spec`].
    pub(crate) requested: (usize, usize, u64),
}

impl StratifiedSynopsis {
    /// Build `b` equal-depth strata with a total budget of `k` samples.
    pub fn build(table: &Table, b: usize, k: usize, seed: u64) -> Result<Self> {
        if table.n_rows() == 0 {
            return Err(PassError::EmptyInput("ST over empty table"));
        }
        if table.dims() != 1 {
            return Err(PassError::InvalidParameter(
                "table",
                "ST stratifies over exactly one predicate column".into(),
            ));
        }
        let sorted = SortedTable::from_table(table, 0);
        let partitioning = EqualDepth.partition(&sorted, b)?;
        let sorted_table = Table::one_dim(sorted.keys().to_vec(), sorted.values().to_vec())?;
        let per_stratum = (k / partitioning.len()).max(1);
        let mut rng = rng_from_seed(seed);
        let bounds = partitioning.key_bounds(&sorted);
        let mut strata = Vec::with_capacity(partitioning.len());
        for (range, (key_lo, key_hi)) in partitioning.ranges().into_iter().zip(bounds) {
            let sample = Sample::uniform_from_range(&sorted_table, range, per_stratum, &mut rng)?;
            strata.push(Stratum {
                key_lo,
                key_hi,
                sample,
            });
        }
        Ok(Self {
            strata,
            lambda: LAMBDA_99,
            total_rows: table.n_rows() as u64,
            requested: (b, k, seed),
        })
    }

    /// Replace the confidence multiplier λ used for CI half-widths
    /// (default λ₉₉; see `pass_common::stats::lambda_for_confidence`).
    pub fn with_lambda(mut self, lambda: f64) -> Self {
        self.lambda = lambda;
        self
    }

    /// Number of strata.
    pub fn n_strata(&self) -> usize {
        self.strata.len()
    }
}

impl Synopsis for StratifiedSynopsis {
    fn name(&self) -> &str {
        "ST"
    }

    fn spec(&self) -> EngineSpec {
        let (strata, k, seed) = self.requested;
        EngineSpec::Stratified { strata, k, seed }
    }

    fn save_state(&self, out: &mut Vec<u8>) -> Result<()> {
        crate::snapshot::save_st(self, out);
        Ok(())
    }

    fn estimate(&self, query: &Query) -> Result<Estimate> {
        if query.dims() != 1 {
            return Err(PassError::DimensionMismatch {
                expected: 1,
                got: query.dims(),
            });
        }
        let (q_lo, q_hi) = (query.rect.lo(0), query.rect.hi(0));
        let mut estimates = Vec::new();
        let mut processed = 0u64;
        let mut n_q = 0u64;
        for s in &self.strata {
            if s.key_hi < q_lo || s.key_lo > q_hi {
                continue; // stratum cannot intersect the predicate
            }
            processed += s.sample.k() as u64;
            let point = with_scratch(|scratch| scratch.estimate(query.agg, &s.sample, &query.rect));
            if let Some(point) = point {
                if query.agg != AggKind::Avg || point.k_pred > 0 {
                    // AVG strata weight: estimated relevant population
                    // N_i · K_pred/K_i (see pass-core::query for why the
                    // naive full-N_i weighting biases partial strata).
                    let population = if query.agg == AggKind::Avg {
                        let n_i = s.sample.population() as f64;
                        let sel = point.k_pred as f64 / s.sample.k().max(1) as f64;
                        ((n_i * sel).round() as u64).max(1)
                    } else {
                        s.sample.population()
                    };
                    n_q += population;
                    estimates.push(StratumEstimate { point, population });
                }
            }
        }
        if estimates.is_empty() {
            return match query.agg {
                AggKind::Sum | AggKind::Count => Ok(Estimate::approximate(0.0, 0.0)
                    .with_accounting(processed, self.total_rows - processed)),
                _ => Err(PassError::EmptyInput(
                    "no sampled tuple matches the predicate",
                )),
            };
        }
        let combined = combine_strata(query.agg, &estimates, n_q);
        let ci_half = match query.agg {
            AggKind::Min | AggKind::Max => 0.0,
            _ => self.lambda * combined.variance.sqrt(),
        };
        Ok(Estimate::approximate(combined.value, ci_half)
            .with_accounting(processed, self.total_rows - processed))
    }

    fn storage_bytes(&self) -> usize {
        // Samples + per-stratum key bounds and population.
        self.strata
            .iter()
            .map(|s| s.sample.storage_bytes() + 3 * std::mem::size_of::<f64>())
            .sum()
    }

    fn dims(&self) -> usize {
        1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pass_table::datasets::{adversarial, uniform};

    #[test]
    fn estimates_track_truth() {
        let t = uniform(20_000, 1);
        let st = StratifiedSynopsis::build(&t, 32, 2_000, 2).unwrap();
        assert_eq!(st.n_strata(), 32);
        for agg in [AggKind::Sum, AggKind::Count, AggKind::Avg] {
            let q = Query::interval(agg, 0.2, 0.8);
            let est = st.estimate(&q).unwrap();
            let truth = t.ground_truth(&q).unwrap();
            let rel = (est.value - truth).abs() / truth;
            assert!(rel < 0.1, "{agg}: rel {rel}");
        }
    }

    #[test]
    fn only_intersecting_strata_processed() {
        let t = uniform(10_000, 3);
        let st = StratifiedSynopsis::build(&t, 10, 1_000, 4).unwrap();
        // Query inside roughly one stratum.
        let q = Query::interval(AggKind::Sum, 0.0, 0.05);
        let est = st.estimate(&q).unwrap();
        assert!(
            est.tuples_processed <= 2 * 100,
            "processed {}",
            est.tuples_processed
        );
    }

    #[test]
    fn beats_uniform_on_skewed_selective_queries() {
        // On adversarial data with a selective query over the volatile
        // tail, stratification should (median over seeds) beat uniform.
        let t = adversarial(40_000, 5);
        let q = Query::interval(AggKind::Sum, 36_000.0, 38_000.0);
        let truth = t.ground_truth(&q).unwrap();
        let median_err = |build: &dyn Fn(u64) -> f64| {
            let mut errs: Vec<f64> = (0..9).map(build).collect();
            errs.sort_by(|a, b| a.partial_cmp(b).unwrap());
            errs[4]
        };
        let st_err = median_err(&|seed| {
            let st = StratifiedSynopsis::build(&t, 64, 800, seed).unwrap();
            (st.estimate(&q).unwrap().value - truth).abs() / truth
        });
        let us_err = median_err(&|seed| {
            let us = crate::us::UniformSynopsis::build(&t, 800, seed).unwrap();
            match us.estimate(&q) {
                Ok(e) => (e.value - truth).abs() / truth,
                Err(_) => 1.0, // no matching sample at all
            }
        });
        assert!(
            st_err <= us_err * 1.2,
            "ST {st_err} should be competitive with US {us_err}"
        );
    }

    #[test]
    fn empty_selection_semantics() {
        let t = uniform(1_000, 6);
        let st = StratifiedSynopsis::build(&t, 8, 100, 7).unwrap();
        let q = Query::interval(AggKind::Sum, 5.0, 6.0);
        assert_eq!(st.estimate(&q).unwrap().value, 0.0);
        assert!(st
            .estimate(&Query::interval(AggKind::Avg, 5.0, 6.0))
            .is_err());
    }

    #[test]
    fn rejects_multi_dim_tables() {
        let t = pass_table::datasets::taxi(500, 8);
        assert!(StratifiedSynopsis::build(&t, 8, 100, 9).is_err());
    }
}
