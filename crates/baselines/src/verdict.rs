//! VerdictDB-style scramble with variational subsampling [Park et al.
//! 2018] — the Table 2 comparator.
//!
//! VerdictDB materializes a *scramble*: a uniform sample of the table with
//! each row assigned to one of `s ≈ n_s^{...}` subsample groups. A query is
//! answered on the full scramble; the confidence interval comes from the
//! spread of the per-group estimates (variational subsampling), which
//! avoids any closed-form variance derivation. We reproduce exactly that
//! mechanism at two scramble ratios (10% / 100%) for the Table 2 rows.

use rand::Rng;

use pass_common::rng::rng_from_seed;
use pass_common::{AggKind, EngineSpec, Estimate, PassError, Query, Result, Synopsis, LAMBDA_99};
use pass_table::Table;

/// A scramble: sampled rows with subsample-group assignments.
#[derive(Debug, Clone)]
pub struct VerdictSynopsis {
    /// Sampled rows (same dims as the parent table).
    pub(crate) rows: Table,
    /// Subsample group of each scramble row.
    pub(crate) group: Vec<u32>,
    pub(crate) n_groups: usize,
    pub(crate) population: u64,
    pub(crate) lambda: f64,
    pub(crate) name: String,
    /// Requested (ratio, seed), kept for [`Synopsis::spec`].
    pub(crate) requested: (f64, u64),
}

impl VerdictSynopsis {
    /// Build a scramble of `ratio` (0, 1] of the table. The group count
    /// follows VerdictDB's n^0.5 default.
    pub fn build(table: &Table, ratio: f64, seed: u64) -> Result<Self> {
        if table.n_rows() == 0 {
            return Err(PassError::EmptyInput("scramble over empty table"));
        }
        if !(0.0..=1.0).contains(&ratio) || ratio == 0.0 {
            return Err(PassError::InvalidParameter(
                "ratio",
                format!("scramble ratio must be in (0,1], got {ratio}"),
            ));
        }
        let n = table.n_rows();
        let k = ((n as f64) * ratio).round().max(1.0) as usize;
        let mut rng = rng_from_seed(seed);
        let indices: Vec<usize> = if k >= n {
            (0..n).collect()
        } else {
            let mut idx: Vec<usize> = rand::seq::index::sample(&mut rng, n, k).into_vec();
            idx.sort_unstable();
            idx
        };
        let values: Vec<f64> = indices.iter().map(|&i| table.value(i)).collect();
        let predicates: Vec<Vec<f64>> = (0..table.dims())
            .map(|d| indices.iter().map(|&i| table.predicate(d, i)).collect())
            .collect();
        let rows = Table::new(values, predicates, table.names().to_vec())?;
        let n_groups = ((k as f64).sqrt().round() as usize).clamp(2, 1_000);
        let group: Vec<u32> = (0..k).map(|_| rng.gen_range(0..n_groups as u32)).collect();
        Ok(Self {
            rows,
            group,
            n_groups,
            population: n as u64,
            lambda: LAMBDA_99,
            name: format!("VerdictDB-{}%", (ratio * 100.0).round()),
            requested: (ratio, seed),
        })
    }

    /// Replace the confidence multiplier λ used for CI half-widths
    /// (default λ₉₉; see `pass_common::stats::lambda_for_confidence`).
    pub fn with_lambda(mut self, lambda: f64) -> Self {
        self.lambda = lambda;
        self
    }

    /// Number of subsample groups.
    pub fn n_groups(&self) -> usize {
        self.n_groups
    }

    /// Scramble size.
    pub fn k(&self) -> usize {
        self.rows.n_rows()
    }
}

impl Synopsis for VerdictSynopsis {
    fn name(&self) -> &str {
        &self.name
    }

    fn spec(&self) -> EngineSpec {
        EngineSpec::Verdict {
            ratio: self.requested.0,
            seed: self.requested.1,
        }
    }

    fn save_state(&self, out: &mut Vec<u8>) -> Result<()> {
        crate::snapshot::save_verdict(self, out);
        Ok(())
    }

    fn estimate(&self, query: &Query) -> Result<Estimate> {
        if query.dims() != self.rows.dims() {
            return Err(PassError::DimensionMismatch {
                expected: self.rows.dims(),
                got: query.dims(),
            });
        }
        let k = self.k();
        let n = self.population as f64;
        // Per-group accumulators: count of rows, matching count, matching
        // value sum.
        let mut g_rows = vec![0u64; self.n_groups];
        let mut g_match = vec![0u64; self.n_groups];
        let mut g_sum = vec![0.0f64; self.n_groups];
        // Full-scramble accumulators.
        let (mut t_match, mut t_sum) = (0u64, 0.0f64);
        let mut t_min = f64::INFINITY;
        let mut t_max = f64::NEG_INFINITY;
        // Predicate evaluation rides the scan kernels: the match mask is
        // built one contiguous column at a time, then the accumulation
        // walks rows in the same index order as the old row-at-a-time
        // `matches` loop — identical adds, identical bits.
        pass_sampling::with_scratch(|scratch| {
            let mask = scratch.match_mask(k, &query.rect, |d| self.rows.predicate_column(d));
            for (i, &m) in mask.iter().enumerate() {
                let g = self.group[i] as usize;
                g_rows[g] += 1;
                if m != 0 {
                    let v = self.rows.value(i);
                    g_match[g] += 1;
                    g_sum[g] += v;
                    t_match += 1;
                    t_sum += v;
                    t_min = t_min.min(v);
                    t_max = t_max.max(v);
                }
            }
        });

        let full_estimate = |agg: AggKind| -> Option<f64> {
            match agg {
                AggKind::Count => Some(n * t_match as f64 / k as f64),
                AggKind::Sum => Some(n * t_sum / k as f64),
                AggKind::Avg => (t_match > 0).then(|| t_sum / t_match as f64),
                AggKind::Min => (t_match > 0).then_some(t_min),
                AggKind::Max => (t_match > 0).then_some(t_max),
            }
        };
        let group_estimate = |agg: AggKind, g: usize| -> Option<f64> {
            let kg = g_rows[g];
            if kg == 0 {
                return None;
            }
            match agg {
                AggKind::Count => Some(n * g_match[g] as f64 / kg as f64),
                AggKind::Sum => Some(n * g_sum[g] / kg as f64),
                AggKind::Avg => (g_match[g] > 0).then(|| g_sum[g] / g_match[g] as f64),
                _ => None,
            }
        };

        let value = full_estimate(query.agg).ok_or(PassError::EmptyInput(
            "no scramble row matches the predicate",
        ))?;

        let ci_half = match query.agg {
            AggKind::Min | AggKind::Max => 0.0,
            agg => {
                // Variational subsampling: each group of size ~k/s is an
                // independent estimator; Var(full) ≈ Var(group)·(k_g/k),
                // so the CI uses the group spread shrunk by √(k_g/k).
                let groups: Vec<f64> = (0..self.n_groups)
                    .filter_map(|g| group_estimate(agg, g))
                    .collect();
                if groups.len() < 2 {
                    0.0
                } else {
                    let var_groups = pass_common::stats::sample_variance(&groups);
                    let avg_group_size = k as f64 / self.n_groups as f64;
                    let shrink = avg_group_size / k as f64;
                    self.lambda * (var_groups * shrink).sqrt()
                }
            }
        };
        // A 100% scramble reproduces the data exactly (AVG additionally
        // needs at least one matching row, checked above via t_match).
        let exact = self.k() as u64 == self.population;
        let mut est = if exact {
            Estimate::exact(value)
        } else {
            Estimate::approximate(value, ci_half)
        };
        est = est.with_accounting(k as u64, self.population - k as u64);
        Ok(est)
    }

    fn storage_bytes(&self) -> usize {
        // Values + predicates + 4-byte group tag per row.
        self.k() * ((1 + self.rows.dims()) * 8 + 4)
    }

    fn dims(&self) -> usize {
        self.rows.dims()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pass_table::datasets::uniform;

    #[test]
    fn full_scramble_is_exact() {
        let t = uniform(5_000, 1);
        let v = VerdictSynopsis::build(&t, 1.0, 2).unwrap();
        assert_eq!(v.k(), 5_000);
        for agg in AggKind::ALL {
            let q = Query::interval(agg, 0.2, 0.7);
            let est = v.estimate(&q).unwrap();
            let truth = t.ground_truth(&q).unwrap();
            assert!(
                (est.value - truth).abs() < 1e-9,
                "{agg}: {} vs {truth}",
                est.value
            );
        }
    }

    #[test]
    fn partial_scramble_tracks_truth() {
        let t = uniform(30_000, 3);
        let v = VerdictSynopsis::build(&t, 0.1, 4).unwrap();
        for agg in [AggKind::Sum, AggKind::Count, AggKind::Avg] {
            let q = Query::interval(agg, 0.1, 0.9);
            let est = v.estimate(&q).unwrap();
            let truth = t.ground_truth(&q).unwrap();
            let rel = (est.value - truth).abs() / truth;
            assert!(rel < 0.1, "{agg}: rel {rel}");
        }
    }

    #[test]
    fn subsampling_ci_covers_truth() {
        let t = uniform(20_000, 5);
        let q = Query::interval(AggKind::Sum, 0.2, 0.8);
        let truth = t.ground_truth(&q).unwrap();
        let mut covered = 0;
        for seed in 0..60 {
            let v = VerdictSynopsis::build(&t, 0.05, seed).unwrap();
            let est = v.estimate(&q).unwrap();
            if (est.value - truth).abs() <= est.ci_half {
                covered += 1;
            }
        }
        // Variational subsampling CIs are approximate; expect solid but
        // not perfect coverage at 99% nominal.
        assert!(covered >= 48, "coverage {covered}/60");
    }

    #[test]
    fn names_follow_ratio() {
        let t = uniform(1_000, 6);
        assert_eq!(
            VerdictSynopsis::build(&t, 0.1, 7).unwrap().name(),
            "VerdictDB-10%"
        );
        assert_eq!(
            VerdictSynopsis::build(&t, 1.0, 7).unwrap().name(),
            "VerdictDB-100%"
        );
    }

    #[test]
    fn invalid_ratio_rejected() {
        let t = uniform(100, 8);
        assert!(VerdictSynopsis::build(&t, 0.0, 9).is_err());
        assert!(VerdictSynopsis::build(&t, 1.5, 9).is_err());
    }
}
