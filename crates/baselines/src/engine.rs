//! The engine registry: one constructor for every engine of the paper's
//! Section 5 evaluation.
//!
//! Call sites never invoke engine constructors directly; they describe the
//! engine with an [`EngineSpec`] and let [`Engine::build`] dispatch:
//!
//! ```
//! use pass_baselines::Engine;
//! use pass_common::{AggKind, EngineSpec, Query, Synopsis};
//! use pass_table::datasets::uniform;
//!
//! let table = uniform(10_000, 1);
//! let engine = Engine::build(&table, &EngineSpec::uniform(500)).unwrap();
//! let est = engine
//!     .estimate(&Query::interval(AggKind::Sum, 0.2, 0.8))
//!     .unwrap();
//! assert!(est.value > 0.0);
//! assert_eq!(engine.spec(), EngineSpec::uniform(500));
//! ```

use std::sync::Arc;

use pass_common::{EngineSpec, PassError, Result, Synopsis};
use pass_core::Pass;
use pass_table::Table;

use crate::{
    AqpPlusPlus, JoinSynopsis, ShardedSynopsis, SpnSynopsis, StratifiedSynopsis, UniformSynopsis,
    VerdictSynopsis,
};

/// Spec-driven constructor for every registered engine.
pub struct Engine;

impl Engine {
    /// Build the engine a spec describes, as a shared trait object.
    ///
    /// The returned synopsis reports the input spec verbatim from
    /// [`Synopsis::spec`], so `Engine::build(t, &s)?.spec() == s`.
    ///
    /// Built synopses are immutable at query time and [`Synopsis`] requires
    /// `Send + Sync`, so the registry hands out `Arc`s: cloning one is a
    /// reference-count bump, and any number of threads or `pass::Session`
    /// handles can answer queries against the same synopsis concurrently.
    pub fn build(table: &Table, spec: &EngineSpec) -> Result<Arc<dyn Synopsis>> {
        Ok(match spec {
            EngineSpec::Pass(pass_spec) => Arc::new(Pass::from_spec(table, pass_spec)?),
            EngineSpec::Uniform { k, seed } => Arc::new(UniformSynopsis::build(table, *k, *seed)?),
            EngineSpec::Stratified { strata, k, seed } => {
                Arc::new(StratifiedSynopsis::build(table, *strata, *k, *seed)?)
            }
            EngineSpec::AqpPlusPlus {
                partitions,
                k,
                seed,
                tree_dims,
            } => match tree_dims {
                None => Arc::new(AqpPlusPlus::build(table, *partitions, *k, *seed)?),
                Some(dims) => Arc::new(AqpPlusPlus::build_shifted(
                    table,
                    dims,
                    *partitions,
                    *k,
                    *seed,
                )?),
            },
            EngineSpec::Verdict { ratio, seed } => {
                Arc::new(VerdictSynopsis::build(table, *ratio, *seed)?)
            }
            EngineSpec::Spn { ratio, seed } => Arc::new(SpnSynopsis::build(table, *ratio, *seed)?),
            EngineSpec::Join(join_spec) => Arc::new(JoinSynopsis::build(table, join_spec)?),
            EngineSpec::Sharded { inner, plan } => {
                Arc::new(ShardedSynopsis::build(table, inner, plan)?)
            }
            EngineSpec::Opaque { name } => {
                return Err(PassError::InvalidParameter(
                    "spec",
                    format!("opaque spec `{name}` does not describe a buildable engine"),
                ))
            }
        })
    }

    /// Build several engines over one table, preserving order.
    pub fn build_all(table: &Table, specs: &[EngineSpec]) -> Result<Vec<Arc<dyn Synopsis>>> {
        specs.iter().map(|spec| Self::build(table, spec)).collect()
    }

    /// Reconstruct a previously saved engine from snapshot bytes
    /// ([`Synopsis::save`]) — the load-side mirror of [`Engine::build`],
    /// dispatching on the [`EngineSpec`] embedded in the snapshot header.
    ///
    /// The whole input must be consumed: trailing bytes after the last
    /// state section are rejected, and every section's checksum must
    /// verify, so `load(save(e))` either reproduces `e` bit-for-bit
    /// (answers included) or fails with a
    /// [`pass_common::SnapshotError`].
    pub fn load(bytes: &[u8]) -> Result<Arc<dyn Synopsis>> {
        let (spec, mut reader) = pass_common::snapshot::SnapshotReader::open(bytes)?;
        let engine = crate::snapshot::load_state(&spec, &mut reader)?;
        reader.finish()?;
        Ok(engine)
    }

    /// The standard Section 5 comparison suite at a shared sample budget
    /// `k`: PASS (storage-matched via `total_samples`, the BSS1x mode),
    /// US, ST, AQP++/KD-US, VerdictDB-10%, DeepDB-style SPN.
    pub fn standard_suite(partitions: usize, k: usize, seed: u64) -> Vec<EngineSpec> {
        use pass_common::PassSpec;
        vec![
            EngineSpec::Pass(PassSpec {
                partitions,
                total_samples: Some(k),
                seed,
                ..PassSpec::default()
            }),
            EngineSpec::uniform(k).with_seed(seed),
            EngineSpec::stratified(partitions, k).with_seed(seed),
            EngineSpec::aqppp(partitions, k).with_seed(seed),
            EngineSpec::verdict(0.1).with_seed(seed),
            EngineSpec::spn(0.5).with_seed(seed),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pass_common::{AggKind, PassSpec, Query};
    use pass_table::datasets::uniform;

    #[test]
    fn every_spec_builds_and_round_trips() {
        let table = uniform(5_000, 1);
        for spec in Engine::standard_suite(16, 400, 3) {
            let engine = Engine::build(&table, &spec).unwrap();
            assert_eq!(engine.spec(), spec, "{}", engine.name());
        }
    }

    #[test]
    fn shifted_aqppp_spec_builds_kd_us() {
        let table = pass_table::datasets::taxi(3_000, 2)
            .project(&[1, 2, 3])
            .unwrap();
        let spec = EngineSpec::AqpPlusPlus {
            partitions: 16,
            k: 200,
            seed: 4,
            tree_dims: Some(vec![0, 1]),
        };
        let engine = Engine::build(&table, &spec).unwrap();
        assert_eq!(engine.name(), "KD-US");
        assert_eq!(engine.spec(), spec);
        assert_eq!(engine.dims(), 3);
    }

    #[test]
    fn opaque_specs_are_rejected() {
        let table = uniform(100, 5);
        let spec = EngineSpec::Opaque {
            name: "CUSTOM".into(),
        };
        assert!(Engine::build(&table, &spec).is_err());
    }

    #[test]
    fn build_errors_propagate() {
        let table = uniform(100, 6);
        // Zero partitions is invalid for PASS.
        let spec = EngineSpec::Pass(PassSpec {
            partitions: 0,
            ..PassSpec::default()
        });
        assert!(Engine::build(&table, &spec).is_err());
        // Invalid scramble ratio for Verdict.
        assert!(Engine::build(&table, &EngineSpec::verdict(0.0)).is_err());
    }

    #[test]
    fn built_engines_answer_queries() {
        let table = uniform(20_000, 7);
        let q = Query::interval(AggKind::Sum, 0.2, 0.8);
        let truth = table.ground_truth(&q).unwrap();
        for spec in Engine::standard_suite(16, 1_000, 8) {
            let engine = Engine::build(&table, &spec).unwrap();
            let est = engine.estimate(&q).unwrap();
            let rel = (est.value - truth).abs() / truth;
            assert!(rel < 0.2, "{}: rel {rel}", engine.name());
        }
    }
}
