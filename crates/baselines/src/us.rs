//! US — plain uniform sampling (Section 2.1).

use pass_common::rng::rng_from_seed;
use pass_common::{AggKind, EngineSpec, Estimate, PassError, Query, Result, Synopsis, LAMBDA_99};
use pass_sampling::{with_scratch, PointVariance, Sample};
use pass_table::Table;

/// One uniform sample of `K` rows; every query is answered with the
/// φ-transform estimators and a CLT confidence interval.
#[derive(Debug, Clone)]
pub struct UniformSynopsis {
    pub(crate) sample: Sample,
    pub(crate) lambda: f64,
    pub(crate) dims: usize,
    pub(crate) total_rows: u64,
    /// Requested sample size and seed, kept for [`Synopsis::spec`].
    pub(crate) requested_k: usize,
    pub(crate) seed: u64,
}

impl UniformSynopsis {
    /// Draw `k` rows from the table (λ defaults to the paper's 2.576).
    pub fn build(table: &Table, k: usize, seed: u64) -> Result<Self> {
        if table.n_rows() == 0 {
            return Err(PassError::EmptyInput("US over empty table"));
        }
        let mut rng = rng_from_seed(seed);
        let sample = Sample::uniform(table, k, &mut rng)?;
        Ok(Self {
            sample,
            lambda: LAMBDA_99,
            dims: table.dims(),
            total_rows: table.n_rows() as u64,
            requested_k: k,
            seed,
        })
    }

    /// Replace the confidence multiplier λ used for CI half-widths
    /// (default λ₉₉; see `pass_common::stats::lambda_for_confidence`).
    pub fn with_lambda(mut self, lambda: f64) -> Self {
        self.lambda = lambda;
        self
    }

    /// The underlying sample.
    pub fn sample(&self) -> &Sample {
        &self.sample
    }

    /// Turn one kernel point estimate into the engine's [`Estimate`],
    /// with the CI scaling and full-scan accounting shared by the single
    /// and batched paths.
    fn finish(&self, agg: AggKind, point: Option<PointVariance>) -> Result<Estimate> {
        let est = match point {
            Some(pv) => {
                let ci_half = match agg {
                    AggKind::Min | AggKind::Max => 0.0,
                    _ => self.lambda * pv.variance.sqrt(),
                };
                Estimate::approximate(pv.value, ci_half)
            }
            None => {
                return Err(PassError::EmptyInput(
                    "no sampled tuple matches the predicate",
                ))
            }
        };
        // US scans its whole sample for every query; nothing is safely
        // skipped (there is no index to prove irrelevance).
        Ok(est.with_accounting(
            self.sample.k() as u64,
            self.total_rows - self.sample.k() as u64,
        ))
    }
}

impl Synopsis for UniformSynopsis {
    fn name(&self) -> &str {
        "US"
    }

    fn spec(&self) -> EngineSpec {
        EngineSpec::Uniform {
            k: self.requested_k,
            seed: self.seed,
        }
    }

    fn save_state(&self, out: &mut Vec<u8>) -> Result<()> {
        crate::snapshot::save_us(self, out);
        Ok(())
    }

    fn estimate(&self, query: &Query) -> Result<Estimate> {
        if query.dims() != self.dims {
            return Err(PassError::DimensionMismatch {
                expected: self.dims,
                got: query.dims(),
            });
        }
        let point = with_scratch(|scratch| scratch.estimate(query.agg, &self.sample, &query.rect));
        self.finish(query.agg, point)
    }

    /// Fused batch path: one pass over each sample column per tile of
    /// queries via [`pass_sampling::ScanScratch::estimate_batch`],
    /// element-wise bit-identical to [`estimate`](Synopsis::estimate).
    fn estimate_many(&self, queries: &[Query]) -> Vec<Result<Estimate>> {
        if queries.iter().any(|q| q.dims() != self.dims) {
            return queries.iter().map(|q| self.estimate(q)).collect();
        }
        with_scratch(|scratch| {
            let mut points = Vec::with_capacity(queries.len());
            scratch.estimate_batch(&self.sample, queries, &mut points);
            queries
                .iter()
                .zip(points)
                .map(|(q, p)| self.finish(q.agg, p))
                .collect()
        })
    }

    fn storage_bytes(&self) -> usize {
        self.sample.storage_bytes()
    }

    fn dims(&self) -> usize {
        self.dims
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pass_table::datasets::uniform;

    #[test]
    fn estimates_track_truth() {
        let t = uniform(20_000, 1);
        let us = UniformSynopsis::build(&t, 2_000, 2).unwrap();
        for agg in [AggKind::Sum, AggKind::Count, AggKind::Avg] {
            let q = Query::interval(agg, 0.2, 0.8);
            let est = us.estimate(&q).unwrap();
            let truth = t.ground_truth(&q).unwrap();
            let rel = (est.value - truth).abs() / truth;
            assert!(rel < 0.1, "{agg}: rel {rel}");
            assert!(est.ci_half > 0.0, "{agg} has sampling uncertainty");
        }
    }

    #[test]
    fn selective_queries_suffer() {
        // The classic pitfall: a very selective predicate leaves few (or
        // zero) matching sampled tuples.
        let t = uniform(50_000, 3);
        let us = UniformSynopsis::build(&t, 100, 4).unwrap();
        let q = Query::interval(AggKind::Avg, 0.50000, 0.50002);
        // Either errors (no matching sample) or has a CI; both are honest.
        match us.estimate(&q) {
            Err(_) => {}
            Ok(est) => assert!(!est.exact),
        }
    }

    #[test]
    fn ci_covers_truth_usually() {
        let t = uniform(10_000, 5);
        let q = Query::interval(AggKind::Sum, 0.1, 0.6);
        let truth = t.ground_truth(&q).unwrap();
        let mut covered = 0;
        for seed in 0..100 {
            let us = UniformSynopsis::build(&t, 500, seed).unwrap();
            let est = us.estimate(&q).unwrap();
            if (est.value - truth).abs() <= est.ci_half {
                covered += 1;
            }
        }
        assert!(covered >= 95, "coverage {covered}/100");
    }

    #[test]
    fn no_skipping_in_accounting() {
        let t = uniform(1_000, 6);
        let us = UniformSynopsis::build(&t, 100, 7).unwrap();
        let est = us
            .estimate(&Query::interval(AggKind::Sum, 0.0, 1.0))
            .unwrap();
        assert_eq!(est.tuples_processed, 100);
    }

    #[test]
    fn storage_is_sample_payload() {
        let t = uniform(1_000, 8);
        let us = UniformSynopsis::build(&t, 50, 9).unwrap();
        assert_eq!(us.storage_bytes(), 50 * 2 * 8);
    }
}
