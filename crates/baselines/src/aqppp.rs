//! AQP++ [Peng et al. 2018] and its multi-dimensional variant KD-US
//! (Section 5.4).
//!
//! AQP++ precomputes a set of aggregate queries — here partition aggregates
//! over hill-climbing boundaries (1-D) or a breadth-first k-d tree (d > 1)
//! — and answers a new query as *closest precomputed aggregate + uniform
//! sample estimate of the gap*. The crucial difference from PASS: the gap
//! is estimated from one **global uniform sample**, not per-partition
//! stratified samples, and the partitioning is not variance-optimized.

use pass_common::rng::{derive_seed, rng_from_seed};
use pass_common::{
    AggKind, EngineSpec, Estimate, PassError, Query, Rect, Result, Synopsis, LAMBDA_99,
};
use pass_core::{mcf::mcf, PartitionTree};
use pass_partition::{build_kd, HillClimb, KdExpansion, Partitioner1D};
use pass_sampling::Sample;
use pass_table::{SortedTable, Table};

/// Which tree the precomputed aggregates live in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AqpVariant {
    /// 1-D hill-climbing boundaries (the paper's AQP++ baseline).
    HillClimb,
    /// Breadth-first k-d tree (the paper's KD-US baseline for d > 1).
    KdUniform,
}

/// Precomputed aggregates + one uniform sample for the gap.
#[derive(Debug, Clone)]
pub struct AqpPlusPlus {
    pub(crate) tree: PartitionTree,
    pub(crate) sample: Sample,
    pub(crate) lambda: f64,
    pub(crate) name: &'static str,
    /// Workload-shift mapping (Section 5.4.1): tree dimension j indexes
    /// query dimension `tree_dims[j]`; `None` = identity.
    pub(crate) tree_dims: Option<Vec<usize>>,
    /// Query arity (= sample arity).
    pub(crate) query_dims: usize,
    /// Requested (partitions, sample size, seed), kept for
    /// [`Synopsis::spec`].
    pub(crate) requested: (usize, usize, u64),
}

impl AqpPlusPlus {
    /// Build with `partitions` precomputed aggregates and a uniform sample
    /// of `k` rows. 1-D tables use hill climbing, higher dimensions the
    /// breadth-first k-d expansion.
    pub fn build(table: &Table, partitions: usize, k: usize, seed: u64) -> Result<Self> {
        if table.n_rows() == 0 {
            return Err(PassError::EmptyInput("AQP++ over empty table"));
        }
        let (tree, name) = if table.dims() == 1 {
            let sorted = SortedTable::from_table(table, 0);
            let partitioning = HillClimb::new(AggKind::Sum).partition(&sorted, partitions)?;
            (
                PartitionTree::from_partitioning(&sorted, &partitioning)?,
                "AQP++",
            )
        } else {
            let kd = build_kd(
                table,
                partitions,
                KdExpansion::BreadthFirst,
                derive_seed(seed, 1),
            )?;
            (PartitionTree::from_kd(table, &kd)?, "KD-US")
        };
        let mut rng = rng_from_seed(derive_seed(seed, 2));
        let sample = Sample::uniform(table, k, &mut rng)?;
        Ok(Self {
            tree,
            sample,
            lambda: LAMBDA_99,
            name,
            tree_dims: None,
            query_dims: table.dims(),
            requested: (partitions, k, seed),
        })
    }

    /// Workload-shift build (Section 5.4.1): precompute aggregates over a
    /// breadth-first k-d tree on the projected dimensions, keep the uniform
    /// sample in full arity.
    pub fn build_shifted(
        table: &Table,
        tree_dims: &[usize],
        partitions: usize,
        k: usize,
        seed: u64,
    ) -> Result<Self> {
        if table.n_rows() == 0 {
            return Err(PassError::EmptyInput("AQP++ over empty table"));
        }
        let projected = table.project(tree_dims)?;
        let kd = build_kd(
            &projected,
            partitions,
            KdExpansion::BreadthFirst,
            derive_seed(seed, 3),
        )?;
        let tree = PartitionTree::from_kd(&projected, &kd)?;
        let mut rng = rng_from_seed(derive_seed(seed, 4));
        let sample = Sample::uniform(table, k, &mut rng)?;
        Ok(Self {
            tree,
            sample,
            lambda: LAMBDA_99,
            name: "KD-US",
            tree_dims: Some(tree_dims.to_vec()),
            query_dims: table.dims(),
            requested: (partitions, k, seed),
        })
    }

    /// Replace the confidence multiplier λ used for CI half-widths
    /// (default λ₉₉; see `pass_common::stats::lambda_for_confidence`).
    pub fn with_lambda(mut self, lambda: f64) -> Self {
        self.lambda = lambda;
        self
    }

    /// Estimate `Σ φ` over the gap region: sampled rows matching the query
    /// but not lying in any covered partition. Returns `(estimate,
    /// estimator variance, matching sample count)`.
    fn gap_estimate(&self, agg: AggKind, rect: &Rect, covered: &[usize]) -> (f64, f64, u64) {
        let rows = self.sample.rows();
        let k = self.sample.k();
        if k == 0 {
            return (0.0, 0.0, 0);
        }
        let n = self.sample.population() as f64;
        // The rectangle part of the gap predicate is evaluated with the
        // columnar mask kernel; only mask hits pay for the (pointwise)
        // covered-partition exclusion. Row order is unchanged, so the φ
        // vector — and every downstream bit — matches the old
        // row-at-a-time loop.
        let mut phi = Vec::with_capacity(k);
        let mut k_pred = 0u64;
        pass_sampling::with_scratch(|scratch| {
            let mask = scratch.match_mask(k, rect, |d| rows.predicate_column(d));
            let in_gap = |i: usize| -> bool {
                if mask[i] == 0 {
                    return false;
                }
                // Covered-node rectangles live in the tree's (possibly
                // projected) dimension space.
                let point: Vec<f64> = match &self.tree_dims {
                    None => (0..rows.dims()).map(|d| rows.predicate(d, i)).collect(),
                    Some(dims) => dims.iter().map(|&d| rows.predicate(d, i)).collect(),
                };
                !covered
                    .iter()
                    .any(|&id| self.tree.contains_point(id, &point))
            };
            for i in 0..k {
                if in_gap(i) {
                    k_pred += 1;
                    phi.push(match agg {
                        AggKind::Count => n,
                        _ => n * rows.value(i),
                    });
                } else {
                    phi.push(0.0);
                }
            }
        });
        let mean = phi.iter().sum::<f64>() / k as f64;
        let variance = pass_common::stats::population_variance(&phi) / k as f64
            * pass_common::stats::fpc(self.sample.population(), k as u64);
        (mean, variance, k_pred)
    }
}

impl Synopsis for AqpPlusPlus {
    fn name(&self) -> &str {
        self.name
    }

    fn spec(&self) -> EngineSpec {
        let (partitions, k, seed) = self.requested;
        EngineSpec::AqpPlusPlus {
            partitions,
            k,
            seed,
            tree_dims: self.tree_dims.clone(),
        }
    }

    fn save_state(&self, out: &mut Vec<u8>) -> Result<()> {
        crate::snapshot::save_aqppp(self, out);
        Ok(())
    }

    fn estimate(&self, query: &Query) -> Result<Estimate> {
        if query.dims() != self.query_dims {
            return Err(PassError::DimensionMismatch {
                expected: self.query_dims,
                got: query.dims(),
            });
        }
        let frontier = match &self.tree_dims {
            None => mcf(&self.tree, query, false),
            Some(dims) => pass_core::mcf_shifted(&self.tree, query, dims, false),
        };
        let covered = &frontier.covered;

        match query.agg {
            AggKind::Sum | AggKind::Count => {
                let exact: f64 = covered
                    .iter()
                    .map(|&id| {
                        let a = self.tree.agg(id);
                        match query.agg {
                            AggKind::Sum => a.sum,
                            _ => a.count as f64,
                        }
                    })
                    .sum();
                let (gap, var, _) = self.gap_estimate(query.agg, &query.rect, covered);
                let est = if frontier.partial.is_empty() {
                    Estimate::exact(exact)
                } else {
                    Estimate::approximate(exact + gap, self.lambda * var.sqrt())
                };
                Ok(est.with_accounting(
                    self.sample.k() as u64,
                    self.tree
                        .total_rows()
                        .saturating_sub(self.sample.k() as u64),
                ))
            }
            AggKind::Avg => {
                // AVG via the SUM/COUNT pair with first-order error
                // propagation (AQP++ itself treats AVG as SUM/COUNT).
                let exact_sum: f64 = covered.iter().map(|&id| self.tree.agg(id).sum).sum();
                let exact_count: f64 = covered
                    .iter()
                    .map(|&id| self.tree.agg(id).count as f64)
                    .sum();
                let (gap_sum, var_sum, _) = self.gap_estimate(AggKind::Sum, &query.rect, covered);
                let (gap_count, var_count, k_pred) =
                    self.gap_estimate(AggKind::Count, &query.rect, covered);
                let total_sum = exact_sum + gap_sum;
                let total_count = exact_count + gap_count;
                if total_count <= 0.0 {
                    if exact_count > 0.0 {
                        return Ok(Estimate::exact(exact_sum / exact_count));
                    }
                    return Err(PassError::EmptyInput(
                        "no sampled tuple matches the predicate",
                    ));
                }
                let value = total_sum / total_count;
                // Var(S/C) ≈ var_S/C² + S²·var_C/C⁴ (independence
                // approximation; AQP++ reports the same first-order CI).
                let variance = var_sum / (total_count * total_count)
                    + total_sum * total_sum * var_count / total_count.powi(4);
                let est = if frontier.partial.is_empty() && k_pred == 0 {
                    Estimate::exact(value)
                } else {
                    Estimate::approximate(value, self.lambda * variance.sqrt())
                };
                Ok(est.with_accounting(
                    self.sample.k() as u64,
                    self.tree
                        .total_rows()
                        .saturating_sub(self.sample.k() as u64),
                ))
            }
            AggKind::Min | AggKind::Max => {
                // Precomputed extrema of covered partitions + sample scan.
                let mut best: Option<f64> = None;
                let mut fold = |v: f64| {
                    best = Some(match (best, query.agg) {
                        (None, _) => v,
                        (Some(b), AggKind::Min) => b.min(v),
                        (Some(b), _) => b.max(v),
                    });
                };
                for &id in covered {
                    let a = self.tree.agg(id);
                    if !a.is_empty() {
                        fold(if query.agg == AggKind::Min {
                            a.min
                        } else {
                            a.max
                        });
                    }
                }
                if let Some(pv) =
                    pass_sampling::estimate_minmax(query.agg, &self.sample, &query.rect)
                {
                    fold(pv.value);
                }
                best.map(|v| Estimate::approximate(v, 0.0))
                    .ok_or(PassError::EmptyInput(
                        "no sampled tuple matches the predicate",
                    ))
            }
        }
    }

    fn storage_bytes(&self) -> usize {
        self.tree.storage_bytes() + self.sample.storage_bytes()
    }

    fn dims(&self) -> usize {
        self.query_dims
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pass_table::datasets::{taxi, uniform};

    #[test]
    fn one_dim_estimates_track_truth() {
        let t = uniform(20_000, 1);
        let a = AqpPlusPlus::build(&t, 32, 1_000, 2).unwrap();
        assert_eq!(a.name(), "AQP++");
        for agg in [AggKind::Sum, AggKind::Count, AggKind::Avg] {
            let q = Query::interval(agg, 0.15, 0.85);
            let est = a.estimate(&q).unwrap();
            let truth = t.ground_truth(&q).unwrap();
            let rel = (est.value - truth).abs() / truth;
            assert!(rel < 0.1, "{agg}: rel {rel}");
        }
    }

    #[test]
    fn aligned_queries_are_exact() {
        // A query covering the whole key space aligns with the root.
        let t = uniform(5_000, 3);
        let a = AqpPlusPlus::build(&t, 16, 200, 4).unwrap();
        let q = Query::interval(AggKind::Sum, -1.0, 2.0);
        let est = a.estimate(&q).unwrap();
        let truth = t.ground_truth(&q).unwrap();
        assert!(est.exact);
        assert!((est.value - truth).abs() < 1e-6);
    }

    #[test]
    fn covered_regions_reduce_variance() {
        // The same query answered with and without precomputation: the
        // AQP++ CI should be no wider than pure uniform sampling's,
        // because the covered part is deterministic.
        let t = uniform(30_000, 5);
        let q = Query::interval(AggKind::Sum, 0.01, 0.93);
        let mut aqp_wins = 0;
        for seed in 0..10 {
            let a = AqpPlusPlus::build(&t, 64, 600, seed).unwrap();
            let us = crate::us::UniformSynopsis::build(&t, 600, seed).unwrap();
            let aw = a.estimate(&q).unwrap().ci_half;
            let uw = us.estimate(&q).unwrap().ci_half;
            if aw <= uw {
                aqp_wins += 1;
            }
        }
        assert!(aqp_wins >= 8, "AQP++ narrower CI in {aqp_wins}/10 runs");
    }

    #[test]
    fn multi_dim_becomes_kd_us() {
        let t = taxi(10_000, 6).project(&[1, 2]).unwrap();
        let a = AqpPlusPlus::build(&t, 64, 500, 7).unwrap();
        assert_eq!(a.name(), "KD-US");
        let rect = t.bounding_rect().unwrap();
        let mid = (rect.lo(0) + rect.hi(0)) / 2.0;
        let q = Query::new(AggKind::Sum, rect.narrowed(0, rect.lo(0), mid));
        let est = a.estimate(&q).unwrap();
        let truth = t.ground_truth(&q).unwrap();
        let rel = (est.value - truth).abs() / truth;
        assert!(rel < 0.25, "rel {rel}");
    }

    #[test]
    fn duplicate_keys_do_not_bias_the_gap_estimator() {
        // Regression: heavy key duplication (Instacart-style categorical
        // predicate) used to let covered-partition rectangles overlap
        // partial ones, silently dropping boundary rows from the gap
        // estimate. With a 100% sample the estimate must be exact.
        let t = pass_table::datasets::instacart(30_000, 3);
        let a = AqpPlusPlus::build(&t, 32, t.n_rows(), 4).unwrap();
        let (lo, hi) = t.predicate_range(0).unwrap();
        let span = hi - lo;
        for (qlo, qhi) in [
            (lo + 0.13 * span, lo + 0.77 * span),
            (lo + 0.4 * span, lo + 0.45 * span),
            (lo, hi),
        ] {
            let q = Query::interval(AggKind::Sum, qlo, qhi);
            let est = a.estimate(&q).unwrap();
            let truth = t.ground_truth(&q).unwrap();
            assert!(
                (est.value - truth).abs() <= 1e-6 * truth.abs().max(1.0),
                "[{qlo},{qhi}]: {} vs truth {truth}",
                est.value
            );
        }
    }

    #[test]
    fn empty_predicate_errors_for_avg() {
        let t = uniform(1_000, 8);
        let a = AqpPlusPlus::build(&t, 8, 100, 9).unwrap();
        assert!(a
            .estimate(&Query::interval(AggKind::Avg, 7.0, 8.0))
            .is_err());
        // SUM of an empty region estimates 0 (nothing matches; region is
        // disjoint from every partition so it is also exactly covered).
        let est = a
            .estimate(&Query::interval(AggKind::Sum, 7.0, 8.0))
            .unwrap();
        assert_eq!(est.value, 0.0);
    }
}
