//! The comparator AQP engines of Section 5.
//!
//! Every engine implements [`pass_common::Synopsis`], so the workload
//! runner treats them interchangeably with PASS:
//!
//! * [`UniformSynopsis`] (**US**) — one uniform sample + φ-estimators
//!   (Section 2.1);
//! * [`StratifiedSynopsis`] (**ST**) — equal-depth strata, per-stratum
//!   samples, weighted combination (Section 2.2);
//! * [`AqpPlusPlus`] (**AQP++** / **KD-US**) — precomputed partition
//!   aggregates (hill-climbing boundaries in 1-D, breadth-first k-d in
//!   d > 1) combined with a *uniform* sample for the uncovered gap
//!   [Peng et al. 2018];
//! * [`VerdictSynopsis`] — a VerdictDB-style scramble with variational
//!   subsampling CIs [Park et al. 2018];
//! * [`SpnSynopsis`] — a DeepDB-style sum-product network learned from the
//!   data [Hilprecht et al. 2019].
//!
//! The latter two stand in for the closed-source systems compared in
//! Table 2; DESIGN.md documents the substitutions.
//!
//! Beyond the paper's comparison set, [`JoinSynopsis`] (**JOIN**)
//! answers a second *scenario family*: fact ⋈ dimension foreign-key
//! join aggregates (`pass_common::JoinSpec`), estimated from a
//! fact-side uniform sample joined against a hash-indexed dimension
//! side [Huang et al., *Joins on Samples*]. And [`ShardedSynopsis`] scales any of
//! the above horizontally: one logical table is cut into disjoint shards
//! (`pass_common::ShardPlan`), one inner engine is built per shard
//! (concurrently), and per-shard partial estimates merge behind the same
//! [`Synopsis`](pass_common::Synopsis) contract
//! (`EngineSpec::Sharded`).
//!
//! Engines (including PASS itself) are constructed through the
//! spec-driven registry [`Engine`]: call sites describe the engine with a
//! [`pass_common::EngineSpec`] and receive an `Arc<dyn Synopsis>` — an
//! immutable, thread-safe synopsis that any number of sessions and worker
//! threads can query concurrently ([`Synopsis`](pass_common::Synopsis)
//! requires `Send + Sync`). [`Engine::standard_suite`] yields the paper's
//! Section 5 comparison set in its canonical order (PASS, US, ST,
//! AQP++/KD-US, VerdictDB-style, DeepDB-style SPN); the suite's ordering
//! and display names are pinned by `tests/engine_contract.rs`.

#![warn(missing_docs)]

pub mod aqppp;
pub mod engine;
pub mod join;
pub mod sharded;
pub(crate) mod snapshot;
pub mod spn;
pub mod st;
pub mod us;
pub mod verdict;

pub use aqppp::AqpPlusPlus;
pub use engine::Engine;
pub use join::JoinSynopsis;
pub use sharded::ShardedSynopsis;
pub use spn::SpnSynopsis;
pub use st::StratifiedSynopsis;
pub use us::UniformSynopsis;
pub use verdict::VerdictSynopsis;
