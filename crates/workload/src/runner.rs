//! Engine-agnostic workload evaluation.

use std::time::Instant;

use pass_common::{Estimate, Query, Result, Synopsis, ThreadPool};

use crate::metrics::{median, WorkloadSummary};
use crate::truth::Truth;

/// Per-query outcome (kept for debugging / plotting; the benchmark tables
/// use the summary).
#[derive(Debug, Clone)]
pub struct QueryOutcome {
    pub truth: Option<f64>,
    pub estimate: Option<f64>,
    pub relative_error: f64,
    pub ci_ratio: f64,
    pub skip_rate: f64,
    pub tuples_processed: u64,
    pub latency_us: f64,
}

/// Evaluate `synopsis` over the workload. Pre-computed truths may be
/// supplied (one per query) to amortize ground-truth evaluation across
/// engines; pass `None` to compute them here.
pub fn run_workload<S: Synopsis + ?Sized>(
    synopsis: &S,
    queries: &[Query],
    truth: &Truth,
    precomputed_truths: Option<&[Option<f64>]>,
) -> (WorkloadSummary, Vec<QueryOutcome>) {
    let run_start = Instant::now();
    let mut timed: Vec<(Result<Estimate>, f64)> = Vec::with_capacity(queries.len());
    for q in queries {
        let start = Instant::now();
        let est = synopsis.estimate(q);
        timed.push((est, start.elapsed().as_secs_f64() * 1e6));
    }
    let wall_secs = run_start.elapsed().as_secs_f64();
    let (outcomes, failures) = collect_outcomes(queries, timed, truth, precomputed_truths);
    summarize(synopsis, outcomes, failures, queries.len(), wall_secs)
}

/// Evaluate `synopsis` over the workload through its **batched** path
/// ([`Synopsis::estimate_many`]): engines that share work across a batch
/// (PASS reuses its traversal buffers) amortize it here. Per-query latency
/// is reported as the batch wall-clock divided by the batch size; error
/// metrics are element-wise identical to [`run_workload`].
pub fn run_workload_batched<S: Synopsis + ?Sized>(
    synopsis: &S,
    queries: &[Query],
    truth: &Truth,
    precomputed_truths: Option<&[Option<f64>]>,
) -> (WorkloadSummary, Vec<QueryOutcome>) {
    let start = Instant::now();
    let estimates = synopsis.estimate_many(queries);
    finish_batch(
        synopsis,
        queries,
        estimates,
        start,
        truth,
        precomputed_truths,
    )
}

/// Evaluate `synopsis` over the workload through its **parallel** batched
/// path ([`Synopsis::estimate_many_parallel`]): the batch is sharded
/// across `pool`'s worker threads against the (immutable) synopsis. Error
/// metrics are element-wise identical to [`run_workload`] /
/// [`run_workload_batched`]; the latency and throughput columns reflect
/// the parallel wall clock, so `throughput_qps` is where multi-core
/// speedup shows up.
pub fn run_workload_parallel<S: Synopsis + ?Sized>(
    synopsis: &S,
    queries: &[Query],
    truth: &Truth,
    precomputed_truths: Option<&[Option<f64>]>,
    pool: &ThreadPool,
) -> (WorkloadSummary, Vec<QueryOutcome>) {
    let start = Instant::now();
    let estimates = synopsis.estimate_many_parallel(queries, pool);
    finish_batch(
        synopsis,
        queries,
        estimates,
        start,
        truth,
        precomputed_truths,
    )
}

/// Shared tail of the batch runners: batch wall clock amortized into
/// per-query latency, then outcomes and the summary.
fn finish_batch<S: Synopsis + ?Sized>(
    synopsis: &S,
    queries: &[Query],
    estimates: Vec<Result<Estimate>>,
    start: Instant,
    truth: &Truth,
    precomputed_truths: Option<&[Option<f64>]>,
) -> (WorkloadSummary, Vec<QueryOutcome>) {
    let wall_secs = start.elapsed().as_secs_f64();
    let per_query_us = wall_secs * 1e6 / queries.len().max(1) as f64;
    let timed: Vec<(Result<Estimate>, f64)> =
        estimates.into_iter().map(|e| (e, per_query_us)).collect();
    let (outcomes, failures) = collect_outcomes(queries, timed, truth, precomputed_truths);
    summarize(synopsis, outcomes, failures, queries.len(), wall_secs)
}

/// Pair each (estimate, latency) with its ground truth and classify:
/// answered, failed (penalized at 100% error), or undefined truth
/// (excluded from error statistics entirely).
fn collect_outcomes(
    queries: &[Query],
    timed: Vec<(Result<Estimate>, f64)>,
    truth: &Truth,
    precomputed_truths: Option<&[Option<f64>]>,
) -> (Vec<QueryOutcome>, usize) {
    let mut outcomes = Vec::with_capacity(queries.len());
    let mut failures = 0usize;
    for (i, (q, (est, latency_us))) in queries.iter().zip(timed).enumerate() {
        let t = match precomputed_truths {
            Some(ts) => ts[i],
            None => truth.eval(q),
        };
        match (est, t) {
            (Ok(e), Some(tv)) => outcomes.push(QueryOutcome {
                truth: Some(tv),
                estimate: Some(e.value),
                relative_error: e.relative_error(tv),
                ci_ratio: e.ci_ratio(tv),
                skip_rate: e.skip_rate(),
                tuples_processed: e.tuples_processed,
                latency_us,
            }),
            (Err(_), Some(tv)) => {
                failures += 1;
                outcomes.push(QueryOutcome {
                    truth: Some(tv),
                    estimate: None,
                    // An unanswerable query counts as 100% error — the
                    // penalty the paper's selective-query discussion
                    // motivates.
                    relative_error: 1.0,
                    ci_ratio: 1.0,
                    skip_rate: 0.0,
                    tuples_processed: 0,
                    latency_us,
                });
            }
            (_, None) => {}
        }
    }
    (outcomes, failures)
}

fn summarize<S: Synopsis + ?Sized>(
    synopsis: &S,
    outcomes: Vec<QueryOutcome>,
    failures: usize,
    executed: usize,
    wall_secs: f64,
) -> (WorkloadSummary, Vec<QueryOutcome>) {
    let rel: Vec<f64> = outcomes.iter().map(|o| o.relative_error).collect();
    let ci: Vec<f64> = outcomes.iter().map(|o| o.ci_ratio).collect();
    let n = outcomes.len().max(1) as f64;
    let summary = WorkloadSummary {
        engine: synopsis.name().to_owned(),
        median_relative_error: median(&rel),
        median_ci_ratio: median(&ci),
        mean_skip_rate: outcomes.iter().map(|o| o.skip_rate).sum::<f64>() / n,
        mean_tuples_processed: outcomes
            .iter()
            .map(|o| o.tuples_processed as f64)
            .sum::<f64>()
            / n,
        mean_latency_us: outcomes.iter().map(|o| o.latency_us).sum::<f64>() / n,
        max_latency_us: outcomes.iter().map(|o| o.latency_us).fold(0.0, f64::max),
        // Throughput counts every query the engine executed (including
        // those later excluded from error statistics for lacking a
        // defined ground truth) — it is a serving-rate metric, and the
        // wall clock covers the whole batch.
        throughput_qps: if wall_secs > 0.0 {
            executed as f64 / wall_secs
        } else {
            0.0
        },
        cache_hits: 0,
        cache_misses: 0,
        failures,
        queries: outcomes.len(),
        storage_bytes: synopsis.storage_bytes(),
        build_ms: 0.0,
    };
    (summary, outcomes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query_gen::random_queries;
    use pass_baselines::Engine;
    use pass_common::{AggKind, EngineSpec, PassSpec};
    use pass_core::Pass;
    use pass_table::datasets::uniform;
    use pass_table::SortedTable;

    fn pass_spec(partitions: usize, sample_rate: f64, seed: u64) -> PassSpec {
        PassSpec {
            partitions,
            sample_rate,
            seed,
            ..PassSpec::default()
        }
    }

    #[test]
    fn pass_beats_uniform_on_median_error() {
        let t = uniform(20_000, 1);
        let s = SortedTable::from_table(&t, 0);
        let truth = Truth::new(&t);
        let queries = random_queries(&s, 150, AggKind::Sum, 400, 2);

        let pass = Pass::from_spec(&t, &pass_spec(32, 0.01, 3)).unwrap();
        let us =
            Engine::build(&t, &EngineSpec::uniform(pass.total_samples()).with_seed(3)).unwrap();

        let (pass_sum, _) = run_workload(&pass, &queries, &truth, None);
        let (us_sum, _) = run_workload(&us, &queries, &truth, None);
        assert!(
            pass_sum.median_relative_error <= us_sum.median_relative_error,
            "PASS {} vs US {}",
            pass_sum.median_relative_error,
            us_sum.median_relative_error
        );
        assert!(pass_sum.mean_skip_rate > 0.9);
        assert_eq!(pass_sum.queries, 150);
    }

    #[test]
    fn precomputed_truths_match_inline_evaluation() {
        let t = uniform(5_000, 4);
        let s = SortedTable::from_table(&t, 0);
        let truth = Truth::new(&t);
        let queries = random_queries(&s, 30, AggKind::Avg, 100, 5);
        let truths: Vec<Option<f64>> = queries.iter().map(|q| truth.eval(q)).collect();
        let pass = Pass::from_spec(&t, &pass_spec(8, 0.005, 6)).unwrap();
        let (a, _) = run_workload(&pass, &queries, &truth, None);
        let (b, _) = run_workload(&pass, &queries, &truth, Some(&truths));
        assert_eq!(a.median_relative_error, b.median_relative_error);
    }

    #[test]
    fn batched_runner_matches_per_query_error_metrics() {
        let t = uniform(15_000, 9);
        let s = SortedTable::from_table(&t, 0);
        let truth = Truth::new(&t);
        let queries = random_queries(&s, 80, AggKind::Sum, 300, 10);
        let pass = Pass::from_spec(&t, &pass_spec(32, 0.01, 11)).unwrap();
        let (single, single_outcomes) = run_workload(&pass, &queries, &truth, None);
        let (batched, batched_outcomes) = run_workload_batched(&pass, &queries, &truth, None);
        assert_eq!(single.median_relative_error, batched.median_relative_error);
        assert_eq!(single.median_ci_ratio, batched.median_ci_ratio);
        assert_eq!(single.failures, batched.failures);
        assert_eq!(single_outcomes.len(), batched_outcomes.len());
        for (a, b) in single_outcomes.iter().zip(&batched_outcomes) {
            assert_eq!(a.estimate, b.estimate);
            assert_eq!(a.relative_error, b.relative_error);
        }
    }

    #[test]
    fn parallel_runner_matches_sequential_error_metrics() {
        let t = uniform(15_000, 12);
        let s = SortedTable::from_table(&t, 0);
        let truth = Truth::new(&t);
        let queries = random_queries(&s, 80, AggKind::Sum, 300, 13);
        let pass = Pass::from_spec(&t, &pass_spec(32, 0.01, 14)).unwrap();
        let (batched, _) = run_workload_batched(&pass, &queries, &truth, None);
        for threads in [1, 2, 4] {
            let pool = pass_common::ThreadPool::new(threads);
            let (parallel, outcomes) = run_workload_parallel(&pass, &queries, &truth, None, &pool);
            assert_eq!(
                parallel.median_relative_error, batched.median_relative_error,
                "threads {threads}"
            );
            assert_eq!(parallel.median_ci_ratio, batched.median_ci_ratio);
            assert_eq!(parallel.failures, batched.failures);
            assert_eq!(outcomes.len(), batched.queries);
            assert!(parallel.throughput_qps > 0.0);
        }
    }

    #[test]
    fn failures_counted_and_penalized() {
        // A tiny uniform sample will fail AVG on very selective queries.
        let t = uniform(10_000, 7);
        let us = Engine::build(&t, &EngineSpec::uniform(5).with_seed(8)).unwrap();
        let truth = Truth::new(&t);
        // Very narrow queries.
        let queries: Vec<_> = (0..20)
            .map(|i| {
                let lo = 0.05 * i as f64 / 20.0;
                pass_common::Query::interval(AggKind::Avg, lo, lo + 1e-4)
            })
            .collect();
        let (summary, outcomes) = run_workload(&us, &queries, &truth, None);
        // Queries with empty truth are dropped; the rest either answer or
        // fail with penalty 1.0.
        for o in &outcomes {
            assert!(o.truth.is_some());
            if o.estimate.is_none() {
                assert_eq!(o.relative_error, 1.0);
            }
        }
        assert_eq!(
            summary.failures,
            outcomes.iter().filter(|o| o.estimate.is_none()).count()
        );
    }
}
