//! The Section 5.1.2 metrics: median relative error, CI ratio, skip rate,
//! and effective sample size.

use pass_common::Json;

/// Median of a slice (NaNs excluded); 0.0 when nothing remains.
pub fn median(values: &[f64]) -> f64 {
    let mut clean: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
    if clean.is_empty() {
        return 0.0;
    }
    clean.sort_by(|a, b| a.partial_cmp(b).expect("filtered NaNs"));
    let n = clean.len();
    if n % 2 == 1 {
        clean[n / 2]
    } else {
        (clean[n / 2 - 1] + clean[n / 2]) / 2.0
    }
}

/// Aggregated workload metrics for one engine (one row of a benchmark
/// table).
#[derive(Debug, Clone)]
pub struct WorkloadSummary {
    /// Engine name.
    pub engine: String,
    /// Median |est − truth| / |truth| — the paper's headline metric.
    pub median_relative_error: f64,
    /// Median (CI half-width) / |truth| (Section 5.1.2's CI ratio).
    pub median_ci_ratio: f64,
    /// Mean fraction of tuples safely skipped.
    pub mean_skip_rate: f64,
    /// Mean tuples processed per query (the ESS numerator).
    pub mean_tuples_processed: f64,
    /// Mean per-query latency in microseconds.
    pub mean_latency_us: f64,
    /// Max per-query latency in microseconds.
    pub max_latency_us: f64,
    /// Queries answered per second of wall clock — the serving-layer
    /// throughput metric. "Answered" counts **every** query the run
    /// resolved, regardless of *how*: answers computed by the engine
    /// and answers served from the session's per-engine cache both
    /// count (a fully cached re-run therefore reports the same
    /// [`queries`](Self::queries) over a much shorter wall clock, i.e.
    /// a higher throughput). Use [`cache_hits`](Self::cache_hits) /
    /// [`cache_misses`](Self::cache_misses) to attribute the rate to
    /// cache wins vs engine work. For batched/parallel runs the wall
    /// clock covers the whole batch, so this is also where cross-query
    /// sharing and multi-core speedup show up.
    pub throughput_qps: f64,
    /// Query-cache hits attributable to this run (0 when run outside a
    /// caching session).
    pub cache_hits: u64,
    /// Query-cache misses attributable to this run.
    pub cache_misses: u64,
    /// Queries the engine could not answer (e.g. AVG with no matching
    /// sample) — these count as relative error 1.0 in the medians.
    pub failures: usize,
    /// Number of queries evaluated.
    pub queries: usize,
    /// Synopsis storage in bytes.
    pub storage_bytes: usize,
    /// Offline construction time in milliseconds (filled by the harness).
    pub build_ms: f64,
}

impl WorkloadSummary {
    /// The summary as a JSON object (one row of an emitted results file).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("engine", Json::from(self.engine.clone())),
            (
                "median_relative_error",
                Json::from(self.median_relative_error),
            ),
            ("median_ci_ratio", Json::from(self.median_ci_ratio)),
            ("mean_skip_rate", Json::from(self.mean_skip_rate)),
            (
                "mean_tuples_processed",
                Json::from(self.mean_tuples_processed),
            ),
            ("mean_latency_us", Json::from(self.mean_latency_us)),
            ("max_latency_us", Json::from(self.max_latency_us)),
            ("throughput_qps", Json::from(self.throughput_qps)),
            ("cache_hits", Json::from(self.cache_hits)),
            ("cache_misses", Json::from(self.cache_misses)),
            ("failures", Json::from(self.failures)),
            ("queries", Json::from(self.queries)),
            ("storage_bytes", Json::from(self.storage_bytes)),
            ("build_ms", Json::from(self.build_ms)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_odd_even_and_empty() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
        assert_eq!(median(&[]), 0.0);
        assert_eq!(median(&[7.0]), 7.0);
    }

    #[test]
    fn median_ignores_nan_and_inf() {
        assert_eq!(median(&[1.0, f64::NAN, 3.0]), 2.0);
        assert_eq!(median(&[1.0, f64::INFINITY, 3.0]), 2.0);
    }

    #[test]
    fn summary_serializes() {
        let s = WorkloadSummary {
            engine: "PASS".into(),
            median_relative_error: 0.001,
            median_ci_ratio: 0.002,
            mean_skip_rate: 0.99,
            mean_tuples_processed: 12.0,
            mean_latency_us: 3.5,
            max_latency_us: 11.0,
            throughput_qps: 280_000.0,
            cache_hits: 5,
            cache_misses: 1995,
            failures: 0,
            queries: 2000,
            storage_bytes: 1024,
            build_ms: 42.0,
        };
        let json = s.to_json().to_string();
        assert!(json.contains("\"engine\":\"PASS\""), "{json}");
        assert!(json.contains("\"queries\":2000"), "{json}");
    }
}
