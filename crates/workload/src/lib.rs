//! Workload generation, ground truth, and the Section 5 metrics.
//!
//! * [`query_gen`] — random rectangular queries grounded on data values
//!   (with the δN meaningful-overlap guarantee), the "challenging" queries
//!   of Section 5.3 (drawn from the maximum-variance window), and the
//!   multi-dimensional templates Q1–Q5 of Section 5.4;
//! * [`truth`] — exact ground-truth evaluation (O(log n) in 1-D via sorted
//!   prefix sums, scan otherwise);
//! * [`metrics`] — median relative error, CI ratio, skip rate, effective
//!   sample size;
//! * [`runner`] — evaluates any [`pass_common::Synopsis`] over a workload
//!   (per-query, batched, or sharded across a
//!   [`pass_common::ThreadPool`]) and produces the summary rows the
//!   benchmark tables print, including serving-layer throughput.

pub mod metrics;
pub mod query_gen;
pub mod runner;
pub mod truth;

pub use metrics::{median, WorkloadSummary};
pub use query_gen::{
    challenging_queries, random_queries, random_queries_in, template_queries,
    template_queries_partial,
};
pub use runner::{run_workload, run_workload_batched, run_workload_parallel, QueryOutcome};
pub use truth::Truth;
