//! Exact ground truth for workloads.

use pass_common::{Query, Rect};
use pass_table::{SortedTable, Table};

/// A ground-truth oracle over one table. One-dimensional tables get an
/// O(log n) sorted/prefix-sum path; higher dimensions fall back to a scan.
pub struct Truth {
    table: Table,
    sorted: Option<SortedTable>,
}

impl Truth {
    pub fn new(table: &Table) -> Self {
        let sorted = (table.dims() == 1).then(|| SortedTable::from_table(table, 0));
        Self {
            table: table.clone(),
            sorted,
        }
    }

    /// Exact answer; `None` for AVG/MIN/MAX over empty selections.
    pub fn eval(&self, query: &Query) -> Option<f64> {
        match &self.sorted {
            Some(s) => s.ground_truth(query),
            None => self.table.ground_truth(query),
        }
    }

    /// Exact number of rows matching the rectangle.
    pub fn matching_rows(&self, rect: &Rect) -> u64 {
        match &self.sorted {
            Some(s) => {
                let (lo, hi) = s.index_range(rect.lo(0), rect.hi(0));
                (hi - lo) as u64
            }
            None => self.table.scan_aggregates(rect).count,
        }
    }

    /// The underlying table.
    pub fn table(&self) -> &Table {
        &self.table
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pass_common::AggKind;
    use pass_table::datasets::{taxi, uniform};

    #[test]
    fn one_dim_path_matches_scan() {
        let t = uniform(5_000, 1);
        let truth = Truth::new(&t);
        for agg in AggKind::ALL {
            let q = Query::interval(agg, 0.2, 0.8);
            // Prefix-sum and scan accumulation orders differ; compare to
            // relative 1e-12.
            let fast = truth.eval(&q).unwrap();
            let scan = t.ground_truth(&q).unwrap();
            assert!(
                (fast - scan).abs() <= 1e-12 * scan.abs().max(1.0),
                "{agg}: {fast} vs {scan}"
            );
        }
        assert_eq!(
            truth.matching_rows(&Rect::interval(0.0, 0.5)),
            t.scan_aggregates(&Rect::interval(0.0, 0.5)).count
        );
    }

    #[test]
    fn multi_dim_path_matches_scan() {
        let t = taxi(2_000, 2).project(&[1, 2]).unwrap();
        let truth = Truth::new(&t);
        let rect = t.bounding_rect().unwrap();
        let q = Query::new(AggKind::Count, rect.clone());
        assert_eq!(truth.eval(&q), Some(2_000.0));
        assert_eq!(truth.matching_rows(&rect), 2_000);
    }
}
