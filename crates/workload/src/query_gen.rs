//! Workload generators (Sections 5.1–5.4).
//!
//! All generators produce rectangular queries grounded on actual data
//! values (the Section 4.2 observation that only tuple-grounded rectangles
//! are meaningful) and guarantee a minimum selectivity so that relative
//! error and CI ratio are well defined.

use rand::Rng;

use pass_common::rng::rng_from_seed;
use pass_common::{AggKind, PrefixSums, Query, Rect};
use pass_partition::maxvar::WindowIndex;
use pass_table::{SortedTable, Table};

/// `n` random 1-D interval queries over the sorted key space, each
/// matching at least `min_rows` rows.
pub fn random_queries(
    sorted: &SortedTable,
    n: usize,
    agg: AggKind,
    min_rows: usize,
    seed: u64,
) -> Vec<Query> {
    random_queries_in(sorted, 0..sorted.len(), n, agg, min_rows, seed)
}

/// Random interval queries constrained to a sorted-row range (used for the
/// Figure 6 "challenging" workload over the adversarial tail).
pub fn random_queries_in(
    sorted: &SortedTable,
    region: std::ops::Range<usize>,
    n: usize,
    agg: AggKind,
    min_rows: usize,
    seed: u64,
) -> Vec<Query> {
    let mut rng = rng_from_seed(seed);
    let len = region.len();
    let min_rows = min_rows.clamp(1, len);
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let span = rng.gen_range(min_rows..=len);
        let start = region.start + rng.gen_range(0..=(len - span));
        let lo = sorted.key(start);
        let hi = sorted.key(start + span - 1);
        out.push(Query::interval(agg, lo, hi));
    }
    out
}

/// The Section 5.3 challenging workload: random queries drawn from around
/// the maximum-variance window, located with the fast discretization
/// method (the same `Σt²`-scored δm-window index ADP uses).
pub fn challenging_queries(
    sorted: &SortedTable,
    n: usize,
    agg: AggKind,
    opt_samples: usize,
    delta: f64,
    seed: u64,
) -> Vec<Query> {
    let total = sorted.len();
    let m = opt_samples.clamp(16, total);
    // Evenly strided optimization sample (deterministic; the window only
    // needs to locate the volatile region).
    let positions: Vec<usize> = (0..m).map(|i| i * total / m).collect();
    let values: Vec<f64> = positions.iter().map(|&p| sorted.value(p)).collect();
    let prefix = PrefixSums::build(&values);
    let delta_m = ((delta * m as f64).round() as usize).clamp(2, m / 2);
    let index = WindowIndex::build(&prefix, delta_m);
    let (g, _) = index.argmax_window(0, m).unwrap_or((0, 0.0));
    // Map the winning sample window back to full rows, slightly widened so
    // queries vary around the hot region while staying dominated by it
    // (the paper draws its challenging queries "from the interval with the
    // maximum variance").
    let row_lo = positions[g];
    let row_hi = positions[(g + delta_m - 1).min(m - 1)];
    let width = (row_hi - row_lo).max(1);
    let lo = row_lo.saturating_sub(width / 2);
    let hi = (row_hi + width / 2).min(total - 1);
    random_queries_in(sorted, lo..hi + 1, n, agg, (width / 2).max(1), seed)
}

/// Multi-dimensional template queries (Section 5.4): per dimension an
/// interval covering a random `[0.3, 0.9]` quantile span, grounded on data
/// values.
pub fn template_queries(table: &Table, n: usize, agg: AggKind, seed: u64) -> Vec<Query> {
    let mut rng = rng_from_seed(seed);
    let d = table.dims();
    // Sorted copies of each predicate column for quantile lookup.
    let sorted_cols: Vec<Vec<f64>> = (0..d)
        .map(|dim| {
            let mut c = table.predicate_column(dim).to_vec();
            c.sort_by(|a, b| a.partial_cmp(b).expect("NaN predicate"));
            c
        })
        .collect();
    let rows = table.n_rows();
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let bounds: Vec<(f64, f64)> = sorted_cols
            .iter()
            .map(|col| {
                let frac = rng.gen_range(0.3..0.9);
                let span = ((rows as f64) * frac) as usize;
                let start = rng.gen_range(0..=(rows - span));
                (col[start], col[start + span - 1])
            })
            .collect();
        out.push(Query::new(agg, Rect::new(&bounds)));
    }
    out
}

/// Template queries constraining only the first `constrained` predicate
/// dimensions; the remaining dimensions are unbounded. This is the
/// Section 5.4 template family Q1..Qd expressed in the table's full arity
/// (so one synopsis can serve every template — the workload-shift setup).
pub fn template_queries_partial(
    table: &Table,
    constrained: usize,
    n: usize,
    agg: AggKind,
    seed: u64,
) -> Vec<Query> {
    assert!(constrained >= 1 && constrained <= table.dims());
    let mut rng = rng_from_seed(seed);
    let sorted_cols: Vec<Vec<f64>> = (0..constrained)
        .map(|dim| {
            let mut c = table.predicate_column(dim).to_vec();
            c.sort_by(|a, b| a.partial_cmp(b).expect("NaN predicate"));
            c
        })
        .collect();
    let rows = table.n_rows();
    let d = table.dims();
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let mut bounds: Vec<(f64, f64)> = Vec::with_capacity(d);
        for col in &sorted_cols {
            let frac = rng.gen_range(0.3..0.9);
            let span = ((rows as f64) * frac) as usize;
            let start = rng.gen_range(0..=(rows - span));
            bounds.push((col[start], col[start + span - 1]));
        }
        for _ in constrained..d {
            bounds.push((f64::NEG_INFINITY, f64::INFINITY));
        }
        out.push(Query::new(agg, Rect::new(&bounds)));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::truth::Truth;
    use pass_table::datasets::{adversarial, taxi, uniform};

    #[test]
    fn random_queries_ground_on_data_and_respect_min_rows() {
        let t = uniform(5_000, 1);
        let s = SortedTable::from_table(&t, 0);
        let truth = Truth::new(&t);
        let qs = random_queries(&s, 200, AggKind::Sum, 50, 2);
        assert_eq!(qs.len(), 200);
        for q in &qs {
            assert!(truth.matching_rows(&q.rect) >= 50);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let t = uniform(1_000, 3);
        let s = SortedTable::from_table(&t, 0);
        let a = random_queries(&s, 20, AggKind::Avg, 10, 7);
        let b = random_queries(&s, 20, AggKind::Avg, 10, 7);
        assert_eq!(a, b);
        let c = random_queries(&s, 20, AggKind::Avg, 10, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn restricted_region_respected() {
        let t = uniform(2_000, 4);
        let s = SortedTable::from_table(&t, 0);
        let qs = random_queries_in(&s, 500..1_000, 50, AggKind::Sum, 10, 5);
        let lo = s.key(500);
        let hi = s.key(999);
        for q in &qs {
            assert!(q.rect.lo(0) >= lo && q.rect.hi(0) <= hi);
        }
    }

    #[test]
    fn challenging_queries_target_the_volatile_tail() {
        // Adversarial data: the max-variance window lives in the last 12.5%.
        let t = adversarial(40_000, 5);
        let s = SortedTable::from_table(&t, 0);
        let qs = challenging_queries(&s, 100, AggKind::Sum, 2_000, 0.01, 6);
        let tail_start_key = s.key((40_000_f64 * 0.8) as usize);
        let in_tail = qs.iter().filter(|q| q.rect.lo(0) >= tail_start_key).count();
        assert!(in_tail > 90, "{in_tail}/100 queries in the tail");
    }

    #[test]
    fn partial_templates_leave_trailing_dims_unbounded() {
        let t = taxi(2_000, 9).project(&[1, 2, 3, 4]).unwrap();
        let qs = template_queries_partial(&t, 2, 20, AggKind::Sum, 10);
        for q in &qs {
            assert_eq!(q.dims(), 4);
            assert!(q.rect.lo(0).is_finite() && q.rect.hi(0).is_finite());
            assert!(q.rect.lo(2) == f64::NEG_INFINITY);
            assert!(q.rect.hi(3) == f64::INFINITY);
        }
    }

    #[test]
    fn template_queries_have_nontrivial_selectivity() {
        let t = taxi(5_000, 7).project(&[1, 2, 3]).unwrap();
        let truth = Truth::new(&t);
        let qs = template_queries(&t, 50, AggKind::Avg, 8);
        let mut nonempty = 0;
        for q in &qs {
            assert_eq!(q.dims(), 3);
            if truth.matching_rows(&q.rect) > 0 {
                nonempty += 1;
            }
        }
        assert!(nonempty >= 45, "{nonempty}/50 non-empty");
    }
}
