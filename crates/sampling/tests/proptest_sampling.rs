//! Property tests for the sampling substrate: without-replacement
//! invariants, estimator exactness at full sampling, stratified
//! combination conservation, reservoir size laws, and delta-encoding error
//! bounds.

use proptest::prelude::*;

use pass_common::rng::rng_from_seed;
use pass_common::{AggKind, Query, Rect};
use pass_sampling::delta::DeltaEncoded;
use pass_sampling::{combine_strata, estimate, Reservoir, Sample, StratumEstimate};
use pass_table::Table;

fn table_strategy() -> impl Strategy<Value = Table> {
    prop::collection::vec((0.0f64..100.0, -50.0f64..50.0), 2..150).prop_map(|rows| {
        let (keys, values): (Vec<f64>, Vec<f64>) = rows.into_iter().unzip();
        Table::one_dim(keys, values).unwrap()
    })
}

proptest! {
    /// Uniform sampling never duplicates rows and stays within bounds.
    #[test]
    fn sampling_without_replacement(t in table_strategy(), k in 1usize..100, seed in 0u64..500) {
        let mut rng = rng_from_seed(seed);
        let s = Sample::uniform(&t, k, &mut rng).unwrap();
        prop_assert!(s.k() <= t.n_rows());
        prop_assert!(s.k() <= k.max(1) || s.k() == t.n_rows());
        prop_assert_eq!(s.population(), t.n_rows() as u64);
    }

    /// A full sample reproduces SUM/COUNT exactly with zero estimator
    /// variance (the FPC collapses it).
    #[test]
    fn full_sample_estimators_are_exact(t in table_strategy(), a in 0.0f64..100.0, b in 0.0f64..100.0) {
        let mut rng = rng_from_seed(1);
        let s = Sample::uniform(&t, t.n_rows(), &mut rng).unwrap();
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let rect = Rect::interval(lo, hi);
        for agg in [AggKind::Sum, AggKind::Count] {
            let pv = estimate(agg, &s, &rect).unwrap();
            let truth = t
                .ground_truth(&Query::new(agg, rect.clone()))
                .unwrap();
            prop_assert!((pv.value - truth).abs() < 1e-6 * truth.abs().max(1.0), "{agg}");
            prop_assert!(pv.variance.abs() < 1e-9, "{agg} variance {}", pv.variance);
        }
    }

    /// SUM/COUNT combination conserves totals: combining per-stratum
    /// estimates equals estimating the union when strata tile the space.
    #[test]
    fn stratified_sum_is_additive(
        values in prop::collection::vec(0.0f64..10.0, 10..100),
        cut_frac in 0.1f64..0.9,
    ) {
        let n = values.len();
        let cut = ((n as f64) * cut_frac) as usize;
        let keys: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let t = Table::one_dim(keys, values).unwrap();
        // Full per-stratum samples: estimates are exact.
        let s1 = Sample::from_indices(&t, &(0..cut).collect::<Vec<_>>(), cut as u64).unwrap();
        let s2 = Sample::from_indices(&t, &(cut..n).collect::<Vec<_>>(), (n - cut) as u64).unwrap();
        let rect = Rect::interval(-1.0, n as f64);
        let e1 = estimate(AggKind::Sum, &s1, &rect).unwrap();
        let e2 = estimate(AggKind::Sum, &s2, &rect).unwrap();
        let combined = combine_strata(
            AggKind::Sum,
            &[
                StratumEstimate { point: e1, population: cut as u64 },
                StratumEstimate { point: e2, population: (n - cut) as u64 },
            ],
            n as u64,
        );
        let truth = t.ground_truth(&Query::new(AggKind::Sum, rect)).unwrap();
        prop_assert!((combined.value - truth).abs() < 1e-6 * truth.abs().max(1.0));
    }

    /// Reservoirs never exceed capacity and track the stream length.
    #[test]
    fn reservoir_size_laws(cap in 0usize..50, stream in 0usize..500, seed in 0u64..100) {
        let mut rng = rng_from_seed(seed);
        let mut r = Reservoir::new(cap);
        for i in 0..stream {
            r.offer(i, &mut rng);
        }
        prop_assert_eq!(r.len(), cap.min(stream));
        prop_assert_eq!(r.seen(), stream as u64);
        // All held items come from the stream, distinct.
        let mut items = r.items().to_vec();
        items.sort_unstable();
        items.dedup();
        prop_assert_eq!(items.len(), r.len());
        prop_assert!(r.items().iter().all(|&i| i < stream));
    }

    /// Delta encoding's absolute error is bounded by f32 precision of the
    /// deltas — tiny relative to the spread, independent of the mean's
    /// magnitude.
    #[test]
    fn delta_encoding_error_bound(
        mean_mag in -1e9f64..1e9,
        deltas in prop::collection::vec(-100.0f64..100.0, 1..100),
    ) {
        let values: Vec<f64> = deltas.iter().map(|d| mean_mag + d).collect();
        let enc = DeltaEncoded::encode(&values, mean_mag);
        for (orig, dec) in values.iter().zip(enc.decode()) {
            // f32 relative epsilon on a |delta| <= 100 payload.
            prop_assert!((orig - dec).abs() <= 100.0 * f32::EPSILON as f64 * 2.0);
        }
    }
}
