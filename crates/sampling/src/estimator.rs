//! φ-transform estimators (Section 2.1).
//!
//! SUM, COUNT, and AVG are all rewritten as averages of a transformed
//! attribute φ over the sample (Equation 1):
//!
//! * COUNT: `φ(t) = Predicate(t) · N`
//! * SUM:   `φ(t) = Predicate(t) · N · a`
//! * AVG:   `φ(t) = Predicate(t) · (K / K_pred) · a`   (Equation 2)
//!
//! The estimate is `mean(φ(S))` and its CI half-width is
//! `λ · sqrt(var(φ(S)) / K)` (Equation 4), scaled by the finite-population
//! correction `(N-K)/(N-1)` (footnote 1).
//!
//! This module is the *reference* implementation: row-at-a-time, written to
//! mirror the paper's equations. The serving hot path runs the
//! allocation-free, column-at-a-time kernels in [`crate::kernel`] instead,
//! which are pinned bit-identical to these functions by the kernel-contract
//! tests — change the two in lockstep or not at all.

use pass_common::stats::{fpc, population_variance};
use pass_common::{AggKind, Rect};

use crate::sample::Sample;

/// A point estimate together with the variance *of the estimator* (i.e.
/// `var(φ(S))/K · FPC`, ready to be λ-scaled into a CI) and the matching
/// sample count.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PointVariance {
    pub value: f64,
    /// Variance of the estimator; `ci_half = λ · variance.sqrt()`.
    pub variance: f64,
    /// Number of sampled tuples satisfying the predicate (`K_pred`).
    pub k_pred: u64,
}

/// Estimate `agg` over the population the sample represents, restricted to
/// the rows matching `rect`.
///
/// Returns `None` for AVG when no sampled tuple matches (the estimator is
/// undefined — Section 2.1's selectivity pitfall); SUM/COUNT estimate 0 with
/// zero variance in that case (every φ value in the sample is 0, so the
/// empirical variance genuinely is 0 — this is precisely the "unreliable CI
/// at small effective sample size" phenomenon the paper discusses).
pub fn estimate(agg: AggKind, sample: &Sample, rect: &Rect) -> Option<PointVariance> {
    let k = sample.k();
    if k == 0 {
        return match agg {
            AggKind::Sum | AggKind::Count => Some(PointVariance {
                value: 0.0,
                variance: 0.0,
                k_pred: 0,
            }),
            _ => None,
        };
    }
    let n = sample.population() as f64;
    let rows = sample.rows();

    // Materialize φ explicitly — the readable form the kernels replicate
    // addition-for-addition without this Vec.
    let mut phi = Vec::with_capacity(k);
    let mut k_pred = 0u64;
    match agg {
        AggKind::Count => {
            for i in 0..k {
                if rows.matches(rect, i) {
                    k_pred += 1;
                    phi.push(n);
                } else {
                    phi.push(0.0);
                }
            }
        }
        AggKind::Sum => {
            for i in 0..k {
                if rows.matches(rect, i) {
                    k_pred += 1;
                    phi.push(n * rows.value(i));
                } else {
                    phi.push(0.0);
                }
            }
        }
        AggKind::Avg => {
            // Two passes: K_pred first, then the scaling.
            for i in 0..k {
                if rows.matches(rect, i) {
                    k_pred += 1;
                }
            }
            if k_pred == 0 {
                return None;
            }
            let scale = k as f64 / k_pred as f64;
            for i in 0..k {
                if rows.matches(rect, i) {
                    phi.push(scale * rows.value(i));
                } else {
                    phi.push(0.0);
                }
            }
        }
        AggKind::Min | AggKind::Max => return estimate_minmax(agg, sample, rect),
    }

    let value = phi.iter().sum::<f64>() / k as f64;
    let variance = population_variance(&phi) / k as f64 * fpc(sample.population(), k as u64);
    Some(PointVariance {
        value,
        variance,
        k_pred,
    })
}

/// Sample-based MIN/MAX estimate: the extremum of the matching sampled
/// values. No CLT variance exists for extrema; variance is reported as 0 and
/// engines should pair this with deterministic hard bounds when available.
pub fn estimate_minmax(agg: AggKind, sample: &Sample, rect: &Rect) -> Option<PointVariance> {
    debug_assert!(matches!(agg, AggKind::Min | AggKind::Max));
    let rows = sample.rows();
    let mut best: Option<f64> = None;
    let mut k_pred = 0u64;
    for i in 0..sample.k() {
        if !rows.matches(rect, i) {
            continue;
        }
        k_pred += 1;
        let v = rows.value(i);
        best = Some(match (best, agg) {
            (None, _) => v,
            (Some(b), AggKind::Min) => b.min(v),
            (Some(b), _) => b.max(v),
        });
    }
    best.map(|value| PointVariance {
        value,
        variance: 0.0,
        k_pred,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pass_common::rng::rng_from_seed;
    use pass_common::{Query, LAMBDA_99};
    use pass_table::datasets::uniform;
    use pass_table::Table;

    /// Full-table "sample": estimators must become exact (FPC = 0).
    #[test]
    fn full_sample_is_exact_with_zero_variance() {
        let t = uniform(300, 1);
        let mut rng = rng_from_seed(2);
        let s = Sample::uniform(&t, 300, &mut rng).unwrap();
        let rect = Rect::interval(0.2, 0.8);
        for agg in [AggKind::Sum, AggKind::Count, AggKind::Avg] {
            let pv = estimate(agg, &s, &rect).unwrap();
            let truth = t.ground_truth(&Query::new(agg, rect.clone())).unwrap();
            assert!(
                (pv.value - truth).abs() < 1e-6 * truth.abs().max(1.0),
                "{agg}: {} vs truth {truth}",
                pv.value
            );
            assert!(pv.variance.abs() < 1e-9, "{agg} variance {}", pv.variance);
        }
    }

    #[test]
    fn estimates_are_unbiased_over_many_draws() {
        let t = uniform(2_000, 3);
        let rect = Rect::interval(0.25, 0.75);
        let q = Query::new(AggKind::Sum, rect.clone());
        let truth = t.ground_truth(&q).unwrap();
        let mut acc = 0.0;
        let trials = 300;
        for trial in 0..trials {
            let mut rng = rng_from_seed(100 + trial);
            let s = Sample::uniform(&t, 200, &mut rng).unwrap();
            acc += estimate(AggKind::Sum, &s, &rect).unwrap().value;
        }
        let mean = acc / trials as f64;
        assert!(
            (mean - truth).abs() / truth < 0.02,
            "mean of estimates {mean} vs truth {truth}"
        );
    }

    #[test]
    fn ci_coverage_near_nominal() {
        // 99% CI should cover the truth in the vast majority of trials.
        let t = uniform(5_000, 4);
        let rect = Rect::interval(0.1, 0.9);
        let q = Query::new(AggKind::Avg, rect.clone());
        let truth = t.ground_truth(&q).unwrap();
        let trials = 200;
        let mut covered = 0;
        for trial in 0..trials {
            let mut rng = rng_from_seed(500 + trial);
            let s = Sample::uniform(&t, 400, &mut rng).unwrap();
            let pv = estimate(AggKind::Avg, &s, &rect).unwrap();
            let half = LAMBDA_99 * pv.variance.sqrt();
            if (pv.value - truth).abs() <= half {
                covered += 1;
            }
        }
        assert!(
            covered as f64 / trials as f64 > 0.95,
            "coverage {covered}/{trials}"
        );
    }

    #[test]
    fn avg_with_no_matching_sample_is_none() {
        let t = uniform(100, 5);
        let mut rng = rng_from_seed(6);
        let s = Sample::uniform(&t, 10, &mut rng).unwrap();
        let empty_rect = Rect::interval(5.0, 6.0); // outside [0,1)
        assert!(estimate(AggKind::Avg, &s, &empty_rect).is_none());
        let sum = estimate(AggKind::Sum, &s, &empty_rect).unwrap();
        assert_eq!(sum.value, 0.0);
        assert_eq!(sum.k_pred, 0);
    }

    #[test]
    fn empty_sample_semantics() {
        let t = uniform(10, 7);
        let s = Sample::from_indices(&t, &[], 10).unwrap();
        let rect = Rect::interval(0.0, 1.0);
        assert_eq!(estimate(AggKind::Sum, &s, &rect).unwrap().value, 0.0);
        assert!(estimate(AggKind::Avg, &s, &rect).is_none());
        assert!(estimate(AggKind::Min, &s, &rect).is_none());
    }

    #[test]
    fn count_scaling_matches_selectivity() {
        // Hand-built table: 10 rows, predicate 0..10. Sample half.
        let t = Table::one_dim((0..10).map(|i| i as f64).collect(), vec![1.0; 10]).unwrap();
        let s = Sample::from_indices(&t, &[0, 2, 4, 6, 8], 10).unwrap();
        // Predicate matches keys < 5: sampled keys 0,2,4 → 3 of 5 → est 6.
        let pv = estimate(AggKind::Count, &s, &Rect::interval(0.0, 4.5)).unwrap();
        assert_eq!(pv.value, 6.0);
        assert_eq!(pv.k_pred, 3);
    }

    #[test]
    fn minmax_estimates_from_matching_rows() {
        let t = Table::one_dim(
            (0..6).map(|i| i as f64).collect(),
            vec![10.0, 50.0, 20.0, 40.0, 30.0, 60.0],
        )
        .unwrap();
        let s = Sample::from_indices(&t, &[1, 3, 5], 6).unwrap();
        let rect = Rect::interval(0.0, 4.0); // keys 1 and 3 match
        let mn = estimate(AggKind::Min, &s, &rect).unwrap();
        let mx = estimate(AggKind::Max, &s, &rect).unwrap();
        assert_eq!(mn.value, 40.0);
        assert_eq!(mx.value, 50.0);
        assert_eq!(mn.k_pred, 2);
    }
}
