//! Reservoir sampling (Vitter, Algorithm R).
//!
//! Section 4.5 maintains PASS's stratified samples under inserts with
//! reservoir sampling: "Each time that a new item t_i is inserted, Reservoir
//! sampling might choose to replace a sample t_j with t_i." [`Reservoir`]
//! implements the classic algorithm plus deletion support so PASS can also
//! handle removals of sampled tuples.

use rand::Rng;

/// A fixed-capacity uniform reservoir over a stream of items.
#[derive(Debug, Clone)]
pub struct Reservoir<T> {
    capacity: usize,
    seen: u64,
    items: Vec<T>,
}

/// What happened when an item was offered to the reservoir.
#[derive(Debug, Clone, PartialEq)]
pub enum Offer<T> {
    /// The item was admitted into spare capacity.
    Admitted,
    /// The item replaced an existing sample (returned).
    Replaced(T),
    /// The item was not sampled.
    Rejected,
}

impl<T> Reservoir<T> {
    /// Create an empty reservoir holding at most `capacity` items.
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            seen: 0,
            items: Vec::with_capacity(capacity),
        }
    }

    /// Seed the reservoir with an existing uniform sample of `seen` stream
    /// items (e.g. the offline stratified sample at build time).
    pub fn from_sample(items: Vec<T>, capacity: usize, seen: u64) -> Self {
        debug_assert!(items.len() <= capacity);
        debug_assert!(items.len() as u64 <= seen);
        Self {
            capacity,
            seen,
            items,
        }
    }

    /// Offer one stream item; classic Algorithm R acceptance.
    pub fn offer<R: Rng>(&mut self, item: T, rng: &mut R) -> Offer<T> {
        self.seen += 1;
        if self.items.len() < self.capacity {
            self.items.push(item);
            return Offer::Admitted;
        }
        if self.capacity == 0 {
            return Offer::Rejected;
        }
        let j = rng.gen_range(0..self.seen);
        if (j as usize) < self.capacity {
            let old = std::mem::replace(&mut self.items[j as usize], item);
            Offer::Replaced(old)
        } else {
            Offer::Rejected
        }
    }

    /// Remove the sample at `index` after its underlying tuple was deleted,
    /// and record that the stream shrank by one. The remaining items are
    /// still a uniform sample of the remaining stream.
    pub fn remove_at(&mut self, index: usize) -> T {
        self.seen = self.seen.saturating_sub(1);
        self.items.swap_remove(index)
    }

    /// Record the deletion of a stream item that was *not* in the reservoir.
    pub fn note_unsampled_deletion(&mut self) {
        self.seen = self.seen.saturating_sub(1);
    }

    /// Current sample contents.
    pub fn items(&self) -> &[T] {
        &self.items
    }

    /// Number of items sampled so far.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when no items are held.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Stream length observed so far.
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// Maximum sample size.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pass_common::rng::rng_from_seed;

    #[test]
    fn fills_capacity_first() {
        let mut rng = rng_from_seed(1);
        let mut r = Reservoir::new(3);
        for i in 0..3 {
            assert_eq!(r.offer(i, &mut rng), Offer::Admitted);
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.seen(), 3);
    }

    #[test]
    fn maintains_fixed_size_after_fill() {
        let mut rng = rng_from_seed(2);
        let mut r = Reservoir::new(10);
        for i in 0..10_000 {
            r.offer(i, &mut rng);
        }
        assert_eq!(r.len(), 10);
        assert_eq!(r.seen(), 10_000);
    }

    #[test]
    fn inclusion_probability_is_uniform() {
        // Each of 100 items should land in a size-10 reservoir ~10% of the
        // time across many independent runs.
        let trials = 3_000;
        let mut hits = vec![0u32; 100];
        for t in 0..trials {
            let mut rng = rng_from_seed(100 + t);
            let mut r = Reservoir::new(10);
            for i in 0..100usize {
                r.offer(i, &mut rng);
            }
            for &it in r.items() {
                hits[it] += 1;
            }
        }
        let expected = trials as f64 * 0.1;
        for (i, &h) in hits.iter().enumerate() {
            let dev = (h as f64 - expected).abs() / expected;
            assert!(dev < 0.25, "item {i} hit {h} times (expected ~{expected})");
        }
    }

    #[test]
    fn zero_capacity_rejects_everything() {
        let mut rng = rng_from_seed(3);
        let mut r = Reservoir::new(0);
        assert_eq!(r.offer(42, &mut rng), Offer::Rejected);
        assert!(r.is_empty());
        assert_eq!(r.seen(), 1);
    }

    #[test]
    fn replacement_returns_evicted_item() {
        let mut rng = rng_from_seed(4);
        let mut r = Reservoir::new(1);
        r.offer(7, &mut rng);
        let mut evicted = None;
        for i in 0..100 {
            if let Offer::Replaced(old) = r.offer(i, &mut rng) {
                evicted = Some(old);
                break;
            }
        }
        assert!(
            evicted.is_some(),
            "with 100 offers a replacement is near-certain"
        );
    }

    #[test]
    fn deletions_shrink_seen() {
        let mut rng = rng_from_seed(5);
        let mut r = Reservoir::new(4);
        for i in 0..4 {
            r.offer(i, &mut rng);
        }
        let removed = r.remove_at(1);
        assert_eq!(removed, 1);
        assert_eq!(r.len(), 3);
        assert_eq!(r.seen(), 3);
        r.note_unsampled_deletion();
        assert_eq!(r.seen(), 2);
    }

    #[test]
    fn from_sample_resumes_stream() {
        let mut rng = rng_from_seed(6);
        let mut r = Reservoir::from_sample(vec![10, 20], 2, 50);
        assert_eq!(r.seen(), 50);
        r.offer(99, &mut rng);
        assert_eq!(r.seen(), 51);
        assert_eq!(r.len(), 2);
    }
}
