//! Snapshot codec for [`Sample`] (see `pass_common::snapshot`).
//!
//! The `sorted_1d` kernel fast-path flag is serialized explicitly rather
//! than recomputed: mutators clear it conservatively (even when a mutation
//! happens to preserve order), so a mutated-then-saved sample must reload
//! with the flag it had at save time — recomputing from the rows could
//! silently move the sample onto a different (sorted) kernel path and
//! break bit-identity with the originating engine.

use pass_common::snapshot::{put_bool, put_u64, Cursor};
use pass_common::Result;
use pass_table::snapshot::{decode_table, encode_table};

use crate::sample::Sample;

/// Append `sample` to a section payload.
pub fn encode_sample(out: &mut Vec<u8>, sample: &Sample) {
    put_u64(out, sample.population());
    put_bool(out, sample.sorted_1d());
    encode_table(out, sample.rows());
}

/// Decode one sample written by [`encode_sample`].
pub fn decode_sample(c: &mut Cursor<'_>) -> Result<Sample> {
    let population = c.u64("sample population")?;
    let sorted_1d = c.bool("sample sorted flag")?;
    let rows = decode_table(c)?;
    Sample::from_parts(rows, population, sorted_1d)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pass_common::rng::rng_from_seed;
    use pass_table::datasets::uniform;

    #[test]
    fn samples_round_trip_with_population_and_flag() {
        let t = uniform(1_000, 5);
        let mut rng = rng_from_seed(6);
        let s = Sample::uniform(&t, 64, &mut rng).unwrap();
        assert!(s.sorted_1d());
        let mut payload = Vec::new();
        encode_sample(&mut payload, &s);
        let mut c = Cursor::new(&payload);
        let back = decode_sample(&mut c).unwrap();
        c.done("sample").unwrap();
        assert_eq!(back.k(), s.k());
        assert_eq!(back.population(), s.population());
        assert!(back.sorted_1d());
        assert_eq!(back.rows().values(), s.rows().values());
    }

    #[test]
    fn cleared_sorted_flag_is_preserved_not_recomputed() {
        let t = uniform(500, 7);
        let mut rng = rng_from_seed(8);
        let mut s = Sample::uniform(&t, 32, &mut rng).unwrap();
        // An order-preserving overwrite still clears the flag; the decoded
        // sample must stay on the same (unsorted) kernel path.
        let preds: Vec<f64> = vec![s.rows().predicate(0, 0)];
        let value = s.rows().value(0);
        s.replace_row(0, value, &preds);
        assert!(!s.sorted_1d());
        let mut payload = Vec::new();
        encode_sample(&mut payload, &s);
        let back = decode_sample(&mut Cursor::new(&payload)).unwrap();
        assert!(!back.sorted_1d());
    }
}
