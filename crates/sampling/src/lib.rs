//! Sampling and sample-based estimation (Sections 2.1, 2.2, 3.4, 4.5).
//!
//! * [`Sample`] — a uniform without-replacement sample of a table region,
//!   stored as a mini-table plus the population size it represents;
//! * [`estimator`] — the φ-transform point estimators and their variances
//!   for SUM / COUNT / AVG (Equations 1–4), with finite-population
//!   correction — the readable reference implementation;
//! * [`kernel`] — the allocation-free, column-at-a-time scan kernels the
//!   serving hot path runs on: a reusable [`ScanScratch`] with branchless
//!   mask builds, fused batch evaluation, and a binary-search fast path
//!   for sorted 1-D samples, all bit-identical to [`estimator`];
//! * [`arena`] — [`SampleArena`], the whole sample set flattened into one
//!   cache-resident allocation, handing the kernels borrowed
//!   [`SampleView`]s so partial-leaf scans stop chasing per-`Sample` heap
//!   pointers;
//! * [`stratified`] — the weighted combination of per-stratum estimates and
//!   the Section 2.2 confidence-interval formula;
//! * [`reservoir`] — Vitter's reservoir sampling, the maintenance mechanism
//!   behind dynamic inserts (Section 4.5);
//! * [`delta`] — delta encoding of stratified samples against the partition
//!   mean (the Section 3.4 compression optimization).

pub mod arena;
pub mod delta;
pub mod estimator;
pub mod kernel;
pub mod reservoir;
pub mod sample;
pub mod snapshot;
pub mod stratified;

pub use arena::SampleArena;
pub use estimator::{estimate, estimate_minmax, PointVariance};
pub use kernel::{with_scratch, SampleView, ScanScratch};
pub use reservoir::Reservoir;
pub use sample::Sample;
pub use stratified::{combine_strata, StratumEstimate};
