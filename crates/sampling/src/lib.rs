//! Sampling and sample-based estimation (Sections 2.1, 2.2, 3.4, 4.5).
//!
//! * [`Sample`] — a uniform without-replacement sample of a table region,
//!   stored as a mini-table plus the population size it represents;
//! * [`estimator`] — the φ-transform point estimators and their variances
//!   for SUM / COUNT / AVG (Equations 1–4), with finite-population
//!   correction;
//! * [`stratified`] — the weighted combination of per-stratum estimates and
//!   the Section 2.2 confidence-interval formula;
//! * [`reservoir`] — Vitter's reservoir sampling, the maintenance mechanism
//!   behind dynamic inserts (Section 4.5);
//! * [`delta`] — delta encoding of stratified samples against the partition
//!   mean (the Section 3.4 compression optimization).

pub mod delta;
pub mod estimator;
pub mod reservoir;
pub mod sample;
pub mod stratified;

pub use estimator::{estimate, estimate_minmax, PointVariance};
pub use reservoir::Reservoir;
pub use sample::Sample;
pub use stratified::{combine_strata, StratumEstimate};
