//! Weighted combination of per-stratum estimates (Section 2.2).
//!
//! Estimates from strata `S_1..S_B` combine as `Σ est(S_i) · w_i` with
//! `w_i = 1` for SUM/COUNT and `w_i = N_i / N_q` for AVG (where `N_i` is the
//! stratum population and `N_q` the total population of all relevant
//! strata). The combined estimator variance is `Σ w_i² · V_i(q)`, so the CI
//! half-width is `λ · sqrt(Σ w_i² V_i)`.

use pass_common::AggKind;

use crate::estimator::PointVariance;

/// One stratum's contribution to a combined estimate.
#[derive(Debug, Clone, Copy)]
pub struct StratumEstimate {
    /// The per-stratum φ-estimate and its estimator variance.
    pub point: PointVariance,
    /// Stratum population `N_i`.
    pub population: u64,
}

/// Combined estimate: value and estimator variance (λ-free; callers apply
/// `ci_half = λ·sqrt(variance)`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Combined {
    pub value: f64,
    pub variance: f64,
}

/// Combine per-stratum estimates per Section 2.2.
///
/// For AVG, `relevant_population` is `N_q` — the total number of tuples in
/// all strata relevant to the query. In plain stratified sampling this is
/// the sum of `population` over the estimates passed in, but PASS also
/// counts *covered* partitions answered exactly, so the caller supplies it.
/// Strata with no relevant sampled tuple (`k_pred == 0`) receive weight 0
/// for AVG, exactly as the paper specifies.
pub fn combine_strata(
    agg: AggKind,
    estimates: &[StratumEstimate],
    relevant_population: u64,
) -> Combined {
    let mut value = 0.0;
    let mut variance = 0.0;
    match agg {
        AggKind::Sum | AggKind::Count => {
            for e in estimates {
                value += e.point.value;
                variance += e.point.variance;
            }
        }
        AggKind::Avg => {
            let nq = relevant_population as f64;
            if nq > 0.0 {
                for e in estimates {
                    if e.point.k_pred == 0 {
                        continue; // weight 0: no relevant tuple in stratum
                    }
                    let w = e.population as f64 / nq;
                    value += w * e.point.value;
                    variance += w * w * e.point.variance;
                }
            }
        }
        AggKind::Min | AggKind::Max => {
            // Extrema combine by extremum; variance has no CLT form.
            let mut best: Option<f64> = None;
            for e in estimates {
                if e.point.k_pred == 0 {
                    continue;
                }
                best = Some(match (best, agg) {
                    (None, _) => e.point.value,
                    (Some(b), AggKind::Min) => b.min(e.point.value),
                    (Some(b), _) => b.max(e.point.value),
                });
            }
            value = best.unwrap_or(f64::NAN);
        }
    }
    Combined { value, variance }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pv(value: f64, variance: f64, k_pred: u64) -> PointVariance {
        PointVariance {
            value,
            variance,
            k_pred,
        }
    }

    #[test]
    fn sum_adds_values_and_variances() {
        let strata = [
            StratumEstimate {
                point: pv(10.0, 4.0, 3),
                population: 100,
            },
            StratumEstimate {
                point: pv(20.0, 9.0, 5),
                population: 200,
            },
        ];
        let c = combine_strata(AggKind::Sum, &strata, 300);
        assert_eq!(c.value, 30.0);
        assert_eq!(c.variance, 13.0);
    }

    #[test]
    fn avg_weights_by_relative_population() {
        let strata = [
            StratumEstimate {
                point: pv(10.0, 1.0, 2),
                population: 100,
            },
            StratumEstimate {
                point: pv(40.0, 4.0, 2),
                population: 300,
            },
        ];
        let c = combine_strata(AggKind::Avg, &strata, 400);
        // 0.25·10 + 0.75·40 = 32.5; var 0.0625·1 + 0.5625·4 = 2.3125
        assert!((c.value - 32.5).abs() < 1e-12);
        assert!((c.variance - 2.3125).abs() < 1e-12);
    }

    #[test]
    fn avg_skips_strata_without_relevant_tuples() {
        let strata = [
            StratumEstimate {
                point: pv(10.0, 1.0, 5),
                population: 100,
            },
            StratumEstimate {
                point: pv(999.0, 50.0, 0),
                population: 300,
            },
        ];
        let c = combine_strata(AggKind::Avg, &strata, 100);
        assert_eq!(c.value, 10.0);
        assert_eq!(c.variance, 1.0);
    }

    #[test]
    fn empty_input_yields_zero() {
        let c = combine_strata(AggKind::Sum, &[], 0);
        assert_eq!(c.value, 0.0);
        assert_eq!(c.variance, 0.0);
        let c = combine_strata(AggKind::Avg, &[], 0);
        assert_eq!(c.value, 0.0);
    }

    #[test]
    fn minmax_take_extrema_of_relevant_strata() {
        let strata = [
            StratumEstimate {
                point: pv(5.0, 0.0, 1),
                population: 10,
            },
            StratumEstimate {
                point: pv(2.0, 0.0, 1),
                population: 10,
            },
            StratumEstimate {
                point: pv(-1.0, 0.0, 0),
                population: 10,
            },
        ];
        let mn = combine_strata(AggKind::Min, &strata, 30);
        assert_eq!(mn.value, 2.0);
        let mx = combine_strata(AggKind::Max, &strata, 30);
        assert_eq!(mx.value, 5.0);
    }
}
