//! Allocation-free, column-at-a-time scan kernels for the φ-estimators.
//!
//! [`estimator::estimate`](crate::estimator::estimate) materializes a φ
//! vector per query — readable, and kept verbatim as the reference
//! implementation the contract tests pin against — but on the serving hot
//! path the per-query `Vec` and the branchy row-at-a-time
//! `rows.matches(rect, i)` dominate. [`ScanScratch`] answers the same
//! question with reusable buffers:
//!
//! 1. **Mask build** — one branchless `lo <= x && x <= hi` pass per
//!    predicate column over the contiguous `f64` slice, AND-ed into a
//!    byte mask (auto-vectorizable; no per-row dimension loop).
//! 2. **Masked accumulate** — the value sum, Kahan mean, and Kahan sum
//!    of squared deviations are computed straight off the mask with
//!    *selected* φ addends (`if m != 0 { φᵢ } else { 0.0 }` — a select,
//!    never a multiply-by-mask, so `0.0 × ∞`/NaN can't poison a lane).
//!    Every float addition happens in the same order with the same
//!    addends as the materialized-φ reference, so results are
//!    **bit-identical** by construction.
//! 3. **1-D fast path** — samples whose single predicate column is
//!    non-decreasing (every builder-produced 1-D stratum sample, see
//!    [`Sample::sorted_1d`]) resolve the match range by binary search
//!    and only touch matched rows for the value/mean passes. Skipping
//!    an unmatched row skips a literal `+0.0` addend, which is exact
//!    except for signed-zero bookkeeping: `x + 0.0 == x` for every `x`
//!    but `-0.0`, where it flushes to `+0.0`. The plain value sum seeds
//!    at `-0.0` (as `Iterator::sum::<f64>` does) and models the flush
//!    explicitly — see `moments_range` — while a Kahan accumulator
//!    seeded at `+0.0` can never reach `-0.0` (a zero result of `x + y`
//!    rounds to `+0.0` unless both operands are `-0.0`), so for it
//!    adding `±0.0` is a genuine state no-op. The sum-of-squares pass
//!    stays O(k) — unmatched rows contribute `(0 − m)²` — but adds the
//!    constant term branch-free.
//! 4. **Scan fusion** — [`ScanScratch::estimate_batch`] evaluates a
//!    batch of rectangles tile-by-tile in one pass over each predicate
//!    column, so the sample's columns stay cache-hot across the tile's
//!    queries. Single and fused paths share `finish_from_mask`, so
//!    they are bit-identical by shared code, not by coincidence.
//!
//! The `pass-lint` workspace pass flags heap allocation in this module
//! (`no-alloc-in-kernel`): the only sanctioned allocations are the
//! `// alloc:`-justified scratch constructions and amortized buffer
//! growth via `resize`.

use std::cell::RefCell;

use pass_common::kahan::KahanSum;
use pass_common::stats::fpc;
use pass_common::{AggKind, Query, Rect};

use crate::estimator::PointVariance;
use crate::sample::Sample;

/// Queries per fused tile: bounds the flat mask buffer at `TILE · k`
/// bytes while keeping each predicate column resident across the tile.
const TILE: usize = 64;

/// A borrowed, contiguous view of one stratum's sample rows: the value
/// column, the predicate columns (column-major, dimension `d` at
/// `preds[d * k..][..k]`), and the population/sortedness metadata the
/// estimators need.
///
/// This is the kernels' native input shape. A [`Sample`] yields one
/// directly in 1-D (its single predicate column is already contiguous);
/// the query hot path hands out views over a flat multi-leaf arena
/// (`pass-core`'s `SampleArena`) so scanning a partial leaf touches one
/// cache-resident allocation instead of chasing per-`Sample` heap
/// pointers. The estimators read identical bytes either way, so results
/// are bit-identical across sources.
#[derive(Debug, Clone, Copy)]
pub struct SampleView<'a> {
    /// Aggregation values, length `k`.
    pub values: &'a [f64],
    /// Predicate columns, column-major: `preds[d * k..][..k]`.
    pub preds: &'a [f64],
    /// Predicate dimensionality.
    pub dims: usize,
    /// Population size `N` the sample represents.
    pub population: u64,
    /// Non-decreasing single predicate column (fast-path eligibility).
    pub sorted_1d: bool,
}

impl<'a> SampleView<'a> {
    /// Sample size `K`.
    #[inline]
    pub fn k(&self) -> usize {
        self.values.len()
    }

    /// The contiguous predicate column for dimension `d`.
    #[inline]
    pub fn pred_col(&self, d: usize) -> &'a [f64] {
        let k = self.values.len();
        &self.preds[d * k..(d + 1) * k]
    }
}

/// The 1-D view of a sample — its single predicate column is contiguous
/// in the backing [`Table`](pass_table::Table), so no copy happens.
#[inline]
fn view_1d(sample: &Sample) -> SampleView<'_> {
    debug_assert_eq!(sample.rows().dims(), 1);
    SampleView {
        values: sample.rows().values(),
        preds: sample.rows().predicate_column(0),
        dims: 1,
        population: sample.population(),
        sorted_1d: sample.sorted_1d(),
    }
}

/// Reusable buffers for the scan kernels. Construct once per worker (or
/// borrow the thread-local via [`with_scratch`]) and reuse across
/// queries; no per-query allocation happens after the buffers reach the
/// sample size high-water mark.
#[derive(Debug, Default)]
pub struct ScanScratch {
    /// Single-query match vector, one byte per sampled row.
    mask: Vec<u8>,
    /// Fused tile masks, laid out `[query_in_tile * k + row]`.
    tile: Vec<u8>,
}

impl ScanScratch {
    /// Fresh scratch with empty buffers.
    pub fn new() -> Self {
        Self::default()
    }

    /// Kernel equivalent of [`estimate`](crate::estimator::estimate):
    /// same `Option` contract, same value/variance/k_pred bits.
    pub fn estimate(
        &mut self,
        agg: AggKind,
        sample: &Sample,
        rect: &Rect,
    ) -> Option<PointVariance> {
        if sample.k() == 0 {
            return empty_sample(agg);
        }
        if sample.sorted_1d() {
            return estimate_sorted_1d(agg, &view_1d(sample), rect);
        }
        fill_mask(sample, rect, &mut self.mask);
        finish_from_mask(agg, sample.rows().values(), sample.population(), &self.mask)
    }

    /// [`estimate`](Self::estimate) over a borrowed [`SampleView`] — the
    /// flat-arena entry point the query hot path uses. Bit-identical to
    /// the `Sample`-based path on the same rows (shared estimators).
    pub fn estimate_view(
        &mut self,
        agg: AggKind,
        view: &SampleView<'_>,
        rect: &Rect,
    ) -> Option<PointVariance> {
        if view.k() == 0 {
            return empty_sample(agg);
        }
        if view.sorted_1d {
            return estimate_sorted_1d(agg, view, rect);
        }
        fill_mask_view(view, rect, &mut self.mask);
        finish_from_mask(agg, view.values, view.population, &self.mask)
    }

    /// The mask path unconditionally — bypasses the 1-D sorted fast
    /// path. Exposed so the contract tests can pin the fast path against
    /// the d-dimensional path on the same sample; engines should call
    /// [`estimate`](Self::estimate).
    #[doc(hidden)]
    pub fn estimate_unsorted(
        &mut self,
        agg: AggKind,
        sample: &Sample,
        rect: &Rect,
    ) -> Option<PointVariance> {
        if sample.k() == 0 {
            return empty_sample(agg);
        }
        fill_mask(sample, rect, &mut self.mask);
        finish_from_mask(agg, sample.rows().values(), sample.population(), &self.mask)
    }

    /// Scan fusion: answer every query in `queries` with one pass over
    /// each predicate column per tile of `TILE` (64) queries. Results are
    /// element-wise bit-identical to [`estimate`](Self::estimate) (the
    /// tile masks finish through the same `finish_from_mask`).
    ///
    /// `out` is cleared and refilled, one entry per query, in order.
    /// Every query must have the sample's arity.
    pub fn estimate_batch(
        &mut self,
        sample: &Sample,
        queries: &[Query],
        out: &mut Vec<Option<PointVariance>>,
    ) {
        out.clear();
        let k = sample.k();
        if k == 0 {
            out.extend(queries.iter().map(|q| empty_sample(q.agg)));
            return;
        }
        if sample.sorted_1d() {
            let view = view_1d(sample);
            out.extend(
                queries
                    .iter()
                    .map(|q| estimate_sorted_1d(q.agg, &view, &q.rect)),
            );
            return;
        }
        let rows = sample.rows();
        for chunk in queries.chunks(TILE) {
            self.tile.clear();
            self.tile.resize(chunk.len() * k, 0);
            for d in 0..rows.dims() {
                let col = rows.predicate_column(d);
                for (t, q) in chunk.iter().enumerate() {
                    let seg = &mut self.tile[t * k..(t + 1) * k];
                    mask_pass(col, q.rect.lo(d), q.rect.hi(d), d == 0, seg);
                }
            }
            for (t, q) in chunk.iter().enumerate() {
                let seg = &self.tile[t * k..(t + 1) * k];
                out.push(finish_from_mask(
                    q.agg,
                    rows.values(),
                    sample.population(),
                    seg,
                ));
            }
        }
    }

    /// Build the match bitmask for `rect` over arbitrary predicate
    /// columns and return it — the column-at-a-time predicate pass for
    /// engines whose row storage is not a [`Sample`] (VerdictDB scrambles,
    /// AQP++ gap scans). `col(d)` must return the contiguous column for
    /// dimension `d`, each of length `k`. A caller that then walks rows in
    /// index order testing `mask[i] != 0` reproduces a row-at-a-time
    /// `matches` loop exactly, so accumulation order (and therefore every
    /// bit of the result) is unchanged.
    pub fn match_mask<'c, F>(&mut self, k: usize, rect: &Rect, col: F) -> &[u8]
    where
        F: Fn(usize) -> &'c [f64],
    {
        self.mask.clear();
        self.mask.resize(k, 0);
        for d in 0..rect.dims() {
            mask_pass(col(d), rect.lo(d), rect.hi(d), d == 0, &mut self.mask);
        }
        &self.mask
    }
}

/// Borrow a thread-local [`ScanScratch`] — the reuse vehicle for
/// single-query engine paths behind `&self`.
pub fn with_scratch<R>(f: impl FnOnce(&mut ScanScratch) -> R) -> R {
    thread_local! {
        // alloc: one scratch per thread, constructed empty on first use.
        static SCRATCH: RefCell<ScanScratch> = RefCell::new(ScanScratch::new());
    }
    SCRATCH.with(|s| f(&mut s.borrow_mut()))
}

/// The reference's empty-sample contract: SUM/COUNT estimate 0 with zero
/// variance, everything else is undefined.
fn empty_sample(agg: AggKind) -> Option<PointVariance> {
    match agg {
        AggKind::Sum | AggKind::Count => Some(PointVariance {
            value: 0.0,
            variance: 0.0,
            k_pred: 0,
        }),
        _ => None,
    }
}

/// One branchless interval test over a contiguous predicate column. The
/// first column writes the mask, later columns AND into it.
fn mask_pass(col: &[f64], lo: f64, hi: f64, first: bool, mask: &mut [u8]) {
    if first {
        for (m, &x) in mask.iter_mut().zip(col) {
            *m = u8::from(lo <= x && x <= hi);
        }
    } else {
        for (m, &x) in mask.iter_mut().zip(col) {
            *m &= u8::from(lo <= x && x <= hi);
        }
    }
}

/// Build the match mask for `rect`, one predicate column at a time.
fn fill_mask(sample: &Sample, rect: &Rect, mask: &mut Vec<u8>) {
    let rows = sample.rows();
    let k = rows.n_rows();
    debug_assert_eq!(rect.dims(), rows.dims());
    mask.clear();
    mask.resize(k, 0);
    for d in 0..rows.dims() {
        mask_pass(
            rows.predicate_column(d),
            rect.lo(d),
            rect.hi(d),
            d == 0,
            mask,
        );
    }
}

/// [`fill_mask`] over a flat view's column-major predicate matrix.
fn fill_mask_view(view: &SampleView<'_>, rect: &Rect, mask: &mut Vec<u8>) {
    debug_assert_eq!(rect.dims(), view.dims);
    mask.clear();
    mask.resize(view.k(), 0);
    for d in 0..view.dims {
        mask_pass(view.pred_col(d), rect.lo(d), rect.hi(d), d == 0, mask);
    }
}

/// Finish an estimate off a prebuilt match mask over `values` (the mask
/// length is the sample size `k`, which must be non-zero).
fn finish_from_mask(
    agg: AggKind,
    values: &[f64],
    population: u64,
    mask: &[u8],
) -> Option<PointVariance> {
    let k = mask.len();
    debug_assert!(k > 0 && values.len() == k);
    match agg {
        AggKind::Min | AggKind::Max => {
            // The reference fold (`estimate_minmax`), driven by the mask.
            let mut best: Option<f64> = None;
            let mut k_pred = 0u64;
            for (i, &m) in mask.iter().enumerate() {
                if m == 0 {
                    continue;
                }
                k_pred += 1;
                let v = values[i];
                best = Some(match (best, agg) {
                    (None, _) => v,
                    (Some(b), AggKind::Min) => b.min(v),
                    (Some(b), _) => b.max(v),
                });
            }
            best.map(|value| PointVariance {
                value,
                variance: 0.0,
                k_pred,
            })
        }
        AggKind::Count => {
            let k_pred = count_mask(mask);
            if k_pred == 0 {
                return Some(EMPTY_MATCH);
            }
            let n = population as f64;
            Some(moments(mask, population, k_pred, |_| n))
        }
        AggKind::Sum => {
            let k_pred = count_mask(mask);
            if k_pred == 0 {
                return Some(EMPTY_MATCH);
            }
            let n = population as f64;
            Some(moments(mask, population, k_pred, |i| n * values[i]))
        }
        AggKind::Avg => {
            let k_pred = count_mask(mask);
            if k_pred == 0 {
                return None;
            }
            let scale = k as f64 / k_pred as f64;
            Some(moments(mask, population, k_pred, |i| scale * values[i]))
        }
    }
}

/// `K_pred`: integer popcount of the byte mask (order-independent).
fn count_mask(mask: &[u8]) -> u64 {
    mask.iter().map(|&m| u64::from(m)).sum()
}

/// The estimate the reference computes for SUM/COUNT when no sample row
/// matches: every φ addend is the literal `+0.0`, so the value fold ends
/// at exactly `+0.0` (the `-0.0` sum seed is flushed by the first
/// unmatched addend — `k > 0` guarantees there is one) and every
/// sum-of-squares addend is `(0 − 0)² = +0.0`. Hoisting the constant
/// skips the k-length replay without changing a bit.
const EMPTY_MATCH: PointVariance = PointVariance {
    value: 0.0,
    variance: 0.0,
    k_pred: 0,
};

/// The reference's moment computation — `mean(φ)` as a plain sequential
/// sum and `population_variance(φ)` with its own Kahan mean — with φ
/// *selected* per index instead of materialized. Unmatched rows
/// contribute the literal `+0.0` the reference pushed, so every float
/// addition sees the same addend in the same order.
fn moments(mask: &[u8], population: u64, k_pred: u64, phi: impl Fn(usize) -> f64) -> PointVariance {
    let k = mask.len();
    // `Iterator::sum::<f64>` folds from -0.0 (so an all-negative-zero φ
    // vector sums to -0.0); replicate the seed exactly.
    let mut s = -0.0f64;
    for (i, &m) in mask.iter().enumerate() {
        s += if m != 0 { phi(i) } else { 0.0 };
    }
    let value = s / k as f64;
    let pop_var = if k < 2 {
        0.0
    } else {
        let mut mean_acc = KahanSum::new();
        for (i, &m) in mask.iter().enumerate() {
            mean_acc.add(if m != 0 { phi(i) } else { 0.0 });
        }
        let mean = mean_acc.total() / k as f64;
        let mut ss = KahanSum::new();
        for (i, &m) in mask.iter().enumerate() {
            let d = (if m != 0 { phi(i) } else { 0.0 }) - mean;
            ss.add(d * d);
        }
        (ss.total() / k as f64).max(0.0)
    };
    let variance = pop_var / k as f64 * fpc(population, k as u64);
    PointVariance {
        value,
        variance,
        k_pred,
    }
}

/// The sorted-column binary-search fast path for 1-D samples: the match
/// set of `lo <= x <= hi` over a non-decreasing column is the contiguous
/// index range `[a, b)`. Value and mean passes touch only that range
/// (exact — see the module docs' `+0.0` argument); the sum-of-squares
/// pass replays the reference's full-length loop, with the constant
/// `(0 − m)²` term added for every unmatched index.
fn estimate_sorted_1d(agg: AggKind, view: &SampleView<'_>, rect: &Rect) -> Option<PointVariance> {
    let k = view.k();
    debug_assert!(k > 0 && view.dims == 1 && rect.dims() == 1);
    let col = view.preds;
    let (lo, hi) = (rect.lo(0), rect.hi(0));
    let a = col.partition_point(|&x| x < lo);
    let b = col.partition_point(|&x| x <= hi);
    debug_assert!(a <= b);
    let k_pred = (b - a) as u64;
    let values = view.values;
    match agg {
        AggKind::Min | AggKind::Max => {
            // The reference fold over the matched range, in index order.
            let mut best: Option<f64> = None;
            for &v in &values[a..b] {
                best = Some(match (best, agg) {
                    (None, _) => v,
                    (Some(bst), AggKind::Min) => bst.min(v),
                    (Some(bst), _) => bst.max(v),
                });
            }
            best.map(|value| PointVariance {
                value,
                variance: 0.0,
                k_pred,
            })
        }
        AggKind::Count => {
            if k_pred == 0 {
                return Some(EMPTY_MATCH);
            }
            let n = view.population as f64;
            Some(moments_range(k, view.population, a, b, k_pred, |_| n))
        }
        AggKind::Sum => {
            if k_pred == 0 {
                return Some(EMPTY_MATCH);
            }
            let n = view.population as f64;
            Some(moments_range(k, view.population, a, b, k_pred, |i| {
                n * values[i]
            }))
        }
        AggKind::Avg => {
            if k_pred == 0 {
                return None;
            }
            let scale = k as f64 / k_pred as f64;
            Some(moments_range(k, view.population, a, b, k_pred, |i| {
                scale * values[i]
            }))
        }
    }
}

/// [`moments`] when the matched rows are exactly `[a, b)`.
fn moments_range(
    k: usize,
    population: u64,
    a: usize,
    b: usize,
    k_pred: u64,
    phi: impl Fn(usize) -> f64,
) -> PointVariance {
    // Replicate the reference fold exactly: it seeds at -0.0 and adds a
    // `+0.0` for every unmatched index. The first leading `+0.0` flushes
    // the seed to `+0.0` (later ones are identity), so start there when
    // `a > 0`; one trailing `+0.0` stands in for all `k - b` of them (it
    // only matters if the matched φ's summed to exactly `-0.0`).
    let mut s = if a > 0 { 0.0f64 } else { -0.0f64 };
    for i in a..b {
        s += phi(i);
    }
    if b < k {
        s += 0.0;
    }
    let value = s / k as f64;
    let pop_var = if k < 2 {
        0.0
    } else {
        let mut mean_acc = KahanSum::new();
        for i in a..b {
            mean_acc.add(phi(i));
        }
        let mean = mean_acc.total() / k as f64;
        let mut ss = KahanSum::new();
        // Same bits the reference's `(0.0 − m)²` evaluates to, added
        // once per unmatched index (the Kahan state still has to step
        // through every addition — only the recomputation is hoisted).
        let d0 = 0.0 - mean;
        let z2 = d0 * d0;
        for _ in 0..a {
            ss.add(z2);
        }
        for i in a..b {
            let d = phi(i) - mean;
            ss.add(d * d);
        }
        for _ in b..k {
            ss.add(z2);
        }
        (ss.total() / k as f64).max(0.0)
    };
    let variance = pop_var / k as f64 * fpc(population, k as u64);
    PointVariance {
        value,
        variance,
        k_pred,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimator::estimate;
    use pass_common::rng::rng_from_seed;
    use pass_table::datasets::uniform;
    use pass_table::Table;

    fn bits(pv: &Option<PointVariance>) -> Option<(u64, u64, u64)> {
        pv.as_ref()
            .map(|p| (p.value.to_bits(), p.variance.to_bits(), p.k_pred))
    }

    /// Deterministic multi-dimensional table (xorshift values in [0, 1)).
    fn table_nd(n: usize, dims: usize, seed: u64) -> Table {
        let mut s = seed | 1;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s >> 11) as f64 / (1u64 << 53) as f64
        };
        let values: Vec<f64> = (0..n).map(|_| next() * 100.0).collect();
        let predicates: Vec<Vec<f64>> = (0..dims)
            .map(|_| (0..n).map(|_| next()).collect())
            .collect();
        let names = std::iter::once("val".to_string())
            .chain((0..dims).map(|d| format!("d{d}")))
            .collect();
        Table::new(values, predicates, names).unwrap()
    }

    #[test]
    fn kernel_matches_reference_on_multidim_sample() {
        let t = table_nd(4_000, 3, 17);
        let mut rng = rng_from_seed(17);
        let s = Sample::uniform(&t, 300, &mut rng).unwrap();
        assert!(!s.sorted_1d(), "3-D sample has no sorted fast path");
        let mut scratch = ScanScratch::new();
        for (lo, hi) in [(0.1, 0.8), (0.0, 1.0), (0.45, 0.55), (2.0, 3.0)] {
            let rect = Rect::new(&[(lo, hi); 3]);
            for agg in AggKind::ALL {
                let reference = estimate(agg, &s, &rect);
                let kernel = scratch.estimate(agg, &s, &rect);
                assert_eq!(bits(&kernel), bits(&reference), "{agg} [{lo},{hi}]");
            }
        }
    }

    #[test]
    fn sorted_fast_path_matches_mask_path() {
        let t = uniform(2_000, 1);
        let mut rng = rng_from_seed(5);
        // Builder-style sample: sorted indices over a sorted region give a
        // non-decreasing predicate column only if the table is sorted, so
        // sort the sample rows explicitly here.
        let s = Sample::uniform(&t, 250, &mut rng).unwrap();
        let mut idx: Vec<usize> = (0..s.k()).collect();
        idx.sort_by(|&i, &j| {
            s.rows()
                .predicate(0, i)
                .total_cmp(&s.rows().predicate(0, j))
        });
        let sorted = Sample::from_rows(s.rows().gather(&idx), s.population()).unwrap();
        assert!(sorted.sorted_1d());
        let mut scratch = ScanScratch::new();
        for (lo, hi) in [(0.2, 0.7), (0.0, 1.0), (0.5, 0.5), (3.0, 4.0)] {
            let rect = Rect::interval(lo, hi);
            for agg in AggKind::ALL {
                let fast = scratch.estimate(agg, &sorted, &rect);
                let masked = scratch.estimate_unsorted(agg, &sorted, &rect);
                let reference = estimate(agg, &sorted, &rect);
                assert_eq!(bits(&fast), bits(&masked), "{agg} [{lo},{hi}]");
                assert_eq!(bits(&fast), bits(&reference), "{agg} [{lo},{hi}]");
            }
        }
    }

    #[test]
    fn batch_is_bit_identical_to_singles_across_tiles() {
        let t = table_nd(1_500, 2, 9);
        let mut rng = rng_from_seed(9);
        let s = Sample::uniform(&t, 200, &mut rng).unwrap();
        // More queries than one tile, mixed aggregates.
        let queries: Vec<Query> = (0..150)
            .map(|i| {
                let lo = (i % 10) as f64 * 0.09;
                let agg = AggKind::ALL[i % 5];
                Query::new(agg, Rect::new(&[(lo, lo + 0.3), (0.1, 0.9)]))
            })
            .collect();
        let mut scratch = ScanScratch::new();
        let mut out = Vec::new();
        scratch.estimate_batch(&s, &queries, &mut out);
        assert_eq!(out.len(), queries.len());
        for (q, fused) in queries.iter().zip(&out) {
            let single = scratch.estimate(q.agg, &s, &q.rect);
            assert_eq!(bits(fused), bits(&single), "{}", q.agg);
        }
    }

    #[test]
    fn empty_sample_contract_is_preserved() {
        let t = uniform(10, 7);
        let s = Sample::from_indices(&t, &[], 10).unwrap();
        assert_eq!(t.dims(), 1);
        let rect = Rect::interval(0.0, 1.0);
        let mut scratch = ScanScratch::new();
        for agg in AggKind::ALL {
            assert_eq!(
                bits(&scratch.estimate(agg, &s, &rect)),
                bits(&estimate(agg, &s, &rect)),
                "{agg}"
            );
        }
        let mut out = Vec::new();
        scratch.estimate_batch(&s, &[Query::new(AggKind::Avg, rect)], &mut out);
        assert_eq!(out, vec![None]);
    }

    #[test]
    fn negative_zero_values_stay_bit_identical() {
        // φ values of -0.0 exercise the skip-zero argument's edge.
        let t = Table::one_dim(vec![0.0, 1.0, 2.0, 3.0], vec![-0.0, -0.0, -0.0, -0.0]).unwrap();
        let s = Sample::from_rows(t, 8).unwrap();
        assert!(s.sorted_1d());
        let mut scratch = ScanScratch::new();
        for rect in [Rect::interval(0.5, 2.5), Rect::interval(0.0, 3.0)] {
            for agg in AggKind::ALL {
                assert_eq!(
                    bits(&scratch.estimate(agg, &s, &rect)),
                    bits(&estimate(agg, &s, &rect)),
                    "{agg}"
                );
            }
        }
    }
}
