//! Uniform without-replacement samples of table regions.

use rand::seq::index::sample as index_sample;
use rand::Rng;

use pass_common::{PassError, Rect, Result};
use pass_table::Table;

/// A uniform sample of some population of rows, stored as a mini-table (same
/// predicate dimensions as the parent) plus the population size `N` it was
/// drawn from. All φ-estimators scale by this `N`.
#[derive(Debug, Clone)]
pub struct Sample {
    rows: Table,
    population: u64,
    /// Whether the single predicate column is non-decreasing — unlocks the
    /// binary-search fast path in [`crate::kernel`]. Computed once at
    /// construction; conservatively cleared by the row mutators.
    sorted_1d: bool,
}

impl Sample {
    /// Wrap pre-selected rows as a sample of a population of size
    /// `population`.
    pub fn from_rows(rows: Table, population: u64) -> Result<Self> {
        if (rows.n_rows() as u64) > population {
            return Err(PassError::InvalidParameter(
                "population",
                format!(
                    "sample of {} rows cannot come from population of {population}",
                    rows.n_rows()
                ),
            ));
        }
        // A NaN predicate fails `w[0] <= w[1]`, so NaN-carrying columns never
        // claim sortedness.
        let sorted_1d =
            rows.dims() == 1 && rows.predicate_column(0).windows(2).all(|w| w[0] <= w[1]);
        Ok(Self {
            rows,
            population,
            sorted_1d,
        })
    }

    /// Draw `k` rows uniformly without replacement from the whole table.
    pub fn uniform<R: Rng>(table: &Table, k: usize, rng: &mut R) -> Result<Self> {
        let n = table.n_rows();
        let k = k.min(n);
        let chosen = index_sample(rng, n, k);
        let mut idx: Vec<usize> = chosen.into_iter().collect();
        idx.sort_unstable(); // stable layout; helps locality and testability
        Self::from_indices(table, &idx, n as u64)
    }

    /// Draw `k` rows uniformly without replacement from the subset of rows
    /// whose sorted positions fall in `row_range` (used to stratify over
    /// contiguous 1-D partitions without materializing them).
    pub fn uniform_from_range<R: Rng>(
        table: &Table,
        row_range: std::ops::Range<usize>,
        k: usize,
        rng: &mut R,
    ) -> Result<Self> {
        let n = row_range.len();
        let k = k.min(n);
        let chosen = index_sample(rng, n, k);
        let mut idx: Vec<usize> = chosen.into_iter().map(|i| row_range.start + i).collect();
        idx.sort_unstable();
        Self::from_indices(table, &idx, n as u64)
    }

    /// Reassemble a sample from snapshot state, trusting the stored
    /// `sorted_1d` flag instead of recomputing it: the mutators clear the
    /// flag conservatively (even order-preserving mutations), so a
    /// mutated-then-saved sample must reload onto the exact same kernel
    /// path it was on when saved, not the one a fresh scan would pick.
    pub(crate) fn from_parts(rows: Table, population: u64, sorted_1d: bool) -> Result<Self> {
        let mut sample = Self::from_rows(rows, population)?;
        sample.sorted_1d = sorted_1d && sample.sorted_1d;
        Ok(sample)
    }

    /// Materialize specific row indices as a sample of a population of size
    /// `population`. Gathers every column in one pass over `indices`
    /// ([`Table::gather`]); the result inherits the parent's already-valid
    /// schema, so no shape re-validation happens.
    pub fn from_indices(table: &Table, indices: &[usize], population: u64) -> Result<Self> {
        Self::from_rows(table.gather(indices), population)
    }

    /// The sampled rows.
    #[inline]
    pub fn rows(&self) -> &Table {
        &self.rows
    }

    /// Sample size `K`.
    #[inline]
    pub fn k(&self) -> usize {
        self.rows.n_rows()
    }

    /// Population size `N` the sample represents.
    #[inline]
    pub fn population(&self) -> u64 {
        self.population
    }

    /// Whether this is a 1-D sample whose predicate column is known to be
    /// non-decreasing (kernel fast-path eligibility). `false` after any row
    /// mutation, even one that happens to preserve order.
    #[inline]
    pub fn sorted_1d(&self) -> bool {
        self.sorted_1d
    }

    /// Number of sampled rows matching a rectangular predicate (`K_pred`).
    pub fn k_pred(&self, rect: &Rect) -> usize {
        (0..self.k())
            .filter(|&i| self.rows.matches(rect, i))
            .count()
    }

    /// Logical storage footprint: one f64 per value plus one per predicate
    /// coordinate (Table 2's storage accounting).
    pub fn storage_bytes(&self) -> usize {
        self.k() * (1 + self.rows.dims()) * std::mem::size_of::<f64>()
    }

    // --- dynamic-update mutators (Section 4.5 reservoir maintenance) ---

    /// Record population growth (a tuple was inserted into the stratum).
    pub fn grow_population(&mut self) {
        self.population += 1;
    }

    /// Record population shrinkage (a tuple left the stratum).
    pub fn shrink_population(&mut self) {
        self.population = self.population.saturating_sub(1);
    }

    /// Append a sampled row.
    pub fn push_row(&mut self, value: f64, preds: &[f64]) {
        self.sorted_1d = false;
        self.rows.push_row(value, preds);
    }

    /// Overwrite sampled row `i` (reservoir replacement).
    pub fn replace_row(&mut self, i: usize, value: f64, preds: &[f64]) {
        self.sorted_1d = false;
        self.rows.replace_row(i, value, preds);
    }

    /// Remove sampled row `i` (its underlying tuple was deleted).
    pub fn swap_remove_row(&mut self, i: usize) -> (f64, Vec<f64>) {
        self.sorted_1d = false;
        self.rows.swap_remove_row(i)
    }

    /// Position of a sampled row equal to `(value, preds)`, if any.
    pub fn find_row(&self, value: f64, preds: &[f64]) -> Option<usize> {
        (0..self.k()).find(|&i| {
            self.rows.value(i) == value
                && (0..self.rows.dims()).all(|d| self.rows.predicate(d, i) == preds[d])
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pass_common::rng::rng_from_seed;
    use pass_table::datasets::uniform;

    #[test]
    fn uniform_sample_size_and_population() {
        let t = uniform(1_000, 1);
        let mut rng = rng_from_seed(2);
        let s = Sample::uniform(&t, 100, &mut rng).unwrap();
        assert_eq!(s.k(), 100);
        assert_eq!(s.population(), 1_000);
        assert_eq!(s.rows().dims(), 1);
    }

    #[test]
    fn oversized_request_clamps_to_population() {
        let t = uniform(50, 1);
        let mut rng = rng_from_seed(3);
        let s = Sample::uniform(&t, 500, &mut rng).unwrap();
        assert_eq!(s.k(), 50);
    }

    #[test]
    fn sample_rows_exist_in_parent() {
        let t = uniform(200, 4);
        let mut rng = rng_from_seed(5);
        let s = Sample::uniform(&t, 40, &mut rng).unwrap();
        for i in 0..s.k() {
            let key = s.rows().predicate(0, i);
            let val = s.rows().value(i);
            let found = (0..t.n_rows()).any(|j| t.predicate(0, j) == key && t.value(j) == val);
            assert!(found, "sampled row not in parent table");
        }
    }

    #[test]
    fn no_replacement() {
        let t = uniform(100, 6);
        let mut rng = rng_from_seed(7);
        let s = Sample::uniform(&t, 100, &mut rng).unwrap();
        // Sampling all rows must produce each exactly once.
        let mut keys: Vec<f64> = (0..s.k()).map(|i| s.rows().predicate(0, i)).collect();
        keys.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut parent: Vec<f64> = t.predicate_column(0).to_vec();
        parent.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(keys, parent);
    }

    #[test]
    fn range_sampling_respects_bounds() {
        let t = uniform(100, 8);
        let mut rng = rng_from_seed(9);
        let s = Sample::uniform_from_range(&t, 20..40, 10, &mut rng).unwrap();
        assert_eq!(s.population(), 20);
        let lo = t.predicate(0, 20);
        let hi = t.predicate(0, 39);
        for i in 0..s.k() {
            let k = s.rows().predicate(0, i);
            assert!(k >= lo && k <= hi);
        }
    }

    #[test]
    fn k_pred_counts_matches() {
        let t = uniform(500, 10);
        let mut rng = rng_from_seed(11);
        let s = Sample::uniform(&t, 500, &mut rng).unwrap(); // full sample
        let rect = Rect::interval(0.0, 0.5);
        let truth = (0..t.n_rows()).filter(|&i| t.matches(&rect, i)).count();
        assert_eq!(s.k_pred(&rect), truth);
    }

    #[test]
    fn population_smaller_than_sample_rejected() {
        let t = uniform(10, 12);
        let rows = t.clone();
        assert!(Sample::from_rows(rows, 5).is_err());
    }

    #[test]
    fn storage_accounting() {
        let t = uniform(100, 13);
        let mut rng = rng_from_seed(14);
        let s = Sample::uniform(&t, 25, &mut rng).unwrap();
        // 25 rows × (1 value + 1 predicate) × 8 bytes
        assert_eq!(s.storage_bytes(), 25 * 2 * 8);
    }
}
