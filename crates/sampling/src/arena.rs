//! A flat multi-sample arena: every stratum's rows in one allocation.
//!
//! [`Sample`] keeps its rows in a private mini-[`Table`](pass_table::Table)
//! — convenient for construction and mutation, but a `Vec<Sample>` scatters
//! hundreds of tiny allocations across the heap, and the query hot path
//! pays a dependent cache miss per pointer hop (`samples[li]` → `Table` →
//! column `Vec` → data) every time it scans a partial leaf. For the
//! serving-sized strata PASS produces (a handful of rows per leaf), those
//! misses dominate the scan itself.
//!
//! [`SampleArena`] flattens the whole sample set into one contiguous `f64`
//! buffer — per stratum: predicate columns (column-major), then values —
//! plus a row-offset table and per-stratum metadata. The entire arena for a
//! typical synopsis is tens of kilobytes, so after the first few queries it
//! is cache-resident and a partial-leaf scan costs arithmetic, not memory
//! latency. [`view`](SampleArena::view) hands the kernels a borrowed
//! [`SampleView`] whose slices hold exactly the bytes the originating
//! [`Sample`] holds, in the same row order — estimates computed through the
//! arena are bit-identical to the `Sample`-based path.
//!
//! The arena is a *derived* structure: owners rebuild it after any sample
//! mutation (`pass-core` rebuilds in its mutation-epoch bump, the single
//! choke point every insert/delete/maintenance pass already goes through).

use crate::kernel::SampleView;
use crate::sample::Sample;

/// Everything [`SampleArena::view`] needs to slice out one stratum, packed
/// so a view costs a single metadata load (parallel offset/population/
/// sorted arrays would each bring in their own cache line).
#[derive(Debug, Clone, Copy)]
struct StratumMeta {
    /// First row of the stratum's segment (row index, not `f64` index).
    off: u32,
    /// Sample size `K_i`.
    k: u32,
    /// Population size `N_i`.
    population: u64,
    /// Sorted-column fast-path eligibility.
    sorted: bool,
}

/// All strata of a synopsis flattened into one contiguous allocation,
/// indexed by stratum (leaf) position.
#[derive(Debug, Clone, Default)]
pub struct SampleArena {
    /// Shared predicate dimensionality.
    dims: usize,
    /// Stratum `i` owns `data[meta[i].off * (dims + 1)..]`, laid out as
    /// its `dims` predicate columns (column-major) followed by its values.
    data: Vec<f64>,
    /// Per-stratum segment location and scan parameters.
    meta: Vec<StratumMeta>,
}

impl SampleArena {
    /// Flatten `samples` (all of the same arity) into a fresh arena.
    pub fn from_samples(samples: &[Sample]) -> Self {
        let dims = samples.first().map(|s| s.rows().dims()).unwrap_or(0);
        let total: usize = samples.iter().map(Sample::k).sum();
        let mut data = Vec::with_capacity(total * (dims + 1));
        let mut meta = Vec::with_capacity(samples.len());
        let mut off = 0u32;
        for s in samples {
            debug_assert_eq!(s.rows().dims(), dims);
            for d in 0..dims {
                data.extend_from_slice(s.rows().predicate_column(d));
            }
            data.extend_from_slice(s.rows().values());
            meta.push(StratumMeta {
                off,
                k: s.k() as u32,
                population: s.population(),
                sorted: s.sorted_1d(),
            });
            off += s.k() as u32;
        }
        Self { dims, data, meta }
    }

    /// Number of strata.
    pub fn len(&self) -> usize {
        self.meta.len()
    }

    /// Whether the arena holds no strata.
    pub fn is_empty(&self) -> bool {
        self.meta.is_empty()
    }

    /// Predicate dimensionality shared by every stratum.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Sample size `K_i` of stratum `i`.
    #[inline]
    pub fn k(&self, i: usize) -> usize {
        self.meta[i].k as usize
    }

    /// Population size `N_i` of stratum `i`.
    #[inline]
    pub fn population(&self, i: usize) -> u64 {
        self.meta[i].population
    }

    /// Borrow stratum `i`'s rows as a kernel [`SampleView`].
    #[inline]
    pub fn view(&self, i: usize) -> SampleView<'_> {
        let m = self.meta[i];
        let k = m.k as usize;
        let start = m.off as usize * (self.dims + 1);
        let seg = &self.data[start..start + k * (self.dims + 1)];
        let (preds, values) = seg.split_at(k * self.dims);
        SampleView {
            values,
            preds,
            dims: self.dims,
            population: m.population,
            sorted_1d: m.sorted,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::ScanScratch;
    use pass_common::rng::rng_from_seed;
    use pass_common::{AggKind, Rect};
    use pass_table::datasets::uniform;
    use pass_table::Table;

    fn strata(n_strata: usize, per: usize, seed: u64) -> Vec<Sample> {
        let t = uniform(n_strata * per * 4, seed);
        let mut rng = rng_from_seed(seed);
        (0..n_strata)
            .map(|i| {
                Sample::uniform_from_range(&t, i * per * 4..(i + 1) * per * 4, per, &mut rng)
                    .unwrap()
            })
            .collect()
    }

    #[test]
    fn views_mirror_their_samples() {
        let samples = strata(8, 5, 3);
        let arena = SampleArena::from_samples(&samples);
        assert_eq!(arena.len(), 8);
        assert_eq!(arena.dims(), 1);
        for (i, s) in samples.iter().enumerate() {
            let v = arena.view(i);
            assert_eq!(v.k(), s.k());
            assert_eq!(v.population, s.population());
            assert_eq!(v.sorted_1d, s.sorted_1d());
            assert_eq!(v.values, s.rows().values());
            assert_eq!(v.pred_col(0), s.rows().predicate_column(0));
        }
    }

    #[test]
    fn multidim_views_keep_column_layout() {
        let t = pass_table::datasets::taxi(400, 7).project(&[1, 2]).unwrap();
        let mut rng = rng_from_seed(7);
        let samples: Vec<Sample> = (0..4)
            .map(|_| Sample::uniform(&t, 20, &mut rng).unwrap())
            .collect();
        let arena = SampleArena::from_samples(&samples);
        assert_eq!(arena.dims(), 2);
        for (i, s) in samples.iter().enumerate() {
            let v = arena.view(i);
            for d in 0..2 {
                assert_eq!(v.pred_col(d), s.rows().predicate_column(d), "stratum {i}");
            }
        }
    }

    #[test]
    fn arena_estimates_are_bit_identical_to_sample_estimates() {
        let samples = strata(16, 7, 11);
        let arena = SampleArena::from_samples(&samples);
        let mut scratch = ScanScratch::new();
        for (lo, hi) in [(0.0, 1.0), (0.2, 0.6), (0.99, 1.5)] {
            let rect = Rect::interval(lo, hi);
            for agg in AggKind::ALL {
                for (i, s) in samples.iter().enumerate() {
                    let a = scratch.estimate_view(agg, &arena.view(i), &rect);
                    let b = scratch.estimate(agg, s, &rect);
                    assert_eq!(
                        a.map(|p| (p.value.to_bits(), p.variance.to_bits(), p.k_pred)),
                        b.map(|p| (p.value.to_bits(), p.variance.to_bits(), p.k_pred)),
                        "{agg} [{lo},{hi}] stratum {i}"
                    );
                }
            }
        }
    }

    #[test]
    fn empty_strata_and_empty_arena() {
        let arena = SampleArena::from_samples(&[]);
        assert!(arena.is_empty());
        let t = uniform(10, 5);
        let empty = Sample::from_indices(&t, &[], 10).unwrap();
        let full = Sample::from_indices(&t, &[0, 3, 7], 10).unwrap();
        let arena = SampleArena::from_samples(&[empty, full]);
        assert_eq!(arena.k(0), 0);
        assert_eq!(arena.k(1), 3);
        assert_eq!(arena.view(0).k(), 0);
        assert_eq!(arena.view(1).values.len(), 3);
    }

    #[test]
    fn mutated_unsorted_samples_round_trip() {
        let t = Table::one_dim(vec![0.5, 0.1, 0.9], vec![1.0, 2.0, 3.0]).unwrap();
        let s = Sample::from_rows(t, 30).unwrap();
        assert!(!s.sorted_1d());
        let arena = SampleArena::from_samples(std::slice::from_ref(&s));
        assert!(!arena.view(0).sorted_1d);
        let mut scratch = ScanScratch::new();
        let rect = Rect::interval(0.0, 0.6);
        let a = scratch.estimate_view(AggKind::Sum, &arena.view(0), &rect);
        let b = scratch.estimate(AggKind::Sum, &s, &rect);
        assert_eq!(a.map(|p| p.value.to_bits()), b.map(|p| p.value.to_bits()));
    }
}
