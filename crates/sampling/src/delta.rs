//! Delta encoding of stratified samples (Section 3.4).
//!
//! "The data structure can also effectively compress the samples using delta
//! encoding. Every sampled tuple can be expressed as a delta from its
//! partition average." Within a low-variance partition the deltas are small,
//! so storing them as `f32` (half the bytes of `f64`) loses almost nothing:
//! the absolute error of an f32 delta is relative to the *delta's*
//! magnitude, not the value's.

/// Sample values of one stratum, stored as f32 deltas from the partition
/// mean.
#[derive(Debug, Clone)]
pub struct DeltaEncoded {
    mean: f64,
    deltas: Vec<f32>,
}

impl DeltaEncoded {
    /// Encode values against the given partition mean (usually the exact
    /// partition AVG from the aggregate tree, not the sample mean).
    pub fn encode(values: &[f64], partition_mean: f64) -> Self {
        Self {
            mean: partition_mean,
            deltas: values
                .iter()
                .map(|&v| (v - partition_mean) as f32)
                .collect(),
        }
    }

    /// Decode all values.
    pub fn decode(&self) -> Vec<f64> {
        self.deltas.iter().map(|&d| self.mean + d as f64).collect()
    }

    /// Decode a single value.
    #[inline]
    pub fn get(&self, i: usize) -> f64 {
        self.mean + self.deltas[i] as f64
    }

    /// Number of encoded values.
    pub fn len(&self) -> usize {
        self.deltas.len()
    }

    /// True when no values are stored.
    pub fn is_empty(&self) -> bool {
        self.deltas.is_empty()
    }

    /// Logical storage: one f64 mean + one f32 per value.
    pub fn storage_bytes(&self) -> usize {
        std::mem::size_of::<f64>() + self.deltas.len() * std::mem::size_of::<f32>()
    }

    /// The reference mean.
    pub fn mean(&self) -> f64 {
        self.mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pass_common::stats::mean;

    #[test]
    fn roundtrip_is_near_exact_for_low_variance_strata() {
        // Values tightly clustered around a large mean: plain f32 storage
        // would lose precision; delta storage keeps ~1e-4 relative accuracy.
        let base = 1_000_000.0;
        let values: Vec<f64> = (0..100).map(|i| base + (i as f64) * 0.01).collect();
        let enc = DeltaEncoded::encode(&values, mean(&values));
        let dec = enc.decode();
        for (orig, back) in values.iter().zip(&dec) {
            assert!(
                (orig - back).abs() < 1e-4,
                "delta encoding error {} for {orig}",
                (orig - back).abs()
            );
        }
    }

    #[test]
    fn plain_f32_would_be_worse() {
        let base = 123_456_789.0;
        let v = base + 0.125;
        let as_f32 = v as f32 as f64;
        let enc = DeltaEncoded::encode(&[v], base);
        assert!((enc.get(0) - v).abs() < (as_f32 - v).abs());
    }

    #[test]
    fn storage_is_half_plus_header() {
        let values = vec![1.0; 1000];
        let enc = DeltaEncoded::encode(&values, 1.0);
        assert_eq!(enc.storage_bytes(), 8 + 1000 * 4);
        assert_eq!(enc.len(), 1000);
    }

    #[test]
    fn empty_encoding() {
        let enc = DeltaEncoded::encode(&[], 5.0);
        assert!(enc.is_empty());
        assert_eq!(enc.decode(), Vec::<f64>::new());
        assert_eq!(enc.mean(), 5.0);
    }

    #[test]
    fn preserves_sample_mean_closely() {
        let values: Vec<f64> = (0..500).map(|i| 50.0 + ((i * 7) % 13) as f64).collect();
        let m = mean(&values);
        let enc = DeltaEncoded::encode(&values, m);
        let dec = enc.decode();
        assert!((mean(&dec) - m).abs() < 1e-6);
    }
}
