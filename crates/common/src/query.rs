//! Rectangular queries over the predicate space.
//!
//! The paper restricts the query class `Q` to "rectangular region" predicates
//! `x_i <= C_i <= y_i` for each predicate column `C_i` (Section 3.1/4.1).
//! [`Rect`] models such a region with inclusive bounds; [`Query`] pairs a
//! rectangle with an aggregate kind. The geometric relation between a query
//! rectangle and a partition rectangle drives the MCF classification into
//! covered / partial / none (Section 2.3).

use crate::agg::AggKind;

/// An axis-aligned rectangle with inclusive bounds, one interval per
/// predicate dimension. A partition condition ψ and a query predicate are
/// both rectangles.
#[derive(Debug, Clone, PartialEq)]
pub struct Rect {
    lo: Vec<f64>,
    hi: Vec<f64>,
}

/// How a partition rectangle relates to a query rectangle (Section 2.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RectRelation {
    /// Every tuple in the partition satisfies the predicate
    /// (partition ⊆ query).
    Covered,
    /// No tuple in the partition can satisfy the predicate.
    Disjoint,
    /// Some tuples may satisfy the predicate.
    Partial,
}

impl Rect {
    /// Build from per-dimension inclusive `(lo, hi)` pairs.
    ///
    /// # Panics
    /// Panics when a dimension has `lo > hi` or a NaN bound — a malformed
    /// rectangle is a programming error, not a data error.
    pub fn new(bounds: &[(f64, f64)]) -> Self {
        let mut lo = Vec::with_capacity(bounds.len());
        let mut hi = Vec::with_capacity(bounds.len());
        for &(l, h) in bounds {
            assert!(!l.is_nan() && !h.is_nan(), "NaN rectangle bound");
            assert!(l <= h, "rectangle bound lo {l} > hi {h}");
            lo.push(l);
            hi.push(h);
        }
        Self { lo, hi }
    }

    /// One-dimensional interval `[lo, hi]`.
    pub fn interval(lo: f64, hi: f64) -> Self {
        Self::new(&[(lo, hi)])
    }

    /// The degenerate "whole space" rectangle (ψ = True for the tree root).
    pub fn whole(dims: usize) -> Self {
        Self {
            lo: vec![f64::NEG_INFINITY; dims],
            hi: vec![f64::INFINITY; dims],
        }
    }

    /// Number of predicate dimensions.
    #[inline]
    pub fn dims(&self) -> usize {
        self.lo.len()
    }

    /// Inclusive lower bound of dimension `d`.
    #[inline]
    pub fn lo(&self, d: usize) -> f64 {
        self.lo[d]
    }

    /// Inclusive upper bound of dimension `d`.
    #[inline]
    pub fn hi(&self, d: usize) -> f64 {
        self.hi[d]
    }

    /// Does the rectangle contain the point (one coordinate per dimension)?
    #[inline]
    pub fn contains_point(&self, point: &[f64]) -> bool {
        debug_assert_eq!(point.len(), self.dims());
        self.lo
            .iter()
            .zip(&self.hi)
            .zip(point)
            .all(|((&l, &h), &p)| l <= p && p <= h)
    }

    /// Is `other` entirely inside `self`?
    pub fn contains_rect(&self, other: &Rect) -> bool {
        debug_assert_eq!(other.dims(), self.dims());
        self.lo
            .iter()
            .zip(&self.hi)
            .zip(other.lo.iter().zip(&other.hi))
            .all(|((&sl, &sh), (&ol, &oh))| sl <= ol && oh <= sh)
    }

    /// Do the rectangles share at least one point?
    pub fn intersects(&self, other: &Rect) -> bool {
        debug_assert_eq!(other.dims(), self.dims());
        self.lo
            .iter()
            .zip(&self.hi)
            .zip(other.lo.iter().zip(&other.hi))
            .all(|((&sl, &sh), (&ol, &oh))| sl <= oh && ol <= sh)
    }

    /// Classify `self` (a partition) against `query` for the MCF trichotomy.
    pub fn relation_to(&self, query: &Rect) -> RectRelation {
        if !self.intersects(query) {
            RectRelation::Disjoint
        } else if query.contains_rect(self) {
            RectRelation::Covered
        } else {
            RectRelation::Partial
        }
    }

    /// Restrict dimension `d` to `[lo, hi] ∩ [self.lo(d), self.hi(d)]`,
    /// producing a child partition condition (conjunction with the parent ψ).
    pub fn narrowed(&self, d: usize, lo: f64, hi: f64) -> Self {
        let mut out = self.clone();
        out.lo[d] = out.lo[d].max(lo);
        out.hi[d] = out.hi[d].min(hi);
        assert!(out.lo[d] <= out.hi[d], "narrowing produced empty interval");
        out
    }

    /// Smallest rectangle containing both (disjunction of sibling ψ's, used
    /// when deriving the parent from children).
    pub fn union(&self, other: &Rect) -> Self {
        debug_assert_eq!(other.dims(), self.dims());
        Self {
            lo: self
                .lo
                .iter()
                .zip(&other.lo)
                .map(|(&a, &b)| a.min(b))
                .collect(),
            hi: self
                .hi
                .iter()
                .zip(&other.hi)
                .map(|(&a, &b)| a.max(b))
                .collect(),
        }
    }
}

/// An aggregate query: `SELECT agg(A) FROM P WHERE rect` (Section 3.1).
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// Which aggregate to compute.
    pub agg: AggKind,
    /// The rectangular predicate (one inclusive interval per dimension).
    pub rect: Rect,
}

impl Query {
    /// An aggregate query over a rectangular predicate.
    pub fn new(agg: AggKind, rect: Rect) -> Self {
        Self { agg, rect }
    }

    /// Convenience constructor for the common 1-D case.
    pub fn interval(agg: AggKind, lo: f64, hi: f64) -> Self {
        Self::new(agg, Rect::interval(lo, hi))
    }

    /// Number of predicate dimensions.
    pub fn dims(&self) -> usize {
        self.rect.dims()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interval_contains_point() {
        let r = Rect::interval(2.0, 5.0);
        assert!(r.contains_point(&[2.0]));
        assert!(r.contains_point(&[5.0]));
        assert!(!r.contains_point(&[5.1]));
        assert!(!r.contains_point(&[1.9]));
    }

    #[test]
    #[should_panic(expected = "rectangle bound lo")]
    fn inverted_bounds_panic() {
        let _ = Rect::interval(5.0, 2.0);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_bounds_panic() {
        let _ = Rect::interval(f64::NAN, 2.0);
    }

    #[test]
    fn relation_trichotomy_1d() {
        let q = Rect::interval(10.0, 20.0);
        assert_eq!(
            Rect::interval(12.0, 18.0).relation_to(&q),
            RectRelation::Covered
        );
        assert_eq!(
            Rect::interval(10.0, 20.0).relation_to(&q),
            RectRelation::Covered
        );
        assert_eq!(
            Rect::interval(21.0, 30.0).relation_to(&q),
            RectRelation::Disjoint
        );
        assert_eq!(
            Rect::interval(5.0, 15.0).relation_to(&q),
            RectRelation::Partial
        );
        assert_eq!(
            Rect::interval(5.0, 25.0).relation_to(&q),
            RectRelation::Partial
        );
    }

    #[test]
    fn relation_trichotomy_2d() {
        let q = Rect::new(&[(0.0, 10.0), (0.0, 10.0)]);
        let inside = Rect::new(&[(1.0, 2.0), (3.0, 4.0)]);
        assert_eq!(inside.relation_to(&q), RectRelation::Covered);
        let off_in_one_dim = Rect::new(&[(1.0, 2.0), (11.0, 12.0)]);
        assert_eq!(off_in_one_dim.relation_to(&q), RectRelation::Disjoint);
        let straddle = Rect::new(&[(5.0, 15.0), (5.0, 9.0)]);
        assert_eq!(straddle.relation_to(&q), RectRelation::Partial);
    }

    #[test]
    fn touching_boundaries_intersect() {
        // Inclusive bounds: sharing a single point counts as intersection.
        let a = Rect::interval(0.0, 5.0);
        let b = Rect::interval(5.0, 9.0);
        assert!(a.intersects(&b));
        assert_eq!(b.relation_to(&a), RectRelation::Partial);
    }

    #[test]
    fn whole_space_covers_everything() {
        let root = Rect::whole(3);
        let q = Rect::new(&[(0.0, 1.0), (-5.0, 5.0), (2.0, 2.0)]);
        assert!(root.contains_rect(&q));
        assert_eq!(q.relation_to(&root), RectRelation::Covered);
        assert_eq!(root.relation_to(&q), RectRelation::Partial);
    }

    #[test]
    fn narrowing_builds_children() {
        let parent = Rect::whole(2);
        let child = parent.narrowed(0, 0.0, 10.0).narrowed(1, -1.0, 1.0);
        assert_eq!(child.lo(0), 0.0);
        assert_eq!(child.hi(0), 10.0);
        assert_eq!(child.lo(1), -1.0);
        assert_eq!(child.hi(1), 1.0);
    }

    #[test]
    fn union_is_bounding_box() {
        let a = Rect::new(&[(0.0, 1.0), (0.0, 1.0)]);
        let b = Rect::new(&[(2.0, 3.0), (-1.0, 0.5)]);
        let u = a.union(&b);
        assert_eq!(u.lo(0), 0.0);
        assert_eq!(u.hi(0), 3.0);
        assert_eq!(u.lo(1), -1.0);
        assert_eq!(u.hi(1), 1.0);
    }

    #[test]
    fn query_constructors() {
        let q = Query::interval(AggKind::Avg, 1.0, 2.0);
        assert_eq!(q.dims(), 1);
        assert_eq!(q.agg, AggKind::Avg);
    }
}
