//! Rectangular queries over the predicate space.
//!
//! The paper restricts the query class `Q` to "rectangular region" predicates
//! `x_i <= C_i <= y_i` for each predicate column `C_i` (Section 3.1/4.1).
//! [`Rect`] models such a region with inclusive bounds; [`Query`] pairs a
//! rectangle with an aggregate kind. The geometric relation between a query
//! rectangle and a partition rectangle drives the MCF classification into
//! covered / partial / none (Section 2.3).

use crate::agg::AggKind;
use crate::error::{PassError, Result};
use crate::estimate::Estimate;

/// An axis-aligned rectangle with inclusive bounds, one interval per
/// predicate dimension. A partition condition ψ and a query predicate are
/// both rectangles.
#[derive(Debug, Clone, PartialEq)]
pub struct Rect {
    lo: Vec<f64>,
    hi: Vec<f64>,
}

/// How a partition rectangle relates to a query rectangle (Section 2.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RectRelation {
    /// Every tuple in the partition satisfies the predicate
    /// (partition ⊆ query).
    Covered,
    /// No tuple in the partition can satisfy the predicate.
    Disjoint,
    /// Some tuples may satisfy the predicate.
    Partial,
}

impl Rect {
    /// Build from per-dimension inclusive `(lo, hi)` pairs.
    ///
    /// # Panics
    /// Panics when a dimension has `lo > hi` or a NaN bound — a malformed
    /// rectangle is a programming error, not a data error.
    pub fn new(bounds: &[(f64, f64)]) -> Self {
        let mut lo = Vec::with_capacity(bounds.len());
        let mut hi = Vec::with_capacity(bounds.len());
        for &(l, h) in bounds {
            assert!(!l.is_nan() && !h.is_nan(), "NaN rectangle bound");
            assert!(l <= h, "rectangle bound lo {l} > hi {h}");
            lo.push(l);
            hi.push(h);
        }
        Self { lo, hi }
    }

    /// One-dimensional interval `[lo, hi]`.
    pub fn interval(lo: f64, hi: f64) -> Self {
        Self::new(&[(lo, hi)])
    }

    /// The degenerate "whole space" rectangle (ψ = True for the tree root).
    pub fn whole(dims: usize) -> Self {
        Self {
            lo: vec![f64::NEG_INFINITY; dims],
            hi: vec![f64::INFINITY; dims],
        }
    }

    /// Number of predicate dimensions.
    #[inline]
    pub fn dims(&self) -> usize {
        self.lo.len()
    }

    /// Inclusive lower bound of dimension `d`.
    #[inline]
    pub fn lo(&self, d: usize) -> f64 {
        self.lo[d]
    }

    /// Inclusive upper bound of dimension `d`.
    #[inline]
    pub fn hi(&self, d: usize) -> f64 {
        self.hi[d]
    }

    /// Does the rectangle contain the point (one coordinate per dimension)?
    #[inline]
    pub fn contains_point(&self, point: &[f64]) -> bool {
        debug_assert_eq!(point.len(), self.dims());
        self.lo
            .iter()
            .zip(&self.hi)
            .zip(point)
            .all(|((&l, &h), &p)| l <= p && p <= h)
    }

    /// Is `other` entirely inside `self`?
    pub fn contains_rect(&self, other: &Rect) -> bool {
        debug_assert_eq!(other.dims(), self.dims());
        self.lo
            .iter()
            .zip(&self.hi)
            .zip(other.lo.iter().zip(&other.hi))
            .all(|((&sl, &sh), (&ol, &oh))| sl <= ol && oh <= sh)
    }

    /// Do the rectangles share at least one point?
    pub fn intersects(&self, other: &Rect) -> bool {
        debug_assert_eq!(other.dims(), self.dims());
        self.lo
            .iter()
            .zip(&self.hi)
            .zip(other.lo.iter().zip(&other.hi))
            .all(|((&sl, &sh), (&ol, &oh))| sl <= oh && ol <= sh)
    }

    /// Classify `self` (a partition) against `query` for the MCF trichotomy.
    pub fn relation_to(&self, query: &Rect) -> RectRelation {
        if !self.intersects(query) {
            RectRelation::Disjoint
        } else if query.contains_rect(self) {
            RectRelation::Covered
        } else {
            RectRelation::Partial
        }
    }

    /// Restrict dimension `d` to `[lo, hi] ∩ [self.lo(d), self.hi(d)]`,
    /// producing a child partition condition (conjunction with the parent ψ).
    pub fn narrowed(&self, d: usize, lo: f64, hi: f64) -> Self {
        let mut out = self.clone();
        out.lo[d] = out.lo[d].max(lo);
        out.hi[d] = out.hi[d].min(hi);
        assert!(out.lo[d] <= out.hi[d], "narrowing produced empty interval");
        out
    }

    /// Smallest rectangle containing both (disjunction of sibling ψ's, used
    /// when deriving the parent from children).
    pub fn union(&self, other: &Rect) -> Self {
        debug_assert_eq!(other.dims(), self.dims());
        Self {
            lo: self
                .lo
                .iter()
                .zip(&other.lo)
                .map(|(&a, &b)| a.min(b))
                .collect(),
            hi: self
                .hi
                .iter()
                .zip(&other.hi)
                .map(|(&a, &b)| a.max(b))
                .collect(),
        }
    }
}

/// An aggregate query: `SELECT agg(A) FROM P WHERE rect` (Section 3.1).
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// Which aggregate to compute.
    pub agg: AggKind,
    /// The rectangular predicate (one inclusive interval per dimension).
    pub rect: Rect,
}

impl Query {
    /// An aggregate query over a rectangular predicate.
    pub fn new(agg: AggKind, rect: Rect) -> Self {
        Self { agg, rect }
    }

    /// Convenience constructor for the common 1-D case.
    pub fn interval(agg: AggKind, lo: f64, hi: f64) -> Self {
        Self::new(agg, Rect::interval(lo, hi))
    }

    /// Number of predicate dimensions.
    pub fn dims(&self) -> usize {
        self.rect.dims()
    }
}

/// A group-by aggregate query (paper Section 4.5): `SELECT agg(A) ...
/// WHERE base GROUP BY dim`, restricted to categorical group columns so
/// every group rewrites to one equality rectangle per category.
///
/// `base` constrains the remaining dimensions (its bounds on `dim` are
/// overwritten per group); `categories` are the distinct codes to
/// aggregate, one [`GroupResult`] each, in order.
///
/// ```
/// use pass_common::{AggKind, GroupByQuery};
///
/// let q = GroupByQuery::over(AggKind::Sum, 0, &[0.0, 1.0, 2.0], 1);
/// assert_eq!(q.len(), 3);
/// assert_eq!(q.query_for(1.0).rect.lo(0), 1.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct GroupByQuery {
    /// Which aggregate to compute per group.
    pub agg: AggKind,
    /// The (categorical) predicate dimension grouped over.
    pub dim: usize,
    /// The distinct category codes, one result row each, in order.
    pub categories: Vec<f64>,
    /// Bounds on the remaining dimensions (pass the bounding rectangle,
    /// or [`Rect::whole`], for an unfiltered group-by); its interval on
    /// [`dim`](Self::dim) is overwritten per group.
    pub base: Rect,
}

impl GroupByQuery {
    /// A group-by over `categories` of dimension `dim`, filtered by
    /// `base` on the remaining dimensions.
    pub fn new(agg: AggKind, dim: usize, categories: &[f64], base: Rect) -> Self {
        Self {
            agg,
            dim,
            categories: categories.to_vec(),
            base,
        }
    }

    /// An unfiltered group-by over a `dims`-dimensional predicate space
    /// (`base` = [`Rect::whole`]).
    pub fn over(agg: AggKind, dim: usize, categories: &[f64], dims: usize) -> Self {
        Self::new(agg, dim, categories, Rect::whole(dims))
    }

    /// Number of groups (one [`GroupResult`] per category).
    pub fn len(&self) -> usize {
        self.categories.len()
    }

    /// Whether the query has no categories (answered as zero rows).
    pub fn is_empty(&self) -> bool {
        self.categories.is_empty()
    }

    /// Validate against a synopsis of `dims` predicate dimensions: the
    /// base rectangle must match the arity, the group dimension must be
    /// in range, and category codes must be comparable (no NaN). Every
    /// `estimate_group_by` path runs this before touching the engine, so
    /// rule errors are identical across direct/cached/sharded/served
    /// answers.
    pub fn validate(&self, dims: usize) -> Result<()> {
        if self.base.dims() != dims {
            return Err(PassError::DimensionMismatch {
                expected: dims,
                got: self.base.dims(),
            });
        }
        if self.dim >= dims {
            return Err(PassError::InvalidParameter(
                "dim",
                format!("group-by dimension {} out of range 0..{dims}", self.dim),
            ));
        }
        if self.categories.iter().any(|c| c.is_nan()) {
            return Err(PassError::InvalidParameter(
                "categories",
                "group-by category codes must not be NaN".into(),
            ));
        }
        Ok(())
    }

    /// The per-group selection query: the equality rectangle
    /// `dim = key`, base bounds elsewhere.
    pub fn query_for(&self, key: f64) -> Query {
        let bounds: Vec<(f64, f64)> = (0..self.base.dims())
            .map(|d| {
                if d == self.dim {
                    (key, key)
                } else {
                    (self.base.lo(d), self.base.hi(d))
                }
            })
            .collect();
        Query::new(self.agg, Rect::new(&bounds))
    }

    /// Every group's selection query, in category order.
    pub fn queries(&self) -> Vec<Query> {
        self.categories.iter().map(|&k| self.query_for(k)).collect()
    }
}

/// One group's row in a group-by answer.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupResult {
    /// The group key (the categorical code).
    pub key: f64,
    /// The estimate, or the rule error for groups the synopsis cannot
    /// answer (e.g. AVG of an empty group, or a group with no sampled
    /// evidence — see [`apply_group_availability`]).
    pub estimate: Result<Estimate>,
}

/// The group-by availability rule — the group-level analogue of the
/// sharded silent-shard rule.
///
/// A sampling engine whose sample holds **zero rows of a group** answers
/// SUM/COUNT with a *silent zero*: `0 ± 0`, not exact, no hard bounds —
/// an answer that claims certainty on zero evidence (the group may hold
/// thousands of unsampled rows). Inside a group-by that is
/// indistinguishable from a genuinely empty group, so every
/// `estimate_group_by` path converts it to the same rule error
/// evidence-free AVG/MIN/MAX already surface. Under a sharded engine the
/// availability merge then *skips* such shards **with bounds stripped**
/// (the merged answer keeps going, marked inexact and unbounded) and
/// only propagates the error when no shard holds evidence.
///
/// Answers with any exactness claim, uncertainty, or hard bounds pass
/// through untouched; the conversion is idempotent, so layered paths
/// (cached over sharded over the engine) agree bit-for-bit.
pub fn apply_group_availability(result: Result<Estimate>) -> Result<Estimate> {
    match result {
        Ok(est)
            if !est.exact
                && est.value == 0.0
                && est.ci_half == 0.0
                && est.hard_bounds.is_none() =>
        {
            Err(PassError::EmptyInput(
                "no sampled tuple matches the predicate",
            ))
        }
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interval_contains_point() {
        let r = Rect::interval(2.0, 5.0);
        assert!(r.contains_point(&[2.0]));
        assert!(r.contains_point(&[5.0]));
        assert!(!r.contains_point(&[5.1]));
        assert!(!r.contains_point(&[1.9]));
    }

    #[test]
    #[should_panic(expected = "rectangle bound lo")]
    fn inverted_bounds_panic() {
        let _ = Rect::interval(5.0, 2.0);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_bounds_panic() {
        let _ = Rect::interval(f64::NAN, 2.0);
    }

    #[test]
    fn relation_trichotomy_1d() {
        let q = Rect::interval(10.0, 20.0);
        assert_eq!(
            Rect::interval(12.0, 18.0).relation_to(&q),
            RectRelation::Covered
        );
        assert_eq!(
            Rect::interval(10.0, 20.0).relation_to(&q),
            RectRelation::Covered
        );
        assert_eq!(
            Rect::interval(21.0, 30.0).relation_to(&q),
            RectRelation::Disjoint
        );
        assert_eq!(
            Rect::interval(5.0, 15.0).relation_to(&q),
            RectRelation::Partial
        );
        assert_eq!(
            Rect::interval(5.0, 25.0).relation_to(&q),
            RectRelation::Partial
        );
    }

    #[test]
    fn relation_trichotomy_2d() {
        let q = Rect::new(&[(0.0, 10.0), (0.0, 10.0)]);
        let inside = Rect::new(&[(1.0, 2.0), (3.0, 4.0)]);
        assert_eq!(inside.relation_to(&q), RectRelation::Covered);
        let off_in_one_dim = Rect::new(&[(1.0, 2.0), (11.0, 12.0)]);
        assert_eq!(off_in_one_dim.relation_to(&q), RectRelation::Disjoint);
        let straddle = Rect::new(&[(5.0, 15.0), (5.0, 9.0)]);
        assert_eq!(straddle.relation_to(&q), RectRelation::Partial);
    }

    #[test]
    fn touching_boundaries_intersect() {
        // Inclusive bounds: sharing a single point counts as intersection.
        let a = Rect::interval(0.0, 5.0);
        let b = Rect::interval(5.0, 9.0);
        assert!(a.intersects(&b));
        assert_eq!(b.relation_to(&a), RectRelation::Partial);
    }

    #[test]
    fn whole_space_covers_everything() {
        let root = Rect::whole(3);
        let q = Rect::new(&[(0.0, 1.0), (-5.0, 5.0), (2.0, 2.0)]);
        assert!(root.contains_rect(&q));
        assert_eq!(q.relation_to(&root), RectRelation::Covered);
        assert_eq!(root.relation_to(&q), RectRelation::Partial);
    }

    #[test]
    fn narrowing_builds_children() {
        let parent = Rect::whole(2);
        let child = parent.narrowed(0, 0.0, 10.0).narrowed(1, -1.0, 1.0);
        assert_eq!(child.lo(0), 0.0);
        assert_eq!(child.hi(0), 10.0);
        assert_eq!(child.lo(1), -1.0);
        assert_eq!(child.hi(1), 1.0);
    }

    #[test]
    fn union_is_bounding_box() {
        let a = Rect::new(&[(0.0, 1.0), (0.0, 1.0)]);
        let b = Rect::new(&[(2.0, 3.0), (-1.0, 0.5)]);
        let u = a.union(&b);
        assert_eq!(u.lo(0), 0.0);
        assert_eq!(u.hi(0), 3.0);
        assert_eq!(u.lo(1), -1.0);
        assert_eq!(u.hi(1), 1.0);
    }

    #[test]
    fn query_constructors() {
        let q = Query::interval(AggKind::Avg, 1.0, 2.0);
        assert_eq!(q.dims(), 1);
        assert_eq!(q.agg, AggKind::Avg);
    }

    #[test]
    fn group_by_query_expands_to_equality_rectangles() {
        let base = Rect::new(&[(0.0, 10.0), (-1.0, 1.0)]);
        let q = GroupByQuery::new(AggKind::Count, 1, &[0.25, 0.5], base);
        assert!(q.validate(2).is_ok());
        assert_eq!(q.len(), 2);
        assert!(!q.is_empty());
        let queries = q.queries();
        assert_eq!(queries.len(), 2);
        // The group dimension collapses to the equality point; the other
        // dimension keeps the base bounds.
        assert_eq!(queries[0].rect.lo(1), 0.25);
        assert_eq!(queries[0].rect.hi(1), 0.25);
        assert_eq!(queries[0].rect.lo(0), 0.0);
        assert_eq!(queries[0].rect.hi(0), 10.0);
        assert_eq!(queries[1].agg, AggKind::Count);
    }

    #[test]
    fn group_by_validation_rejects_bad_shapes() {
        let q = GroupByQuery::over(AggKind::Sum, 0, &[1.0], 1);
        assert!(matches!(
            q.validate(2),
            Err(PassError::DimensionMismatch {
                expected: 2,
                got: 1
            })
        ));
        let q = GroupByQuery::over(AggKind::Sum, 3, &[1.0], 2);
        assert!(matches!(
            q.validate(2),
            Err(PassError::InvalidParameter("dim", _))
        ));
        let q = GroupByQuery::over(AggKind::Sum, 0, &[f64::NAN], 1);
        assert!(matches!(
            q.validate(1),
            Err(PassError::InvalidParameter("categories", _))
        ));
        assert!(GroupByQuery::over(AggKind::Sum, 0, &[], 1)
            .validate(1)
            .is_ok());
    }

    #[test]
    fn availability_rule_converts_only_silent_zeros() {
        // The silent zero: inexact, zero value, zero CI, no bounds.
        let silent = Ok(Estimate::approximate(0.0, 0.0));
        assert!(matches!(
            apply_group_availability(silent),
            Err(PassError::EmptyInput(_))
        ));
        // An exact zero is a real (empty-group) answer.
        let exact = Ok(Estimate::exact(0.0));
        assert_eq!(apply_group_availability(exact).unwrap().value, 0.0);
        // Uncertainty or hard bounds are evidence; pass through.
        let with_ci = Ok(Estimate::approximate(0.0, 0.5));
        assert!(apply_group_availability(with_ci).is_ok());
        let with_bounds = Ok(Estimate::approximate(0.0, 0.0).with_hard_bounds(0.0, 9.0));
        assert!(apply_group_availability(with_bounds).is_ok());
        // Errors pass through unchanged (idempotent).
        let err: Result<Estimate> = Err(PassError::EmptyInput("x"));
        assert!(matches!(
            apply_group_availability(err),
            Err(PassError::EmptyInput("x"))
        ));
    }
}
