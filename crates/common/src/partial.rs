//! Mergeable partial estimates — the algebra behind sharded synopses.
//!
//! When one logical table is partitioned into disjoint shards (see
//! [`ShardPlan`](crate::ShardPlan)), each shard's engine answers a query
//! only for *its* rows. A [`PartialEstimate`] carries what the merge
//! needs: the shard's own [`Estimate`] of the query plus the mergeable
//! COUNT/SUM components. [`PartialEstimate::merge`] reduces shard
//! partials into one [`Estimate`] using the classic stratified-estimator
//! identities (cf. the sampling-algebra literature in `PAPERS.md`):
//!
//! * **COUNT / SUM** — point estimates add exactly across disjoint
//!   shards, and the variances of independently built shards add, so the
//!   merged λ-CI half-width is the root-sum-square of the shard
//!   half-widths (each is λ·σᵢ, so RSS = λ·√Σσᵢ²).
//! * **AVG** — merged as the ratio of the merged SUM and COUNT
//!   estimates; the CI uses the first-order delta method *without* the
//!   (typically positive, variance-reducing) SUM/COUNT covariance term,
//!   so it is conservative.
//! * **MIN / MAX** — the extremum of the shard extrema; the winning
//!   shard's CI is kept.
//!
//! Hard bounds compose soundly: SUM/COUNT bounds add, AVG bounds span
//! the shard AVG bounds (a mean of a union lies between the per-part
//! means), MIN/MAX bounds take the corresponding extremum. A merged
//! estimate is `exact` only when every contributing partial was.
//!
//! The merge of a *single* partial returns the shard's own estimate
//! verbatim — so a 1-shard plan is bit-identical to the unsharded
//! engine, for every aggregate and every engine. `tests/sharded_contract.rs`
//! pins this together with the K-shard additivity contract.

use crate::agg::AggKind;
use crate::error::{PassError, Result};
use crate::estimate::Estimate;
use crate::query::Query;

/// One shard's mergeable contribution to a query (see the module docs
/// for the merge algebra).
#[derive(Debug, Clone, PartialEq)]
pub struct PartialEstimate {
    /// The aggregate this partial answers.
    pub agg: AggKind,
    /// The shard's own estimate of the query over its rows alone.
    pub local: Estimate,
    /// Estimated number of the shard's rows matching the predicate
    /// (meaningful for COUNT and AVG merges; 0 otherwise).
    pub count: f64,
    /// λ-CI half-width of [`count`](Self::count).
    pub count_ci: f64,
    /// Estimated SUM of the shard's matching rows (meaningful for SUM
    /// and AVG merges; 0 otherwise).
    pub sum: f64,
    /// λ-CI half-width of [`sum`](Self::sum).
    pub sum_ci: f64,
}

impl PartialEstimate {
    /// A partial for an aggregate whose merge needs only the shard's own
    /// estimate: COUNT, SUM, MIN, MAX — or *any* aggregate when the
    /// merge is over a single shard, since a one-partial merge returns
    /// `local` verbatim and never reads the components.
    pub fn from_local(agg: AggKind, local: Estimate) -> Self {
        let (count, count_ci, sum, sum_ci) = match agg {
            AggKind::Count => (local.value, local.ci_half, 0.0, 0.0),
            AggKind::Sum => (0.0, 0.0, local.value, local.ci_half),
            _ => (0.0, 0.0, 0.0, 0.0),
        };
        Self {
            agg,
            local,
            count,
            count_ci,
            sum,
            sum_ci,
        }
    }

    /// An AVG partial: the shard's own AVG estimate plus the COUNT and
    /// SUM estimates the ratio merge is built from.
    pub fn for_avg(local: Estimate, count: &Estimate, sum: &Estimate) -> Self {
        Self {
            agg: AggKind::Avg,
            local,
            count: count.value,
            count_ci: count.ci_half,
            sum: sum.value,
            sum_ci: sum.ci_half,
        }
    }

    /// The zero contribution of a shard that could not match any tuple
    /// (COUNT/SUM only): value 0, no uncertainty, no hard bounds, not
    /// exact — the shard may hold unsampled matching rows.
    pub fn empty(agg: AggKind) -> Self {
        debug_assert!(
            matches!(agg, AggKind::Count | AggKind::Sum),
            "only COUNT/SUM have a well-defined zero contribution"
        );
        Self::from_local(agg, Estimate::approximate(0.0, 0.0))
    }

    /// The sub-queries a shard must answer to produce a partial for
    /// `query`, in the order [`assemble`](Self::assemble) consumes them.
    /// One query for COUNT/SUM/MIN/MAX; COUNT + SUM + the query itself
    /// for AVG. Batched sharded paths expand a query batch with this and
    /// feed the expansion through the shard's `estimate_many`.
    pub fn queries(query: &Query) -> Vec<Query> {
        let expanded = match query.agg {
            AggKind::Avg => vec![
                Query::new(AggKind::Count, query.rect.clone()),
                Query::new(AggKind::Sum, query.rect.clone()),
                query.clone(),
            ],
            _ => vec![query.clone()],
        };
        debug_assert_eq!(expanded.len(), Self::width(query.agg));
        expanded
    }

    /// How many sub-queries [`queries`](Self::queries) produces for an
    /// aggregate — allocation-free, for offset bookkeeping over an
    /// expanded batch.
    pub fn width(agg: AggKind) -> usize {
        match agg {
            AggKind::Avg => 3,
            _ => 1,
        }
    }

    /// The decomposition for merges over **multiple** shards: AVG
    /// expands to COUNT + SUM only (a K-way merge recomputes AVG as
    /// ΣSUM/ΣCOUNT and never reads a shard's own AVG answer, so issuing
    /// it would be pure wasted engine work). A single-shard merge needs
    /// no decomposition at all — one [`from_local`](Self::from_local)
    /// partial of the query's own answer merges to it verbatim.
    pub fn merge_queries(query: &Query) -> Vec<Query> {
        let expanded = match query.agg {
            AggKind::Avg => vec![
                Query::new(AggKind::Count, query.rect.clone()),
                Query::new(AggKind::Sum, query.rect.clone()),
            ],
            _ => vec![query.clone()],
        };
        debug_assert_eq!(expanded.len(), Self::merge_width(query.agg));
        expanded
    }

    /// How many sub-queries [`merge_queries`](Self::merge_queries)
    /// produces for an aggregate.
    pub fn merge_width(agg: AggKind) -> usize {
        match agg {
            AggKind::Avg => 2,
            _ => 1,
        }
    }

    /// [`assemble`](Self::assemble) for the
    /// [`merge_queries`](Self::merge_queries) decomposition: the AVG
    /// local is synthesized as the SUM/COUNT ratio with the same
    /// delta-method CI the K-way merge uses (so a merge that collapses
    /// to one answering shard is consistent with the K-way formula),
    /// exactness when both components are exact, and hard bounds from
    /// the corner extremes of the component bounds when the count is
    /// provably positive.
    pub fn assemble_merge(
        query: &Query,
        answers: impl IntoIterator<Item = Result<Estimate>>,
    ) -> Result<PartialEstimate> {
        let mut answers = answers.into_iter();
        let mut next = || {
            answers
                .next()
                .unwrap_or(Err(PassError::EmptyInput("missing partial sub-answer")))
        };
        match query.agg {
            AggKind::Avg => {
                let count = next()?;
                let sum = next()?;
                let local = ratio_local(&count, &sum)?;
                Ok(PartialEstimate::for_avg(local, &count, &sum))
            }
            agg => Ok(PartialEstimate::from_local(agg, next()?)),
        }
    }

    /// Build the partial for `query` from the shard's answers to
    /// [`queries`](Self::queries), in order. The first failing answer is
    /// the partial's error.
    pub fn assemble(
        query: &Query,
        answers: impl IntoIterator<Item = Result<Estimate>>,
    ) -> Result<PartialEstimate> {
        let mut answers = answers.into_iter();
        let mut next = || {
            answers
                .next()
                .unwrap_or(Err(PassError::EmptyInput("missing partial sub-answer")))
        };
        match query.agg {
            AggKind::Avg => {
                let count = next()?;
                let sum = next()?;
                let local = next()?;
                Ok(PartialEstimate::for_avg(local, &count, &sum))
            }
            agg => Ok(PartialEstimate::from_local(agg, next()?)),
        }
    }

    /// [`merge`](Self::merge) with the stratified **availability rule**
    /// applied first: a part that failed with
    /// [`PassError::EmptyInput`] (the shard/stratum could not match any
    /// tuple) contributes zero to additive aggregates and is skipped for
    /// AVG/MIN/MAX — but only when some other part answered. If *no*
    /// part answered, the first error propagates (so a 1-part merge is
    /// identical to the lone part, errors included). Any other error
    /// aborts the merge. A merge that skipped a silent part drops hard
    /// bounds and exactness — the silent part may hold unsampled
    /// matching rows the surviving parts' bounds know nothing about
    /// (additive merges get this for free from their zero partials).
    ///
    /// This is the one merge the sharded single-query, sharded batched,
    /// and progressive group-by paths all reduce through, which is what
    /// keeps them bit-identical to each other.
    pub fn merge_available(agg: AggKind, parts: &[Result<PartialEstimate>]) -> Result<Estimate> {
        let mut answered = Vec::with_capacity(parts.len());
        let mut silent = 0usize;
        let mut first_err: Option<PassError> = None;
        for part in parts {
            match part {
                Ok(p) => answered.push(p.clone()),
                Err(err @ PassError::EmptyInput(_)) => {
                    silent += 1;
                    if first_err.is_none() {
                        first_err = Some(err.clone());
                    }
                }
                Err(err) => return Err(err.clone()),
            }
        }
        if answered.is_empty() {
            return Err(
                first_err.unwrap_or(PassError::EmptyInput("no shard could answer the query"))
            );
        }
        if agg.is_additive() {
            answered.extend((0..silent).map(|_| PartialEstimate::empty(agg)));
        }
        let mut est = PartialEstimate::merge(&answered)?;
        if silent > 0 && !agg.is_additive() {
            // A skipped silent part may hold unsampled matching rows, so
            // deterministic bounds and exactness claims from the
            // answering parts alone no longer hold for the whole table.
            est.hard_bounds = None;
            est.exact = false;
        }
        Ok(est)
    }

    /// Reduce shard partials (one per shard, same aggregate) into a
    /// single merged [`Estimate`]. See the module docs for the algebra;
    /// a single partial merges to its `local` estimate verbatim.
    pub fn merge(parts: &[PartialEstimate]) -> Result<Estimate> {
        let Some(first) = parts.first() else {
            return Err(PassError::EmptyInput("no shard partials to merge"));
        };
        if parts.len() == 1 {
            return Ok(first.local.clone());
        }
        let agg = first.agg;
        debug_assert!(
            parts.iter().all(|p| p.agg == agg),
            "merging partials of mixed aggregates"
        );
        let processed: u64 = parts.iter().map(|p| p.local.tuples_processed).sum();
        let skipped: u64 = parts.iter().map(|p| p.local.tuples_skipped).sum();
        let exact = parts.iter().all(|p| p.local.exact);
        let rss = |ci: &dyn Fn(&PartialEstimate) -> f64| -> f64 {
            parts.iter().map(|p| ci(p) * ci(p)).sum::<f64>().sqrt()
        };

        let mut est = match agg {
            AggKind::Count => {
                let value: f64 = parts.iter().map(|p| p.count).sum();
                Estimate::approximate(value, rss(&|p| p.count_ci))
            }
            AggKind::Sum => {
                let value: f64 = parts.iter().map(|p| p.sum).sum();
                Estimate::approximate(value, rss(&|p| p.sum_ci))
            }
            AggKind::Avg => {
                let count: f64 = parts.iter().map(|p| p.count).sum();
                let sum: f64 = parts.iter().map(|p| p.sum).sum();
                if count <= 0.0 {
                    return Err(PassError::EmptyInput(
                        "merged AVG over an (estimated) empty selection",
                    ));
                }
                let value = sum / count;
                let sum_ci = rss(&|p| p.sum_ci);
                let count_ci = rss(&|p| p.count_ci);
                // First-order delta method for the ratio, covariance
                // dropped (conservative — see module docs).
                let ci_half =
                    (sum_ci * sum_ci + value * value * count_ci * count_ci).sqrt() / count;
                Estimate::approximate(value, ci_half)
            }
            AggKind::Min | AggKind::Max => {
                let winner = parts
                    .iter()
                    .min_by(|a, b| {
                        let (x, y) = (a.local.value, b.local.value);
                        let ord = x.partial_cmp(&y).unwrap_or(std::cmp::Ordering::Equal);
                        if agg == AggKind::Min {
                            ord
                        } else {
                            ord.reverse()
                        }
                    })
                    // `parts` is non-empty (checked on entry); fall back
                    // to the first partial rather than panic.
                    .unwrap_or(first);
                Estimate::approximate(winner.local.value, winner.local.ci_half)
            }
        };
        est.exact = exact;
        est.hard_bounds = merge_hard_bounds(agg, parts);
        Ok(est.with_accounting(processed, skipped))
    }
}

/// The SUM/COUNT ratio as an AVG estimate: delta-method CI (covariance
/// dropped — conservative), exact iff both components are, hard bounds
/// from the corner extremes of `sum/count` over the component bounds
/// (sound: the ratio is monotone in each argument at fixed other, so
/// its range over a box is attained at a corner) when the count is
/// provably positive. Errors on an estimated-empty selection, matching
/// the engines' own AVG availability.
fn ratio_local(count: &Estimate, sum: &Estimate) -> Result<Estimate> {
    if count.value <= 0.0 {
        return Err(PassError::EmptyInput(
            "AVG over an (estimated) empty selection",
        ));
    }
    let value = sum.value / count.value;
    let ci_half = (sum.ci_half * sum.ci_half + value * value * count.ci_half * count.ci_half)
        .sqrt()
        / count.value;
    let mut est = Estimate::approximate(value, ci_half);
    est.exact = count.exact && sum.exact;
    if let (Some((sl, su)), Some((cl, cu))) = (sum.hard_bounds, count.hard_bounds) {
        if cl > 0.0 {
            let corners = [sl / cl, sl / cu, su / cl, su / cu];
            let lo = corners.iter().copied().fold(f64::INFINITY, f64::min);
            let hi = corners.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            est = est.with_hard_bounds(lo, hi);
        }
    }
    // Both components scanned the same shard state; don't double-count.
    Ok(est.with_accounting(
        count.tuples_processed.max(sum.tuples_processed),
        count.tuples_skipped.max(sum.tuples_skipped),
    ))
}

/// Sound hard bounds of the merged answer, when every partial carries
/// bounds (for MIN/MAX the lower/upper side needs all shards, so the
/// all-or-nothing rule keeps the pair simple and sound).
fn merge_hard_bounds(agg: AggKind, parts: &[PartialEstimate]) -> Option<(f64, f64)> {
    let mut bounds = Vec::with_capacity(parts.len());
    for p in parts {
        bounds.push(p.local.hard_bounds?);
    }
    let fold = |f: fn(f64, f64) -> f64, init: f64, side: fn(&(f64, f64)) -> f64| {
        bounds.iter().map(side).fold(init, f)
    };
    Some(match agg {
        AggKind::Sum | AggKind::Count => (
            bounds.iter().map(|b| b.0).sum(),
            bounds.iter().map(|b| b.1).sum(),
        ),
        // The AVG of a union lies between the smallest and largest
        // per-shard AVG bound.
        AggKind::Avg => (
            fold(f64::min, f64::INFINITY, |b| b.0),
            fold(f64::max, f64::NEG_INFINITY, |b| b.1),
        ),
        AggKind::Min => (
            fold(f64::min, f64::INFINITY, |b| b.0),
            fold(f64::min, f64::INFINITY, |b| b.1),
        ),
        AggKind::Max => (
            fold(f64::max, f64::NEG_INFINITY, |b| b.0),
            fold(f64::max, f64::NEG_INFINITY, |b| b.1),
        ),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::Rect;

    fn sum_part(value: f64, ci: f64) -> PartialEstimate {
        PartialEstimate::from_local(AggKind::Sum, Estimate::approximate(value, ci))
    }

    #[test]
    fn single_partial_merges_to_its_local_estimate_verbatim() {
        for agg in AggKind::ALL {
            let local = Estimate::approximate(7.5, 1.25)
                .with_hard_bounds(0.0, 20.0)
                .with_accounting(10, 90);
            let part = match agg {
                AggKind::Avg => PartialEstimate::for_avg(
                    local.clone(),
                    &Estimate::approximate(4.0, 0.5),
                    &Estimate::approximate(30.0, 2.0),
                ),
                _ => PartialEstimate::from_local(agg, local.clone()),
            };
            assert_eq!(PartialEstimate::merge(&[part]).unwrap(), local, "{agg}");
        }
    }

    #[test]
    fn count_and_sum_values_add_and_variances_add() {
        let merged = PartialEstimate::merge(&[sum_part(10.0, 3.0), sum_part(20.0, 4.0)]).unwrap();
        assert_eq!(merged.value, 30.0);
        assert!((merged.ci_half - 5.0).abs() < 1e-12, "RSS of 3,4 is 5");
        assert!(!merged.exact);

        let counts = [
            PartialEstimate::from_local(AggKind::Count, Estimate::exact(5.0)),
            PartialEstimate::from_local(AggKind::Count, Estimate::exact(7.0)),
        ];
        let merged = PartialEstimate::merge(&counts).unwrap();
        assert_eq!(merged.value, 12.0);
        assert_eq!(merged.ci_half, 0.0);
        assert!(merged.exact, "all-exact partials merge exactly");
        assert_eq!(merged.hard_bounds, Some((12.0, 12.0)));
    }

    #[test]
    fn merged_ci_is_at_least_every_component_ci() {
        let parts = [sum_part(1.0, 0.5), sum_part(2.0, 2.5), sum_part(3.0, 1.0)];
        let merged = PartialEstimate::merge(&parts).unwrap();
        for p in &parts {
            assert!(merged.ci_half + 1e-12 >= p.local.ci_half);
        }
    }

    #[test]
    fn avg_merges_as_ratio_of_merged_sum_and_count() {
        let a = PartialEstimate::for_avg(
            Estimate::approximate(3.0, 0.1),
            &Estimate::approximate(10.0, 1.0),
            &Estimate::approximate(30.0, 5.0),
        );
        let b = PartialEstimate::for_avg(
            Estimate::approximate(5.0, 0.1),
            &Estimate::approximate(30.0, 2.0),
            &Estimate::approximate(150.0, 12.0),
        );
        let merged = PartialEstimate::merge(&[a, b]).unwrap();
        assert!((merged.value - 180.0 / 40.0).abs() < 1e-12);
        let sum_ci = (25.0f64 + 144.0).sqrt();
        let count_ci = (1.0f64 + 4.0).sqrt();
        let want = (sum_ci * sum_ci + 4.5 * 4.5 * count_ci * count_ci).sqrt() / 40.0;
        assert!((merged.ci_half - want).abs() < 1e-12);

        // Estimated-empty selections cannot produce an AVG.
        let empty = PartialEstimate::for_avg(
            Estimate::approximate(0.0, 0.0),
            &Estimate::approximate(0.0, 0.0),
            &Estimate::approximate(0.0, 0.0),
        );
        assert!(PartialEstimate::merge(&[empty.clone(), empty]).is_err());
    }

    #[test]
    fn min_max_take_the_extremum_and_its_ci() {
        let parts: Vec<PartialEstimate> = [(4.0, 0.5), (2.0, 0.25), (9.0, 1.0)]
            .iter()
            .map(|&(v, ci)| {
                PartialEstimate::from_local(
                    AggKind::Min,
                    Estimate::approximate(v, ci).with_hard_bounds(v - 1.0, v + 1.0),
                )
            })
            .collect();
        let merged = PartialEstimate::merge(&parts).unwrap();
        assert_eq!(merged.value, 2.0);
        assert_eq!(merged.ci_half, 0.25);
        assert_eq!(merged.hard_bounds, Some((1.0, 3.0)));

        let parts: Vec<PartialEstimate> = parts
            .into_iter()
            .map(|p| PartialEstimate::from_local(AggKind::Max, p.local))
            .collect();
        let merged = PartialEstimate::merge(&parts).unwrap();
        assert_eq!(merged.value, 9.0);
        assert_eq!(merged.hard_bounds, Some((8.0, 10.0)));
    }

    #[test]
    fn hard_bounds_require_every_partial_to_have_them() {
        let with = sum_part(1.0, 0.1);
        let mut without = sum_part(2.0, 0.1);
        without.local.hard_bounds = None;
        let merged = PartialEstimate::merge(&[with, without]).unwrap();
        assert_eq!(merged.hard_bounds, None);
    }

    #[test]
    fn accounting_sums_across_partials() {
        let mut a = sum_part(1.0, 0.0);
        a.local = a.local.with_accounting(10, 100);
        let mut b = sum_part(2.0, 0.0);
        b.local = b.local.with_accounting(5, 50);
        let merged = PartialEstimate::merge(&[
            PartialEstimate::from_local(AggKind::Sum, a.local.clone()),
            PartialEstimate::from_local(AggKind::Sum, b.local.clone()),
        ])
        .unwrap();
        assert_eq!(merged.tuples_processed, 15);
        assert_eq!(merged.tuples_skipped, 150);
    }

    #[test]
    fn query_expansion_and_assembly_round_trip() {
        let q = Query::new(AggKind::Avg, Rect::interval(0.0, 1.0));
        let expanded = PartialEstimate::queries(&q);
        assert_eq!(expanded.len(), 3);
        assert_eq!(expanded[0].agg, AggKind::Count);
        assert_eq!(expanded[1].agg, AggKind::Sum);
        assert_eq!(expanded[2], q);
        let part = PartialEstimate::assemble(
            &q,
            [
                Ok(Estimate::approximate(10.0, 1.0)),
                Ok(Estimate::approximate(30.0, 2.0)),
                Ok(Estimate::approximate(3.0, 0.2)),
            ],
        )
        .unwrap();
        assert_eq!(part.count, 10.0);
        assert_eq!(part.sum, 30.0);
        assert_eq!(part.local.value, 3.0);

        let q = Query::new(AggKind::Sum, Rect::interval(0.0, 1.0));
        assert_eq!(PartialEstimate::queries(&q).len(), 1);
        let part = PartialEstimate::assemble(&q, [Ok(Estimate::approximate(5.0, 0.5))]).unwrap();
        assert_eq!(part.sum, 5.0);
        // Errors propagate.
        assert!(PartialEstimate::assemble(&q, [Err(PassError::EmptyInput("no match"))]).is_err());
    }

    #[test]
    fn merging_nothing_is_an_error() {
        assert!(PartialEstimate::merge(&[]).is_err());
    }

    #[test]
    fn merge_available_applies_the_stratified_availability_rule() {
        let answered = Ok(PartialEstimate::from_local(
            AggKind::Sum,
            Estimate::approximate(10.0, 3.0).with_hard_bounds(4.0, 16.0),
        ));
        let silent: Result<PartialEstimate> = Err(PassError::EmptyInput("no match"));

        // Mixed additive: the silent part contributes a boundless zero.
        let est =
            PartialEstimate::merge_available(AggKind::Sum, &[answered.clone(), silent.clone()])
                .unwrap();
        assert_eq!(est.value, 10.0);
        assert_eq!(est.ci_half, 3.0);
        assert_eq!(est.hard_bounds, None);
        assert!(!est.exact);

        // Mixed non-additive: the silent part is skipped and the merge
        // loses hard bounds and exactness.
        let min = Ok(PartialEstimate::from_local(
            AggKind::Min,
            Estimate::exact(2.0),
        ));
        let est = PartialEstimate::merge_available(AggKind::Min, &[min, silent.clone()]).unwrap();
        assert_eq!(est.value, 2.0);
        assert_eq!(est.hard_bounds, None);
        assert!(!est.exact);

        // All-silent: the first error propagates — no fabricated 0 ± 0.
        assert_eq!(
            PartialEstimate::merge_available(AggKind::Sum, &[silent.clone(), silent.clone()]),
            Err(PassError::EmptyInput("no match"))
        );
        // A single answering part merges to its local verbatim.
        let est = PartialEstimate::merge_available(AggKind::Sum, &[answered]).unwrap();
        assert_eq!(est.hard_bounds, Some((4.0, 16.0)));
        // A hard (non-availability) error aborts the merge.
        let hard: Result<PartialEstimate> = Err(PassError::InvalidParameter("k", "zero".into()));
        assert!(matches!(
            PartialEstimate::merge_available(AggKind::Sum, &[silent, hard]),
            Err(PassError::InvalidParameter(..))
        ));
    }

    #[test]
    fn merge_decomposition_skips_the_avg_sub_query() {
        let q = Query::new(AggKind::Avg, Rect::interval(0.0, 1.0));
        let expanded = PartialEstimate::merge_queries(&q);
        assert_eq!(expanded.len(), 2);
        assert_eq!(expanded[0].agg, AggKind::Count);
        assert_eq!(expanded[1].agg, AggKind::Sum);
        assert_eq!(PartialEstimate::merge_width(AggKind::Avg), 2);
        assert_eq!(PartialEstimate::merge_width(AggKind::Sum), 1);
        let sum_q = Query::new(AggKind::Sum, Rect::interval(0.0, 1.0));
        assert_eq!(PartialEstimate::merge_queries(&sum_q), vec![sum_q]);
    }

    #[test]
    fn assemble_merge_synthesizes_a_consistent_avg_local() {
        let q = Query::new(AggKind::Avg, Rect::interval(0.0, 1.0));
        let count = Estimate::approximate(10.0, 1.0).with_hard_bounds(8.0, 12.0);
        let sum = Estimate::approximate(30.0, 5.0).with_hard_bounds(24.0, 48.0);
        let part =
            PartialEstimate::assemble_merge(&q, [Ok(count.clone()), Ok(sum.clone())]).unwrap();
        assert_eq!(part.count, 10.0);
        assert_eq!(part.sum, 30.0);
        // The synthesized local is the delta-method ratio — exactly what
        // the K-way merge of this single partial must produce.
        let merged = PartialEstimate::merge(std::slice::from_ref(&part)).unwrap();
        assert_eq!(merged.value, 3.0);
        let want_ci = (25.0f64 + 9.0).sqrt() / 10.0;
        assert!((merged.ci_half - want_ci).abs() < 1e-12);
        // Corner-derived hard bounds: sum/count over the box extremes.
        assert_eq!(merged.hard_bounds, Some((2.0, 6.0)));
        assert!(!merged.exact);

        // Exact components make the ratio exact with degenerate bounds.
        let exact = PartialEstimate::assemble_merge(
            &q,
            [Ok(Estimate::exact(4.0)), Ok(Estimate::exact(20.0))],
        )
        .unwrap();
        assert!(exact.local.exact);
        assert_eq!(exact.local.value, 5.0);
        assert_eq!(exact.local.hard_bounds, Some((5.0, 5.0)));

        // An estimated-empty selection refuses, like the engines do.
        assert!(PartialEstimate::assemble_merge(
            &q,
            [
                Ok(Estimate::approximate(0.0, 0.0)),
                Ok(Estimate::approximate(0.0, 0.0))
            ],
        )
        .is_err());
        // A non-positive count lower bound withholds hard bounds.
        let unbounded = PartialEstimate::assemble_merge(
            &q,
            [
                Ok(Estimate::approximate(10.0, 1.0).with_hard_bounds(0.0, 12.0)),
                Ok(sum),
            ],
        )
        .unwrap();
        assert_eq!(unbounded.local.hard_bounds, None);
    }
}
