//! Completion tickets for asynchronously served queries.
//!
//! The serving front-end (`pass::Serve`) decouples *submitting* a query
//! from *executing* it: `submit` enqueues the request and immediately
//! returns a [`Ticket`], which the client polls ([`Ticket::poll`]) or
//! blocks on ([`Ticket::wait`]) for the [`ServeOutcome`]. This is the
//! dependency-free equivalent of a oneshot-channel future — a shared
//! `Mutex<Option<outcome>>` plus a `Condvar` — chosen over an async
//! runtime because the workspace is offline (no tokio) and the waiting
//! side of a query server needs nothing fancier.
//!
//! The producer half is [`TicketSlot`]: the serving worker that executes
//! (or sheds) the request calls [`TicketSlot::fulfill`] exactly once. A
//! slot dropped unfulfilled (worker panic, aborted shutdown) resolves
//! its ticket to [`ServeOutcome::Cancelled`], so a client can never
//! block forever on a request the server lost.

use std::sync::Arc;

use crate::chaos::{Condvar, Mutex};
use std::time::Duration;

use crate::estimate::Estimate;
use crate::Result;

/// The terminal state of one served request.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeOutcome {
    /// The request executed: one result per submitted query, in order.
    Done(Vec<Result<Estimate>>),
    /// Admission control refused the request — the queue was at
    /// capacity when it was submitted. Nothing executed; retry later or
    /// shed the work.
    Rejected,
    /// The request's deadline passed while it was still queued; it was
    /// discarded **without executing** (deadlines fail fast rather than
    /// occupying a worker with an answer nobody is waiting for).
    Expired,
    /// The server shut down (or lost its worker) before the request
    /// executed.
    Cancelled,
}

impl ServeOutcome {
    /// The executed results, or `None` for any non-[`Done`](Self::Done)
    /// outcome.
    pub fn results(self) -> Option<Vec<Result<Estimate>>> {
        match self {
            ServeOutcome::Done(results) => Some(results),
            _ => None,
        }
    }

    /// Whether the request actually executed.
    pub fn is_done(&self) -> bool {
        matches!(self, ServeOutcome::Done(_))
    }
}

#[derive(Debug, Default)]
struct TicketState {
    outcome: Option<ServeOutcome>,
    /// Global completion stamp (server-assigned, monotonically
    /// increasing) — lets tests and clients observe *relative* completion
    /// order, e.g. that interactive requests finished before co-queued
    /// bulk ones. See `Ticket::completion_index` for the multi-worker
    /// caveat.
    seq: Option<u64>,
}

#[derive(Debug, Default)]
struct Shared {
    state: Mutex<TicketState>,
    done: Condvar,
}

/// The client half of one served request: poll or block for its
/// [`ServeOutcome`].
///
/// Tickets are cheap (`Arc` internally) and cloneable; every clone
/// observes the same outcome.
///
/// # Examples
///
/// ```
/// use pass_common::{ServeOutcome, Ticket};
///
/// let (ticket, slot) = Ticket::pending();
/// assert_eq!(ticket.poll(), None); // non-blocking: still pending
///
/// // The serving worker resolves the slot exactly once...
/// slot.fulfill(ServeOutcome::Done(Vec::new()), Some(0));
///
/// // ...and every clone of the ticket observes the same outcome.
/// let twin = ticket.clone();
/// assert!(ticket.wait().is_done());
/// assert_eq!(twin.completion_index(), Some(0));
/// ```
#[derive(Debug, Clone)]
pub struct Ticket {
    shared: Arc<Shared>,
}

impl Ticket {
    /// A pending ticket plus the [`TicketSlot`] that will resolve it.
    pub fn pending() -> (Ticket, TicketSlot) {
        let shared = Arc::new(Shared::default());
        (
            Ticket {
                shared: Arc::clone(&shared),
            },
            TicketSlot {
                shared: Some(shared),
            },
        )
    }

    /// A ticket born resolved — how admission control returns
    /// [`ServeOutcome::Rejected`] synchronously while keeping one
    /// uniform submission API.
    pub fn resolved(outcome: ServeOutcome) -> Ticket {
        let (ticket, slot) = Ticket::pending();
        slot.fulfill(outcome, None);
        ticket
    }

    /// Non-blocking check: the outcome if resolved, else `None`.
    pub fn poll(&self) -> Option<ServeOutcome> {
        self.shared.state.lock().outcome.clone()
    }

    /// Whether the ticket has resolved.
    pub fn is_resolved(&self) -> bool {
        self.poll().is_some()
    }

    /// Block until the outcome arrives.
    pub fn wait(&self) -> ServeOutcome {
        let mut state = self.shared.state.lock();
        loop {
            if let Some(outcome) = &state.outcome {
                return outcome.clone();
            }
            state = self.shared.done.wait(state);
        }
    }

    /// Block for at most `timeout`; `None` if still pending afterwards.
    pub fn wait_timeout(&self, timeout: Duration) -> Option<ServeOutcome> {
        let deadline = std::time::Instant::now() + timeout;
        let mut state = self.shared.state.lock();
        loop {
            if let Some(outcome) = &state.outcome {
                return Some(outcome.clone());
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                return None;
            }
            let (next, _timed_out) = self.shared.done.wait_timeout(state, deadline - now);
            state = next;
        }
    }

    /// The server's completion stamp. With a **single** serving worker,
    /// stamps totally order completions (smaller = finished earlier) —
    /// which is how the contract tests observe priority ordering. With
    /// multiple workers, stamps from *concurrently* completing requests
    /// may interleave with the order a client happens to observe
    /// resolutions in; only same-worker completions are strictly
    /// ordered. `None` while pending or for outcomes that never reached
    /// a worker (e.g. [`ServeOutcome::Rejected`]).
    pub fn completion_index(&self) -> Option<u64> {
        self.shared.state.lock().seq
    }
}

/// The producer half of a [`Ticket`]: resolves it exactly once.
///
/// Dropping an unfulfilled slot resolves the ticket to
/// [`ServeOutcome::Cancelled`] — the safety net that keeps clients from
/// blocking forever if the serving worker unwinds.
#[derive(Debug)]
pub struct TicketSlot {
    shared: Option<Arc<Shared>>,
}

impl TicketSlot {
    /// Resolve the ticket with `outcome` (and, for executed requests,
    /// the server's completion stamp). Consumes the slot: an outcome is
    /// final.
    pub fn fulfill(mut self, outcome: ServeOutcome, seq: Option<u64>) {
        self.fulfill_inner(outcome, seq);
    }

    fn fulfill_inner(&mut self, outcome: ServeOutcome, seq: Option<u64>) {
        if let Some(shared) = self.shared.take() {
            let mut state = shared.state.lock();
            state.outcome = Some(outcome);
            state.seq = seq;
            drop(state);
            shared.done.notify_all();
        }
    }
}

impl Drop for TicketSlot {
    fn drop(&mut self) {
        self.fulfill_inner(ServeOutcome::Cancelled, None);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poll_sees_pending_then_resolved() {
        let (ticket, slot) = Ticket::pending();
        assert_eq!(ticket.poll(), None);
        assert!(!ticket.is_resolved());
        slot.fulfill(ServeOutcome::Done(vec![Ok(Estimate::exact(7.0))]), Some(3));
        let outcome = ticket.poll().unwrap();
        assert!(outcome.is_done());
        assert_eq!(outcome.results().unwrap()[0].as_ref().unwrap().value, 7.0);
        assert_eq!(ticket.completion_index(), Some(3));
    }

    #[test]
    fn wait_blocks_until_fulfilled_across_threads() {
        let (ticket, slot) = Ticket::pending();
        std::thread::scope(|s| {
            let waiter = s.spawn(|| ticket.wait());
            std::thread::sleep(Duration::from_millis(10));
            slot.fulfill(ServeOutcome::Expired, None);
            assert_eq!(waiter.join().unwrap(), ServeOutcome::Expired);
        });
    }

    #[test]
    fn wait_timeout_expires_then_succeeds() {
        let (ticket, slot) = Ticket::pending();
        assert_eq!(ticket.wait_timeout(Duration::from_millis(5)), None);
        slot.fulfill(ServeOutcome::Rejected, None);
        assert_eq!(
            ticket.wait_timeout(Duration::from_millis(5)),
            Some(ServeOutcome::Rejected)
        );
    }

    #[test]
    fn born_resolved_tickets_never_block() {
        let ticket = Ticket::resolved(ServeOutcome::Rejected);
        assert_eq!(ticket.wait(), ServeOutcome::Rejected);
        assert_eq!(ticket.completion_index(), None);
        assert!(!ServeOutcome::Rejected.is_done());
        assert_eq!(ServeOutcome::Rejected.results(), None);
    }

    #[test]
    fn dropping_the_slot_cancels_instead_of_hanging() {
        let (ticket, slot) = Ticket::pending();
        drop(slot);
        assert_eq!(ticket.wait(), ServeOutcome::Cancelled);
    }

    #[test]
    fn clones_observe_the_same_outcome() {
        let (ticket, slot) = Ticket::pending();
        let twin = ticket.clone();
        slot.fulfill(ServeOutcome::Done(vec![]), Some(1));
        assert!(ticket.wait().is_done());
        assert!(twin.wait().is_done());
        assert_eq!(twin.completion_index(), Some(1));
    }
}
