//! Prefix sums over the aggregation column.
//!
//! Section 4.3: "In an efficient implementation of `M` the subquery variances
//! are computed with pre-computed prefix sums." [`PrefixSums`] stores the
//! running Σt and Σt² of a value sequence (sorted by predicate), giving O(1)
//! range sums and therefore O(1) evaluation of every `V_i(q)` variance oracle
//! used by the partitioning optimizers.

use crate::kahan::KahanSum;

/// Cumulative Σt and Σt² with O(1) half-open range queries.
#[derive(Debug, Clone)]
pub struct PrefixSums {
    /// `cum[i]` = sum of the first `i` values; length n+1.
    cum: Vec<f64>,
    /// `cum_sq[i]` = sum of squares of the first `i` values; length n+1.
    cum_sq: Vec<f64>,
}

impl PrefixSums {
    /// Build from the value sequence (already ordered by predicate key).
    pub fn build(values: &[f64]) -> Self {
        let mut cum = Vec::with_capacity(values.len() + 1);
        let mut cum_sq = Vec::with_capacity(values.len() + 1);
        cum.push(0.0);
        cum_sq.push(0.0);
        let mut s = KahanSum::new();
        let mut s2 = KahanSum::new();
        for &v in values {
            s.add(v);
            s2.add(v * v);
            cum.push(s.total());
            cum_sq.push(s2.total());
        }
        Self { cum, cum_sq }
    }

    /// Number of underlying values.
    #[inline]
    pub fn len(&self) -> usize {
        self.cum.len() - 1
    }

    /// True when built over an empty sequence.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Σ t over the half-open index range `[lo, hi)`.
    #[inline]
    pub fn range_sum(&self, lo: usize, hi: usize) -> f64 {
        debug_assert!(lo <= hi && hi <= self.len());
        self.cum[hi] - self.cum[lo]
    }

    /// Σ t² over the half-open index range `[lo, hi)`.
    #[inline]
    pub fn range_sum_sq(&self, lo: usize, hi: usize) -> f64 {
        debug_assert!(lo <= hi && hi <= self.len());
        self.cum_sq[hi] - self.cum_sq[lo]
    }

    /// The scatter term `n·Σt² − (Σt)²` over `[lo, hi)` with `n = hi - lo`.
    ///
    /// This is the V_i(q) kernel shared by the SUM/COUNT/AVG variance
    /// formulas of Section 4.2.1 (there written `N_i Σ t² − (Σ t)²`).
    /// Clamped at zero: catastrophic cancellation on near-constant ranges can
    /// otherwise produce tiny negative values.
    #[inline]
    pub fn scatter(&self, lo: usize, hi: usize) -> f64 {
        let n = (hi - lo) as f64;
        let s = self.range_sum(lo, hi);
        (n * self.range_sum_sq(lo, hi) - s * s).max(0.0)
    }

    /// Population variance of the values in `[lo, hi)` (scatter / n²).
    #[inline]
    pub fn range_population_variance(&self, lo: usize, hi: usize) -> f64 {
        let n = hi - lo;
        if n < 2 {
            return 0.0;
        }
        self.scatter(lo, hi) / (n as f64 * n as f64)
    }

    /// Mean of the values in `[lo, hi)`; 0.0 on an empty range.
    #[inline]
    pub fn range_mean(&self, lo: usize, hi: usize) -> f64 {
        if lo == hi {
            return 0.0;
        }
        self.range_sum(lo, hi) / (hi - lo) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::population_variance;

    fn naive_sum(v: &[f64], lo: usize, hi: usize) -> f64 {
        v[lo..hi].iter().sum()
    }

    #[test]
    fn range_queries_match_naive() {
        let v: Vec<f64> = (0..50).map(|i| (i as f64) * 1.5 - 10.0).collect();
        let p = PrefixSums::build(&v);
        assert_eq!(p.len(), 50);
        for lo in 0..=50 {
            for hi in lo..=50 {
                assert!((p.range_sum(lo, hi) - naive_sum(&v, lo, hi)).abs() < 1e-9);
                let naive_sq: f64 = v[lo..hi].iter().map(|x| x * x).sum();
                assert!((p.range_sum_sq(lo, hi) - naive_sq).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn empty_sequence() {
        let p = PrefixSums::build(&[]);
        assert!(p.is_empty());
        assert_eq!(p.range_sum(0, 0), 0.0);
        assert_eq!(p.range_mean(0, 0), 0.0);
    }

    #[test]
    fn scatter_matches_population_variance() {
        let v = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0];
        let p = PrefixSums::build(&v);
        for lo in 0..v.len() {
            for hi in (lo + 2)..=v.len() {
                let pv = population_variance(&v[lo..hi]);
                assert!(
                    (p.range_population_variance(lo, hi) - pv).abs() < 1e-10,
                    "range [{lo},{hi})"
                );
            }
        }
    }

    #[test]
    fn scatter_never_negative_on_constant_data() {
        // Constant data at awkward magnitude: cancellation territory.
        let v = vec![1e8 + 0.1; 1000];
        let p = PrefixSums::build(&v);
        for hi in 2..=1000 {
            assert!(p.scatter(0, hi) >= 0.0);
        }
    }

    #[test]
    fn singleton_ranges() {
        let v = [7.0, -2.0];
        let p = PrefixSums::build(&v);
        assert_eq!(p.range_sum(0, 1), 7.0);
        assert_eq!(p.range_population_variance(0, 1), 0.0);
        assert_eq!(p.range_mean(1, 2), -2.0);
    }
}
