//! Declarative engine specifications — the single way call sites describe
//! an AQP engine.
//!
//! Every engine of the paper's Section 5 evaluation (PASS plus the six
//! baselines) is described by one [`EngineSpec`] variant. A spec is plain
//! data: it can be compared, cloned, serialized to JSON and parsed back,
//! and handed to the engine registry (`pass_baselines::Engine::build`) or
//! a `pass::Session` to construct the live synopsis. Built engines report
//! the spec they were constructed from via
//! [`Synopsis::spec`](crate::Synopsis::spec), so `build(table, spec).spec()
//! == spec` round-trips.

use crate::agg::AggKind;
use crate::error::{PassError, Result};
use crate::json::Json;
use crate::stats::LAMBDA_99;

/// Which partitioning optimizer drives PASS leaf selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PartitionStrategy {
    /// The paper's ADP (sampled + discretized DP) tuned for an aggregate
    /// kind; in d > 1 this becomes the KD-PASS max-variance expansion.
    Adp(AggKind),
    /// Equal-depth strata (EQ); in d > 1 the KD-US breadth-first expansion.
    EqualDepth,
    /// The AQP++ hill-climbing comparator (1-D only; d > 1 falls back to
    /// breadth-first).
    HillClimb,
    /// Equal key-width buckets (1-D only; d > 1 falls back to
    /// breadth-first).
    EqualWidth,
}

/// Full parameterization of a PASS synopsis (the `PassBuilder` knobs as
/// plain data). `..PassSpec::default()` gives the paper's Section 5.1.3
/// defaults.
#[derive(Debug, Clone, PartialEq)]
pub struct PassSpec {
    /// Number of leaf partitions `k` (the precomputation budget).
    pub partitions: usize,
    /// Per-stratum sampling rate (fraction of each leaf's rows).
    pub sample_rate: f64,
    /// Hard cap on total stored samples (the BSS storage-bounded mode).
    pub total_samples: Option<usize>,
    /// Partitioning optimizer.
    pub strategy: PartitionStrategy,
    /// CI scale λ (default 2.576 → 99%).
    pub lambda: f64,
    /// Store sample values as f32 deltas from the partition mean
    /// (Section 3.4 compression).
    pub delta_encode: bool,
    /// The AVG 0-variance rule (default on).
    pub zero_variance_rule: bool,
    /// ADP optimization sample size `m`.
    pub opt_samples: usize,
    /// ADP meaningful-overlap fraction δ.
    pub adp_delta: f64,
    /// KD-PASS leaf-depth balance limit.
    pub kd_balance: usize,
    /// Master seed for all randomized build steps.
    pub seed: u64,
    /// Workload-shift mode: index only these predicate dimensions in the
    /// partition tree while samples keep every predicate column.
    pub tree_dims: Option<Vec<usize>>,
    /// Display-name override for benchmark variants (`"PASS-BSS2x"`).
    pub name: Option<String>,
}

impl Default for PassSpec {
    fn default() -> Self {
        PassSpec {
            partitions: 64,
            sample_rate: 0.005,
            total_samples: None,
            strategy: PartitionStrategy::Adp(AggKind::Sum),
            lambda: LAMBDA_99,
            delta_encode: false,
            zero_variance_rule: true,
            opt_samples: 4096,
            adp_delta: 0.01,
            kd_balance: 2,
            seed: 0x9A55,
            tree_dims: None,
            name: None,
        }
    }
}

/// A fact ⋈ dimension foreign-key join scenario, as plain data.
///
/// The *fact* side is the table handed to the engine registry
/// (`pass_baselines::Engine::build`), exactly as for every single-table
/// engine; the *dimension* side travels **inside the spec** — a unique
/// key column plus zero or more attribute columns — so the spec stays
/// self-contained: it JSON round-trips, reseeds shard-by-shard, and a
/// snapshot header alone is enough to rebuild the dimension hash index
/// at load time. Queries against the built `JoinSynopsis` span both
/// sides: predicate dimensions `0..fact_dims` constrain the fact
/// columns (the FK column included) and dimensions `fact_dims..` the
/// dimension attributes, in `dim_attrs` order.
///
/// Keys and attributes must be finite: the JSON writer emits non-finite
/// floats as `null` (and `-0.0` as `0`, losing the sign bit), so only
/// finite values survive a spec round trip — [`validate`](Self::validate)
/// rejects the rest up front, and key handling canonicalizes `-0.0` to
/// `0.0` wherever keys are hashed or compared (matching
/// [`ShardPlan::key_shard`]).
#[derive(Debug, Clone, PartialEq)]
pub struct JoinSpec {
    /// Fact-table predicate dimension holding the foreign key.
    pub fk_dim: usize,
    /// Dimension-side primary keys (finite, unique up to `-0.0 == 0.0`).
    pub dim_keys: Vec<f64>,
    /// Dimension-side attribute columns, column-major:
    /// `dim_attrs[col][row]` (every column as long as `dim_keys`).
    pub dim_attrs: Vec<Vec<f64>>,
    /// Fact-side sample size in rows.
    pub k: usize,
    /// Sampling seed.
    pub seed: u64,
}

impl JoinSpec {
    /// A join spec with seed 0 (use [`EngineSpec::with_seed`] to reseed).
    pub fn new(fk_dim: usize, dim_keys: Vec<f64>, dim_attrs: Vec<Vec<f64>>, k: usize) -> Self {
        JoinSpec {
            fk_dim,
            dim_keys,
            dim_attrs,
            k,
            seed: 0,
        }
    }

    /// Predicate dimensions the join adds on top of the fact table's
    /// (one per dimension attribute column).
    pub fn attr_dims(&self) -> usize {
        self.dim_attrs.len()
    }

    /// Reject specs that cannot build or cannot round-trip: a zero
    /// sample budget, ragged attribute columns, non-finite keys or
    /// attributes, and duplicate keys (after `-0.0` canonicalization).
    /// An **empty** dimension side is valid — every fact row dangles and
    /// the join is empty, which the estimator answers honestly.
    pub fn validate(&self) -> Result<()> {
        if self.k == 0 {
            return Err(PassError::InvalidParameter(
                "k",
                "a join synopsis needs at least one fact-side sample row".into(),
            ));
        }
        for (i, col) in self.dim_attrs.iter().enumerate() {
            if col.len() != self.dim_keys.len() {
                return Err(PassError::InvalidParameter(
                    "dim_attrs",
                    format!(
                        "attribute column {i} has {} rows but the key column has {}",
                        col.len(),
                        self.dim_keys.len()
                    ),
                ));
            }
            if col.iter().any(|v| !v.is_finite()) {
                return Err(PassError::InvalidParameter(
                    "dim_attrs",
                    format!("attribute column {i} holds a non-finite value"),
                ));
            }
        }
        let mut seen = std::collections::HashSet::with_capacity(self.dim_keys.len());
        for &key in &self.dim_keys {
            if !key.is_finite() {
                return Err(PassError::InvalidParameter(
                    "dim_keys",
                    "dimension keys must be finite".into(),
                ));
            }
            // Canonicalize -0.0 so the two equal-comparing zeros cannot
            // smuggle in a duplicate key.
            let canonical = if key == 0.0 { 0.0f64 } else { key };
            if !seen.insert(canonical.to_bits()) {
                return Err(PassError::InvalidParameter(
                    "dim_keys",
                    format!("duplicate dimension key {key}"),
                ));
            }
        }
        Ok(())
    }

    fn f64_arr(values: &[f64]) -> Json {
        Json::Arr(values.iter().map(|&v| Json::from(v)).collect())
    }
}

/// How one logical table is cut into K disjoint shards, each served by
/// its own synopsis (`pass_baselines::ShardedSynopsis`).
///
/// A plan is plain data, like [`EngineSpec`]: it travels inside
/// [`EngineSpec::Sharded`], round-trips through JSON, and is interpreted
/// against a concrete table by `pass_table::Table::split`. Both
/// partitioners produce *disjoint, exhaustive* shards — every row lands
/// in exactly one shard — which is what makes per-shard COUNT/SUM
/// estimates add up exactly and their variances add as independent
/// strata.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShardPlan {
    /// `shards` contiguous row ranges of near-equal size (the parallel
    /// bulk-build layout: shard i gets rows `[i·n/K, (i+1)·n/K)`).
    RowRange {
        /// Number of shards K (≥ 1).
        shards: usize,
    },
    /// Rows are routed by a deterministic hash of predicate column
    /// `dim`'s bit pattern — co-locating equal predicate keys, the layout
    /// for hash-distributed storage.
    HashDim {
        /// Predicate dimension whose value is hashed.
        dim: usize,
        /// Number of shards K (≥ 1).
        shards: usize,
    },
}

impl ShardPlan {
    /// A row-range plan with `shards` shards.
    pub fn row_range(shards: usize) -> Self {
        ShardPlan::RowRange { shards }
    }

    /// A hash plan over predicate dimension `dim` with `shards` shards.
    pub fn hash_dim(dim: usize, shards: usize) -> Self {
        ShardPlan::HashDim { dim, shards }
    }

    /// Number of shards the plan requests.
    pub fn shards(&self) -> usize {
        match *self {
            ShardPlan::RowRange { shards } | ShardPlan::HashDim { shards, .. } => shards,
        }
    }

    /// Reject degenerate plans (zero shards).
    pub fn validate(&self) -> Result<()> {
        if self.shards() == 0 {
            return Err(PassError::InvalidParameter(
                "shards",
                "a shard plan needs at least one shard".into(),
            ));
        }
        Ok(())
    }

    /// Deterministic shard index of a predicate key under a `shards`-way
    /// hash plan (the workspace's canonical SplitMix64 mixer,
    /// [`crate::rng::derive_seed`], over the key's bit pattern under a
    /// dedicated stream label; `-0.0` canonicalizes to `0.0` so
    /// equal-comparing keys co-locate).
    pub fn key_shard(key: f64, shards: usize) -> usize {
        // Stream label separating key hashing from every seeded RNG.
        const KEY_STREAM: u64 = 0x5AAD_C0DE;
        let canonical = if key == 0.0 { 0.0f64 } else { key };
        let mixed = crate::rng::derive_seed(canonical.to_bits(), KEY_STREAM);
        (mixed % shards.max(1) as u64) as usize
    }

    /// Short kind label, also the JSON tag.
    pub fn kind(&self) -> &'static str {
        match self {
            ShardPlan::RowRange { .. } => "row_range",
            ShardPlan::HashDim { .. } => "hash_dim",
        }
    }

    fn to_json_value(&self) -> Json {
        let mut fields = vec![
            ("kind", Json::from(self.kind())),
            ("shards", Json::from(self.shards())),
        ];
        if let ShardPlan::HashDim { dim, .. } = self {
            fields.push(("dim", Json::from(*dim)));
        }
        Json::obj(fields)
    }

    fn from_json_value(doc: &Json) -> Result<ShardPlan> {
        let field_err =
            |name: &str| PassError::Load(format!("ShardPlan JSON: missing or invalid `{name}`"));
        let shards = doc
            .get("shards")
            .and_then(Json::as_usize)
            .ok_or(field_err("shards"))?;
        match doc.get("kind").and_then(Json::as_str) {
            Some("row_range") => Ok(ShardPlan::RowRange { shards }),
            Some("hash_dim") => Ok(ShardPlan::HashDim {
                dim: doc
                    .get("dim")
                    .and_then(Json::as_usize)
                    .ok_or(field_err("dim"))?,
                shards,
            }),
            _ => Err(field_err("kind")),
        }
    }
}

/// One engine of the Section 5 evaluation, as declarative configuration.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineSpec {
    /// PASS (the paper's contribution).
    Pass(PassSpec),
    /// US — one uniform sample of `k` rows.
    Uniform {
        /// Sample size in rows.
        k: usize,
        /// Sampling seed.
        seed: u64,
    },
    /// ST — `strata` equal-depth strata sharing a budget of `k` samples.
    Stratified {
        /// Number of equal-depth strata.
        strata: usize,
        /// Total sample budget across strata.
        k: usize,
        /// Sampling seed.
        seed: u64,
    },
    /// AQP++ (1-D) / KD-US (d > 1): `partitions` precomputed aggregates +
    /// a uniform sample of `k` rows; `tree_dims` selects the
    /// workload-shift build.
    AqpPlusPlus {
        /// Number of precomputed partitions.
        partitions: usize,
        /// Uniform sample size in rows.
        k: usize,
        /// Sampling seed.
        seed: u64,
        /// Workload-shift mode: predicate dimensions the tree indexes.
        tree_dims: Option<Vec<usize>>,
    },
    /// VerdictDB-style scramble of `ratio` of the table.
    Verdict {
        /// Fraction of the table kept in the scramble.
        ratio: f64,
        /// Scramble seed.
        seed: u64,
    },
    /// DeepDB-style SPN trained on a `ratio` row sample.
    Spn {
        /// Fraction of the table the SPN is trained on.
        ratio: f64,
        /// Training-sample seed.
        seed: u64,
    },
    /// Fact ⋈ dimension FK join: the fact side (the build table) is
    /// uniformly sampled, the dimension side (carried inside the spec)
    /// is hash-indexed, and SUM/COUNT/AVG over a predicate rectangle
    /// spanning both sides is answered with Horvitz–Thompson-style
    /// unbiased estimates (`pass_baselines::JoinSynopsis`).
    Join(JoinSpec),
    /// One logical table partitioned across K per-shard engines (each
    /// built from `inner` over its shard) whose partial estimates are
    /// merged at query time (`pass_baselines::ShardedSynopsis`).
    Sharded {
        /// The engine built over every shard.
        inner: Box<EngineSpec>,
        /// How the table is cut into shards.
        plan: ShardPlan,
    },
    /// Escape hatch for hand-built synopses that live outside the
    /// registry; carries only the display name. Cannot be built.
    Opaque {
        /// Display name of the hand-built synopsis.
        name: String,
    },
}

impl EngineSpec {
    /// PASS with the paper's defaults.
    pub fn pass() -> Self {
        EngineSpec::Pass(PassSpec::default())
    }

    /// US with `k` sampled rows.
    pub fn uniform(k: usize) -> Self {
        EngineSpec::Uniform { k, seed: 0 }
    }

    /// ST with `strata` strata and `k` total samples.
    pub fn stratified(strata: usize, k: usize) -> Self {
        EngineSpec::Stratified { strata, k, seed: 0 }
    }

    /// AQP++/KD-US with `partitions` aggregates and `k` sampled rows.
    pub fn aqppp(partitions: usize, k: usize) -> Self {
        EngineSpec::AqpPlusPlus {
            partitions,
            k,
            seed: 0,
            tree_dims: None,
        }
    }

    /// VerdictDB-style scramble of `ratio` of the table.
    pub fn verdict(ratio: f64) -> Self {
        EngineSpec::Verdict { ratio, seed: 0 }
    }

    /// DeepDB-style SPN trained on `ratio` of the table.
    pub fn spn(ratio: f64) -> Self {
        EngineSpec::Spn { ratio, seed: 0 }
    }

    /// A fact ⋈ dimension FK join over `spec`'s dimension side.
    pub fn join(spec: JoinSpec) -> Self {
        EngineSpec::Join(spec)
    }

    /// `inner` sharded across the table according to `plan`.
    pub fn sharded(inner: EngineSpec, plan: ShardPlan) -> Self {
        EngineSpec::Sharded {
            inner: Box::new(inner),
            plan,
        }
    }

    /// Return the spec with its seed replaced (whichever variant; a
    /// sharded spec reseeds its inner engine).
    pub fn with_seed(mut self, new_seed: u64) -> Self {
        match &mut self {
            EngineSpec::Pass(p) => p.seed = new_seed,
            EngineSpec::Uniform { seed, .. }
            | EngineSpec::Stratified { seed, .. }
            | EngineSpec::AqpPlusPlus { seed, .. }
            | EngineSpec::Verdict { seed, .. }
            | EngineSpec::Spn { seed, .. } => *seed = new_seed,
            EngineSpec::Join(j) => j.seed = new_seed,
            EngineSpec::Sharded { inner, .. } => {
                let reseeded = std::mem::replace(inner.as_mut(), EngineSpec::uniform(0));
                **inner = reseeded.with_seed(new_seed);
            }
            EngineSpec::Opaque { .. } => {}
        }
        self
    }

    /// The randomization seed the spec's builds draw from (the innermost
    /// engine's seed for sharded specs); `None` for opaque specs.
    pub fn seed(&self) -> Option<u64> {
        match self {
            EngineSpec::Pass(p) => Some(p.seed),
            EngineSpec::Uniform { seed, .. }
            | EngineSpec::Stratified { seed, .. }
            | EngineSpec::AqpPlusPlus { seed, .. }
            | EngineSpec::Verdict { seed, .. }
            | EngineSpec::Spn { seed, .. } => Some(*seed),
            EngineSpec::Join(j) => Some(j.seed),
            EngineSpec::Sharded { inner, .. } => inner.seed(),
            EngineSpec::Opaque { .. } => None,
        }
    }

    /// Short kind label (`"pass"`, `"uniform"`, ...), also the JSON tag.
    pub fn kind(&self) -> &'static str {
        match self {
            EngineSpec::Pass(_) => "pass",
            EngineSpec::Uniform { .. } => "uniform",
            EngineSpec::Stratified { .. } => "stratified",
            EngineSpec::AqpPlusPlus { .. } => "aqppp",
            EngineSpec::Verdict { .. } => "verdict",
            EngineSpec::Spn { .. } => "spn",
            EngineSpec::Join(_) => "join",
            EngineSpec::Sharded { .. } => "sharded",
            EngineSpec::Opaque { .. } => "opaque",
        }
    }

    /// Serialize to a canonical single-line JSON document.
    pub fn to_json(&self) -> String {
        self.to_json_value().to_string()
    }

    fn to_json_value(&self) -> Json {
        // Seeds are full-range u64 but JSON numbers are f64 (53-bit
        // integer precision), so large seeds are emitted as decimal
        // strings; the parser accepts both forms.
        let seed_json = |seed: u64| {
            if seed <= (1u64 << 53) {
                Json::from(seed)
            } else {
                Json::from(seed.to_string())
            }
        };
        let mut fields: Vec<(&'static str, Json)> = vec![("engine", Json::from(self.kind()))];
        match self {
            EngineSpec::Pass(p) => {
                fields.push(("partitions", Json::from(p.partitions)));
                fields.push(("sample_rate", Json::from(p.sample_rate)));
                if let Some(total) = p.total_samples {
                    fields.push(("total_samples", Json::from(total)));
                }
                let (strategy, strategy_agg) = match p.strategy {
                    PartitionStrategy::Adp(kind) => ("adp", Some(kind)),
                    PartitionStrategy::EqualDepth => ("equal_depth", None),
                    PartitionStrategy::HillClimb => ("hill_climb", None),
                    PartitionStrategy::EqualWidth => ("equal_width", None),
                };
                fields.push(("strategy", Json::from(strategy)));
                if let Some(kind) = strategy_agg {
                    fields.push(("strategy_agg", Json::from(kind.to_string())));
                }
                fields.push(("lambda", Json::from(p.lambda)));
                fields.push(("delta_encode", Json::from(p.delta_encode)));
                fields.push(("zero_variance_rule", Json::from(p.zero_variance_rule)));
                fields.push(("opt_samples", Json::from(p.opt_samples)));
                fields.push(("adp_delta", Json::from(p.adp_delta)));
                fields.push(("kd_balance", Json::from(p.kd_balance)));
                fields.push(("seed", seed_json(p.seed)));
                if let Some(dims) = &p.tree_dims {
                    fields.push((
                        "tree_dims",
                        Json::Arr(dims.iter().map(|&d| Json::from(d)).collect()),
                    ));
                }
                if let Some(name) = &p.name {
                    fields.push(("name", Json::from(name.clone())));
                }
            }
            EngineSpec::Uniform { k, seed } => {
                fields.push(("k", Json::from(*k)));
                fields.push(("seed", seed_json(*seed)));
            }
            EngineSpec::Stratified { strata, k, seed } => {
                fields.push(("strata", Json::from(*strata)));
                fields.push(("k", Json::from(*k)));
                fields.push(("seed", seed_json(*seed)));
            }
            EngineSpec::AqpPlusPlus {
                partitions,
                k,
                seed,
                tree_dims,
            } => {
                fields.push(("partitions", Json::from(*partitions)));
                fields.push(("k", Json::from(*k)));
                fields.push(("seed", seed_json(*seed)));
                if let Some(dims) = tree_dims {
                    fields.push((
                        "tree_dims",
                        Json::Arr(dims.iter().map(|&d| Json::from(d)).collect()),
                    ));
                }
            }
            EngineSpec::Verdict { ratio, seed } | EngineSpec::Spn { ratio, seed } => {
                fields.push(("ratio", Json::from(*ratio)));
                fields.push(("seed", seed_json(*seed)));
            }
            EngineSpec::Join(j) => {
                fields.push(("fk_dim", Json::from(j.fk_dim)));
                fields.push(("k", Json::from(j.k)));
                fields.push(("seed", seed_json(j.seed)));
                fields.push(("dim_keys", JoinSpec::f64_arr(&j.dim_keys)));
                fields.push((
                    "dim_attrs",
                    Json::Arr(
                        j.dim_attrs
                            .iter()
                            .map(|col| JoinSpec::f64_arr(col))
                            .collect(),
                    ),
                ));
            }
            EngineSpec::Sharded { inner, plan } => {
                fields.push(("plan", plan.to_json_value()));
                fields.push(("inner", inner.to_json_value()));
            }
            EngineSpec::Opaque { name } => {
                fields.push(("name", Json::from(name.clone())));
            }
        }
        Json::obj(fields)
    }

    /// Parse a spec previously produced by [`to_json`](Self::to_json).
    pub fn from_json(text: &str) -> Result<EngineSpec> {
        Self::from_json_value(&Json::parse(text)?)
    }

    /// Parse a spec from an already-parsed JSON value (recursion point
    /// for the nested `inner` spec of [`EngineSpec::Sharded`]).
    fn from_json_value(doc: &Json) -> Result<EngineSpec> {
        let field_err =
            |name: &str| PassError::Load(format!("EngineSpec JSON: missing or invalid `{name}`"));
        let usize_field = |name: &str| {
            doc.get(name)
                .and_then(Json::as_usize)
                .ok_or(field_err(name))
        };
        // Seeds arrive as a JSON number or, above 2^53, a decimal string.
        let u64_field = |name: &str| {
            doc.get(name)
                .and_then(|v| {
                    v.as_u64()
                        .or_else(|| v.as_str().and_then(|s| s.parse::<u64>().ok()))
                })
                .ok_or(field_err(name))
        };
        let f64_field = |name: &str| doc.get(name).and_then(Json::as_f64).ok_or(field_err(name));
        let tree_dims = match doc.get("tree_dims") {
            None => None,
            Some(value) => Some(
                value
                    .as_arr()
                    .ok_or(field_err("tree_dims"))?
                    .iter()
                    .map(|d| d.as_usize().ok_or(field_err("tree_dims")))
                    .collect::<Result<Vec<usize>>>()?,
            ),
        };
        match doc.get("engine").and_then(Json::as_str) {
            Some("pass") => {
                let strategy = match doc.get("strategy").and_then(Json::as_str) {
                    Some("adp") => {
                        let agg = doc
                            .get("strategy_agg")
                            .and_then(Json::as_str)
                            .ok_or(field_err("strategy_agg"))?;
                        PartitionStrategy::Adp(parse_agg(agg)?)
                    }
                    Some("equal_depth") => PartitionStrategy::EqualDepth,
                    Some("hill_climb") => PartitionStrategy::HillClimb,
                    Some("equal_width") => PartitionStrategy::EqualWidth,
                    _ => return Err(field_err("strategy")),
                };
                Ok(EngineSpec::Pass(PassSpec {
                    partitions: usize_field("partitions")?,
                    sample_rate: f64_field("sample_rate")?,
                    total_samples: match doc.get("total_samples") {
                        None => None,
                        Some(v) => Some(v.as_usize().ok_or(field_err("total_samples"))?),
                    },
                    strategy,
                    lambda: f64_field("lambda")?,
                    delta_encode: doc
                        .get("delta_encode")
                        .and_then(Json::as_bool)
                        .ok_or(field_err("delta_encode"))?,
                    zero_variance_rule: doc
                        .get("zero_variance_rule")
                        .and_then(Json::as_bool)
                        .ok_or(field_err("zero_variance_rule"))?,
                    opt_samples: usize_field("opt_samples")?,
                    adp_delta: f64_field("adp_delta")?,
                    kd_balance: usize_field("kd_balance")?,
                    seed: u64_field("seed")?,
                    tree_dims,
                    name: doc.get("name").and_then(Json::as_str).map(str::to_owned),
                }))
            }
            Some("uniform") => Ok(EngineSpec::Uniform {
                k: usize_field("k")?,
                seed: u64_field("seed")?,
            }),
            Some("stratified") => Ok(EngineSpec::Stratified {
                strata: usize_field("strata")?,
                k: usize_field("k")?,
                seed: u64_field("seed")?,
            }),
            Some("aqppp") => Ok(EngineSpec::AqpPlusPlus {
                partitions: usize_field("partitions")?,
                k: usize_field("k")?,
                seed: u64_field("seed")?,
                tree_dims,
            }),
            Some("verdict") => Ok(EngineSpec::Verdict {
                ratio: f64_field("ratio")?,
                seed: u64_field("seed")?,
            }),
            Some("spn") => Ok(EngineSpec::Spn {
                ratio: f64_field("ratio")?,
                seed: u64_field("seed")?,
            }),
            Some("join") => {
                let f64_column = |value: &Json, name: &'static str| -> Result<Vec<f64>> {
                    value
                        .as_arr()
                        .ok_or(field_err(name))?
                        .iter()
                        .map(|v| v.as_f64().ok_or(field_err(name)))
                        .collect()
                };
                Ok(EngineSpec::Join(JoinSpec {
                    fk_dim: usize_field("fk_dim")?,
                    dim_keys: f64_column(
                        doc.get("dim_keys").ok_or(field_err("dim_keys"))?,
                        "dim_keys",
                    )?,
                    dim_attrs: doc
                        .get("dim_attrs")
                        .and_then(Json::as_arr)
                        .ok_or(field_err("dim_attrs"))?
                        .iter()
                        .map(|col| f64_column(col, "dim_attrs"))
                        .collect::<Result<Vec<Vec<f64>>>>()?,
                    k: usize_field("k")?,
                    seed: u64_field("seed")?,
                }))
            }
            Some("sharded") => Ok(EngineSpec::Sharded {
                plan: ShardPlan::from_json_value(doc.get("plan").ok_or(field_err("plan"))?)?,
                inner: Box::new(Self::from_json_value(
                    doc.get("inner").ok_or(field_err("inner"))?,
                )?),
            }),
            Some("opaque") => Ok(EngineSpec::Opaque {
                name: doc
                    .get("name")
                    .and_then(Json::as_str)
                    .ok_or(field_err("name"))?
                    .to_owned(),
            }),
            _ => Err(field_err("engine")),
        }
    }
}

fn parse_agg(text: &str) -> Result<AggKind> {
    AggKind::ALL
        .into_iter()
        .find(|kind| kind.to_string() == text)
        .ok_or_else(|| PassError::Load(format!("unknown aggregate kind `{text}`")))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn specimens() -> Vec<EngineSpec> {
        vec![
            EngineSpec::pass(),
            EngineSpec::Pass(PassSpec {
                partitions: 16,
                sample_rate: 0.05,
                total_samples: Some(1_000),
                strategy: PartitionStrategy::EqualDepth,
                delta_encode: true,
                tree_dims: Some(vec![0, 2]),
                name: Some("PASS-BSS2x".into()),
                seed: 7,
                ..PassSpec::default()
            }),
            EngineSpec::uniform(500).with_seed(3),
            EngineSpec::stratified(16, 500),
            EngineSpec::aqppp(32, 400),
            EngineSpec::AqpPlusPlus {
                partitions: 64,
                k: 256,
                seed: 9,
                tree_dims: Some(vec![1]),
            },
            EngineSpec::verdict(0.1).with_seed(5),
            EngineSpec::spn(0.5),
            EngineSpec::join(JoinSpec::new(
                0,
                vec![1.0, 2.0, 3.5],
                vec![vec![10.0, 20.5, 30.0], vec![-1.0, 0.0, 1.0]],
                128,
            ))
            .with_seed(11),
            // Attribute-free and empty-dimension joins are valid specs.
            EngineSpec::join(JoinSpec::new(1, vec![7.25], vec![], 64)),
            EngineSpec::join(JoinSpec::new(0, vec![], vec![], 32)),
            EngineSpec::sharded(EngineSpec::uniform(256), ShardPlan::row_range(4)),
            EngineSpec::sharded(
                EngineSpec::sharded(EngineSpec::pass(), ShardPlan::row_range(2)),
                ShardPlan::hash_dim(1, 8),
            ),
            EngineSpec::Opaque {
                name: "CUSTOM".into(),
            },
        ]
    }

    #[test]
    fn json_round_trips_every_variant() {
        for spec in specimens() {
            let text = spec.to_json();
            let back = EngineSpec::from_json(&text).unwrap();
            assert_eq!(back, spec, "{text}");
        }
    }

    #[test]
    fn json_round_trips_full_range_seeds() {
        // Seeds above 2^53 exceed f64 integer precision; they travel as
        // decimal strings and must survive exactly.
        for seed in [0u64, (1 << 53) - 1, 1 << 53, (1 << 53) + 1, u64::MAX] {
            for spec in [
                EngineSpec::uniform(10).with_seed(seed),
                EngineSpec::pass().with_seed(seed),
            ] {
                let text = spec.to_json();
                assert_eq!(
                    EngineSpec::from_json(&text).unwrap(),
                    spec,
                    "seed {seed}: {text}"
                );
            }
        }
    }

    #[test]
    fn adp_strategy_keeps_its_aggregate() {
        let spec = EngineSpec::Pass(PassSpec {
            strategy: PartitionStrategy::Adp(AggKind::Avg),
            ..PassSpec::default()
        });
        let back = EngineSpec::from_json(&spec.to_json()).unwrap();
        assert_eq!(back, spec);
    }

    #[test]
    fn with_seed_touches_every_variant() {
        for spec in specimens() {
            let seeded = spec.clone().with_seed(999);
            // `seed()` reads the innermost seed `with_seed` wrote
            // (None only for opaque specs, which have no seed).
            if let Some(seed) = seeded.seed() {
                assert_eq!(seed, 999, "{spec:?}");
            } else {
                assert!(matches!(seeded, EngineSpec::Opaque { .. }));
            }
            // Reseeding must not change the plan of a sharded spec.
            if let (EngineSpec::Sharded { plan, .. }, EngineSpec::Sharded { plan: seeded, .. }) =
                (&spec, &seeded)
            {
                assert_eq!(plan, seeded);
            }
        }
    }

    #[test]
    fn shard_plans_validate_and_hash_deterministically() {
        assert!(ShardPlan::row_range(0).validate().is_err());
        assert!(ShardPlan::hash_dim(0, 0).validate().is_err());
        assert!(ShardPlan::row_range(1).validate().is_ok());
        assert_eq!(ShardPlan::hash_dim(2, 8).shards(), 8);
        assert_eq!(ShardPlan::hash_dim(2, 8).kind(), "hash_dim");
        // Deterministic, in range, and -0.0 co-locates with 0.0.
        for key in [0.0, -0.0, 1.5, -1.5, 1e300, f64::MIN_POSITIVE] {
            let s = ShardPlan::key_shard(key, 7);
            assert!(s < 7);
            assert_eq!(s, ShardPlan::key_shard(key, 7));
        }
        assert_eq!(
            ShardPlan::key_shard(0.0, 16),
            ShardPlan::key_shard(-0.0, 16)
        );
    }

    #[test]
    fn malformed_sharded_json_is_rejected() {
        assert!(EngineSpec::from_json(r#"{"engine": "sharded"}"#).is_err());
        assert!(EngineSpec::from_json(
            r#"{"engine": "sharded", "plan": {"kind": "row_range", "shards": 2}}"#
        )
        .is_err());
        assert!(EngineSpec::from_json(
            r#"{"engine": "sharded", "plan": {"kind": "warp", "shards": 2},
                "inner": {"engine": "uniform", "k": 5, "seed": 0}}"#
        )
        .is_err());
        assert!(EngineSpec::from_json(
            r#"{"engine": "sharded", "plan": {"kind": "hash_dim", "shards": 2},
                "inner": {"engine": "uniform", "k": 5, "seed": 0}}"#
        )
        .is_err());
    }

    #[test]
    fn join_specs_validate() {
        // Well-formed specimens validate, including degenerate-but-legal
        // shapes (no attributes, empty dimension side).
        for spec in specimens() {
            if let EngineSpec::Join(j) = spec {
                assert!(j.validate().is_ok(), "{j:?}");
            }
        }
        let good = JoinSpec::new(0, vec![1.0, 2.0], vec![vec![5.0, 6.0]], 16);
        assert!(good.validate().is_ok());
        assert_eq!(good.attr_dims(), 1);
        // Zero sample budget.
        assert!(JoinSpec::new(0, vec![1.0], vec![], 0).validate().is_err());
        // Ragged attribute column.
        assert!(JoinSpec::new(0, vec![1.0, 2.0], vec![vec![5.0]], 4)
            .validate()
            .is_err());
        // Non-finite keys and attributes cannot survive JSON.
        assert!(JoinSpec::new(0, vec![f64::NAN], vec![], 4)
            .validate()
            .is_err());
        assert!(JoinSpec::new(0, vec![1.0], vec![vec![f64::INFINITY]], 4)
            .validate()
            .is_err());
        // Duplicate keys, including the -0.0/0.0 collision.
        assert!(JoinSpec::new(0, vec![1.0, 1.0], vec![], 4)
            .validate()
            .is_err());
        assert!(JoinSpec::new(0, vec![0.0, -0.0], vec![], 4)
            .validate()
            .is_err());
        // Every validation failure is the typed parameter error.
        for bad in [
            JoinSpec::new(0, vec![1.0], vec![], 0),
            JoinSpec::new(0, vec![1.0, 1.0], vec![], 4),
        ] {
            assert!(matches!(
                bad.validate(),
                Err(PassError::InvalidParameter(_, _))
            ));
        }
    }

    #[test]
    fn malformed_join_json_is_rejected() {
        assert!(EngineSpec::from_json(r#"{"engine": "join"}"#).is_err());
        assert!(EngineSpec::from_json(
            r#"{"engine": "join", "fk_dim": 0, "k": 8, "seed": 0, "dim_keys": "oops",
                "dim_attrs": []}"#
        )
        .is_err());
        assert!(EngineSpec::from_json(
            r#"{"engine": "join", "fk_dim": 0, "k": 8, "seed": 0, "dim_keys": [1, null],
                "dim_attrs": []}"#
        )
        .is_err());
        assert!(EngineSpec::from_json(
            r#"{"engine": "join", "fk_dim": 0, "k": 8, "seed": 0, "dim_keys": [1, 2],
                "dim_attrs": [[1, "x"]]}"#
        )
        .is_err());
    }

    #[test]
    fn malformed_json_is_rejected() {
        assert!(EngineSpec::from_json("{}").is_err());
        assert!(EngineSpec::from_json(r#"{"engine": "warp"}"#).is_err());
        assert!(EngineSpec::from_json(r#"{"engine": "uniform"}"#).is_err());
        assert!(EngineSpec::from_json(r#"{"engine": "uniform", "k": -1, "seed": 0}"#).is_err());
    }

    #[test]
    fn defaults_match_the_paper() {
        let spec = PassSpec::default();
        assert_eq!(spec.partitions, 64);
        assert_eq!(spec.sample_rate, 0.005);
        assert_eq!(spec.lambda, LAMBDA_99);
        assert!(spec.zero_variance_rule);
    }
}
