//! Statistical helpers: means, variances, normal quantiles, and the finite
//! population correction used by all confidence intervals (Section 2.1.1).

use crate::kahan::KahanSum;

/// λ for a 95% normal confidence interval.
pub const LAMBDA_95: f64 = 1.96;
/// λ for a 99% normal confidence interval (the paper's default, §5.1.3).
pub const LAMBDA_99: f64 = 2.576;

/// Mean of a slice (compensated). Returns 0.0 on empty input, which is the
/// convention the φ-estimators rely on (an empty sample estimates 0).
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    KahanSum::sum_iter(values.iter().copied()) / values.len() as f64
}

/// Population variance (divides by n). 0.0 on empty/singleton input.
pub fn population_variance(values: &[f64]) -> f64 {
    if values.len() < 2 {
        return 0.0;
    }
    let m = mean(values);
    let ss = KahanSum::sum_iter(values.iter().map(|&v| {
        let d = v - m;
        d * d
    }));
    (ss / values.len() as f64).max(0.0)
}

/// Sample variance (divides by n-1). 0.0 on fewer than two values.
pub fn sample_variance(values: &[f64]) -> f64 {
    if values.len() < 2 {
        return 0.0;
    }
    let m = mean(values);
    let ss = KahanSum::sum_iter(values.iter().map(|&v| {
        let d = v - m;
        d * d
    }));
    (ss / (values.len() - 1) as f64).max(0.0)
}

/// Finite population correction factor `(N - K) / (N - 1)` applied to the
/// variance of a mean estimated from a without-replacement sample of size K
/// out of a population of size N (footnote 1 in the paper).
pub fn fpc(population: u64, sample: u64) -> f64 {
    if population <= 1 {
        return 0.0;
    }
    let n = population as f64;
    let k = (sample as f64).min(n);
    ((n - k) / (n - 1.0)).max(0.0)
}

/// Streaming mean/variance accumulator (Welford's algorithm). Used where a
/// second pass over the data is too expensive (reservoir maintenance,
/// single-pass generators).
#[derive(Debug, Clone, Copy, Default)]
pub struct Welford {
    count: u64,
    mean: f64,
    m2: f64,
}

impl Welford {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Absorb one observation.
    pub fn push(&mut self, v: f64) {
        self.count += 1;
        let delta = v - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (v - self.mean);
    }

    /// Observations absorbed so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of the observations so far (0 when empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance seen so far.
    pub fn population_variance(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            (self.m2 / self.count as f64).max(0.0)
        }
    }

    /// Sample variance seen so far.
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            (self.m2 / (self.count - 1) as f64).max(0.0)
        }
    }
}

/// Normal quantile λ such that P(|Z| <= λ) = `confidence`, via the
/// Acklam rational approximation of the inverse normal CDF (|error| < 1.2e-9,
/// far below sampling noise). `confidence` must lie in (0, 1).
pub fn lambda_for_confidence(confidence: f64) -> f64 {
    assert!(
        confidence > 0.0 && confidence < 1.0,
        "confidence must be in (0,1), got {confidence}"
    );
    // Two-sided: lambda = Phi^-1((1 + confidence) / 2).
    inverse_normal_cdf((1.0 + confidence) / 2.0)
}

/// Acklam's inverse normal CDF approximation.
fn inverse_normal_cdf(p: f64) -> f64 {
    debug_assert!(p > 0.0 && p < 1.0);
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383_577_518_672_69e2,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;

    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variances() {
        let v = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_eq!(mean(&v), 5.0);
        assert!((population_variance(&v) - 4.0).abs() < 1e-12);
        assert!((sample_variance(&v) - 32.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(population_variance(&[]), 0.0);
        assert_eq!(population_variance(&[3.0]), 0.0);
        assert_eq!(sample_variance(&[3.0]), 0.0);
    }

    #[test]
    fn welford_matches_two_pass() {
        let v: Vec<f64> = (0..1000).map(|i| ((i * 37) % 101) as f64).collect();
        let mut w = Welford::new();
        for &x in &v {
            w.push(x);
        }
        assert!((w.mean() - mean(&v)).abs() < 1e-9);
        assert!((w.population_variance() - population_variance(&v)).abs() < 1e-7);
        assert!((w.sample_variance() - sample_variance(&v)).abs() < 1e-7);
        assert_eq!(w.count(), 1000);
    }

    #[test]
    fn fpc_limits() {
        // Sampling the whole population: no sampling error left.
        assert_eq!(fpc(100, 100), 0.0);
        // Tiny sample of a huge population: correction ~1.
        assert!((fpc(1_000_000, 10) - 1.0).abs() < 1e-4);
        // Degenerate population.
        assert_eq!(fpc(1, 1), 0.0);
        assert_eq!(fpc(0, 0), 0.0);
    }

    #[test]
    fn lambda_matches_paper_constants() {
        assert!((lambda_for_confidence(0.95) - LAMBDA_95).abs() < 5e-4);
        assert!((lambda_for_confidence(0.99) - LAMBDA_99).abs() < 5e-4);
    }

    #[test]
    fn lambda_monotone_in_confidence() {
        let mut prev = 0.0;
        for c in [0.5, 0.8, 0.9, 0.95, 0.99, 0.999] {
            let l = lambda_for_confidence(c);
            assert!(l > prev, "λ({c}) = {l} not > {prev}");
            prev = l;
        }
    }

    #[test]
    #[should_panic(expected = "confidence must be in (0,1)")]
    fn lambda_rejects_bad_confidence() {
        lambda_for_confidence(1.0);
    }
}
