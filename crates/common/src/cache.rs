//! A bounded per-engine query cache for the serving layer.
//!
//! AQP engines in this workspace are deterministic once built (sampling
//! happens offline, seeded), so a repeated query returns a bit-identical
//! [`Estimate`] — which makes query results safely cacheable. [`QueryCache`]
//! maps a [`QueryKey`] (aggregate kind + exact predicate-interval bounds)
//! to the engine's answer, holds at most a fixed number of entries
//! (FIFO eviction), and counts hits and misses so the serving layer can
//! report cache effectiveness per workload.
//!
//! [`CachedSynopsis`] layers the cache over any [`Synopsis`] as a
//! decorator: single, batched, and parallel query paths all consult the
//! cache first and only hand the *misses* to the inner engine (keeping the
//! engine's batched traversal win on the miss subset). `pass::Session`
//! wraps every registered engine this way, and its cheap `SessionHandle`
//! clones share one cache per engine across threads.

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

use crate::chaos::{AtomicU64, Mutex, Ordering};

use crate::estimate::Estimate;
use crate::partial::PartialEstimate;
use crate::pool::ThreadPool;
use crate::progressive::GroupBySnapshot;
use crate::query::{GroupByQuery, GroupResult, Query};
use crate::spec::EngineSpec;
use crate::synopsis::Synopsis;
use crate::{AggKind, PassError, Result};

/// The cache identity of a query: its aggregate kind plus the exact bit
/// pattern of every predicate-interval bound. Bit-exact keying means no
/// false sharing between queries that differ by any representable amount,
/// and `NaN`-free rectangles (enforced by [`crate::Rect::new`]) make the
/// bit patterns canonical.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct QueryKey {
    agg: AggKind,
    bounds: Vec<(u64, u64)>,
    /// Namespace tag separating result kinds that share a rectangle but
    /// not a value: plain estimates (0) vs. per-group rows (1). Group-by
    /// rows pass through the group availability rule
    /// ([`crate::apply_group_availability`]), so caching them under the
    /// plain key would poison plain-estimate lookups and vice versa.
    tag: u8,
}

impl QueryKey {
    /// The cache key of `query`.
    pub fn new(query: &Query) -> Self {
        Self::with_tag(query, 0)
    }

    /// The cache key of one group-by row: `query` is the category's
    /// expanded equality-rectangle query ([`crate::GroupByQuery::query_for`]).
    /// Tagged distinctly from [`new`](Self::new) because the stored row
    /// has the group availability rule applied.
    pub fn new_group(query: &Query) -> Self {
        Self::with_tag(query, 1)
    }

    fn with_tag(query: &Query, tag: u8) -> Self {
        Self {
            agg: query.agg,
            bounds: (0..query.dims())
                .map(|d| (query.rect.lo(d).to_bits(), query.rect.hi(d).to_bits()))
                .collect(),
            tag,
        }
    }
}

/// A point-in-time snapshot of cache effectiveness counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that fell through to the engine.
    pub misses: u64,
    /// Entries currently stored.
    pub len: usize,
    /// Maximum entries the cache will hold.
    pub capacity: usize,
}

impl CacheStats {
    /// Hits over total lookups; 0 when nothing was looked up.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Counter deltas between two snapshots (`self` taken after `earlier`),
    /// e.g. the hits/misses attributable to one workload run.
    pub fn since(&self, earlier: &CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits - earlier.hits,
            misses: self.misses - earlier.misses,
            len: self.len,
            capacity: self.capacity,
        }
    }
}

/// A bounded, thread-safe query-result cache (FIFO eviction).
///
/// Errors are cached alongside successful estimates: a deterministic
/// engine rejects a repeated malformed query identically, so there is no
/// reason to re-run the engine to rediscover the error.
///
/// Entries belong to an **epoch** — the generation of the synopsis state
/// they were computed against. [`bump_epoch`](Self::bump_epoch) (or
/// [`sync_epoch`](Self::sync_epoch) observing a new
/// [`Synopsis::update_epoch`]) advances the generation and drops every
/// entry, which is how cached answers stay coherent with streaming
/// updates without manual `clear_cache` calls.
#[derive(Debug)]
pub struct QueryCache {
    capacity: usize,
    inner: Mutex<CacheInner>,
    /// The synopsis generation the stored entries were computed against.
    /// Kept outside the mutex so the hot lookup path can check it with
    /// one atomic load; the entry map is only locked (and cleared) when
    /// the epoch actually changes.
    epoch: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
}

#[derive(Debug, Default)]
struct CacheInner {
    map: HashMap<QueryKey, Result<Estimate>>,
    order: VecDeque<QueryKey>,
}

impl CacheInner {
    fn drop_entries(&mut self) {
        self.map.clear();
        self.order.clear();
    }
}

impl QueryCache {
    /// A cache holding at most `capacity` entries. `capacity == 0`
    /// disables caching entirely: every lookup is a miss and inserts are
    /// dropped (no storage, no locking on the lookup path).
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            inner: Mutex::new(CacheInner::default()),
            epoch: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Look `query` up, counting a hit or a miss.
    pub fn get(&self, query: &Query) -> Option<Result<Estimate>> {
        self.get_keyed(&QueryKey::new(query))
    }

    /// [`get`](Self::get) with a precomputed key (batch paths key once).
    pub fn get_keyed(&self, key: &QueryKey) -> Option<Result<Estimate>> {
        self.get_many_keyed(std::slice::from_ref(key))
            .pop()
            .flatten()
    }

    /// Look many keys up under **one** lock acquisition, counting hits and
    /// misses in bulk — the batch serving path takes the shared mutex
    /// twice per batch (lookups + inserts) instead of twice per query.
    pub fn get_many_keyed(&self, keys: &[QueryKey]) -> Vec<Option<Result<Estimate>>> {
        if self.capacity == 0 {
            // relaxed: monotonic effectiveness counter; readers only ever
            // aggregate it, nothing is ordered against the stored value.
            self.misses.fetch_add(keys.len() as u64, Ordering::Relaxed);
            return vec![None; keys.len()];
        }
        let found: Vec<Option<Result<Estimate>>> = {
            let inner = self.inner.lock();
            keys.iter().map(|k| inner.map.get(k).cloned()).collect()
        };
        let hits = found.iter().filter(|f| f.is_some()).count() as u64;
        // relaxed: monotonic effectiveness counters; stats() tolerates a
        // momentarily inconsistent hit/miss pair, no ordering is needed.
        self.hits.fetch_add(hits, Ordering::Relaxed);
        self.misses
            .fetch_add(keys.len() as u64 - hits, Ordering::Relaxed);
        found
    }

    /// Store the engine's answer for `query`, evicting the oldest entry
    /// when full. Does not touch the hit/miss counters.
    pub fn insert(&self, query: &Query, result: Result<Estimate>) {
        self.insert_keyed(QueryKey::new(query), result);
    }

    /// [`insert`](Self::insert) with a precomputed key.
    pub fn insert_keyed(&self, key: QueryKey, result: Result<Estimate>) {
        self.insert_many_keyed(std::iter::once((key, result)));
    }

    /// Store many answers under **one** lock acquisition (FIFO eviction
    /// applies as each entry lands).
    pub fn insert_many_keyed(
        &self,
        entries: impl IntoIterator<Item = (QueryKey, Result<Estimate>)>,
    ) {
        if self.capacity == 0 {
            return;
        }
        let mut inner = self.inner.lock();
        for (key, result) in entries {
            if inner.map.insert(key.clone(), result).is_none() {
                inner.order.push_back(key);
                if inner.order.len() > self.capacity {
                    if let Some(oldest) = inner.order.pop_front() {
                        inner.map.remove(&oldest);
                    }
                }
            }
        }
    }

    /// Current effectiveness counters and occupancy.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            // relaxed: advisory snapshot of monotonic counters.
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            len: self.inner.lock().map.len(),
            capacity: self.capacity,
        }
    }

    /// Drop every entry (counters are kept; they are cumulative).
    pub fn clear(&self) {
        self.inner.lock().drop_entries();
    }

    /// The epoch the stored entries belong to.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Advance to the next epoch, dropping every entry — the
    /// invalidation hook for code that mutates the synopsis directly
    /// (counters are kept; they are cumulative).
    pub fn bump_epoch(&self) {
        self.epoch.fetch_add(1, Ordering::Release);
        if self.capacity > 0 {
            self.inner.lock().drop_entries();
        }
    }

    /// Adopt the epoch `observed` on the underlying synopsis
    /// ([`Synopsis::update_epoch`]), dropping every entry if it differs
    /// from the entries' epoch. [`CachedSynopsis`] calls this on every
    /// lookup, which is what makes streaming updates cache-coherent
    /// automatically; the unchanged-epoch fast path (every immutable
    /// engine, forever) is a single atomic load — no locking.
    pub fn sync_epoch(&self, observed: u64) {
        if self.capacity == 0 || self.epoch.load(Ordering::Acquire) == observed {
            return;
        }
        // Re-check under the lock so a racing sync clears exactly once.
        let mut inner = self.inner.lock();
        if self.epoch.swap(observed, Ordering::AcqRel) != observed {
            inner.drop_entries();
        }
    }
}

/// A [`Synopsis`] decorator that answers repeated queries from a shared
/// [`QueryCache`] and forwards only cache misses to the inner engine.
///
/// The inner engine stays authoritative: batched misses go through the
/// inner [`estimate_many`](Synopsis::estimate_many) (or the parallel
/// variant), so engine-side batching optimizations still apply to the
/// uncached remainder, and — engines being deterministic — cached and
/// freshly computed answers are bit-identical.
///
/// [`storage_bytes`](Synopsis::storage_bytes) reports the *inner* synopsis
/// only: the cache is serving-layer working state, not synopsis storage.
#[derive(Debug)]
pub struct CachedSynopsis<S> {
    inner: S,
    cache: Arc<QueryCache>,
}

impl<S: Clone> Clone for CachedSynopsis<S> {
    fn clone(&self) -> Self {
        Self {
            inner: self.inner.clone(),
            cache: Arc::clone(&self.cache),
        }
    }
}

impl<S: Synopsis> CachedSynopsis<S> {
    /// Wrap `inner` with a fresh cache of at most `capacity` entries.
    pub fn new(inner: S, capacity: usize) -> Self {
        Self::with_cache(inner, Arc::new(QueryCache::new(capacity)))
    }

    /// Wrap `inner` with an existing (possibly shared) cache.
    pub fn with_cache(inner: S, cache: Arc<QueryCache>) -> Self {
        Self { inner, cache }
    }

    /// The wrapped engine.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Mutable access to the wrapped engine — the streaming-update path
    /// (`Pass::insert`/`delete` need `&mut`). Updates bump the engine's
    /// [`Synopsis::update_epoch`], which this decorator observes on the
    /// next lookup and drops stale entries automatically, so no manual
    /// cache clearing is needed around mutations.
    pub fn inner_mut(&mut self) -> &mut S {
        &mut self.inner
    }

    /// The shared cache (hand out clones of the `Arc` to share it).
    pub fn cache(&self) -> &Arc<QueryCache> {
        &self.cache
    }

    /// Answer a batch, filling cache misses via `compute` (which receives
    /// only the **distinct** missed queries, in first-occurrence order —
    /// duplicates within one batch are computed once and fanned out).
    fn answer_batch(
        &self,
        queries: &[Query],
        compute: impl FnOnce(&[Query]) -> Vec<Result<Estimate>>,
    ) -> Vec<Result<Estimate>> {
        self.cache.sync_epoch(self.inner.update_epoch());
        let keys: Vec<QueryKey> = queries.iter().map(QueryKey::new).collect();
        let mut results = self.cache.get_many_keyed(&keys);
        // Distinct misses in first-occurrence order; slots lists every
        // batch position waiting on each distinct query.
        let mut miss_of: HashMap<&QueryKey, usize> = HashMap::new();
        let mut missed: Vec<Query> = Vec::new();
        let mut slots: Vec<Vec<usize>> = Vec::new();
        for i in (0..queries.len()).filter(|&i| results[i].is_none()) {
            let m = *miss_of.entry(&keys[i]).or_insert_with(|| {
                missed.push(queries[i].clone());
                slots.push(Vec::new());
                missed.len() - 1
            });
            slots[m].push(i);
        }
        if !missed.is_empty() {
            let computed = compute(&missed);
            debug_assert_eq!(computed.len(), missed.len());
            self.cache.insert_many_keyed(
                slots
                    .iter()
                    .zip(&computed)
                    .map(|(waiting, result)| (keys[waiting[0]].clone(), result.clone())),
            );
            for (waiting, result) in slots.iter().zip(computed) {
                for &i in waiting {
                    results[i] = Some(result.clone());
                }
            }
        }
        // Every `None` slot was filled from `computed` above; an
        // unfilled slot would be a logic bug, surfaced as an error
        // rather than a panic in the serving path.
        results
            .into_iter()
            .map(|r| {
                r.unwrap_or_else(|| Err(PassError::Load("batch slot left uncomputed".to_string())))
            })
            .collect()
    }
}

impl<S: Synopsis> Synopsis for CachedSynopsis<S> {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn estimate(&self, query: &Query) -> Result<Estimate> {
        self.cache.sync_epoch(self.inner.update_epoch());
        let key = QueryKey::new(query);
        if let Some(cached) = self.cache.get_keyed(&key) {
            return cached;
        }
        let result = self.inner.estimate(query);
        self.cache.insert_keyed(key, result.clone());
        result
    }

    fn estimate_many(&self, queries: &[Query]) -> Vec<Result<Estimate>> {
        self.answer_batch(queries, |missed| self.inner.estimate_many(missed))
    }

    fn estimate_many_parallel(
        &self,
        queries: &[Query],
        pool: &ThreadPool,
    ) -> Vec<Result<Estimate>> {
        self.answer_batch(queries, |missed| {
            self.inner.estimate_many_parallel(missed, pool)
        })
    }

    /// Partials forward straight to the engine: they are shard-internal
    /// building blocks keyed differently from whole-query answers, so
    /// caching happens (if at all) at the merged-estimate layer above.
    fn estimate_partial(&self, query: &Query) -> Result<PartialEstimate> {
        self.inner.estimate_partial(query)
    }

    /// Group-by rows are cached **per category** under group-tagged keys
    /// ([`QueryKey::new_group`]): two group-by queries sharing categories
    /// share cached rows, and the inner engine only sees the categories
    /// that missed (through its own `estimate_group_by` override, so a
    /// cached PASS/sharded engine keeps its batched/merged row path on
    /// the miss subset). Tagged keys keep the converted rows from ever
    /// colliding with plain-estimate entries for the same rectangle.
    fn estimate_group_by(&self, query: &GroupByQuery) -> Result<Vec<GroupResult>> {
        // Validate up front so a fully cached lookup still rejects
        // malformed queries exactly like the uncached path.
        query.validate(self.inner.dims())?;
        self.cache.sync_epoch(self.inner.update_epoch());
        let keys: Vec<QueryKey> = query
            .categories
            .iter()
            .map(|&key| QueryKey::new_group(&query.query_for(key)))
            .collect();
        let mut results = self.cache.get_many_keyed(&keys);
        // Distinct missed categories in first-occurrence order, exactly
        // like `answer_batch` (duplicate categories compute once).
        let mut miss_of: HashMap<&QueryKey, usize> = HashMap::new();
        let mut missed: Vec<f64> = Vec::new();
        let mut slots: Vec<Vec<usize>> = Vec::new();
        for i in (0..keys.len()).filter(|&i| results[i].is_none()) {
            let m = *miss_of.entry(&keys[i]).or_insert_with(|| {
                missed.push(query.categories[i]);
                slots.push(Vec::new());
                missed.len() - 1
            });
            slots[m].push(i);
        }
        if !missed.is_empty() {
            let reduced = GroupByQuery::new(query.agg, query.dim, &missed, query.base.clone());
            let computed = self.inner.estimate_group_by(&reduced)?;
            debug_assert_eq!(computed.len(), missed.len());
            self.cache.insert_many_keyed(
                slots
                    .iter()
                    .zip(&computed)
                    .map(|(waiting, row)| (keys[waiting[0]].clone(), row.estimate.clone())),
            );
            for (waiting, row) in slots.iter().zip(computed) {
                for &i in waiting {
                    results[i] = Some(row.estimate.clone());
                }
            }
        }
        Ok(query
            .categories
            .iter()
            .zip(results)
            .map(|(&key, estimate)| GroupResult {
                key,
                estimate: estimate.unwrap_or_else(|| {
                    Err(PassError::Load("batch slot left uncomputed".to_string()))
                }),
            })
            .collect())
    }

    /// Progressive streams forward uncached: intermediate snapshots are
    /// extrapolations tied to one execution, not reusable answers. (The
    /// final answer is still cacheable — via the non-progressive path.)
    fn estimate_group_by_progressive(
        &self,
        query: &GroupByQuery,
        publish: &mut dyn FnMut(GroupBySnapshot) -> bool,
    ) -> Result<Vec<GroupResult>> {
        self.inner.estimate_group_by_progressive(query, publish)
    }

    fn update_epoch(&self) -> u64 {
        self.inner.update_epoch()
    }

    fn spec(&self) -> EngineSpec {
        self.inner.spec()
    }

    fn storage_bytes(&self) -> usize {
        self.inner.storage_bytes()
    }

    fn dims(&self) -> usize {
        self.inner.dims()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PassError;

    /// Counts how many queries actually reach the engine.
    struct Counting {
        calls: AtomicU64,
    }

    impl Counting {
        fn new() -> Self {
            Self {
                calls: AtomicU64::new(0),
            }
        }
        fn calls(&self) -> u64 {
            self.calls.load(Ordering::Relaxed)
        }
    }

    impl Synopsis for Counting {
        fn name(&self) -> &str {
            "COUNTING"
        }
        fn estimate(&self, q: &Query) -> Result<Estimate> {
            self.calls.fetch_add(1, Ordering::Relaxed);
            if q.rect.lo(0) < 0.0 {
                return Err(PassError::EmptyInput("negative"));
            }
            Ok(Estimate::exact(q.rect.lo(0) + q.rect.hi(0)))
        }
        fn storage_bytes(&self) -> usize {
            0
        }
        fn dims(&self) -> usize {
            1
        }
    }

    fn q(lo: f64, hi: f64) -> Query {
        Query::interval(AggKind::Sum, lo, hi)
    }

    #[test]
    fn repeated_queries_hit_without_reaching_the_engine() {
        let cached = CachedSynopsis::new(Counting::new(), 16);
        let a = cached.estimate(&q(0.0, 1.0)).unwrap();
        let b = cached.estimate(&q(0.0, 1.0)).unwrap();
        assert_eq!(a, b);
        assert_eq!(cached.inner().calls(), 1);
        let stats = cached.cache().stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        assert_eq!(stats.hit_rate(), 0.5);
    }

    #[test]
    fn bitwise_keying_distinguishes_nearby_queries() {
        let cached = CachedSynopsis::new(Counting::new(), 16);
        cached.estimate(&q(0.0, 1.0)).unwrap();
        cached.estimate(&q(0.0, 1.0 + f64::EPSILON)).unwrap();
        assert_eq!(cached.inner().calls(), 2);
        // Same bounds but different aggregate: also distinct.
        cached
            .estimate(&Query::interval(AggKind::Count, 0.0, 1.0))
            .unwrap();
        assert_eq!(cached.inner().calls(), 3);
    }

    #[test]
    fn errors_are_cached_too() {
        let cached = CachedSynopsis::new(Counting::new(), 16);
        assert!(cached.estimate(&q(-1.0, 1.0)).is_err());
        assert!(cached.estimate(&q(-1.0, 1.0)).is_err());
        assert_eq!(cached.inner().calls(), 1);
    }

    #[test]
    fn batch_path_computes_only_misses_in_order() {
        let cached = CachedSynopsis::new(Counting::new(), 16);
        cached.estimate(&q(0.0, 1.0)).unwrap();
        let queries = vec![q(0.0, 1.0), q(2.0, 3.0), q(0.0, 1.0), q(4.0, 5.0)];
        let results = cached.estimate_many(&queries);
        // Only the two unseen queries reached the engine (1 from warmup).
        assert_eq!(cached.inner().calls(), 3);
        let values: Vec<f64> = results.iter().map(|r| r.as_ref().unwrap().value).collect();
        assert_eq!(values, vec![1.0, 5.0, 1.0, 9.0]);
        // A second pass is all hits.
        let before = cached.cache().stats();
        cached.estimate_many(&queries);
        let delta = cached.cache().stats().since(&before);
        assert_eq!((delta.hits, delta.misses), (4, 0));
        assert_eq!(cached.inner().calls(), 3);
    }

    #[test]
    fn duplicate_misses_within_one_batch_are_computed_once() {
        let cached = CachedSynopsis::new(Counting::new(), 16);
        let queries = vec![q(0.0, 1.0), q(2.0, 3.0), q(0.0, 1.0), q(0.0, 1.0)];
        let results = cached.estimate_many(&queries);
        assert_eq!(cached.inner().calls(), 2, "two distinct cold queries");
        let values: Vec<f64> = results.iter().map(|r| r.as_ref().unwrap().value).collect();
        assert_eq!(values, vec![1.0, 5.0, 1.0, 1.0]);
    }

    #[test]
    fn parallel_batch_path_uses_the_cache() {
        let cached = CachedSynopsis::new(Counting::new(), 128);
        let pool = ThreadPool::new(2);
        let queries: Vec<Query> = (0..100).map(|i| q(i as f64, i as f64 + 1.0)).collect();
        let first = cached.estimate_many_parallel(&queries, &pool);
        assert_eq!(cached.inner().calls(), 100);
        let second = cached.estimate_many_parallel(&queries, &pool);
        assert_eq!(cached.inner().calls(), 100, "second pass fully cached");
        for (a, b) in first.iter().zip(&second) {
            assert_eq!(a.as_ref().unwrap().value, b.as_ref().unwrap().value);
        }
    }

    #[test]
    fn capacity_bounds_the_cache_fifo() {
        let cached = CachedSynopsis::new(Counting::new(), 2);
        cached.estimate(&q(0.0, 1.0)).unwrap();
        cached.estimate(&q(1.0, 2.0)).unwrap();
        cached.estimate(&q(2.0, 3.0)).unwrap(); // evicts (0,1)
        assert_eq!(cached.cache().stats().len, 2);
        cached.estimate(&q(0.0, 1.0)).unwrap(); // recomputed
        assert_eq!(cached.inner().calls(), 4);
        // (1,2) was evicted by the re-insert of (0,1)… FIFO order: (2,3) stays.
        cached.estimate(&q(2.0, 3.0)).unwrap();
        assert_eq!(cached.inner().calls(), 4, "still cached");
    }

    #[test]
    fn reinserting_the_same_key_does_not_grow_the_order_queue() {
        let cache = QueryCache::new(2);
        for _ in 0..10 {
            cache.insert(&q(0.0, 1.0), Ok(Estimate::exact(1.0)));
        }
        assert_eq!(cache.stats().len, 1);
    }

    #[test]
    fn fifo_eviction_follows_insertion_order_exactly() {
        let cache = QueryCache::new(3);
        for i in 0..3 {
            cache.insert(&q(i as f64, i as f64 + 1.0), Ok(Estimate::exact(i as f64)));
        }
        // Inserting a 4th evicts the oldest (0), then a 5th evicts (1).
        cache.insert(&q(3.0, 4.0), Ok(Estimate::exact(3.0)));
        assert!(cache.get(&q(0.0, 1.0)).is_none(), "oldest evicted first");
        assert!(cache.get(&q(1.0, 2.0)).is_some());
        cache.insert(&q(4.0, 5.0), Ok(Estimate::exact(4.0)));
        assert!(cache.get(&q(1.0, 2.0)).is_none(), "then the next-oldest");
        assert!(cache.get(&q(2.0, 3.0)).is_some());
        assert!(cache.get(&q(3.0, 4.0)).is_some());
        assert!(cache.get(&q(4.0, 5.0)).is_some());
        assert_eq!(cache.stats().len, 3);
    }

    #[test]
    fn reinsert_after_eviction_counts_as_a_miss_and_recomputes() {
        let cached = CachedSynopsis::new(Counting::new(), 1);
        cached.estimate(&q(0.0, 1.0)).unwrap();
        cached.estimate(&q(1.0, 2.0)).unwrap(); // evicts (0,1)
        let before = cached.cache().stats();
        cached.estimate(&q(0.0, 1.0)).unwrap(); // must be a miss again
        let delta = cached.cache().stats().since(&before);
        assert_eq!((delta.hits, delta.misses), (0, 1));
        assert_eq!(cached.inner().calls(), 3);
        // ...and the re-inserted entry is servable again.
        cached.estimate(&q(0.0, 1.0)).unwrap();
        assert_eq!(cached.inner().calls(), 3);
    }

    #[test]
    fn zero_capacity_disables_caching_without_panicking() {
        let cached = CachedSynopsis::new(Counting::new(), 0);
        let pool = ThreadPool::new(2);
        let queries: Vec<Query> = (0..4).map(|i| q(i as f64, i as f64 + 1.0)).collect();
        cached.estimate(&queries[0]).unwrap();
        cached.estimate(&queries[0]).unwrap();
        cached.estimate_many(&queries);
        cached.estimate_many_parallel(&queries, &pool);
        // Every lookup missed; every query reached the engine.
        let stats = cached.cache().stats();
        assert_eq!(stats.hits, 0);
        assert_eq!(stats.misses, 10);
        assert_eq!(stats.len, 0);
        assert_eq!(stats.capacity, 0);
        assert_eq!(cached.inner().calls(), 10);
        // Direct QueryCache use is equally inert.
        let cache = QueryCache::new(0);
        cache.insert(&q(0.0, 1.0), Ok(Estimate::exact(1.0)));
        assert!(cache.get(&q(0.0, 1.0)).is_none());
        cache.clear();
        cache.bump_epoch();
    }

    #[test]
    fn bumping_the_epoch_invalidates_entries() {
        let cache = QueryCache::new(8);
        assert_eq!(cache.epoch(), 0);
        cache.insert(&q(0.0, 1.0), Ok(Estimate::exact(1.0)));
        cache.bump_epoch();
        assert_eq!(cache.epoch(), 1);
        assert!(cache.get(&q(0.0, 1.0)).is_none());
        // sync_epoch adopts the observed epoch and clears on change only.
        cache.insert(&q(0.0, 1.0), Ok(Estimate::exact(1.0)));
        cache.sync_epoch(1);
        assert!(cache.get(&q(0.0, 1.0)).is_some(), "same epoch: kept");
        cache.sync_epoch(5);
        assert!(cache.get(&q(0.0, 1.0)).is_none(), "new epoch: dropped");
        assert_eq!(cache.epoch(), 5);
    }

    #[test]
    fn cached_synopsis_tracks_a_mutating_engine_automatically() {
        /// An engine whose answers depend on a mutation counter.
        struct Mutable {
            state: u64,
        }
        impl Synopsis for Mutable {
            fn name(&self) -> &str {
                "MUTABLE"
            }
            fn estimate(&self, _q: &Query) -> Result<Estimate> {
                Ok(Estimate::exact(self.state as f64))
            }
            fn update_epoch(&self) -> u64 {
                self.state
            }
            fn storage_bytes(&self) -> usize {
                0
            }
            fn dims(&self) -> usize {
                1
            }
        }
        let mut cached = CachedSynopsis::new(Mutable { state: 0 }, 16);
        assert_eq!(cached.estimate(&q(0.0, 1.0)).unwrap().value, 0.0);
        assert_eq!(cached.estimate(&q(0.0, 1.0)).unwrap().value, 0.0);
        assert_eq!(cached.cache().stats().hits, 1);
        // Mutate the engine through the decorator: the stale answer must
        // NOT be served afterwards, with no manual clear.
        cached.inner_mut().state = 3;
        assert_eq!(cached.estimate(&q(0.0, 1.0)).unwrap().value, 3.0);
        assert_eq!(cached.cache().epoch(), 3);
        // The fresh answer is cached under the new epoch.
        assert_eq!(cached.estimate(&q(0.0, 1.0)).unwrap().value, 3.0);
        assert_eq!(cached.cache().stats().hits, 2);
    }

    #[test]
    fn group_by_rows_cache_per_category_without_poisoning_plain_keys() {
        use crate::query::GroupByQuery;
        let cached = CachedSynopsis::new(Counting::new(), 16);
        let gq = GroupByQuery::over(AggKind::Sum, 0, &[1.0, 2.0], 1);
        let first = cached.estimate_group_by(&gq).unwrap();
        assert_eq!(cached.inner().calls(), 2, "one engine call per category");
        let second = cached.estimate_group_by(&gq).unwrap();
        assert_eq!(first, second);
        assert_eq!(cached.inner().calls(), 2, "second pass fully cached");
        // Overlapping categories compute only the unseen one; duplicates
        // within one query compute once.
        let wider = GroupByQuery::over(AggKind::Sum, 0, &[1.0, 3.0, 2.0, 3.0], 1);
        let rows = cached.estimate_group_by(&wider).unwrap();
        assert_eq!(cached.inner().calls(), 3);
        assert_eq!(rows[1], rows[3]);
        // A plain estimate over the same rectangle is keyed separately —
        // group rows never answer plain lookups (or vice versa).
        cached.estimate(&gq.query_for(1.0)).unwrap();
        assert_eq!(cached.inner().calls(), 4);
        // Malformed queries are rejected even when every row is cached.
        let bad = GroupByQuery::over(AggKind::Sum, 7, &[1.0], 1);
        assert!(cached.estimate_group_by(&bad).is_err());
    }

    #[test]
    fn clear_keeps_counters() {
        let cache = QueryCache::new(4);
        cache.insert(&q(0.0, 1.0), Ok(Estimate::exact(1.0)));
        assert!(cache.get(&q(0.0, 1.0)).is_some());
        cache.clear();
        assert!(cache.get(&q(0.0, 1.0)).is_none());
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.len), (1, 1, 0));
    }
}
