//! Shared foundation for the PASS approximate-query-processing workspace.
//!
//! This crate holds the vocabulary types every other crate speaks:
//!
//! * [`Query`] / [`Rect`] — rectangular aggregate queries over a predicate
//!   space (Section 3.1 of the paper);
//! * [`AggKind`] / [`Aggregates`] — the five supported aggregates and the
//!   mergeable per-partition statistics (SUM, COUNT, MIN, MAX);
//! * [`Estimate`] and the [`Synopsis`] trait — the engine-agnostic contract
//!   every AQP engine (PASS and all baselines) implements, with single
//!   ([`Synopsis::estimate`]) and batched ([`Synopsis::estimate_many`])
//!   entry points;
//! * [`EngineSpec`] / [`PassSpec`] — declarative engine configuration, the
//!   input to the engine registry (`pass_baselines::Engine`) and the
//!   `pass::Session` facade, JSON round-trippable via [`json`];
//! * numeric kernels: compensated summation ([`kahan`]), prefix sums
//!   ([`prefix`]), and statistics helpers ([`stats`]);
//! * deterministic RNG construction ([`rng`]).
//!
//! Nothing here depends on any particular storage layout or estimator; those
//! live in `pass-table`, `pass-sampling`, `pass-partition`, and `pass-core`.

pub mod agg;
pub mod error;
pub mod estimate;
pub mod json;
pub mod kahan;
pub mod prefix;
pub mod query;
pub mod rng;
pub mod spec;
pub mod stats;
pub mod synopsis;

pub use agg::{AggKind, Aggregates};
pub use error::{PassError, Result};
pub use estimate::Estimate;
pub use json::Json;
pub use kahan::KahanSum;
pub use prefix::PrefixSums;
pub use query::{Query, Rect, RectRelation};
pub use spec::{EngineSpec, PartitionStrategy, PassSpec};
pub use stats::{lambda_for_confidence, LAMBDA_95, LAMBDA_99};
pub use synopsis::Synopsis;
