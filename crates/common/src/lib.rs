//! Shared foundation for the PASS approximate-query-processing workspace.
//!
//! PASS (SIGMOD 2021, "Combining Aggregation and Sampling (Nearly)
//! Optimally for Approximate Query Processing") combines a precomputed
//! aggregate tree with per-partition stratified samples. This crate holds
//! the vocabulary types every other crate speaks:
//!
//! * [`Query`] / [`Rect`] — rectangular aggregate queries over a predicate
//!   space (paper Section 3.1);
//! * [`AggKind`] / [`Aggregates`] — the five supported aggregates and the
//!   mergeable per-partition statistics (SUM, COUNT, MIN, MAX — Section 2.3);
//! * [`Estimate`] and the [`Synopsis`] trait — the engine-agnostic contract
//!   every AQP engine (PASS and the Section 5 baselines) implements, with
//!   single ([`Synopsis::estimate`]), batched ([`Synopsis::estimate_many`]),
//!   and parallel ([`Synopsis::estimate_many_parallel`]) entry points;
//! * [`EngineSpec`] / [`PassSpec`] — declarative engine configuration, the
//!   input to the engine registry (`pass_baselines::Engine`) and the
//!   `pass::Session` facade, JSON round-trippable via [`json`];
//! * the sharding vocabulary: [`ShardPlan`] (how one logical table is cut
//!   into disjoint shards) and [`PartialEstimate`] (a shard's mergeable
//!   contribution to a query, reduced by [`PartialEstimate::merge`]);
//! * the group-by surface (paper Section 4.5): [`GroupByQuery`] expands
//!   one equality rectangle per category, [`Synopsis::estimate_group_by`]
//!   answers it with the group availability rule
//!   ([`apply_group_availability`]) applied per row, and
//!   [`Synopsis::estimate_group_by_progressive`] streams refining
//!   [`GroupBySnapshot`]s for online aggregation;
//! * the serving-layer building blocks: a dependency-free chunk-stealing
//!   worker pool ([`ThreadPool`]), a bounded query-result cache
//!   ([`QueryCache`] / [`CachedSynopsis`]), and the async-serving
//!   primitives behind `pass::Serve` — a bounded two-priority request
//!   queue ([`RequestQueue`]), completion tickets ([`Ticket`] /
//!   [`ServeOutcome`]), progressive group-by tickets
//!   ([`ProgressiveTicket`] / [`ProgressiveOutcome`]), and a
//!   fixed-bucket latency histogram ([`LatencyHistogram`]);
//! * numeric kernels: compensated summation ([`kahan`]), prefix sums
//!   ([`prefix`]), and statistics helpers ([`stats`]);
//! * deterministic RNG construction ([`rng`]);
//! * versioned binary snapshots of built engines ([`snapshot`]):
//!   [`Synopsis::save`] writes a self-describing byte string
//!   (spec header + checksummed state sections) that the registry's
//!   `Engine::load` turns back into a bit-identical engine.
//!
//! Nothing here depends on any particular storage layout or estimator; those
//! live in `pass-table`, `pass-sampling`, `pass-partition`, and `pass-core`.

#![warn(missing_docs)]

pub mod agg;
pub mod cache;
pub mod chaos;
pub mod error;
pub mod estimate;
pub mod histogram;
pub mod json;
pub mod kahan;
pub mod partial;
pub mod pool;
pub mod prefix;
pub mod progressive;
pub mod query;
pub mod queue;
pub mod rng;
pub mod snapshot;
pub mod spec;
pub mod stats;
pub mod synopsis;
pub mod ticket;

pub use agg::{AggKind, Aggregates};
pub use cache::{CacheStats, CachedSynopsis, QueryCache, QueryKey};
pub use error::{PassError, Result};
pub use estimate::Estimate;
pub use histogram::{LatencyHistogram, HISTOGRAM_BUCKETS};
pub use json::Json;
pub use kahan::KahanSum;
pub use partial::PartialEstimate;
pub use pool::ThreadPool;
pub use prefix::PrefixSums;
pub use progressive::{GroupBySnapshot, ProgressiveOutcome, ProgressiveSlot, ProgressiveTicket};
pub use query::{apply_group_availability, GroupByQuery, GroupResult, Query, Rect, RectRelation};
pub use queue::{Priority, PushError, RequestQueue};
pub use snapshot::{SnapshotError, SnapshotReader, SNAPSHOT_MAGIC, SNAPSHOT_VERSION};
pub use spec::{EngineSpec, JoinSpec, PartitionStrategy, PassSpec, ShardPlan};
pub use stats::{lambda_for_confidence, LAMBDA_95, LAMBDA_99};
pub use synopsis::{Synopsis, PARALLEL_MIN_BATCH};
pub use ticket::{ServeOutcome, Ticket, TicketSlot};
