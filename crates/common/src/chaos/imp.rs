//! The model-checking implementation behind the `chaos` feature: shim
//! types that route scheduling decisions through a cooperative
//! depth-first scheduler when a model is active, and behave like the
//! normal-build shims when one is not.

use std::cell::RefCell;
use std::fmt;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64 as StdAtomicU64, AtomicUsize as StdAtomicUsize, Ordering as O};
use std::sync::{
    Arc, Condvar as StdCondvar, Mutex as StdMutex, MutexGuard as StdMutexGuard, Once, PoisonError,
};
use std::time::Duration;

// ---------------------------------------------------------------------------
// Thread-local model context
// ---------------------------------------------------------------------------

/// Which model (if any) the current thread is executing under, and the
/// thread's id within it. Set by the per-thread wrappers that
/// [`Chaos::check`] and the shim spawn paths install.
#[derive(Clone)]
struct Ctx {
    model: Arc<Model>,
    tid: usize,
}

thread_local! {
    static CTX: RefCell<Option<Ctx>> = const { RefCell::new(None) };
}

fn ctx() -> Option<Ctx> {
    CTX.with(|c| c.borrow().clone())
}

fn set_ctx(model: Arc<Model>, tid: usize) {
    CTX.with(|c| *c.borrow_mut() = Some(Ctx { model, tid }));
}

fn clear_ctx() {
    CTX.with(|c| *c.borrow_mut() = None);
}

/// Zero-sized panic payload used to unwind every model thread when a
/// schedule aborts (failure found, or replay mismatch). The installed
/// panic hook suppresses its default "thread panicked" output.
struct ChaosAbort;

/// Silence `ChaosAbort` teardown panics; anything else goes to the
/// previously installed hook (so real assertion failures still print).
fn install_abort_hook() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<ChaosAbort>().is_none() {
                prev(info);
            }
        }));
    });
}

fn payload_msg(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

// ---------------------------------------------------------------------------
// Scheduler state
// ---------------------------------------------------------------------------

/// Why a model thread cannot currently run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Block {
    /// Waiting to acquire the model mutex with this id.
    Lock(usize),
    /// Parked in a condvar wait: which condvar, which mutex to
    /// reacquire on wakeup, and whether the wait may time out.
    Cv { cv: usize, lock: usize, timed: bool },
    /// Waiting for the thread with this id to finish.
    Join(usize),
}

#[derive(Debug)]
struct ThreadRec {
    finished: bool,
    block: Option<Block>,
    /// Set when a timed condvar wait was resolved *as a timeout* (the
    /// scheduler's deadlock-resolution step), so the waking `wait_timeout`
    /// reports `timed_out() == true`.
    woke_by_timeout: bool,
}

/// One recorded scheduling decision: which of `options` equally legal
/// continuations ran. Only genuine branch points (`options > 1`) are
/// recorded; the dot-joined `chosen` values are the schedule's seed.
#[derive(Debug, Clone, Copy)]
struct ChoicePoint {
    chosen: usize,
    options: usize,
}

struct SchedState {
    threads: Vec<ThreadRec>,
    lock_owner: Vec<Option<usize>>,
    cv_count: usize,
    /// The thread currently allowed to run (`usize::MAX` once all have
    /// finished).
    running: usize,
    /// Registered minus finished threads.
    live: usize,
    /// Forced choices for this schedule (DFS continuation or seed replay).
    prefix: Vec<usize>,
    cursor: usize,
    trace: Vec<ChoicePoint>,
    steps: usize,
    preemptions: usize,
    failure: Option<String>,
    aborting: bool,
}

impl fmt::Debug for Model {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Model")
            .field("name", &self.name)
            .finish_non_exhaustive()
    }
}

struct Model {
    name: String,
    state: StdMutex<SchedState>,
    cv: StdCondvar,
    /// Distinguishes this schedule's object registrations from stale
    /// ones left by earlier schedules (objects may outlive a schedule).
    run_token: u64,
    max_steps: usize,
    preemption_bound: Option<usize>,
}

fn seed_string(trace: &[ChoicePoint]) -> String {
    if trace.is_empty() {
        "-".to_string()
    } else {
        trace
            .iter()
            .map(|c| c.chosen.to_string())
            .collect::<Vec<_>>()
            .join(".")
    }
}

fn parse_seed(seed: &str) -> Vec<usize> {
    let seed = seed.trim();
    if seed.is_empty() || seed == "-" {
        return Vec::new();
    }
    seed.split('.')
        .map(|part| {
            part.parse::<usize>().unwrap_or_else(|_| {
                panic!("PASS_CHAOS_SEED: `{part}` in `{seed}` is not a choice index")
            })
        })
        .collect()
}

/// The DFS odometer: the forced-choice prefix for the next unexplored
/// schedule, or `None` when `trace` was the last one.
fn next_prefix(trace: &[ChoicePoint]) -> Option<Vec<usize>> {
    for i in (0..trace.len()).rev() {
        if trace[i].chosen + 1 < trace[i].options {
            let mut prefix: Vec<usize> = trace[..i].iter().map(|c| c.chosen).collect();
            prefix.push(trace[i].chosen + 1);
            return Some(prefix);
        }
    }
    None
}

impl Model {
    fn lock_state(&self) -> StdMutexGuard<'_, SchedState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Record a failure (first one wins) and begin tearing the schedule
    /// down: every thread unwinds via [`ChaosAbort`] at its next
    /// scheduler interaction.
    fn fail(&self, st: &mut SchedState, kind: &str, detail: &str) {
        if st.failure.is_none() {
            let seed = seed_string(&st.trace);
            st.failure = Some(format!(
                "chaos[{name}] {kind}: {detail}\n  \
                 schedule seed: {seed}\n  \
                 replay just this interleaving with:\n    \
                 PASS_CHAOS_SEED='{seed}' cargo test -p pass-common --features chaos {name}\n  \
                 (filter to the one failing test; the seed pins every scheduling choice.\n   \
                 See docs/CONCURRENCY.md for how to read a seed.)",
                name = self.name,
            ));
        }
        st.aborting = true;
    }

    /// Resolve one scheduling decision among `options` equally legal
    /// continuations: forced by the prefix during replay/DFS descent,
    /// defaulting to the first option past it.
    fn choose(&self, st: &mut SchedState, options: usize) -> usize {
        if options <= 1 {
            return 0;
        }
        let chosen = if st.cursor < st.prefix.len() {
            let c = st.prefix[st.cursor];
            st.cursor += 1;
            if c >= options {
                self.fail(
                    st,
                    "stale seed",
                    &format!(
                        "replay choice #{} wants option {c} but only {options} exist — \
                         the code under test changed since the seed was recorded",
                        st.cursor - 1
                    ),
                );
                0
            } else {
                c
            }
        } else {
            0
        };
        st.trace.push(ChoicePoint { chosen, options });
        chosen
    }

    /// Release the model-side lock `lid`: waiters become runnable (they
    /// race to reacquire at their next turn, which is where contention
    /// interleavings come from).
    fn release_locked(st: &mut SchedState, lid: usize) {
        st.lock_owner[lid] = None;
        for t in st.threads.iter_mut() {
            if t.block == Some(Block::Lock(lid)) {
                t.block = None;
            }
        }
    }

    /// Pick the next thread to run. Called at every yield point with
    /// `me` = the thread that held the turn (it may have just blocked
    /// or finished). Also resolves timed waits and detects deadlock.
    fn reschedule(&self, st: &mut SchedState, me: usize) {
        st.steps += 1;
        if st.steps > self.max_steps && !st.aborting {
            self.fail(
                st,
                "step budget exceeded",
                &format!(
                    "{} scheduling steps without quiescing — livelock, or raise \
                     Chaos::steps for a genuinely longer test",
                    self.max_steps
                ),
            );
        }
        if st.aborting {
            self.cv.notify_all();
            return;
        }
        loop {
            let runnable: Vec<usize> = (0..st.threads.len())
                .filter(|&t| !st.threads[t].finished && st.threads[t].block.is_none())
                .collect();
            if !runnable.is_empty() {
                let me_runnable = runnable.contains(&me);
                let capped = me_runnable
                    && self
                        .preemption_bound
                        .is_some_and(|bound| st.preemptions >= bound);
                let chosen = if capped {
                    me
                } else {
                    runnable[self.choose(st, runnable.len())]
                };
                if me_runnable && chosen != me {
                    st.preemptions += 1;
                }
                st.running = chosen;
                self.cv.notify_all();
                return;
            }
            // Nobody is runnable. Timed condvar waits may fire now —
            // in the model, a timeout is observable exactly when no
            // un-timed progress is possible (firing it earlier would
            // only replay interleavings already covered by notify
            // orderings).
            let timed: Vec<usize> = (0..st.threads.len())
                .filter(|&t| matches!(st.threads[t].block, Some(Block::Cv { timed: true, .. })))
                .collect();
            if !timed.is_empty() {
                let t = timed[self.choose(st, timed.len())];
                if st.aborting {
                    self.cv.notify_all();
                    return;
                }
                let lid = match st.threads[t].block {
                    Some(Block::Cv { lock, .. }) => lock,
                    // The filter above guarantees a timed Cv block.
                    _ => 0,
                };
                st.threads[t].woke_by_timeout = true;
                st.threads[t].block = if st.lock_owner[lid].is_some() {
                    Some(Block::Lock(lid))
                } else {
                    None
                };
                continue;
            }
            if st.live == 0 {
                st.running = usize::MAX;
                self.cv.notify_all();
                return;
            }
            let stuck: Vec<String> = (0..st.threads.len())
                .filter(|&t| !st.threads[t].finished)
                .map(|t| match st.threads[t].block {
                    Some(Block::Lock(l)) => format!("thread {t} blocked on mutex #{l}"),
                    Some(Block::Cv { cv, .. }) => {
                        format!("thread {t} parked in condvar #{cv} with no wakeup coming")
                    }
                    Some(Block::Join(j)) => format!("thread {t} joining thread {j}"),
                    None => format!("thread {t} runnable (?)"),
                })
                .collect();
            self.fail(
                st,
                "deadlock",
                &format!(
                    "every live thread is blocked — a lost wakeup or lock cycle: {}",
                    stuck.join("; ")
                ),
            );
            self.cv.notify_all();
            return;
        }
    }

    /// Park until it is `me`'s turn (or unwind if the schedule aborts).
    fn wait_my_turn<'a>(
        &'a self,
        mut st: StdMutexGuard<'a, SchedState>,
        me: usize,
    ) -> StdMutexGuard<'a, SchedState> {
        loop {
            if st.aborting {
                drop(st);
                std::panic::panic_any(ChaosAbort);
            }
            if st.running == me && st.threads[me].block.is_none() {
                return st;
            }
            st = self.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// A plain yield point: let the scheduler hand the turn to any
    /// runnable thread (including `me`) before the caller's next shared
    /// access.
    fn yield_point(&self, me: usize) {
        let mut st = self.lock_state();
        self.reschedule(&mut st, me);
        let _st = self.wait_my_turn(st, me);
    }

    fn alloc_lock(&self) -> usize {
        let mut st = self.lock_state();
        st.lock_owner.push(None);
        st.lock_owner.len() - 1
    }

    fn alloc_cv(&self) -> usize {
        let mut st = self.lock_state();
        st.cv_count += 1;
        st.cv_count - 1
    }

    /// Acquire model lock `lid`: a yield point, then block while held.
    fn lock_acquire(&self, me: usize, lid: usize) {
        let mut st = self.lock_state();
        self.reschedule(&mut st, me);
        st = self.wait_my_turn(st, me);
        loop {
            if st.lock_owner[lid].is_none() {
                st.lock_owner[lid] = Some(me);
                return;
            }
            st.threads[me].block = Some(Block::Lock(lid));
            self.reschedule(&mut st, me);
            st = self.wait_my_turn(st, me);
        }
    }

    fn lock_release(&self, lid: usize) {
        let mut st = self.lock_state();
        Self::release_locked(&mut st, lid);
        // Not a yield point: the releasing thread keeps the turn, and
        // every woken waiter re-enters through its own acquire yield —
        // all distinct interleavings still get explored there, with a
        // visibly smaller schedule space.
    }

    /// Atomically release `lid` and park on condvar `cvid`; on wakeup
    /// (notify or, for `timed` waits, scheduler-resolved timeout)
    /// reacquire `lid`. Returns whether the wakeup was a timeout.
    fn cv_wait(&self, me: usize, cvid: usize, lid: usize, timed: bool) -> bool {
        let mut st = self.lock_state();
        Self::release_locked(&mut st, lid);
        st.threads[me].block = Some(Block::Cv {
            cv: cvid,
            lock: lid,
            timed,
        });
        st.threads[me].woke_by_timeout = false;
        self.reschedule(&mut st, me);
        st = self.wait_my_turn(st, me);
        let timed_out = st.threads[me].woke_by_timeout;
        loop {
            if st.lock_owner[lid].is_none() {
                st.lock_owner[lid] = Some(me);
                drop(st);
                return timed_out;
            }
            st.threads[me].block = Some(Block::Lock(lid));
            self.reschedule(&mut st, me);
            st = self.wait_my_turn(st, me);
        }
    }

    /// Wake one (scheduler's choice — that nondeterminism is a recorded
    /// branch point) or all waiters of condvar `cvid`. The notify entry
    /// is itself a yield point, so notify-vs-wait orderings are explored.
    fn cv_notify(&self, me: usize, cvid: usize, all: bool) {
        self.yield_point(me);
        let mut st = self.lock_state();
        let waiters: Vec<usize> = (0..st.threads.len())
            .filter(|&t| matches!(st.threads[t].block, Some(Block::Cv { cv, .. }) if cv == cvid))
            .collect();
        if waiters.is_empty() {
            return;
        }
        if all {
            for &t in &waiters {
                st.threads[t].block = None;
            }
        } else {
            let t = waiters[self.choose(&mut st, waiters.len())];
            if st.aborting {
                drop(st);
                std::panic::panic_any(ChaosAbort);
            }
            st.threads[t].block = None;
        }
    }

    fn register_thread(&self) -> usize {
        let mut st = self.lock_state();
        st.threads.push(ThreadRec {
            finished: false,
            block: None,
            woke_by_timeout: false,
        });
        st.live += 1;
        st.threads.len() - 1
    }

    /// First action of every model thread: park until scheduled.
    fn thread_start(&self, me: usize) {
        let st = self.lock_state();
        let _st = self.wait_my_turn(st, me);
    }

    /// Last action of every model thread: mark finished, release
    /// joiners, hand the turn onward (or wake the supervisor).
    fn thread_finish(&self, me: usize) {
        let mut st = self.lock_state();
        st.threads[me].finished = true;
        st.live = st.live.saturating_sub(1);
        for t in st.threads.iter_mut() {
            if t.block == Some(Block::Join(me)) {
                t.block = None;
            }
        }
        if st.live == 0 || st.aborting {
            st.running = usize::MAX;
            self.cv.notify_all();
            return;
        }
        self.reschedule(&mut st, me);
    }

    /// Block until `target` finishes (a scheduling point).
    fn join_wait(&self, me: usize, target: usize) {
        let mut st = self.lock_state();
        if !st.threads[target].finished {
            st.threads[me].block = Some(Block::Join(target));
            self.reschedule(&mut st, me);
            st = self.wait_my_turn(st, me);
        }
        drop(st);
    }
}

// ---------------------------------------------------------------------------
// Running schedules
// ---------------------------------------------------------------------------

/// Monotonic token distinguishing schedules, for object registration.
fn next_run_token() -> u64 {
    static NEXT: StdAtomicU64 = StdAtomicU64::new(1);
    // relaxed: a unique token is all that's needed; no ordering with
    // any other memory is implied.
    NEXT.fetch_add(1, O::Relaxed) & 0xffff_ffff
}

/// Run one complete schedule of `f` under a fresh model. Returns the
/// recorded choice trace, or the failure message.
fn run_schedule(
    name: &str,
    body: &Arc<dyn Fn() + Send + Sync>,
    prefix: Vec<usize>,
    max_steps: usize,
    preemption_bound: Option<usize>,
) -> Result<Vec<ChoicePoint>, String> {
    let model = Arc::new(Model {
        name: name.to_string(),
        state: StdMutex::new(SchedState {
            threads: Vec::new(),
            lock_owner: Vec::new(),
            cv_count: 0,
            running: 0,
            live: 0,
            prefix,
            cursor: 0,
            trace: Vec::new(),
            steps: 0,
            preemptions: 0,
            failure: None,
            aborting: false,
        }),
        cv: StdCondvar::new(),
        run_token: next_run_token(),
        max_steps,
        preemption_bound,
    });
    let root = model.register_thread();
    let worker = {
        let model = Arc::clone(&model);
        let body = Arc::clone(body);
        std::thread::spawn(move || {
            set_ctx(Arc::clone(&model), root);
            model.thread_start(root);
            let result = catch_unwind(AssertUnwindSafe(|| body()));
            if let Err(payload) = result {
                if payload.downcast_ref::<ChaosAbort>().is_none() {
                    let msg = payload_msg(payload.as_ref());
                    let mut st = model.lock_state();
                    model.fail(&mut st, "panic under the model", &msg);
                }
            }
            model.thread_finish(root);
            clear_ctx();
        })
    };
    let outcome = {
        let mut st = model.lock_state();
        while st.live > 0 {
            st = model.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
        match st.failure.take() {
            Some(msg) => Err(msg),
            None => Ok(st.trace.clone()),
        }
    };
    let _ = worker.join();
    outcome
}

/// A bounded exhaustive model-check over the interleavings of one
/// closure's threads.
///
/// `check` runs the closure once per schedule, depth-first over the
/// tree of scheduling decisions, until the tree is exhausted or
/// [`schedules`](Self::schedules) runs out. Any panic, deadlock (which
/// is how lost wakeups surface), or livelock fails the enclosing test
/// with a replayable seed. Only threads spawned through
/// [`thread::spawn`]/[`scope`] and synchronization through the
/// `chaos::` shims are modeled.
///
/// With `PASS_CHAOS_SEED` set in the environment, every `check` in the
/// process replays exactly that one schedule instead — combine it with
/// a test filter so the seed meets the test that produced it.
///
/// # Examples
///
/// ```
/// use pass_common::chaos::{self, Chaos};
/// use std::sync::Arc;
///
/// let report = Chaos::new("two_increments").check(|| {
///     let n = Arc::new(chaos::Mutex::new(0));
///     let n2 = Arc::clone(&n);
///     let t = chaos::thread::spawn(move || *n2.lock() += 1);
///     *n.lock() += 1;
///     t.join().unwrap();
///     assert_eq!(*n.lock(), 2);
/// });
/// assert!(report.exhausted);
/// ```
#[derive(Debug, Clone)]
pub struct Chaos {
    name: String,
    max_schedules: usize,
    max_steps: usize,
    preemption_bound: Option<usize>,
}

/// What a [`Chaos::check`] run covered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosReport {
    /// Schedules (distinct interleavings) executed.
    pub schedules: usize,
    /// Whether the whole choice tree was explored within the schedule
    /// budget (under the configured preemption bound, if any).
    pub exhausted: bool,
}

impl Chaos {
    /// A checker named `name` — use the enclosing test's name, so the
    /// replay command printed on failure finds it.
    pub fn new(name: &str) -> Self {
        Self {
            name: name.to_string(),
            max_schedules: 20_000,
            max_steps: 20_000,
            preemption_bound: None,
        }
    }

    /// Cap the number of schedules explored (default 20 000). An
    /// unexhausted tree at the cap is reported, not an error.
    pub fn schedules(mut self, n: usize) -> Self {
        self.max_schedules = n.max(1);
        self
    }

    /// Cap scheduling steps per schedule (default 20 000); exceeding it
    /// fails the check as a livelock.
    pub fn steps(mut self, n: usize) -> Self {
        self.max_steps = n.max(1);
        self
    }

    /// Chess-style preemption bounding: at most `n` involuntary
    /// context switches per schedule. Most real concurrency bugs
    /// manifest within 2 preemptions; the bound turns an intractable
    /// tree into an exhaustive-under-bound one. Unset = unbounded.
    pub fn preemptions(mut self, n: usize) -> Self {
        self.preemption_bound = Some(n);
        self
    }

    /// Explore `body`'s interleavings; panics (failing the enclosing
    /// test) on the first schedule that panics, deadlocks, or livelocks,
    /// with a seed that replays it.
    pub fn check<F>(self, body: F) -> ChaosReport
    where
        F: Fn() + Send + Sync + 'static,
    {
        install_abort_hook();
        assert!(
            ctx().is_none(),
            "Chaos::check cannot nest inside another model"
        );
        let body: Arc<dyn Fn() + Send + Sync> = Arc::new(body);
        if let Ok(seed) = std::env::var("PASS_CHAOS_SEED") {
            return self.run_replay(&body, &seed);
        }
        let mut prefix = Vec::new();
        let mut schedules = 0usize;
        loop {
            schedules += 1;
            let trace = match run_schedule(
                &self.name,
                &body,
                prefix,
                self.max_steps,
                self.preemption_bound,
            ) {
                Ok(trace) => trace,
                Err(msg) => panic!("{msg}"),
            };
            match next_prefix(&trace) {
                None => {
                    return ChaosReport {
                        schedules,
                        exhausted: true,
                    }
                }
                Some(next) if schedules < self.max_schedules => prefix = next,
                Some(_) => {
                    return ChaosReport {
                        schedules,
                        exhausted: false,
                    }
                }
            }
        }
    }

    /// Replay exactly one schedule from a failure seed (what
    /// `PASS_CHAOS_SEED` routes to). Fails like [`check`](Self::check)
    /// if the schedule still fails.
    pub fn replay<F>(self, seed: &str, body: F) -> ChaosReport
    where
        F: Fn() + Send + Sync + 'static,
    {
        install_abort_hook();
        let body: Arc<dyn Fn() + Send + Sync> = Arc::new(body);
        self.run_replay(&body, seed)
    }

    fn run_replay(&self, body: &Arc<dyn Fn() + Send + Sync>, seed: &str) -> ChaosReport {
        match run_schedule(
            &self.name,
            body,
            parse_seed(seed),
            self.max_steps,
            self.preemption_bound,
        ) {
            Ok(_) => ChaosReport {
                schedules: 1,
                exhausted: false,
            },
            Err(msg) => panic!("{msg}"),
        }
    }
}

// ---------------------------------------------------------------------------
// Object registration (per-schedule lazy ids)
// ---------------------------------------------------------------------------

/// Lazily binds a shim object to an id in the *current* schedule's
/// model. Packed as `run_token << 32 | (id + 1)` so a zero cell means
/// "never registered" and stale registrations from finished schedules
/// never match.
struct Registration(StdAtomicU64);

enum RegKind {
    Lock,
    Cv,
}

impl Default for Registration {
    fn default() -> Self {
        Self::new()
    }
}

impl Registration {
    const fn new() -> Self {
        Self(StdAtomicU64::new(0))
    }

    fn resolve(&self, c: &Ctx, kind: RegKind) -> usize {
        // relaxed: the model serializes execution (only the scheduled
        // thread touches shared state), so these loads/stores never
        // race; the cell is a cache, not a synchronization point.
        let packed = self.0.load(O::Relaxed);
        if packed >> 32 == c.model.run_token && packed & 0xffff_ffff != 0 {
            return (packed & 0xffff_ffff) as usize - 1;
        }
        let id = match kind {
            RegKind::Lock => c.model.alloc_lock(),
            RegKind::Cv => c.model.alloc_cv(),
        };
        // relaxed: see above — serialized by the model scheduler.
        self.0
            .store(c.model.run_token << 32 | (id as u64 + 1), O::Relaxed);
        id
    }
}

impl fmt::Debug for Registration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Registration").finish_non_exhaustive()
    }
}

// ---------------------------------------------------------------------------
// Mutex / Condvar shims
// ---------------------------------------------------------------------------

/// A mutual-exclusion lock over `T` — `std::sync::Mutex` with poisoning
/// folded away and, inside a [`Chaos::check`] model, scheduler-explored
/// acquisition order.
#[derive(Default)]
pub struct Mutex<T> {
    inner: StdMutex<T>,
    reg: Registration,
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = f.debug_struct("Mutex");
        match self.inner.try_lock() {
            Ok(guard) => s.field("data", &&*guard).finish(),
            Err(_) => s.field("data", &"<locked>").finish(),
        }
    }
}

impl<T> Mutex<T> {
    /// A new unlocked mutex holding `value`.
    pub fn new(value: T) -> Self {
        Self {
            inner: StdMutex::new(value),
            reg: Registration::new(),
        }
    }

    /// Acquire the lock, blocking until it is free. Poisoning is
    /// folded: a panic in another holder does not cascade here. Under a
    /// model this is a scheduling choice point.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let release = match ctx() {
            Some(c) => {
                let lid = self.reg.resolve(&c, RegKind::Lock);
                c.model.lock_acquire(c.tid, lid);
                ModelRelease(Some((c, lid)))
            }
            None => ModelRelease(None),
        };
        // The model (when active) guarantees exclusivity, so this real
        // acquisition never contends with a modeled holder.
        MutexGuard {
            inner: self.inner.lock().unwrap_or_else(PoisonError::into_inner),
            lock: self,
            release,
        }
    }

    /// Consume the mutex and return its data (no locking needed —
    /// ownership proves exclusivity).
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

/// Releases the model-side lock when the guard drops; disarmed while a
/// condvar wait owns the transition. Declared after `inner` in
/// [`MutexGuard`] so the real unlock happens first.
struct ModelRelease(Option<(Ctx, usize)>);

impl Drop for ModelRelease {
    fn drop(&mut self) {
        if let Some((c, lid)) = self.0.take() {
            c.model.lock_release(lid);
        }
    }
}

/// RAII guard for [`Mutex`]; the lock is released on drop.
///
/// No `Drop` impl of its own — field order does the work: the real
/// `std` guard releases first, then the model learns of the release —
/// so condvar code can destructure it.
pub struct MutexGuard<'a, T> {
    inner: StdMutexGuard<'a, T>,
    lock: &'a Mutex<T>,
    release: ModelRelease,
}

impl<T: fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

impl<T> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// Whether a [`Condvar::wait_timeout`] returned because time ran out
/// rather than because of a notification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// `true` if the wait timed out.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// A condition variable — `std::sync::Condvar` with poisoning folded
/// away and, inside a model, scheduler-explored wakeup order. Under a
/// model, timed waits time out exactly when no notification can
/// arrive, so both the notified and the timed-out paths are explored.
#[derive(Default)]
pub struct Condvar {
    inner: StdCondvar,
    reg: Registration,
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Condvar").finish_non_exhaustive()
    }
}

impl Condvar {
    /// A new condition variable.
    pub fn new() -> Self {
        Self::default()
    }

    /// Atomically release `guard`'s lock and park until notified; the
    /// lock is reacquired before returning.
    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        let MutexGuard {
            inner,
            lock,
            mut release,
        } = guard;
        match release.0.take() {
            None => MutexGuard {
                inner: self
                    .inner
                    .wait(inner)
                    .unwrap_or_else(PoisonError::into_inner),
                lock,
                release,
            },
            Some((c, lid)) => {
                let cvid = self.reg.resolve(&c, RegKind::Cv);
                // Real unlock first; no other thread can run until the
                // model transition below hands the turn over.
                drop(inner);
                c.model.cv_wait(c.tid, cvid, lid, false);
                let inner = lock.inner.lock().unwrap_or_else(PoisonError::into_inner);
                MutexGuard {
                    inner,
                    lock,
                    release: ModelRelease(Some((c, lid))),
                }
            }
        }
    }

    /// [`wait`](Self::wait) with a timeout. Under a model the duration
    /// is not measured: the timeout fires exactly when no notification
    /// can otherwise arrive (any earlier firing only repeats an
    /// interleaving the notify orderings already cover).
    pub fn wait_timeout<'a, T>(
        &self,
        guard: MutexGuard<'a, T>,
        timeout: Duration,
    ) -> (MutexGuard<'a, T>, WaitTimeoutResult) {
        let MutexGuard {
            inner,
            lock,
            mut release,
        } = guard;
        match release.0.take() {
            None => {
                let (inner, res) = self
                    .inner
                    .wait_timeout(inner, timeout)
                    .unwrap_or_else(PoisonError::into_inner);
                (
                    MutexGuard {
                        inner,
                        lock,
                        release,
                    },
                    WaitTimeoutResult(res.timed_out()),
                )
            }
            Some((c, lid)) => {
                let cvid = self.reg.resolve(&c, RegKind::Cv);
                drop(inner);
                let timed_out = c.model.cv_wait(c.tid, cvid, lid, true);
                let inner = lock.inner.lock().unwrap_or_else(PoisonError::into_inner);
                (
                    MutexGuard {
                        inner,
                        lock,
                        release: ModelRelease(Some((c, lid))),
                    },
                    WaitTimeoutResult(timed_out),
                )
            }
        }
    }

    /// Wake one parked waiter, if any. Under a model, *which* waiter
    /// wakes is a recorded scheduling choice.
    pub fn notify_one(&self) {
        match ctx() {
            Some(c) => {
                let cvid = self.reg.resolve(&c, RegKind::Cv);
                c.model.cv_notify(c.tid, cvid, false);
            }
            None => self.inner.notify_one(),
        }
    }

    /// Wake every parked waiter.
    pub fn notify_all(&self) {
        match ctx() {
            Some(c) => {
                let cvid = self.reg.resolve(&c, RegKind::Cv);
                c.model.cv_notify(c.tid, cvid, true);
            }
            None => self.inner.notify_all(),
        }
    }
}

// ---------------------------------------------------------------------------
// Atomics
// ---------------------------------------------------------------------------

/// Inserts a scheduling choice point before an atomic access when a
/// model is active (the access itself is then effectively sequentially
/// consistent — the model serializes threads).
fn atomic_yield() {
    if let Some(c) = ctx() {
        c.model.yield_point(c.tid);
    }
}

macro_rules! chaos_atomic {
    ($name:ident, $std:ty, $prim:ty) => {
        /// A shim over the matching `std::sync::atomic` type: identical
        /// semantics, plus a scheduling choice point before every access
        /// when run inside a [`Chaos::check`] model (where execution is
        /// serialized, making every access sequentially consistent
        /// regardless of the `Ordering` argument).
        #[derive(Debug, Default)]
        pub struct $name {
            inner: $std,
        }

        impl $name {
            /// A new atomic holding `value`.
            pub const fn new(value: $prim) -> Self {
                Self {
                    inner: <$std>::new(value),
                }
            }

            /// Load the current value.
            pub fn load(&self, order: Ordering) -> $prim {
                atomic_yield();
                self.inner.load(order)
            }

            /// Store `value`.
            pub fn store(&self, value: $prim, order: Ordering) {
                atomic_yield();
                self.inner.store(value, order)
            }

            /// Replace the value, returning the previous one.
            pub fn swap(&self, value: $prim, order: Ordering) -> $prim {
                atomic_yield();
                self.inner.swap(value, order)
            }

            /// Add `value`, returning the previous value.
            pub fn fetch_add(&self, value: $prim, order: Ordering) -> $prim {
                atomic_yield();
                self.inner.fetch_add(value, order)
            }

            /// Subtract `value`, returning the previous value.
            pub fn fetch_sub(&self, value: $prim, order: Ordering) -> $prim {
                atomic_yield();
                self.inner.fetch_sub(value, order)
            }

            /// Store the maximum of the current and given values,
            /// returning the previous value.
            pub fn fetch_max(&self, value: $prim, order: Ordering) -> $prim {
                atomic_yield();
                self.inner.fetch_max(value, order)
            }
        }
    };
}

use super::Ordering;

chaos_atomic!(AtomicU64, StdAtomicU64, u64);
chaos_atomic!(AtomicUsize, StdAtomicUsize, usize);

// ---------------------------------------------------------------------------
// Threads and scopes
// ---------------------------------------------------------------------------

/// Thread spawning/joining: `std::thread` outside a model, registered
/// model threads inside one.
pub mod thread {
    use super::*;

    /// Wrap `f` so the new OS thread participates in `model`: it parks
    /// until first scheduled, and hands its turn onward when done —
    /// including when it unwinds, so drop-path synchronization (e.g.
    /// `TicketSlot`'s cancel-on-drop) is itself model-checked.
    pub(super) fn model_main<T>(model: Arc<Model>, tid: usize, f: impl FnOnce() -> T) -> T {
        set_ctx(Arc::clone(&model), tid);
        model.thread_start(tid);
        let result = catch_unwind(AssertUnwindSafe(f));
        model.thread_finish(tid);
        clear_ctx();
        match result {
            Ok(value) => value,
            Err(payload) => resume_unwind(payload),
        }
    }

    /// Spawn a thread. Inside a model, the child is registered with the
    /// scheduler and the spawn is a choice point (the child may run
    /// before the parent's next step — or long after).
    pub fn spawn<F, T>(f: F) -> JoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        match ctx() {
            None => JoinHandle {
                model: None,
                inner: std::thread::spawn(f),
            },
            Some(c) => {
                let tid = c.model.register_thread();
                let model = Arc::clone(&c.model);
                let inner = std::thread::spawn(move || model_main(model, tid, f));
                c.model.yield_point(c.tid);
                JoinHandle {
                    model: Some((Arc::clone(&c.model), tid)),
                    inner,
                }
            }
        }
    }

    /// Owned handle to a spawned thread (model-aware `std` handle).
    #[derive(Debug)]
    pub struct JoinHandle<T> {
        pub(super) model: Option<(Arc<Model>, usize)>,
        pub(super) inner: std::thread::JoinHandle<T>,
    }

    impl<T> JoinHandle<T> {
        /// Wait for the thread to finish; a panicked thread's payload
        /// comes back as `Err`, exactly like `std`. Inside a model this
        /// is a scheduling point, not a real block.
        pub fn join(self) -> std::thread::Result<T> {
            if let (Some((model, target)), Some(c)) = (&self.model, ctx()) {
                if Arc::ptr_eq(model, &c.model) {
                    c.model.join_wait(c.tid, *target);
                }
            }
            self.inner.join()
        }

        /// Whether the thread has finished running.
        pub fn is_finished(&self) -> bool {
            self.inner.is_finished()
        }
    }
}

/// Create a scope for spawning borrowing threads — `std::thread::scope`
/// with model-registered children. At scope exit every still-running
/// child is driven to completion by the scheduler before the real
/// (non-modeled) implicit join, so unjoined scoped threads never stall
/// a schedule.
pub fn scope<'env, F, T>(f: F) -> T
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> T,
{
    let c = ctx();
    std::thread::scope(|s| {
        let sc = Scope {
            inner: s,
            ctx: c,
            children: StdMutex::new(Vec::new()),
        };
        let result = catch_unwind(AssertUnwindSafe(|| f(&sc)));
        if let Some(c) = &sc.ctx {
            match &result {
                Ok(_) => {
                    let children = sc
                        .children
                        .lock()
                        .unwrap_or_else(PoisonError::into_inner)
                        .clone();
                    for child in children {
                        c.model.join_wait(c.tid, child);
                    }
                }
                Err(payload) => {
                    // Tear the schedule down so parked children unwind
                    // instead of deadlocking the real implicit join
                    // below. A ChaosAbort unwind is already tearing
                    // down; fail() keeps the first failure either way.
                    let mut st = c.model.lock_state();
                    c.model.fail(
                        &mut st,
                        "panic in scope body",
                        &payload_msg(payload.as_ref()),
                    );
                    drop(st);
                    c.model.cv.notify_all();
                }
            }
        }
        match result {
            Ok(value) => value,
            Err(payload) => resume_unwind(payload),
        }
    })
}

/// A scope handle for spawning borrowing threads (see [`scope`]).
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
    ctx: Option<Ctx>,
    children: StdMutex<Vec<usize>>,
}

impl fmt::Debug for Scope<'_, '_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Scope").finish_non_exhaustive()
    }
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawn a scoped thread (may borrow from `'env`). Inside a model
    /// the child is registered and the spawn is a choice point.
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce() -> T + Send + 'scope,
        T: Send + 'scope,
    {
        match &self.ctx {
            None => ScopedJoinHandle {
                model: None,
                inner: self.inner.spawn(f),
            },
            Some(c) => {
                let tid = c.model.register_thread();
                self.children
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .push(tid);
                let model = Arc::clone(&c.model);
                let inner = self.inner.spawn(move || thread::model_main(model, tid, f));
                c.model.yield_point(c.tid);
                ScopedJoinHandle {
                    model: Some((Arc::clone(&c.model), tid)),
                    inner,
                }
            }
        }
    }
}

/// Handle to a scoped thread (see [`Scope::spawn`]).
#[derive(Debug)]
pub struct ScopedJoinHandle<'scope, T> {
    model: Option<(Arc<Model>, usize)>,
    inner: std::thread::ScopedJoinHandle<'scope, T>,
}

impl<T> ScopedJoinHandle<'_, T> {
    /// Wait for the thread to finish; a panicked thread's payload comes
    /// back as `Err`, exactly like `std`.
    pub fn join(self) -> std::thread::Result<T> {
        if let (Some((model, target)), Some(c)) = (&self.model, ctx()) {
            if Arc::ptr_eq(model, &c.model) {
                c.model.join_wait(c.tid, *target);
            }
        }
        self.inner.join()
    }

    /// Whether the thread has finished running.
    pub fn is_finished(&self) -> bool {
        self.inner.is_finished()
    }
}
