//! Error type shared across the workspace.

use std::fmt;

/// Unified error type for synopsis construction and querying.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PassError {
    /// The query references a dimension the synopsis was not built over.
    DimensionMismatch {
        /// Predicate dimensions the synopsis covers.
        expected: usize,
        /// Predicate dimensions the query supplied.
        got: usize,
    },
    /// A parameter was outside its valid range (name, description).
    InvalidParameter(&'static str, String),
    /// The input table is empty or otherwise unusable.
    EmptyInput(&'static str),
    /// I/O-style failure while loading data (message only; keeps the error
    /// type `Clone + Eq` which simplifies test assertions).
    Load(String),
    /// A snapshot failed to decode (see [`crate::snapshot::SnapshotError`]
    /// for the taxonomy; carries no floats, so `Clone + Eq` survive).
    Snapshot(crate::snapshot::SnapshotError),
}

impl fmt::Display for PassError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PassError::DimensionMismatch { expected, got } => {
                write!(
                    f,
                    "query has {got} dimensions but synopsis covers {expected}"
                )
            }
            PassError::InvalidParameter(name, why) => {
                write!(f, "invalid parameter `{name}`: {why}")
            }
            PassError::EmptyInput(what) => write!(f, "empty input: {what}"),
            PassError::Load(msg) => write!(f, "load error: {msg}"),
            PassError::Snapshot(err) => write!(f, "snapshot error: {err}"),
        }
    }
}

impl std::error::Error for PassError {}

/// Workspace-wide result alias.
pub type Result<T> = std::result::Result<T, PassError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_are_stable() {
        let e = PassError::DimensionMismatch {
            expected: 2,
            got: 5,
        };
        assert_eq!(
            e.to_string(),
            "query has 5 dimensions but synopsis covers 2"
        );
        let e = PassError::InvalidParameter("k", "must be >= 1".into());
        assert_eq!(e.to_string(), "invalid parameter `k`: must be >= 1");
        let e = PassError::EmptyInput("table");
        assert_eq!(e.to_string(), "empty input: table");
        let e = PassError::Load("bad csv".into());
        assert_eq!(e.to_string(), "load error: bad csv");
        let e = PassError::Snapshot(crate::snapshot::SnapshotError::BadMagic);
        assert_eq!(
            e.to_string(),
            "snapshot error: not a PASS snapshot (bad magic)"
        );
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&PassError::EmptyInput("x"));
    }
}
