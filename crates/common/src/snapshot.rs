//! Versioned, dependency-free binary snapshots of built synopses.
//!
//! A snapshot is the byte string produced by
//! [`Synopsis::save`](crate::Synopsis::save) and consumed by the engine
//! registry's load entry point (`pass_baselines::Engine::load`):
//!
//! ```text
//! magic        8 bytes   b"PASSSNAP"
//! version      u32 LE    SNAPSHOT_VERSION
//! section 0              EngineSpec canonical JSON (the header)
//! section 1..            engine-specific state, opaque to this layer
//!
//! section :=   length    u64 LE   payload byte count
//!              payload   `length` bytes
//!              checksum  u32 LE   CRC-32 (IEEE) of the payload
//! ```
//!
//! Everything is little-endian; floats travel as their IEEE-754 bit
//! patterns ([`f64::to_bits`]), so signed zeros and NaN payloads survive a
//! round trip bit-exactly. The spec header makes snapshots self-describing:
//! the loader dispatches on the embedded [`EngineSpec`] and rebuilds every
//! spec-derivable field from it, so the state sections carry only what the
//! spec cannot reproduce (trees, samples, epochs).
//!
//! # Decoding discipline
//!
//! Decoders must never panic or over-allocate on corrupt input. Every
//! length field is validated against the *remaining* input before any slice
//! or allocation, every read goes through `get(..)`-style checked access
//! (pass-lint rule 7 enforces this lexically for the snapshot codec files),
//! and every failure maps onto one [`SnapshotError`] variant:
//!
//! * [`BadMagic`](SnapshotError::BadMagic) — not a snapshot at all;
//! * [`VersionSkew`](SnapshotError::VersionSkew) — a future (or corrupted)
//!   format version; version 1 readers reject anything but version 1;
//! * [`Truncated`](SnapshotError::Truncated) — input ends before a declared
//!   length (includes length-field lies past the end of input);
//! * [`ChecksumMismatch`](SnapshotError::ChecksumMismatch) — a section's
//!   CRC disagrees with its payload (any single-bit flip is caught);
//! * [`TrailingBytes`](SnapshotError::TrailingBytes) — input continues after
//!   the last section the spec calls for;
//! * [`SpecMismatch`](SnapshotError::SpecMismatch) — the header or a
//!   CRC-valid state section disagrees with what the spec implies
//!   (encoder/decoder drift, or a corrupted header JSON).
//!
//! # Versioning policy
//!
//! The format version is bumped on any incompatible layout change; readers
//! support exactly the versions they know how to decode (currently only
//! [`SNAPSHOT_VERSION`]) and refuse the rest with `VersionSkew` rather than
//! guessing. The golden fixture under `tests/data/` pins version 1's exact
//! bytes so accidental drift fails loudly.

use std::fmt;

use crate::error::{PassError, Result};
use crate::spec::EngineSpec;

/// First eight bytes of every snapshot.
pub const SNAPSHOT_MAGIC: [u8; 8] = *b"PASSSNAP";

/// The (only) format version this build reads and writes.
pub const SNAPSHOT_VERSION: u32 = 1;

/// Narrow a slice already sized to exactly `N` bytes (by `get` or
/// `take`) into a fixed array. Infallible at every call site, but kept
/// panic-free — zip stops at the shorter side — so no decoder path can
/// abort the process on corrupt input.
fn array<const N: usize>(bytes: &[u8]) -> [u8; N] {
    let mut out = [0u8; N];
    for (dst, src) in out.iter_mut().zip(bytes) {
        *dst = *src;
    }
    out
}

/// Everything that can go wrong while decoding a snapshot.
///
/// Carries no floats, so it stays `Eq`-comparable like the rest of
/// [`PassError`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The input does not start with [`SNAPSHOT_MAGIC`].
    BadMagic,
    /// The input's format version is not supported by this reader.
    VersionSkew {
        /// Version found in the input.
        found: u32,
        /// Version this reader supports.
        supported: u32,
    },
    /// The input ends before a declared length (`what` names the field
    /// being read when the bytes ran out).
    Truncated {
        /// The field or region whose bytes were missing.
        what: &'static str,
    },
    /// A section's CRC-32 does not match its payload.
    ChecksumMismatch {
        /// Zero-based section index (0 is the spec header).
        section: u32,
    },
    /// Bytes remain after the final section the spec calls for.
    TrailingBytes {
        /// Number of unconsumed bytes.
        extra: u64,
    },
    /// The header or a checksum-valid state section disagrees with what
    /// the embedded spec implies.
    SpecMismatch(String),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::BadMagic => write!(f, "not a PASS snapshot (bad magic)"),
            SnapshotError::VersionSkew { found, supported } => {
                write!(
                    f,
                    "snapshot format version {found} is not supported (reader supports {supported})"
                )
            }
            SnapshotError::Truncated { what } => {
                write!(f, "snapshot truncated while reading {what}")
            }
            SnapshotError::ChecksumMismatch { section } => {
                write!(f, "snapshot section {section} failed its checksum")
            }
            SnapshotError::TrailingBytes { extra } => {
                write!(
                    f,
                    "snapshot has {extra} trailing bytes after the last section"
                )
            }
            SnapshotError::SpecMismatch(why) => {
                write!(f, "snapshot state disagrees with its spec: {why}")
            }
        }
    }
}

impl From<SnapshotError> for PassError {
    fn from(err: SnapshotError) -> Self {
        PassError::Snapshot(err)
    }
}

// ---------------------------------------------------------------------------
// CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320)
// ---------------------------------------------------------------------------

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        // bounds: `i` walks 0..256 over the fixed-size table, not input.
        table[i] = crc;
        i += 1;
    }
    table
}

static CRC32_TABLE: [u32; 256] = crc32_table();

/// CRC-32 (IEEE) of `bytes`. Guarantees detection of any single-bit flip,
/// which is what pins the adversarial bit-flip tests to
/// [`SnapshotError::ChecksumMismatch`].
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        let idx = ((crc ^ b as u32) & 0xFF) as usize;
        // bounds: idx is masked to 0..=255 and the table has 256 entries.
        crc = (crc >> 8) ^ CRC32_TABLE[idx];
    }
    !crc
}

// ---------------------------------------------------------------------------
// Writing
// ---------------------------------------------------------------------------

/// Append the snapshot preamble — magic, version, and the spec header
/// section — to `out`.
pub fn write_header(out: &mut Vec<u8>, spec: &EngineSpec) {
    out.extend_from_slice(&SNAPSHOT_MAGIC);
    out.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
    write_section(out, spec.to_json().as_bytes());
}

/// Append one framed section (length prefix, payload, CRC-32) to `out`.
pub fn write_section(out: &mut Vec<u8>, payload: &[u8]) {
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(payload);
    out.extend_from_slice(&crc32(payload).to_le_bytes());
}

// ---------------------------------------------------------------------------
// Reading
// ---------------------------------------------------------------------------

/// A checked reader over one snapshot byte string: validates the preamble
/// once ([`open`](SnapshotReader::open)), then hands out checksum-verified
/// section payloads in order.
pub struct SnapshotReader<'a> {
    buf: &'a [u8],
    pos: usize,
    next_section: u32,
}

impl<'a> SnapshotReader<'a> {
    /// Validate magic, version, and the spec header; return the embedded
    /// spec plus a reader positioned at the first state section.
    pub fn open(bytes: &'a [u8]) -> Result<(EngineSpec, Self)> {
        let magic = bytes
            .get(..SNAPSHOT_MAGIC.len())
            .ok_or(SnapshotError::Truncated { what: "magic" })?;
        if magic != SNAPSHOT_MAGIC {
            return Err(SnapshotError::BadMagic.into());
        }
        let version_bytes = bytes
            .get(SNAPSHOT_MAGIC.len()..SNAPSHOT_MAGIC.len() + 4)
            .ok_or(SnapshotError::Truncated {
                what: "format version",
            })?;
        let version = u32::from_le_bytes(array(version_bytes));
        if version != SNAPSHOT_VERSION {
            return Err(SnapshotError::VersionSkew {
                found: version,
                supported: SNAPSHOT_VERSION,
            }
            .into());
        }
        let mut reader = Self {
            buf: bytes,
            pos: SNAPSHOT_MAGIC.len() + 4,
            next_section: 0,
        };
        let header = reader.section()?;
        let text = std::str::from_utf8(header)
            .map_err(|_| SnapshotError::SpecMismatch("spec header is not UTF-8".into()))?;
        let spec = EngineSpec::from_json(text)
            .map_err(|e| SnapshotError::SpecMismatch(format!("spec header: {e}")))?;
        Ok((spec, reader))
    }

    /// Read the next section's payload, verifying its length against the
    /// remaining input *before* any slicing and its CRC after.
    pub fn section(&mut self) -> Result<&'a [u8]> {
        let len_bytes = self
            .buf
            .get(self.pos..self.pos + 8)
            .ok_or(SnapshotError::Truncated {
                what: "section length",
            })?;
        let len = u64::from_le_bytes(array(len_bytes));
        // Validate the declared length against what is actually left
        // (payload + 4-byte CRC) before touching the payload — a lying
        // length field must fail here, not in a slice or an allocation.
        let remaining = (self.buf.len() - self.pos - 8) as u64;
        if len.checked_add(4).is_none_or(|need| need > remaining) {
            return Err(SnapshotError::Truncated {
                what: "section payload",
            }
            .into());
        }
        let len = len as usize;
        let payload_start = self.pos + 8;
        let payload =
            self.buf
                .get(payload_start..payload_start + len)
                .ok_or(SnapshotError::Truncated {
                    what: "section payload",
                })?;
        let crc_bytes = self
            .buf
            .get(payload_start + len..payload_start + len + 4)
            .ok_or(SnapshotError::Truncated {
                what: "section checksum",
            })?;
        let stored = u32::from_le_bytes(array(crc_bytes));
        if crc32(payload) != stored {
            return Err(SnapshotError::ChecksumMismatch {
                section: self.next_section,
            }
            .into());
        }
        self.pos = payload_start + len + 4;
        self.next_section += 1;
        Ok(payload)
    }

    /// Assert the whole input was consumed; the complement of
    /// [`section`](Self::section)'s truncation checks.
    pub fn finish(self) -> Result<()> {
        if self.pos != self.buf.len() {
            return Err(SnapshotError::TrailingBytes {
                extra: (self.buf.len() - self.pos) as u64,
            }
            .into());
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Primitive encoding helpers (section payload builders)
// ---------------------------------------------------------------------------

/// Append a single byte (enum tags).
pub fn put_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}

/// Append a `u32` little-endian.
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Append a `u64` little-endian.
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Append a `usize` as `u64` little-endian.
pub fn put_usize(out: &mut Vec<u8>, v: usize) {
    put_u64(out, v as u64);
}

/// Append an `f64` as its IEEE-754 bit pattern (NaN payloads and signed
/// zeros survive verbatim).
pub fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_bits().to_le_bytes());
}

/// Append a `bool` as one byte.
pub fn put_bool(out: &mut Vec<u8>, v: bool) {
    out.push(v as u8);
}

/// Append `None` as a 0 tag or `Some(v)` as a 1 tag plus the value.
pub fn put_opt_u64(out: &mut Vec<u8>, v: Option<u64>) {
    match v {
        None => out.push(0),
        Some(v) => {
            out.push(1);
            put_u64(out, v);
        }
    }
}

/// Append a length-prefixed UTF-8 string.
pub fn put_str(out: &mut Vec<u8>, s: &str) {
    put_usize(out, s.len());
    out.extend_from_slice(s.as_bytes());
}

/// Append a length-prefixed `f64` sequence.
pub fn put_f64_seq(out: &mut Vec<u8>, vs: &[f64]) {
    put_usize(out, vs.len());
    for &v in vs {
        put_f64(out, v);
    }
}

/// Append a length-prefixed `u32` sequence.
pub fn put_u32_seq(out: &mut Vec<u8>, vs: &[u32]) {
    put_usize(out, vs.len());
    for &v in vs {
        put_u32(out, v);
    }
}

/// Append a length-prefixed `u64` sequence.
pub fn put_u64_seq(out: &mut Vec<u8>, vs: &[u64]) {
    put_usize(out, vs.len());
    for &v in vs {
        put_u64(out, v);
    }
}

// ---------------------------------------------------------------------------
// Primitive decoding cursor
// ---------------------------------------------------------------------------

/// A bounds-checked cursor over one (already checksum-verified) section
/// payload. Any shortfall here means encoder/decoder drift, so failures
/// surface as [`SnapshotError::SpecMismatch`].
pub struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    /// Wrap a section payload.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8]> {
        let bytes = self
            .buf
            .get(self.pos..self.pos.saturating_add(n))
            .ok_or_else(|| {
                SnapshotError::SpecMismatch(format!("state section ends inside {what}"))
            })?;
        self.pos += n;
        Ok(bytes)
    }

    /// Read one byte.
    pub fn u8(&mut self, what: &str) -> Result<u8> {
        let [b] = array(self.take(1, what)?);
        Ok(b)
    }

    /// Read a little-endian `u32`.
    pub fn u32(&mut self, what: &str) -> Result<u32> {
        Ok(u32::from_le_bytes(array(self.take(4, what)?)))
    }

    /// Read a little-endian `u64`.
    pub fn u64(&mut self, what: &str) -> Result<u64> {
        Ok(u64::from_le_bytes(array(self.take(8, what)?)))
    }

    /// Read a `u64` and narrow it to `usize`, validating it against the
    /// remaining payload scaled by `elem_size` so a lying count can never
    /// trigger an oversized allocation downstream.
    pub fn len(&mut self, elem_size: usize, what: &str) -> Result<usize> {
        let raw = self.u64(what)?;
        let budget = (self.remaining() / elem_size.max(1)) as u64;
        if raw > budget {
            return Err(SnapshotError::SpecMismatch(format!(
                "{what} count {raw} exceeds the section's remaining bytes"
            ))
            .into());
        }
        Ok(raw as usize)
    }

    /// Read an `f64` from its stored bit pattern.
    pub fn f64(&mut self, what: &str) -> Result<f64> {
        Ok(f64::from_bits(self.u64(what)?))
    }

    /// Read a one-byte `bool` (anything but 0/1 is drift).
    pub fn bool(&mut self, what: &str) -> Result<bool> {
        match self.u8(what)? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(SnapshotError::SpecMismatch(format!(
                "{what} flag has non-boolean value {other}"
            ))
            .into()),
        }
    }

    /// Read an optional `u64` written by [`put_opt_u64`].
    pub fn opt_u64(&mut self, what: &str) -> Result<Option<u64>> {
        if self.bool(what)? {
            Ok(Some(self.u64(what)?))
        } else {
            Ok(None)
        }
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn str(&mut self, what: &str) -> Result<String> {
        let len = self.len(1, what)?;
        let bytes = self.take(len, what)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| SnapshotError::SpecMismatch(format!("{what} is not UTF-8")).into())
    }

    /// Read a length-prefixed `f64` sequence.
    pub fn f64_seq(&mut self, what: &str) -> Result<Vec<f64>> {
        let len = self.len(8, what)?;
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(self.f64(what)?);
        }
        Ok(out)
    }

    /// Read a length-prefixed `u32` sequence.
    pub fn u32_seq(&mut self, what: &str) -> Result<Vec<u32>> {
        let len = self.len(4, what)?;
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(self.u32(what)?);
        }
        Ok(out)
    }

    /// Read a length-prefixed `u64` sequence.
    pub fn u64_seq(&mut self, what: &str) -> Result<Vec<u64>> {
        let len = self.len(8, what)?;
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(self.u64(what)?);
        }
        Ok(out)
    }

    /// Assert the payload was consumed exactly.
    pub fn done(self, what: &str) -> Result<()> {
        if self.pos != self.buf.len() {
            return Err(SnapshotError::SpecMismatch(format!(
                "{what} section has {} undecoded bytes",
                self.buf.len() - self.pos
            ))
            .into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_spec() -> EngineSpec {
        EngineSpec::uniform(500).with_seed(42)
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // The classic check value for CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn header_and_sections_round_trip() {
        let mut bytes = Vec::new();
        write_header(&mut bytes, &sample_spec());
        write_section(&mut bytes, b"alpha");
        write_section(&mut bytes, b"");
        let (spec, mut r) = SnapshotReader::open(&bytes).unwrap();
        assert_eq!(spec, sample_spec());
        assert_eq!(r.section().unwrap(), b"alpha");
        assert_eq!(r.section().unwrap(), b"");
        r.finish().unwrap();
    }

    #[test]
    fn bad_magic_and_version_skew() {
        let mut bytes = Vec::new();
        write_header(&mut bytes, &sample_spec());
        let mut wrong = bytes.clone();
        wrong[0] ^= 0xFF;
        assert_eq!(
            SnapshotReader::open(&wrong).err(),
            Some(PassError::Snapshot(SnapshotError::BadMagic))
        );
        let mut future = bytes.clone();
        future[8] = 9;
        assert_eq!(
            SnapshotReader::open(&future).err(),
            Some(PassError::Snapshot(SnapshotError::VersionSkew {
                found: 9,
                supported: SNAPSHOT_VERSION
            }))
        );
    }

    #[test]
    fn truncation_checksum_and_trailing_are_detected() {
        let mut bytes = Vec::new();
        write_header(&mut bytes, &sample_spec());
        write_section(&mut bytes, b"payload");
        // Truncate inside the payload.
        let cut = &bytes[..bytes.len() - 3];
        let (_, mut r) = SnapshotReader::open(cut).unwrap();
        assert!(matches!(
            r.section().err(),
            Some(PassError::Snapshot(SnapshotError::Truncated { .. }))
        ));
        // Flip one payload bit.
        let mut flipped = bytes.clone();
        let last_payload = flipped.len() - 5;
        flipped[last_payload] ^= 0x01;
        let (_, mut r) = SnapshotReader::open(&flipped).unwrap();
        assert_eq!(
            r.section().err(),
            Some(PassError::Snapshot(SnapshotError::ChecksumMismatch {
                section: 1
            }))
        );
        // Trailing garbage.
        let mut trailing = bytes.clone();
        trailing.extend_from_slice(b"xy");
        let (_, mut r) = SnapshotReader::open(&trailing).unwrap();
        r.section().unwrap();
        assert_eq!(
            r.finish().err(),
            Some(PassError::Snapshot(SnapshotError::TrailingBytes {
                extra: 2
            }))
        );
    }

    #[test]
    fn lying_length_fields_fail_before_allocation() {
        let mut bytes = Vec::new();
        write_header(&mut bytes, &sample_spec());
        let section_start = bytes.len();
        write_section(&mut bytes, b"abc");
        // Claim a gigantic payload; the reader must refuse without slicing.
        bytes[section_start..section_start + 8].copy_from_slice(&u64::MAX.to_le_bytes());
        let (_, mut r) = SnapshotReader::open(&bytes).unwrap();
        assert!(matches!(
            r.section().err(),
            Some(PassError::Snapshot(SnapshotError::Truncated { .. }))
        ));
    }

    #[test]
    fn cursor_round_trips_every_primitive() {
        let mut payload = Vec::new();
        put_u32(&mut payload, 7);
        put_u64(&mut payload, u64::MAX);
        put_f64(&mut payload, -0.0);
        put_f64(&mut payload, f64::from_bits(0x7FF8_0000_DEAD_BEEF));
        put_bool(&mut payload, true);
        put_opt_u64(&mut payload, None);
        put_opt_u64(&mut payload, Some(3));
        put_str(&mut payload, "naïve");
        put_f64_seq(&mut payload, &[1.5, f64::NEG_INFINITY]);
        put_u32_seq(&mut payload, &[1, 2, 3]);
        put_u64_seq(&mut payload, &[9]);
        let mut c = Cursor::new(&payload);
        assert_eq!(c.u32("a").unwrap(), 7);
        assert_eq!(c.u64("b").unwrap(), u64::MAX);
        assert_eq!(c.f64("c").unwrap().to_bits(), (-0.0f64).to_bits());
        assert_eq!(c.f64("d").unwrap().to_bits(), 0x7FF8_0000_DEAD_BEEF);
        assert!(c.bool("e").unwrap());
        assert_eq!(c.opt_u64("f").unwrap(), None);
        assert_eq!(c.opt_u64("g").unwrap(), Some(3));
        assert_eq!(c.str("h").unwrap(), "naïve");
        let seq = c.f64_seq("i").unwrap();
        assert_eq!(seq.len(), 2);
        assert_eq!(seq[1], f64::NEG_INFINITY);
        assert_eq!(c.u32_seq("j").unwrap(), vec![1, 2, 3]);
        assert_eq!(c.u64_seq("k").unwrap(), vec![9]);
        c.done("primitives").unwrap();
    }

    #[test]
    fn cursor_rejects_lying_counts_and_leftovers() {
        let mut payload = Vec::new();
        put_usize(&mut payload, usize::MAX); // count with no bytes behind it
        let mut c = Cursor::new(&payload);
        assert!(matches!(
            c.f64_seq("vals").err(),
            Some(PassError::Snapshot(SnapshotError::SpecMismatch(_)))
        ));
        let mut payload = Vec::new();
        put_u32(&mut payload, 1);
        put_u32(&mut payload, 2);
        let mut c = Cursor::new(&payload);
        c.u32("only").unwrap();
        assert!(matches!(
            c.done("leftover").err(),
            Some(PassError::Snapshot(SnapshotError::SpecMismatch(_)))
        ));
    }
}
