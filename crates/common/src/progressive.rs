//! Progressive (online-aggregation) tickets for served group-by queries.
//!
//! A plain [`Ticket`](crate::Ticket) resolves once, with the final
//! answer. Online aggregation (see the OLA survey in `PAPERS.md`) wants
//! more: the client should watch the answer *refine* — shard-by-shard
//! partial merges, each with a sound confidence interval that only
//! tightens — and a deadline should harvest the best estimate so far
//! instead of discarding the work.
//!
//! [`ProgressiveTicket`] is that contract. The serving worker holds the
//! producer half, a [`ProgressiveSlot`], and alternates two calls:
//! [`publish`](ProgressiveSlot::publish) appends a refining
//! [`GroupBySnapshot`] to the ticket's stream, and
//! [`try_resolve`](ProgressiveSlot::try_resolve) installs the terminal
//! [`ProgressiveOutcome`] **exactly once** — the first resolver wins,
//! later attempts (and later publishes) are no-ops. That first-wins rule
//! is what makes the deadline race safe: a watcher resolving
//! `Done { partial: true }` and the worker resolving
//! `Done { partial: false }` can interleave arbitrarily and the ticket
//! still resolves exactly once (`crates/common/tests/chaos_model.rs`
//! model-checks this under every bounded interleaving).
//!
//! Like [`TicketSlot`](crate::TicketSlot), dropping every slot clone
//! without resolving cancels the ticket, so clients never block forever
//! on a request the server lost.

use std::sync::Arc;
use std::time::Duration;

use crate::chaos::{Condvar, Mutex};
use crate::error::PassError;
use crate::query::GroupResult;

/// One refining view of a group-by answer: the per-group estimates after
/// merging `shards_merged` of `shards_total` shards.
///
/// Snapshots only tighten: the serving layer guarantees each published
/// snapshot's per-group CI half-widths are no wider than the previous
/// snapshot's (a group that erred counts as infinitely wide, so an error
/// can refine into an answer but never the reverse). The snapshot with
/// `last == true` is the engine's complete answer — bit-identical to the
/// non-progressive `estimate_group_by` result.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupBySnapshot {
    /// How many shards this snapshot has merged (1-based; equals
    /// `shards_total` for the final snapshot).
    pub shards_merged: usize,
    /// Total shards the full answer needs (1 for unsharded engines).
    pub shards_total: usize,
    /// One result per requested category, in category order.
    pub groups: Vec<GroupResult>,
    /// Whether this is the complete (non-extrapolated) answer.
    pub last: bool,
}

/// The terminal state of one progressive group-by request.
///
/// There is deliberately no `Expired` arm: a deadline that lands
/// mid-stream harvests the freshest snapshot as
/// [`Done`](Self::Done)` { partial: true }` — the whole point of paying
/// for progressive execution is that a timeout still returns the best
/// estimate so far.
#[derive(Debug, Clone, PartialEq)]
pub enum ProgressiveOutcome {
    /// The request produced an answer.
    Done {
        /// Per-group results, in category order — the final answer when
        /// `partial` is false, else the freshest snapshot's estimates.
        groups: Vec<GroupResult>,
        /// `true` when a deadline cut execution short and `groups` is
        /// the best estimate so far rather than the complete answer.
        partial: bool,
    },
    /// Admission control refused the request (queue at capacity).
    Rejected,
    /// The server shut down before the request produced anything.
    Cancelled,
    /// The query itself was invalid for the engine (wrong arity,
    /// out-of-range group dimension, NaN category).
    Failed(PassError),
}

impl ProgressiveOutcome {
    /// The per-group results, or `None` for any non-[`Done`](Self::Done)
    /// outcome.
    pub fn groups(self) -> Option<Vec<GroupResult>> {
        match self {
            ProgressiveOutcome::Done { groups, .. } => Some(groups),
            _ => None,
        }
    }

    /// Whether the request produced an answer (complete or partial).
    pub fn is_done(&self) -> bool {
        matches!(self, ProgressiveOutcome::Done { .. })
    }

    /// Whether a deadline cut the answer short.
    pub fn is_partial(&self) -> bool {
        matches!(self, ProgressiveOutcome::Done { partial: true, .. })
    }
}

#[derive(Debug, Default)]
struct ProgressiveState {
    snapshots: Vec<GroupBySnapshot>,
    outcome: Option<ProgressiveOutcome>,
    /// Live [`ProgressiveSlot`] clones; the last one to drop without a
    /// resolution cancels the ticket.
    producers: usize,
}

#[derive(Debug, Default)]
struct ProgressiveShared {
    state: Mutex<ProgressiveState>,
    changed: Condvar,
}

/// The client half of a progressive group-by request: observe the
/// snapshot stream and poll or block for the terminal outcome.
///
/// Tickets are cheap (`Arc` internally) and cloneable; every clone
/// observes the same snapshots and outcome.
///
/// # Examples
///
/// ```
/// use pass_common::{GroupBySnapshot, ProgressiveOutcome, ProgressiveTicket};
///
/// let (ticket, slot) = ProgressiveTicket::pending();
/// assert_eq!(ticket.poll(), None);
///
/// slot.publish(GroupBySnapshot {
///     shards_merged: 1,
///     shards_total: 2,
///     groups: vec![],
///     last: false,
/// });
/// assert_eq!(ticket.snapshot_count(), 1);
///
/// // The first resolver wins; later attempts are no-ops.
/// assert!(slot.try_resolve(ProgressiveOutcome::Done {
///     groups: vec![],
///     partial: false,
/// }));
/// assert!(!slot.try_resolve(ProgressiveOutcome::Rejected));
/// assert!(ticket.wait().is_done());
/// ```
#[derive(Debug, Clone)]
pub struct ProgressiveTicket {
    shared: Arc<ProgressiveShared>,
}

impl ProgressiveTicket {
    /// A pending ticket plus the [`ProgressiveSlot`] that feeds it.
    pub fn pending() -> (ProgressiveTicket, ProgressiveSlot) {
        let shared = Arc::new(ProgressiveShared::default());
        shared.state.lock().producers = 1;
        (
            ProgressiveTicket {
                shared: Arc::clone(&shared),
            },
            ProgressiveSlot { shared },
        )
    }

    /// A ticket born resolved — how admission control returns
    /// [`ProgressiveOutcome::Rejected`] synchronously while keeping one
    /// uniform submission API.
    pub fn resolved(outcome: ProgressiveOutcome) -> ProgressiveTicket {
        let (ticket, slot) = ProgressiveTicket::pending();
        slot.try_resolve(outcome);
        ticket
    }

    /// Every snapshot published so far, oldest first.
    pub fn snapshots(&self) -> Vec<GroupBySnapshot> {
        self.shared.state.lock().snapshots.clone()
    }

    /// How many snapshots have been published so far.
    pub fn snapshot_count(&self) -> usize {
        self.shared.state.lock().snapshots.len()
    }

    /// The freshest snapshot, if any has been published.
    pub fn latest(&self) -> Option<GroupBySnapshot> {
        self.shared.state.lock().snapshots.last().cloned()
    }

    /// Non-blocking check: the outcome if resolved, else `None`.
    pub fn poll(&self) -> Option<ProgressiveOutcome> {
        self.shared.state.lock().outcome.clone()
    }

    /// Whether the ticket has resolved.
    pub fn is_resolved(&self) -> bool {
        self.poll().is_some()
    }

    /// Block until the terminal outcome arrives.
    pub fn wait(&self) -> ProgressiveOutcome {
        let mut state = self.shared.state.lock();
        loop {
            if let Some(outcome) = &state.outcome {
                return outcome.clone();
            }
            state = self.shared.changed.wait(state);
        }
    }

    /// Block for at most `timeout`; `None` if still pending afterwards.
    pub fn wait_timeout(&self, timeout: Duration) -> Option<ProgressiveOutcome> {
        let deadline = std::time::Instant::now() + timeout;
        let mut state = self.shared.state.lock();
        loop {
            if let Some(outcome) = &state.outcome {
                return Some(outcome.clone());
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                return None;
            }
            let (next, _timed_out) = self.shared.changed.wait_timeout(state, deadline - now);
            state = next;
        }
    }
}

/// The producer half of a [`ProgressiveTicket`].
///
/// Cloneable so a deadline watcher and the executing worker can race to
/// resolve: [`try_resolve`](Self::try_resolve) is first-wins
/// exactly-once. When the last clone drops without anyone resolving, the
/// ticket resolves to [`ProgressiveOutcome::Cancelled`].
#[derive(Debug)]
pub struct ProgressiveSlot {
    shared: Arc<ProgressiveShared>,
}

impl ProgressiveSlot {
    /// Append a refining snapshot to the ticket's stream. Returns `false`
    /// (and publishes nothing) if the ticket already resolved — a late
    /// snapshot after a deadline harvest must not mutate what the client
    /// observed at resolution time.
    pub fn publish(&self, snapshot: GroupBySnapshot) -> bool {
        let mut state = self.shared.state.lock();
        if state.outcome.is_some() {
            return false;
        }
        state.snapshots.push(snapshot);
        drop(state);
        self.shared.changed.notify_all();
        true
    }

    /// Install the terminal outcome if no one has yet: returns `true` for
    /// the winning resolver, `false` if the ticket was already resolved.
    /// The losing outcome is discarded entirely.
    pub fn try_resolve(&self, outcome: ProgressiveOutcome) -> bool {
        let mut state = self.shared.state.lock();
        if state.outcome.is_some() {
            return false;
        }
        state.outcome = Some(outcome);
        drop(state);
        self.shared.changed.notify_all();
        true
    }

    /// The freshest published snapshot — what a deadline watcher harvests
    /// into `Done { partial: true }`.
    pub fn latest(&self) -> Option<GroupBySnapshot> {
        self.shared.state.lock().snapshots.last().cloned()
    }
}

impl Clone for ProgressiveSlot {
    fn clone(&self) -> Self {
        self.shared.state.lock().producers += 1;
        ProgressiveSlot {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl Drop for ProgressiveSlot {
    fn drop(&mut self) {
        let mut state = self.shared.state.lock();
        state.producers -= 1;
        if state.producers == 0 && state.outcome.is_none() {
            state.outcome = Some(ProgressiveOutcome::Cancelled);
            drop(state);
            self.shared.changed.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(merged: usize, total: usize, last: bool) -> GroupBySnapshot {
        GroupBySnapshot {
            shards_merged: merged,
            shards_total: total,
            groups: vec![],
            last,
        }
    }

    #[test]
    fn snapshots_accumulate_and_latest_tracks_the_tail() {
        let (ticket, slot) = ProgressiveTicket::pending();
        assert_eq!(ticket.snapshot_count(), 0);
        assert_eq!(ticket.latest(), None);
        assert!(slot.publish(snap(1, 3, false)));
        assert!(slot.publish(snap(2, 3, false)));
        assert_eq!(ticket.snapshot_count(), 2);
        assert_eq!(ticket.latest().unwrap().shards_merged, 2);
        assert_eq!(slot.latest().unwrap().shards_merged, 2);
        assert_eq!(ticket.snapshots().len(), 2);
    }

    #[test]
    fn first_resolver_wins_and_later_publishes_are_ignored() {
        let (ticket, slot) = ProgressiveTicket::pending();
        let watcher = slot.clone();
        assert!(slot.publish(snap(1, 2, false)));
        assert!(watcher.try_resolve(ProgressiveOutcome::Done {
            groups: vec![],
            partial: true,
        }));
        // The worker loses the race: its final snapshot and resolution
        // are both no-ops.
        assert!(!slot.publish(snap(2, 2, true)));
        assert!(!slot.try_resolve(ProgressiveOutcome::Done {
            groups: vec![],
            partial: false,
        }));
        assert_eq!(ticket.snapshot_count(), 1);
        let outcome = ticket.wait();
        assert!(outcome.is_partial());
        assert_eq!(outcome.groups(), Some(vec![]));
    }

    #[test]
    fn dropping_every_slot_cancels_instead_of_hanging() {
        let (ticket, slot) = ProgressiveTicket::pending();
        let twin = slot.clone();
        drop(slot);
        assert_eq!(ticket.poll(), None, "one producer still live");
        drop(twin);
        assert_eq!(ticket.wait(), ProgressiveOutcome::Cancelled);
    }

    #[test]
    fn wait_blocks_until_resolved_across_threads() {
        let (ticket, slot) = ProgressiveTicket::pending();
        std::thread::scope(|s| {
            let waiter = s.spawn(|| ticket.wait());
            std::thread::sleep(Duration::from_millis(10));
            slot.publish(snap(1, 1, true));
            slot.try_resolve(ProgressiveOutcome::Done {
                groups: vec![],
                partial: false,
            });
            let outcome = waiter.join().unwrap();
            assert!(outcome.is_done());
            assert!(!outcome.is_partial());
        });
    }

    #[test]
    fn wait_timeout_expires_then_succeeds() {
        let (ticket, slot) = ProgressiveTicket::pending();
        assert_eq!(ticket.wait_timeout(Duration::from_millis(5)), None);
        slot.try_resolve(ProgressiveOutcome::Rejected);
        assert_eq!(
            ticket.wait_timeout(Duration::from_millis(5)),
            Some(ProgressiveOutcome::Rejected)
        );
    }

    #[test]
    fn born_resolved_tickets_never_block() {
        let ticket = ProgressiveTicket::resolved(ProgressiveOutcome::Rejected);
        assert_eq!(ticket.wait(), ProgressiveOutcome::Rejected);
        assert!(!ProgressiveOutcome::Rejected.is_done());
        assert_eq!(ProgressiveOutcome::Rejected.groups(), None);
    }
}
