//! Concurrency shims with a deterministic model-checking mode — a
//! dependency-free mini-loom for the serving layer.
//!
//! Every synchronization primitive the serving-layer modules use
//! ([`crate::queue`], [`crate::ticket`], [`crate::cache`],
//! [`crate::pool`]) comes from this module instead of `std::sync`; the
//! workspace lint (`crates/lint`) enforces that. The shims fold lock
//! poisoning internally (a poisoned lock yields its guard — the data is
//! plain state, never left mid-invariant by the panicking holders these
//! modules admit), so ported code carries no `.expect("poisoned")`
//! noise.
//!
//! * **Normal builds** (no `chaos` feature): the types are thin
//!   zero-cost wrappers over `std::sync` / re-exports of
//!   `std::sync::atomic` and `std::thread::scope`.
//! * **`--features chaos` builds**: the same types can additionally run
//!   *under a model*. `Chaos::check` (only compiled with the feature,
//!   hence no link here) runs a closure repeatedly,
//!   steering every scheduling decision (who runs at each lock
//!   acquisition, atomic access, condvar notify, spawn, join) through a
//!   cooperative scheduler that enumerates interleavings depth-first.
//!   A race that one lucky real-thread test in a thousand would hit is
//!   found deterministically, and every failure prints a **seed** — the
//!   dot-separated list of scheduling choices — that replays exactly
//!   that interleaving (`PASS_CHAOS_SEED=<seed> cargo test -p
//!   pass-common --features chaos <test>`). Outside a model (ordinary
//!   tests in a `chaos` build) the shims detect the absent scheduler
//!   and behave exactly like the normal build.
//!
//! The model serializes execution (one runnable thread at a time), so it
//! explores **interleaving** bugs — lost wakeups, check-then-act races,
//! double resolution, deadlock — not memory-ordering bugs: atomics
//! behave sequentially consistent under the model regardless of the
//! `Ordering` argument. That is the right trade for this workspace: the
//! serving layer's atomics are counters and epoch stamps whose
//! correctness arguments are interleaving arguments (the lint
//! separately demands a written justification for every
//! `Ordering::Relaxed`). See `docs/CONCURRENCY.md` for the full design
//! and how to read a failing seed.

pub use std::sync::atomic::Ordering;

#[cfg(not(feature = "chaos"))]
mod imp {
    use std::fmt;
    use std::sync::PoisonError;
    use std::time::Duration;

    pub use std::sync::atomic::{AtomicU64, AtomicUsize};
    pub use std::sync::{MutexGuard, WaitTimeoutResult};
    pub use std::thread::scope;

    /// Thread spawning/joining, re-exported so model tests and shimmed
    /// modules name one path in both build modes.
    pub mod thread {
        pub use std::thread::{spawn, JoinHandle};
    }

    /// A mutual-exclusion lock over `T` — [`std::sync::Mutex`] with
    /// poisoning folded away ([`lock`](Mutex::lock) returns the guard
    /// directly) and, under the `chaos` feature, model-checkable
    /// scheduling.
    ///
    /// # Examples
    ///
    /// ```
    /// use pass_common::chaos::Mutex;
    ///
    /// let m = Mutex::new(41);
    /// *m.lock() += 1;
    /// assert_eq!(m.into_inner(), 42);
    /// ```
    #[derive(Debug, Default)]
    pub struct Mutex<T>(std::sync::Mutex<T>);

    impl<T> Mutex<T> {
        /// A new unlocked mutex holding `value`.
        pub fn new(value: T) -> Self {
            Self(std::sync::Mutex::new(value))
        }

        /// Acquire the lock, blocking until it is free. Poisoning is
        /// folded: a panic in another holder does not cascade here.
        pub fn lock(&self) -> MutexGuard<'_, T> {
            self.0.lock().unwrap_or_else(PoisonError::into_inner)
        }

        /// Consume the mutex and return its data (no locking needed —
        /// ownership proves exclusivity).
        pub fn into_inner(self) -> T {
            self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
        }
    }

    /// A condition variable — [`std::sync::Condvar`] with poisoning
    /// folded away and, under the `chaos` feature, model-checkable
    /// wakeup scheduling.
    #[derive(Default)]
    pub struct Condvar(std::sync::Condvar);

    impl fmt::Debug for Condvar {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.debug_struct("Condvar").finish_non_exhaustive()
        }
    }

    impl Condvar {
        /// A new condition variable.
        pub fn new() -> Self {
            Self::default()
        }

        /// Atomically release `guard`'s lock and park until notified;
        /// the lock is reacquired before returning.
        pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
            self.0.wait(guard).unwrap_or_else(PoisonError::into_inner)
        }

        /// [`wait`](Self::wait) with a timeout; the result reports
        /// whether the wait timed out rather than being notified.
        pub fn wait_timeout<'a, T>(
            &self,
            guard: MutexGuard<'a, T>,
            timeout: Duration,
        ) -> (MutexGuard<'a, T>, WaitTimeoutResult) {
            self.0
                .wait_timeout(guard, timeout)
                .unwrap_or_else(PoisonError::into_inner)
        }

        /// Wake one parked waiter, if any.
        pub fn notify_one(&self) {
            self.0.notify_one();
        }

        /// Wake every parked waiter.
        pub fn notify_all(&self) {
            self.0.notify_all();
        }
    }
}

#[cfg(feature = "chaos")]
mod imp;

pub use imp::*;

/// Unit tests for the scheduler itself (ported-module model tests live
/// in `tests/chaos_model.rs`). These run whenever the `chaos` feature
/// is on — i.e. in every workspace `cargo test`.
#[cfg(all(test, feature = "chaos"))]
mod model_tests {
    use super::{thread as chaos_thread, AtomicU64, Chaos, Condvar, Mutex, Ordering};
    use std::collections::HashSet;
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::{Arc, Mutex as StdMutex};
    use std::time::Duration;

    /// Run `f`, which must panic, and hand back the panic message.
    fn failure_message(f: impl Fn() + Send + Sync + 'static) -> String {
        let err = catch_unwind(AssertUnwindSafe(f)).expect_err("check should have failed");
        if let Some(s) = err.downcast_ref::<String>() {
            s.clone()
        } else {
            err.downcast_ref::<&str>()
                .expect("string payload")
                .to_string()
        }
    }

    fn seed_of(message: &str) -> String {
        message
            .lines()
            .find_map(|l| l.trim().strip_prefix("schedule seed: "))
            .expect("failure message carries a seed")
            .to_string()
    }

    #[test]
    fn exhaustively_explores_both_orders_of_two_writers() {
        // Two threads each append their id; both orders must be seen.
        let orders: Arc<StdMutex<HashSet<Vec<u8>>>> = Arc::new(StdMutex::new(HashSet::new()));
        let seen = Arc::clone(&orders);
        let report = Chaos::new("two_writers").check(move || {
            let log = Arc::new(Mutex::new(Vec::new()));
            let l2 = Arc::clone(&log);
            let t = chaos_thread::spawn(move || l2.lock().push(1u8));
            log.lock().push(0u8);
            t.join().unwrap();
            seen.lock().unwrap().insert(log.lock().clone());
        });
        assert!(report.exhausted, "tiny tree must be fully explored");
        assert!(report.schedules >= 2);
        let orders = orders.lock().unwrap();
        assert!(orders.contains(&vec![0, 1]) && orders.contains(&vec![1, 0]));
    }

    #[test]
    fn store_buffer_litmus_sees_every_sequentially_consistent_outcome() {
        // Classic store-buffer shape: under interleaving (SC) semantics
        // (0,0) is unreachable, the other three outcomes are reachable.
        let outcomes: Arc<StdMutex<HashSet<(u64, u64)>>> = Arc::new(StdMutex::new(HashSet::new()));
        let seen = Arc::clone(&outcomes);
        let report = Chaos::new("store_buffer").check(move || {
            let x = Arc::new(AtomicU64::new(0));
            let y = Arc::new(AtomicU64::new(0));
            let (x2, y2) = (Arc::clone(&x), Arc::clone(&y));
            let t = chaos_thread::spawn(move || {
                x2.store(1, Ordering::Relaxed);
                y2.load(Ordering::Relaxed)
            });
            y.store(1, Ordering::Relaxed);
            let r1 = x.load(Ordering::Relaxed);
            let r2 = t.join().unwrap();
            seen.lock().unwrap().insert((r1, r2));
        });
        assert!(report.exhausted);
        let outcomes = outcomes.lock().unwrap();
        assert!(!outcomes.contains(&(0, 0)), "SC forbids (0,0)");
        for want in [(0, 1), (1, 0), (1, 1)] {
            assert!(outcomes.contains(&want), "missing outcome {want:?}");
        }
    }

    #[test]
    fn lock_cycle_is_reported_as_deadlock_with_a_seed() {
        let message = failure_message(|| {
            Chaos::new("lock_cycle").check(|| {
                let a = Arc::new(Mutex::new(()));
                let b = Arc::new(Mutex::new(()));
                let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
                let t = chaos_thread::spawn(move || {
                    let _b = b2.lock();
                    let _a = a2.lock();
                });
                let _a = a.lock();
                let _b = b.lock();
                drop((_a, _b));
                t.join().unwrap();
            });
        });
        assert!(message.contains("deadlock"), "got: {message}");
        assert!(message.contains("PASS_CHAOS_SEED="), "got: {message}");
    }

    #[test]
    fn lost_notify_surfaces_as_deadlock_and_the_seed_replays_it() {
        // notify_one racing the wait: the schedule where the notify
        // lands first leaves the waiter parked forever. This is the
        // lost-wakeup shape pop_blocking would have with a broken
        // predicate loop.
        fn racy() {
            let pair = Arc::new((Mutex::new(()), Condvar::new()));
            let p2 = Arc::clone(&pair);
            let t = chaos_thread::spawn(move || p2.1.notify_one());
            // Deliberately broken "naked wait": no predicate, so a
            // notify that lands before the wait begins is lost forever.
            let guard = pair.0.lock();
            let guard = pair.1.wait(guard);
            drop(guard);
            t.join().unwrap();
        }
        let message = failure_message(|| {
            Chaos::new("lost_notify").check(racy);
        });
        assert!(message.contains("deadlock"), "got: {message}");
        let seed = seed_of(&message);
        // The seed replays exactly the failing interleaving, first try.
        let replay = failure_message(move || {
            Chaos::new("lost_notify").replay(&seed, racy);
        });
        assert!(replay.contains("deadlock"), "replay got: {replay}");
    }

    #[test]
    fn assertion_failures_under_the_model_carry_a_seed() {
        let message = failure_message(|| {
            Chaos::new("failing_assert").check(|| {
                let n = Arc::new(AtomicU64::new(0));
                let n2 = Arc::clone(&n);
                let t = chaos_thread::spawn(move || {
                    n2.store(1, Ordering::Relaxed);
                });
                // Fails on schedules where the child runs first.
                let seen = n.load(Ordering::Relaxed);
                t.join().unwrap();
                assert_eq!(seen, 0, "child ran before parent");
            });
        });
        assert!(
            message.contains("child ran before parent"),
            "got: {message}"
        );
        assert!(message.contains("schedule seed:"), "got: {message}");
    }

    #[test]
    fn timed_waits_time_out_instead_of_deadlocking() {
        let report = Chaos::new("timed_wait").check(|| {
            let m = Mutex::new(());
            let cv = Condvar::new();
            let guard = m.lock();
            // Nobody will ever notify: the model fires the timeout at
            // the would-be deadlock instead.
            let (guard, res) = cv.wait_timeout(guard, Duration::from_millis(1));
            assert!(res.timed_out());
            drop(guard);
        });
        assert!(report.exhausted);
    }

    #[test]
    fn preemption_bound_caps_the_tree_and_stays_exhaustive() {
        let free = Chaos::new("pb_free").check(spawn_three_counters);
        let bounded = Chaos::new("pb_bounded")
            .preemptions(1)
            .check(spawn_three_counters);
        assert!(free.exhausted && bounded.exhausted);
        assert!(
            bounded.schedules < free.schedules,
            "bounding must shrink the tree ({} vs {})",
            bounded.schedules,
            free.schedules
        );
    }

    fn spawn_three_counters() {
        let n = Arc::new(Mutex::new(0u32));
        let handles: Vec<_> = (0..3)
            .map(|_| {
                let n = Arc::clone(&n);
                chaos_thread::spawn(move || *n.lock() += 1)
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*n.lock(), 3);
    }

    #[test]
    fn scoped_threads_are_modeled_and_implicitly_joined() {
        let report = Chaos::new("scoped").preemptions(2).check(|| {
            let n = Mutex::new(0u32);
            super::scope(|s| {
                for _ in 0..2 {
                    s.spawn(|| *n.lock() += 1);
                }
                // No explicit joins: scope exit must drive both
                // children to completion under the model.
            });
            assert_eq!(*n.lock(), 2);
        });
        assert!(report.exhausted);
    }

    #[test]
    fn worker_panics_resolve_drop_paths_before_join_reports_them() {
        // A panicking model thread still runs its drop glue under the
        // model (this is what makes TicketSlot's cancel-on-drop
        // checkable), and join surfaces the payload like std.
        let report = Chaos::new("panicking_worker").preemptions(2).check(|| {
            let armed = Arc::new(Mutex::new(true));
            let a2 = Arc::clone(&armed);
            let t = chaos_thread::spawn(move || {
                struct Disarm(Arc<Mutex<bool>>);
                impl Drop for Disarm {
                    fn drop(&mut self) {
                        *self.0.lock() = false;
                    }
                }
                let _d = Disarm(a2);
                panic!("worker exploded");
            });
            assert!(t.join().is_err(), "panic must surface through join");
            assert!(!*armed.lock(), "drop glue must have run");
        });
        assert!(report.exhausted);
    }

    #[test]
    fn shims_pass_through_outside_a_model() {
        // No Chaos::check active: the shim types must behave like std.
        let m = Mutex::new(5u32);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 6);
        let cv = Condvar::new();
        cv.notify_all();
        let n = AtomicU64::new(1);
        assert_eq!(n.fetch_add(2, Ordering::Relaxed), 1);
        let t = chaos_thread::spawn(|| 7u8);
        assert_eq!(t.join().unwrap(), 7);
        let total = Mutex::new(0u32);
        super::scope(|s| {
            for _ in 0..2 {
                s.spawn(|| *total.lock() += 1);
            }
        });
        assert_eq!(total.into_inner(), 2);
    }
}
