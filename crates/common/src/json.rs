//! A small dependency-free JSON value type with a writer and parser.
//!
//! The workspace runs in an offline build environment, so instead of serde
//! the benchmark harness and the [`EngineSpec`](crate::spec::EngineSpec)
//! round-trip use this module. It supports the full JSON data model with
//! the one simplification that numbers are `f64` (adequate for metrics and
//! engine parameters; 53-bit integers round-trip exactly).

use std::collections::BTreeMap;
use std::fmt;

use crate::error::{PassError, Result};

/// A JSON value. Objects preserve no insertion order (keys are sorted),
/// which keeps emitted documents canonical and diffable.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// JSON number (always `f64`).
    Num(f64),
    /// JSON string.
    Str(String),
    /// JSON array.
    Arr(Vec<Json>),
    /// JSON object (keys sorted).
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Build an object from key/value pairs.
    pub fn obj<I: IntoIterator<Item = (&'static str, Json)>>(pairs: I) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
    }

    /// Object field lookup; `None` for non-objects and absent keys.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// The value as a number, when it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The value as a non-negative 53-bit-exact integer, when it is one.
    pub fn as_usize(&self) -> Option<usize> {
        self.as_f64()
            .filter(|x| x.fract() == 0.0 && *x >= 0.0 && *x <= (1u64 << 53) as f64)
            .map(|x| x as usize)
    }

    /// The value as a non-negative 53-bit-exact integer, when it is one.
    pub fn as_u64(&self) -> Option<u64> {
        self.as_f64()
            .filter(|x| x.fract() == 0.0 && *x >= 0.0 && *x <= (1u64 << 53) as f64)
            .map(|x| x as u64)
    }

    /// The value as a boolean, when it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a string slice, when it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, when it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Parse a JSON document.
    pub fn parse(text: &str) -> Result<Json> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(parse_err(p.pos, "trailing characters"));
        }
        Ok(value)
    }

    /// Serialize with two-space indentation.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(0));
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(x) => write_number(out, *x),
            Json::Str(s) => write_string(out, s),
            Json::Arr(items) => write_seq(out, indent, '[', ']', items.len(), |out, i, ind| {
                items[i].write(out, ind)
            }),
            Json::Obj(map) => {
                let entries: Vec<(&String, &Json)> = map.iter().collect();
                write_seq(out, indent, '{', '}', entries.len(), |out, i, ind| {
                    write_string(out, entries[i].0);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    entries[i].1.write(out, ind);
                })
            }
        }
    }
}

impl fmt::Display for Json {
    /// Compact (single-line) serialization.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        self.write(&mut out, None);
        f.write_str(&out)
    }
}

impl From<f64> for Json {
    fn from(x: f64) -> Json {
        Json::Num(x)
    }
}

impl From<usize> for Json {
    fn from(x: usize) -> Json {
        Json::Num(x as f64)
    }
}

impl From<u64> for Json {
    fn from(x: u64) -> Json {
        Json::Num(x as f64)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_owned())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

impl From<Vec<Json>> for Json {
    fn from(items: Vec<Json>) -> Json {
        Json::Arr(items)
    }
}

fn write_number(out: &mut String, x: f64) {
    if !x.is_finite() {
        // JSON has no Inf/NaN; emit null like serde_json does.
        out.push_str("null");
    } else if x.fract() == 0.0 && x.abs() < 1e15 {
        out.push_str(&format!("{}", x as i64));
    } else {
        // Shortest representation that round-trips.
        out.push_str(&format!("{x}"));
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize, Option<usize>),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    let inner = indent.map(|d| d + 1);
    for i in 0..len {
        if let Some(depth) = inner {
            out.push('\n');
            out.push_str(&"  ".repeat(depth));
        }
        item(out, i, inner);
        if i + 1 < len {
            out.push(',');
        }
    }
    if let Some(depth) = indent {
        out.push('\n');
        out.push_str(&"  ".repeat(depth));
    }
    out.push(close);
}

fn parse_err(pos: usize, what: &str) -> PassError {
    PassError::Load(format!("JSON parse error at byte {pos}: {what}"))
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<()> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(parse_err(self.pos, "unexpected character"))
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(parse_err(self.pos, "invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Json> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(parse_err(self.pos, "expected a value")),
        }
    }

    fn array(&mut self) -> Result<Json> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(parse_err(self.pos, "expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            map.insert(key, self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(parse_err(self.pos, "expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(c) = self.peek() {
                if c == b'"' || c == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| parse_err(start, "invalid UTF-8"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escape = self.peek().ok_or(parse_err(self.pos, "open escape"))?;
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or(parse_err(self.pos, "bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not supported; they do not
                            // occur in the documents this workspace writes.
                            out.push(
                                char::from_u32(hex).ok_or(parse_err(self.pos, "bad codepoint"))?,
                            );
                        }
                        _ => return Err(parse_err(self.pos, "unknown escape")),
                    }
                }
                _ => return Err(parse_err(self.pos, "unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Json> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-') {
                self.pos += 1;
            } else {
                break;
            }
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or(parse_err(start, "invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_compact_and_pretty() {
        let doc = Json::obj([
            ("name", Json::from("PASS")),
            ("k", Json::from(64usize)),
            ("rate", Json::from(0.005)),
            ("on", Json::from(true)),
            (
                "dims",
                Json::Arr(vec![Json::from(0usize), Json::from(2usize)]),
            ),
            ("none", Json::Null),
        ]);
        for text in [doc.to_string(), doc.pretty()] {
            assert_eq!(Json::parse(&text).unwrap(), doc);
        }
    }

    #[test]
    fn integers_print_without_fraction() {
        assert_eq!(Json::Num(1024.0).to_string(), "1024");
        assert_eq!(Json::Num(0.5).to_string(), "0.5");
        assert_eq!(Json::Num(f64::NAN).to_string(), "null");
    }

    #[test]
    fn string_escapes_round_trip() {
        let s = "line\nwith \"quotes\" and \\slashes\\ \t tab";
        let doc = Json::from(s);
        assert_eq!(Json::parse(&doc.to_string()).unwrap().as_str(), Some(s));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("nulL").is_err());
        assert!(Json::parse("{} extra").is_err());
    }

    #[test]
    fn accessors() {
        let doc = Json::parse(r#"{"a": 3, "b": [1, 2], "c": "x", "d": false}"#).unwrap();
        assert_eq!(doc.get("a").and_then(Json::as_usize), Some(3));
        assert_eq!(
            doc.get("b").and_then(Json::as_arr).map(|a| a.len()),
            Some(2)
        );
        assert_eq!(doc.get("c").and_then(Json::as_str), Some("x"));
        assert_eq!(doc.get("d").and_then(Json::as_bool), Some(false));
        assert_eq!(doc.get("missing"), None);
    }
}
