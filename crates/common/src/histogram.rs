//! A fixed-bucket latency histogram for serving-layer percentiles.
//!
//! Mean latency hides tail behavior, and storing every sample to compute
//! exact percentiles is unbounded memory on a long-running server. The
//! standard serving-tier compromise is a **fixed set of log-spaced
//! buckets**: recording is one atomic increment (lock-free, any thread),
//! memory is constant, and quantiles are read back with bounded relative
//! error (here ≤ 2×, the bucket width) — precise enough to tell a 100 µs
//! p50 from a 10 ms p99, which is what admission-control tuning needs.
//!
//! [`LatencyHistogram`] is the recording side;
//! [`quantile`](LatencyHistogram::quantile) walks the cumulative counts and
//! reports the upper bound of the bucket containing the requested rank —
//! a conservative (never understated) percentile for any sample under
//! the top bucket (~36 minutes). Samples beyond that saturate into the
//! top bucket and are reported as its ~2³²-µs bound, so only
//! pathologically old requests (a server paused or backlogged for over
//! half an hour) can be understated.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of power-of-two buckets: bucket `i` covers
/// `[2^i, 2^(i+1))` microseconds (bucket 0 also absorbs 0 µs), so the
/// histogram spans sub-microsecond to ~36 minutes — beyond any sane
/// request deadline.
pub const HISTOGRAM_BUCKETS: usize = 32;

/// A fixed-size, lock-free histogram of microsecond latencies.
///
/// Buckets are powers of two: recording takes one `leading_zeros` and one
/// relaxed atomic increment, so any number of serving workers can record
/// concurrently without coordination. Quantile reads are approximate
/// (upper bucket bound, ≤ 2× the true value) and never understate, with
/// one caveat: samples at or beyond the top bucket (≥ 2³¹ µs ≈ 36 min)
/// saturate and report the top-bucket bound instead of their true value.
///
/// # Examples
///
/// ```
/// use pass_common::LatencyHistogram;
///
/// let latency = LatencyHistogram::new();
/// for us in [90, 110, 120, 130, 9_000] {
///     latency.record(us); // lock-free, callable from any thread
/// }
/// assert_eq!(latency.count(), 5);
/// // Conservative fixed-bucket percentiles: never understated, within
/// // 2× of exact — the straggler shows in p99, not p50.
/// assert!(latency.p50() >= 110 && latency.p50() <= 2 * 110);
/// assert!(latency.p99() >= 9_000);
/// ```
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// The bucket index for a latency of `us` microseconds.
    fn bucket_of(us: u64) -> usize {
        // 0 and 1 µs land in bucket 0; 2^i ≤ us < 2^(i+1) lands in i.
        (63 - us.max(1).leading_zeros() as usize).min(HISTOGRAM_BUCKETS - 1)
    }

    /// Record one latency observation of `us` microseconds.
    pub fn record(&self, us: u64) {
        // relaxed: lock-free monotonic bucket counter; quantile reads
        // are advisory snapshots with no ordering requirement.
        self.buckets[Self::bucket_of(us)].fetch_add(1, Ordering::Relaxed);
    }

    /// Total observations recorded.
    pub fn count(&self) -> u64 {
        // relaxed: advisory snapshot.
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// The latency (µs) at quantile `q` in `[0, 1]`: the **upper bound**
    /// of the bucket containing the rank-`⌈q·n⌉` observation, i.e. a
    /// conservative percentile within 2× of exact — except for samples
    /// that saturated the top bucket (≥ 2³¹ µs ≈ 36 min), which are
    /// capped at the top-bucket bound and may be understated. Returns 0
    /// when nothing was recorded.
    pub fn quantile(&self, q: f64) -> u64 {
        let counts: Vec<u64> = self
            .buckets
            .iter()
            // relaxed: advisory snapshot.
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                // Upper bound of bucket i is 2^(i+1) − 1.
                return (1u64 << (i + 1)) - 1;
            }
        }
        (1u64 << HISTOGRAM_BUCKETS) - 1
    }

    /// Median latency (µs) — [`quantile(0.5)`](Self::quantile).
    pub fn p50(&self) -> u64 {
        self.quantile(0.5)
    }

    /// Tail latency (µs) — [`quantile(0.99)`](Self::quantile).
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucketing_is_power_of_two() {
        assert_eq!(LatencyHistogram::bucket_of(0), 0);
        assert_eq!(LatencyHistogram::bucket_of(1), 0);
        assert_eq!(LatencyHistogram::bucket_of(2), 1);
        assert_eq!(LatencyHistogram::bucket_of(3), 1);
        assert_eq!(LatencyHistogram::bucket_of(4), 2);
        assert_eq!(LatencyHistogram::bucket_of(1023), 9);
        assert_eq!(LatencyHistogram::bucket_of(1024), 10);
        // Ancient requests saturate into the last bucket, no overflow.
        assert_eq!(LatencyHistogram::bucket_of(u64::MAX), HISTOGRAM_BUCKETS - 1);
    }

    #[test]
    fn empty_histogram_reports_zero() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.p50(), 0);
        assert_eq!(h.p99(), 0);
    }

    #[test]
    fn quantiles_bound_the_true_value_from_above_within_2x() {
        let h = LatencyHistogram::new();
        // 100 observations: 1..=100 µs.
        for us in 1..=100u64 {
            h.record(us);
        }
        assert_eq!(h.count(), 100);
        let p50 = h.quantile(0.5);
        let p99 = h.quantile(0.99);
        // True p50 = 50, true p99 = 99; bucket bounds never understate
        // and stay within 2×.
        assert!((50..=100).contains(&p50), "p50 = {p50}");
        assert!((99..=198).contains(&p99), "p99 = {p99}");
        assert!(p50 <= p99);
    }

    #[test]
    fn a_skewed_tail_is_visible_in_p99_but_not_p50() {
        let h = LatencyHistogram::new();
        for _ in 0..50 {
            h.record(100); // fast majority
        }
        h.record(1_000_000); // one 1 s straggler (rank 51 = p99 of 51)
        assert!(h.p50() < 256, "p50 = {} stays fast", h.p50());
        assert!(h.p99() >= 1_000_000, "p99 = {} exposes the tail", h.p99());
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let h = LatencyHistogram::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let h = &h;
                s.spawn(move || {
                    for us in 0..1000u64 {
                        h.record(us);
                    }
                });
            }
        });
        assert_eq!(h.count(), 4000);
    }

    #[test]
    fn quantile_extremes_clamp() {
        let h = LatencyHistogram::new();
        h.record(10);
        h.record(1000);
        assert_eq!(h.quantile(-1.0), h.quantile(0.0));
        assert_eq!(h.quantile(2.0), h.quantile(1.0));
        // q=0 still reports the first non-empty bucket (rank ≥ 1).
        assert!(h.quantile(0.0) >= 10);
    }
}
