//! Deterministic RNG construction.
//!
//! Every randomized component in the workspace (samplers, generators, query
//! workloads) takes an explicit `u64` seed so that tests and benchmark tables
//! regenerate bit-identically. This module centralizes seeding and seed
//! derivation so that independent components fed from one master seed do not
//! accidentally share streams.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Construct the workspace-standard RNG from a seed.
pub fn rng_from_seed(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Derive an independent child seed from a master seed and a stream label.
///
/// Uses the SplitMix64 finalizer, whose avalanche behaviour guarantees that
/// (seed, label) pairs differing in one bit produce uncorrelated outputs.
pub fn derive_seed(master: u64, label: u64) -> u64 {
    let mut z = master ^ label.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_stream() {
        let a: Vec<u32> = (0..10).map(|_| 0).collect::<Vec<_>>();
        let mut r1 = rng_from_seed(42);
        let mut r2 = rng_from_seed(42);
        let s1: Vec<u64> = (0..10).map(|_| r1.gen()).collect();
        let s2: Vec<u64> = (0..10).map(|_| r2.gen()).collect();
        assert_eq!(s1, s2);
        let _ = a;
    }

    #[test]
    fn different_seeds_different_streams() {
        let mut r1 = rng_from_seed(1);
        let mut r2 = rng_from_seed(2);
        let s1: Vec<u64> = (0..8).map(|_| r1.gen()).collect();
        let s2: Vec<u64> = (0..8).map(|_| r2.gen()).collect();
        assert_ne!(s1, s2);
    }

    #[test]
    fn derived_seeds_distinct_per_label() {
        let master = 7;
        let a = derive_seed(master, 0);
        let b = derive_seed(master, 1);
        let c = derive_seed(master, 2);
        assert_ne!(a, b);
        assert_ne!(b, c);
        assert_ne!(a, c);
        // Deterministic.
        assert_eq!(a, derive_seed(master, 0));
    }
}
