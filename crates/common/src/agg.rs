//! Aggregate kinds and mergeable per-partition statistics.
//!
//! Every node of a PASS partition tree stores [`Aggregates`]: the exact SUM,
//! COUNT, MIN and MAX of the aggregation column over the node's partition
//! (Section 3.2). These are *mergeable summaries*: a parent's statistics are
//! the merge of its children's, which is what makes the bottom-up tree
//! construction and the O(1) dynamic update per node possible.

use crate::kahan::KahanSum;

/// The aggregate functions PASS supports (Section 3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggKind {
    /// Sum of the aggregation column over matching rows.
    Sum,
    /// Number of matching rows.
    Count,
    /// Mean of the aggregation column over matching rows.
    Avg,
    /// Minimum of the aggregation column over matching rows.
    Min,
    /// Maximum of the aggregation column over matching rows.
    Max,
}

impl AggKind {
    /// All supported kinds, handy for exhaustive test sweeps.
    pub const ALL: [AggKind; 5] = [
        AggKind::Sum,
        AggKind::Count,
        AggKind::Avg,
        AggKind::Min,
        AggKind::Max,
    ];

    /// The three "moment" aggregates with sampling-based estimators.
    pub const SAMPLED: [AggKind; 3] = [AggKind::Sum, AggKind::Count, AggKind::Avg];

    /// True for the aggregates whose contributions from disjoint strata
    /// simply add (SUM and COUNT) — equivalently, those with a
    /// well-defined zero contribution from an empty stratum. The sharded
    /// merge (`crate::PartialEstimate`) leans on this.
    pub fn is_additive(self) -> bool {
        matches!(self, AggKind::Sum | AggKind::Count)
    }

    /// Short lowercase name used in printed benchmark tables.
    pub fn name(self) -> &'static str {
        match self {
            AggKind::Sum => "SUM",
            AggKind::Count => "COUNT",
            AggKind::Avg => "AVG",
            AggKind::Min => "MIN",
            AggKind::Max => "MAX",
        }
    }
}

impl std::fmt::Display for AggKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Exact mergeable statistics of one partition of the aggregation column.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Aggregates {
    /// Exact sum of the column over the partition.
    pub sum: f64,
    /// Exact sum of squares (variance bookkeeping for the ADP optimizer).
    pub sum_sq: f64,
    /// Number of rows in the partition.
    pub count: u64,
    /// Minimum value (`+∞` for an empty partition).
    pub min: f64,
    /// Maximum value (`−∞` for an empty partition).
    pub max: f64,
}

impl Aggregates {
    /// The identity element for [`merge`](Self::merge): an empty partition.
    pub fn empty() -> Self {
        Self {
            sum: 0.0,
            sum_sq: 0.0,
            count: 0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Exact statistics of a slice of values (compensated summation).
    pub fn from_values(values: &[f64]) -> Self {
        let mut sum = KahanSum::new();
        let mut sum_sq = KahanSum::new();
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for &v in values {
            sum.add(v);
            sum_sq.add(v * v);
            if v < min {
                min = v;
            }
            if v > max {
                max = v;
            }
        }
        Self {
            sum: sum.total(),
            sum_sq: sum_sq.total(),
            count: values.len() as u64,
            min,
            max,
        }
    }

    /// Whether the partition holds no tuples.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// AVG of the partition; `None` when empty.
    #[inline]
    pub fn avg(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }

    /// Population variance of the partition's values; `None` when empty.
    ///
    /// Computed from the moments; clamped at zero to absorb floating-point
    /// noise on constant partitions.
    pub fn variance(&self) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let n = self.count as f64;
        let mean = self.sum / n;
        Some((self.sum_sq / n - mean * mean).max(0.0))
    }

    /// True when every value in the partition is identical (the paper's
    /// "0 variance rule" precondition: min == max, Section 3.4).
    #[inline]
    pub fn is_zero_variance(&self) -> bool {
        self.count > 0 && self.min == self.max
    }

    /// Merge two partitions' statistics (parent = merge of children).
    pub fn merge(&self, other: &Self) -> Self {
        Self {
            sum: self.sum + other.sum,
            sum_sq: self.sum_sq + other.sum_sq,
            count: self.count + other.count,
            min: self.min.min(other.min),
            max: self.max.max(other.max),
        }
    }

    /// Add one value in place (dynamic insert path, Section 4.5).
    pub fn insert(&mut self, v: f64) {
        self.sum += v;
        self.sum_sq += v * v;
        self.count += 1;
        if v < self.min {
            self.min = v;
        }
        if v > self.max {
            self.max = v;
        }
    }

    /// Remove one value in place. SUM/COUNT/AVG stay exact; MIN/MAX cannot be
    /// tightened without a full rescan, so they remain *conservative* bounds
    /// (still valid as hard bounds, possibly loose). Returns `true` when the
    /// removed value touched an extremum, i.e. the caller may want a rescan.
    pub fn remove(&mut self, v: f64) -> bool {
        debug_assert!(self.count > 0, "remove from empty partition");
        self.sum -= v;
        self.sum_sq -= v * v;
        self.count -= 1;
        if self.count == 0 {
            *self = Self::empty();
            return false;
        }
        v <= self.min || v >= self.max
    }

    /// Answer an aggregate over the *whole* partition exactly.
    /// `None` for AVG/MIN/MAX of an empty partition.
    pub fn answer(&self, kind: AggKind) -> Option<f64> {
        match kind {
            AggKind::Sum => Some(self.sum),
            AggKind::Count => Some(self.count as f64),
            AggKind::Avg => self.avg(),
            AggKind::Min => (self.count > 0).then_some(self.min),
            AggKind::Max => (self.count > 0).then_some(self.max),
        }
    }
}

impl Default for Aggregates {
    fn default() -> Self {
        Self::empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_values_basics() {
        let a = Aggregates::from_values(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(a.sum, 10.0);
        assert_eq!(a.count, 4);
        assert_eq!(a.min, 1.0);
        assert_eq!(a.max, 4.0);
        assert_eq!(a.avg(), Some(2.5));
        assert!((a.variance().unwrap() - 1.25).abs() < 1e-12);
    }

    #[test]
    fn empty_partition_behaviour() {
        let e = Aggregates::empty();
        assert!(e.is_empty());
        assert_eq!(e.avg(), None);
        assert_eq!(e.variance(), None);
        assert!(!e.is_zero_variance());
        assert_eq!(e.answer(AggKind::Sum), Some(0.0));
        assert_eq!(e.answer(AggKind::Count), Some(0.0));
        assert_eq!(e.answer(AggKind::Min), None);
    }

    #[test]
    fn merge_equals_concatenation() {
        let left = Aggregates::from_values(&[1.0, 5.0]);
        let right = Aggregates::from_values(&[-2.0, 7.0, 0.0]);
        let merged = left.merge(&right);
        let whole = Aggregates::from_values(&[1.0, 5.0, -2.0, 7.0, 0.0]);
        assert_eq!(merged.sum, whole.sum);
        assert_eq!(merged.count, whole.count);
        assert_eq!(merged.min, whole.min);
        assert_eq!(merged.max, whole.max);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let a = Aggregates::from_values(&[3.0, 9.0]);
        let m = a.merge(&Aggregates::empty());
        assert_eq!(m, a);
        let m = Aggregates::empty().merge(&a);
        assert_eq!(m, a);
    }

    #[test]
    fn zero_variance_rule_detection() {
        let a = Aggregates::from_values(&[4.0, 4.0, 4.0]);
        assert!(a.is_zero_variance());
        assert_eq!(a.variance(), Some(0.0));
        let b = Aggregates::from_values(&[4.0, 4.0001]);
        assert!(!b.is_zero_variance());
    }

    #[test]
    fn insert_then_remove_roundtrip_moments() {
        let mut a = Aggregates::from_values(&[1.0, 2.0, 3.0]);
        a.insert(10.0);
        assert_eq!(a.sum, 16.0);
        assert_eq!(a.count, 4);
        assert_eq!(a.max, 10.0);
        let extremum_touched = a.remove(10.0);
        assert!(extremum_touched, "10.0 was the max");
        assert_eq!(a.sum, 6.0);
        assert_eq!(a.count, 3);
        // MAX is now conservative (still 10.0) but remains a valid bound.
        assert!(a.max >= 3.0);
    }

    #[test]
    fn remove_interior_value_keeps_extrema_exact() {
        let mut a = Aggregates::from_values(&[1.0, 2.0, 3.0]);
        let touched = a.remove(2.0);
        assert!(!touched);
        assert_eq!(a.min, 1.0);
        assert_eq!(a.max, 3.0);
    }

    #[test]
    fn remove_last_value_resets_to_empty() {
        let mut a = Aggregates::from_values(&[5.0]);
        a.remove(5.0);
        assert!(a.is_empty());
        assert_eq!(a, Aggregates::empty());
    }

    #[test]
    fn answer_covers_all_kinds() {
        let a = Aggregates::from_values(&[2.0, 8.0]);
        assert_eq!(a.answer(AggKind::Sum), Some(10.0));
        assert_eq!(a.answer(AggKind::Count), Some(2.0));
        assert_eq!(a.answer(AggKind::Avg), Some(5.0));
        assert_eq!(a.answer(AggKind::Min), Some(2.0));
        assert_eq!(a.answer(AggKind::Max), Some(8.0));
    }

    #[test]
    fn display_names() {
        assert_eq!(AggKind::Sum.to_string(), "SUM");
        assert_eq!(AggKind::ALL.len(), 5);
        assert_eq!(AggKind::SAMPLED.len(), 3);
    }

    #[test]
    fn additivity_covers_exactly_sum_and_count() {
        let additive: Vec<AggKind> = AggKind::ALL
            .into_iter()
            .filter(|k| k.is_additive())
            .collect();
        assert_eq!(additive, vec![AggKind::Sum, AggKind::Count]);
    }
}
